(* hsq — command-line front end.

   Subcommands:
     simulate  drive a synthetic warehouse (one of the paper's datasets)
               and report quantiles, accuracy, and I/O costs;
     stream    read integers from stdin, archiving a time step every N
               elements, and answer quantile queries at EOF;
     query     reopen a saved warehouse (see --save-meta) and answer
               quantile and heavy-hitter queries against it;
     inspect   print a saved warehouse's partition layout, window
               alignment, and memory footprint. *)

open Cmdliner

let phi_list =
  let parse s =
    try
      let parts = String.split_on_char ',' (String.trim s) in
      let phis = List.map float_of_string parts in
      if List.for_all (fun p -> p > 0.0 && p <= 1.0) phis && phis <> [] then Ok phis
      else Error (`Msg "quantiles must lie in (0, 1]")
    with Failure _ -> Error (`Msg "expected a comma-separated list of floats")
  in
  let print ppf phis =
    Format.fprintf ppf "%s" (String.concat "," (List.map string_of_float phis))
  in
  Arg.conv (parse, print)

(* Shared engine options. *)
let epsilon =
  let doc = "Error parameter ε (error ≤ ε·m where m is the stream size)." in
  Arg.(value & opt float 0.01 & info [ "epsilon" ] ~docv:"EPS" ~doc)

let kappa =
  let doc = "Merge threshold κ: maximum partitions per level." in
  Arg.(value & opt int 10 & info [ "kappa" ] ~docv:"K" ~doc)

let sketch_kind =
  let doc =
    "Stream sketch for the open step: $(b,gk) (the paper's Greenwald-Khanna) or $(b,kll) \
     (mergeable KLL; with --shards, fused quick answers compose the per-shard stream \
     summaries by sketch merge). Checkpoints are tagged, so a durable store written under \
     one kind reopens cleanly under the other (the open step rebuilds from the WAL)."
  in
  Arg.(value & opt (enum [ ("gk", `Gk); ("kll", `Kll) ]) `Gk & info [ "sketch" ] ~docv:"KIND" ~doc)

let block_size =
  let doc = "Simulated disk block size, in elements." in
  Arg.(value & opt int 256 & info [ "block-size" ] ~docv:"B" ~doc)

let phis =
  let doc = "Quantiles to report." in
  Arg.(value & opt phi_list [ 0.5; 0.95; 0.99 ] & info [ "quantiles"; "q" ] ~docv:"PHIS" ~doc)

let device_path =
  let doc = "Back the warehouse with this file instead of memory." in
  Arg.(value & opt (some string) None & info [ "device" ] ~docv:"PATH" ~doc)

let shards =
  let doc =
    "Shard the warehouse across $(docv) independent engines (own device, WAL, breaker, \
     quarantine per shard); ingest hash-routes and queries fuse the shards' answers with the \
     same ±ε·m guarantee. 1 = a single engine (the default, and the only mode supporting \
     windowed queries and --device)."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc)

let replicas =
  let doc =
    "Run every logical shard as $(docv) replicated engines (own device, WAL, checkpoints, \
     breaker per replica): writes fan out synchronously to each live replica and are \
     acknowledged while at least one accepts, reads fail over to a sibling instead of \
     widening bounds when a replica is down, downed replicas catch up from hinted handoff \
     on rejoin, and $(b,hsq scrub) compares replica state digests and repairs divergence \
     from the healthiest sibling. Works with or without --shards. 1 = unreplicated (the \
     default)."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"R" ~doc)

let query_domains =
  let doc =
    "Fan accurate-query disk probes across $(docv) domains per bisection step. Answers are \
     identical at any setting; this is a latency knob only."
  in
  Arg.(value & opt (some int) None & info [ "query-domains" ] ~docv:"D" ~doc)

let deadline_ms =
  let doc =
    "Accurate-query deadline in milliseconds: a query that overruns it returns its \
     best-so-far answer, flagged $(b,deadline) with an honest rank-error bound, instead of \
     blocking. Unset = unbounded."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let ingest_domains =
  let doc =
    "Concurrent ingest lanes: observe calls spread across $(docv) shard-local stream buffers, \
     each handing sorted batches into the sketch under one propagation lock (simulate/stream \
     drive the lanes themselves; serve gives each connection its own lane). Answers and \
     durability guarantees are identical at any setting; 1 = the classic single-writer path."
  in
  Arg.(value & opt int 1 & info [ "ingest-domains" ] ~docv:"D" ~doc)

(* Durable-ingest options (simulate, stream). *)
let wal_sync_conv =
  let parse s =
    let s = String.lowercase_ascii (String.trim s) in
    let group_arg prefix =
      let plen = String.length prefix in
      if String.length s > plen && String.sub s 0 plen = prefix then
        int_of_string_opt (String.sub s plen (String.length s - plen))
      else None
    in
    match s with
    | "always" -> Ok Hsq_storage.Wal.Always
    | "never" -> Ok Hsq_storage.Wal.Never
    | _ -> (
      let n = match group_arg "group:" with Some n -> Some n | None -> group_arg "group=" in
      match n with
      | Some n when n >= 1 -> Ok (Hsq_storage.Wal.Group n)
      | _ -> Error (`Msg "expected always, never, or group:N (N >= 1)"))
  in
  let print ppf p = Format.fprintf ppf "%s" (Hsq_storage.Wal.sync_policy_to_string p) in
  Arg.conv (parse, print)

let durable_dir =
  let doc =
    "Durable ingest: root the warehouse, write-ahead log, and sketch checkpoints in $(docv) \
     and recover whatever a previous (possibly crashed) run left there. Overrides --device."
  in
  Arg.(value & opt (some string) None & info [ "durable" ] ~docv:"DIR" ~doc)

let wal_sync =
  let doc =
    "WAL sync policy with --durable: $(b,always) (zero acknowledged loss), $(b,group:N) \
     (flush every N records), or $(b,never) (flush only at commit markers)."
  in
  Arg.(value & opt wal_sync_conv Hsq_storage.Wal.Always & info [ "wal-sync" ] ~docv:"POLICY" ~doc)

let checkpoint_every =
  let doc = "Sketch-checkpoint interval in WAL records with --durable; 0 disables." in
  Arg.(value & opt int 10_000 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let report_recovery (r : Hsq.Engine.recovery_report) =
  if r.replayed > 0 || r.checkpoint_used || r.wal_tail <> None then
    Printf.eprintf
      "[recover] replayed %d WAL records: %d steps re-archived, %d already committed%s%s\n%!"
      r.replayed r.steps_reingested r.steps_skipped
      (if r.checkpoint_used then "; resumed from sketch checkpoint" else "")
      (match r.wal_tail with
      | None -> ""
      | Some why -> Printf.sprintf "; torn tail floored (%s)" why)

let make_engine ~epsilon ~kappa ~block_size ~device_path ~steps_hint ?query_domains
    ?query_deadline_ms ?durable ?(wal_sync = Hsq_storage.Wal.Always)
    ?(checkpoint_every = 10_000) ?(ingest_domains = 1) ?(stream_sketch = `Gk) () =
  match durable with
  | Some dir ->
    if device_path <> None then
      prerr_endline "warning: --device ignored with --durable (the store supplies its own)";
    let config =
      Hsq.Config.make ~kappa ~block_size ~steps_hint ?query_domains ?query_deadline_ms
        ~wal_dir:dir ~wal_sync ~checkpoint_every ~ingest_domains ~stream_sketch
        (Hsq.Config.Epsilon epsilon)
    in
    let eng, report = Hsq.Engine.open_or_recover config in
    report_recovery report;
    eng
  | None -> (
    let config =
      Hsq.Config.make ~kappa ~block_size ~steps_hint ?query_domains ?query_deadline_ms
        ~ingest_domains ~stream_sketch (Hsq.Config.Epsilon epsilon)
    in
    match device_path with
    | None -> Hsq.Engine.create config
    | Some path ->
      let dev = Hsq_storage.Block_device.create_file ~block_size ~path () in
      Hsq.Engine.create ~device:dev config)

(* --- sharded helpers --------------------------------------------------- *)

module G = Hsq_shard.Shard_group

let report_shard_recoveries ?(replicas = 1) recoveries =
  List.iter
    (fun { G.shard; replica; outcome } ->
      let who =
        if replicas > 1 then Printf.sprintf "shard %d replica %d" shard replica
        else Printf.sprintf "shard %d" shard
      in
      match outcome with
      | Ok r -> if r.Hsq.Engine.replayed > 0 || r.Hsq.Engine.checkpoint_used then
          Printf.eprintf "[recover] %s: replayed %d WAL records, %d steps re-archived%s\n%!"
            who r.Hsq.Engine.replayed r.Hsq.Engine.steps_reingested
            (if r.Hsq.Engine.checkpoint_used then "; resumed from sketch checkpoint" else "")
      | Error msg ->
        Printf.eprintf "[recover] %s FAILED, marked down (%s): %s\n%!" who
          (if replicas > 1 then "siblings keep serving, rejoin after repair"
           else "queries degrade, rejoin after repair")
          msg)
    recoveries

let make_group ~shards ?(replicas = 1) ~epsilon ~kappa ~block_size ~steps_hint ?query_domains
    ?query_deadline_ms ?durable ?(wal_sync = Hsq_storage.Wal.Always)
    ?(checkpoint_every = 10_000) ?(ingest_domains = 1) ?(stream_sketch = `Gk) () =
  match durable with
  | Some dir ->
    let config =
      Hsq.Config.make ~kappa ~block_size ~steps_hint ?query_domains ?query_deadline_ms
        ~wal_dir:dir ~wal_sync ~checkpoint_every ~shards ~replicas ~ingest_domains
        ~stream_sketch (Hsq.Config.Epsilon epsilon)
    in
    let g, recoveries = G.open_or_recover config in
    report_shard_recoveries ~replicas recoveries;
    g
  | None ->
    G.create
      (Hsq.Config.make ~kappa ~block_size ~steps_hint ?query_domains ?query_deadline_ms ~shards
         ~replicas ~ingest_domains ~stream_sketch (Hsq.Config.Epsilon epsilon))

let report_group_footprint g =
  let down = G.shards_down g in
  Printf.printf "N=%d (historical %d + stream %d%s), %d time steps, %d shards%s%s\n"
    (G.total_size g) (G.hist_size g) (G.stream_size g)
    (match G.down_elements g with 0 -> "" | d -> Printf.sprintf " + %d dark on down shards" d)
    (G.time_steps g) (G.shard_count g)
    (if G.replica_count g > 1 then Printf.sprintf " x %d replicas" (G.replica_count g) else "")
    (match down with
    | [] -> ""
    | ks -> Printf.sprintf " (DOWN: %s)" (String.concat "," (List.map string_of_int ks)));
  (if G.replica_count g > 1 then begin
     List.iter
       (fun (i, j) ->
         Printf.printf "replica %d of shard %d down (%s) — sibling serving at full precision\n"
           j i
           (Option.value ~default:"?" (G.replica_down_reason g ~shard:i ~replica:j)))
       (G.replicas_down g);
     List.iter
       (fun (i, j) ->
         Printf.printf "replica %d of shard %d DIVERGED — excluded from reads (scrub --repair)\n"
           j i)
       (G.diverged_replicas g)
   end);
  Printf.printf "summary memory: %d words (%.1f KiB)\n" (G.memory_words g)
    (float_of_int (8 * G.memory_words g) /. 1024.0)

let report_group_quantiles g phis =
  List.iter
    (fun phi ->
      let v, report = G.quantile g phi in
      Printf.printf "phi=%-5g  value=%-12d  (disk accesses: %d, bisection steps: %d)%s\n" phi v
        (Hsq_storage.Io_stats.total report.G.io)
        report.G.iterations
        (match report.G.degradation with
        | `None -> ""
        | d ->
          Printf.sprintf "  [DEGRADED(%s): rank error <= %.0f]" (G.degradation_label d)
            report.G.rank_error_bound))
    phis

let report_quantiles eng phis =
  List.iter
    (fun phi ->
      let v, report = Hsq.Engine.quantile eng phi in
      Printf.printf "phi=%-5g  value=%-12d  (disk accesses: %d, bisection steps: %d)%s\n" phi v
        (Hsq_storage.Io_stats.total report.Hsq.Engine.io)
        report.Hsq.Engine.iterations
        (match report.Hsq.Engine.degradation with
        | `None -> ""
        | d ->
          Printf.sprintf "  [DEGRADED(%s): rank error <= %.0f]"
            (Hsq.Engine.degradation_label d)
            report.Hsq.Engine.rank_error_bound))
    phis

let report_footprint eng =
  Printf.printf
    "N=%d (historical %d + stream %d), %d time steps, %d partitions over %d levels\n"
    (Hsq.Engine.total_size eng) (Hsq.Engine.hist_size eng) (Hsq.Engine.stream_size eng)
    (Hsq.Engine.time_steps eng)
    (Hsq_hist.Level_index.partition_count (Hsq.Engine.hist eng))
    (Hsq_hist.Level_index.num_levels (Hsq.Engine.hist eng));
  Printf.printf "summary memory: %d words (%.1f KiB)\n" (Hsq.Engine.memory_words eng)
    (float_of_int (8 * Hsq.Engine.memory_words eng) /. 1024.0)

(* --- multi-lane ingest driver ------------------------------------------ *)

(* Slice a batch across D ingest lanes, driven by a persistent
   Parallel.Pool (workers = D - 1; the caller takes a lane too).  One
   submission per batch: lane d observes its contiguous slice through
   observe_domain, so cross-lane contention is the per-batch sketch
   propagation, never per element. *)
let pool_ingest pool ~domains ~observe_domain batch =
  let len = Array.length batch in
  if len > 0 then begin
    let chunk = (len + domains - 1) / domains in
    Hsq_util.Parallel.Pool.run pool ~n:domains (fun d ->
        let lo = d * chunk in
        let hi = min len (lo + chunk) in
        for i = lo to hi - 1 do
          observe_domain ~domain:d batch.(i)
        done)
  end

let make_ingest_pool ~ingest_domains =
  if ingest_domains > 1 then
    Some (Hsq_util.Parallel.Pool.create ~workers:(ingest_domains - 1) ())
  else None

(* --- simulate ---------------------------------------------------------- *)

let save_meta =
  let doc = "After the run, save warehouse metadata here (requires --device)." in
  Arg.(value & opt (some string) None & info [ "save-meta" ] ~docv:"PATH" ~doc)

let simulate_group ~shards ~replicas ~ingest_domains ~stream_sketch dataset steps step_size seed
    epsilon kappa block_size query_domains deadline_ms phis verify durable wal_sync
    checkpoint_every =
  let ds = Hsq_workload.Datasets.by_name ~seed dataset in
  let g =
    make_group ~shards ~replicas ~epsilon ~kappa ~block_size ~steps_hint:steps ?query_domains
      ?query_deadline_ms:deadline_ms ?durable ~wal_sync ~checkpoint_every ~ingest_domains
      ~stream_sketch ()
  in
  let pool = make_ingest_pool ~ingest_domains in
  let ingest batch =
    match pool with
    | Some p ->
      pool_ingest p ~domains:ingest_domains
        ~observe_domain:(fun ~domain v -> G.observe_domain g ~domain v)
        batch;
      ignore (G.checkpoint_if_due g)
    | None -> Array.iter (G.observe g) batch
  in
  let oracle = if verify then Some (Hsq_workload.Oracle.create ()) else None in
  for step = 1 to steps do
    let batch = Hsq_workload.Datasets.next_batch ds step_size in
    Option.iter (fun o -> Hsq_workload.Oracle.add_batch o batch) oracle;
    ingest batch;
    List.iter
      (fun (i, r) ->
        match r with
        | Ok _ -> ()
        | Error msg -> Printf.eprintf "[simulate] shard %d archive failed: %s\n%!" i msg)
      (G.end_time_step g);
    if step mod 10 = 0 then Printf.eprintf "[simulate] archived step %d/%d\n%!" step steps
  done;
  let tail = Hsq_workload.Datasets.next_batch ds (max 1 (step_size / 2)) in
  Option.iter (fun o -> Hsq_workload.Oracle.add_batch o tail) oracle;
  ingest tail;
  G.flush_ingest g;
  Option.iter Hsq_util.Parallel.Pool.shutdown pool;
  Printf.printf "dataset=%s  " dataset;
  report_group_footprint g;
  report_group_quantiles g phis;
  Option.iter
    (fun o ->
      print_endline "verification against exact oracle:";
      List.iter
        (fun phi ->
          let v, _ = G.quantile g phi in
          let exact = Hsq_workload.Oracle.quantile o phi in
          Printf.printf "phi=%-5g  exact=%-12d  relative rank error=%.3e\n" phi exact
            (Hsq_workload.Oracle.relative_error o ~phi ~value:v))
        phis)
    oracle;
  G.close g;
  0

let simulate dataset steps step_size seed epsilon kappa block_size device_path query_domains
    deadline_ms phis verify save_meta durable wal_sync checkpoint_every shards replicas
    ingest_domains stream_sketch =
  if shards > 1 || replicas > 1 then begin
    if device_path <> None then
      prerr_endline "warning: --device ignored with --shards/--replicas (each store owns its device)";
    if save_meta <> None then
      prerr_endline "warning: --save-meta ignored with --shards/--replicas (stores keep their own sidecars)";
    simulate_group ~shards ~replicas ~ingest_domains ~stream_sketch dataset steps step_size seed
      epsilon kappa block_size query_domains deadline_ms phis verify durable wal_sync
      checkpoint_every
  end
  else begin
  let ds = Hsq_workload.Datasets.by_name ~seed dataset in
  let eng =
    make_engine ~epsilon ~kappa ~block_size ~device_path ~steps_hint:steps ?query_domains
      ?query_deadline_ms:deadline_ms ?durable ~wal_sync ~checkpoint_every ~ingest_domains
      ~stream_sketch ()
  in
  let pool = make_ingest_pool ~ingest_domains in
  let ingest batch =
    match pool with
    | Some p ->
      pool_ingest p ~domains:ingest_domains
        ~observe_domain:(fun ~domain v -> Hsq.Engine.observe_domain eng ~domain v)
        batch;
      ignore (Hsq.Engine.checkpoint_if_due eng)
    | None -> Array.iter (Hsq.Engine.observe eng) batch
  in
  let oracle = if verify then Some (Hsq_workload.Oracle.create ()) else None in
  let total_io = ref Hsq_storage.Io_stats.zero in
  for step = 1 to steps do
    let batch = Hsq_workload.Datasets.next_batch ds step_size in
    Option.iter (fun o -> Hsq_workload.Oracle.add_batch o batch) oracle;
    ingest batch;
    let report = Hsq.Engine.end_time_step eng in
    total_io := Hsq_storage.Io_stats.add !total_io report.Hsq_hist.Level_index.io_total;
    if step mod 10 = 0 then Printf.eprintf "[simulate] archived step %d/%d\n%!" step steps
  done;
  (* live stream: half a batch *)
  let tail = Hsq_workload.Datasets.next_batch ds (max 1 (step_size / 2)) in
  Option.iter (fun o -> Hsq_workload.Oracle.add_batch o tail) oracle;
  ingest tail;
  Hsq.Engine.flush_ingest eng;
  Option.iter Hsq_util.Parallel.Pool.shutdown pool;
  Printf.printf "dataset=%s  " dataset;
  report_footprint eng;
  Printf.printf "update I/O total: %s\n"
    (Format.asprintf "%a" Hsq_storage.Io_stats.pp !total_io);
  report_quantiles eng phis;
  Option.iter
    (fun o ->
      print_endline "verification against exact oracle:";
      List.iter
        (fun phi ->
          let v, _ = Hsq.Engine.quantile eng phi in
          let exact = Hsq_workload.Oracle.quantile o phi in
          Printf.printf "phi=%-5g  exact=%-12d  relative rank error=%.3e\n" phi exact
            (Hsq_workload.Oracle.relative_error o ~phi ~value:v))
        phis)
    oracle;
  (match (save_meta, device_path) with
  | Some meta, Some _ ->
    Hsq.Persist.save eng ~path:meta;
    Printf.printf "warehouse metadata saved to %s\n" meta
  | Some _, None when durable = None ->
    prerr_endline "warning: --save-meta ignored without --device"
  | _ -> ());
  Hsq.Engine.close eng;
  0
  end

let simulate_cmd =
  let dataset =
    let doc =
      Printf.sprintf "Dataset: %s." (String.concat ", " Hsq_workload.Datasets.names)
    in
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) Hsq_workload.Datasets.names)) "normal"
      & info [ "dataset"; "d" ] ~docv:"NAME" ~doc)
  in
  let steps =
    Arg.(value & opt int 20 & info [ "steps" ] ~docv:"T" ~doc:"Time steps to archive.")
  in
  let step_size =
    Arg.(value & opt int 50_000 & info [ "step-size" ] ~docv:"N" ~doc:"Elements per time step.")
  in
  let seed = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"RNG seed.") in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Keep an exact oracle and report true errors.")
  in
  let doc = "Drive a synthetic data-stream warehouse and query quantiles." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ dataset $ steps $ step_size $ seed $ epsilon $ kappa $ block_size
      $ device_path $ query_domains $ deadline_ms $ phis $ verify $ save_meta $ durable_dir
      $ wal_sync $ checkpoint_every $ shards $ replicas $ ingest_domains $ sketch_kind)

(* --- stream ------------------------------------------------------------- *)

(* One loop body shared by the single and sharded paths: observe,
   count, archive every N. *)
let stream_loop ~observe ~end_step ~step_every =
  let in_step = ref 0 in
  try
    while true do
      let line = input_line stdin in
      let line = String.trim line in
      if line <> "" then begin
        match int_of_string_opt line with
        | None -> Printf.eprintf "[stream] skipping non-integer line %S\n%!" line
        | Some v ->
          observe v;
          incr in_step;
          if !in_step >= step_every then begin
            end_step ();
            in_step := 0
          end
      end
    done
  with End_of_file -> ()

let stream step_every epsilon kappa block_size device_path query_domains deadline_ms phis
    durable wal_sync checkpoint_every shards replicas ingest_domains stream_sketch =
  (* stdin is read sequentially, so lanes are driven round-robin from
     this one thread: the win is the lanes' batched sketch hand-off
     (sorted-run merges instead of per-element inserts), not thread
     parallelism.  Lane hand-offs only mark checkpoint debt; this
     thread settles it between elements. *)
  let lane = ref 0 in
  let next_lane () =
    let d = !lane in
    lane := (d + 1) mod ingest_domains;
    d
  in
  if shards > 1 || replicas > 1 then begin
    if device_path <> None then
      prerr_endline "warning: --device ignored with --shards/--replicas (each store owns its device)";
    let g =
      make_group ~shards ~replicas ~epsilon ~kappa ~block_size ~steps_hint:100 ?query_domains
        ?query_deadline_ms:deadline_ms ?durable ~wal_sync ~checkpoint_every ~ingest_domains
        ~stream_sketch ()
    in
    stream_loop ~step_every
      ~observe:(fun v ->
        try
          if ingest_domains > 1 then begin
            G.observe_domain g ~domain:(next_lane ()) v;
            ignore (G.checkpoint_if_due g)
          end
          else G.observe g v
        with G.Shard_unavailable (i, reason) ->
          Printf.eprintf "[stream] DROPPED (shard %d down: %s)\n%!" i reason)
      ~end_step:(fun () ->
        List.iter
          (fun (i, r) ->
            match r with
            | Ok _ -> ()
            | Error msg -> Printf.eprintf "[stream] shard %d archive failed: %s\n%!" i msg)
          (G.end_time_step g);
        Printf.eprintf "[stream] archived step %d\n%!" (G.time_steps g));
    G.flush_ingest g;
    let code =
      if G.total_size g = 0 then begin
        prerr_endline "no data read";
        1
      end
      else begin
        report_group_footprint g;
        report_group_quantiles g phis;
        0
      end
    in
    G.close g;
    code
  end
  else begin
  let eng =
    make_engine ~epsilon ~kappa ~block_size ~device_path ~steps_hint:100 ?query_domains
      ?query_deadline_ms:deadline_ms ?durable ~wal_sync ~checkpoint_every ~ingest_domains
      ~stream_sketch ()
  in
  stream_loop ~step_every
    ~observe:(fun v ->
      if ingest_domains > 1 then begin
        Hsq.Engine.observe_domain eng ~domain:(next_lane ()) v;
        ignore (Hsq.Engine.checkpoint_if_due eng)
      end
      else Hsq.Engine.observe eng v)
    ~end_step:(fun () ->
      let report = Hsq.Engine.end_time_step eng in
      Printf.eprintf "[stream] archived step %d (%d block I/Os)\n%!"
        (Hsq.Engine.time_steps eng)
        (Hsq_storage.Io_stats.total report.Hsq_hist.Level_index.io_total));
  Hsq.Engine.flush_ingest eng;
  let code =
    if Hsq.Engine.total_size eng = 0 then begin
      prerr_endline "no data read";
      1
    end
    else begin
      report_footprint eng;
      report_quantiles eng phis;
      0
    end
  in
  (* Flushes the WAL: the open step (elements past the last archive
     point) survives a restart with --durable. *)
  Hsq.Engine.close eng;
  code
  end

let stream_cmd =
  let step_every =
    Arg.(
      value & opt int 100_000
      & info [ "step-every" ] ~docv:"N" ~doc:"Archive a time step every N elements.")
  in
  let doc = "Read integers from stdin and answer quantile queries at EOF." in
  Cmd.v
    (Cmd.info "stream" ~doc)
    Term.(
      const stream $ step_every $ epsilon $ kappa $ block_size $ device_path $ query_domains
      $ deadline_ms $ phis $ durable_dir $ wal_sync $ checkpoint_every $ shards $ replicas
      $ ingest_domains $ sketch_kind)

(* --- query (restored warehouse) ------------------------------------------ *)

let query device meta query_domains deadline_ms phis heavy trace durable shards replicas =
  if shards > 1 || replicas > 1 then begin
    match durable with
    | None ->
      prerr_endline "query --shards/--replicas requires --durable DIR (the sharded store root)";
      2
    | Some dir ->
      if heavy <> None then prerr_endline "warning: --heavy ignored with --shards/--replicas";
      if trace then prerr_endline "warning: --trace ignored with --shards/--replicas";
      let config =
        Hsq.Config.make ?query_domains ?query_deadline_ms:deadline_ms ~wal_dir:dir ~shards
          ~replicas (Hsq.Config.Epsilon 0.01)
      in
      let g, recoveries = G.open_or_recover config in
      report_shard_recoveries ~replicas recoveries;
      let code =
        if G.total_size g = 0 then begin
          prerr_endline "empty store";
          1
        end
        else begin
          report_group_footprint g;
          report_group_quantiles g phis;
          (* Exit-code contract: degraded answers (a whole shard dark)
             fail; a downed replica with a live sibling keeps full
             precision and exits 0. *)
          if G.shards_down g = [] then 0 else 1
        end
      in
      G.close g;
      code
  end
  else
  match (device, meta) with
  | Some device_path, Some meta_path -> (
    try
      let eng =
        Hsq.Persist.load_files ?query_domains ?query_deadline_ms:deadline_ms ~device_path
          ~meta_path ()
      in
      let tracer = if trace then Some (Hsq_obs.Trace.create ()) else None in
      Hsq.Engine.set_tracer eng tracer;
      report_footprint eng;
      report_quantiles eng phis;
      (match heavy with
      | None -> ()
      | Some phi ->
        (* Restored engines have an empty stream, so historical counts
           are exact and the result is certain. *)
        let capacity = max 64 (int_of_float (ceil (2.0 /. phi))) in
        let hh = Hsq.Heavy_hitters.of_engine ~capacity eng in
        let hits, report = Hsq.Heavy_hitters.frequent hh ~phi in
        Printf.printf "values with frequency >= %g%% (%d candidates verified, %d disk accesses):\n"
          (100.0 *. phi) report.Hsq.Heavy_hitters.candidates
          (Hsq_storage.Io_stats.total report.Hsq.Heavy_hitters.io);
        List.iter
          (fun (h : Hsq.Heavy_hitters.hit) ->
            Printf.printf "  %-12d count in [%d, %d]\n" h.value h.lower h.upper)
          hits);
      Option.iter
        (fun tr ->
          (* One JSON line per completed root span (query.accurate with
             bisect/probe children, summary_cache, ...), oldest first. *)
          print_endline "trace:";
          List.iter
            (fun s -> print_endline (Hsq_obs.Trace.to_json s))
            (Hsq_obs.Trace.roots tr))
        tracer;
      Hsq_storage.Block_device.close (Hsq.Engine.device eng);
      0
    with
    | Hsq.Persist.Corrupt_metadata msg ->
      Printf.eprintf "corrupt metadata: %s\n" msg;
      1
    | Hsq_storage.Block_device.Device_error msg ->
      Printf.eprintf "device error: %s\n" msg;
      1)
  | _ ->
    prerr_endline "query requires both --device and --meta";
    2

let query_cmd =
  let meta =
    Arg.(value & opt (some string) None & info [ "meta" ] ~docv:"PATH" ~doc:"Metadata sidecar.")
  in
  let heavy =
    let doc = "Also report values with frequency >= PHI (e.g. 0.01)." in
    Arg.(value & opt (some float) None & info [ "heavy" ] ~docv:"PHI" ~doc)
  in
  let trace =
    let doc =
      "Record a trace-span tree per query and print each completed root span as one JSON \
       line after the answers (preceded by a $(b,trace:) header line)."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let doc = "Query a previously saved warehouse (see simulate --save-meta)." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const query $ device_path $ meta $ query_domains $ deadline_ms $ phis $ heavy $ trace
      $ durable_dir $ shards $ replicas)

(* --- inspect --------------------------------------------------------------- *)

let inspect device meta =
  match (device, meta) with
  | Some device_path, Some meta_path -> (
    try
      let eng = Hsq.Persist.load_files ~device_path ~meta_path () in
      report_footprint eng;
      let hist = Hsq.Engine.hist eng in
      Printf.printf "\npartition layout (newest first):\n";
      List.iter
        (fun p ->
          Printf.printf "  %s  summary=%d entries\n"
            (Format.asprintf "%a" Hsq_hist.Partition.pp p)
            (Hsq_hist.Partition_summary.length (Hsq_hist.Partition.summary p)))
        (Hsq_hist.Level_index.partitions hist);
      (match Hsq_hist.Level_index.expired_through hist with
      | 0 -> ()
      | through -> Printf.printf "retention: steps 1..%d expired\n" through);
      Printf.printf "answerable windows (steps): %s\n"
        (String.concat ", " (List.map string_of_int (Hsq.Engine.window_sizes eng)));
      Printf.printf "aligned range boundaries: %s\n"
        (String.concat ", "
           (List.map
              (fun (a, b) -> Printf.sprintf "[%d-%d]" a b)
              (Hsq_hist.Level_index.partition_boundaries hist)));
      (match Hsq_hist.Level_index.check_invariants hist with
      | [] -> print_endline "invariants: OK"
      | errs -> List.iter (fun e -> Printf.printf "INVARIANT VIOLATION: %s\n" e) errs);
      Hsq_storage.Block_device.close (Hsq.Engine.device eng);
      0
    with
    | Hsq.Persist.Corrupt_metadata msg ->
      Printf.eprintf "corrupt metadata: %s\n" msg;
      1
    | Hsq_storage.Block_device.Device_error msg ->
      Printf.eprintf "device error: %s\n" msg;
      1)
  | _ ->
    prerr_endline "inspect requires both --device and --meta";
    2

let inspect_cmd =
  let meta =
    Arg.(value & opt (some string) None & info [ "meta" ] ~docv:"PATH" ~doc:"Metadata sidecar.")
  in
  let doc = "Print a saved warehouse's layout, windows, and health." in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const inspect $ device_path $ meta)

(* --- scrub ----------------------------------------------------------------- *)

let scrub device meta repair durable shards replicas =
  if shards > 1 || replicas > 1 then begin
    match durable with
    | None ->
      prerr_endline "scrub --shards/--replicas requires --durable DIR (the sharded store root)";
      2
    | Some dir ->
      let config = Hsq.Config.make ~wal_dir:dir ~shards ~replicas (Hsq.Config.Epsilon 0.01) in
      let g, recoveries = G.open_or_recover config in
      report_shard_recoveries ~replicas recoveries;
      let errors = ref 0 in
      let print_report who (r : Hsq.Persist.scrub_report) =
        Printf.printf "%s: scrubbed %d partitions (%d block reads)" who
          r.Hsq.Persist.partitions_checked r.Hsq.Persist.blocks_read;
        if repair then
          Printf.printf "; %d quarantined, %d reinstated, %d still quarantined"
            r.Hsq.Persist.quarantined r.Hsq.Persist.reinstated
            r.Hsq.Persist.still_quarantined;
        print_newline ();
        List.iter
          (fun e ->
            incr errors;
            Printf.printf "SCRUB ERROR [%s]: %s\n" who e)
          r.Hsq.Persist.errors
      in
      if replicas > 1 then begin
        (* Per-replica media scrub, then the anti-entropy digest pass:
           replicas of a shard apply identical op sequences, so any
           digest disagreement is real divergence. *)
        List.iter
          (fun ((i, j), r) -> print_report (Printf.sprintf "shard %d replica %d" i j) r)
          (G.scrub_all ~repair g);
        List.iter
          (fun (er : G.entropy_report) ->
            (match er.G.flagged with
            | [] ->
              Printf.printf "anti-entropy [shard %d]: %d replicas consistent\n"
                er.G.entropy_shard
                (List.length er.G.digests)
            | flagged ->
              List.iter
                (fun (j, why) ->
                  if List.mem j er.G.repaired then
                    Printf.printf
                      "anti-entropy [shard %d]: replica %d DIVERGED (%s); repaired from \
                       healthiest sibling\n"
                      er.G.entropy_shard j why
                  else if not (List.mem_assoc j er.G.repair_failed) then begin
                    incr errors;
                    Printf.printf "ANTI-ENTROPY ERROR [shard %d]: replica %d diverged (%s)%s\n"
                      er.G.entropy_shard j why
                      (if repair then "" else "; re-run with --repair")
                  end)
                flagged);
            List.iter
              (fun (j, why) ->
                incr errors;
                Printf.printf "ANTI-ENTROPY ERROR [shard %d]: replica %d repair failed: %s\n"
                  er.G.entropy_shard j why)
              er.G.repair_failed)
          (G.anti_entropy ~repair g);
        (* Downed replicas with live siblings are warnings, not damage:
           answers keep full precision and hints replay on rejoin. *)
        List.iter
          (fun (i, j) ->
            if not (List.mem i (G.shards_down g)) then
              Printf.printf
                "scrub: shard %d replica %d down (%s) — sibling serving, catches up on rejoin\n"
                i j
                (Option.value ~default:"?" (G.replica_down_reason g ~shard:i ~replica:j)))
          (G.replicas_down g)
      end
      else
        List.iter
          (fun (i, r) -> print_report (Printf.sprintf "shard %d" i) r)
          (G.scrub ~repair g);
      let down = G.shards_down g in
      List.iter
        (fun i ->
          incr errors;
          Printf.printf "SCRUB ERROR [shard %d]: shard is down (%s)\n" i
            (Option.value ~default:"?" (G.down_reason g i)))
        down;
      G.close g;
      if !errors = 0 then begin
        print_endline "scrub: OK";
        0
      end
      else 1
  end
  else
  match (device, meta) with
  | Some device_path, Some meta_path -> (
    try
      let eng = Hsq.Persist.load_files ~device_path ~meta_path () in
      let report = Hsq.Persist.scrub ~repair eng in
      Printf.printf "scrubbed %d partitions (%d block reads)\n" report.Hsq.Persist.partitions_checked
        report.Hsq.Persist.blocks_read;
      if repair then begin
        Printf.printf "repair: %d quarantined, %d reinstated, %d still quarantined\n"
          report.Hsq.Persist.quarantined report.Hsq.Persist.reinstated
          report.Hsq.Persist.still_quarantined;
        (* Persist the new quarantine set so later opens honour it. *)
        Hsq.Persist.save eng ~path:meta_path
      end
      else if report.Hsq.Persist.still_quarantined > 0 then
        Printf.printf "%d partitions quarantined (re-verify with --repair)\n"
          report.Hsq.Persist.still_quarantined;
      let stats =
        Hsq_storage.Io_stats.snapshot (Hsq_storage.Block_device.stats (Hsq.Engine.device eng))
      in
      if stats.Hsq_storage.Io_stats.retries > 0 then
        Printf.printf "retries during scrub: %d (checksum failures: %d)\n"
          stats.Hsq_storage.Io_stats.retries stats.Hsq_storage.Io_stats.checksum_failures;
      Hsq_storage.Block_device.close (Hsq.Engine.device eng);
      match report.Hsq.Persist.errors with
      | [] ->
        print_endline "scrub: OK";
        0
      | errors ->
        List.iter (fun e -> Printf.printf "SCRUB ERROR: %s\n" e) errors;
        1
    with
    | Hsq.Persist.Corrupt_metadata msg ->
      Printf.eprintf "corrupt metadata: %s\n" msg;
      1
    | Hsq_storage.Block_device.Device_error msg ->
      Printf.eprintf "device error: %s\n" msg;
      1)
  | _ ->
    prerr_endline "scrub requires both --device and --meta";
    2

let scrub_cmd =
  let meta =
    Arg.(value & opt (some string) None & info [ "meta" ] ~docv:"PATH" ~doc:"Metadata sidecar.")
  in
  let repair =
    let doc =
      "Act on what the scrub finds: quarantine partitions that fail verification, re-verify \
       and reinstate previously quarantined ones, and save the updated sidecar."
    in
    Arg.(value & flag & info [ "repair" ] ~doc)
  in
  let doc =
    "Verify a saved warehouse end to end: re-read every partition, checking block checksums \
     and sortedness. Exits non-zero if any damage is found."
  in
  Cmd.v (Cmd.info "scrub" ~doc)
    Term.(const scrub $ device_path $ meta $ repair $ durable_dir $ shards $ replicas)

(* --- status (durable store health) ----------------------------------------- *)

(* Failure-containment health: collected and rendered by
   Hsq_serve.Health, the same implementation behind the daemon's
   `health` wire verb, so the two surfaces cannot drift.  Returns the
   shared exit code (0 healthy, 1 degraded). *)
let report_health eng =
  let h = Hsq_serve.Health.collect eng in
  List.iter print_endline (Hsq_serve.Health.to_lines h);
  Hsq_serve.Health.exit_code h

let status_one dir pool_blocks health =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "no such store directory: %s\n" dir;
    2
  end
  else begin
    let device_path, meta_path, wal_path, ckpt_path = Hsq.Engine.store_paths ~dir in
    let problems = ref 0 in
    let problem fmt = Printf.ksprintf (fun s -> incr problems; Printf.printf "%s\n" s) fmt in
    (* Warehouse: the sidecar is the commit record. *)
    let committed_steps = ref 0 in
    (match (Sys.file_exists meta_path, Sys.file_exists device_path) with
    | false, _ -> print_endline "warehouse: empty (no committed time step yet)"
    | true, false -> problem "warehouse: DAMAGED — sidecar present but device file missing"
    | true, true -> (
      match Hsq.Persist.load_files ~pool_blocks ~device_path ~meta_path () with
      | eng ->
        committed_steps := Hsq.Engine.time_steps eng;
        Printf.printf "warehouse: %d archived steps, %d elements, %d partitions\n"
          (Hsq.Engine.time_steps eng) (Hsq.Engine.hist_size eng)
          (Hsq_hist.Level_index.partition_count (Hsq.Engine.hist eng));
        (match Hsq_storage.Block_device.pool_stats (Hsq.Engine.device eng) with
        | Some (hits, misses) when hits + misses > 0 ->
          Printf.printf "buffer pool: %d blocks, %d hits / %d misses (%.1f%% hit rate)\n"
            pool_blocks hits misses
            (100.0 *. float_of_int hits /. float_of_int (hits + misses))
        | _ -> ());
        if health && report_health eng <> 0 then
          problem "health: DEGRADED — breaker open or partitions quarantined";
        Hsq_storage.Block_device.close (Hsq.Engine.device eng)
      | exception Hsq.Persist.Corrupt_metadata msg -> problem "warehouse: CORRUPT — %s" msg
      | exception Hsq_storage.Block_device.Device_error msg ->
        problem "warehouse: DEVICE ERROR — %s" msg));
    (* Write-ahead log. *)
    (if Sys.file_exists wal_path then begin
       match Hsq_storage.Wal.read_path ~path:wal_path with
       | records, start_seq, tail ->
         let observes, markers =
           List.fold_left
             (fun (o, m) (_, r) ->
               match r with
               | Hsq_storage.Wal.Observe _ -> (o + 1, m)
               | Hsq_storage.Wal.End_step _ | Hsq_storage.Wal.End_step_cuts _ -> (o, m + 1))
             (0, 0) records
         in
         Printf.printf "wal: %d records (%d observes, %d commit markers), seq %d..%d\n"
           (List.length records) observes markers start_seq
           (start_seq + List.length records - 1);
         (match tail with
         | Hsq_storage.Wal.Clean -> ()
         | Hsq_storage.Wal.Torn why ->
           (* Expected after a crash — recovery floors it — so it is
              reported but is not a health problem by itself. *)
           Printf.printf "wal: torn tail (%s); next open floors it\n" why)
       | exception Hsq_storage.Block_device.Device_error msg -> problem "wal: UNREADABLE — %s" msg
     end
     else print_endline "wal: absent (no open step)");
    (* Sketch checkpoint. *)
    (match Hsq.Checkpoint.load ~path:ckpt_path with
    | Ok None -> print_endline "checkpoint: absent"
    | Ok (Some c) ->
      Printf.printf "checkpoint: covers WAL seq <= %d at %d committed steps (%d spooled elements)%s\n"
        c.Hsq.Checkpoint.seq c.Hsq.Checkpoint.steps_done
        (Array.length c.Hsq.Checkpoint.batch)
        (if c.Hsq.Checkpoint.steps_done <> !committed_steps then " [stale — will be ignored]"
         else "")
    | Error why ->
      (* Also not fatal: recovery treats it as absent. *)
      Printf.printf "checkpoint: unreadable (%s); recovery falls back to full replay\n" why);
    if !problems = 0 then begin
      print_endline "status: OK";
      0
    end
    else begin
      Printf.printf "status: %d problem(s)\n" !problems;
      1
    end
  end

(* Sharded/replicated status: the same per-store checks on every
   replica store, rolled up into one verdict.

   Exit-code contract (documented in the README): 0 also covers
   degraded-but-full-precision states — a damaged or missing replica
   store whose sibling is intact keeps every answer inside ±ε·m, so it
   is reported as a warning; only a shard with NO intact replica
   (answers degraded) exits 1. With --replicas 1 this collapses to the
   old per-shard verdict: any damaged shard exits 1. *)
let status dir shards replicas pool_blocks health =
  if shards <= 1 && replicas <= 1 then status_one dir pool_blocks health
  else begin
    let rows =
      List.init shards (fun i ->
          List.init replicas (fun j ->
              let sdir = G.store_dir ~root:dir ~shards ~replicas ~shard:i ~replica:j in
              if replicas > 1 then Printf.printf "== shard %d replica %d: %s ==\n" i j sdir
              else Printf.printf "== shard %d: %s ==\n" i sdir;
              let code =
                if Sys.file_exists sdir && Sys.is_directory sdir then
                  status_one sdir pool_blocks health
                else begin
                  if replicas > 1 then
                    Printf.printf
                      "shard %d replica %d: MISSING (never created, or lost with its volume)\n"
                      i j
                  else
                    Printf.printf "shard %d: MISSING (never created, or lost with its volume)\n" i;
                  1
                end
              in
              print_newline ();
              code))
    in
    if replicas > 1 then begin
      (* Per-shard replica matrix: one row per shard, one cell per
         replica store. *)
      print_endline "replica matrix:";
      List.iteri
        (fun i row ->
          Printf.printf "  shard %d: %s\n" i
            (String.concat "  "
               (List.mapi
                  (fun j c -> Printf.sprintf "r%d=%s" j (if c = 0 then "OK" else "BAD"))
                  row)))
        rows;
      let shard_ok = List.map (List.exists (fun c -> c = 0)) rows in
      let bad_replicas =
        List.fold_left
          (fun acc row -> acc + List.length (List.filter (fun c -> c <> 0) row))
          0 rows
      in
      Printf.printf "status: %d/%d replica stores OK, %d/%d shards with an intact replica\n"
        ((shards * replicas) - bad_replicas)
        (shards * replicas)
        (List.length (List.filter Fun.id shard_ok))
        shards;
      if List.for_all Fun.id shard_ok then begin
        if bad_replicas > 0 then
          Printf.printf
            "status: WARNING — %d damaged replica store(s); siblings keep full precision, \
             repair on rejoin\n"
            bad_replicas;
        0
      end
      else 1
    end
    else begin
      let codes = List.concat rows in
      let bad = List.length (List.filter (fun c -> c <> 0) codes) in
      Printf.printf "status: %d/%d shards OK\n" (shards - bad) shards;
      if bad = 0 then 0 else 1
    end
  end

let status_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Durable store directory (see --durable).")
  in
  let pool_blocks =
    let doc =
      "LRU buffer-pool capacity (blocks) used while loading the warehouse; the hit/miss rate \
       over the recovery reads is reported. 0 disables the pool."
    in
    Arg.(value & opt int 256 & info [ "pool-blocks" ] ~docv:"N" ~doc)
  in
  let health =
    let doc =
      "Also report failure-containment state: the device circuit breaker, quarantined \
       partitions per level, and the last scrub outcome."
    in
    Arg.(value & flag & info [ "health" ] ~doc)
  in
  let doc =
    "Report the health of a durable store: warehouse commit state, WAL extent and tail, and \
     sketch-checkpoint coverage. Exits non-zero if the store is damaged beyond what recovery \
     handles."
  in
  Cmd.v (Cmd.info "status" ~doc)
    Term.(const status $ dir $ shards $ replicas $ pool_blocks $ health)

(* --- metrics --------------------------------------------------------------- *)

let metrics device meta format phis no_exercise =
  match (device, meta) with
  | Some device_path, Some meta_path -> (
    try
      let eng = Hsq.Persist.load_files ~device_path ~meta_path () in
      (* Answer the requested quantiles silently first so the query-path
         metrics (latency histograms, probe counters, cache hits) carry
         real observations, not just the load-time I/O. *)
      if not no_exercise then List.iter (fun phi -> ignore (Hsq.Engine.quantile eng phi)) phis;
      let reg = Hsq.Engine.metrics eng in
      Hsq_obs.Process.register reg;
      (match format with
      | `Json -> print_endline (Hsq_obs.Metrics.to_json reg)
      | `Prometheus -> print_string (Hsq_obs.Metrics.to_prometheus reg));
      Hsq_storage.Block_device.close (Hsq.Engine.device eng);
      0
    with
    | Hsq.Persist.Corrupt_metadata msg ->
      Printf.eprintf "corrupt metadata: %s\n" msg;
      1
    | Hsq_storage.Block_device.Device_error msg ->
      Printf.eprintf "device error: %s\n" msg;
      1)
  | _ ->
    prerr_endline "metrics requires both --device and --meta";
    2

let metrics_cmd =
  let meta =
    Arg.(value & opt (some string) None & info [ "meta" ] ~docv:"PATH" ~doc:"Metadata sidecar.")
  in
  let format =
    let doc = "Output format: $(b,prometheus) (text exposition) or $(b,json)." in
    Arg.(
      value
      & opt (enum [ ("prometheus", `Prometheus); ("json", `Json) ]) `Prometheus
      & info [ "format"; "f" ] ~docv:"FMT" ~doc)
  in
  let no_exercise =
    let doc = "Dump the registry as loaded, without answering --quantiles first." in
    Arg.(value & flag & info [ "no-exercise" ] ~doc)
  in
  let doc =
    "Load a saved warehouse, answer the --quantiles against it, and dump its metric registry \
     (I/O counters, query latency histograms, cache and pool statistics)."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(const metrics $ device_path $ meta $ format $ phis $ no_exercise)

(* --- serve ----------------------------------------------------------------- *)

let serve socket tcp epsilon kappa block_size query_domains durable wal_sync checkpoint_every
    queue_depth quick_ms accurate_ms ingest_ms admin_ms read_timeout_ms shards replicas
    ingest_domains stream_sketch =
  let listen =
    match (socket, tcp) with
    | Some path, None -> Some (Hsq_serve.Server.Unix_sock path)
    | None, Some port -> Some (Hsq_serve.Server.Tcp ("127.0.0.1", port))
    | _ -> None
  in
  match listen with
  | None ->
    prerr_endline "serve requires exactly one of --socket PATH or --tcp PORT";
    2
  | Some listen -> (
    let config =
      {
        (Hsq_serve.Server.default_config listen) with
        Hsq_serve.Server.queue_depth;
        budgets =
          { Hsq_serve.Server.quick_ms; accurate_ms; ingest_ms; admin_ms };
        read_timeout_s = read_timeout_ms /. 1000.0;
      }
    in
    try
      let srv =
        if shards > 1 || replicas > 1 then
          Hsq_serve.Server.create_group config
            (make_group ~shards ~replicas ~epsilon ~kappa ~block_size ~steps_hint:100
               ?query_domains ?durable ~wal_sync ~checkpoint_every ~ingest_domains
               ~stream_sketch ())
        else
          Hsq_serve.Server.create config
            (make_engine ~epsilon ~kappa ~block_size ~device_path:None ~steps_hint:100
               ?query_domains ?durable ~wal_sync ~checkpoint_every ~ingest_domains
               ~stream_sketch ())
      in
      (* Signal handlers only flip the stop atomic; the accept loop
         notices within its poll interval and runs the drain. *)
      let on_signal _ = Hsq_serve.Server.request_stop srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Hsq_serve.Server.start srv;
      Printf.eprintf "hsq serve: listening on %s (queue depth %d%s%s)\n%!"
        (match listen with
        | Hsq_serve.Server.Unix_sock p -> p
        | Hsq_serve.Server.Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
        queue_depth
        (match durable with None -> "" | Some d -> ", durable at " ^ d)
        ((if shards > 1 then Printf.sprintf ", %d shards" shards else "")
        ^ (if replicas > 1 then Printf.sprintf ", %d replicas" replicas else "")
        ^ if ingest_domains > 1 then Printf.sprintf ", %d ingest lanes" ingest_domains else "");
      Hsq_serve.Server.wait srv;
      prerr_endline "hsq serve: drained";
      0
    with Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "hsq serve: %s(%s): %s\n" fn arg (Unix.error_message e);
      1)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on 127.0.0.1:$(docv) instead of a Unix socket.")
  in
  let queue_depth =
    let doc =
      "Admission-queue capacity: requests beyond $(docv) waiting are shed with an explicit \
       $(b,overloaded) response and a retry-after hint."
    in
    Arg.(value & opt int 128 & info [ "queue-depth" ] ~docv:"N" ~doc)
  in
  let budget name default cls =
    let doc =
      Printf.sprintf
        "Deadline budget for %s requests, milliseconds (queue wait + execution). A request \
         past its budget is answered $(b,timeout)." cls
    in
    Arg.(value & opt float default & info [ name ] ~docv:"MS" ~doc)
  in
  let read_timeout_ms =
    let doc = "Per-connection stalled-read cutoff, milliseconds." in
    Arg.(value & opt float 30_000.0 & info [ "read-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let doc =
    "Run the warehouse as a long-lived daemon answering line-JSON requests (ingest, quick and \
     accurate quantile queries, windowed queries, stats, metrics, health) over a socket, with \
     bounded admission, per-class deadline budgets, and graceful drain on SIGTERM."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket $ tcp $ epsilon $ kappa $ block_size $ query_domains $ durable_dir
      $ wal_sync $ checkpoint_every $ queue_depth
      $ budget "quick-budget-ms" 250.0 "quick-query"
      $ budget "accurate-budget-ms" 2000.0 "accurate-query"
      $ budget "ingest-budget-ms" 2000.0 "ingest"
      $ budget "admin-budget-ms" 1000.0 "admin"
      $ read_timeout_ms $ shards $ replicas $ ingest_domains $ sketch_kind)

let () =
  let doc = "quantiles over the union of historical and streaming data (VLDB'16 reproduction)" in
  let info = Cmd.info "hsq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            simulate_cmd;
            stream_cmd;
            query_cmd;
            inspect_cmd;
            scrub_cmd;
            status_cmd;
            metrics_cmd;
            serve_cmd;
          ]))
