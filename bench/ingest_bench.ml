(* Concurrent-ingest scaling: observe throughput at D ∈ {1, 2, 4, 8}
   ingest lanes, volatile and durable.

   D = 1 is the classic single-writer path (per-element GK insert, the
   paper's StreamUpdate); D > 1 drives the shard-local lane buffers
   through the same persistent Parallel.Pool the CLI uses, so each lane
   hands whole sorted runs into the sketch (Gk.insert_sorted_batch)
   under one propagation lock.  On a small box the speedup is dominated
   by that batching — one O(s + k) merge per hand-off instead of k
   O(s) tuple-array shifts — with thread parallelism stacked on top
   when cores allow, which is exactly the claim DESIGN.md §15 makes.

   Durable rows run under group-commit (--wal-sync group:256 moral
   equivalent) so the table shows lane scaling, not fsync latency; the
   zero-acknowledged-loss policy (Always) is covered by the crash
   harnesses, not a throughput table.

   Exit status: nonzero if the D = 4 volatile row fails the >= 3x
   speedup floor over D = 1 (the PR's acceptance gate), unless
   --no-gate. *)

let n_elements = 400_000
let n_durable = 120_000
let domains_axis = [ 1; 2; 4; 8 ]

let now = Unix.gettimeofday

type row = {
  label : string;
  elems : int;
  elapsed : float;
  speedup : float; (* vs the D = 1 row of the same storage mode *)
}

let rate r = float_of_int r.elems /. r.elapsed

(* Drive [n] seeded elements into [eng] on D lanes; step every
   [step_every] so the warehouse side participates too. *)
let ingest eng ~domains ~n ~seed =
  let rng = Random.State.make [| seed; domains |] in
  let step_every = n / 4 in
  let chunk = 4_096 in
  let pool =
    if domains > 1 then Some (Hsq_util.Parallel.Pool.create ~workers:(domains - 1) ())
    else None
  in
  let buf = Array.make chunk 0 in
  let t0 = now () in
  let fed = ref 0 in
  while !fed < n do
    let k = min chunk (n - !fed) in
    for i = 0 to k - 1 do
      buf.(i) <- Random.State.int rng 10_000_000
    done;
    (match pool with
    | None ->
      for i = 0 to k - 1 do
        Hsq.Engine.observe eng buf.(i)
      done
    | Some p ->
      let per_lane = (k + domains - 1) / domains in
      Hsq_util.Parallel.Pool.run p ~n:domains (fun d ->
          let lo = d * per_lane in
          let hi = min k (lo + per_lane) in
          for i = lo to hi - 1 do
            Hsq.Engine.observe_domain eng ~domain:d buf.(i)
          done);
      ignore (Hsq.Engine.checkpoint_if_due eng));
    fed := !fed + k;
    if !fed mod step_every = 0 && !fed < n then ignore (Hsq.Engine.end_time_step eng)
  done;
  Hsq.Engine.flush_ingest eng;
  let elapsed = now () -. t0 in
  Option.iter Hsq_util.Parallel.Pool.shutdown pool;
  elapsed

let run_volatile ~domains ~seed =
  let eng =
    Hsq.Engine.create (Hsq.Config.make ~ingest_domains:domains (Hsq.Config.Epsilon 0.01))
  in
  let elapsed = ingest eng ~domains ~n:n_elements ~seed in
  let total = Hsq.Engine.total_size eng in
  if total <> n_elements then (
    Printf.eprintf "ingest_bench: VOLATILE D=%d lost elements (%d <> %d)\n" domains total
      n_elements;
    exit 2);
  (elapsed, n_elements)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let run_durable ~domains ~seed =
  let dir = Filename.temp_file "hsq-ingest-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let config =
    Hsq.Config.make ~ingest_domains:domains ~wal_dir:dir
      ~wal_sync:(Hsq_storage.Wal.Group 256) ~checkpoint_every:20_000
      (Hsq.Config.Epsilon 0.01)
  in
  let eng, _ = Hsq.Engine.open_or_recover config in
  let elapsed = ingest eng ~domains ~n:n_durable ~seed in
  let total = Hsq.Engine.total_size eng in
  Hsq.Engine.close eng;
  (try rm_rf dir with Sys_error _ -> ());
  if total <> n_durable then (
    Printf.eprintf "ingest_bench: DURABLE D=%d lost elements (%d <> %d)\n" domains total
      n_durable;
    exit 2);
  (elapsed, n_durable)

(* --- GK vs KLL stream sketch: throughput and checkpoint size ----------
   Same driver, volatile, one row per (sketch, D): elements/s plus the
   size of the sketch's serialized checkpoint image at the end of the
   run (the bytes every checkpoint_every interval pays). *)

let run_sketch_row ~stream_sketch ~domains ~seed =
  let eng =
    Hsq.Engine.create
      (Hsq.Config.make ~ingest_domains:domains ~stream_sketch (Hsq.Config.Epsilon 0.01))
  in
  let elapsed = ingest eng ~domains ~n:n_elements ~seed in
  if Hsq.Engine.total_size eng <> n_elements then (
    Printf.eprintf "ingest_bench: SKETCH D=%d lost elements\n" domains;
    exit 2);
  let sk = Hsq.Engine.stream_sketch eng in
  (elapsed, 8 * Array.length (Hsq.Stream_sketch.serialize sk))

let () =
  let seed = ref 42 and gate = ref true in
  let spec =
    [
      ("--seed", Arg.Set_int seed, "N workload seed");
      ("--no-gate", Arg.Clear gate, " report only; do not enforce the 3x floor");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "ingest_bench [options]";
  let measure mode runner =
    let base = ref nan in
    List.map
      (fun d ->
        let elapsed, elems = runner ~domains:d ~seed:!seed in
        if d = 1 then base := elapsed;
        {
          label = Printf.sprintf "%s D=%d" mode d;
          elems;
          elapsed;
          speedup = !base /. elapsed;
        })
      domains_axis
  in
  let vol = measure "volatile" run_volatile in
  let dur = measure "durable " run_durable in
  Printf.printf "ingest_bench: %d volatile / %d durable elements per row, seed %d\n" n_elements
    n_durable !seed;
  Printf.printf "%-14s %12s %12s %9s\n" "config" "elements/s" "elapsed_s" "speedup";
  List.iter
    (fun r -> Printf.printf "%-14s %12.0f %12.3f %8.2fx\n" r.label (rate r) r.elapsed r.speedup)
    (vol @ dur);
  Printf.printf "\nstream sketch (volatile, eps=0.01, %d elements):\n" n_elements;
  Printf.printf "%-14s %12s %12s %12s\n" "config" "elements/s" "elapsed_s" "ckpt_bytes";
  List.iter
    (fun (label, kind) ->
      List.iter
        (fun d ->
          let elapsed, ckpt_bytes = run_sketch_row ~stream_sketch:kind ~domains:d ~seed:!seed in
          Printf.printf "%-14s %12.0f %12.3f %12d\n"
            (Printf.sprintf "%s D=%d" label d)
            (float_of_int n_elements /. elapsed)
            elapsed ckpt_bytes)
        [ 1; 4 ])
    [ ("gk", `Gk); ("kll", `Kll) ];
  let d4 = List.nth vol 2 in
  Printf.printf "gate: volatile D=4 speedup %.2fx (floor 3.00x) — %s\n" d4.speedup
    (if d4.speedup >= 3.0 then "PASS" else "FAIL");
  if !gate && d4.speedup < 3.0 then exit 1
