(* Fused vs single-shard query cost.

   Loads the same workload into volatile groups at K ∈ {1, 2, 4} and
   measures ingest throughput plus quick / accurate query latency over
   a φ-sweep.  K=1 goes through the same group surface, so the numbers
   isolate what fusion itself costs: the k-way summary merge on quick,
   and the multi-shard probe fan-out on accurate.  A final column
   re-measures quick/accurate with one shard down (K=4), showing the
   degraded path's cost next to its widened bound.

   A replicated section follows: K=4 at R ∈ {1, 2} isolates the write
   amplification of synchronous replica fan-out (every acked observe
   applies to R engines), and a "1 rep down" row measures the failover
   read path — one replica of a shard dark, answers still served at
   full precision by its sibling — next to the healthy R=2 numbers. *)

module G = Hsq_shard.Shard_group

let n_hist_steps = 4
let per_step = 50_000
let n_stream = 10_000
let n_queries = 400

let now = Unix.gettimeofday

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan else sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let phis = Array.init n_queries (fun i -> 0.005 +. (0.99 *. float_of_int i /. float_of_int n_queries))

type row = {
  label : string;
  ingest_per_s : float;
  quick_p50_us : float;
  quick_p99_us : float;
  acc_p50_ms : float;
  acc_p99_ms : float;
  acc_bound_mean : float;
}

let measure ~label ?down ?down_replica g =
  (match down with Some s -> G.mark_down g s ~reason:"bench" | None -> ());
  (match down_replica with
  | Some (s, j) -> G.mark_replica_down g ~shard:s ~replica:j ~reason:"bench"
  | None -> ());
  let quick_lat = Array.make n_queries 0.0 in
  let acc_lat = Array.make n_queries 0.0 in
  let bound_sum = ref 0.0 in
  Array.iteri
    (fun i phi ->
      let n = G.total_size g in
      let rank = max 1 (min n (int_of_float (ceil (phi *. float_of_int n)))) in
      let t0 = now () in
      ignore (G.quick g ~rank);
      quick_lat.(i) <- now () -. t0)
    phis;
  Array.iteri
    (fun i phi ->
      let n = G.total_size g in
      let rank = max 1 (min n (int_of_float (ceil (phi *. float_of_int n)))) in
      let t0 = now () in
      let _, report = G.accurate g ~rank in
      acc_lat.(i) <- now () -. t0;
      bound_sum := !bound_sum +. report.G.rank_error_bound)
    phis;
  Array.sort compare quick_lat;
  Array.sort compare acc_lat;
  {
    label;
    ingest_per_s = 0.0;
    quick_p50_us = 1e6 *. percentile quick_lat 0.5;
    quick_p99_us = 1e6 *. percentile quick_lat 0.99;
    acc_p50_ms = 1e3 *. percentile acc_lat 0.5;
    acc_p99_ms = 1e3 *. percentile acc_lat 0.99;
    acc_bound_mean = !bound_sum /. float_of_int n_queries;
  }

let build ?(replicas = 1) k ~seed =
  let g = G.create (Hsq.Config.make ~shards:k ~replicas (Hsq.Config.Epsilon 0.01)) in
  let rng = Random.State.make [| seed; k |] in
  let t0 = now () in
  for _step = 1 to n_hist_steps do
    for _ = 1 to per_step do
      G.observe g (Random.State.int rng 10_000_000)
    done;
    ignore (G.end_time_step g)
  done;
  for _ = 1 to n_stream do
    G.observe g (Random.State.int rng 10_000_000)
  done;
  let ingest_per_s = float_of_int ((n_hist_steps * per_step) + n_stream) /. (now () -. t0) in
  (g, ingest_per_s)

let () =
  let seed = try int_of_string Sys.argv.(1) with _ -> 42 in
  let rows = ref [] in
  List.iter
    (fun k ->
      let g, ingest_per_s = build k ~seed in
      rows := { (measure ~label:(Printf.sprintf "K=%d" k) g) with ingest_per_s } :: !rows;
      if k = 4 then begin
        let g2, _ = build k ~seed in
        rows :=
          { (measure ~label:"K=4, 1 down" ~down:1 g2) with ingest_per_s = 0.0 } :: !rows;
        G.close g2
      end;
      G.close g)
    [ 1; 2; 4 ];
  (* Replicated rows: same workload, K=4, R in {1, 2}.  The R=1 row is
     the K=4 row above; R=2 shows the synchronous write amplification
     on ingest, and the "1 rep down" row the failover read path. *)
  let g_r2, ingest_r2 = build 4 ~replicas:2 ~seed in
  rows := { (measure ~label:"K=4 R=2" g_r2) with ingest_per_s = ingest_r2 } :: !rows;
  rows :=
    { (measure ~label:"K=4 R=2, 1 rep down" ~down_replica:(0, 1) g_r2) with ingest_per_s = 0.0 }
    :: !rows;
  G.close g_r2;
  Printf.printf "shard_bench: %d hist + %d stream elements, %d queries per cell, seed %d\n"
    (n_hist_steps * per_step) n_stream n_queries seed;
  Printf.printf "%-12s %12s %12s %12s %12s %12s %12s\n" "config" "ingest/s" "quick_p50us"
    "quick_p99us" "acc_p50ms" "acc_p99ms" "acc_bound";
  List.iter
    (fun r ->
      Printf.printf "%-12s %12s %12.1f %12.1f %12.2f %12.2f %12.1f\n" r.label
        (if r.ingest_per_s > 0.0 then Printf.sprintf "%.0f" r.ingest_per_s else "-")
        r.quick_p50_us r.quick_p99_us r.acc_p50_ms r.acc_p99_ms r.acc_bound_mean)
    (List.rev !rows)
