(* Bench entry point: regenerates every figure of the paper's
   evaluation section (see DESIGN.md's per-experiment index) plus
   bechamel micro-benchmarks.

     dune exec bench/main.exe                  -- everything, default scale
     dune exec bench/main.exe -- --figure fig4 -- one figure
     dune exec bench/main.exe -- --steps 20 --step-size 2000 --runs 1

   Absolute numbers reflect the simulator scale; the reproduction
   target is the shape of each series (EXPERIMENTS.md records both). *)

let all_figures =
  [
    ("fig4", Figures.fig4);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("fig9", Figures.fig9);
    ("fig10", Figures.fig10);
    ("fig11", Figures.fig11);
    ("fig12", Figures.fig12);
    ("fig13", Figures.fig13);
    ("sketches", Figures.sketches);
    ("ablations", Figures.ablations);
    ("extensions", Figures.extensions);
  ]

let () =
  let scale = ref Harness.default_scale in
  let which = ref "all" in
  let smoke = ref false in
  let set_steps n = scale := { !scale with Harness.steps = n } in
  let set_step_size n = scale := { !scale with Harness.step_size = n } in
  let set_runs n = scale := { !scale with Harness.runs = n } in
  let set_seed n = scale := { !scale with Harness.seed = n } in
  let set_block n = scale := { !scale with Harness.block_size = n } in
  let spec =
    [
      ("--figure", Arg.Set_string which, "fig4..fig13, sketches, ablations, extensions, micro, or all (default all)");
      ("--smoke", Arg.Set smoke, "CI smoke mode: run only the micro rows, tiny and fast");
      ("--steps", Arg.Int set_steps, "archived time steps (default 100)");
      ("--step-size", Arg.Int set_step_size, "elements per time step (default 10000)");
      ("--runs", Arg.Int set_runs, "independent seeds for error figures (default 3)");
      ("--seed", Arg.Int set_seed, "base RNG seed");
      ("--block-size", Arg.Int set_block, "elements per simulated disk block (default 256)");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "hsq bench";
  let scale = !scale in
  Printf.printf
    "hsq bench: steps=%d step_size=%d runs=%d block_size=%d seed=%#x\n\
     (simulated block device; disk-access counts are exact, wall times are simulator-scale)\n%!"
    scale.Harness.steps scale.Harness.step_size scale.Harness.runs scale.Harness.block_size
    scale.Harness.seed;
  let t0 = Unix.gettimeofday () in
  (match if !smoke then "smoke" else !which with
  | "smoke" -> Micro.run ~smoke:true ()
  | "all" ->
    List.iter
      (fun (name, f) ->
        Printf.eprintf "[bench] %s...\n%!" name;
        f ~scale)
      all_figures;
    Micro.run ()
  | "micro" -> Micro.run ()
  | name -> (
    match List.assoc_opt name all_figures with
    | Some f -> f ~scale
    | None ->
      Printf.eprintf "unknown figure %S; available: %s, micro\n" name
        (String.concat ", " (List.map fst all_figures));
      exit 2));
  Printf.printf "\ntotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
