(* One generator per figure of the paper's evaluation (Section 3.2).
   Each prints the same series the paper plots, as an aligned table.
   Absolute numbers reflect the simulator scale; the shapes are the
   reproduction target (see EXPERIMENTS.md). *)

module E = Hsq.Engine
open Harness

let datasets = Hsq_workload.Datasets.names

let config_of ~scale ~kappa ~words ?steps () =
  let steps_hint = Option.value steps ~default:scale.steps in
  Hsq.Config.make ~kappa ~block_size:scale.block_size ~steps_hint (Hsq.Config.Memory_words words)

let kappas = [ 3; 5; 7; 9; 10; 15; 20; 25; 30 ]

(* Fixed budget used by the kappa sweeps — the paper's "memory fixed at
   250 MB" for ~100 GB, i.e. 0.25% of N. *)
let fixed_budget w = max 512 (int_of_float (0.0025 *. float_of_int w.total))

(* --- Figure 4: relative error vs memory --------------------------------- *)

let fig4 ~scale =
  List.iter
    (fun ds ->
      print_header
        (Printf.sprintf "Figure 4 (%s): relative error vs memory, kappa=10, N=%d, %d run(s)" ds
           ((scale.steps + 1) * scale.step_size)
           scale.runs);
      print_row
        [ fmt_i 0; "   ours-accurate"; "  quick-response"; "              gk"; "        q-digest" ];
      (* One workload per seed, reused across every budget and system;
         medians across seeds per cell. *)
      let per_seed =
        List.init scale.runs (fun i ->
            let scale = { scale with seed = scale.seed + (7919 * i) } in
            let w = load_workload ~scale ~dataset:ds () in
            List.map
              (fun words ->
                let eng, _ = build_engine ~config:(config_of ~scale ~kappa:10 ~words ()) w in
                let row =
                  ( accurate_error eng w,
                    quick_error eng w,
                    streaming_error ~algorithm:Hsq.Baselines.Streaming.Gk_stream ~words w,
                    streaming_error ~algorithm:Hsq.Baselines.Streaming.Qdigest_stream ~words w )
                in
                (words, row))
              (memory_budgets w))
      in
      match per_seed with
      | [] -> ()
      | first :: _ ->
        List.iteri
          (fun row_idx (words, _) ->
            let med proj =
              Hsq_util.Stats.median
                (List.map (fun rows -> proj (snd (List.nth rows row_idx))) per_seed)
            in
            print_row
              [
                fmt_i words;
                fmt_e (med (fun (a, _, _, _) -> a));
                fmt_e (med (fun (_, q, _, _) -> q));
                fmt_e (med (fun (_, _, g, _) -> g));
                fmt_e (med (fun (_, _, _, d) -> d));
              ])
          first)
    datasets

(* --- Figure 5: relative error vs kappa ---------------------------------- *)

let fig5 ~scale =
  List.iter
    (fun ds ->
      print_header
        (Printf.sprintf "Figure 5 (%s): relative error vs kappa, memory fixed at 0.25%% of N" ds);
      print_row [ fmt_i 0; "        practice"; "          theory" ];
      let w = load_workload ~scale ~dataset:ds () in
      let words = fixed_budget w in
      List.iter
        (fun kappa ->
          let eng, _ = build_engine ~config:(config_of ~scale ~kappa ~words ()) w in
          let practice = accurate_error eng w in
          let m = E.stream_size eng in
          let theory =
            Hsq_util.Stats.mean
              (List.map
                 (fun phi ->
                   Hsq.Errors.theory_relative_accurate ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m
                     ~phi ~total:(E.total_size eng))
                 phis)
          in
          print_row [ fmt_i kappa; fmt_e practice; fmt_e theory ])
        (2 :: kappas))
    datasets

(* --- Figure 6: update time vs memory ------------------------------------- *)

let fig6 ~scale =
  List.iter
    (fun ds ->
      print_header
        (Printf.sprintf
           "Figure 6 (%s): update time per step (s) vs memory, kappa=10 (ours: load/sort/merge/summary; baselines: sketch update, same load+merge by construction)"
           ds);
      print_row
        [
          fmt_i 0; "       ours-total"; "         load"; "         sort"; "        merge";
          "      summary"; "     gk-sketch"; "     qd-sketch";
        ];
      let w = load_workload ~scale ~dataset:ds () in
      List.iter
        (fun words ->
          let eng_cfg = config_of ~scale ~kappa:10 ~words () in
          let _, reports = build_engine ~config:eng_cfg w in
          let u = summarize_updates reports in
          let baseline_seconds algorithm =
            let b =
              Hsq.Baselines.Streaming.create ~universe_bits:w.universe_bits ~algorithm ~words
                ~kappa:10 ~block_size:scale.block_size ()
            in
            let t0 = Unix.gettimeofday () in
            Array.iter
              (fun batch ->
                Array.iter (Hsq.Baselines.Streaming.observe b) batch;
                ignore (Hsq.Baselines.Streaming.end_time_step b))
              w.batches;
            (Unix.gettimeofday () -. t0) /. float_of_int (Array.length w.batches)
          in
          let gk_s = baseline_seconds Hsq.Baselines.Streaming.Gk_stream in
          let qd_s = baseline_seconds Hsq.Baselines.Streaming.Qdigest_stream in
          print_row
            [
              fmt_i words; fmt_f u.mean_seconds; fmt_f u.mean_load; fmt_f u.mean_sort;
              fmt_f u.mean_merge; fmt_f u.mean_summary; fmt_f gk_s; fmt_f qd_s;
            ])
        (memory_budgets w))
    datasets

(* --- Figure 7: update time and disk accesses vs kappa --------------------- *)

let fig7 ~scale =
  List.iter
    (fun ds ->
      print_header
        (Printf.sprintf "Figure 7 (%s): update cost per step vs kappa, memory fixed" ds);
      print_row
        [
          fmt_i 0; "   update-sec"; "    io-overall"; "      io-merge"; "         sort";
          "         load"; "        merge";
        ];
      let w = load_workload ~scale ~dataset:ds () in
      let words = fixed_budget w in
      List.iter
        (fun kappa ->
          let _, reports = build_engine ~config:(config_of ~scale ~kappa ~words ()) w in
          let u = summarize_updates reports in
          print_row
            [
              fmt_i kappa; fmt_f u.mean_seconds; fmt_f u.mean_io; fmt_f u.mean_merge_io;
              fmt_f u.mean_sort; fmt_f u.mean_load; fmt_f u.mean_merge;
            ])
        kappas)
    datasets

(* --- Figure 8: CDF of per-step update disk accesses ----------------------- *)

let fig8 ~scale =
  print_header
    (Printf.sprintf
       "Figure 8: cumulative %% of time steps vs update disk accesses (Normal, %d steps)"
       scale.steps);
  let w = load_workload ~scale ~dataset:"normal" () in
  let words = fixed_budget w in
  List.iter
    (fun kappa ->
      let _, reports = build_engine ~config:(config_of ~scale ~kappa ~words ()) w in
      let ios =
        Array.map
          (fun (r : Hsq_hist.Level_index.update_report) ->
            Hsq_storage.Io_stats.total r.Hsq_hist.Level_index.io_total)
          reports
      in
      Array.sort compare ios;
      let n = Array.length ios in
      Printf.printf "kappa=%d:\n" kappa;
      print_row [ fmt_i 0; "  disk-accesses"; "          cum%" ];
      (* one row per distinct access count *)
      let i = ref 0 in
      while !i < n do
        let v = ios.(!i) in
        let j = ref !i in
        while !j < n && ios.(!j) = v do
          incr j
        done;
        print_row
          [ fmt_i 0; fmt_i v; fmt_f (100.0 *. float_of_int !j /. float_of_int n) ];
        i := !j
      done)
    [ 7; 9; 10 ]

(* --- Figure 9: query cost vs memory --------------------------------------- *)

let fig9 ~scale =
  List.iter
    (fun ds ->
      print_header
        (Printf.sprintf "Figure 9 (%s): query runtime (s) and disk accesses vs memory, kappa=10" ds);
      print_row
        [ fmt_i 0; "     ours-sec"; "      ours-io"; "       gk-sec"; "       qd-sec" ];
      let w = load_workload ~scale ~dataset:ds () in
      List.iter
        (fun words ->
          let eng, _ = build_engine ~config:(config_of ~scale ~kappa:10 ~words ()) w in
          let seconds, io = query_cost eng in
          let baseline_query algorithm =
            let b =
              Hsq.Baselines.Streaming.create ~universe_bits:w.universe_bits ~algorithm ~words
                ~kappa:10 ~block_size:scale.block_size ()
            in
            Array.iter
              (fun batch ->
                Array.iter (Hsq.Baselines.Streaming.observe b) batch;
                ignore (Hsq.Baselines.Streaming.end_time_step b))
              w.batches;
            Array.iter (Hsq.Baselines.Streaming.observe b) w.tail;
            let n = Hsq.Baselines.Streaming.count b in
            let t0 = Unix.gettimeofday () in
            let reps = 3 in
            for _ = 1 to reps do
              List.iter
                (fun phi ->
                  ignore
                    (Hsq.Baselines.Streaming.query_rank b
                       (int_of_float (ceil (phi *. float_of_int n)))))
                phis
            done;
            (Unix.gettimeofday () -. t0) /. float_of_int (reps * List.length phis)
          in
          let gk_s = baseline_query Hsq.Baselines.Streaming.Gk_stream in
          let qd_s = baseline_query Hsq.Baselines.Streaming.Qdigest_stream in
          print_row [ fmt_i words; fmt_f seconds; fmt_f io; fmt_f gk_s; fmt_f qd_s ])
        (memory_budgets w))
    datasets

(* --- Figure 10: query cost vs kappa ---------------------------------------- *)

let fig10 ~scale =
  List.iter
    (fun ds ->
      print_header
        (Printf.sprintf "Figure 10 (%s): query runtime (s) and disk accesses vs kappa" ds);
      print_row [ fmt_i 0; "     ours-sec"; "      ours-io" ];
      let w = load_workload ~scale ~dataset:ds () in
      let words = fixed_budget w in
      List.iter
        (fun kappa ->
          let eng, _ = build_engine ~config:(config_of ~scale ~kappa ~words ()) w in
          let seconds, io = query_cost eng in
          print_row [ fmt_i kappa; fmt_f seconds; fmt_f io ])
        kappas)
    datasets

(* --- Figure 11: windowed query cost vs window size --------------------------- *)

let fig11 ~scale =
  List.iter
    (fun kappa ->
      print_header
        (Printf.sprintf
           "Figure 11 (kappa=%d): window query runtime (s) and disk accesses vs window size (Normal)"
           kappa);
      print_row [ fmt_i 0; "    query-sec"; "     query-io" ];
      let w = load_workload ~scale ~dataset:"normal" () in
      let words = fixed_budget w in
      let eng, _ = build_engine ~config:(config_of ~scale ~kappa ~words ()) w in
      List.iter
        (fun window ->
          match E.window_total eng ~window with
          | Error _ -> ()
          | Ok n ->
            let r = max 1 (n / 2) in
            let t0 = Unix.gettimeofday () in
            let io = ref 0 in
            let reps = 5 in
            for _ = 1 to reps do
              match E.accurate_window eng ~window ~rank:r with
              | Ok (_, report) -> io := !io + Hsq_storage.Io_stats.total report.E.io
              | Error _ -> ()
            done;
            let seconds = (Unix.gettimeofday () -. t0) /. float_of_int reps in
            print_row
              [ fmt_i window; fmt_f seconds; fmt_f (float_of_int !io /. float_of_int reps) ])
        (E.window_sizes eng))
    [ 3; 10 ]

(* --- Figure 12: scalability in historical size -------------------------------- *)

let fig12 ~scale =
  print_header
    "Figure 12: accuracy and cost vs historical size (Normal, stream fixed at one batch, kappa=10)";
  print_row
    [
      fmt_i 0; "     rel-error"; "    update-sec"; "     update-io"; "      merge-io";
      "     query-sec"; "      query-io";
    ];
  let fractions = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  List.iter
    (fun tenth ->
      let steps = max 1 (scale.steps * tenth / 10) in
      let w = load_workload ~steps ~scale ~dataset:"normal" () in
      let words = fixed_budget (load_workload ~scale ~dataset:"normal" ()) in
      let eng, reports = build_engine ~config:(config_of ~scale ~kappa:10 ~words ~steps ()) w in
      let u = summarize_updates reports in
      let err = accurate_error eng w in
      let seconds, io = query_cost eng in
      print_row
        [
          fmt_i (steps * scale.step_size); fmt_e err; fmt_f u.mean_seconds; fmt_f u.mean_io;
          fmt_f u.mean_merge_io; fmt_f seconds; fmt_f io;
        ])
    fractions

(* --- Figure 13: scalability in stream size -------------------------------------- *)

let fig13 ~scale =
  print_header
    "Figure 13: accuracy and cost vs stream size (Normal, history fixed, kappa=10)";
  print_row
    [
      fmt_i 0; "     rel-error"; "    update-sec"; "     update-io"; "     query-sec";
      "      query-io";
    ];
  let base = load_workload ~scale ~dataset:"normal" () in
  let words = fixed_budget base in
  List.iter
    (fun fifth ->
      let tail_size = max 1 (scale.step_size * fifth / 5) in
      (* Same archived history; live stream truncated to [tail_size]. *)
      let w =
        {
          base with
          tail = Array.sub base.tail 0 tail_size;
          oracle =
            (let o = Hsq_workload.Oracle.create () in
             Array.iter (Hsq_workload.Oracle.add_batch o) base.batches;
             Hsq_workload.Oracle.add_batch o (Array.sub base.tail 0 tail_size);
             o);
          total = (scale.steps * scale.step_size) + tail_size;
        }
      in
      let eng, reports = build_engine ~config:(config_of ~scale ~kappa:10 ~words ()) w in
      let u = summarize_updates reports in
      let err = accurate_error eng w in
      let seconds, io = query_cost eng in
      print_row
        [
          fmt_i tail_size; fmt_e err; fmt_f u.mean_seconds; fmt_f u.mean_io; fmt_f seconds;
          fmt_f io;
        ])
    [ 1; 2; 3; 4; 5 ]

(* --- Ablations: the design choices DESIGN.md calls out -------------------- *)

(* (a) Memory split between stream sketch and historical summaries.
   The paper fixes 50/50 and calls the optimal split an open question
   (Section 3.1); this sweeps it.  (b) Algorithm 8's stopping band, the
   accuracy <-> disk-access axis of the tradeoff space in the paper's
   conclusion (band = factor * eps2 * m; the paper's own band is factor
   4).  (c) The Section 2.4 one-block cache optimization, on vs off. *)
(* --- Sketch tier: GK vs KLL as the eps2 stream sketch ------------------- *)

(* Not a paper figure: compares the two mergeable stream-sketch tiers
   behind the same engine — answer quality through both query paths,
   resident sketch words, and the serialized checkpoint image size. *)
let sketches ~scale =
  List.iter
    (fun ds ->
      print_header
        (Printf.sprintf "Sketch tier (%s): GK vs KLL stream sketch, eps=0.01, N=%d" ds
           ((scale.steps + 1) * scale.step_size));
      print_row
        [ "      sketch"; "   ours-accurate"; "  quick-response"; " sketch_words"; "   ckpt_bytes" ];
      let w = load_workload ~scale ~dataset:ds () in
      List.iter
        (fun (label, kind) ->
          let config =
            Hsq.Config.make ~kappa:10 ~block_size:scale.block_size ~steps_hint:scale.steps
              ~stream_sketch:kind (Hsq.Config.Epsilon 0.01)
          in
          let eng, _ = build_engine ~config w in
          let sk = E.stream_sketch eng in
          print_row
            [
              Printf.sprintf "%12s" label;
              fmt_e (accurate_error eng w);
              fmt_e (quick_error eng w);
              fmt_i (Hsq.Stream_sketch.memory_words sk);
              fmt_i (8 * Array.length (Hsq.Stream_sketch.serialize sk));
            ])
        [ ("gk", `Gk); ("kll", `Kll) ])
    datasets

let ablations ~scale =
  let w = load_workload ~scale ~dataset:"normal" () in
  let words = fixed_budget w in
  print_header
    (Printf.sprintf
       "Ablation A: memory split (stream fraction of a %d-word budget; paper uses 0.50)" words);
  print_row [ fmt_f 0.0; "   ours-accurate"; "  quick-response" ];
  List.iter
    (fun fraction ->
      let config =
        Hsq.Config.make ~kappa:10 ~block_size:scale.block_size ~steps_hint:scale.steps
          ~stream_fraction:fraction (Hsq.Config.Memory_words words)
      in
      let eng, _ = build_engine ~config w in
      print_row [ fmt_f fraction; fmt_e (accurate_error eng w); fmt_e (quick_error eng w) ])
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ];

  print_header
    "Ablation B: Algorithm 8 stopping band (factor x eps2*m; paper stops at factor 4)";
  print_row [ fmt_f 0.0; "   ours-accurate"; "      query-io" ];
  let eng, _ = build_engine ~config:(config_of ~scale ~kappa:10 ~words ()) w in
  let n = E.total_size eng in
  List.iter
    (fun factor ->
      let errs = ref [] and ios = ref 0 and count = ref 0 in
      List.iter
        (fun phi ->
          let r = int_of_float (ceil (phi *. float_of_int n)) in
          let v, report = E.accurate ~tolerance_factor:factor eng ~rank:r in
          errs :=
            (float_of_int (Hsq_workload.Oracle.rank_error w.oracle ~rank:r ~value:v)
            /. (phi *. float_of_int n))
            :: !errs;
          ios := !ios + Hsq_storage.Io_stats.total report.E.io;
          incr count)
        phis;
      print_row
        [
          fmt_f factor;
          fmt_e (Hsq_util.Stats.mean !errs);
          fmt_f (float_of_int !ios /. float_of_int !count);
        ])
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];

  print_header
    "Ablation D: buffer pool (OS-page-cache stand-in) capacity vs physical query reads";
  print_row [ fmt_i 0; "  physical-io"; "     hit-rate" ];
  let dev = E.device eng in
  List.iter
    (fun pool_blocks ->
      if pool_blocks = 0 then Hsq_storage.Block_device.disable_pool dev
      else Hsq_storage.Block_device.enable_pool dev ~capacity:pool_blocks;
      (* warm over one pass of the probe quantiles, then measure *)
      ignore (query_cost eng);
      let _, io = query_cost eng in
      let hit_rate =
        match Hsq_storage.Block_device.pool_stats dev with
        | Some (h, m) when h + m > 0 -> float_of_int h /. float_of_int (h + m)
        | _ -> 0.0
      in
      print_row [ fmt_i pool_blocks; fmt_f io; fmt_f hit_rate ])
    [ 0; 16; 64; 256; 1024 ];
  Hsq_storage.Block_device.disable_pool dev;

  print_header
    (Printf.sprintf
       "Ablation E: parallel batch sorting (paper future work, Section 4); 500k-element batches, %d core(s) available"
       (Domain.recommended_domain_count ()));
  print_row [ fmt_i 0; "  sort-sec/step" ];
  List.iter
    (fun domains ->
      let sort_domains = if domains = 1 then None else Some domains in
      let config =
        Hsq.Config.make ~kappa:10 ~block_size:scale.block_size ~steps_hint:4 ?sort_domains
          (Hsq.Config.Epsilon 0.01)
      in
      let eng = E.create config in
      let rng = Hsq_util.Xoshiro.create 4242 in
      let secs = ref 0.0 in
      for _ = 1 to 4 do
        let batch = Array.init 500_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000_000) in
        let report = E.ingest_batch eng batch in
        secs := !secs +. report.Hsq_hist.Level_index.sort_seconds
      done;
      print_row [ fmt_i domains; fmt_f (!secs /. 4.0) ])
    [ 1; 2; 4 ];

  print_header "Ablation C: Section 2.4 one-block cache (query disk accesses)";
  print_row [ fmt_i 0; "      query-io" ];
  List.iter
    (fun enabled ->
      List.iter
        (fun p -> Hsq_storage.Run.set_cache_enabled (Hsq_hist.Partition.run p) enabled)
        (Hsq_hist.Level_index.partitions (E.hist eng));
      let _, io = query_cost eng in
      Printf.printf "cache %-3s %s\n" (if enabled then "on" else "off") (fmt_f io))
    [ true; false ];
  List.iter
    (fun p -> Hsq_storage.Run.set_cache_enabled (Hsq_hist.Partition.run p) true)
    (Hsq_hist.Level_index.partitions (E.hist eng))

(* --- Extension benches ------------------------------------------------------ *)

let extensions ~scale =
  (* Heavy hitters over the union: query cost and yield vs phi, on a
     static Zipf stream (the network dataset's deliberate per-step
     drift spreads every pair's count across steps, so nothing is
     globally frequent there). *)
  print_header "Extension: heavy hitters over the union (static Zipf s=1.2), cost vs phi";
  print_row [ fmt_f 0.0; "         hits"; "   candidates"; "     query-io" ];
  let rng_hh = Hsq_util.Xoshiro.create (scale.seed lxor 0x6868) in
  let zipf = Hsq_workload.Distribution.Zipf.create ~n:10_000 ~s:1.2 in
  let config =
    Hsq.Config.make ~kappa:10 ~block_size:scale.block_size ~steps_hint:scale.steps
      (Hsq.Config.Epsilon 0.01)
  in
  let hh = Hsq.Heavy_hitters.create ~capacity:1024 config in
  let hh_batch size =
    Array.init size (fun _ -> Hsq_workload.Distribution.Zipf.sample zipf rng_hh)
  in
  for _ = 1 to min 30 scale.steps do
    ignore (Hsq.Heavy_hitters.ingest_batch hh (hh_batch scale.step_size))
  done;
  Array.iter (Hsq.Heavy_hitters.observe hh) (hh_batch (scale.step_size / 2));
  List.iter
    (fun phi ->
      let hits, report = Hsq.Heavy_hitters.frequent hh ~phi in
      print_row
        [
          fmt_f phi;
          fmt_i (List.length hits);
          fmt_i report.Hsq.Heavy_hitters.candidates;
          fmt_i (Hsq_storage.Io_stats.total report.Hsq.Heavy_hitters.io);
        ])
    [ 0.05; 0.02; 0.01; 0.005; 0.002 ];

  (* CKMS: memory needed for a given p99.9 rank error vs uniform GK. *)
  print_header "Extension: CKMS high-biased tail sketch vs uniform GK (50k uniform elements)";
  print_row [ fmt_i 0; "   ckms-words"; "     gk-words"; "  ckms-p999-err"; "    gk-p999-err" ];
  let rng = Hsq_util.Xoshiro.create scale.seed in
  let n = 50_000 in
  let data = Array.init n (fun _ -> Hsq_util.Xoshiro.int rng 10_000_000) in
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let p999 = int_of_float (ceil (0.999 *. float_of_int n)) in
  let err value =
    let hi = Hsq_util.Sorted.rank sorted value in
    let lo = min hi (Hsq_util.Sorted.rank_strict sorted value + 1) in
    if p999 < lo then lo - p999 else if p999 > hi then p999 - hi else 0
  in
  List.iter
    (fun (label, eps_ck, eps_gk) ->
      let ck = Hsq_sketch.Ckms.create ~bias:Hsq_sketch.Ckms.High_biased ~epsilon:eps_ck () in
      let gk = Hsq_sketch.Gk.create ~epsilon:eps_gk in
      Array.iter
        (fun v ->
          Hsq_sketch.Ckms.insert ck v;
          Hsq_sketch.Gk.insert gk v)
        data;
      Printf.printf "%12s" label;
      print_row
        [
          fmt_i (Hsq_sketch.Ckms.memory_words ck);
          fmt_i (Hsq_sketch.Gk.memory_words gk);
          fmt_i (err (Hsq_sketch.Ckms.query_rank ck p999));
          fmt_i (err (Hsq_sketch.Gk.query_rank gk p999));
        ])
    [ ("coarse", 0.1, 0.0001); ("medium", 0.05, 0.00005); ("fine", 0.02, 0.00002) ];

  (* The Section 2 strawman: keeping H fully sorted makes every step
     rewrite the whole history; ours stays near the batch-write cost. *)
  print_header
    "Extension: update disk I/O per step, ours vs the Section-2 strawman (fully sorted warehouse)";
  print_row [ fmt_i 0; "      ours-io"; "  strawman-io" ];
  let ds = Hsq_workload.Datasets.uniform ~seed:scale.seed in
  let steps = min 40 scale.steps in
  let eng =
    Hsq.Engine.create
      (Hsq.Config.make ~kappa:10 ~block_size:scale.block_size ~steps_hint:steps
         (Hsq.Config.Epsilon 0.01))
  in
  let straw = Hsq.Baselines.Strawman.create ~epsilon:0.01 ~block_size:scale.block_size () in
  for step = 1 to steps do
    let batch = Hsq_workload.Datasets.next_batch ds scale.step_size in
    let ours = Hsq.Engine.ingest_batch eng batch in
    Array.iter (Hsq.Baselines.Strawman.observe straw) batch;
    let straw_io = Hsq.Baselines.Strawman.end_time_step straw in
    if step mod 10 = 0 then
      print_row
        [
          fmt_i step;
          fmt_i (Hsq_storage.Io_stats.total ours.Hsq_hist.Level_index.io_total);
          fmt_i (Hsq_storage.Io_stats.total straw_io);
        ]
  done;

  (* Retention: expiry cost and footprint under a rolling window. *)
  print_header "Extension: retention (keep last 32 steps of a 100-step run, Normal)";
  print_row [ fmt_i 0; "  live-elements"; "   live-blocks"; "  parts-dropped" ];
  let ds = Hsq_workload.Datasets.normal ~seed:scale.seed in
  let eng =
    Hsq.Engine.create
      (Hsq.Config.make ~kappa:4 ~block_size:scale.block_size ~steps_hint:scale.steps
         (Hsq.Config.Epsilon 0.01))
  in
  let dropped = ref 0 in
  for step = 1 to scale.steps do
    ignore (Hsq.Engine.ingest_batch eng (Hsq_workload.Datasets.next_batch ds scale.step_size));
    let p, _ = Hsq.Engine.expire eng ~keep_steps:32 in
    dropped := !dropped + p;
    if step mod 20 = 0 then
      print_row
        [
          fmt_i step;
          fmt_i (Hsq.Engine.hist_size eng);
          fmt_i (Hsq_storage.Block_device.live_blocks (Hsq.Engine.device eng));
          fmt_i !dropped;
        ]
  done
