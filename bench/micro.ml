(* Bechamel micro-benchmarks for the core operations behind every
   figure: sketch inserts, summary extraction, and the two query paths.
   Reported as nanoseconds per operation (OLS estimate against the run
   counter). *)

open Bechamel
open Toolkit

(* A pre-built medium engine shared (read-only) by the query benches. *)
let prepared_engine () =
  let scale = { Harness.default_scale with steps = 20; step_size = 5_000 } in
  let w = Harness.load_workload ~scale ~dataset:"uniform" () in
  let config =
    Hsq.Config.make ~kappa:10 ~block_size:scale.block_size ~steps_hint:scale.steps
      (Hsq.Config.Epsilon 0.01)
  in
  let eng, _ = Harness.build_engine ~config w in
  eng

(* A durable engine over a throwaway store, for the ingest-throughput
   benches.  Checkpoints are off: the WAL sync policy is the axis under
   measurement, and a mid-bench checkpoint (which serializes the whole
   open batch) would spike single samples unfairly. *)
let durable_engine ~wal_sync () =
  let dir = Filename.temp_file "hsq_bench_wal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  at_exit (fun () ->
      try
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      with Sys_error _ -> ());
  let config =
    Hsq.Config.make ~kappa:10 ~block_size:256 ~wal_dir:dir ~wal_sync ~checkpoint_every:0
      (Hsq.Config.Epsilon 0.01)
  in
  let eng, _ = Hsq.Engine.open_or_recover config in
  eng

let tests () =
  let rng = Hsq_util.Xoshiro.create 1234 in
  let gk = Hsq_sketch.Gk.create ~epsilon:0.001 in
  let qd = Hsq_sketch.Qdigest.create ~bits:30 ~k:1000 in
  let sp = Hsq_sketch.Sampler.create ~buffers:10 ~buffer_size:500 () in
  let eng = prepared_engine () in
  let n = Hsq.Engine.total_size eng in
  let volatile =
    Hsq.Engine.create (Hsq.Config.make ~kappa:10 ~block_size:256 (Hsq.Config.Epsilon 0.01))
  in
  let dur_never = durable_engine ~wal_sync:Hsq_storage.Wal.Never () in
  let dur_group = durable_engine ~wal_sync:(Hsq_storage.Wal.Group 64) () in
  let dur_always = durable_engine ~wal_sync:Hsq_storage.Wal.Always () in
  [
    Test.make ~name:"gk-insert"
      (Staged.stage (fun () -> Hsq_sketch.Gk.insert gk (Hsq_util.Xoshiro.int rng 1_000_000_000)));
    Test.make ~name:"qdigest-insert"
      (Staged.stage (fun () -> Hsq_sketch.Qdigest.insert qd (Hsq_util.Xoshiro.int rng (1 lsl 30))));
    Test.make ~name:"sampler-insert"
      (Staged.stage (fun () -> Hsq_sketch.Sampler.insert sp (Hsq_util.Xoshiro.int rng 1_000_000_000)));
    Test.make ~name:"stream-summary-extract"
      (Staged.stage (fun () -> ignore (Hsq.Engine.stream_summary eng)));
    Test.make ~name:"union-summary-build"
      (Staged.stage (fun () -> ignore (Hsq.Engine.union_summary eng)));
    Test.make ~name:"quick-query"
      (Staged.stage (fun () -> ignore (Hsq.Engine.quick eng ~rank:(n / 2))));
    Test.make ~name:"accurate-query"
      (Staged.stage (fun () -> ignore (Hsq.Engine.accurate eng ~rank:(n / 2))));
    (* Ingest throughput across the durability spectrum: no WAL at all,
       buffered appends (flush at commits only), group commit, and a
       physical flush per record. *)
    Test.make ~name:"ingest-wal-off"
      (Staged.stage (fun () -> Hsq.Engine.observe volatile (Hsq_util.Xoshiro.int rng 1_000_000)));
    Test.make ~name:"ingest-wal-never"
      (Staged.stage (fun () -> Hsq.Engine.observe dur_never (Hsq_util.Xoshiro.int rng 1_000_000)));
    Test.make ~name:"ingest-wal-group64"
      (Staged.stage (fun () -> Hsq.Engine.observe dur_group (Hsq_util.Xoshiro.int rng 1_000_000)));
    Test.make ~name:"ingest-wal-always"
      (Staged.stage (fun () ->
           Hsq.Engine.observe dur_always (Hsq_util.Xoshiro.int rng 1_000_000)));
  ]

let run () =
  Harness.print_header "Micro-benchmarks (ns/op, OLS vs run count)";
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "%-28s %14.1f ns/op\n%!" name est
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    (tests ())
