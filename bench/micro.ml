(* Bechamel micro-benchmarks for the core operations behind every
   figure: sketch inserts, summary extraction, and the two query paths.
   Reported as nanoseconds per operation (OLS estimate against the run
   counter). *)

open Bechamel
open Toolkit

(* A pre-built medium engine shared (read-only) by the query benches. *)
let prepared_engine () =
  let scale = { Harness.default_scale with steps = 20; step_size = 5_000 } in
  let w = Harness.load_workload ~scale ~dataset:"uniform" () in
  let config =
    Hsq.Config.make ~kappa:10 ~block_size:scale.block_size ~steps_hint:scale.steps
      (Hsq.Config.Epsilon 0.01)
  in
  let eng, _ = Harness.build_engine ~config w in
  eng

(* Engines for the accurate-query fan-out benches: same workload, one
   sequential and one probing with 4 domains.  A simulated per-block
   read latency models a disk so the parallel row measures real
   fan-out benefit rather than in-memory array arithmetic. *)
let accurate_engine ?(smoke = false) ?query_domains () =
  (* Sized so an accurate query really probes disk (tens of physical
     block reads per query, like the CLI defaults), with a 200 µs
     simulated read latency standing in for a fast SSD — otherwise the
     in-memory simulator makes every probe free and the fan-out rows
     would measure nothing but domain-spawn overhead. *)
  let scale =
    if smoke then { Harness.default_scale with steps = 8; step_size = 4_000 }
    else { Harness.default_scale with steps = 30; step_size = 20_000 }
  in
  let w = Harness.load_workload ~scale ~dataset:"normal" () in
  let config =
    Hsq.Config.make ~kappa:10 ~block_size:scale.block_size ~steps_hint:scale.steps
      ?query_domains (Hsq.Config.Epsilon 0.02)
  in
  let eng, _ = Harness.build_engine ~config w in
  Hsq_storage.Block_device.set_read_latency (Hsq.Engine.device eng) 200e-6;
  eng

(* A durable engine over a throwaway store, for the ingest-throughput
   benches.  Checkpoints are off: the WAL sync policy is the axis under
   measurement, and a mid-bench checkpoint (which serializes the whole
   open batch) would spike single samples unfairly. *)
let durable_engine ~wal_sync () =
  let dir = Filename.temp_file "hsq_bench_wal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  at_exit (fun () ->
      try
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      with Sys_error _ -> ());
  let config =
    Hsq.Config.make ~kappa:10 ~block_size:256 ~wal_dir:dir ~wal_sync ~checkpoint_every:0
      (Hsq.Config.Epsilon 0.01)
  in
  let eng, _ = Hsq.Engine.open_or_recover config in
  eng

let tests ~smoke =
  let rng = Hsq_util.Xoshiro.create 1234 in
  let gk = Hsq_sketch.Gk.create ~epsilon:0.001 in
  let qd = Hsq_sketch.Qdigest.create ~bits:30 ~k:1000 in
  let sp = Hsq_sketch.Sampler.create ~buffers:10 ~buffer_size:500 () in
  let eng = prepared_engine () in
  let n = Hsq.Engine.total_size eng in
  let acc_seq = accurate_engine ~smoke () in
  let acc_par = accurate_engine ~smoke ~query_domains:4 () in
  let volatile =
    Hsq.Engine.create (Hsq.Config.make ~kappa:10 ~block_size:256 (Hsq.Config.Epsilon 0.01))
  in
  let dur_never = durable_engine ~wal_sync:Hsq_storage.Wal.Never () in
  let dur_group = durable_engine ~wal_sync:(Hsq_storage.Wal.Group 64) () in
  let dur_always = durable_engine ~wal_sync:Hsq_storage.Wal.Always () in
  [
    Test.make ~name:"gk-insert"
      (Staged.stage (fun () -> Hsq_sketch.Gk.insert gk (Hsq_util.Xoshiro.int rng 1_000_000_000)));
    Test.make ~name:"qdigest-insert"
      (Staged.stage (fun () -> Hsq_sketch.Qdigest.insert qd (Hsq_util.Xoshiro.int rng (1 lsl 30))));
    Test.make ~name:"sampler-insert"
      (Staged.stage (fun () -> Hsq_sketch.Sampler.insert sp (Hsq_util.Xoshiro.int rng 1_000_000_000)));
    Test.make ~name:"stream-summary-extract"
      (Staged.stage (fun () -> ignore (Hsq.Engine.stream_summary eng)));
    Test.make ~name:"union-summary-build"
      (Staged.stage (fun () -> ignore (Hsq.Engine.union_summary eng)));
    Test.make ~name:"quick-query"
      (Staged.stage (fun () -> ignore (Hsq.Engine.quick eng ~rank:(n / 2))));
    Test.make ~name:"accurate-query"
      (Staged.stage (fun () -> ignore (Hsq.Engine.accurate eng ~rank:(n / 2))));
    (* Query-path overhaul rows: the steady-state quick path answers
       from the epoch-keyed cached historical aggregate; the uncached
       row rebuilds the union summary from all partition summaries per
       query (the seed behavior). *)
    Test.make ~name:"query-quick-cached"
      (Staged.stage (fun () -> ignore (Hsq.Engine.quick eng ~rank:(n / 2))));
    Test.make ~name:"query-quick-uncached"
      (Staged.stage (fun () ->
           ignore
             (Hsq.Union_summary.quick_select (Hsq.Engine.fresh_union_summary eng)
                ~rank:(n / 2))));
    Test.make ~name:"query-accurate-1dom"
      (Staged.stage (fun () -> ignore (Hsq.Engine.accurate acc_seq ~rank:(n / 2))));
    Test.make ~name:"query-accurate-4dom"
      (Staged.stage (fun () -> ignore (Hsq.Engine.accurate acc_par ~rank:(n / 2))));
    (* Ingest throughput across the durability spectrum: no WAL at all,
       buffered appends (flush at commits only), group commit, and a
       physical flush per record. *)
    Test.make ~name:"ingest-wal-off"
      (Staged.stage (fun () -> Hsq.Engine.observe volatile (Hsq_util.Xoshiro.int rng 1_000_000)));
    Test.make ~name:"ingest-wal-never"
      (Staged.stage (fun () -> Hsq.Engine.observe dur_never (Hsq_util.Xoshiro.int rng 1_000_000)));
    Test.make ~name:"ingest-wal-group64"
      (Staged.stage (fun () -> Hsq.Engine.observe dur_group (Hsq_util.Xoshiro.int rng 1_000_000)));
    Test.make ~name:"ingest-wal-always"
      (Staged.stage (fun () ->
           Hsq.Engine.observe dur_always (Hsq_util.Xoshiro.int rng 1_000_000)));
  ]
  |> fun tests -> (tests, Hsq.Engine.metrics eng)

(* [smoke] is the CI mode: tiny engines and a short sampling quota, so
   the job only checks that every bench row still builds and runs. *)
let run ?(smoke = false) () =
  Harness.print_header "Micro-benchmarks (ns/op, OLS vs run count)";
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:100 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let test_list, registry = tests ~smoke in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "%-28s %14.1f ns/op\n%!" name est
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    test_list;
  (* The query-path counters of the benched engine, as a smoke check
     that the observability layer records under load (the quick-latency
     histogram is 1-in-64 sampled, hence <= the counter). *)
  Harness.print_header "Engine metrics after the query benches";
  List.iter
    (fun name ->
      match Hsq_obs.Metrics.counter_value registry name with
      | Some v -> Printf.printf "%-40s %12d\n%!" name v
      | None -> Printf.printf "%-40s    (missing!)\n%!" name)
    [
      "hsq_query_quick_total";
      "hsq_query_accurate_total";
      "hsq_query_summary_cache_hits_total";
      "hsq_query_summary_cache_misses_total";
      "hsq_query_degraded_total";
      "hsq_io_reads_total";
    ]
