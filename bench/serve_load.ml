(* Closed-loop load generator for `hsq serve`.

   Each connection is a closed loop: issue one request, wait for the
   reply, record its latency under its class, repeat until the clock
   runs out.  On an `overloaded` shed the loop honors the daemon's
   retry-after hint — exactly what a well-behaved client does — and
   the shed is counted, not retried silently.

   Default mode spawns its own in-process server over a Unix socket in
   a temp directory (preloaded with a few archived steps so accurate
   queries touch disk); --socket points it at an external daemon
   instead.  --smoke runs a short fixed load and exits nonzero unless
   the run saw nonzero throughput, no client-visible protocol errors,
   and (in self-serve mode) a clean drain. *)

module Server = Hsq_serve.Server
module Client = Hsq_serve.Client
module Json = Hsq_serve.Json

type opts = {
  mutable socket : string option;
  mutable conns : int;
  mutable duration_s : float;
  mutable smoke : bool;
  mutable queue_depth : int;
  mutable seed : int;
  mutable shards : int;
  mutable replicas : int;
  mutable kill_replica : bool;
  mutable ingest_domains : int;
  mutable ingest_heavy : bool;
}

let parse_args () =
  let o =
    {
      socket = None;
      conns = 8;
      duration_s = 10.0;
      smoke = false;
      queue_depth = 128;
      seed = 42;
      shards = 1;
      replicas = 1;
      kill_replica = false;
      ingest_domains = 1;
      ingest_heavy = false;
    }
  in
  let spec =
    [
      ("--socket", Arg.String (fun s -> o.socket <- Some s), "PATH connect to a running daemon");
      ("--conns", Arg.Int (fun n -> o.conns <- n), "N closed-loop connections (default 8)");
      ("--duration", Arg.Float (fun d -> o.duration_s <- d), "S run length in seconds");
      ("--queue-depth", Arg.Int (fun n -> o.queue_depth <- n), "N self-serve admission capacity");
      ("--seed", Arg.Int (fun n -> o.seed <- n), "N workload seed");
      ("--shards", Arg.Int (fun k -> o.shards <- k), "K self-serve sharded backend (default 1)");
      ( "--replicas",
        Arg.Int (fun r -> o.replicas <- r),
        "R replicas per shard in the self-serve backend (default 1)" );
      ( "--kill-replica",
        Arg.Unit (fun () -> o.kill_replica <- true),
        " kill one replica mid-run and assert answers stay undegraded" );
      ( "--ingest-domains",
        Arg.Int (fun d -> o.ingest_domains <- d),
        "D self-serve concurrent ingest lanes (default 1)" );
      ( "--ingest-heavy",
        Arg.Unit (fun () -> o.ingest_heavy <- true),
        " invert the mix to 20/10/70 quick/accurate/ingest (writer-bound load)" );
      ( "--smoke",
        Arg.Unit
          (fun () ->
            o.smoke <- true;
            o.conns <- 4;
            o.duration_s <- 2.0),
        " short CI run: assert nonzero throughput and clean drain" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "serve_load [options]";
  o

(* Per-class tallies, one per worker thread; merged after the join. *)
type tally = {
  mutable lat : float list; (* seconds, per completed request *)
  mutable ok : int;
  mutable shed : int;
  mutable timeout : int;
  mutable errors : int; (* protocol-level surprises; must be 0 *)
}

let classes = [| "quick"; "accurate"; "ingest" |]
let new_tallies () = Array.map (fun _ -> { lat = []; ok = 0; shed = 0; timeout = 0; errors = 0 }) classes

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let now = Unix.gettimeofday

(* One worker: a seeded quick/accurate/ingest mix — 70/20/10 by
   default, 20/10/70 under --ingest-heavy (where the daemon's parallel
   ingest lanes should keep writers from queueing behind queries). *)
let worker listen ~seed ~deadline ~mix:(quick_lt, acc_lt) tallies =
  let rng = Random.State.make [| seed |] in
  let c = Client.connect listen in
  let record cls f =
    let t = tallies.(cls) in
    let t0 = now () in
    match f () with
    | r ->
      t.lat <- (now () -. t0) :: t.lat;
      if Client.is_ok r then t.ok <- t.ok + 1
      else begin
        match Client.error_kind r with
        | Some "overloaded" ->
          t.shed <- t.shed + 1;
          (* Honor the hint: back off as the daemon asked. *)
          (match Client.retry_after_ms r with
          | Some ms -> Thread.delay (ms /. 1000.0)
          | None -> ())
        | Some "timeout" -> t.timeout <- t.timeout + 1
        | Some "shutting_down" -> () (* drain raced the clock; benign *)
        | _ -> t.errors <- t.errors + 1
      end
    | exception Client.Protocol_error _ -> t.errors <- t.errors + 1
  in
  (try
     while now () < deadline do
       let r = Random.State.int rng 100 in
       if r < quick_lt then
         record 0 (fun () -> Client.quick c (`Phi (0.01 +. Random.State.float rng 0.98)))
       else if r < acc_lt then
         record 1 (fun () ->
             Client.accurate c ~deadline_ms:500.0 (`Phi (0.01 +. Random.State.float rng 0.98)))
       else
         record 2 (fun () ->
             let batch = Array.init 64 (fun _ -> Random.State.int rng 1_000_000) in
             Client.request c
               (Json.Obj
                  [
                    ("op", Json.Str "observe");
                    ("values", Json.List (Array.to_list (Array.map Json.int batch)));
                  ]))
     done
   with Client.Protocol_error _ -> tallies.(0).errors <- tallies.(0).errors + 1);
  Client.close c

let preload ~observe ~end_step ~seed =
  let rng = Random.State.make [| seed; 7 |] in
  for _step = 1 to 4 do
    for _ = 1 to 20_000 do
      observe (Random.State.int rng 1_000_000)
    done;
    end_step ()
  done;
  for _ = 1 to 5_000 do
    observe (Random.State.int rng 1_000_000)
  done

let () =
  let o = parse_args () in
  let listen, server =
    match o.socket with
    | Some path -> (Server.Unix_sock path, None)
    | None ->
      let dir = Filename.temp_file "hsq-serve-load" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let listen = Server.Unix_sock (Filename.concat dir "hsq.sock") in
      let config = { (Server.default_config listen) with Server.queue_depth = o.queue_depth } in
      let srv =
        if o.shards > 1 || o.replicas > 1 then begin
          let g =
            Hsq_shard.Shard_group.create
              (Hsq.Config.make ~shards:o.shards ~replicas:o.replicas
                 ~ingest_domains:o.ingest_domains (Hsq.Config.Epsilon 0.01))
          in
          preload
            ~observe:(Hsq_shard.Shard_group.observe g)
            ~end_step:(fun () -> ignore (Hsq_shard.Shard_group.end_time_step g))
            ~seed:o.seed;
          Server.create_group config g
        end
        else begin
          let eng =
            Hsq.Engine.create
              (Hsq.Config.make ~ingest_domains:o.ingest_domains (Hsq.Config.Epsilon 0.01))
          in
          preload ~observe:(Hsq.Engine.observe eng)
            ~end_step:(fun () -> ignore (Hsq.Engine.end_time_step eng))
            ~seed:o.seed;
          Server.create config eng
        end
      in
      Server.start srv;
      (listen, Some srv)
  in
  let deadline = now () +. o.duration_s in
  let per_worker = Array.init o.conns (fun _ -> new_tallies ()) in
  let t0 = now () in
  let mix = if o.ingest_heavy then (20, 30) else (70, 90) in
  let threads =
    Array.mapi
      (fun i tallies ->
        Thread.create
          (fun () -> worker listen ~seed:(o.seed + (31 * i)) ~deadline ~mix tallies)
          ())
      per_worker
  in
  (* Failover blip: halfway through the run, kill one replica through
     the daemon's maintenance path, then probe over the wire — the
     answer must stay fully undegraded (a live sibling serves the
     shard at ±ε·m), and the workers above keep measuring latency
     straight through the blip. *)
  let failover_undegraded = ref true in
  let chaos =
    if not o.kill_replica then None
    else
      match server with
      | Some srv when o.replicas > 1 -> (
        match Server.group srv with
        | Some _ ->
          Some
            (Thread.create
               (fun () ->
                 Thread.delay (o.duration_s /. 2.0);
                 Server.submit_group_fn srv (fun g ->
                     Hsq_shard.Shard_group.mark_replica_down g ~shard:0
                       ~replica:(o.replicas - 1) ~reason:"bench: failover blip");
                 let c = Client.connect listen in
                 let r = Client.quick c (`Phi 0.5) in
                 (match Json.get_str r "degradation" with
                 | Some "none" -> ()
                 | d ->
                   failover_undegraded := false;
                   Printf.eprintf "kill-replica probe: degradation %s\n%!"
                     (Option.value d ~default:"<absent>"));
                 Client.close c)
               ())
        | None ->
          failover_undegraded := false;
          prerr_endline "--kill-replica needs a group backend";
          None)
      | _ ->
        failover_undegraded := false;
        prerr_endline "--kill-replica needs self-serve mode with --replicas >= 2";
        None
  in
  Array.iter Thread.join threads;
  Option.iter Thread.join chaos;
  let elapsed = now () -. t0 in
  (* Drain our own server; leave an external one running. *)
  let drained_clean =
    match server with
    | None -> true
    | Some srv -> (
      Server.stop srv;
      match Server.group srv with
      | Some g -> Hsq_shard.Shard_group.is_closed g
      | None -> (
        match Hsq.Engine.is_closed (Server.engine srv) with
        | c -> c
        | exception _ -> false))
  in
  (* Merge and report. *)
  let merged = new_tallies () in
  Array.iter
    (fun tallies ->
      Array.iteri
        (fun i t ->
          merged.(i).lat <- t.lat @ merged.(i).lat;
          merged.(i).ok <- merged.(i).ok + t.ok;
          merged.(i).shed <- merged.(i).shed + t.shed;
          merged.(i).timeout <- merged.(i).timeout + t.timeout;
          merged.(i).errors <- merged.(i).errors + t.errors)
        tallies)
    per_worker;
  Printf.printf "serve_load: %d conns, %.1fs, %d shard%s x %d replica%s%s, %d ingest lane%s%s, %s\n"
    o.conns elapsed o.shards
    (if o.shards = 1 then "" else "s")
    o.replicas
    (if o.replicas = 1 then "" else "s")
    (if o.kill_replica then " (one killed mid-run)" else "")
    o.ingest_domains
    (if o.ingest_domains = 1 then "" else "s")
    (if o.ingest_heavy then ", ingest-heavy mix" else "")
    (match listen with Server.Unix_sock p -> "unix:" ^ p | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p);
  Printf.printf "%-9s %9s %12s %9s %9s %9s %6s %8s\n" "class" "count" "throughput" "p50_ms"
    "p99_ms" "p999_ms" "shed" "timeout";
  let total_ok = ref 0 and total_errors = ref 0 in
  Array.iteri
    (fun i t ->
      let lat = Array.of_list t.lat in
      Array.sort compare lat;
      let ms q = 1000.0 *. percentile lat q in
      total_ok := !total_ok + t.ok;
      total_errors := !total_errors + t.errors;
      Printf.printf "%-9s %9d %10.1f/s %9.2f %9.2f %9.2f %6d %8d\n" classes.(i)
        (Array.length lat)
        (float_of_int (Array.length lat) /. elapsed)
        (ms 0.5) (ms 0.99) (ms 0.999) t.shed t.timeout)
    merged;
  Printf.printf "total: %d ok, %.1f req/s, %d client-visible errors, drain %s%s\n" !total_ok
    (float_of_int !total_ok /. elapsed)
    !total_errors
    (if drained_clean then "clean" else "UNCLEAN")
    (if o.kill_replica then
       if !failover_undegraded then ", failover undegraded" else ", failover DEGRADED"
     else "");
  if o.smoke then
    if !total_ok > 0 && !total_errors = 0 && drained_clean && !failover_undegraded then begin
      print_endline "smoke: OK";
      exit 0
    end
    else begin
      print_endline "smoke: FAILED";
      exit 1
    end
