(** A sharded, replicated warehouse: K logical shards × R replicas,
    one fused query surface.

    [observe] hash-partitions the stream across the shards; within a
    shard each op is applied synchronously to every live replica —
    each a complete single-submitter {!Hsq.Engine} with its own block
    device, WAL directory, checkpoint, circuit breaker, quarantine
    state, and metrics registry.  An observe is acknowledged iff at
    least one live replica of its shard accepted it; per-replica WAL
    sequence numbers advance in lockstep, which keeps the ack
    semantics exactly-once across replica crashes and rejoins.

    Queries fuse per-shard summaries exactly as in the unreplicated
    design (DESIGN.md §14) but read ONE live replica per shard and
    fail over to a sibling when that replica's breaker opens or its
    probes exhaust their retries: answers keep the full ±ε·m
    precision through any loss that leaves ≥ 1 replica per shard, and
    only a shard losing its whole replica set degrades to
    [`Shard_down] with the honest element-count widening.

    Hinted handoff: while a replica is down, its shard-mates buffer
    every acked op into a durable per-peer hint log
    ({!Hint_log}); {!rejoin_replica} drains it into the recovered
    replica — exactly-once, by main-WAL sequence arithmetic — before
    the replica re-enters the read set.

    Anti-entropy: replicas applying identical op sequences converge
    bit-for-bit, so {!anti_entropy} compares per-replica state
    digests ({!Anti_entropy.digest}), flags mismatches as
    [`Replica_diverged], and (with [repair]) converges the minority
    onto the healthiest sibling by file copy.

    [replicas = 1] is the classic layout — bit-compatible on disk and
    in metrics with stores written before replication existed.

    Concurrency: the group is single-submitter for queries, steps and
    lifecycle.  With R > 1 the write paths additionally serialize on
    an internal mutex (so a connection-thread [observe_domain] cannot
    race a failover transition); R = 1 takes no locks at all. *)

type t

exception Shard_unavailable of int * string
(** Raised by {!observe} / {!observe_domain} routing to a shard with
    no live replica (or whose every live replica failed the write):
    the element is explicitly unacknowledged. *)

(** {1 Degradation}

    {!Hsq.Engine.degradation} extended with the replication and
    sharding cases. Severity order (worst wins in fused reports):
    [`None < `Replica_diverged < `Quarantined < `Deadline <
    `Device_open < `Shard_down].

    [`Replica_diverged ps] means the answer was served through
    replicas flagged by anti-entropy with no clean live sibling to
    fail over to — still within the summary's window, but built on a
    replica whose digest disagrees with its shard-mates'. *)

type degradation =
  [ `None
  | `Replica_diverged of (int * int) list  (** (shard, replica) pairs served while flagged *)
  | `Quarantined of int
  | `Deadline
  | `Device_open
  | `Shard_down of int list ]

val degradation_label : degradation -> string

(** The more severe of the two (severity order above). [`Quarantined]
    counts merge; [`Shard_down] / [`Replica_diverged] lists union
    (sorted, deduplicated). *)
val worst_degradation : degradation -> degradation -> degradation

val severity : degradation -> int

type query_report = {
  io : Hsq_storage.Io_stats.counters;  (** summed over every live replica *)
  iterations : int;
  degradation : degradation;
  rank_error_bound : float;
}

(** {1 Construction} *)

(** [create config] — [config.shards] × [config.replicas] volatile
    engines, each on its own in-memory device (and therefore its own
    metrics registry). Volatile replicas cannot rejoin or hint (their
    data dies with them), but failover reads work. *)
val create : Hsq.Config.t -> t

type shard_recovery = {
  shard : int;
  replica : int;
  outcome : (Hsq.Engine.recovery_report, string) result;
      (** [Error reason]: that replica failed to recover and starts
          down (the shard still serves through its siblings; a shard
          whose every replica failed has its element count estimated
          from sidecars + WALs, an overcount-safe widening); the group
          still opens. *)
}

(** Open (or create) a durable group rooted at [config.wal_dir]:
    replica [j] of shard [i] is a standard durable store in
    {!store_dir}. [shards = 1] uses the root as the shard directory
    and [replicas = 1] uses the shard directory as the replica store —
    so K = 1, R = 1 is bit-compatible with a store written by a
    non-sharded build. Recovery runs per replica; stale hint logs
    found on disk are drained (or trigger sibling repair) before the
    owning replica serves reads. *)
val open_or_recover : Hsq.Config.t -> t * shard_recovery list

(** [shard_dir ~root i] = [root/shard-<i>]. *)
val shard_dir : root:string -> int -> string

(** The directory replica [replica] of shard [shard] stores itself in
    (see {!open_or_recover} for the collapsing at K = 1 / R = 1). *)
val store_dir :
  root:string -> shards:int -> replicas:int -> shard:int -> replica:int -> string

(** {1 Topology} *)

val config : t -> Hsq.Config.t
val shard_count : t -> int
val replica_count : t -> int

(** The ε₂ stream-sketch kind every shard runs ("gk" or "kll"); with
    "kll", fused quick answers compose the per-shard stream summaries
    by sketch merge rather than summed rank windows. *)
val sketch_label : t -> string

(** Deterministic shard for a value (splitmix-style hash mod K). *)
val route : t -> int -> int

(** Shards with no live replica, ascending. *)
val shards_down : t -> int list

(** Dead replicas as (shard, replica) pairs, lexicographic. *)
val replicas_down : t -> (int * int) list

(** Replicas currently flagged by anti-entropy, lexicographic. *)
val diverged_replicas : t -> (int * int) list

(** Live replica indices of a shard, ascending. *)
val live_replicas : t -> int -> int list

(** The replica shard [i] currently serves reads through ([None] when
    the whole replica set is down). Callers must respect the
    single-submitter contract. *)
val engine : t -> int -> Hsq.Engine.t option

(** The engine behind one specific replica ([None] when dead). *)
val replica_engine : t -> shard:int -> replica:int -> Hsq.Engine.t option

(** One read replica per serving shard, ascending by shard index. *)
val engines : t -> (int * Hsq.Engine.t) list

(** Last known element count of a shard (live when it serves, frozen
    at the value seen when its last replica died). *)
val shard_elements : t -> int -> int

(** {1 Ingest} *)

(** Route one element and apply it to every live replica of its
    shard. A replica that fails its append is taken down (and hinted
    to from then on) instead of failing the ack; the call raises
    {!Shard_unavailable} — the element unacknowledged — only when no
    live replica accepted it. *)
val observe : t -> int -> unit

(** Concurrent variant (requires [config.ingest_domains > 1]): the
    value hash picks the shard exactly as {!observe} does, then the
    caller's [domain] picks the ingest lane within each replica.
    Safe from any thread; with R > 1 the fan-out serializes on the
    group's write lock. *)
val observe_domain : t -> domain:int -> int -> unit

(** Seal-and-drain every lane of every live replica (engine-thread
    only); see {!Hsq.Engine.flush_ingest}. *)
val flush_ingest : t -> unit

(** Settle checkpoint debt accumulated by lane hand-offs on any live
    replica ({!Hsq.Engine.checkpoint_if_due}); returns [true] if at
    least one checkpointed. Engine-thread only. *)
val checkpoint_if_due : t -> bool

(** Close the time step on every live replica holding stream
    elements; the cut is hinted to dead replicas so their drains
    archive the same step boundary. Failures are contained per
    replica (the shard reports [Error msg] only if every live replica
    failed its cut); healthy replicas still archive. *)
val end_time_step :
  t -> (int * (Hsq_hist.Level_index.update_report, string) result) list

(** {1 Sizes}

    [total_size] counts downed shards at their last known element
    count — the population the fused bounds are honest against.
    [hist_size] / [stream_size] sum over the read replicas;
    [memory_words] sums over every live replica (true footprint). *)

val total_size : t -> int

val hist_size : t -> int
val stream_size : t -> int
val down_elements : t -> int

(** Max over read replicas. *)
val time_steps : t -> int

val epsilon : t -> float
val memory_words : t -> int

(** {1 Fused queries} *)

(** Algorithm 5 over the fused union summary. Returns
    (value, rank-error bound, degradation): the bound is the fused
    Lemma 2 window widened by every quarantined element and every
    element of shards with no live replica — a shard that merely lost
    SOME replicas serves through a sibling at full precision.
    Raises [Invalid_argument] when no data is reachable. *)
val quick_with_bound : t -> rank:int -> int * float * degradation

val quick : t -> rank:int -> int

(** Algorithms 6–8 across all shards: one bisection over the fused
    filters, probing each shard's read replica, with the shared
    stopping band [tolerance_factor · Σ_s ε₂·m_s] and one deadline.
    A replica whose breaker opens (or whose probes exhaust their
    retries) mid-query is dropped and the bisection restarts with its
    shard FAILED OVER to a live sibling — the bound does not widen,
    because the sibling holds the same logical data. Only when a
    shard's every replica is dropped does the restart exclude the
    shard and widen by its element count ([`Shard_down]). Deadline
    cuts return the fused quick answer clamped into the surviving
    filter interval. The report's degradation composes worst-wins. *)
val accurate :
  ?tolerance_factor:float -> ?deadline_ms:float -> t -> rank:int -> int * query_report

(** φ-quantile (rank = ⌈φ·N⌉ over the fused population). *)
val quantile : t -> float -> int * query_report

(** {1 Fault domains} *)

(** Take one replica down (its device died, its process was killed):
    the engine is crash-released, and — for durable single-lane
    groups — a hint log is started at the replica's current WAL
    sequence so shard-mates buffer subsequent acked ops for it. The
    shard keeps serving through its siblings at full precision.
    No-op on a dead replica. *)
val mark_replica_down : t -> shard:int -> replica:int -> reason:string -> unit

(** Take a whole shard down: {!mark_replica_down} on every replica.
    Subsequent routing to it raises {!Shard_unavailable} and fused
    bounds widen by its element count. *)
val mark_down : t -> int -> reason:string -> unit

(** Reason a shard serves nothing (every replica dead), if so. *)
val down_reason : t -> int -> string option

(** Reason one replica is dead, if it is. *)
val replica_down_reason : t -> shard:int -> replica:int -> string option

(** Records buffered in a dead replica's hint log ([None] when the
    replica is live or has no drainable log). *)
val hints_pending : t -> shard:int -> replica:int -> int option

(** Bring one dead replica back: per-replica
    {!Hsq.Engine.open_or_recover}, hint-log drain (exactly-once via
    WAL sequence arithmetic), consistency check against a live
    sibling with file-copy repair as the fallback, then a repair
    scrub — zero acknowledged-observation loss. The replica re-enters
    the read/write set only on [Ok]. Durable groups only. *)
val rejoin_replica :
  t ->
  shard:int ->
  replica:int ->
  (Hsq.Engine.recovery_report * Hsq.Persist.scrub_report, string) result

(** Shard-level {!rejoin_replica} over every dead replica of the
    shard; [Ok] if at least one came back (reports are the first
    successful replica's). *)
val rejoin :
  t -> int -> (Hsq.Engine.recovery_report * Hsq.Persist.scrub_report, string) result

(** {1 Anti-entropy} *)

type entropy_report = {
  entropy_shard : int;
  digests : (int * Anti_entropy.digest) list;  (** per live replica, ascending *)
  flagged : (int * string) list;
      (** replicas whose digest disagrees with the reference (majority,
          ties to the healthiest), with the offending digest rendered *)
  repaired : int list;
  repair_failed : (int * string) list;  (** replica is down with this reason *)
}

(** Compare per-replica state digests within each shard (forcing a
    sketch checkpoint on each live replica so the digest covers the
    open step), flag the minority as diverged, and — with [repair] —
    converge each flagged replica onto the healthiest sibling by
    byte-identical file copy + recovery. Digest equality is exact for
    single-lane groups: replicas apply identical op sequences and
    every engine structure is deterministic in that sequence.
    Returns [[]] for unreplicated or volatile groups. *)
val anti_entropy : ?repair:bool -> t -> entropy_report list

(** {1 Scrub} *)

(** Repair-scrub each serving shard's read replica (the unreplicated
    signature). *)
val scrub : ?repair:bool -> t -> (int * Hsq.Persist.scrub_report) list

(** Repair-scrub every live replica. *)
val scrub_all : ?repair:bool -> t -> ((int * int) * Hsq.Persist.scrub_report) list

(** {1 Lifecycle} *)

val checkpoint_now : t -> unit

(** Checkpoint + close every live replica and close any open hint
    logs. Idempotent. *)
val close : t -> unit

(** Test helper: power-cut every live replica (hint logs crash-closed
    too, their flushed prefix intact on disk). *)
val crash : t -> unit

val is_closed : t -> bool

(** {1 Metrics}

    Each replica keeps its own registry (reachable via
    {!replica_engine}); creation also sets an [hsq_shard_index] gauge
    (and, when R > 1, [hsq_replica_index]) in each. The group
    exporters merge them, labelling per-replica metrics with
    [shard="<k>"] — plus [replica="<j>"] when R > 1 — (Prometheus) or
    nesting them under ["shards"] (and ["replicas"] when R > 1)
    (JSON). R = 1 output is byte-compatible with the pre-replication
    exporters. [extra] prepends another registry's metrics
    unlabelled — the serve daemon passes its own. *)

val metrics_json : ?extra:Hsq_obs.Metrics.t -> t -> string

val metrics_prometheus : ?extra:Hsq_obs.Metrics.t -> t -> string
