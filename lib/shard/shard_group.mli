(** A sharded warehouse: K fully independent engines behind one fused
    query surface.

    [observe] hash-partitions the stream across the shards — each shard
    is a complete single-submitter {!Hsq.Engine} with its own block
    device, WAL directory, checkpoint, circuit breaker, quarantine
    state, and metrics registry — and queries fuse the per-shard
    summaries back into one union answer:

    - [quick] k-way-merges the shards' partition summaries and stream
      sketches into one {!Hsq.Union_summary} ({!Hsq.Union_summary.build_fused});
      per-entry rank windows are the sums of the per-shard Lemma 2
      windows, so the fused bound stays ±ε·N (DESIGN.md §14).
    - [accurate] runs one filter-bisection over the union of all
      shards' partitions under a single shared rank budget
      Σ_s ε₂·m_s = ε₂·m and one deadline, preserving the paper's ±ε·m
      contract for the fused answer.

    Per-shard fault domains: a shard that is down (failed recovery,
    {!mark_down}) or whose breaker is open / probes keep failing during
    an accurate query is dropped from the fused answer, with the bound
    honestly widened by its element count and the report carrying
    [`Shard_down ks]. A down shard {!rejoin}s via per-shard recovery +
    repair scrub with zero acknowledged-observation loss (WAL
    [Always]).

    Like the engine, a group is single-submitter: serialize all calls
    through one thread (the serve daemon's engine thread does). *)

type t

exception Shard_unavailable of int * string
(** Raised by {!observe} / {!end_time_step} routing to a down shard:
    the element is explicitly unacknowledged. *)

(** {1 Degradation}

    {!Hsq.Engine.degradation} extended with the sharding case. Severity
    order (worst wins in fused reports):
    [`None < `Quarantined < `Deadline < `Device_open < `Shard_down]. *)

type degradation =
  [ `None | `Quarantined of int | `Deadline | `Device_open | `Shard_down of int list ]

val degradation_label : degradation -> string

(** The more severe of the two (severity order above). [`Quarantined]
    counts merge; [`Shard_down] lists union (sorted, deduplicated). *)
val worst_degradation : degradation -> degradation -> degradation

val severity : degradation -> int

type query_report = {
  io : Hsq_storage.Io_stats.counters;  (** summed over the shards probed *)
  iterations : int;
  degradation : degradation;
  rank_error_bound : float;
}

(** {1 Construction} *)

(** [create config] — [config.shards] volatile shards, each on its own
    in-memory device (and therefore its own metrics registry). *)
val create : Hsq.Config.t -> t

type shard_recovery = {
  shard : int;
  outcome : (Hsq.Engine.recovery_report, string) result;
      (** [Error reason]: that shard failed to recover and starts down
          (its element count estimated from its sidecar + WAL, an
          overcount-safe widening); the group still opens. *)
}

(** Open (or create) a durable group rooted at [config.wal_dir]:
    shard [i] is a standard durable store in [shard_dir ~root i] —
    except [shards = 1], which opens the root directly, bit-compatible
    with a store written by a non-sharded build. Recovery runs per
    shard; one shard's unrecoverable damage marks it down instead of
    failing the group. *)
val open_or_recover : Hsq.Config.t -> t * shard_recovery list

(** [shard_dir ~root i] = [root/shard-<i>]. *)
val shard_dir : root:string -> int -> string

(** {1 Topology} *)

val config : t -> Hsq.Config.t
val shard_count : t -> int

(** The ε₂ stream-sketch kind every shard runs ("gk" or "kll"); with
    "kll", fused quick answers compose the per-shard stream summaries
    by sketch merge rather than summed rank windows. *)
val sketch_label : t -> string

(** Deterministic shard for a value (splitmix-style hash mod K). *)
val route : t -> int -> int

(** Shards currently down, ascending. *)
val shards_down : t -> int list

(** The engine behind an up shard ([None] when down). Callers must
    respect the single-submitter contract. *)
val engine : t -> int -> Hsq.Engine.t option

(** All up shards, ascending by index. *)
val engines : t -> (int * Hsq.Engine.t) list

(** Last known element count of a shard (live for up shards, frozen at
    the value seen when a down shard died). *)
val shard_elements : t -> int -> int

(** {1 Ingest} *)

(** Route and apply one element. Raises {!Shard_unavailable} when the
    owning shard is down, and whatever the owning engine raises (e.g.
    [Device_error] on a WAL append failure) — in every case the element
    is unacknowledged. *)
val observe : t -> int -> unit

(** Concurrent variant (requires [config.ingest_domains > 1]): the
    value hash picks the shard exactly as {!observe} does, then the
    caller's [domain] picks the ingest lane within it
    ({!Hsq.Engine.observe_domain}). Safe from any thread, concurrently
    across domains; the group's query/step/lifecycle calls remain
    single-submitter and may run concurrently with it. *)
val observe_domain : t -> domain:int -> int -> unit

(** Seal-and-drain every lane of every up shard (engine-thread only);
    see {!Hsq.Engine.flush_ingest}. *)
val flush_ingest : t -> unit

(** Settle checkpoint debt accumulated by lane hand-offs on any shard
    ({!Hsq.Engine.checkpoint_if_due}); returns [true] if at least one
    shard checkpointed. Engine-thread only. *)
val checkpoint_if_due : t -> bool

(** Close the time step on every up shard holding stream elements.
    Failures are contained per shard ([Error msg]); healthy shards
    still archive. *)
val end_time_step :
  t -> (int * (Hsq_hist.Level_index.update_report, string) result) list

(** {1 Sizes}

    [total_size] counts down shards at their last known element count —
    the population the fused bounds are honest against. [hist_size] /
    [stream_size] sum over up shards only. *)

val total_size : t -> int

val hist_size : t -> int
val stream_size : t -> int
val down_elements : t -> int

(** Max over up shards. *)
val time_steps : t -> int

val epsilon : t -> float
val memory_words : t -> int

(** {1 Fused queries} *)

(** Algorithm 5 over the fused union summary. Returns
    (value, rank-error bound, degradation): the bound is the fused
    Lemma 2 window widened by every quarantined and down element.
    Raises [Invalid_argument] when no data is reachable. *)
val quick_with_bound : t -> rank:int -> int * float * degradation

val quick : t -> rank:int -> int

(** Algorithms 6–8 across all shards: one bisection over the fused
    filters, probing every up shard's partitions, with the shared
    stopping band [tolerance_factor · Σ_s ε₂·m_s] and one deadline.
    A shard whose breaker opens (or whose probes exhaust their
    retries) mid-query is dropped and the bisection restarts over the
    survivors with the bound widened by its elements; deadline cuts
    return the fused quick answer clamped into the surviving filter
    interval. The report's degradation composes worst-wins. *)
val accurate :
  ?tolerance_factor:float -> ?deadline_ms:float -> t -> rank:int -> int * query_report

(** φ-quantile (rank = ⌈φ·N⌉ over the fused population). *)
val quantile : t -> float -> int * query_report

(** {1 Fault domains} *)

(** Take a shard down administratively (its device died, its process
    was killed): the engine is crash-released (nothing acknowledged is
    lost under WAL [Always]), the shard's element count is frozen for
    bound widening, and subsequent routing to it raises
    {!Shard_unavailable}. No-op on an already-down shard. *)
val mark_down : t -> int -> reason:string -> unit

(** Reason a shard is down, if it is. *)
val down_reason : t -> int -> string option

(** Bring a down shard back: per-shard {!Hsq.Engine.open_or_recover} +
    repair scrub, zero acknowledged-observation loss. Only durable
    groups can rejoin (a volatile shard's data died with it). *)
val rejoin :
  t -> int -> (Hsq.Engine.recovery_report * Hsq.Persist.scrub_report, string) result

(** Repair-scrub every up shard. *)
val scrub : ?repair:bool -> t -> (int * Hsq.Persist.scrub_report) list

(** {1 Lifecycle} *)

val checkpoint_now : t -> unit
val close : t -> unit

(** Test helper: power-cut every up shard. *)
val crash : t -> unit

val is_closed : t -> bool

(** {1 Metrics}

    Each shard keeps its own registry (reachable via {!engine});
    creation also sets an [hsq_shard_index] gauge in each. The group
    exporters merge them, labelling per-shard metrics with
    [shard="<k>"] (Prometheus) or nesting them under ["shards"]
    (JSON). [extra] prepends another registry's metrics unlabelled —
    the serve daemon passes its own. *)

val metrics_json : ?extra:Hsq_obs.Metrics.t -> t -> string

val metrics_prometheus : ?extra:Hsq_obs.Metrics.t -> t -> string
