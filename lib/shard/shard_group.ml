(* A sharded warehouse: K independent engines, one fused query surface.

   Ingest hash-partitions the stream (splitmix-style value hash mod K),
   so each shard is a complete, unmodified single-submitter engine —
   its own device, WAL, checkpoint, breaker, quarantine state and
   metrics registry.  Queries fuse the per-shard state back together:

   - quick: one Union_summary over the union of every up shard's
     active partitions plus all K stream sketches
     (Union_summary.build_fused).  Each entry's rank window is the sum
     of the per-shard Lemma 2 windows; the sums bracket the union rank
     because each shard's sketch brackets its own, and the window only
     widens additively to Sigma_s eps2*m_s = eps2*m (all shards share
     eps2) — the fused answer keeps the single-engine O(eps*N) error.

   - accurate: the engine's Algorithms 6-8 lifted to the union: fused
     filters, one value-domain bisection, per-partition disk probes
     across every shard, and the *shared* stopping band
     tolerance_factor * Sigma_s eps2*m_s under one deadline.  rho(z) is
     exact over all probed partitions plus the summed stream estimates,
     so the completed-query bound is the single-engine bound with m
     read as the total stream size — the paper's O(eps*m), fused.

   Fault domains.  A shard is DOWN (mark_down, failed recovery) or
   dropped per-query (breaker open / probes exhausted mid-bisection):
   either way its contribution leaves the fused answer and the bound
   honestly widens by its element count — exactly the quarantine
   argument one level up, with a shard playing the role of a partition
   whose rank window collapsed to [0, size].  Degradations compose
   worst-wins; `Shard_down carries the shard indices.

   Like the engine, a group is single-submitter by contract. *)

module E = Hsq.Engine
module BD = Hsq_storage.Block_device
module Metrics = Hsq_obs.Metrics
module Us = Hsq.Union_summary
module Ss = Hsq.Stream_summary
module Li = Hsq_hist.Level_index

exception Shard_unavailable of int * string

type degradation =
  [ `None | `Quarantined of int | `Deadline | `Device_open | `Shard_down of int list ]

let degradation_label : degradation -> string = function
  | #E.degradation as d -> E.degradation_label d
  | `Shard_down _ -> "shard_down"

let severity : degradation -> int = function
  | `None -> 0
  | `Quarantined _ -> 1
  | `Deadline -> 2
  | `Device_open -> 3
  | `Shard_down _ -> 4

(* Worst wins; equal severities merge their payloads so no information
   is invented (quarantine counts max — they describe the same store —
   and shard lists union). *)
let worst_degradation (a : degradation) (b : degradation) : degradation =
  match (a, b) with
  | `Quarantined x, `Quarantined y -> `Quarantined (max x y)
  | `Shard_down x, `Shard_down y -> `Shard_down (List.sort_uniq compare (x @ y))
  | _ -> if severity a >= severity b then a else b

type query_report = {
  io : Hsq_storage.Io_stats.counters;
  iterations : int;
  degradation : degradation;
  rank_error_bound : float;
}

type shard =
  | Up of E.t
  | Down of { reason : string; elements : int }

type t = {
  config : Hsq.Config.t;
  k : int;
  shards : shard array;
  last_size : int array; (* last known element count per shard; frozen on death *)
  root : string option; (* durable root; None = volatile (no rejoin) *)
  (* Fused-summary cache: the historical aggregate is keyed on each
     alive shard's partition-set epoch, the built summary additionally
     on each stream's size (a shard's stream only changes via observe —
     size grows — or end_time_step — epoch bump), mirroring the
     engine's own two-level cache. *)
  mutable agg_cache : ((int * int) list * Us.hist_agg) option;
  mutable us_cache : ((int * int * int) list * (Ss.t list * Us.t)) option;
  mutable closed : bool;
}

(* --- construction ------------------------------------------------------ *)

let shard_dir ~root i = Filename.concat root (Printf.sprintf "shard-%d" i)

let tag_shard_registry e i =
  Metrics.Gauge.set
    (Metrics.gauge ~help:"Index of this shard within its group" (E.metrics e) "hsq_shard_index")
    (float_of_int i)

let shard_config config ~wal_dir = { config with Hsq.Config.shards = 1; wal_dir }

let create config =
  let k = config.Hsq.Config.shards in
  let shards =
    Array.init k (fun i ->
        let e = E.create (shard_config config ~wal_dir:None) in
        tag_shard_registry e i;
        Up e)
  in
  {
    config;
    k;
    shards;
    last_size = Array.make k 0;
    root = None;
    agg_cache = None;
    us_cache = None;
    closed = false;
  }

(* Best-effort element count of a store we failed to open: archived
   elements from the sidecar's partition table plus Observe records
   still in the WAL (the log rotates at each archived step, so the two
   never overlap).  Unreadable pieces count 0 — with an intact WAL
   under sync=Always this equals the acknowledged count; damage can
   only lower the estimate, which the chaos harness tolerates by
   checking the fused bound against the oracle, not this estimate. *)
let estimate_elements dir =
  let _, meta_path, wal_path, _ = E.store_paths ~dir in
  let hist =
    try
      let body = Hsq.Meta.verify_checksum (Hsq.Meta.read_lines meta_path) in
      List.fold_left
        (fun acc line ->
          match String.split_on_char ' ' line with
          | "partition" :: _first_block :: len :: _ -> (
            match int_of_string_opt len with Some l -> acc + l | None -> acc)
          | _ -> acc)
        0 body
    with _ -> 0
  in
  let wal =
    try
      let records, _, _ = Hsq_storage.Wal.read_path ~path:wal_path in
      List.fold_left
        (fun acc (_, r) ->
          match r with
          | Hsq_storage.Wal.Observe _ -> acc + 1
          | Hsq_storage.Wal.End_step _ | Hsq_storage.Wal.End_step_cuts _ -> acc)
        0 records
    with _ -> 0
  in
  hist + wal

type shard_recovery = {
  shard : int;
  outcome : (E.recovery_report, string) result;
}

let open_or_recover config =
  let root =
    match config.Hsq.Config.wal_dir with
    | Some d -> d
    | None -> invalid_arg "Shard_group.open_or_recover: config.wal_dir not set"
  in
  let k = config.Hsq.Config.shards in
  if Sys.file_exists root then begin
    if not (Sys.is_directory root) then
      invalid_arg "Shard_group.open_or_recover: wal_dir is not a directory"
  end
  else Sys.mkdir root 0o755;
  let last_size = Array.make k 0 in
  let recoveries = ref [] in
  let shards =
    Array.init k (fun i ->
        (* K = 1 opens the root itself: a sharded build reads (and
           keeps writing) a store laid out by a non-sharded one. *)
        let dir = if k = 1 then root else shard_dir ~root i in
        match E.open_or_recover (shard_config config ~wal_dir:(Some dir)) with
        | e, report ->
          tag_shard_registry e i;
          last_size.(i) <- E.total_size e;
          recoveries := { shard = i; outcome = Ok report } :: !recoveries;
          Up e
        | exception
            (( BD.Device_error _ | Hsq.Meta.Corrupt_metadata _ | Sys_error _
             | Invalid_argument _ ) as exn) ->
          let reason = Printexc.to_string exn in
          let elements = estimate_elements dir in
          last_size.(i) <- elements;
          recoveries := { shard = i; outcome = Error reason } :: !recoveries;
          Down { reason; elements })
  in
  ( {
      config;
      k;
      shards;
      last_size;
      root = Some root;
      agg_cache = None;
      us_cache = None;
      closed = false;
    },
    List.rev !recoveries )

(* --- topology ----------------------------------------------------------- *)

let config t = t.config
let shard_count t = t.k

let sketch_label t =
  match t.config.Hsq.Config.stream_sketch with `Gk -> "gk" | `Kll -> "kll"

(* Xorshift-multiply finalizer (constants fit OCaml's 63-bit int):
   uncorrelated with value order and with the block-level chaos coins,
   so adversarial value patterns still spread across the shards. *)
let route t v =
  if t.k = 1 then 0
  else begin
    let x = v lxor (v lsr 33) in
    let x = x * 0x2545F4914F6CDD1D in
    let x = x lxor (x lsr 29) in
    let x = x * 0x100000001B3 in
    let x = x lxor (x lsr 32) in
    (x land max_int) mod t.k
  end

let shards_down t =
  let down = ref [] in
  Array.iteri (fun i s -> match s with Down _ -> down := i :: !down | Up _ -> ()) t.shards;
  List.rev !down

let engine t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.engine: shard index out of range";
  match t.shards.(i) with Up e -> Some e | Down _ -> None

let engines t =
  let up = ref [] in
  Array.iteri (fun i s -> match s with Up e -> up := (i, e) :: !up | Down _ -> ()) t.shards;
  List.rev !up

let down_reason t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.down_reason: shard index out of range";
  match t.shards.(i) with Down { reason; _ } -> Some reason | Up _ -> None

let refresh_sizes t =
  Array.iteri
    (fun i s -> match s with Up e -> t.last_size.(i) <- E.total_size e | Down _ -> ())
    t.shards

let shard_elements t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.shard_elements: shard index out of range";
  (match t.shards.(i) with Up e -> t.last_size.(i) <- E.total_size e | Down _ -> ());
  t.last_size.(i)

let down_elements t =
  let sum = ref 0 in
  Array.iteri
    (fun i s -> match s with Down { elements = _; _ } -> sum := !sum + t.last_size.(i) | Up _ -> ())
    t.shards;
  !sum

(* --- ingest ------------------------------------------------------------- *)

let invalidate t = t.us_cache <- None

let observe t v =
  let i = route t v in
  match t.shards.(i) with
  | Down { reason; _ } -> raise (Shard_unavailable (i, reason))
  | Up e ->
    E.observe e v;
    t.last_size.(i) <- t.last_size.(i) + 1;
    invalidate t

(* Concurrent ingest: value-hash picks the shard (same routing as
   [observe]), the caller's domain picks the lane within it.  No
   [last_size] bump and no cache invalidation here — both are plain
   mutable fields a concurrent writer would race; the us_cache key
   embeds each engine's [stream_size] (which only moves under the
   engine's propagation lock), so a query on the single-submitter
   thread rebuilds exactly when propagated data changed, and
   [refresh_sizes] re-reads sizes on every query path. *)
let observe_domain t ~domain v =
  let i = route t v in
  match t.shards.(i) with
  | Down { reason; _ } -> raise (Shard_unavailable (i, reason))
  | Up e -> E.observe_domain e ~domain v

(* Seal-and-drain every lane of every up shard (engine-thread only). *)
let flush_ingest t = List.iter (fun (_, e) -> E.flush_ingest e) (engines t)

let checkpoint_if_due t =
  List.fold_left (fun acc (_, e) -> E.checkpoint_if_due e || acc) false (engines t)

let end_time_step t =
  let out = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Down _ -> ()
      | Up e ->
        if E.stream_size e > 0 then begin
          match E.end_time_step e with
          | report -> out := (i, Ok report) :: !out
          | exception BD.Device_error msg -> out := (i, Error msg) :: !out
        end)
    t.shards;
  t.agg_cache <- None;
  invalidate t;
  List.rev !out

(* --- sizes -------------------------------------------------------------- *)

let total_size t =
  refresh_sizes t;
  Array.fold_left ( + ) 0 t.last_size

let hist_size t = List.fold_left (fun acc (_, e) -> acc + E.hist_size e) 0 (engines t)
let stream_size t = List.fold_left (fun acc (_, e) -> acc + E.stream_size e) 0 (engines t)
let time_steps t = List.fold_left (fun acc (_, e) -> max acc (E.time_steps e)) 0 (engines t)

let epsilon t =
  match engines t with
  | [] -> invalid_arg "Shard_group.epsilon: every shard is down"
  | (_, e) :: rest -> List.fold_left (fun acc (_, e) -> Float.max acc (E.epsilon e)) (E.epsilon e) rest

let memory_words t = List.fold_left (fun acc (_, e) -> acc + E.memory_words e) 0 (engines t)

(* --- fused view --------------------------------------------------------- *)

let clamp_rank ~n r = if r < 1 then 1 else if r > n then n else r

(* The state one fused query works from.  [excluded]/[excluded_elems]
   name the shards whose data is NOT in [us] (permanently down plus any
   runtime-dropped) — the honest widening of every answer derived from
   this view. *)
type view = {
  alive : (int * E.t) list;
  parts : (int * Hsq_hist.Partition.t) list; (* (owning shard, partition), active only *)
  streams : Ss.t list;
  us : Us.t;
  excluded : int list;
  excluded_elems : int;
}

let quarantined_sum alive =
  List.fold_left (fun acc (_, e) -> acc + Li.quarantined_elements (E.hist e)) 0 alive

let agg_key alive = List.map (fun (i, e) -> (i, Li.epoch (E.hist e))) alive
let us_key alive = List.map (fun (i, e) -> (i, Li.epoch (E.hist e), E.stream_size e)) alive

let fused_agg t alive =
  let key = agg_key alive in
  match t.agg_cache with
  | Some (k, agg) when k = key -> agg
  | _ ->
    let partitions = List.concat_map (fun (_, e) -> Li.active_partitions (E.hist e)) alive in
    let agg = Us.hist_aggregate ~partitions in
    t.agg_cache <- Some (key, agg);
    agg

(* Per-shard stream summaries for a fused build.  When every alive
   shard runs the mergeable KLL sketch, the per-shard snapshots merge
   into ONE sketch and the view carries a single stream summary: the
   fused heap then brackets union ranks through sketch merge instead of
   summed per-shard windows.  The merged sketch's error parameter is
   the count-weighted average of the shards' (equal here, as all shards
   share one config), so eps2*m is unchanged — but the per-stream
   integer-boundary slack in fused accurate drops from K terms to 1.
   Any GK shard (or an empty group) falls back to the summed-window
   path unchanged. *)
let streams_of alive =
  let snapshots = List.map (fun (_, e) -> E.kll_snapshot e) alive in
  if alive <> [] && List.for_all Option.is_some snapshots then
    let merged =
      List.fold_left
        (fun acc s ->
          match (acc, s) with
          | None, s -> s
          | acc, None -> acc
          | Some a, Some b -> Some (Hsq_sketch.Kll.merge a b))
        None snapshots
    in
    match merged with
    | Some m -> [ Ss.extract (Hsq.Stream_sketch.Kll m) ]
    | None -> []
  else List.map (fun (_, e) -> E.stream_summary e) alive

let fused_summaries t alive =
  let key = us_key alive in
  match t.us_cache with
  | Some (k, v) when k = key -> v
  | _ ->
    let agg = fused_agg t alive in
    let streams = streams_of alive in
    let us = Us.build_fused ~agg ~streams in
    let v = (streams, us) in
    t.us_cache <- Some (key, v);
    v

let make_view t ~dropped =
  refresh_sizes t;
  let alive = List.filter (fun (i, _) -> not (List.mem i dropped)) (engines t) in
  let excluded =
    List.sort_uniq compare
      (shards_down t @ List.filter (fun i -> i >= 0 && i < t.k) dropped)
  in
  let excluded_elems = List.fold_left (fun acc i -> acc + t.last_size.(i)) 0 excluded in
  let streams, us =
    (* The cache only serves the no-runtime-drops view; a mid-query
       drop is rare and rebuilds fresh. *)
    if dropped = [] then fused_summaries t alive
    else
      let partitions = List.concat_map (fun (_, e) -> Li.active_partitions (E.hist e)) alive in
      let streams = streams_of alive in
      (streams, Us.build_fused ~agg:(Us.hist_aggregate ~partitions) ~streams)
  in
  let parts =
    List.concat_map
      (fun (i, e) -> List.map (fun p -> (i, p)) (Li.active_partitions (E.hist e)))
      alive
  in
  { alive; parts; streams; us; excluded; excluded_elems }

(* Memory-only fallback when quarantine emptied the active view: the
   full partition sets (quarantined included) still carry honest — if
   wide — summary windows, at zero device reads (the engine's
   quick_view argument, fused).  Returns [true] iff it substituted the
   full-set summary, whose windows already cover the quarantined
   elements (no double widening). *)
let full_view_fallback view =
  if Us.n_total view.us > 0 then (view, false)
  else begin
    let partitions = List.concat_map (fun (_, e) -> Li.partitions (E.hist e)) view.alive in
    let streams = streams_of view.alive in
    let full = Us.build_fused ~agg:(Us.hist_aggregate ~partitions) ~streams in
    if Us.size full > 0 then ({ view with us = full; streams }, true) else (view, false)
  end

let rank_bound_of us ~rank v ~widen =
  let r = float_of_int rank in
  let lo, hi = Us.rank_window us v in
  Float.max (hi -. r) (r -. lo) +. float_of_int widen

let down_degradation view : degradation =
  match view.excluded with [] -> `None | ks -> `Shard_down ks

(* --- fused quick -------------------------------------------------------- *)

let ensure_open t = if t.closed then invalid_arg "Shard_group: closed"

let quick_with_bound t ~rank =
  ensure_open t;
  let view, fallback = full_view_fallback (make_view t ~dropped:[]) in
  let n = Us.n_total view.us in
  if n = 0 then invalid_arg "Shard_group.quick: no data";
  let rank = clamp_rank ~n rank in
  let v = Us.quick_select view.us ~rank in
  let q = if fallback then 0 else quarantined_sum view.alive in
  let widen = q + view.excluded_elems in
  let degradation =
    worst_degradation (down_degradation view) (if q > 0 then `Quarantined q else `None)
  in
  (v, rank_bound_of view.us ~rank v ~widen, degradation)

let quick t ~rank =
  let v, _, _ = quick_with_bound t ~rank in
  v

(* --- fused accurate ------------------------------------------------------ *)

type probe_state = {
  shard : int;
  partition : Hsq_hist.Partition.t;
  mutable lo : int;
  mutable hi : int;
}

exception Probe_failure of int * Hsq_hist.Partition.t * string
exception Deadline_cut of int * int

let accurate ?(tolerance_factor = 0.5) ?deadline_ms t ~rank =
  ensure_open t;
  let t0 = Metrics.now_s () in
  let deadline_at =
    match (deadline_ms, t.config.Hsq.Config.query_deadline_ms) with
    | Some d, _ | None, Some d -> Some (t0 +. (d /. 1000.0))
    | None, None -> None
  in
  let stats_before =
    List.map
      (fun (_, e) ->
        let s = BD.stats (E.device e) in
        (s, Hsq_storage.Io_stats.snapshot s))
      (engines t)
  in
  let iterations = ref 0 in
  let dropped = ref [] in
  (* One bisection over a fixed view; raises Probe_failure on an
     unrecoverable device error (carrying the owning shard) and
     Deadline_cut between iterations. *)
  let attempt view ~rank =
    let us = view.us in
    let u0, v0 = Us.filters us ~rank in
    let probes =
      Array.of_list
        (List.map
           (fun (shard, p) ->
             let lo, hi =
               Hsq_hist.Partition_summary.search_window (Hsq_hist.Partition.summary p) ~u:u0
                 ~v:v0
             in
             { shard; partition = p; lo; hi })
           view.parts)
    in
    (* The shared rank budget: the per-shard stream estimates are each
       exact +-eps2*m_s, so the fused estimate is exact
       +-Sigma_s eps2*m_s = eps2*m — one band for the whole group, not
       one per shard (DESIGN.md §14). *)
    let m_eps =
      List.fold_left (fun acc ss -> acc +. (Ss.eps2 ss *. float_of_int (Ss.stream_size ss))) 0.0
        view.streams
    in
    let tolerance = tolerance_factor *. m_eps in
    let r = float_of_int rank in
    let probe_one z st =
      if st.lo >= st.hi then st.lo
      else
        try
          Hsq_storage.Run.rank_between (Hsq_hist.Partition.run st.partition) ~lo:st.lo ~hi:st.hi
            z
        with BD.Device_error msg -> raise (Probe_failure (st.shard, st.partition, msg))
    in
    let estimate z =
      let ranks = Array.map (probe_one z) probes in
      let rho1 = Array.fold_left ( + ) 0 ranks in
      let rho2 = List.fold_left (fun acc ss -> acc +. Ss.rank_estimate ss z) 0.0 view.streams in
      (ranks, float_of_int rho1 +. rho2)
    in
    let narrow ~left ranks =
      Array.iteri
        (fun i st ->
          let rank_z = ranks.(i) in
          if left then st.hi <- min st.hi rank_z else st.lo <- max st.lo rank_z)
        probes
    in
    let rec bisect u v =
      (match deadline_at with
      | Some d when Metrics.now_s () > d -> raise (Deadline_cut (u, v))
      | _ -> ());
      incr iterations;
      if v - u <= 1 then begin
        let _, rho_u = estimate u in
        if rho_u >= r then u else v
      end
      else begin
        let z = u + ((v - u) / 2) in
        let ranks, rho = estimate z in
        if r < rho -. tolerance then begin
          narrow ~left:true ranks;
          bisect u z
        end
        else if r > rho +. tolerance then begin
          narrow ~left:false ranks;
          bisect z v
        end
        else z
      end
    in
    (bisect u0 v0, m_eps)
  in
  let finish t0_view ~rank degradation =
    (* Memory answer from whatever summary is in hand.  Widening: live
       quarantined elements plus every shard absent from this view's
       summary — shards dropped *after* the view was built still have
       their in-memory contribution inside [us], so they widen nothing
       here (the summary covers them). *)
    let q = quarantined_sum t0_view.alive in
    let n = Us.n_total t0_view.us in
    let rank = clamp_rank ~n rank in
    let v = Us.quick_select t0_view.us ~rank in
    (v, degradation, rank_bound_of t0_view.us ~rank v ~widen:(q + t0_view.excluded_elems))
  in
  let total_parts =
    List.fold_left (fun acc (_, e) -> acc + Li.partition_count (E.hist e)) 0 (engines t)
  in
  let max_retries = (total_parts * t.config.Hsq.Config.quarantine_after) + t.k + 2 in
  let rec go tries view_opt =
    let view = match view_opt with Some v -> v | None -> make_view t ~dropped:!dropped in
    let view, mem_fallback = full_view_fallback view in
    let n = Us.n_total view.us in
    if n = 0 then
      (* Nothing reachable at all (every shard down or empty). *)
      invalid_arg "Shard_group.accurate: no data"
    else begin
      let rank_c = clamp_rank ~n rank in
      let down_deg = down_degradation view in
      if mem_fallback || view.parts = [] && view.streams = [] then
        finish view ~rank (worst_degradation down_deg `Device_open)
      else begin
        match attempt view ~rank:rank_c with
        | answer, m_eps ->
          List.iter (fun (i, p) ->
              match t.shards.(i) with
              | Up e -> Li.note_probe_success (E.hist e) p
              | Down _ -> ())
            view.parts;
          let q = quarantined_sum view.alive in
          let tolerance = tolerance_factor *. m_eps in
          (* Completed-bisection bound: the stopping band, the summed
             stream estimates' own uncertainty (±eps2·m_s each, with
             integer-boundary slack per stream), plus everything the
             probes could not see — quarantined and excluded-shard
             elements. *)
          let estimate_slack = m_eps +. (2.0 *. float_of_int (max 1 (List.length view.streams))) in
          let degradation =
            worst_degradation down_deg (if q > 0 then `Quarantined q else `None)
          in
          ( answer,
            degradation,
            tolerance +. estimate_slack +. float_of_int (q + view.excluded_elems) )
        | exception Deadline_cut (u, v) ->
          let q = quarantined_sum view.alive in
          let qa = Us.quick_select view.us ~rank:rank_c in
          let best = if v >= u then max u (min v qa) else qa in
          ( best,
            worst_degradation down_deg `Deadline,
            rank_bound_of view.us ~rank:rank_c best ~widen:(q + view.excluded_elems) )
        | exception Probe_failure (s, p, _msg) ->
          let e = match t.shards.(s) with Up e -> Some e | Down _ -> None in
          let breaker_open =
            match e with
            | Some e -> BD.breaker_state (E.device e) = Hsq_storage.Breaker.Open
            | None -> true
          in
          (* Quarantine machinery still learns from every failure, so a
             single sick partition quarantines instead of condemning its
             whole shard. *)
          let quarantined_now =
            match e with
            | Some e ->
              Li.note_probe_failure (E.hist e) p ~threshold:t.config.Hsq.Config.quarantine_after
            | None -> false
          in
          if breaker_open || tries >= max_retries then begin
            (* The shard, not the partition, is the fault domain now:
               drop it from this query and restart over the survivors.
               Restart (rather than patching the probe set) is required
               for correctness — earlier narrowing used the dropped
               shard's ranks. *)
            dropped := List.sort_uniq compare (s :: !dropped);
            let survivors = List.filter (fun (i, _) -> not (List.mem i !dropped)) (engines t) in
            if survivors = [] then
              (* Every shard dropped: answer from the last summary in
                 hand (it still covers the dropped shards' memory
                 state). *)
              finish view ~rank (worst_degradation (`Shard_down !dropped) `Device_open)
            else go (tries + 1) None
          end
          else if quarantined_now then go (tries + 1) None (* epoch bumped: rebuild *)
          else go (tries + 1) (Some view)
      end
    end
  in
  let answer, degradation, rank_error_bound = go 0 None in
  let io =
    List.fold_left
      (fun acc (s, before) ->
        Hsq_storage.Io_stats.add acc
          (Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot s) before))
      Hsq_storage.Io_stats.zero stats_before
  in
  (answer, { io; iterations = !iterations; degradation; rank_error_bound })

let quantile t phi =
  if not (phi >= 0.0 && phi <= 1.0) then invalid_arg "Shard_group.quantile: phi not in [0,1]";
  let n = total_size t in
  if n = 0 then invalid_arg "Shard_group.quantile: no data";
  let rank = clamp_rank ~n (int_of_float (ceil (phi *. float_of_int n))) in
  accurate t ~rank

(* --- fault domains ------------------------------------------------------- *)

let mark_down t i ~reason =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.mark_down: shard index out of range";
  match t.shards.(i) with
  | Down _ -> ()
  | Up e ->
    t.last_size.(i) <- (try E.total_size e with _ -> t.last_size.(i));
    (* Crash-release, not close: a close would flush and might block on
       the very device that just died; under WAL Always nothing
       acknowledged is pending anyway. *)
    (try E.crash e with _ -> ());
    t.shards.(i) <- Down { reason; elements = t.last_size.(i) };
    t.agg_cache <- None;
    invalidate t

let rejoin t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.rejoin: shard index out of range";
  match t.shards.(i) with
  | Up _ -> Error "shard is not down"
  | Down _ -> (
    match t.root with
    | None -> Error "volatile shard cannot rejoin (its data died with it)"
    | Some root -> (
      let dir = if t.k = 1 then root else shard_dir ~root i in
      match E.open_or_recover (shard_config t.config ~wal_dir:(Some dir)) with
      | e, recovery -> (
        tag_shard_registry e i;
        match Hsq.Persist.scrub ~repair:true e with
        | scrub ->
          t.shards.(i) <- Up e;
          t.last_size.(i) <- E.total_size e;
          t.agg_cache <- None;
          invalidate t;
          Ok (recovery, scrub)
        | exception exn ->
          (try E.crash e with _ -> ());
          Error ("rejoin scrub failed: " ^ Printexc.to_string exn))
      | exception exn -> Error ("rejoin recovery failed: " ^ Printexc.to_string exn)))

let scrub ?repair t =
  List.map (fun (i, e) -> (i, Hsq.Persist.scrub ?repair e)) (engines t)

(* --- lifecycle ----------------------------------------------------------- *)

let checkpoint_now t = List.iter (fun (_, e) -> try E.checkpoint_now e with _ -> ()) (engines t)

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun (_, e) ->
        (try E.checkpoint_now e with _ -> ());
        try E.close e with _ -> ())
      (engines t)
  end

let crash t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun (_, e) -> try E.crash e with _ -> ()) (engines t)
  end

let is_closed t = t.closed

(* --- metrics -------------------------------------------------------------- *)

(* Prometheus has no registry-level labels, so the group exporter
   injects shard="<k>" into each per-shard line: after the opening
   brace when the metric already carries labels (histogram buckets),
   as a fresh label set otherwise.  Comment lines pass through. *)
let label_prometheus_line ~label line =
  if line = "" || line.[0] = '#' then line
  else
    match String.index_opt line ' ' with
    | None -> line
    | Some sp -> (
      let name = String.sub line 0 sp in
      let rest = String.sub line sp (String.length line - sp) in
      match String.index_opt name '{' with
      | Some b ->
        String.sub name 0 (b + 1) ^ label ^ "," ^ String.sub name (b + 1) (String.length name - b - 1)
        ^ rest
      | None -> name ^ "{" ^ label ^ "}" ^ rest)

let metrics_prometheus ?extra t =
  let buf = Buffer.create 4096 in
  (match extra with Some reg -> Buffer.add_string buf (Metrics.to_prometheus reg) | None -> ());
  Array.iteri
    (fun i s ->
      match s with
      | Down _ -> ()
      | Up e ->
        let label = Printf.sprintf "shard=\"%d\"" i in
        String.split_on_char '\n' (Metrics.to_prometheus (E.metrics e))
        |> List.iter (fun line ->
               if line <> "" then begin
                 Buffer.add_string buf (label_prometheus_line ~label line);
                 Buffer.add_char buf '\n'
               end))
    t.shards;
  Buffer.contents buf

let metrics_json ?extra t =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '{';
  (match extra with
  | Some reg ->
    Buffer.add_string buf "\"group\":";
    Buffer.add_string buf (Metrics.to_json reg);
    Buffer.add_char buf ','
  | None -> ());
  Buffer.add_string buf "\"shards\":{";
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%d\":" i;
      match s with
      | Up e -> Buffer.add_string buf (Metrics.to_json (E.metrics e))
      | Down { reason; _ } ->
        Printf.bprintf buf "{\"down\":true,\"reason\":%s}"
          (let b = Buffer.create 32 in
           Buffer.add_char b '"';
           String.iter
             (fun c ->
               match c with
               | '"' -> Buffer.add_string b "\\\""
               | '\\' -> Buffer.add_string b "\\\\"
               | '\n' -> Buffer.add_string b "\\n"
               | c when Char.code c < 32 -> Printf.bprintf b "\\u%04x" (Char.code c)
               | c -> Buffer.add_char b c)
             reason;
           Buffer.add_char b '"';
           Buffer.contents b))
    t.shards;
  Buffer.add_string buf "}}";
  Buffer.contents buf
