(* A sharded, replicated warehouse: K logical shards × R replicas each,
   one fused query surface.

   Ingest hash-partitions the stream (splitmix-style value hash mod K);
   within a shard every op is applied synchronously to every LIVE
   replica — each a complete, unmodified single-submitter engine with
   its own device, WAL, checkpoint, breaker, quarantine state and
   metrics registry.  An observe is acknowledged iff at least one live
   replica accepted it; a replica that fails its append is taken down
   (and hinted to) rather than failing the ack.

   Queries fuse per-shard state exactly as before (DESIGN.md §14), but
   read ONE live replica per shard and FAIL OVER to a sibling when a
   replica's breaker opens or its probes exhaust their retries —
   answers keep the full ±ε·m precision through any loss that leaves at
   least one replica per shard.  Only losing a shard's whole replica
   set degrades to `Shard_down with the honest element-count widening.

   Hinted handoff: while a replica is down its shard-mates buffer every
   acked op into a per-peer hint WAL (Hint_log); rejoin drains the log
   into the recovered replica — exactly-once via main-WAL sequence
   arithmetic — before it re-enters the read set.

   Anti-entropy: replicas applying identical op sequences converge
   bit-for-bit (deterministic merge cascade and seeded sketch coins),
   so a scrub-triggered pass compares per-replica state digests
   (Anti_entropy), flags mismatches as `Replica_diverged, and repairs
   the minority from the healthiest sibling by file copy.

   R = 1 is the classic layout, bit-compatible on disk and in metrics
   with stores written before replication existed.

   Concurrency: the group remains single-submitter for queries, steps
   and lifecycle.  With R > 1 the write paths (observe, observe_domain,
   end_time_step, replica up/down transitions) additionally serialize
   on one mutex so a connection-thread ingest cannot race a failover
   transition; R = 1 takes no locks at all. *)

module E = Hsq.Engine
module BD = Hsq_storage.Block_device
module Metrics = Hsq_obs.Metrics
module Us = Hsq.Union_summary
module Ss = Hsq.Stream_summary
module Li = Hsq_hist.Level_index

exception Shard_unavailable of int * string

type degradation =
  [ `None
  | `Replica_diverged of (int * int) list
  | `Quarantined of int
  | `Deadline
  | `Device_open
  | `Shard_down of int list ]

let degradation_label : degradation -> string = function
  | #E.degradation as d -> E.degradation_label d
  | `Replica_diverged _ -> "replica_diverged"
  | `Shard_down _ -> "shard_down"

let severity : degradation -> int = function
  | `None -> 0
  | `Replica_diverged _ -> 1
  | `Quarantined _ -> 2
  | `Deadline -> 3
  | `Device_open -> 4
  | `Shard_down _ -> 5

(* Worst wins; equal severities merge their payloads so no information
   is invented (quarantine counts max — they describe the same store —
   and shard / replica lists union). *)
let worst_degradation (a : degradation) (b : degradation) : degradation =
  match (a, b) with
  | `Quarantined x, `Quarantined y -> `Quarantined (max x y)
  | `Shard_down x, `Shard_down y -> `Shard_down (List.sort_uniq compare (x @ y))
  | `Replica_diverged x, `Replica_diverged y -> `Replica_diverged (List.sort_uniq compare (x @ y))
  | _ -> if severity a >= severity b then a else b

type query_report = {
  io : Hsq_storage.Io_stats.counters;
  iterations : int;
  degradation : degradation;
  rank_error_bound : float;
}

type rstate =
  | Live of E.t
  | Dead of string (* reason *)

type replica = {
  rep : int;
  mutable state : rstate;
  mutable hints : Hint_log.t option; (* per-peer handoff log, only while Dead *)
  mutable diverged : bool; (* flagged by anti-entropy, cleared by repair/rejoin *)
}

type t = {
  config : Hsq.Config.t;
  k : int;
  r : int;
  slots : replica array array; (* k × r *)
  last_size : int array; (* last known element count per shard; frozen when all replicas die *)
  root : string option; (* durable root; None = volatile (no rejoin, no hints) *)
  lock : Mutex.t; (* replica transitions + replicated writes (r > 1 only) *)
  (* Fused-summary cache: keyed on the chosen read replica and its
     partition-set epoch (the summary additionally on stream size), so
     a failover to a sibling rebuilds. *)
  mutable agg_cache : ((int * int * int) list * Us.hist_agg) option;
  mutable us_cache : ((int * int * int * int) list * (Ss.t list * Us.t)) option;
  mutable closed : bool;
}

let with_lock t f =
  if t.r = 1 then f ()
  else begin
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
  end

(* --- layout -------------------------------------------------------------- *)

let shard_dir ~root i = Filename.concat root (Printf.sprintf "shard-%d" i)

(* K = 1 stores the (single) shard in the root itself; R = 1 stores the
   (single) replica in the shard directory itself — so K = 1, R = 1 is
   byte-identical to a store laid out by a non-sharded build. *)
let store_dir ~root ~shards ~replicas ~shard ~replica =
  let home = if shards = 1 then root else shard_dir ~root shard in
  if replicas = 1 then home else Filename.concat home (Printf.sprintf "replica-%d" replica)

(* The directory hint logs live in: the shard's home (hint files are
   shard state, not any one replica's). *)
let shard_home t i =
  match t.root with
  | None -> invalid_arg "Shard_group: volatile group has no directories"
  | Some root -> if t.k = 1 then root else shard_dir ~root i

let replica_store_dir t i j =
  match t.root with
  | None -> invalid_arg "Shard_group: volatile group has no directories"
  | Some root -> store_dir ~root ~shards:t.k ~replicas:t.r ~shard:i ~replica:j

let tag_registry t e i j =
  Metrics.Gauge.set
    (Metrics.gauge ~help:"Index of this shard within its group" (E.metrics e) "hsq_shard_index")
    (float_of_int i);
  if t.r > 1 then
    Metrics.Gauge.set
      (Metrics.gauge ~help:"Index of this replica within its shard" (E.metrics e)
         "hsq_replica_index")
      (float_of_int j)

let shard_config config ~wal_dir = { config with Hsq.Config.shards = 1; replicas = 1; wal_dir }

(* --- construction ------------------------------------------------------- *)

let make_t config ~k ~r ~slots ~last_size ~root =
  {
    config;
    k;
    r;
    slots;
    last_size;
    root;
    lock = Mutex.create ();
    agg_cache = None;
    us_cache = None;
    closed = false;
  }

let create config =
  let k = config.Hsq.Config.shards in
  let r = config.Hsq.Config.replicas in
  let slots =
    Array.init k (fun _ ->
        Array.init r (fun j -> { rep = j; state = Live (E.create (shard_config config ~wal_dir:None)); hints = None; diverged = false }))
  in
  let t = make_t config ~k ~r ~slots ~last_size:(Array.make k 0) ~root:None in
  Array.iteri
    (fun i reps ->
      Array.iter (fun rep -> match rep.state with Live e -> tag_registry t e i rep.rep | Dead _ -> ()) reps)
    slots;
  t

(* Best-effort element count of a store we failed to open: archived
   elements from the sidecar's partition table plus Observe records
   still in the WAL (the log rotates at each archived step, so the two
   never overlap).  Unreadable pieces count 0 — with an intact WAL
   under sync=Always this equals the acknowledged count; damage can
   only lower the estimate, which the chaos harness tolerates by
   checking the fused bound against the oracle, not this estimate. *)
let estimate_elements dir =
  let _, meta_path, wal_path, _ = E.store_paths ~dir in
  let hist =
    try
      let body = Hsq.Meta.verify_checksum (Hsq.Meta.read_lines meta_path) in
      List.fold_left
        (fun acc line ->
          match String.split_on_char ' ' line with
          | "partition" :: _first_block :: len :: _ -> (
            match int_of_string_opt len with Some l -> acc + l | None -> acc)
          | _ -> acc)
        0 body
    with _ -> 0
  in
  let wal =
    try
      let records, _, _ = Hsq_storage.Wal.read_path ~path:wal_path in
      List.fold_left
        (fun acc (_, r) ->
          match r with
          | Hsq_storage.Wal.Observe _ -> acc + 1
          | Hsq_storage.Wal.End_step _ | Hsq_storage.Wal.End_step_cuts _ -> acc)
        0 records
    with _ -> 0
  in
  hist + wal

type shard_recovery = {
  shard : int;
  replica : int;
  outcome : (E.recovery_report, string) result;
}

(* --- topology accessors (declared early; open_or_recover needs them) --- *)

let live_replicas_of reps =
  let out = ref [] in
  Array.iter (fun rep -> match rep.state with Live e -> out := (rep.rep, e) :: !out | Dead _ -> ()) reps;
  List.rev !out

(* The replica a query reads this shard through: the first live
   non-diverged one, else the first live one (serving a diverged
   replica is better than dropping the shard — the report says so). *)
let read_replica t i =
  let reps = t.slots.(i) in
  let live = live_replicas_of reps in
  let clean = List.filter (fun (j, _) -> not t.slots.(i).(j).diverged) live in
  match (clean, live) with
  | (j, e) :: _, _ -> Some (j, e, false)
  | [], (j, e) :: _ -> Some (j, e, true)
  | [], [] -> None

let engine t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.engine: shard index out of range";
  match read_replica t i with Some (_, e, _) -> Some e | None -> None

let engines t =
  let out = ref [] in
  for i = t.k - 1 downto 0 do
    match read_replica t i with Some (_, e, _) -> out := (i, e) :: !out | None -> ()
  done;
  !out

let replica_engine t ~shard ~replica =
  if shard < 0 || shard >= t.k then invalid_arg "Shard_group.replica_engine: shard out of range";
  if replica < 0 || replica >= t.r then
    invalid_arg "Shard_group.replica_engine: replica out of range";
  match t.slots.(shard).(replica).state with Live e -> Some e | Dead _ -> None

(* Every live replica, lexicographic by (shard, replica). *)
let all_live t =
  let out = ref [] in
  for i = t.k - 1 downto 0 do
    for j = t.r - 1 downto 0 do
      match t.slots.(i).(j).state with
      | Live e -> out := (i, j, e) :: !out
      | Dead _ -> ()
    done
  done;
  !out

let live_replicas t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.live_replicas: shard index out of range";
  List.map fst (live_replicas_of t.slots.(i))

let shards_down t =
  let down = ref [] in
  for i = t.k - 1 downto 0 do
    if live_replicas_of t.slots.(i) = [] then down := i :: !down
  done;
  !down

let replicas_down t =
  let out = ref [] in
  for i = t.k - 1 downto 0 do
    for j = t.r - 1 downto 0 do
      match t.slots.(i).(j).state with Dead _ -> out := (i, j) :: !out | Live _ -> ()
    done
  done;
  !out

let diverged_replicas t =
  let out = ref [] in
  for i = t.k - 1 downto 0 do
    for j = t.r - 1 downto 0 do
      if t.slots.(i).(j).diverged then out := (i, j) :: !out
    done
  done;
  !out

let down_reason t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.down_reason: shard index out of range";
  if live_replicas_of t.slots.(i) <> [] then None
  else match t.slots.(i).(0).state with Dead reason -> Some reason | Live _ -> None

let replica_down_reason t ~shard ~replica =
  if shard < 0 || shard >= t.k then
    invalid_arg "Shard_group.replica_down_reason: shard out of range";
  if replica < 0 || replica >= t.r then
    invalid_arg "Shard_group.replica_down_reason: replica out of range";
  match t.slots.(shard).(replica).state with Dead reason -> Some reason | Live _ -> None

let hints_pending t ~shard ~replica =
  if shard < 0 || shard >= t.k then invalid_arg "Shard_group.hints_pending: shard out of range";
  if replica < 0 || replica >= t.r then
    invalid_arg "Shard_group.hints_pending: replica out of range";
  match t.slots.(shard).(replica).hints with
  | Some hl -> Some (Hint_log.record_count hl)
  | None -> None

let refresh_sizes t =
  for i = 0 to t.k - 1 do
    match read_replica t i with
    | Some (_, e, _) -> t.last_size.(i) <- E.total_size e
    | None -> ()
  done

let shard_elements t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.shard_elements: shard index out of range";
  (match read_replica t i with
  | Some (_, e, _) -> t.last_size.(i) <- E.total_size e
  | None -> ());
  t.last_size.(i)

let down_elements t =
  let sum = ref 0 in
  for i = 0 to t.k - 1 do
    if live_replicas_of t.slots.(i) = [] then sum := !sum + t.last_size.(i)
  done;
  !sum

let config t = t.config
let shard_count t = t.k
let replica_count t = t.r

let sketch_label t =
  match t.config.Hsq.Config.stream_sketch with `Gk -> "gk" | `Kll -> "kll"

(* Xorshift-multiply finalizer (constants fit OCaml's 63-bit int):
   uncorrelated with value order and with the block-level chaos coins,
   so adversarial value patterns still spread across the shards. *)
let route t v =
  if t.k = 1 then 0
  else begin
    let x = v lxor (v lsr 33) in
    let x = x * 0x2545F4914F6CDD1D in
    let x = x lxor (x lsr 29) in
    let x = x * 0x100000001B3 in
    let x = x lxor (x lsr 32) in
    (x land max_int) mod t.k
  end

(* --- replica transitions ------------------------------------------------ *)

let invalidate t = t.us_cache <- None

let drop_caches t =
  t.agg_cache <- None;
  invalidate t

(* Take one replica down (caller holds the lock when r > 1).  The
   engine is crash-released — a close would flush through the device
   that just died; under WAL [Always] nothing acknowledged is pending.
   If the replica is durable and single-lane, a hint log is started so
   shard-mates can buffer subsequent acked ops for it: the base seq is
   the replica's main-WAL next_seq, its op cursor (each op appends
   exactly one record, so on rejoin [recovered next_seq - base_seq]
   counts the hints already applied — exactly-once across crashes
   mid-drain).  Multi-lane engines spread ops over several logs, the
   arithmetic does not hold, and rejoin must repair from a sibling
   instead. *)
let replica_down_locked t i rep ~reason =
  match rep.state with
  | Dead _ -> ()
  | Live e ->
    (* Freeze the shard's element count if this was its last live
       replica (refresh_sizes skips shards with nothing live). *)
    if List.length (live_replicas_of t.slots.(i)) = 1 then
      t.last_size.(i) <- (try E.total_size e with _ -> t.last_size.(i));
    let base =
      if t.r > 1 && t.root <> None && t.config.Hsq.Config.ingest_domains = 1 then
        match E.durability_status e with Some ds -> Some ds.E.wal_next_seq | None -> None
      else None
    in
    (try E.crash e with _ -> ());
    rep.state <- Dead reason;
    rep.diverged <- false;
    (match rep.hints with
    | Some hl ->
      Hint_log.crash hl;
      rep.hints <- None
    | None -> ());
    (match base with
    | Some base_seq -> (
      try
        rep.hints <-
          Some
            (Hint_log.start ~dir:(shard_home t i) ~peer:rep.rep
               ~sync:t.config.Hsq.Config.wal_sync ~base_seq)
      with _ -> rep.hints <- None)
    | None -> ());
    drop_caches t

let mark_replica_down t ~shard ~replica ~reason =
  if shard < 0 || shard >= t.k then
    invalid_arg "Shard_group.mark_replica_down: shard out of range";
  if replica < 0 || replica >= t.r then
    invalid_arg "Shard_group.mark_replica_down: replica out of range";
  with_lock t (fun () -> replica_down_locked t shard t.slots.(shard).(replica) ~reason)

let mark_down t i ~reason =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.mark_down: shard index out of range";
  with_lock t (fun () ->
      Array.iter (fun rep -> replica_down_locked t i rep ~reason) t.slots.(i))

(* --- ingest ------------------------------------------------------------- *)

(* Replicated write fan-out (r > 1, caller holds the lock): apply to
   every live replica first — one that fails its append is taken down
   (and from now on hinted to) instead of failing the ack; the op is
   acknowledged iff at least one live replica accepted it.  Only then
   are hints appended for the dead replicas: a hint must never cover an
   op that was not acked.  A hint append that itself fails breaks the
   pair ([mark_broken]) so rejoin falls back to repair — the ack
   stands either way. *)
let fanout_locked t i ~apply ~hint =
  let reps = t.slots.(i) in
  let acked = ref 0 in
  let last_err = ref "every replica is down" in
  Array.iter
    (fun rep ->
      match rep.state with
      | Dead reason -> if !acked = 0 then last_err := reason
      | Live e -> (
        match apply e with
        | () -> incr acked
        | exception (BD.Device_error msg | Sys_error msg) ->
          last_err := msg;
          replica_down_locked t i rep ~reason:msg))
    reps;
  if !acked = 0 then raise (Shard_unavailable (i, !last_err));
  Array.iter
    (fun rep ->
      match (rep.state, rep.hints) with
      | Dead _, Some hl -> (
        try hint hl
        with _ ->
          Hint_log.mark_broken hl;
          rep.hints <- None)
      | _ -> ())
    reps

let observe t v =
  let i = route t v in
  if t.r = 1 then begin
    let rep = t.slots.(i).(0) in
    match rep.state with
    | Dead reason -> raise (Shard_unavailable (i, reason))
    | Live e ->
      E.observe e v;
      t.last_size.(i) <- t.last_size.(i) + 1;
      invalidate t
  end
  else
    with_lock t (fun () ->
        fanout_locked t i ~apply:(fun e -> E.observe e v) ~hint:(fun hl -> Hint_log.observe hl v);
        t.last_size.(i) <- t.last_size.(i) + 1;
        invalidate t)

(* Concurrent ingest: value-hash picks the shard (same routing as
   [observe]), the caller's domain picks the lane within it.  With
   r = 1 there is no [last_size] bump and no cache invalidation — both
   are plain mutable fields a concurrent writer would race; the
   us_cache key embeds each engine's [stream_size] (which only moves
   under the engine's propagation lock), so a query on the
   single-submitter thread rebuilds exactly when propagated data
   changed, and [refresh_sizes] re-reads sizes on every query path.
   With r > 1 the fan-out serializes on the group lock (replication
   trades lane concurrency for redundancy; the bench's R rows price
   it). *)
let observe_domain t ~domain v =
  let i = route t v in
  if t.r = 1 then begin
    match t.slots.(i).(0).state with
    | Dead reason -> raise (Shard_unavailable (i, reason))
    | Live e -> E.observe_domain e ~domain v
  end
  else
    with_lock t (fun () ->
        fanout_locked t i
          ~apply:(fun e -> E.observe_domain e ~domain v)
          ~hint:(fun hl -> Hint_log.observe hl v))

(* Seal-and-drain every lane of every live replica (engine-thread only). *)
let flush_ingest t = List.iter (fun (_, _, e) -> E.flush_ingest e) (all_live t)

let checkpoint_if_due t =
  List.fold_left (fun acc (_, _, e) -> E.checkpoint_if_due e || acc) false (all_live t)

let end_time_step t =
  let out = ref [] in
  with_lock t (fun () ->
      Array.iteri
        (fun i reps ->
          if t.r = 1 then begin
            match reps.(0).state with
            | Dead _ -> ()
            | Live e ->
              if E.stream_size e > 0 then begin
                match E.end_time_step e with
                | report -> out := (i, Ok report) :: !out
                | exception BD.Device_error msg -> out := (i, Error msg) :: !out
              end
          end
          else begin
            (* Cut on every live replica holding stream elements; a
               replica that fails its cut goes down (its sibling's cut
               stands).  The cut is then hinted to dead replicas so
               their drains archive the same step boundary. *)
            let ok = ref None in
            let err = ref None in
            Array.iter
              (fun rep ->
                match rep.state with
                | Live e when E.stream_size e > 0 -> (
                  match E.end_time_step e with
                  | report -> if !ok = None then ok := Some (report, E.time_steps e)
                  | exception BD.Device_error msg ->
                    err := Some msg;
                    replica_down_locked t i rep ~reason:msg)
                | _ -> ())
              reps;
            match (!ok, !err) with
            | Some (report, step), _ ->
              out := (i, Ok report) :: !out;
              Array.iter
                (fun rep ->
                  match (rep.state, rep.hints) with
                  | Dead _, Some hl -> (
                    try Hint_log.end_step hl ~step ~count:0
                    with _ ->
                      Hint_log.mark_broken hl;
                      rep.hints <- None)
                  | _ -> ())
                reps
            | None, Some msg -> out := (i, Error msg) :: !out
            | None, None -> ()
          end)
        t.slots;
      drop_caches t);
  List.rev !out

(* --- sizes -------------------------------------------------------------- *)

let total_size t =
  refresh_sizes t;
  Array.fold_left ( + ) 0 t.last_size

let hist_size t = List.fold_left (fun acc (_, e) -> acc + E.hist_size e) 0 (engines t)
let stream_size t = List.fold_left (fun acc (_, e) -> acc + E.stream_size e) 0 (engines t)
let time_steps t = List.fold_left (fun acc (_, e) -> max acc (E.time_steps e)) 0 (engines t)

let epsilon t =
  match engines t with
  | [] -> invalid_arg "Shard_group.epsilon: every shard is down"
  | (_, e) :: rest -> List.fold_left (fun acc (_, e) -> Float.max acc (E.epsilon e)) (E.epsilon e) rest

let memory_words t = List.fold_left (fun acc (_, _, e) -> acc + E.memory_words e) 0 (all_live t)

(* --- fused view --------------------------------------------------------- *)

let clamp_rank ~n r = if r < 1 then 1 else if r > n then n else r

(* The state one fused query works from: ONE read replica per shard.
   [excluded]/[excluded_elems] name the shards with no eligible replica
   at all (permanently down plus any whose whole replica set was
   dropped at runtime) — the honest widening of every answer derived
   from this view.  A shard that merely lost its first-choice replica
   fails over to a sibling and widens nothing: the sibling holds the
   same logical data.  [served_diverged] lists read replicas serving
   while flagged by anti-entropy (only chosen when no clean sibling is
   live) — surfaced as `Replica_diverged. *)
type view = {
  alive : (int * int * E.t) list; (* (shard, replica, engine) *)
  parts : ((int * int) * Hsq_hist.Partition.t) list; (* (owner, partition), active only *)
  streams : Ss.t list;
  us : Us.t;
  excluded : int list;
  excluded_elems : int;
  served_diverged : (int * int) list;
}

let quarantined_sum alive =
  List.fold_left (fun acc (_, _, e) -> acc + Li.quarantined_elements (E.hist e)) 0 alive

let agg_key alive = List.map (fun (i, j, e) -> (i, j, Li.epoch (E.hist e))) alive
let us_key alive = List.map (fun (i, j, e) -> (i, j, Li.epoch (E.hist e), E.stream_size e)) alive

let fused_agg t alive =
  let key = agg_key alive in
  match t.agg_cache with
  | Some (k, agg) when k = key -> agg
  | _ ->
    let partitions = List.concat_map (fun (_, _, e) -> Li.active_partitions (E.hist e)) alive in
    let agg = Us.hist_aggregate ~partitions in
    t.agg_cache <- Some (key, agg);
    agg

(* Per-shard stream summaries for a fused build.  When every read
   replica runs the mergeable KLL sketch, the per-shard snapshots merge
   into ONE sketch and the view carries a single stream summary: the
   fused heap then brackets union ranks through sketch merge instead of
   summed per-shard windows (DESIGN.md §16).  Any GK shard (or an empty
   group) falls back to the summed-window path unchanged. *)
let streams_of alive =
  let snapshots = List.map (fun (_, _, e) -> E.kll_snapshot e) alive in
  if alive <> [] && List.for_all Option.is_some snapshots then
    let merged =
      List.fold_left
        (fun acc s ->
          match (acc, s) with
          | None, s -> s
          | acc, None -> acc
          | Some a, Some b -> Some (Hsq_sketch.Kll.merge a b))
        None snapshots
    in
    match merged with
    | Some m -> [ Ss.extract (Hsq.Stream_sketch.Kll m) ]
    | None -> []
  else List.map (fun (_, _, e) -> E.stream_summary e) alive

let fused_summaries t alive =
  let key = us_key alive in
  match t.us_cache with
  | Some (k, v) when k = key -> v
  | _ ->
    let agg = fused_agg t alive in
    let streams = streams_of alive in
    let us = Us.build_fused ~agg ~streams in
    let v = (streams, us) in
    t.us_cache <- Some (key, v);
    v

(* [dropped] is (shard, replica) pairs disqualified for this query. *)
let make_view t ~dropped =
  refresh_sizes t;
  let alive = ref [] in
  let excluded = ref [] in
  let served_diverged = ref [] in
  for i = t.k - 1 downto 0 do
    let cands =
      List.filter (fun (j, _) -> not (List.mem (i, j) dropped)) (live_replicas_of t.slots.(i))
    in
    let clean = List.filter (fun (j, _) -> not t.slots.(i).(j).diverged) cands in
    match (clean, cands) with
    | (j, e) :: _, _ -> alive := (i, j, e) :: !alive
    | [], (j, e) :: _ ->
      alive := (i, j, e) :: !alive;
      served_diverged := (i, j) :: !served_diverged
    | [], [] -> excluded := i :: !excluded
  done;
  let alive = !alive and excluded = !excluded in
  let excluded_elems = List.fold_left (fun acc i -> acc + t.last_size.(i)) 0 excluded in
  let streams, us =
    (* The cache only serves the no-runtime-drops view; a mid-query
       drop is rare and rebuilds fresh. *)
    if dropped = [] then fused_summaries t alive
    else
      let partitions = List.concat_map (fun (_, _, e) -> Li.active_partitions (E.hist e)) alive in
      let streams = streams_of alive in
      (streams, Us.build_fused ~agg:(Us.hist_aggregate ~partitions) ~streams)
  in
  let parts =
    List.concat_map
      (fun (i, j, e) -> List.map (fun p -> ((i, j), p)) (Li.active_partitions (E.hist e)))
      alive
  in
  { alive; parts; streams; us; excluded; excluded_elems; served_diverged = !served_diverged }

(* Memory-only fallback when quarantine emptied the active view: the
   full partition sets (quarantined included) still carry honest — if
   wide — summary windows, at zero device reads (the engine's
   quick_view argument, fused).  Returns [true] iff it substituted the
   full-set summary, whose windows already cover the quarantined
   elements (no double widening). *)
let full_view_fallback view =
  if Us.n_total view.us > 0 then (view, false)
  else begin
    let partitions = List.concat_map (fun (_, _, e) -> Li.partitions (E.hist e)) view.alive in
    let streams = streams_of view.alive in
    let full = Us.build_fused ~agg:(Us.hist_aggregate ~partitions) ~streams in
    if Us.size full > 0 then ({ view with us = full; streams }, true) else (view, false)
  end

let rank_bound_of us ~rank v ~widen =
  let r = float_of_int rank in
  let lo, hi = Us.rank_window us v in
  Float.max (hi -. r) (r -. lo) +. float_of_int widen

let down_degradation view : degradation =
  let shard_deg : degradation =
    match view.excluded with [] -> `None | ks -> `Shard_down ks
  in
  let diverged_deg : degradation =
    match view.served_diverged with [] -> `None | ps -> `Replica_diverged ps
  in
  worst_degradation shard_deg diverged_deg

(* --- fused quick -------------------------------------------------------- *)

let ensure_open t = if t.closed then invalid_arg "Shard_group: closed"

let quick_with_bound t ~rank =
  ensure_open t;
  let view, fallback = full_view_fallback (make_view t ~dropped:[]) in
  let n = Us.n_total view.us in
  if n = 0 then invalid_arg "Shard_group.quick: no data";
  let rank = clamp_rank ~n rank in
  let v = Us.quick_select view.us ~rank in
  let q = if fallback then 0 else quarantined_sum view.alive in
  let widen = q + view.excluded_elems in
  let degradation =
    worst_degradation (down_degradation view) (if q > 0 then `Quarantined q else `None)
  in
  (v, rank_bound_of view.us ~rank v ~widen, degradation)

let quick t ~rank =
  let v, _, _ = quick_with_bound t ~rank in
  v

(* --- fused accurate ------------------------------------------------------ *)

type probe_state = {
  owner : int * int; (* (shard, replica) the partition was read from *)
  partition : Hsq_hist.Partition.t;
  mutable lo : int;
  mutable hi : int;
}

exception Probe_failure of (int * int) * Hsq_hist.Partition.t * string
exception Deadline_cut of int * int

let accurate ?(tolerance_factor = 0.5) ?deadline_ms t ~rank =
  ensure_open t;
  let t0 = Metrics.now_s () in
  let deadline_at =
    match (deadline_ms, t.config.Hsq.Config.query_deadline_ms) with
    | Some d, _ | None, Some d -> Some (t0 +. (d /. 1000.0))
    | None, None -> None
  in
  (* IO accounting spans every live replica: a failover mid-query reads
     a sibling that was not in the opening view. *)
  let stats_before =
    List.map
      (fun (_, _, e) ->
        let s = BD.stats (E.device e) in
        (s, Hsq_storage.Io_stats.snapshot s))
      (all_live t)
  in
  let iterations = ref 0 in
  let dropped = ref [] in
  (* One bisection over a fixed view; raises Probe_failure on an
     unrecoverable device error (carrying the owning (shard, replica))
     and Deadline_cut between iterations. *)
  let attempt view ~rank =
    let us = view.us in
    let u0, v0 = Us.filters us ~rank in
    let probes =
      Array.of_list
        (List.map
           (fun (owner, p) ->
             let lo, hi =
               Hsq_hist.Partition_summary.search_window (Hsq_hist.Partition.summary p) ~u:u0
                 ~v:v0
             in
             { owner; partition = p; lo; hi })
           view.parts)
    in
    (* The shared rank budget: the per-shard stream estimates are each
       exact +-eps2*m_s, so the fused estimate is exact
       +-Sigma_s eps2*m_s = eps2*m — one band for the whole group, not
       one per shard (DESIGN.md §14). *)
    let m_eps =
      List.fold_left (fun acc ss -> acc +. (Ss.eps2 ss *. float_of_int (Ss.stream_size ss))) 0.0
        view.streams
    in
    let tolerance = tolerance_factor *. m_eps in
    let r = float_of_int rank in
    let probe_one z st =
      if st.lo >= st.hi then st.lo
      else
        try
          Hsq_storage.Run.rank_between (Hsq_hist.Partition.run st.partition) ~lo:st.lo ~hi:st.hi
            z
        with BD.Device_error msg -> raise (Probe_failure (st.owner, st.partition, msg))
    in
    let estimate z =
      let ranks = Array.map (probe_one z) probes in
      let rho1 = Array.fold_left ( + ) 0 ranks in
      let rho2 = List.fold_left (fun acc ss -> acc +. Ss.rank_estimate ss z) 0.0 view.streams in
      (ranks, float_of_int rho1 +. rho2)
    in
    let narrow ~left ranks =
      Array.iteri
        (fun i st ->
          let rank_z = ranks.(i) in
          if left then st.hi <- min st.hi rank_z else st.lo <- max st.lo rank_z)
        probes
    in
    let rec bisect u v =
      (match deadline_at with
      | Some d when Metrics.now_s () > d -> raise (Deadline_cut (u, v))
      | _ -> ());
      incr iterations;
      if v - u <= 1 then begin
        let _, rho_u = estimate u in
        if rho_u >= r then u else v
      end
      else begin
        let z = u + ((v - u) / 2) in
        let ranks, rho = estimate z in
        if r < rho -. tolerance then begin
          narrow ~left:true ranks;
          bisect u z
        end
        else if r > rho +. tolerance then begin
          narrow ~left:false ranks;
          bisect z v
        end
        else z
      end
    in
    (bisect u0 v0, m_eps)
  in
  let finish t0_view ~rank degradation =
    (* Memory answer from whatever summary is in hand.  Widening: live
       quarantined elements plus every shard absent from this view's
       summary — shards dropped *after* the view was built still have
       their in-memory contribution inside [us], so they widen nothing
       here (the summary covers them). *)
    let q = quarantined_sum t0_view.alive in
    let n = Us.n_total t0_view.us in
    let rank = clamp_rank ~n rank in
    let v = Us.quick_select t0_view.us ~rank in
    (v, degradation, rank_bound_of t0_view.us ~rank v ~widen:(q + t0_view.excluded_elems))
  in
  let total_parts =
    List.fold_left (fun acc (_, _, e) -> acc + Li.partition_count (E.hist e)) 0 (all_live t)
  in
  let max_retries = (total_parts * t.config.Hsq.Config.quarantine_after) + (t.k * t.r) + 2 in
  (* Shards with no live replica outside [dropped]: the only shards a
     drop actually excludes from the next view. *)
  let fully_dropped () =
    let out = ref [] in
    for i = t.k - 1 downto 0 do
      if
        List.for_all
          (fun (j, _) -> List.mem (i, j) !dropped)
          (live_replicas_of t.slots.(i))
      then out := i :: !out
    done;
    !out
  in
  let rec go tries view_opt =
    let view = match view_opt with Some v -> v | None -> make_view t ~dropped:!dropped in
    let view, mem_fallback = full_view_fallback view in
    let n = Us.n_total view.us in
    if n = 0 then
      (* Nothing reachable at all (every shard down or empty). *)
      invalid_arg "Shard_group.accurate: no data"
    else begin
      let rank_c = clamp_rank ~n rank in
      let down_deg = down_degradation view in
      if mem_fallback || view.parts = [] && view.streams = [] then
        finish view ~rank (worst_degradation down_deg `Device_open)
      else begin
        match attempt view ~rank:rank_c with
        | answer, m_eps ->
          List.iter
            (fun ((i, j), p) ->
              match t.slots.(i).(j).state with
              | Live e -> Li.note_probe_success (E.hist e) p
              | Dead _ -> ())
            view.parts;
          let q = quarantined_sum view.alive in
          let tolerance = tolerance_factor *. m_eps in
          (* Completed-bisection bound: the stopping band, the summed
             stream estimates' own uncertainty (±eps2·m_s each, with
             integer-boundary slack per stream), plus everything the
             probes could not see — quarantined and excluded-shard
             elements.  Failed-over shards are NOT excluded: their
             sibling replicas carry the same logical data, so the full
             ±ε·m contract survives any loss that leaves one replica
             per shard. *)
          let estimate_slack = m_eps +. (2.0 *. float_of_int (max 1 (List.length view.streams))) in
          let degradation =
            worst_degradation down_deg (if q > 0 then `Quarantined q else `None)
          in
          ( answer,
            degradation,
            tolerance +. estimate_slack +. float_of_int (q + view.excluded_elems) )
        | exception Deadline_cut (u, v) ->
          let q = quarantined_sum view.alive in
          let qa = Us.quick_select view.us ~rank:rank_c in
          let best = if v >= u then max u (min v qa) else qa in
          ( best,
            worst_degradation down_deg `Deadline,
            rank_bound_of view.us ~rank:rank_c best ~widen:(q + view.excluded_elems) )
        | exception Probe_failure ((s, j), p, _msg) ->
          let rep = t.slots.(s).(j) in
          let e = match rep.state with Live e -> Some e | Dead _ -> None in
          let breaker_open =
            match e with
            | Some e -> BD.breaker_state (E.device e) = Hsq_storage.Breaker.Open
            | None -> true
          in
          (* Quarantine machinery still learns from every failure, so a
             single sick partition quarantines instead of condemning its
             whole replica. *)
          let quarantined_now =
            match e with
            | Some e ->
              Li.note_probe_failure (E.hist e) p ~threshold:t.config.Hsq.Config.quarantine_after
            | None -> false
          in
          if breaker_open || tries >= max_retries then begin
            (* The replica, not the partition, is the fault domain now:
               drop it from this query and restart over the survivors —
               the shard fails over to a sibling replica if it has one
               (full precision preserved), and only a shard whose whole
               replica set is gone leaves the fused answer.  Restart
               (rather than patching the probe set) is required for
               correctness — earlier narrowing used the dropped
               replica's ranks. *)
            dropped := List.sort_uniq compare ((s, j) :: !dropped);
            let any_candidate =
              List.exists (fun (i, jj, _) -> not (List.mem (i, jj) !dropped)) (all_live t)
            in
            if not any_candidate then
              (* Every replica of every shard dropped: answer from the
                 last summary in hand (it still covers the dropped
                 replicas' memory state). *)
              finish view ~rank
                (worst_degradation (`Shard_down (fully_dropped ())) `Device_open)
            else go (tries + 1) None
          end
          else if quarantined_now then go (tries + 1) None (* epoch bumped: rebuild *)
          else go (tries + 1) (Some view)
      end
    end
  in
  let answer, degradation, rank_error_bound = go 0 None in
  let io =
    List.fold_left
      (fun acc (s, before) ->
        Hsq_storage.Io_stats.add acc
          (Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot s) before))
      Hsq_storage.Io_stats.zero stats_before
  in
  (answer, { io; iterations = !iterations; degradation; rank_error_bound })

let quantile t phi =
  if not (phi >= 0.0 && phi <= 1.0) then invalid_arg "Shard_group.quantile: phi not in [0,1]";
  let n = total_size t in
  if n = 0 then invalid_arg "Shard_group.quantile: no data";
  let rank = clamp_rank ~n (int_of_float (ceil (phi *. float_of_int n))) in
  accurate t ~rank

(* --- anti-entropy -------------------------------------------------------- *)

type entropy_report = {
  entropy_shard : int;
  digests : (int * Anti_entropy.digest) list; (* live replicas, ascending *)
  flagged : (int * string) list; (* replicas flagged diverged this pass, with their digest *)
  repaired : int list;
  repair_failed : (int * string) list;
}

(* The replica repairs copy from: among the candidate live replicas,
   prefer a closed breaker, then the most data, then the lowest
   index — "healthiest sibling". *)
let healthiest candidates =
  let score (j, e) =
    let breaker_ok =
      match BD.breaker_state (E.device e) with Hsq_storage.Breaker.Closed -> 1 | _ -> 0
    in
    (breaker_ok, E.total_size e, -j)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun best c -> if score c > score best then c else best) first rest)

(* Converge replica [rep] of shard [i] onto live sibling [src]: force a
   checkpoint on the source so its files are a complete rendering of
   its state, crash-release the target, copy the store byte-for-byte,
   and recover the copy — recovery of identical bytes yields an
   identical engine (deterministic replay).  Caller holds the lock. *)
let repair_replica_locked t i rep ~src:(src_j, src_e) =
  (try E.checkpoint_now src_e with _ -> ());
  (match rep.state with
  | Live e -> ( try E.crash e with _ -> ())
  | Dead _ -> ());
  rep.state <- Dead "repairing from sibling";
  (match rep.hints with
  | Some hl ->
    Hint_log.discard hl;
    rep.hints <- None
  | None -> ());
  match
    Anti_entropy.copy_store ~src:(replica_store_dir t i src_j) ~dst:(replica_store_dir t i rep.rep);
    E.open_or_recover (shard_config t.config ~wal_dir:(Some (replica_store_dir t i rep.rep)))
  with
  | e, _report ->
    tag_registry t e i rep.rep;
    rep.state <- Live e;
    rep.diverged <- false;
    drop_caches t;
    Ok e
  | exception exn ->
    let reason = "repair failed: " ^ Printexc.to_string exn in
    rep.state <- Dead reason;
    drop_caches t;
    Error reason

(* Compare per-replica state digests within each shard; flag the
   minority as diverged ([`Replica_diverged] in reports that must serve
   them, a warning in health) and, with [repair], converge them onto
   the healthiest sibling.  Digest equality is exact for single-lane
   groups (replicas see identical op sequences); requires a durable
   group with r > 1 — otherwise returns []. *)
let anti_entropy ?(repair = false) t =
  ensure_open t;
  if t.r = 1 || t.root = None then []
  else
    with_lock t (fun () ->
        let reports = ref [] in
        for i = 0 to t.k - 1 do
          let live = live_replicas_of t.slots.(i) in
          if List.length live >= 2 then begin
            let digests =
              List.map
                (fun (j, e) ->
                  (j, Anti_entropy.digest ~store_dir:(replica_store_dir t i j) e))
                live
            in
            (* Majority rule: the largest group of equal digests is the
               truth; ties break toward the group holding the
               healthiest replica. *)
            let groups =
              List.fold_left
                (fun acc (j, d) ->
                  match List.partition (fun (d', _) -> Anti_entropy.equal d d') acc with
                  | [ (d', js) ], rest -> (d', j :: js) :: rest
                  | _, rest -> (d, [ j ]) :: rest)
                [] digests
            in
            let ref_group =
              List.fold_left
                (fun best (d, js) ->
                  match best with
                  | None -> Some (d, js)
                  | Some (_, bjs) when List.length js > List.length bjs -> Some (d, js)
                  | Some (bd, bjs) when List.length js = List.length bjs -> (
                    let members jset =
                      List.filter (fun (j, _) -> List.mem j jset) live
                    in
                    match (healthiest (members js), healthiest (members bjs)) with
                    | Some (hj, _), Some (bhj, _) ->
                      if d.Anti_entropy.elements > bd.Anti_entropy.elements
                         || (d.Anti_entropy.elements = bd.Anti_entropy.elements && hj < bhj)
                      then Some (d, js)
                      else best
                    | _ -> best)
                  | best -> best)
                None groups
            in
            match ref_group with
            | None -> ()
            | Some (ref_digest, ref_js) ->
              let flagged = ref [] in
              let repaired = ref [] in
              let repair_failed = ref [] in
              List.iter
                (fun (j, d) ->
                  let rep = t.slots.(i).(j) in
                  if Anti_entropy.equal d ref_digest then rep.diverged <- false
                  else begin
                    rep.diverged <- true;
                    flagged := (j, Anti_entropy.to_string d) :: !flagged;
                    if repair then begin
                      let src =
                        healthiest (List.filter (fun (j', _) -> List.mem j' ref_js) live)
                      in
                      match src with
                      | None -> ()
                      | Some src -> (
                        match repair_replica_locked t i rep ~src with
                        | Ok _ -> repaired := j :: !repaired
                        | Error reason -> repair_failed := (j, reason) :: !repair_failed)
                    end
                  end)
                digests;
              (* Flags (set or cleared) steer read-replica choice. *)
              drop_caches t;
              reports :=
                {
                  entropy_shard = i;
                  digests;
                  flagged = List.rev !flagged;
                  repaired = List.rev !repaired;
                  repair_failed = List.rev !repair_failed;
                }
                :: !reports
          end
        done;
        List.rev !reports)

(* --- rejoin -------------------------------------------------------------- *)

(* Apply one drained hint record to a recovering replica. *)
let apply_hint e = function
  | Hsq_storage.Wal.Observe v -> E.observe e v
  | Hsq_storage.Wal.End_step _ | Hsq_storage.Wal.End_step_cuts _ ->
    if E.stream_size e > 0 then ignore (E.end_time_step e)

(* Admit a freshly recovered engine [e] as replica [rep] of shard [i]:
   drain its hint log (exactly-once via the seq arithmetic), verify the
   result against a live sibling, and fall back to sibling repair on
   any doubt.  Caller holds the lock; [rep.state] is Dead on entry. *)
let admit_replica_locked t i rep e =
  let sync = t.config.Hsq.Config.wal_sync in
  let home = shard_home t i in
  let had_pair = Hint_log.exists ~dir:home ~peer:rep.rep in
  (* Any stale in-memory handle was closed by the caller; reattach from
     disk so we read the complete flushed log. *)
  let hl = if had_pair then Hint_log.reopen ~dir:home ~peer:rep.rep ~sync else None in
  let single_lane = t.config.Hsq.Config.ingest_domains = 1 in
  (* `Clean: nothing to drain. `Drained: hints applied. Any Error:
     the replica's state is in doubt — repair from a sibling. *)
  let drain =
    match hl with
    | None -> if had_pair then Error "hint log unreadable" else Ok `Clean
    | Some _ when not single_lane -> Error "multi-lane replica cannot drain hints"
    | Some hl -> (
      match E.durability_status e with
      | None -> Error "replica has no durability status"
      | Some ds ->
        let skip = ds.E.wal_next_seq - Hint_log.base_seq hl in
        if skip < 0 then
          (* The replica lost acknowledged ops that predate the hints
             (possible under Group/Never sync): they are not in the
             log, so only a repair can restore them. *)
          Error "replica recovered below the hint base (pre-hint acked ops lost)"
        else begin
          let recs = Hint_log.records hl in
          let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
          let todo = drop skip recs in
          match List.iter (apply_hint e) todo with
          | () -> Ok (`Drained (List.length todo))
          | exception exn -> Error ("hint drain failed: " ^ Printexc.to_string exn)
        end)
  in
  let discard_pair () =
    (match hl with
    | Some hl -> Hint_log.discard hl
    | None ->
      (try Sys.remove (Hint_log.wal_path ~dir:home ~peer:rep.rep) with Sys_error _ -> ());
      (try Sys.remove (Hint_log.base_path ~dir:home ~peer:rep.rep) with Sys_error _ -> ()));
    rep.hints <- None
  in
  let sibling () =
    healthiest
      (List.filter (fun (j, _) -> j <> rep.rep) (live_replicas_of t.slots.(i)))
  in
  (* Cheap consistency check against a live sibling: op cursor and
     logical sizes must agree once hints are drained (full digests run
     under scrub's anti-entropy pass, which catches deeper divergence). *)
  let consistent_with_sibling () =
    match sibling () with
    | None -> true (* nothing to compare against: this replica IS the best copy *)
    | Some (_, se) -> (
      E.total_size e = E.total_size se
      && E.time_steps e = E.time_steps se
      &&
      match (E.durability_status e, E.durability_status se) with
      | Some a, Some b -> a.E.wal_next_seq = b.E.wal_next_seq
      | _ -> true)
  in
  let admit e =
    tag_registry t e i rep.rep;
    rep.state <- Live e;
    rep.diverged <- false;
    discard_pair ();
    drop_caches t;
    Ok e
  in
  match drain with
  | Ok _ when consistent_with_sibling () -> admit e
  | Ok _ | Error _ -> (
    (* Drain impossible or the drained state disagrees with a live
       sibling: converge by repair.  With no live sibling the recovered
       state is the best copy there is — admit it as-is. *)
    match sibling () with
    | None -> admit e
    | Some src ->
      (try E.crash e with _ -> ());
      rep.state <- Dead "repairing on rejoin";
      discard_pair ();
      repair_replica_locked t i rep ~src)

let rejoin_replica t ~shard ~replica =
  if shard < 0 || shard >= t.k then invalid_arg "Shard_group.rejoin_replica: shard out of range";
  if replica < 0 || replica >= t.r then
    invalid_arg "Shard_group.rejoin_replica: replica out of range";
  let rep = t.slots.(shard).(replica) in
  match rep.state with
  | Live _ -> Error "replica is not down"
  | Dead _ -> (
    match t.root with
    | None -> Error "volatile shard cannot rejoin (its data died with it)"
    | Some _ ->
      with_lock t (fun () ->
          (* Flush and detach the in-memory hint handle so the on-disk
             pair is complete before the drain re-reads it. *)
          (match rep.hints with
          | Some hl ->
            Hint_log.close hl;
            rep.hints <- None
          | None -> ());
          let dir = replica_store_dir t shard replica in
          match E.open_or_recover (shard_config t.config ~wal_dir:(Some dir)) with
          | exception exn ->
            (* Still down; reattach the hint log so ongoing acked ops
               keep accumulating for a later attempt. *)
            rep.hints <-
              Hint_log.reopen ~dir:(shard_home t shard) ~peer:replica
                ~sync:t.config.Hsq.Config.wal_sync;
            Error ("rejoin recovery failed: " ^ Printexc.to_string exn)
          | e, recovery -> (
            match admit_replica_locked t shard rep e with
            | Error _ as err -> err
            | Ok e -> (
              match Hsq.Persist.scrub ~repair:true e with
              | scrub ->
                t.last_size.(shard) <- E.total_size e;
                drop_caches t;
                Ok (recovery, scrub)
              | exception exn ->
                replica_down_locked t shard rep
                  ~reason:("rejoin scrub failed: " ^ Printexc.to_string exn);
                Error ("rejoin scrub failed: " ^ Printexc.to_string exn)))))

(* Shard-level rejoin: every dead replica of the shard attempts its
   per-replica rejoin.  Succeeds if at least one replica came back
   (the shard serves again); returns the first successful replica's
   reports, matching the unreplicated signature. *)
let rejoin t i =
  if i < 0 || i >= t.k then invalid_arg "Shard_group.rejoin: shard index out of range";
  let dead =
    List.filter_map
      (fun rep -> match rep.state with Dead _ -> Some rep.rep | Live _ -> None)
      (Array.to_list t.slots.(i))
  in
  if dead = [] then Error "shard is not down"
  else if t.root = None then Error "volatile shard cannot rejoin (its data died with it)"
  else begin
    let results = List.map (fun j -> rejoin_replica t ~shard:i ~replica:j) dead in
    match List.find_opt Result.is_ok results with
    | Some (Ok payload) -> Ok payload
    | _ -> ( match results with Error e :: _ -> Error e | _ -> Error "rejoin failed")
  end

let open_or_recover config =
  let root =
    match config.Hsq.Config.wal_dir with
    | Some d -> d
    | None -> invalid_arg "Shard_group.open_or_recover: config.wal_dir not set"
  in
  let k = config.Hsq.Config.shards in
  let r = config.Hsq.Config.replicas in
  if Sys.file_exists root then begin
    if not (Sys.is_directory root) then
      invalid_arg "Shard_group.open_or_recover: wal_dir is not a directory"
  end
  else Sys.mkdir root 0o755;
  let recoveries = ref [] in
  let slots =
    Array.init k (fun i ->
        let home = if k = 1 then root else shard_dir ~root i in
        if r > 1 && not (Sys.file_exists home) then Sys.mkdir home 0o755;
        Array.init r (fun j ->
            let dir = store_dir ~root ~shards:k ~replicas:r ~shard:i ~replica:j in
            match E.open_or_recover (shard_config config ~wal_dir:(Some dir)) with
            | e, report ->
              recoveries := { shard = i; replica = j; outcome = Ok report } :: !recoveries;
              { rep = j; state = Live e; hints = None; diverged = false }
            | exception
                (( BD.Device_error _ | Hsq.Meta.Corrupt_metadata _ | Sys_error _
                 | Invalid_argument _ ) as exn) ->
              let reason = Printexc.to_string exn in
              recoveries := { shard = i; replica = j; outcome = Error reason } :: !recoveries;
              { rep = j; state = Dead reason; hints = None; diverged = false }))
  in
  let t = make_t config ~k ~r ~slots ~last_size:(Array.make k 0) ~root:(Some root) in
  (* Post-pass per shard: absorb stale hint pairs (a replica that was
     down — or mid-drain — when the whole group died), reattach hint
     logs for replicas still dead, and settle element counts. *)
  for i = 0 to k - 1 do
    if r > 1 then
      Array.iter
        (fun rep ->
          if Hint_log.exists ~dir:(shard_home t i) ~peer:rep.rep then begin
            match rep.state with
            | Live e ->
              (* Recovered but never finished its drain: re-run it
                 (idempotent by the seq arithmetic) before the replica
                 serves reads.  On failure the admit path repairs or, as
                 a last resort, keeps it out with a reason. *)
              rep.state <- Dead "absorbing stale hints";
              (match admit_replica_locked t i rep e with Ok _ | Error _ -> ())
            | Dead _ ->
              rep.hints <-
                Hint_log.reopen ~dir:(shard_home t i) ~peer:rep.rep
                  ~sync:config.Hsq.Config.wal_sync
          end)
        t.slots.(i);
    (* Element count: live read replica, else max estimate over the
       replica stores (overcount-safe for bound widening). *)
    (match read_replica t i with
    | Some (_, e, _) -> t.last_size.(i) <- E.total_size e
    | None ->
      let est = ref 0 in
      for j = 0 to r - 1 do
        est := max !est (estimate_elements (store_dir ~root ~shards:k ~replicas:r ~shard:i ~replica:j))
      done;
      t.last_size.(i) <- !est);
    Array.iter
      (fun rep -> match rep.state with Live e -> tag_registry t e i rep.rep | Dead _ -> ())
      t.slots.(i)
  done;
  (t, List.rev !recoveries)

(* --- scrub ---------------------------------------------------------------- *)

let scrub ?repair t =
  List.map (fun (i, e) -> (i, Hsq.Persist.scrub ?repair e)) (engines t)

let scrub_all ?repair t =
  List.map (fun (i, j, e) -> ((i, j), Hsq.Persist.scrub ?repair e)) (all_live t)

(* --- lifecycle ----------------------------------------------------------- *)

let checkpoint_now t = List.iter (fun (_, _, e) -> try E.checkpoint_now e with _ -> ()) (all_live t)

let close_hints t =
  Array.iter
    (fun reps ->
      Array.iter
        (fun rep ->
          match rep.hints with
          | Some hl ->
            (try Hint_log.close hl with _ -> ());
            rep.hints <- None
          | None -> ())
        reps)
    t.slots

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun (_, _, e) ->
        (try E.checkpoint_now e with _ -> ());
        try E.close e with _ -> ())
      (all_live t);
    close_hints t
  end

let crash t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun (_, _, e) -> try E.crash e with _ -> ()) (all_live t);
    Array.iter
      (fun reps ->
        Array.iter
          (fun rep ->
            match rep.hints with
            | Some hl ->
              (try Hint_log.crash hl with _ -> ());
              rep.hints <- None
            | None -> ())
          reps)
      t.slots
  end

let is_closed t = t.closed

(* --- metrics -------------------------------------------------------------- *)

(* Prometheus has no registry-level labels, so the group exporter
   injects shard="<k>" (and replica="<j>" when replicated) into each
   per-shard line: after the opening brace when the metric already
   carries labels (histogram buckets), as a fresh label set otherwise.
   Comment lines pass through. *)
let label_prometheus_line ~label line =
  if line = "" || line.[0] = '#' then line
  else
    match String.index_opt line ' ' with
    | None -> line
    | Some sp -> (
      let name = String.sub line 0 sp in
      let rest = String.sub line sp (String.length line - sp) in
      match String.index_opt name '{' with
      | Some b ->
        String.sub name 0 (b + 1) ^ label ^ "," ^ String.sub name (b + 1) (String.length name - b - 1)
        ^ rest
      | None -> name ^ "{" ^ label ^ "}" ^ rest)

let metrics_prometheus ?extra t =
  let buf = Buffer.create 4096 in
  (match extra with Some reg -> Buffer.add_string buf (Metrics.to_prometheus reg) | None -> ());
  List.iter
    (fun (i, j, e) ->
      let label =
        if t.r = 1 then Printf.sprintf "shard=\"%d\"" i
        else Printf.sprintf "shard=\"%d\",replica=\"%d\"" i j
      in
      String.split_on_char '\n' (Metrics.to_prometheus (E.metrics e))
      |> List.iter (fun line ->
             if line <> "" then begin
               Buffer.add_string buf (label_prometheus_line ~label line);
               Buffer.add_char buf '\n'
             end))
    (all_live t);
  Buffer.contents buf

let json_escape reason =
  let b = Buffer.create 32 in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    reason;
  Buffer.add_char b '"';
  Buffer.contents b

let metrics_json ?extra t =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '{';
  (match extra with
  | Some reg ->
    Buffer.add_string buf "\"group\":";
    Buffer.add_string buf (Metrics.to_json reg);
    Buffer.add_char buf ','
  | None -> ());
  Buffer.add_string buf "\"shards\":{";
  Array.iteri
    (fun i reps ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%d\":" i;
      if t.r = 1 then begin
        (* R = 1 keeps the pre-replication shape exactly. *)
        match reps.(0).state with
        | Live e -> Buffer.add_string buf (Metrics.to_json (E.metrics e))
        | Dead reason -> Printf.bprintf buf "{\"down\":true,\"reason\":%s}" (json_escape reason)
      end
      else begin
        let down = live_replicas_of reps = [] in
        Printf.bprintf buf "{\"down\":%b,\"replicas\":{" down;
        Array.iteri
          (fun j rep ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%d\":" j;
            match rep.state with
            | Live e ->
              if rep.diverged then
                Printf.bprintf buf "{\"diverged\":true,\"metrics\":%s}"
                  (Metrics.to_json (E.metrics e))
              else Buffer.add_string buf (Metrics.to_json (E.metrics e))
            | Dead reason ->
              Printf.bprintf buf "{\"down\":true,\"reason\":%s%s}" (json_escape reason)
                (match rep.hints with
                | Some hl -> Printf.sprintf ",\"hints_pending\":%d" (Hint_log.record_count hl)
                | None -> ""))
          reps;
        Buffer.add_string buf "}}"
      end)
    t.slots;
  Buffer.add_string buf "}}";
  Buffer.contents buf
