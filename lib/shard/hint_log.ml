(* Hinted handoff: the durable per-peer buffer a shard keeps while one
   of its replicas is down.

   While replica j of a shard is dead, every op the shard acknowledges
   (observes and end-of-step cuts) is also appended to j's hint log —
   a regular {!Hsq_storage.Wal} at <shard_dir>/hint-<j>.wal, under the
   same sync policy as the main WALs, so the ack still implies the op
   will reach every replica eventually.  On rejoin the log is drained
   into the recovered replica before it re-enters the read set.

   Exactly-once drain without a per-record cursor: a replica applies
   ops in order and each op appends exactly one record to its own main
   WAL (single-lane engines), so main-WAL sequence numbers advance in
   lockstep across replicas.  The sidecar base file records the
   replica's main-WAL [next_seq] at the moment hints began; hint record
   #n (0-based) therefore corresponds to main seq [base_seq + n], and
   the number of hints already applied — surviving any crash mid-drain
   — is just the replica's recovered [next_seq - base_seq].  A replica
   whose recovered seq is *below* the base lost acknowledged ops that
   predate the hints (possible under Group/Never sync); those are not
   in the log, so the drain reports divergence and the caller falls
   back to anti-entropy repair.

   The pair of files is the unit of validity: a missing or corrupt base
   invalidates the log (reopen returns None) and the rejoin path must
   repair from a sibling instead.  [mark_broken] exploits this — a
   failed hint append degrades the dead replica from "drainable" to
   "needs repair" by deleting the pair, never by acking an op the log
   does not hold. *)

module Wal = Hsq_storage.Wal

type t = {
  wal : Wal.t;
  path : string;
  base_path : string;
  base_seq : int; (* target replica's main-WAL next_seq when hints began *)
  peer : int;
}

let wal_path ~dir ~peer = Filename.concat dir (Printf.sprintf "hint-%d.wal" peer)
let base_path ~dir ~peer = Filename.concat dir (Printf.sprintf "hint-%d.base" peer)

let render_base ~peer ~base_seq =
  let buf = Buffer.create 64 in
  Printf.bprintf buf "hsq-hint 1\n";
  Printf.bprintf buf "peer %d\n" peer;
  Printf.bprintf buf "base_seq %d\n" base_seq;
  Printf.bprintf buf "checksum %x\n" (Hsq.Meta.checksum (Buffer.contents buf));
  Buffer.contents buf

let parse_base path ~peer =
  match Hsq.Meta.verify_checksum (Hsq.Meta.read_lines path) with
  | [ header; peer_line; base_line ] -> (
    if header <> "hsq-hint 1" then None
    else
      match
        ( String.split_on_char ' ' peer_line,
          String.split_on_char ' ' base_line )
      with
      | [ "peer"; p ], [ "base_seq"; b ] -> (
        match (int_of_string_opt p, int_of_string_opt b) with
        | Some p, Some base_seq when p = peer -> Some base_seq
        | _ -> None)
      | _ -> None)
  | _ | (exception _) -> None

let exists ~dir ~peer =
  Sys.file_exists (wal_path ~dir ~peer) && Sys.file_exists (base_path ~dir ~peer)

let start ~dir ~peer ~sync ~base_seq =
  let path = wal_path ~dir ~peer in
  let bpath = base_path ~dir ~peer in
  (* Base first: a crash between the two writes leaves a base without a
     log, which reopen reads as an empty (valid) hint set. *)
  Hsq.Meta.write ~path:bpath (render_base ~peer ~base_seq);
  let wal = Wal.create ~sync ~stats:(Hsq_storage.Io_stats.create ()) ~path ~start_seq:1 () in
  { wal; path; base_path = bpath; base_seq; peer }

let reopen ~dir ~peer ~sync =
  let path = wal_path ~dir ~peer in
  let bpath = base_path ~dir ~peer in
  if not (Sys.file_exists bpath) then None
  else
    match parse_base bpath ~peer with
    | None -> None
    | Some base_seq -> (
      match
        if Sys.file_exists path then
          let wal, _, _ = Wal.open_existing ~sync ~stats:(Hsq_storage.Io_stats.create ()) ~path () in
          wal
        else Wal.create ~sync ~stats:(Hsq_storage.Io_stats.create ()) ~path ~start_seq:1 ()
      with
      | wal -> Some { wal; path; base_path = bpath; base_seq; peer }
      | exception _ -> None)

let base_seq t = t.base_seq
let peer t = t.peer
let record_count t = Wal.next_seq t.wal - Wal.start_seq t.wal

(* Appends raise Block_device.Device_error on failure, exactly like the
   main WAL; the caller converts that into [mark_broken]. *)
let observe t v = ignore (Wal.append t.wal (Wal.Observe v))
let end_step t ~step ~count = ignore (Wal.append t.wal (Wal.End_step { step; count }))

(* The buffered records in append order (flushing first, so the file is
   the complete truth). *)
let records t =
  Wal.sync t.wal;
  let records, _, _ = Wal.read_path ~path:t.path in
  List.map snd records

let close t = try Wal.close t.wal with _ -> ()
let crash t = try Wal.crash t.wal with _ -> ()

let remove_files t =
  (try Sys.remove t.path with Sys_error _ -> ());
  (try Sys.remove t.base_path with Sys_error _ -> ());
  Hsq_storage.Atomic_file.fsync_dir (Filename.dirname t.path)

let discard t =
  close t;
  remove_files t

(* A hint append failed: the log no longer holds every acked op, so it
   must never be drained.  Deleting the base invalidates the pair for
   any future reopen; rejoin then repairs from a sibling. *)
let mark_broken t =
  crash t;
  remove_files t
