(** Anti-entropy primitives for replicated shards: per-replica state
    digests and the file-level copy a repair uses to converge a
    diverged replica onto a healthy sibling.

    Replicas of a shard apply identical op sequences and every engine
    structure is deterministic in that sequence (merge cascade, GK,
    and the KLL sketch's seeded coin stream), so healthy siblings
    agree bit-for-bit — making structural digests a sound divergence
    detector and byte-identical file copy a sound repair. *)

type digest = {
  elements : int;  (** total logical elements *)
  steps : int;  (** archived time steps *)
  hist_hash : int;  (** checksum over all partition descriptors *)
  levels : (int * int) list;  (** (level, checksum over that level's descriptors) *)
  sketch_hash : int;  (** checksum of the forced sketch checkpoint file; 0 = volatile *)
}

(** Digest an engine's state. With [store_dir] (the replica's durable
    directory) a sketch checkpoint is forced first and its file bytes
    checksummed, so the digest covers the open step too; without it
    the sketch component is 0. *)
val digest : ?store_dir:string -> Hsq.Engine.t -> digest

val equal : digest -> digest -> bool
val to_string : digest -> string

(** Replace [dst]'s store files with byte-identical copies of
    [src]'s (hint logs and [.tmp] droppings excluded; stale [dst]
    files removed first). Both engines must be closed or
    crash-released; the caller reopens [dst] afterwards. Copies are
    fsynced, and the destination directory fsynced last. *)
val copy_store : src:string -> dst:string -> unit
