(** Hinted handoff buffer: the durable per-peer log a shard keeps while
    one of its replicas is down.

    Every op the shard acknowledges while replica [peer] is dead is
    appended here (same sync policy as the main WALs, so the ack still
    implies delivery-eventually); on rejoin the log is drained into the
    recovered replica before it re-enters the read set.

    Exactly-once drain: the base file records the replica's main-WAL
    [next_seq] when hints began, each drained op appends exactly one
    main-WAL record, so the number of hints already applied is the
    replica's recovered [next_seq - base_seq] — stable across crashes
    mid-drain. Only valid for single-lane engines
    ([Config.ingest_domains = 1]); multi-lane rejoins must repair from
    a sibling instead. *)

type t

val wal_path : dir:string -> peer:int -> string
val base_path : dir:string -> peer:int -> string

(** Both files of a (possibly stale) hint pair exist. *)
val exists : dir:string -> peer:int -> bool

(** Fresh pair for [peer], truncating any stale one. [base_seq] is the
    dead replica's main-WAL next_seq (its durable op cursor). Raises
    [Block_device.Device_error] / [Sys_error] if the files cannot be
    written. *)
val start :
  dir:string -> peer:int -> sync:Hsq_storage.Wal.sync_policy -> base_seq:int -> t

(** Reattach to an existing pair; [None] if absent, mismatched, or
    corrupt — the caller must then repair the replica from a sibling. *)
val reopen : dir:string -> peer:int -> sync:Hsq_storage.Wal.sync_policy -> t option

val base_seq : t -> int
val peer : t -> int
val record_count : t -> int

(** Append one acked observe / end-of-step cut. Raises
    [Block_device.Device_error] on failure — convert to {!mark_broken}. *)
val observe : t -> int -> unit

val end_step : t -> step:int -> count:int -> unit

(** Flush and read back every record, in append order. *)
val records : t -> Hsq_storage.Wal.record list

val close : t -> unit
val crash : t -> unit

(** Close and delete the pair (drain complete). *)
val discard : t -> unit

(** The log lost an acked op (append failure): delete the pair so no
    future reopen can drain it; rejoin must repair instead. *)
val mark_broken : t -> unit
