(* Anti-entropy primitives: per-replica state digests and the file-level
   copy a repair uses to converge a diverged replica onto a sibling.

   Replicas of a shard apply identical op sequences, and every piece of
   engine state is deterministic in that sequence — the warehouse merge
   cascade, the GK sketch, and the KLL sketch's coin stream (seeded
   SplitMix over a flip counter, see lib/sketch/kll.ml) — so healthy
   siblings agree *bit for bit*.  That makes cheap structural digests a
   sound divergence detector, and file-level copy a sound repair: the
   healthy sibling's store files fully describe its state, and opening
   a byte-identical copy recovers an identical engine.

   A digest is (element count, archived steps, per-level partition
   checksums, sketch checkpoint checksum): the historical side is
   hashed from the partition descriptors (level, block placement, step
   range, length, quarantine bit — the same lines the sidecar
   persists), and the stream side from the checkpoint file a forced
   [checkpoint_now] just rendered from live state.  Any acked op a
   replica lost, gained, or reordered moves at least one component. *)

module E = Hsq.Engine
module Li = Hsq_hist.Level_index

type digest = {
  elements : int;
  steps : int;
  hist_hash : int; (* all partition descriptors *)
  levels : (int * int) list; (* (level, checksum over that level's descriptors) *)
  sketch_hash : int; (* checksum of the sketch checkpoint file; 0 = volatile/no file *)
}

let descriptor_line (d : Li.partition_descriptor) =
  Printf.sprintf "%d %d %d %d %d %d\n" d.level d.first_block d.length d.first_step d.last_step
    (if d.quarantined then 1 else 0)

let read_file_checksum path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Hsq.Meta.checksum (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> 0

(* [store_dir] names the replica's durable directory: the sketch side is
   then a forced checkpoint's file checksum.  Without it (volatile
   engine) the sketch component is 0 and divergence detection rests on
   the count + historical components alone. *)
let digest ?store_dir e =
  let descriptors = Li.describe (E.hist e) in
  let by_level = Hashtbl.create 8 in
  List.iter
    (fun (d : Li.partition_descriptor) ->
      let prev = try Hashtbl.find by_level d.level with Not_found -> "" in
      Hashtbl.replace by_level d.level (prev ^ descriptor_line d))
    descriptors;
  let levels =
    Hashtbl.fold (fun level body acc -> (level, Hsq.Meta.checksum body) :: acc) by_level []
    |> List.sort compare
  in
  let hist_hash =
    Hsq.Meta.checksum (String.concat "" (List.map descriptor_line descriptors))
  in
  let sketch_hash =
    match store_dir with
    | None -> 0
    | Some dir ->
      E.checkpoint_now e;
      let _, _, _, ckpt = E.store_paths ~dir in
      read_file_checksum ckpt
  in
  {
    elements = E.total_size e;
    steps = E.time_steps e;
    hist_hash;
    levels;
    sketch_hash;
  }

let equal (a : digest) (b : digest) = a = b

let to_string d =
  Printf.sprintf "elements=%d steps=%d hist=%x sketch=%x%s" d.elements d.steps d.hist_hash
    d.sketch_hash
    (String.concat ""
       (List.map (fun (l, c) -> Printf.sprintf " L%d=%x" l c) d.levels))

(* --- file-level repair --------------------------------------------------- *)

let is_store_file name =
  (not (Filename.check_suffix name ".tmp"))
  && not (String.length name >= 5 && String.sub name 0 5 = "hint-")

let copy_file src dst =
  let ic = open_in_bin src in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let oc = open_out_bin dst in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let buf = Bytes.create 65536 in
          let rec loop () =
            let n = input ic buf 0 (Bytes.length buf) in
            if n > 0 then begin
              output oc buf 0 n;
              loop ()
            end
          in
          loop ()));
  Hsq_storage.Atomic_file.fsync_file dst

(* Replace [dst]'s store files with byte-identical copies of [src]'s.
   Both engines must be closed/crashed (no open handles); the caller
   reopens [dst] afterwards.  Stale [dst] files are removed first so a
   leftover (e.g. an extra lane WAL) cannot shadow the copied state. *)
let copy_store ~src ~dst =
  if not (Sys.file_exists dst) then Sys.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let p = Filename.concat dst name in
      if is_store_file name && not (Sys.is_directory p) then Sys.remove p)
    (Sys.readdir dst);
  Array.iter
    (fun name ->
      let p = Filename.concat src name in
      if is_store_file name && not (Sys.is_directory p) then
        copy_file p (Filename.concat dst name))
    (Sys.readdir src);
  Hsq_storage.Atomic_file.fsync_dir dst
