(* Process-level gauges: uptime, build info, and GC heap pressure.

   Registered via gauge_fn so every export (JSON or Prometheus) reads
   the live value — there is nothing to keep up to date between
   scrapes.  Registration is idempotent: the registry keeps the first
   closure for an already-registered pull gauge, so callers (CLI
   subcommands, the serve daemon) can all call [register] without
   coordinating. *)

(* Process start approximated by module initialization — for the
   daemon the two are milliseconds apart, which is all an uptime gauge
   needs. *)
let started_at = Unix.gettimeofday ()

let register ?(build = Sys.ocaml_version) reg =
  Metrics.gauge_fn ~help:"Seconds since process start" reg "hsq_uptime_seconds" (fun () ->
      Unix.gettimeofday () -. started_at);
  (* The conventional build-info constant: always 1; the interesting
     content rides in the help text (the exporter has no labels). *)
  Metrics.gauge_fn
    ~help:(Printf.sprintf "Build info (ocaml %s); constant 1" build)
    reg "hsq_build_info"
    (fun () -> 1.0);
  Metrics.gauge_fn ~help:"Major-heap words currently allocated" reg "hsq_gc_heap_words"
    (fun () -> float_of_int (Gc.quick_stat ()).Gc.heap_words);
  Metrics.gauge_fn ~help:"Words allocated in the major heap since start" reg
    "hsq_gc_major_words" (fun () -> (Gc.quick_stat ()).Gc.major_words);
  Metrics.gauge_fn ~help:"Major collections since start" reg "hsq_gc_major_collections"
    (fun () -> float_of_int (Gc.quick_stat ()).Gc.major_collections);
  Metrics.gauge_fn ~help:"Minor collections since start" reg "hsq_gc_minor_collections"
    (fun () -> float_of_int (Gc.quick_stat ()).Gc.minor_collections)
