(** Process-level pull gauges for any long-running hsq process.

    {!register} adds [hsq_uptime_seconds], [hsq_build_info] (constant
    1; the build string rides in the help text) and GC heap gauges
    ([hsq_gc_heap_words], [hsq_gc_major_words],
    [hsq_gc_major_collections], [hsq_gc_minor_collections]) to a
    registry as [gauge_fn] pull metrics. Idempotent — safe to call
    from every entry point that exports the registry. *)

val register : ?build:string -> Metrics.t -> unit
