(* Thread-safe metrics registry (see the mli for the contract).

   Concurrency design, cheapest mechanism per type:
   - counters are a single [int Atomic.t] (fetch_and_add);
   - gauges are a [float Atomic.t] updated by CAS (sets are rare —
     per-batch, not per-element — so boxing a float per set is fine);
   - histograms take a per-histogram mutex: one observation updates
     a bucket, the count, the sum, and min/max together, and the lock
     is what makes "total count = observations" exact under domains;
   - the registry itself locks only registration and listing, never a
     metric update, so hot paths touch no shared registry state. *)

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
  let value = Atomic.get
  let set = Atomic.set
end

module Gauge = struct
  type t = float Atomic.t

  let make () = Atomic.make 0.0
  let set g v = Atomic.set g v
  let value = Atomic.get

  let rec add g d =
    let cur = Atomic.get g in
    if not (Atomic.compare_and_set g cur (cur +. d)) then add g d
end

module Histogram = struct
  (* [bounds] are the log-spaced boundaries b_0 < b_1 < ...; bucket i
     holds observations in [b_(i-1), b_i) (closed-open), bucket 0 is
     (-inf, b_0) and the last bucket [b_(k-1), +inf) — so there are
     [Array.length bounds + 1] buckets. *)
  type t = {
    bounds : float array;
    counts : int array;
    mutable total : int;
    mutable sum : float;
    lock : Mutex.t;
  }

  let make ~start ~factor ~buckets =
    if not (start > 0.0) then invalid_arg "Metrics.histogram: start must be > 0";
    if not (factor > 1.0) then invalid_arg "Metrics.histogram: factor must be > 1";
    if buckets < 1 then invalid_arg "Metrics.histogram: need at least one boundary";
    let bounds = Array.init buckets (fun i -> start *. (factor ** float_of_int i)) in
    { bounds; counts = Array.make (buckets + 1) 0; total = 0; sum = 0.0; lock = Mutex.create () }

  (* Smallest i with v < bounds.(i); bucket count when v clears them
     all.  An observation equal to a boundary therefore lands in the
     higher bucket: buckets are [lo, hi). *)
  let bucket_index t v =
    let b = t.bounds in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if v < b.(mid) then go lo mid else go (mid + 1) hi
    in
    go 0 (Array.length b)

  let observe t v =
    let i = bucket_index t v in
    Mutex.lock t.lock;
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    Mutex.unlock t.lock

  let count t =
    Mutex.lock t.lock;
    let n = t.total in
    Mutex.unlock t.lock;
    n

  let sum t =
    Mutex.lock t.lock;
    let s = t.sum in
    Mutex.unlock t.lock;
    s

  let buckets t =
    Mutex.lock t.lock;
    let counts = Array.copy t.counts in
    Mutex.unlock t.lock;
    let k = Array.length t.bounds in
    Array.init (k + 1) (fun i ->
        let lo = if i = 0 then neg_infinity else t.bounds.(i - 1) in
        let hi = if i = k then infinity else t.bounds.(i) in
        (lo, hi, counts.(i)))

  (* Consistent (counts, total, sum) triple for the exporters. *)
  let snapshot t =
    Mutex.lock t.lock;
    let s = (Array.copy t.counts, t.total, t.sum) in
    Mutex.unlock t.lock;
    s
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t
  | M_counter_fn of (unit -> int)
  | M_gauge_fn of (unit -> float)

type entry = { metric : metric; help : string }

type t = { lock : Mutex.t; table : (string, entry) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 32 }

let now_s = Unix.gettimeofday

let kind_name = function
  | M_counter _ | M_counter_fn _ -> "counter"
  | M_gauge _ | M_gauge_fn _ -> "gauge"
  | M_histogram _ -> "histogram"

(* Idempotent registration: an existing entry of the right shape is
   returned as is ([select] projects it), any other shape is a naming
   bug worth failing loudly on. *)
let register t name ~help ~select ~fresh =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some e -> (
        match select e.metric with
        | Some m -> m
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name (kind_name e.metric)))
      | None ->
        let m = fresh () in
        Hashtbl.replace t.table name { metric = m; help };
        m)

let counter ?(help = "") t name =
  match
    register t name ~help
      ~select:(function M_counter c -> Some (M_counter c) | _ -> None)
      ~fresh:(fun () -> M_counter (Counter.make ()))
  with
  | M_counter c -> c
  | _ -> assert false

let gauge ?(help = "") t name =
  match
    register t name ~help
      ~select:(function M_gauge g -> Some (M_gauge g) | _ -> None)
      ~fresh:(fun () -> M_gauge (Gauge.make ()))
  with
  | M_gauge g -> g
  | _ -> assert false

let histogram ?(help = "") ?(start = 1e-6) ?(factor = 2.0) ?(buckets = 26) t name =
  match
    register t name ~help
      ~select:(function M_histogram h -> Some (M_histogram h) | _ -> None)
      ~fresh:(fun () -> M_histogram (Histogram.make ~start ~factor ~buckets))
  with
  | M_histogram h -> h
  | _ -> assert false

let counter_fn ?(help = "") t name f =
  ignore
    (register t name ~help
       ~select:(function M_counter_fn f -> Some (M_counter_fn f) | _ -> None)
       ~fresh:(fun () -> M_counter_fn f))

let gauge_fn ?(help = "") t name f =
  ignore
    (register t name ~help
       ~select:(function M_gauge_fn f -> Some (M_gauge_fn f) | _ -> None)
       ~fresh:(fun () -> M_gauge_fn f))

(* Sorted (name, entry) snapshot; metric reads happen after the registry
   lock is released so an export never blocks hot-path updates. *)
let sorted_entries t =
  Mutex.lock t.lock;
  let all = Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.table [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let names t = List.map fst (sorted_entries t)

let counter_value t name =
  Mutex.lock t.lock;
  let e = Hashtbl.find_opt t.table name in
  Mutex.unlock t.lock;
  match e with
  | Some { metric = M_counter c; _ } -> Some (Counter.value c)
  | Some { metric = M_counter_fn f; _ } -> Some (f ())
  | _ -> None

let gauge_value t name =
  Mutex.lock t.lock;
  let e = Hashtbl.find_opt t.table name in
  Mutex.unlock t.lock;
  match e with
  | Some { metric = M_gauge g; _ } -> Some (Gauge.value g)
  | Some { metric = M_gauge_fn f; _ } -> Some (f ())
  | _ -> None

(* Deterministic float formatting: %.9g round-trips every latency and
   boundary we produce, and never depends on locale. *)
let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Cumulative counts paired with each upper boundary (the +Inf bucket
   last) — the shape both exporters want. *)
let cumulative (h : Histogram.t) =
  let counts, total, sum = Histogram.snapshot h in
  let k = Array.length h.Histogram.bounds in
  let acc = ref 0 in
  let rows =
    Array.init (k + 1) (fun i ->
        acc := !acc + counts.(i);
        let le = if i = k then infinity else h.Histogram.bounds.(i) in
        (le, !acc))
  in
  (rows, total, sum)

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, e) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape name));
      match e.metric with
      | M_counter c -> Buffer.add_string b (string_of_int (Counter.value c))
      | M_counter_fn f -> Buffer.add_string b (string_of_int (f ()))
      | M_gauge g -> Buffer.add_string b (fnum (Gauge.value g))
      | M_gauge_fn f -> Buffer.add_string b (fnum (f ()))
      | M_histogram h ->
        let rows, total, sum = cumulative h in
        Buffer.add_string b (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[" total (fnum sum));
        Array.iteri
          (fun i (le, n) ->
            if i > 0 then Buffer.add_char b ',';
            let le_s = if le = infinity then "\"+Inf\"" else fnum le in
            Buffer.add_string b (Printf.sprintf "{\"le\":%s,\"n\":%d}" le_s n))
          rows;
        Buffer.add_string b "]}")
    (sorted_entries t);
  Buffer.add_char b '}';
  Buffer.contents b

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, e) ->
      if e.help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name e.help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name (kind_name e.metric));
      match e.metric with
      | M_counter c -> Buffer.add_string b (Printf.sprintf "%s %d\n" name (Counter.value c))
      | M_counter_fn f -> Buffer.add_string b (Printf.sprintf "%s %d\n" name (f ()))
      | M_gauge g -> Buffer.add_string b (Printf.sprintf "%s %s\n" name (fnum (Gauge.value g)))
      | M_gauge_fn f -> Buffer.add_string b (Printf.sprintf "%s %s\n" name (fnum (f ())))
      | M_histogram h ->
        let rows, total, sum = cumulative h in
        Array.iter
          (fun (le, n) ->
            let le_s = if le = infinity then "+Inf" else fnum le in
            Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le_s n))
          rows;
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (fnum sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name total))
    (sorted_entries t);
  Buffer.contents b
