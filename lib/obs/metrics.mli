(** Thread-safe metrics registry: named counters, gauges, and
    log-bucketed histograms, with deterministic JSON and
    Prometheus-text exporters.

    The registry is the process-wide hub the instrumented subsystems
    (engine, WAL, level index, block device, worker pool) hang their
    metrics on; in practice one registry per engine, reachable through
    the device's {!Hsq_storage.Io_stats}. All operations are safe under
    concurrent OCaml 5 domains: counters are atomic, gauges are
    CAS-updated, histogram observations are serialized by a per-histogram
    mutex, and registration is idempotent under the registry lock —
    registering an existing name returns the existing metric (and raises
    [Invalid_argument] if the existing metric has a different type).

    Exporter output is stable: metrics are emitted sorted by name and
    floats are formatted deterministically, so two exports of the same
    state are byte-identical and diffable.

    Naming convention: [hsq_<subsystem>_<what>[_total|_seconds]], using
    only [\[a-zA-Z0-9_\]] so names are valid Prometheus identifiers as
    is. *)

type t

val create : unit -> t

(** Monotonic-ish wall clock in seconds, shared by every latency
    instrumentation site ([Unix.gettimeofday]; the same clock the level
    index's update reports already use — see DESIGN.md §11 for the
    substitution note). *)
val now_s : unit -> float

module Counter : sig
  type t

  (** Add [by] (default 1; may be any int) atomically. *)
  val inc : ?by:int -> t -> unit

  val value : t -> int

  (** Overwrite the value (used by {!Hsq_storage.Io_stats.reset};
      Prometheus counters never go backwards, so outside of a reset this
      should not be called). *)
  val set : t -> int -> unit
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  (** Record one observation. Serialized by the histogram's mutex, so
      concurrent observers from several domains sum exactly. *)
  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float

  (** Per-bucket snapshot [(lo, hi, count)], in ascending order.
      Buckets are closed-open [\[lo, hi)]: an observation equal to a
      boundary lands in the {e higher} bucket. The first bucket's [lo]
      is [neg_infinity] and the last bucket's [hi] is [infinity]. *)
  val buckets : t -> (float * float * int) array

  (** Index of the bucket an observation of [v] falls into (exposed for
      the boundary tests). *)
  val bucket_index : t -> float -> int
end

(** [counter t name] registers (or retrieves) a counter. *)
val counter : ?help:string -> t -> string -> Counter.t

val gauge : ?help:string -> t -> string -> Gauge.t

(** [histogram t name] registers (or retrieves) a histogram with
    log-spaced bucket boundaries [start · factor^i] for
    [i = 0 .. buckets-1] (defaults: 1e-6 · 2^i over 26 boundaries —
    1 µs to ~34 s, the latency range of every instrumented path).
    Boundary parameters are fixed at first registration; a later call
    with the same name returns the existing histogram unchanged. *)
val histogram :
  ?help:string -> ?start:float -> ?factor:float -> ?buckets:int -> t -> string -> Histogram.t

(** Pull-based metrics: the value is read by calling [f] at
    export/inspection time instead of being pushed. Used for hot-path
    counters kept as plain single-writer ints (e.g. the engine's
    quick-query count — see DESIGN.md §11 on the overhead budget);
    [f] must be safe to call from any domain at any time. Registering
    an existing name is a no-op. *)
val counter_fn : ?help:string -> t -> string -> (unit -> int) -> unit

val gauge_fn : ?help:string -> t -> string -> (unit -> float) -> unit

(** Registered names, sorted. *)
val names : t -> string list

(** Point-in-time value of a registered counter (push or pull-based);
    [None] if the name is absent or not a counter. *)
val counter_value : t -> string -> int option

(** Point-in-time value of a registered gauge (push or pull-based);
    [None] if the name is absent or not a gauge. *)
val gauge_value : t -> string -> float option

(** One JSON object, keys sorted by metric name:
    counters/gauges as numbers, histograms as
    [{"count":..,"sum":..,"buckets":[{"le":..,"n":..},..]}] with
    cumulative bucket counts. *)
val to_json : t -> string

(** Prometheus text exposition format (TYPE/HELP comments, cumulative
    [_bucket{le="..."}] lines plus [_sum]/[_count] for histograms),
    metrics sorted by name. *)
val to_prometheus : t -> string
