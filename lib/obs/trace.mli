(** Lightweight per-query trace spans.

    A trace is a collector of span {e trees}: each span has a name, a
    start time and duration (same clock as {!Metrics.now_s}), a small
    list of string attributes, and child spans. The engine records one
    root span per traced query, with children for the summary-cache
    probe, each bisection iteration, and each partition probe; the
    durable ingest path records spans for WAL appends/syncs, merges,
    and checkpoints (see DESIGN.md §11 for the span taxonomy).

    Concurrency: a trace keeps a current-span stack for the common
    single-domain call nesting ({!with_span}), and {!with_child} takes
    an explicit parent and never touches the stack — that is what the
    parallel partition probes use, so spans created on pool worker
    domains attach to the right bisection iteration without racing on
    the stack. All span-tree mutation is serialized by the trace's
    mutex.

    Tracing is strictly opt-in (an untraced engine pays one [None]
    check per instrumented site). A trace retains every span it
    records; {!create}'s [max_spans] bounds that memory — beyond the
    cap spans are counted in {!dropped} and silently discarded. *)

type t
type span

(** [create ?max_spans ()] — an empty trace. [max_spans] (default
    1_000_000) caps retained spans. *)
val create : ?max_spans:int -> unit -> t

(** [with_span t name f] runs [f span] inside a new span. The span's
    parent is the innermost span currently open via [with_span] on this
    trace (a root span otherwise); it is closed — duration stamped and
    attached to its parent or the root list — when [f] returns or
    raises. *)
val with_span : t -> ?attrs:(string * string) list -> string -> (span -> 'a) -> 'a

(** Like {!with_span} but with an explicit [parent], leaving the
    current-span stack alone — safe to call from any domain
    concurrently (the parallel probe path). *)
val with_child : t -> parent:span -> ?attrs:(string * string) list -> string -> (span -> 'a) -> 'a

(** Attach an attribute to a live or finished span (last write wins on
    duplicate keys at read time; thread-safe). *)
val add_attr : t -> span -> string -> string -> unit

(** Completed root spans, oldest first. Spans still open are not
    included. *)
val roots : t -> span list

(** Drop every recorded span (the per-query report path clears between
    queries). *)
val clear : t -> unit

(** Spans discarded because [max_spans] was reached. *)
val dropped : t -> int

(** {2 Span accessors (tests, reporters)} *)

val name : span -> string
val attrs : span -> (string * string) list
val attr : span -> string -> string option
val children : span -> span list

(** Seconds from span open to close; 0 while still open. *)
val duration_s : span -> float

(** [span] plus all descendants named [n], depth-first. *)
val find_all : span -> string -> span list

(** One span tree as a JSON object:
    [{"name":..,"dur_us":..,"attrs":{..},"children":[..]}]. *)
val to_json : span -> string

(** Indented human-readable tree (the [--trace] report format). *)
val pp : Format.formatter -> span -> unit
