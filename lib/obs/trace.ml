(* Span trees (see the mli for the contract).

   Everything that mutates the tree — opening, closing, attaching
   attributes — runs under the trace's single mutex. Span records are
   only handed out after being pushed, and readers ([roots], accessors)
   copy under the same lock, so a reporter on one domain can walk spans
   while probe workers on others are still closing theirs. *)

type span = {
  sname : string;
  start : float;
  mutable dur : float; (* 0 while open *)
  mutable sattrs : (string * string) list; (* reverse order of addition *)
  mutable children_rev : span list;
}

type t = {
  lock : Mutex.t;
  mutable roots_rev : span list;
  mutable stack : span list; (* innermost first; with_span only *)
  mutable live : int; (* spans retained (all trees, open or closed) *)
  max_spans : int;
  mutable n_dropped : int;
}

let create ?(max_spans = 1_000_000) () =
  { lock = Mutex.create (); roots_rev = []; stack = []; live = 0; max_spans; n_dropped = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* [parent = None] means "attach to the current stack top, or the root
   list"; [Some p] pins the parent explicitly and leaves the stack
   alone. Returns [None] when the span cap is hit. *)
let open_span t ~parent ~on_stack ?(attrs = []) name =
  locked t (fun () ->
      if t.live >= t.max_spans then (
        t.n_dropped <- t.n_dropped + 1;
        None)
      else begin
        let s =
          { sname = name;
            start = Metrics.now_s ();
            dur = 0.0;
            sattrs = List.rev attrs;
            children_rev = [] }
        in
        t.live <- t.live + 1;
        (match parent with
        | Some p -> p.children_rev <- s :: p.children_rev
        | None -> (
          match t.stack with
          | top :: _ -> top.children_rev <- s :: top.children_rev
          | [] -> t.roots_rev <- s :: t.roots_rev));
        if on_stack then t.stack <- s :: t.stack;
        Some s
      end)

let close_span t ~on_stack s =
  locked t (fun () ->
      (* Clamp to a positive floor so "closed" is distinguishable from
         "open" (dur = 0) even when the clock doesn't tick. *)
      s.dur <- Float.max 1e-9 (Metrics.now_s () -. s.start);
      if on_stack then
        match t.stack with
        | top :: rest when top == s -> t.stack <- rest
        | _ ->
          (* A mismatched close means with_span nesting was broken across
             domains; drop the whole stack rather than corrupt it. *)
          t.stack <- [])

let run t ~parent ~on_stack ?attrs name f =
  match open_span t ~parent ~on_stack ?attrs name with
  | None ->
    (* Over the cap: run the body untraced against a detached span so
       callers can still hang children/attrs off something harmless. *)
    f { sname = name; start = 0.0; dur = 0.0; sattrs = []; children_rev = [] }
  | Some s -> Fun.protect ~finally:(fun () -> close_span t ~on_stack s) (fun () -> f s)

let with_span t ?attrs name f = run t ~parent:None ~on_stack:true ?attrs name f
let with_child t ~parent ?attrs name f = run t ~parent:(Some parent) ~on_stack:false ?attrs name f

let add_attr t s k v = locked t (fun () -> s.sattrs <- (k, v) :: s.sattrs)

let roots t = locked t (fun () -> List.rev (List.filter (fun s -> s.dur > 0.0) t.roots_rev))

let clear t =
  locked t (fun () ->
      t.roots_rev <- [];
      t.stack <- [];
      t.live <- 0;
      t.n_dropped <- 0)

let dropped t = locked t (fun () -> t.n_dropped)

let name s = s.sname

(* Attribute order = order of addition; last write wins on duplicates. *)
let attrs s =
  let seen = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace seen k v) (List.rev s.sattrs);
  List.rev
    (List.fold_left
       (fun acc (k, _) ->
         match Hashtbl.find_opt seen k with
         | Some v ->
           Hashtbl.remove seen k;
           (k, v) :: acc
         | None -> acc)
       []
       (List.rev s.sattrs))

let attr s k = List.assoc_opt k (attrs s)
let children s = List.rev s.children_rev
let duration_s s = s.dur

let rec find_all s n =
  let here = if s.sname = n then [ s ] else [] in
  here @ List.concat_map (fun c -> find_all c n) (children s)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json span =
  let b = Buffer.create 256 in
  let rec go s =
    Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\"" (json_escape s.sname));
    Buffer.add_string b (Printf.sprintf ",\"dur_us\":%.1f" (s.dur *. 1e6));
    (match attrs s with
    | [] -> ()
    | kvs ->
      Buffer.add_string b ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        kvs;
      Buffer.add_char b '}');
    (match children s with
    | [] -> ()
    | cs ->
      Buffer.add_string b ",\"children\":[";
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char b ',';
          go c)
        cs;
      Buffer.add_char b ']');
    Buffer.add_char b '}'
  in
  go span;
  Buffer.contents b

let pp fmt span =
  let rec go indent s =
    let attr_s =
      match attrs s with
      | [] -> ""
      | kvs -> " [" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "]"
    in
    Format.fprintf fmt "%s%s %.1fus%s@." indent s.sname (s.dur *. 1e6) attr_s;
    List.iter (go (indent ^ "  ")) (children s)
  in
  go "" span
