(** The `hsq serve` daemon: line-JSON requests over a Unix or TCP
    socket, executed against one engine.

    Overload safety is structural: every engine-touching request goes
    through the bounded {!Admission} queue (full queue → explicit
    [overloaded] response with a retry-after hint, never silent
    buffering), carries an absolute deadline from its class budget
    (aged-out requests answer [timeout] without running), and is
    executed by a single engine thread — the engine is
    single-submitter by contract.  Connection faults (malformed lines,
    stalled clients, abrupt disconnects) are contained per-connection
    and surfaced in [hsq_serve_*] metrics.

    Exception: with [config.ingest_domains > 1] on the backing engine
    (or every shard of a group), [observe] verbs bypass the queue —
    each connection thread applies them itself on the ingest lane its
    connection id maps to ({!Hsq.Engine.observe_domain}, thread-safe
    by design), so writers scale with connections instead of
    serializing behind queries.  Replies still acknowledge exactly the
    WAL-durable prefix, a draining server answers [shutting_down]
    without acknowledging, and lane checkpoint debt is settled by a
    job on the engine thread (DESIGN.md §15).

    Shutdown is a drain: {!request_stop} (async-signal-safe, suitable
    for a SIGTERM handler) or the wire verb [drain] stops the accept
    loop; already-admitted requests are served or deadline-cut; the
    engine is checkpointed and closed; connections are shut down.  A
    crash instead of a drain loses no acknowledged observation — the
    WAL was appended before each ack. *)

type listen =
  | Unix_sock of string
  | Tcp of string * int

(** Per-class deadline budgets, milliseconds.  A request's deadline is
    [min budget requested_deadline_ms], covering queue wait plus
    execution. *)
type budgets = {
  quick_ms : float;
  accurate_ms : float;
  ingest_ms : float;
  admin_ms : float;
}

val default_budgets : budgets

type config = {
  listen : listen;
  queue_depth : int;  (** admission-queue capacity *)
  budgets : budgets;
  read_timeout_s : float;  (** per-connection stalled-read cutoff *)
  write_timeout_s : float;  (** per-connection stalled-write cutoff *)
  max_line_bytes : int;  (** request line cap; above it the connection closes *)
}

val default_config : listen -> config

type t

(** Raises [Invalid_argument] if [queue_depth < 1].  Registers the
    serve metrics (and process gauges) on the engine's registry. *)
val create : config -> Hsq.Engine.t -> t

(** Serve a {!Hsq_shard.Shard_group}: ingest routes across the shards,
    queries fuse (and report [`Shard_down] degradations), [health]
    rolls up per-shard state, and metric dumps merge every shard's
    registry under [shard="<k>"] labels.  Windowed queries are a
    single-engine feature and answer [bad_request].  Serve metrics live
    on a standalone registry (exported as the unlabelled part of the
    dumps). *)
val create_group : config -> Hsq_shard.Shard_group.t -> t

(** The single-engine backend.  Raises [Invalid_argument] on a sharded
    server — use {!group}. *)
val engine : t -> Hsq.Engine.t

(** The sharded backend, if this server fronts one. *)
val group : t -> Hsq_shard.Shard_group.t option

val uptime_s : t -> float

(** Bind, then spawn the accept and engine threads.  Raises
    [Invalid_argument] if already started, and [Unix.Unix_error] if the
    bind fails. *)
val start : t -> unit

(** Ask for a drain.  Only an atomic store — safe from a signal
    handler. *)
val request_stop : t -> unit

(** Block until the daemon has fully drained (accept loop exited,
    engine checkpointed and closed, connections joined). *)
val wait : t -> unit

(** [request_stop] + [wait]. *)
val stop : t -> unit

(** Run [f engine] on the engine thread, serialized with request
    execution, blocking until done.  The chaos harness uses this to
    flip device-fault injectors and run repair scrubs against a live
    server without racing queries.  Raises [Invalid_argument] if the
    queue is full or draining. *)
val submit_fn : t -> (Hsq.Engine.t -> unit) -> unit

(** {!submit_fn} for a sharded server: run [f group] on the engine
    thread.  The shard chaos harness uses it to kill and rejoin shards
    under live traffic. *)
val submit_group_fn : t -> (Hsq_shard.Shard_group.t -> unit) -> unit
