(* Minimal JSON for the line-JSON wire protocol (lib/serve).

   One request or response is exactly one JSON document on one line —
   the renderer never emits a newline, and the parser consumes one
   complete document (trailing whitespace allowed).  Numbers are kept
   as floats; integral values within the 2^53 exact range render
   without a decimal point, which covers every count and value the
   engine serves.  Kept dependency-free on purpose: the container bakes
   no JSON library, and the protocol needs only this. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- rendering --------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 9.0e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        render buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        render buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  render buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode a \uXXXX codepoint (surrogate pairs folded by the
     string scanner below). *)
  let add_codepoint buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let cp = try hex4 () with Failure _ -> fail "bad \\u escape" in
           (* Surrogate pair: \uD800-\uDBFF must be followed by a low
              surrogate escape. *)
           if cp >= 0xD800 && cp <= 0xDBFF && !pos + 2 <= n && s.[!pos] = '\\'
              && s.[!pos + 1] = 'u'
           then begin
             pos := !pos + 2;
             let lo = try hex4 () with Failure _ -> fail "bad \\u escape" in
             add_codepoint buf (0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00)))
           end
           else add_codepoint buf cp
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c)));
        go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- accessors --------------------------------------------------------- *)

let member v key = match v with Obj kvs -> List.assoc_opt key kvs | _ -> None

let as_int = function
  | Num f when Float.is_integer f && Float.abs f < 9.0e15 -> Some (int_of_float f)
  | _ -> None

let as_float = function Num f -> Some f | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_list = function List xs -> Some xs | _ -> None
let get_int v key = Option.bind (member v key) as_int
let get_float v key = Option.bind (member v key) as_float
let get_str v key = Option.bind (member v key) as_str
let get_bool v key = Option.bind (member v key) as_bool
let get_list v key = Option.bind (member v key) as_list
let int n = Num (float_of_int n)
