(* `hsq serve` — the long-running, overload-safe query daemon.

   Threading model (threads for I/O, domains for compute):

   - an accept thread polls the listen socket (select with a short
     timeout, so a stop request is noticed within ~50 ms without
     relying on signal-interrupted syscalls);
   - one connection thread per client parses line-JSON requests and
     submits them to the bounded admission queue, then blocks in the
     item's mailbox until the reply arrives — a slow or stalled client
     therefore only ever stalls its own thread (and is cut by the
     per-connection read/write timeouts);
   - a single engine thread drains the queue: the engine is
     single-submitter by contract, so all engine access funnels here,
     and query-internal parallelism still fans out across the
     Parallel.Pool probe domains.

   Admission control: the queue is strictly bounded (shed with
   retry-after past capacity — see Admission); every admitted request
   carries an absolute deadline from its class budget, checked when
   the engine thread picks it up (a request that aged out in the queue
   is answered `timeout`, not executed) and passed through to the
   accurate path's cooperative cancellation for the execution
   remainder.

   Drain (SIGTERM via request_stop, the `drain` verb, or stop):
     1. the queue stops admitting (submit -> shutting_down) but every
        already-admitted request is served or deadline-cut, then the
        engine thread exits;
     2. the listen socket stays open behind a refusal loop: a client
        that connects mid-drain reads an explicit shutting_down error
        instead of racing the close (hang on a half-accepted socket or
        ECONNRESET — the old behavior);
     3. checkpoint_now (forces a WAL sync) and close — both idempotent,
        so a concurrent or repeated shutdown is safe;
     4. connection sockets are shut down, their threads joined; only
        then does the listener itself close, so connects after a
        completed drain fail outright.
   A crash instead of a drain loses nothing acknowledged: every
   observe was WAL-appended before its ack, so open_or_recover replays
   the suffix (chaos-tested by test_serve's kill/restart scenario).

   Backends: one engine (the default) or a Shard_group — the admission
   queue, engine thread, and connection machinery are identical; only
   request execution dispatches. *)

module Metrics = Hsq_obs.Metrics
module E = Hsq.Engine
module BD = Hsq_storage.Block_device
module G = Hsq_shard.Shard_group

type listen =
  | Unix_sock of string
  | Tcp of string * int

type budgets = {
  quick_ms : float;
  accurate_ms : float;
  ingest_ms : float;
  admin_ms : float;
}

let default_budgets =
  { quick_ms = 250.0; accurate_ms = 2_000.0; ingest_ms = 2_000.0; admin_ms = 1_000.0 }

type config = {
  listen : listen;
  queue_depth : int;
  budgets : budgets;
  read_timeout_s : float;
  write_timeout_s : float;
  max_line_bytes : int;
}

let default_config listen =
  {
    listen;
    queue_depth = Admission.default_capacity;
    budgets = default_budgets;
    read_timeout_s = 30.0;
    write_timeout_s = 10.0;
    max_line_bytes = 1 lsl 20;
  }

type counters = {
  ok : Metrics.Counter.t;
  timeout : Metrics.Counter.t;
  parse_error : Metrics.Counter.t;
  bad_request : Metrics.Counter.t;
  internal : Metrics.Counter.t;
  conn_timeout : Metrics.Counter.t;
  conns_total : Metrics.Counter.t;
}

type backend =
  | Single of E.t
  | Group of G.t

type t = {
  config : config;
  backend : backend;
  reg : Metrics.t; (* serve-owned metrics: the engine's registry for
                      Single, a standalone one for Group (shard
                      registries are merged at dump time) *)
  ingest_lanes : int; (* > 1: connection threads run Observe directly on
                         their own ingest lane (engine observe_domain),
                         bypassing the single-submitter queue *)
  ckpt_scheduled : bool Atomic.t; (* a lane-debt checkpoint job is queued *)
  adm : Admission.t;
  started_at : float;
  stop_requested : bool Atomic.t;
  mutable listen_fd : Unix.file_descr option;
  mutable accept_thread : Thread.t option;
  mutable engine_thread : Thread.t option;
  conn_lock : Mutex.t;
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t; (* keyed by a conn id *)
  mutable next_conn_id : int;
  c : counters;
  conn_gauge : Metrics.Gauge.t;
  inflight_gauge : Metrics.Gauge.t;
  request_hist : Metrics.Histogram.t;
  queue_wait_hist : Metrics.Histogram.t;
}

let budget_ms_for t cls =
  let b = t.config.budgets in
  match cls with
  | Protocol.Quick_q -> b.quick_ms
  | Protocol.Accurate_q -> b.accurate_ms
  | Protocol.Ingest_q -> b.ingest_ms
  | Protocol.Admin_q -> b.admin_ms

let create_backend config backend =
  if config.queue_depth < 1 then invalid_arg "Server.create: queue_depth < 1";
  let reg = match backend with Single e -> E.metrics e | Group _ -> Metrics.create () in
  Hsq_obs.Process.register reg;
  let counter name help = Metrics.counter ~help reg name in
  let ingest_lanes =
    match backend with
    | Single e -> E.ingest_domains e
    | Group g -> (G.config g).Hsq.Config.ingest_domains
  in
  {
    config;
    backend;
    reg;
    ingest_lanes;
    ckpt_scheduled = Atomic.make false;
    adm = Admission.create ~capacity:config.queue_depth ~metrics:reg ();
    started_at = Metrics.now_s ();
    stop_requested = Atomic.make false;
    listen_fd = None;
    accept_thread = None;
    engine_thread = None;
    conn_lock = Mutex.create ();
    conns = Hashtbl.create 64;
    next_conn_id = 0;
    c =
      {
        ok = counter "hsq_serve_requests_ok_total" "Requests answered successfully";
        timeout =
          counter "hsq_serve_requests_timeout_total"
            "Requests that aged past their deadline budget in the queue";
        parse_error = counter "hsq_serve_requests_parse_error_total" "Unparseable request lines";
        bad_request = counter "hsq_serve_requests_bad_request_total" "Well-formed but invalid requests";
        internal = counter "hsq_serve_requests_error_total" "Requests failed by an engine/device error";
        conn_timeout =
          counter "hsq_serve_conn_timeouts_total" "Connections cut by the read/write timeout";
        conns_total = counter "hsq_serve_connections_total" "Connections accepted";
      };
    conn_gauge = Metrics.gauge ~help:"Open client connections" reg "hsq_serve_connections";
    inflight_gauge =
      Metrics.gauge ~help:"Requests currently executing on the engine thread" reg
        "hsq_serve_inflight";
    request_hist =
      Metrics.histogram ~help:"Request latency, admission to reply" reg
        "hsq_serve_request_seconds";
    queue_wait_hist =
      Metrics.histogram ~help:"Admission-queue wait" reg "hsq_serve_queue_wait_seconds";
  }

let create config engine = create_backend config (Single engine)
let create_group config group = create_backend config (Group group)

let engine t =
  match t.backend with
  | Single e -> e
  | Group _ -> invalid_arg "Server.engine: sharded backend (use Server.group)"

let group t =
  match t.backend with
  | Group g -> Some g
  | Single _ -> None

let uptime_s t = Metrics.now_s () -. t.started_at

(* Async-signal-safe: just an atomic store; the accept thread polls it. *)
let request_stop t = Atomic.set t.stop_requested true

(* --- request execution (engine thread only) ---------------------------- *)

let degradation_fields (report : E.query_report) =
  [
    ("bound", Json.Num report.E.rank_error_bound);
    ("degradation", Json.Str (E.degradation_label report.E.degradation));
    ("iterations", Json.int report.E.iterations);
    ("io", Json.int (Hsq_storage.Io_stats.total report.E.io));
  ]

let window_error_response sizes =
  Protocol.err Protocol.e_window
    ~extra:[ ("windows", Json.List (List.map Json.int sizes)) ]

(* Resolve a phi target against the population it will be asked over. *)
let rank_of_target ~n = function
  | Protocol.Rank r -> r
  | Protocol.Phi p ->
    let r = int_of_float (ceil (p *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r

let execute_single t eng req ~deadline =
  match req with
  | Protocol.Ping -> (`Ok, Protocol.ok [ ("pong", Json.Bool true) ])
  | Protocol.Drain ->
    (* Normally handled inline by the connection thread; if one slips
       through, honor it here too. *)
    request_stop t;
    (`Ok, Protocol.ok [ ("draining", Json.Bool true) ])
  | Protocol.Observe vals -> (
    let applied = ref 0 in
    try
      Array.iter
        (fun v ->
          E.observe eng v;
          incr applied)
        vals;
      (`Ok, Protocol.ok [ ("applied", Json.int !applied) ])
    with BD.Device_error msg ->
      (* Elements before the failure are acknowledged (they hit the
         WAL); the rest are not — the client knows exactly how many. *)
      ( `Error,
        Protocol.err Protocol.e_wal ~detail:msg ~extra:[ ("applied", Json.int !applied) ] ))
  | Protocol.End_step -> (
    try
      let report = E.end_time_step eng in
      let fields =
        [
          ("step", Json.int (E.time_steps eng));
          ("merges", Json.int report.Hsq_hist.Level_index.merges_performed);
        ]
      in
      let fields =
        match report.Hsq_hist.Level_index.deferred_merge with
        | None -> fields
        | Some why -> fields @ [ ("deferred_merge", Json.Str why) ]
      in
      (`Ok, Protocol.ok fields)
    with
    | Invalid_argument _ -> (`Bad, Protocol.err Protocol.e_bad_request ~detail:"empty step")
    | BD.Device_error msg -> (`Error, Protocol.err Protocol.e_device ~detail:msg))
  | Protocol.Quick { target; window } -> (
    try
      match window with
      | None ->
        let n = E.total_size eng in
        if n = 0 then (`Bad, Protocol.err Protocol.e_bad_request ~detail:"empty engine")
        else begin
          let rank = rank_of_target ~n target in
          let v, bound = E.quick_with_bound eng ~rank in
          ( `Ok,
            Protocol.ok
              [ ("value", Json.int v); ("rank", Json.int rank); ("bound", Json.Num bound) ] )
        end
      | Some w -> (
        match E.window_total eng ~window:w with
        | Error (E.Window_not_aligned sizes) -> (`Bad, window_error_response sizes)
        | Ok n ->
          if n = 0 then (`Bad, Protocol.err Protocol.e_bad_request ~detail:"empty window")
          else begin
            let rank = rank_of_target ~n target in
            match E.quick_window eng ~window:w ~rank with
            | Ok v ->
              ( `Ok,
                Protocol.ok
                  [ ("value", Json.int v); ("rank", Json.int rank); ("window", Json.int w) ] )
            | Error (E.Window_not_aligned sizes) -> (`Bad, window_error_response sizes)
          end)
    with BD.Device_error msg -> (`Error, Protocol.err Protocol.e_device ~detail:msg))
  | Protocol.Accurate { target; window; deadline_ms = _ } -> (
    (* The remaining budget (class budget minus queue wait, already
       folded with any request deadline) drives the engine's
       cooperative deadline-cut machinery. *)
    let remaining_ms = Float.max 1.0 ((deadline -. Metrics.now_s ()) *. 1000.0) in
    try
      match window with
      | None ->
        let n = E.total_size eng in
        if n = 0 then (`Bad, Protocol.err Protocol.e_bad_request ~detail:"empty engine")
        else begin
          let rank = rank_of_target ~n target in
          let v, report = E.accurate ~deadline_ms:remaining_ms eng ~rank in
          ( `Ok,
            Protocol.ok
              ([ ("value", Json.int v); ("rank", Json.int rank) ] @ degradation_fields report)
          )
        end
      | Some w -> (
        match E.window_total eng ~window:w with
        | Error (E.Window_not_aligned sizes) -> (`Bad, window_error_response sizes)
        | Ok n ->
          if n = 0 then (`Bad, Protocol.err Protocol.e_bad_request ~detail:"empty window")
          else begin
            let rank = rank_of_target ~n target in
            match E.accurate_window ~deadline_ms:remaining_ms eng ~window:w ~rank with
            | Ok (v, report) ->
              ( `Ok,
                Protocol.ok
                  ([ ("value", Json.int v); ("rank", Json.int rank); ("window", Json.int w) ]
                  @ degradation_fields report) )
            | Error (E.Window_not_aligned sizes) -> (`Bad, window_error_response sizes)
          end)
    with BD.Device_error msg -> (`Error, Protocol.err Protocol.e_device ~detail:msg))
  | Protocol.Stats ->
    let d = E.durability_status eng in
    ( `Ok,
      Protocol.ok
        [
          ("n", Json.int (E.total_size eng));
          ("hist", Json.int (E.hist_size eng));
          ("stream", Json.int (E.stream_size eng));
          ("steps", Json.int (E.time_steps eng));
          ("epsilon", Json.Num (E.epsilon eng));
          ("sketch", Json.Str (E.sketch_label eng));
          ("memory_words", Json.int (E.memory_words eng));
          ("windows", Json.List (List.map Json.int (E.window_sizes eng)));
          ("uptime_s", Json.Num (uptime_s t));
          ("queue_depth", Json.int (Admission.depth t.adm));
          ("queue_capacity", Json.int (Admission.capacity t.adm));
          ("durable", Json.Bool (d <> None));
        ] )
  | Protocol.Metrics_dump fmt -> (
    let reg = E.metrics eng in
    match fmt with
    | Protocol.Fmt_json ->
      (* Metrics.to_json is a single line by construction, so it can be
         spliced into the response line as-is. *)
      (`Ok, Printf.sprintf "{\"ok\":true,\"metrics\":%s}" (Metrics.to_json reg))
    | Protocol.Fmt_prometheus ->
      (`Ok, Protocol.ok [ ("body", Json.Str (Metrics.to_prometheus reg)) ]))
  | Protocol.Health_check ->
    let h = Health.collect eng in
    (`Ok, Protocol.ok (Health.to_fields h))

(* The sharded backend: fused queries and routed ingest via
   Shard_group; the window machinery is per-engine state and stays a
   single-backend feature. *)

let group_degradation_fields (report : G.query_report) =
  let down = match report.G.degradation with `Shard_down ks -> ks | _ -> [] in
  let diverged =
    match report.G.degradation with `Replica_diverged srs -> srs | _ -> []
  in
  [
    ("bound", Json.Num report.G.rank_error_bound);
    ("degradation", Json.Str (G.degradation_label report.G.degradation));
    ("iterations", Json.int report.G.iterations);
    ("io", Json.int (Hsq_storage.Io_stats.total report.G.io));
    ("shards_down", Json.List (List.map Json.int down));
    ( "replicas_diverged",
      Json.List
        (List.map (fun (i, j) -> Json.List [ Json.int i; Json.int j ]) diverged) );
  ]

let execute_group t g req ~deadline =
  match req with
  | Protocol.Ping -> (`Ok, Protocol.ok [ ("pong", Json.Bool true) ])
  | Protocol.Drain ->
    request_stop t;
    (`Ok, Protocol.ok [ ("draining", Json.Bool true) ])
  | Protocol.Observe vals -> (
    let applied = ref 0 in
    try
      Array.iter
        (fun v ->
          G.observe g v;
          incr applied)
        vals;
      (`Ok, Protocol.ok [ ("applied", Json.int !applied) ])
    with
    | G.Shard_unavailable (i, reason) ->
      (* The owning shard is down: everything before this element is
         acknowledged, this one and the rest are not. *)
      ( `Error,
        Protocol.err Protocol.e_device
          ~detail:(Printf.sprintf "shard %d down: %s" i reason)
          ~extra:[ ("applied", Json.int !applied); ("shard", Json.int i) ] )
    | BD.Device_error msg ->
      ( `Error,
        Protocol.err Protocol.e_wal ~detail:msg ~extra:[ ("applied", Json.int !applied) ] ))
  | Protocol.End_step -> (
    match G.end_time_step g with
    | [] -> (`Bad, Protocol.err Protocol.e_bad_request ~detail:"empty step")
    | results ->
      let merges =
        List.fold_left
          (fun acc (_, r) ->
            match r with
            | Ok rep -> acc + rep.Hsq_hist.Level_index.merges_performed
            | Error _ -> acc)
          0 results
      in
      let failures =
        List.filter_map (fun (i, r) -> match r with Error m -> Some (i, m) | Ok _ -> None) results
      in
      let fields = [ ("step", Json.int (G.time_steps g)); ("merges", Json.int merges) ] in
      if failures = [] then (`Ok, Protocol.ok fields)
      else
        (* Healthy shards archived; the client learns exactly which
           shards did not. *)
        ( `Error,
          Protocol.err Protocol.e_device
            ~detail:
              (String.concat "; "
                 (List.map (fun (i, m) -> Printf.sprintf "shard %d: %s" i m) failures))
            ~extra:(fields @ [ ("failed_shards", Json.List (List.map (fun (i, _) -> Json.int i) failures)) ]) ))
  | Protocol.Quick { target; window } -> (
    match window with
    | Some _ ->
      (`Bad, Protocol.err Protocol.e_bad_request ~detail:"windowed queries need a single-engine store")
    | None -> (
      let n = G.total_size g in
      if n = 0 then (`Bad, Protocol.err Protocol.e_bad_request ~detail:"empty engine")
      else
        try
          let rank = rank_of_target ~n target in
          let v, bound, degradation = G.quick_with_bound g ~rank in
          ( `Ok,
            Protocol.ok
              [
                ("value", Json.int v);
                ("rank", Json.int rank);
                ("bound", Json.Num bound);
                ("degradation", Json.Str (G.degradation_label degradation));
              ] )
        with
        | Invalid_argument msg -> (`Bad, Protocol.err Protocol.e_bad_request ~detail:msg)
        | BD.Device_error msg -> (`Error, Protocol.err Protocol.e_device ~detail:msg)))
  | Protocol.Accurate { target; window; deadline_ms = _ } -> (
    match window with
    | Some _ ->
      (`Bad, Protocol.err Protocol.e_bad_request ~detail:"windowed queries need a single-engine store")
    | None -> (
      let remaining_ms = Float.max 1.0 ((deadline -. Metrics.now_s ()) *. 1000.0) in
      let n = G.total_size g in
      if n = 0 then (`Bad, Protocol.err Protocol.e_bad_request ~detail:"empty engine")
      else
        try
          let rank = rank_of_target ~n target in
          let v, report = G.accurate ~deadline_ms:remaining_ms g ~rank in
          ( `Ok,
            Protocol.ok
              ([ ("value", Json.int v); ("rank", Json.int rank) ]
              @ group_degradation_fields report) )
        with
        | Invalid_argument msg -> (`Bad, Protocol.err Protocol.e_bad_request ~detail:msg)
        | BD.Device_error msg -> (`Error, Protocol.err Protocol.e_device ~detail:msg)))
  | Protocol.Stats ->
    let durable = List.exists (fun (_, e) -> E.durability_status e <> None) (G.engines g) in
    let epsilon = try G.epsilon g with Invalid_argument _ -> 0.0 in
    ( `Ok,
      Protocol.ok
        [
          ("n", Json.int (G.total_size g));
          ("hist", Json.int (G.hist_size g));
          ("stream", Json.int (G.stream_size g));
          ("steps", Json.int (G.time_steps g));
          ("epsilon", Json.Num epsilon);
          ("sketch", Json.Str (G.sketch_label g));
          ("memory_words", Json.int (G.memory_words g));
          ("shards", Json.int (G.shard_count g));
          ("shards_down", Json.List (List.map Json.int (G.shards_down g)));
          ("down_elements", Json.int (G.down_elements g));
          ("replicas", Json.int (G.replica_count g));
          ( "replicas_down",
            Json.List
              (List.map
                 (fun (i, j) -> Json.List [ Json.int i; Json.int j ])
                 (G.replicas_down g)) );
          ( "replicas_diverged",
            Json.List
              (List.map
                 (fun (i, j) -> Json.List [ Json.int i; Json.int j ])
                 (G.diverged_replicas g)) );
          ("uptime_s", Json.Num (uptime_s t));
          ("queue_depth", Json.int (Admission.depth t.adm));
          ("queue_capacity", Json.int (Admission.capacity t.adm));
          ("durable", Json.Bool durable);
        ] )
  | Protocol.Metrics_dump fmt -> (
    match fmt with
    | Protocol.Fmt_json ->
      (`Ok, Printf.sprintf "{\"ok\":true,\"metrics\":%s}" (G.metrics_json ~extra:t.reg g))
    | Protocol.Fmt_prometheus ->
      (`Ok, Protocol.ok [ ("body", Json.Str (G.metrics_prometheus ~extra:t.reg g)) ]))
  | Protocol.Health_check -> (`Ok, Protocol.ok (Health.group_to_fields (Health.collect_group g)))

let execute t req ~deadline =
  match t.backend with
  | Single e -> execute_single t e req ~deadline
  | Group g -> execute_group t g req ~deadline

(* Drain every remaining queue item, then run the shutdown sequence.
   A request that spent its whole budget waiting is answered `timeout`
   without touching the engine — explicit, never silent. *)
let engine_loop t =
  let rec loop () =
    match Admission.next t.adm with
    | None -> ()
    | Some item ->
      let now = Metrics.now_s () in
      Metrics.Histogram.observe t.queue_wait_hist (now -. item.Admission.enqueued);
      Metrics.Gauge.set t.inflight_gauge 1.0;
      let resp =
        match item.Admission.payload with
        | Admission.Job f ->
          (try f () with _ -> ());
          Protocol.ok []
        | Admission.Request req ->
          if now > item.Admission.deadline then begin
            Metrics.Counter.inc t.c.timeout;
            Protocol.err Protocol.e_timeout
              ~extra:[ ("class", Json.Str (Protocol.class_label item.Admission.cls)) ]
          end
          else begin
            match execute t req ~deadline:item.Admission.deadline with
            | `Ok, resp ->
              Metrics.Counter.inc t.c.ok;
              resp
            | `Bad, resp ->
              Metrics.Counter.inc t.c.bad_request;
              resp
            | `Error, resp ->
              Metrics.Counter.inc t.c.internal;
              resp
            | exception e ->
              Metrics.Counter.inc t.c.internal;
              Protocol.err Protocol.e_internal ~detail:(Printexc.to_string e)
          end
      in
      Metrics.Gauge.set t.inflight_gauge 0.0;
      Admission.reply item resp;
      Metrics.Histogram.observe t.request_hist (Metrics.now_s () -. item.Admission.enqueued);
      loop ()
  in
  loop ()

(* --- connection handling ----------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd b !off (len - !off) in
    if n <= 0 then raise Exit;
    off := !off + n
  done

let submit_and_reply t req =
  let cls = Protocol.class_of req in
  let budget_ms =
    match Protocol.requested_deadline_ms req with
    | Some d -> Float.min d (budget_ms_for t cls)
    | None -> budget_ms_for t cls
  in
  let item =
    Admission.make_item (Admission.Request req) cls
      ~deadline:(Metrics.now_s () +. (budget_ms /. 1000.0))
  in
  match Admission.submit t.adm item with
  | Admission.Admitted -> Admission.await item
  | Admission.Overloaded retry_ms ->
    Protocol.err Protocol.e_overloaded
      ~extra:
        [
          ("retry_after_ms", Json.Num retry_ms);
          ("class", Json.Str (Protocol.class_label cls));
        ]
  | Admission.Draining -> Protocol.err Protocol.e_shutting_down

(* --- direct ingest lanes (ingest_domains > 1) ---------------------------

   With concurrent lanes configured, Observe verbs never queue: the
   connection thread applies them itself through the engine's
   thread-safe observe_domain, on the lane its connection id maps to.
   Ingest therefore scales with connections instead of serializing
   behind queries on the engine thread, and a slow accurate query no
   longer stalls writers (it holds the propagation lock only while
   merging whole batches).

   Safety against the drain: Admission.draining is checked first (a
   draining server stops acknowledging new elements), and the engine's
   own closed flag — checked under the lane lock, i.e. after the point
   where close could have cut in — backstops the race window with an
   explicit shutting_down reply.  Elements applied before the failure
   were WAL-acknowledged; the reply says exactly how many. *)

(* Lane hand-offs accrue checkpoint debt but never checkpoint
   themselves (lock order: lanes before propagation, and a checkpoint
   seals every lane).  The first connection thread to notice debt
   schedules one engine-thread job; the flag stops a thundering herd of
   duplicates. *)
let schedule_lane_checkpoint t =
  let due =
    match t.backend with
    | Single e -> E.ingest_checkpoint_due e
    | Group g -> List.exists (fun (_, e) -> E.ingest_checkpoint_due e) (G.engines g)
  in
  if due && not (Atomic.exchange t.ckpt_scheduled true) then begin
    let job () =
      Atomic.set t.ckpt_scheduled false;
      match t.backend with
      | Single e -> ignore (E.checkpoint_if_due e)
      | Group g -> ignore (G.checkpoint_if_due g)
    in
    let item =
      Admission.make_item (Admission.Job job) Protocol.Admin_q
        ~deadline:(Metrics.now_s () +. 60.0)
    in
    match Admission.submit t.adm item with
    | Admission.Admitted -> () (* fire-and-forget: nobody awaits the reply *)
    | Admission.Overloaded _ | Admission.Draining ->
      (* Queue full or draining: drop the attempt; debt persists and the
         next observe re-schedules (or the drain's checkpoint_now pays). *)
      Atomic.set t.ckpt_scheduled false
  end

let direct_observe t ~conn_id vals =
  if Admission.draining t.adm then Protocol.err Protocol.e_shutting_down
  else begin
    let lane = conn_id mod t.ingest_lanes in
    let applied = ref 0 in
    let resp =
      try
        (match t.backend with
        | Single e ->
          Array.iter
            (fun v ->
              E.observe_domain e ~domain:lane v;
              incr applied)
            vals
        | Group g ->
          Array.iter
            (fun v ->
              G.observe_domain g ~domain:lane v;
              incr applied)
            vals);
        Metrics.Counter.inc t.c.ok;
        Protocol.ok [ ("applied", Json.int !applied); ("lane", Json.int lane) ]
      with
      | BD.Device_error msg ->
        Metrics.Counter.inc t.c.internal;
        Protocol.err Protocol.e_wal ~detail:msg ~extra:[ ("applied", Json.int !applied) ]
      | G.Shard_unavailable (i, reason) ->
        Metrics.Counter.inc t.c.internal;
        Protocol.err Protocol.e_device
          ~detail:(Printf.sprintf "shard %d down: %s" i reason)
          ~extra:[ ("applied", Json.int !applied); ("shard", Json.int i) ]
      | Invalid_argument _ ->
        (* The engine closed under a racing drain; nothing past
           [applied] was acknowledged. *)
        Protocol.err Protocol.e_shutting_down ~extra:[ ("applied", Json.int !applied) ]
    in
    schedule_lane_checkpoint t;
    resp
  end

let handle_line t ~conn_id fd line =
  match Json.of_string line with
  | Error msg ->
    Metrics.Counter.inc t.c.parse_error;
    write_all fd (Protocol.err Protocol.e_parse ~detail:msg ^ "\n")
  | Ok j -> (
    match Protocol.parse j with
    | Error msg ->
      Metrics.Counter.inc t.c.bad_request;
      write_all fd (Protocol.err Protocol.e_bad_request ~detail:msg ^ "\n")
    | Ok Protocol.Ping ->
      Metrics.Counter.inc t.c.ok;
      write_all fd (Protocol.ok [ ("pong", Json.Bool true); ("uptime_s", Json.Num (uptime_s t)) ] ^ "\n")
    | Ok Protocol.Drain ->
      (* Acknowledge first, then trigger: the drain closes this very
         socket shortly after. *)
      Metrics.Counter.inc t.c.ok;
      write_all fd (Protocol.ok [ ("draining", Json.Bool true) ] ^ "\n");
      request_stop t
    | Ok (Protocol.Observe vals) when t.ingest_lanes > 1 ->
      write_all fd (direct_observe t ~conn_id vals ^ "\n")
    | Ok req -> write_all fd (submit_and_reply t req ^ "\n"))

(* Per-connection loop: a bounded line scanner over Unix.read.  The
   read and write timeouts (SO_RCVTIMEO / SO_SNDTIMEO) contain slow and
   stalled clients; a line above max_line_bytes is a protocol violation
   and closes the connection after an explicit parse error. *)
let conn_loop t ~conn_id fd =
  let cfg = t.config in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO cfg.read_timeout_s with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.write_timeout_s with Unix.Unix_error _ -> ());
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let run = ref true in
  while !run do
    (* Serve every complete line currently buffered. *)
    let progress = ref true in
    while !progress do
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | None ->
        progress := false;
        if String.length s > cfg.max_line_bytes then begin
          Metrics.Counter.inc t.c.parse_error;
          (try write_all fd (Protocol.err Protocol.e_parse ~detail:"line too long" ^ "\n")
           with _ -> ());
          run := false
        end
      | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        let line = String.trim (String.sub s 0 i) in
        if line <> "" then (
          try handle_line t ~conn_id fd line
          with Exit | Unix.Unix_error _ ->
            (* Write failed: stalled or vanished client; drop it. *)
            run := false)
    done;
    if !run then begin
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> run := false (* orderly disconnect *)
      | n -> Buffer.add_subbytes buf chunk 0 n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* Read timeout: a stalled client is cut, not waited on. *)
        Metrics.Counter.inc t.c.conn_timeout;
        run := false
      | exception Unix.Unix_error _ -> run := false
    end
  done

let handle_conn t id fd =
  Metrics.Gauge.add t.conn_gauge 1.0;
  Metrics.Counter.inc t.c.conns_total;
  Fun.protect
    ~finally:(fun () ->
      Metrics.Gauge.add t.conn_gauge (-1.0);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.conn_lock;
      Hashtbl.remove t.conns id;
      Mutex.unlock t.conn_lock)
    (fun () -> try conn_loop t ~conn_id:id fd with _ -> ())

(* --- listener & lifecycle ---------------------------------------------- *)

let bind_listener = function
  | Unix_sock path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let addr =
      match host with
      | "" | "0.0.0.0" -> Unix.inet_addr_any
      | h -> (
        try Unix.inet_addr_of_string h
        with Failure _ -> (Unix.gethostbyname h).Unix.h_addr_list.(0))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

(* The drain sequence (runs on the accept thread, after its loop saw
   the stop flag).  Steps are individually guarded: a half-broken
   engine must still release sockets and threads.

   Ordering matters for clients racing the shutdown: the queue stops
   admitting FIRST, and the listen socket stays open behind a refusal
   loop until the drain completes — a client that connects mid-drain
   reads one explicit shutting_down error and a clean close, instead of
   hanging in the kernel accept backlog (never accepted, never
   refused) or catching ECONNRESET from a listener closed under it.
   Only after everything admitted is served does the listener close,
   so connects after a finished drain fail outright, as before. *)
let drain t listen_fd =
  Admission.begin_drain t.adm;
  let refusing = Atomic.make true in
  let refuse_thread =
    Thread.create
      (fun () ->
        while Atomic.get refusing do
          match Unix.select [ listen_fd ] [] [] 0.05 with
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept listen_fd with
            | fd, _ ->
              (try write_all fd (Protocol.err Protocol.e_shutting_down ^ "\n") with _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ())
            | exception Unix.Unix_error _ -> ())
          | exception Unix.Unix_error _ -> ()
        done)
      ()
  in
  (match t.engine_thread with
  | Some thr ->
    Thread.join thr;
    t.engine_thread <- None
  | None -> ());
  (* Backend is quiescent now: persist the stream side and close.  Both
     are idempotent, so a signal-driven second shutdown is harmless. *)
  (match t.backend with
  | Single e ->
    (try E.checkpoint_now e with _ -> ());
    (try E.close e with _ -> ())
  | Group g -> ( try G.close g with _ -> ()));
  (* Unblock any connection thread still parked in a read, then join. *)
  let remaining =
    Mutex.lock t.conn_lock;
    let l = Hashtbl.fold (fun _ (fd, thr) acc -> (fd, thr) :: acc) t.conns [] in
    Mutex.unlock t.conn_lock;
    l
  in
  List.iter
    (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    remaining;
  List.iter (fun (_, thr) -> try Thread.join thr with _ -> ()) remaining;
  Atomic.set refusing false;
  (try Thread.join refuse_thread with _ -> ());
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match t.config.listen with
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ());
  t.listen_fd <- None

let accept_loop t listen_fd =
  while not (Atomic.get t.stop_requested) do
    match Unix.select [ listen_fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept listen_fd with
      | fd, _ ->
        Mutex.lock t.conn_lock;
        let id = t.next_conn_id in
        t.next_conn_id <- id + 1;
        let thr = Thread.create (fun () -> handle_conn t id fd) () in
        Hashtbl.replace t.conns id (fd, thr);
        Mutex.unlock t.conn_lock
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
        ()
      | exception Unix.Unix_error _ -> Atomic.set t.stop_requested true)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  drain t listen_fd

let start t =
  if t.accept_thread <> None then invalid_arg "Server.start: already started";
  (* A stalled client must surface as a write error, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = bind_listener t.config.listen in
  t.listen_fd <- Some listen_fd;
  t.engine_thread <- Some (Thread.create (fun () -> engine_loop t) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t listen_fd) ())

let wait t =
  match t.accept_thread with
  | None -> ()
  | Some thr ->
    Thread.join thr;
    t.accept_thread <- None

let stop t =
  request_stop t;
  wait t

(* Test/ops hook: run [f engine] on the engine thread (serialized with
   request execution), blocking until it completes.  The chaos harness
   uses it to flip fault injectors and run repair scrubs without ever
   racing a live query. *)
let submit_job t job =
  let item =
    Admission.make_item (Admission.Job job) Protocol.Admin_q
      ~deadline:(Metrics.now_s () +. 60.0)
  in
  match Admission.submit t.adm item with
  | Admission.Admitted -> ignore (Admission.await item)
  | Admission.Overloaded _ | Admission.Draining -> invalid_arg "Server.submit_fn: not admitted"

let submit_fn t f =
  match t.backend with
  | Single e -> submit_job t (fun () -> f e)
  | Group _ -> invalid_arg "Server.submit_fn: sharded backend (use submit_group_fn)"

let submit_group_fn t f =
  match t.backend with
  | Group g -> submit_job t (fun () -> f g)
  | Single _ -> invalid_arg "Server.submit_group_fn: single-engine backend (use submit_fn)"
