(* A small blocking line-JSON client for the daemon — the load
   generator and the serve tests speak through this.  One request, one
   response line, in order; that is the whole protocol. *)

type t = {
  fd : Unix.file_descr;
  inc : in_channel;
}

let connect_addr = function
  | Server.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Server.Tcp (host, port) ->
    let addr =
      match host with
      | "" | "0.0.0.0" -> Unix.inet_addr_loopback
      | h -> (
        try Unix.inet_addr_of_string h
        with Failure _ -> (Unix.gethostbyname h).Unix.h_addr_list.(0))
    in
    (Unix.PF_INET, Unix.ADDR_INET (addr, port))

(* Retry the connect while the daemon boots: a spawned server needs a
   moment to bind, and tests/benches should not have to sleep-and-hope. *)
let connect ?(retries = 50) ?(retry_delay_s = 0.05) listen =
  let domain, addr = connect_addr listen in
  let rec go n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; inc = Unix.in_channel_of_descr fd }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when n > 0 ->
      Unix.close fd;
      Thread.delay retry_delay_s;
      go (n - 1)
    | exception e ->
      Unix.close fd;
      raise e
  in
  go retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

exception Protocol_error of string

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd b !off (len - !off) in
    if n <= 0 then raise (Protocol_error "short write");
    off := !off + n
  done

let request t (j : Json.t) : Json.t =
  write_all t.fd (Json.to_string j ^ "\n");
  match input_line t.inc with
  | line -> (
    match Json.of_string line with
    | Ok r -> r
    | Error msg -> raise (Protocol_error ("bad response: " ^ msg)))
  | exception End_of_file -> raise (Protocol_error "connection closed")

let op ?(fields = []) name = Json.Obj (("op", Json.Str name) :: fields)

(* Typed views over a response.  [ok] is [Obj] with ["ok" = true];
   anything else is an error whose kind/detail the caller can inspect. *)
let is_ok r = match Json.member r "ok" with Some (Json.Bool true) -> true | _ -> false
let error_kind r = Option.bind (Json.member r "error") Json.as_str
let retry_after_ms r = Option.bind (Json.member r "retry_after_ms") Json.as_float

let expect_ok what r =
  if is_ok r then r
  else
    raise
      (Protocol_error
         (Printf.sprintf "%s failed: %s" what
            (Option.value ~default:(Json.to_string r) (error_kind r))))

let ping t = ignore (expect_ok "ping" (request t (op "ping")))

let observe t values =
  let vals = Json.List (List.map Json.int (Array.to_list values)) in
  let r = expect_ok "observe" (request t (op ~fields:[ ("values", vals) ] "observe")) in
  match Json.member r "applied" with Some j -> Option.value ~default:0 (Json.as_int j) | None -> 0

let end_step t = ignore (expect_ok "end_step" (request t (op "end_step")))

let target_fields = function
  | `Rank r -> [ ("rank", Json.int r) ]
  | `Phi p -> [ ("phi", Json.Num p) ]

let window_fields = function None -> [] | Some w -> [ ("window", Json.int w) ]

let quick ?window t target =
  request t (op ~fields:(target_fields target @ window_fields window) "quick")

let accurate ?window ?deadline_ms t target =
  let deadline =
    match deadline_ms with None -> [] | Some d -> [ ("deadline_ms", Json.Num d) ]
  in
  request t (op ~fields:(target_fields target @ window_fields window @ deadline) "accurate")

let stats t = expect_ok "stats" (request t (op "stats"))
let metrics t = expect_ok "metrics" (request t (op "metrics"))
let health t = expect_ok "health" (request t (op "health"))
let drain t = ignore (expect_ok "drain" (request t (op "drain")))

let value_of r =
  match Option.bind (Json.member r "value") Json.as_int with
  | Some v -> v
  | None -> raise (Protocol_error ("no value in " ^ Json.to_string r))

let bound_of r = Option.bind (Json.member r "bound") Json.as_float
