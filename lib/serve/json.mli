(** Minimal JSON for the line-JSON wire protocol.

    One request or response is exactly one JSON document on one line:
    {!to_string} never emits a newline, and {!of_string} parses one
    complete document.  Numbers are floats; integral values inside the
    2^53 exact range render without a decimal point, which covers every
    count and element value the engine serves.  No external dependency
    on purpose. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Render on a single line (strings are escaped; NaN/inf render as
    [null]). *)
val to_string : t -> string

(** Parse one complete document; [Error msg] names the offset of the
    first problem. *)
val of_string : string -> (t, string) result

(** Object field lookup; [None] on non-objects and absent keys. *)
val member : t -> string -> t option

val as_int : t -> int option
val as_float : t -> float option
val as_str : t -> string option
val as_bool : t -> bool option
val as_list : t -> t list option

(** [get_* v key] = [member] composed with the matching [as_*]. *)
val get_int : t -> string -> int option

val get_float : t -> string -> float option
val get_str : t -> string -> string option
val get_bool : t -> string -> bool option
val get_list : t -> string -> t list option

(** [int n] = [Num (float_of_int n)]. *)
val int : int -> t
