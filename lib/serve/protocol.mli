(** Wire protocol of the serve daemon: line-JSON requests and
    responses.

    One JSON object per line, both directions.  Requests carry an
    ["op"] field; responses carry ["ok"] plus either the result fields
    or ["error"] naming one of the {!e_overloaded}-style kinds below.
    Every request gets exactly one response, in order, on its own
    connection — rejections are explicit, never silent drops. *)

type target =
  | Rank of int
  | Phi of float

type format =
  | Fmt_json
  | Fmt_prometheus

type request =
  | Ping
  | Observe of int array
  | End_step
  | Quick of { target : target; window : int option }
  | Accurate of { target : target; window : int option; deadline_ms : float option }
  | Stats
  | Metrics_dump of format
  | Health_check
  | Drain

(** Admission classes; each has a deadline budget in the server
    config covering queue wait plus execution. *)
type cls =
  | Quick_q
  | Accurate_q
  | Ingest_q
  | Admin_q

val class_of : request -> cls
val class_label : cls -> string

(** The explicit deadline the request carries, if any. *)
val requested_deadline_ms : request -> float option

(** Parse a request object; [Error] explains what is malformed. *)
val parse : Json.t -> (request, string) result

(** Render [{"ok":true, ...fields}] on one line. *)
val ok : (string * Json.t) list -> string

(** Render [{"ok":false,"error":kind[,"detail":...]...extra}]. *)
val err : ?detail:string -> ?extra:(string * Json.t) list -> string -> string

(** Error kinds (the daemon's complete shed/failure vocabulary). *)

val e_overloaded : string
val e_timeout : string
val e_shutting_down : string
val e_parse : string
val e_bad_request : string
val e_internal : string
val e_device : string
val e_wal : string
val e_window : string
