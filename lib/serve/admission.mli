(** Admission control: the bounded hand-off between connection threads
    and the single engine thread.

    The engine is single-submitter by contract, so every engine-touching
    request is serialized through this queue and drained by one thread.
    The queue is strictly bounded — a submit against a full queue is
    rejected immediately with a retry-after hint walked along a
    {!Hsq_storage.Breaker.Backoff} decorrelated-jitter schedule — and
    its depth and high-water mark are exported as gauges
    ([hsq_serve_queue_depth] / [hsq_serve_queue_peak]), with
    [hsq_serve_requests_shed_total] / [hsq_serve_requests_admitted_total]
    counters.

    Each item doubles as a mailbox: the submitting connection thread
    blocks in {!await} until the engine thread {!reply}s, so a stalled
    client blocks only its own connection thread. *)

type payload =
  | Request of Protocol.request
  | Job of (unit -> unit)
      (** test/ops hook: an arbitrary closure run on the engine thread *)

type item = {
  payload : payload;
  cls : Protocol.cls;
  enqueued : float;
  deadline : float;  (** absolute seconds; covers queue wait + execution *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable reply : string option;
}

type outcome =
  | Admitted
  | Overloaded of float  (** retry-after hint, milliseconds *)
  | Draining

type t

val default_capacity : int

(** Raises [Invalid_argument] if [capacity < 1]. *)
val create : ?capacity:int -> metrics:Hsq_obs.Metrics.t -> unit -> t

val capacity : t -> int
val depth : t -> int
val make_item : payload -> Protocol.cls -> deadline:float -> item

(** Connection threads: try to enqueue.  Never blocks. *)
val submit : t -> item -> outcome

(** Engine thread: block for the next item; [None] once draining and
    the queue is empty.  Items admitted before the drain began are
    still returned — they were acknowledged into the queue. *)
val next : t -> item option

(** Stop admitting ({!submit} returns [Draining]) and wake {!next}. *)
val begin_drain : t -> unit

val draining : t -> bool

(** Engine thread: deliver the response and wake the submitter. *)
val reply : item -> string -> unit

(** Submitting thread: block until {!reply}. *)
val await : item -> string
