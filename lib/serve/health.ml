(* Failure-containment health, collected once and rendered two ways.

   Extracted from the CLI so `hsq status --health` and the daemon's
   `health` wire verb cannot drift: both build the same {!t} through
   {!collect} and derive their output (text lines, JSON fields) and
   their exit code / healthy flag from it. *)

module Metrics = Hsq_obs.Metrics

type scrub_info = {
  errors : int;
  quarantined : int;
  reinstated : int;
}

type recovery_info = {
  wal_replayed : int;
  checkpoint_used : bool;
  steps_reingested : int;
}

type t = {
  breaker : string; (* closed / open / half_open *)
  breaker_transitions : int;
  quarantined_partitions : int;
  quarantined_elements : int;
  per_level : (int * int) list; (* (level, quarantined partitions), nonzero only *)
  last_scrub : scrub_info option; (* None: no scrub recorded in this process *)
  recovery : recovery_info option; (* None: engine was created, not recovered *)
}

let collect eng =
  let reg = Hsq.Engine.metrics eng in
  let hist = Hsq.Engine.hist eng in
  let counter name = Option.value ~default:0 (Metrics.counter_value reg name) in
  let gauge name = Option.value ~default:0.0 (Metrics.gauge_value reg name) in
  let per_level =
    List.filter_map
      (fun l ->
        match
          Metrics.gauge_value reg (Printf.sprintf "hsq_quarantined_partitions_level_%d" l)
        with
        | Some g when g > 0.0 -> Some (l, int_of_float g)
        | _ -> None)
      (List.init (Hsq_hist.Level_index.num_levels hist) Fun.id)
  in
  let last_scrub =
    match Metrics.gauge_value reg "hsq_scrub_last_time_s" with
    | None | Some 0.0 -> None
    | Some _ ->
      Some
        {
          errors = int_of_float (gauge "hsq_scrub_last_errors");
          quarantined = int_of_float (gauge "hsq_scrub_last_quarantined");
          reinstated = int_of_float (gauge "hsq_scrub_last_reinstated");
        }
  in
  (* open_or_recover publishes what the last open did as gauges; their
     absence means this engine was created fresh, not recovered. *)
  let recovery =
    match Metrics.gauge_value reg "hsq_recovery_wal_replayed" with
    | None -> None
    | Some replayed ->
      Some
        {
          wal_replayed = int_of_float replayed;
          checkpoint_used = gauge "hsq_recovery_checkpoint_used" > 0.5;
          steps_reingested = int_of_float (gauge "hsq_recovery_steps_reingested");
        }
  in
  {
    breaker =
      Hsq_storage.Breaker.state_to_string
        (Hsq_storage.Block_device.breaker_state (Hsq.Engine.device eng));
    breaker_transitions = counter "hsq_breaker_transitions_total";
    quarantined_partitions = Hsq_hist.Level_index.quarantined_count hist;
    quarantined_elements = Hsq_hist.Level_index.quarantined_elements hist;
    per_level;
    last_scrub;
    recovery;
  }

(* Healthy = fully un-degraded: the breaker admits probes and no
   partition is excluded from queries.  (A half-open breaker is still
   degraded: it is one failed trial away from open.) *)
let healthy h = h.breaker = "closed" && h.quarantined_partitions = 0

(* Shared exit-code convention: 0 healthy, 1 degraded — the same
   0-vs-1 split scrub and status use for damage. *)
let exit_code h = if healthy h then 0 else 1

let to_lines h =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  add "health: device breaker %s (%d transitions)" h.breaker h.breaker_transitions;
  if h.quarantined_partitions = 0 then add "health: no quarantined partitions"
  else begin
    add "health: %d quarantined partitions (%d elements unavailable to queries)"
      h.quarantined_partitions h.quarantined_elements;
    List.iter (fun (l, q) -> add "health:   level %d: %d quarantined" l q) h.per_level
  end;
  (match h.last_scrub with
  | None -> add "health: no scrub recorded in this process"
  | Some s ->
    add "health: last scrub: %d errors, %d quarantined, %d reinstated" s.errors s.quarantined
      s.reinstated);
  (match h.recovery with
  | None -> ()
  | Some r ->
    add "health: recovery: %d WAL records replayed, checkpoint %s, %d steps re-archived"
      r.wal_replayed
      (if r.checkpoint_used then "restored" else "absent")
      r.steps_reingested);
  List.rev !lines

(* The wire verb's fields — same record, JSON shape. *)
let to_fields h =
  [
    ("healthy", Json.Bool (healthy h));
    ("breaker", Json.Str h.breaker);
    ("breaker_transitions", Json.int h.breaker_transitions);
    ("quarantined_partitions", Json.int h.quarantined_partitions);
    ("quarantined_elements", Json.int h.quarantined_elements);
    ( "quarantined_per_level",
      Json.List (List.map (fun (l, q) -> Json.List [ Json.int l; Json.int q ]) h.per_level) );
    ( "last_scrub",
      match h.last_scrub with
      | None -> Json.Null
      | Some s ->
        Json.Obj
          [
            ("errors", Json.int s.errors);
            ("quarantined", Json.int s.quarantined);
            ("reinstated", Json.int s.reinstated);
          ] );
    ( "recovery",
      match h.recovery with
      | None -> Json.Null
      | Some r ->
        Json.Obj
          [
            ("wal_replayed", Json.int r.wal_replayed);
            ("checkpoint_used", Json.Bool r.checkpoint_used);
            ("steps_reingested", Json.int r.steps_reingested);
          ] );
  ]

(* --- group rollup -------------------------------------------------------
   A sharded store is healthy iff every shard is up and individually
   healthy; a down shard reports its reason and frozen element count
   instead of a breaker state. *)

module G = Hsq_shard.Shard_group

type shard_health =
  | Shard_up of t
  | Shard_down of { reason : string; elements : int }

type group = (int * shard_health) list

let collect_group g : group =
  List.init (G.shard_count g) (fun i ->
      match G.engine g i with
      | Some e -> (i, Shard_up (collect e))
      | None ->
        ( i,
          Shard_down
            {
              reason = Option.value ~default:"down" (G.down_reason g i);
              elements = G.shard_elements g i;
            } ))

let group_healthy (gh : group) =
  List.for_all (fun (_, s) -> match s with Shard_up h -> healthy h | Shard_down _ -> false) gh

let group_exit_code gh = if group_healthy gh then 0 else 1

let group_to_lines (gh : group) =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let down = List.filter (fun (_, s) -> match s with Shard_down _ -> true | _ -> false) gh in
  add "health: %d/%d shards up%s" (List.length gh - List.length down) (List.length gh)
    (if group_healthy gh then ", all healthy" else "");
  List.iter
    (fun (i, s) ->
      match s with
      | Shard_down { reason; elements } ->
        add "health: shard %d DOWN (%d elements dark): %s" i elements reason
      | Shard_up h ->
        add "health: shard %d %s" i (if healthy h then "healthy" else "degraded");
        List.iter (fun l -> add "health:   [shard %d] %s" i l) (to_lines h))
    gh;
  List.rev !lines

let group_to_fields (gh : group) =
  [
    ("healthy", Json.Bool (group_healthy gh));
    ("shards", Json.int (List.length gh));
    ( "shards_down",
      Json.List
        (List.filter_map
           (fun (i, s) -> match s with Shard_down _ -> Some (Json.int i) | _ -> None)
           gh) );
    ( "per_shard",
      Json.List
        (List.map
           (fun (i, s) ->
             Json.Obj
               (("shard", Json.int i)
               ::
               (match s with
               | Shard_up h -> ("up", Json.Bool true) :: to_fields h
               | Shard_down { reason; elements } ->
                 [
                   ("up", Json.Bool false);
                   ("reason", Json.Str reason);
                   ("elements", Json.int elements);
                 ])))
           gh) );
  ]
