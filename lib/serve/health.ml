(* Failure-containment health, collected once and rendered two ways.

   Extracted from the CLI so `hsq status --health` and the daemon's
   `health` wire verb cannot drift: both build the same {!t} through
   {!collect} and derive their output (text lines, JSON fields) and
   their exit code / healthy flag from it. *)

module Metrics = Hsq_obs.Metrics

type scrub_info = {
  errors : int;
  quarantined : int;
  reinstated : int;
}

type recovery_info = {
  wal_replayed : int;
  checkpoint_used : bool;
  steps_reingested : int;
}

type t = {
  breaker : string; (* closed / open / half_open *)
  breaker_transitions : int;
  quarantined_partitions : int;
  quarantined_elements : int;
  per_level : (int * int) list; (* (level, quarantined partitions), nonzero only *)
  last_scrub : scrub_info option; (* None: no scrub recorded in this process *)
  recovery : recovery_info option; (* None: engine was created, not recovered *)
}

let collect eng =
  let reg = Hsq.Engine.metrics eng in
  let hist = Hsq.Engine.hist eng in
  let counter name = Option.value ~default:0 (Metrics.counter_value reg name) in
  let gauge name = Option.value ~default:0.0 (Metrics.gauge_value reg name) in
  let per_level =
    List.filter_map
      (fun l ->
        match
          Metrics.gauge_value reg (Printf.sprintf "hsq_quarantined_partitions_level_%d" l)
        with
        | Some g when g > 0.0 -> Some (l, int_of_float g)
        | _ -> None)
      (List.init (Hsq_hist.Level_index.num_levels hist) Fun.id)
  in
  let last_scrub =
    match Metrics.gauge_value reg "hsq_scrub_last_time_s" with
    | None | Some 0.0 -> None
    | Some _ ->
      Some
        {
          errors = int_of_float (gauge "hsq_scrub_last_errors");
          quarantined = int_of_float (gauge "hsq_scrub_last_quarantined");
          reinstated = int_of_float (gauge "hsq_scrub_last_reinstated");
        }
  in
  (* open_or_recover publishes what the last open did as gauges; their
     absence means this engine was created fresh, not recovered. *)
  let recovery =
    match Metrics.gauge_value reg "hsq_recovery_wal_replayed" with
    | None -> None
    | Some replayed ->
      Some
        {
          wal_replayed = int_of_float replayed;
          checkpoint_used = gauge "hsq_recovery_checkpoint_used" > 0.5;
          steps_reingested = int_of_float (gauge "hsq_recovery_steps_reingested");
        }
  in
  {
    breaker =
      Hsq_storage.Breaker.state_to_string
        (Hsq_storage.Block_device.breaker_state (Hsq.Engine.device eng));
    breaker_transitions = counter "hsq_breaker_transitions_total";
    quarantined_partitions = Hsq_hist.Level_index.quarantined_count hist;
    quarantined_elements = Hsq_hist.Level_index.quarantined_elements hist;
    per_level;
    last_scrub;
    recovery;
  }

(* Healthy = fully un-degraded: the breaker admits probes and no
   partition is excluded from queries.  (A half-open breaker is still
   degraded: it is one failed trial away from open.) *)
let healthy h = h.breaker = "closed" && h.quarantined_partitions = 0

(* Shared exit-code convention: 0 healthy, 1 degraded — the same
   0-vs-1 split scrub and status use for damage. *)
let exit_code h = if healthy h then 0 else 1

let to_lines h =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  add "health: device breaker %s (%d transitions)" h.breaker h.breaker_transitions;
  if h.quarantined_partitions = 0 then add "health: no quarantined partitions"
  else begin
    add "health: %d quarantined partitions (%d elements unavailable to queries)"
      h.quarantined_partitions h.quarantined_elements;
    List.iter (fun (l, q) -> add "health:   level %d: %d quarantined" l q) h.per_level
  end;
  (match h.last_scrub with
  | None -> add "health: no scrub recorded in this process"
  | Some s ->
    add "health: last scrub: %d errors, %d quarantined, %d reinstated" s.errors s.quarantined
      s.reinstated);
  (match h.recovery with
  | None -> ()
  | Some r ->
    add "health: recovery: %d WAL records replayed, checkpoint %s, %d steps re-archived"
      r.wal_replayed
      (if r.checkpoint_used then "restored" else "absent")
      r.steps_reingested);
  List.rev !lines

(* The wire verb's fields — same record, JSON shape. *)
let to_fields h =
  [
    ("healthy", Json.Bool (healthy h));
    ("breaker", Json.Str h.breaker);
    ("breaker_transitions", Json.int h.breaker_transitions);
    ("quarantined_partitions", Json.int h.quarantined_partitions);
    ("quarantined_elements", Json.int h.quarantined_elements);
    ( "quarantined_per_level",
      Json.List (List.map (fun (l, q) -> Json.List [ Json.int l; Json.int q ]) h.per_level) );
    ( "last_scrub",
      match h.last_scrub with
      | None -> Json.Null
      | Some s ->
        Json.Obj
          [
            ("errors", Json.int s.errors);
            ("quarantined", Json.int s.quarantined);
            ("reinstated", Json.int s.reinstated);
          ] );
    ( "recovery",
      match h.recovery with
      | None -> Json.Null
      | Some r ->
        Json.Obj
          [
            ("wal_replayed", Json.int r.wal_replayed);
            ("checkpoint_used", Json.Bool r.checkpoint_used);
            ("steps_reingested", Json.int r.steps_reingested);
          ] );
  ]

(* --- group rollup -------------------------------------------------------
   Replica-aware rollup over a Shard_group with a two-tier verdict:

   - FULL PRECISION (exit 0): every shard serves reads through a live,
     healthy, non-diverged replica — answers carry the full ±ε·m
     guarantees even if sibling replicas are down, draining hints, or
     flagged diverged.  Those conditions surface as WARNINGS.
   - ANSWERS DEGRADED (exit 1): some shard cannot produce an
     undegraded answer — its whole replica set is down, its serving
     replica is quarantined / breaker-open, or it can only serve
     through a diverged replica.

   With R = 1 this collapses to the pre-replication contract exactly:
   any shard problem degrades answers, so exit 0 ⇔ the old
   "every shard up and individually healthy". *)

module G = Hsq_shard.Shard_group

type replica_health = {
  replica : int;
  state : [ `Up of t | `Down of string ];
  diverged : bool;
  hints_pending : int option; (* Some n while a dead replica has a drainable hint log *)
}

type shard_health = {
  serving : (int * t) option; (* the read replica and its health; None = shard dark *)
  elements : int; (* live count while serving, frozen when dark *)
  reason : string option; (* why the shard is dark, when it is *)
  replicas : replica_health list; (* ascending; singleton when R = 1 *)
}

type group = (int * shard_health) list

let collect_group g : group =
  let r = G.replica_count g in
  let diverged = G.diverged_replicas g in
  List.init (G.shard_count g) (fun i ->
      let replicas =
        List.init r (fun j ->
            match G.replica_engine g ~shard:i ~replica:j with
            | Some e ->
              {
                replica = j;
                state = `Up (collect e);
                diverged = List.mem (i, j) diverged;
                hints_pending = None;
              }
            | None ->
              {
                replica = j;
                state =
                  `Down
                    (Option.value ~default:"down"
                       (G.replica_down_reason g ~shard:i ~replica:j));
                diverged = false;
                hints_pending = G.hints_pending g ~shard:i ~replica:j;
              })
      in
      let serving =
        match G.engine g i with
        | None -> None
        | Some e ->
          let j =
            List.find_opt
              (fun j ->
                match G.replica_engine g ~shard:i ~replica:j with
                | Some e' -> e' == e
                | None -> false)
              (List.init r Fun.id)
          in
          Some (Option.value ~default:0 j, collect e)
      in
      ( i,
        {
          serving;
          elements = G.shard_elements g i;
          reason = (match serving with Some _ -> None | None -> G.down_reason g i);
          replicas;
        } ))

let replica_is_diverged (sh : shard_health) j =
  List.exists (fun rh -> rh.replica = j && rh.diverged) sh.replicas

(* Full precision: every shard's answers keep the complete ±ε·m
   contract — it serves through a live, healthy, non-diverged
   replica. *)
let shard_full_precision (sh : shard_health) =
  match sh.serving with
  | None -> false
  | Some (j, h) -> healthy h && not (replica_is_diverged sh j)

let group_full_precision (gh : group) =
  List.for_all (fun (_, sh) -> shard_full_precision sh) gh

(* Warning-free: additionally, every replica of every shard is live,
   healthy, non-diverged, with no hints waiting to drain. *)
let group_healthy (gh : group) =
  List.for_all
    (fun (_, sh) ->
      List.for_all
        (fun rh ->
          match rh.state with
          | `Up h -> healthy h && not rh.diverged
          | `Down _ -> false)
        sh.replicas)
    gh

(* Conditions that do not degrade answers but deserve an operator's
   eye: the degraded-but-full-precision tier. *)
let group_warnings (gh : group) =
  List.concat_map
    (fun (i, sh) ->
      if not (shard_full_precision sh) then []
      else
        List.concat_map
          (fun rh ->
            match rh.state with
            | `Down reason ->
              [
                Printf.sprintf "shard %d replica %d down (sibling serving%s): %s" i rh.replica
                  (match rh.hints_pending with
                  | Some n -> Printf.sprintf ", %d hints pending" n
                  | None -> ", repair on rejoin")
                  reason;
              ]
            | `Up h ->
              (if rh.diverged then
                 [ Printf.sprintf "shard %d replica %d diverged (not serving)" i rh.replica ]
               else [])
              @
              if not (healthy h) && Some rh.replica <> Option.map fst sh.serving then
                [ Printf.sprintf "shard %d replica %d degraded (not serving)" i rh.replica ]
              else [])
          sh.replicas)
    gh

(* Exit-code contract: 0 = answers keep full-precision guarantees
   (warnings possible), 1 = answers degraded.  With R = 1 this is the
   old "0 iff every shard up and healthy". *)
let group_exit_code gh = if group_full_precision gh then 0 else 1

let group_to_lines (gh : group) =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let serving = List.filter (fun (_, sh) -> sh.serving <> None) gh in
  add "health: %d/%d shards up%s" (List.length serving) (List.length gh)
    (if group_healthy gh then ", all healthy" else "");
  List.iter
    (fun (i, sh) ->
      match sh.serving with
      | None ->
        add "health: shard %d DOWN (%d elements dark): %s" i sh.elements
          (Option.value ~default:"down" sh.reason)
      | Some (j, h) ->
        add "health: shard %d %s%s" i
          (if shard_full_precision sh then
             if List.for_all (fun rh -> match rh.state with `Up hh -> healthy hh && not rh.diverged | `Down _ -> false) sh.replicas
             then "healthy" else "healthy (degraded replicas, full precision)"
           else "degraded")
          (if List.length sh.replicas > 1 then Printf.sprintf " (serving via replica %d)" j else "");
        List.iter (fun l -> add "health:   [shard %d] %s" i l) (to_lines h);
        if List.length sh.replicas > 1 then
          List.iter
            (fun rh ->
              match rh.state with
              | `Down reason ->
                add "health:   [shard %d] replica %d DOWN%s: %s" i rh.replica
                  (match rh.hints_pending with
                  | Some n -> Printf.sprintf " (%d hints pending)" n
                  | None -> " (repair on rejoin)")
                  reason
              | `Up h ->
                add "health:   [shard %d] replica %d up, %s%s" i rh.replica
                  (if healthy h then "healthy" else "degraded")
                  (if rh.diverged then ", DIVERGED" else ""))
            sh.replicas)
    gh;
  List.iter (fun w -> add "health: warning: %s" w) (group_warnings gh);
  List.rev !lines

let replica_fields rh =
  Json.Obj
    (("replica", Json.int rh.replica)
    ::
    (match rh.state with
    | `Up h ->
      (("up", Json.Bool true) :: ("diverged", Json.Bool rh.diverged) :: to_fields h)
    | `Down reason ->
      [
        ("up", Json.Bool false);
        ("reason", Json.Str reason);
        ( "hints_pending",
          match rh.hints_pending with Some n -> Json.int n | None -> Json.Null );
      ]))

let group_to_fields (gh : group) =
  [
    ("healthy", Json.Bool (group_healthy gh));
    ("full_precision", Json.Bool (group_full_precision gh));
    ("warnings", Json.List (List.map (fun w -> Json.Str w) (group_warnings gh)));
    ("shards", Json.int (List.length gh));
    ( "shards_down",
      Json.List
        (List.filter_map
           (fun (i, sh) -> if sh.serving = None then Some (Json.int i) else None)
           gh) );
    ( "replicas_down",
      Json.List
        (List.concat_map
           (fun (i, sh) ->
             List.filter_map
               (fun rh ->
                 match rh.state with
                 | `Down _ -> Some (Json.List [ Json.int i; Json.int rh.replica ])
                 | `Up _ -> None)
               sh.replicas)
           gh) );
    ( "per_shard",
      Json.List
        (List.map
           (fun (i, sh) ->
             Json.Obj
               (("shard", Json.int i)
               ::
               (match sh.serving with
               | Some (j, h) ->
                 ("up", Json.Bool true)
                 :: ("serving_replica", Json.int j)
                 :: ("replicas", Json.List (List.map replica_fields sh.replicas))
                 :: to_fields h
               | None ->
                 [
                   ("up", Json.Bool false);
                   ("reason", Json.Str (Option.value ~default:"down" sh.reason));
                   ("elements", Json.int sh.elements);
                   ("replicas", Json.List (List.map replica_fields sh.replicas));
                 ])))
           gh) );
  ]
