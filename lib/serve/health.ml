(* Failure-containment health, collected once and rendered two ways.

   Extracted from the CLI so `hsq status --health` and the daemon's
   `health` wire verb cannot drift: both build the same {!t} through
   {!collect} and derive their output (text lines, JSON fields) and
   their exit code / healthy flag from it. *)

module Metrics = Hsq_obs.Metrics

type scrub_info = {
  errors : int;
  quarantined : int;
  reinstated : int;
}

type t = {
  breaker : string; (* closed / open / half_open *)
  breaker_transitions : int;
  quarantined_partitions : int;
  quarantined_elements : int;
  per_level : (int * int) list; (* (level, quarantined partitions), nonzero only *)
  last_scrub : scrub_info option; (* None: no scrub recorded in this process *)
}

let collect eng =
  let reg = Hsq.Engine.metrics eng in
  let hist = Hsq.Engine.hist eng in
  let counter name = Option.value ~default:0 (Metrics.counter_value reg name) in
  let gauge name = Option.value ~default:0.0 (Metrics.gauge_value reg name) in
  let per_level =
    List.filter_map
      (fun l ->
        match
          Metrics.gauge_value reg (Printf.sprintf "hsq_quarantined_partitions_level_%d" l)
        with
        | Some g when g > 0.0 -> Some (l, int_of_float g)
        | _ -> None)
      (List.init (Hsq_hist.Level_index.num_levels hist) Fun.id)
  in
  let last_scrub =
    match Metrics.gauge_value reg "hsq_scrub_last_time_s" with
    | None | Some 0.0 -> None
    | Some _ ->
      Some
        {
          errors = int_of_float (gauge "hsq_scrub_last_errors");
          quarantined = int_of_float (gauge "hsq_scrub_last_quarantined");
          reinstated = int_of_float (gauge "hsq_scrub_last_reinstated");
        }
  in
  {
    breaker =
      Hsq_storage.Breaker.state_to_string
        (Hsq_storage.Block_device.breaker_state (Hsq.Engine.device eng));
    breaker_transitions = counter "hsq_breaker_transitions_total";
    quarantined_partitions = Hsq_hist.Level_index.quarantined_count hist;
    quarantined_elements = Hsq_hist.Level_index.quarantined_elements hist;
    per_level;
    last_scrub;
  }

(* Healthy = fully un-degraded: the breaker admits probes and no
   partition is excluded from queries.  (A half-open breaker is still
   degraded: it is one failed trial away from open.) *)
let healthy h = h.breaker = "closed" && h.quarantined_partitions = 0

(* Shared exit-code convention: 0 healthy, 1 degraded — the same
   0-vs-1 split scrub and status use for damage. *)
let exit_code h = if healthy h then 0 else 1

let to_lines h =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  add "health: device breaker %s (%d transitions)" h.breaker h.breaker_transitions;
  if h.quarantined_partitions = 0 then add "health: no quarantined partitions"
  else begin
    add "health: %d quarantined partitions (%d elements unavailable to queries)"
      h.quarantined_partitions h.quarantined_elements;
    List.iter (fun (l, q) -> add "health:   level %d: %d quarantined" l q) h.per_level
  end;
  (match h.last_scrub with
  | None -> add "health: no scrub recorded in this process"
  | Some s ->
    add "health: last scrub: %d errors, %d quarantined, %d reinstated" s.errors s.quarantined
      s.reinstated);
  List.rev !lines

(* The wire verb's fields — same record, JSON shape. *)
let to_fields h =
  [
    ("healthy", Json.Bool (healthy h));
    ("breaker", Json.Str h.breaker);
    ("breaker_transitions", Json.int h.breaker_transitions);
    ("quarantined_partitions", Json.int h.quarantined_partitions);
    ("quarantined_elements", Json.int h.quarantined_elements);
    ( "quarantined_per_level",
      Json.List (List.map (fun (l, q) -> Json.List [ Json.int l; Json.int q ]) h.per_level) );
    ( "last_scrub",
      match h.last_scrub with
      | None -> Json.Null
      | Some s ->
        Json.Obj
          [
            ("errors", Json.int s.errors);
            ("quarantined", Json.int s.quarantined);
            ("reinstated", Json.int s.reinstated);
          ] );
  ]
