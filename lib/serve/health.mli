(** Failure-containment health, collected once and rendered two ways.

    `hsq status --health` and the daemon's `health` wire verb both
    build the same summary through {!collect} and derive text lines,
    JSON fields, and the healthy/exit-code verdict from it — one
    implementation, so the two surfaces cannot drift. *)

type scrub_info = {
  errors : int;
  quarantined : int;
  reinstated : int;
}

type recovery_info = {
  wal_replayed : int;  (** WAL records replayed by the last open *)
  checkpoint_used : bool;  (** the last open restored a sketch checkpoint *)
  steps_reingested : int;  (** time steps re-archived by the last open *)
}

type t = {
  breaker : string;  (** closed / open / half_open *)
  breaker_transitions : int;
  quarantined_partitions : int;
  quarantined_elements : int;
  per_level : (int * int) list;
      (** (level, quarantined partitions); only nonzero levels listed *)
  last_scrub : scrub_info option;  (** [None]: no scrub in this process *)
  recovery : recovery_info option;
      (** [None]: the engine was created fresh, not opened from disk *)
}

(** Snapshot the engine's containment state (breaker, quarantine,
    last-scrub gauges). *)
val collect : Hsq.Engine.t -> t

(** Fully un-degraded: breaker closed and nothing quarantined. *)
val healthy : t -> bool

(** 0 healthy, 1 degraded — the scrub/status damage convention. *)
val exit_code : t -> int

(** The exact "health: ..." lines `hsq status --health` prints. *)
val to_lines : t -> string list

(** The wire verb's response fields (["healthy"], ["breaker"], ...). *)
val to_fields : t -> (string * Json.t) list

(** {1 Sharded stores}

    The same collect/render split, rolled up over a
    {!Hsq_shard.Shard_group}: healthy iff every shard is up and
    individually healthy; a down shard reports its reason and frozen
    element count. *)

type shard_health =
  | Shard_up of t
  | Shard_down of { reason : string; elements : int }

type group = (int * shard_health) list

val collect_group : Hsq_shard.Shard_group.t -> group
val group_healthy : group -> bool
val group_exit_code : group -> int
val group_to_lines : group -> string list
val group_to_fields : group -> (string * Json.t) list
