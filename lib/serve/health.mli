(** Failure-containment health, collected once and rendered two ways.

    `hsq status --health` and the daemon's `health` wire verb both
    build the same summary through {!collect} and derive text lines,
    JSON fields, and the healthy/exit-code verdict from it — one
    implementation, so the two surfaces cannot drift. *)

type scrub_info = {
  errors : int;
  quarantined : int;
  reinstated : int;
}

type recovery_info = {
  wal_replayed : int;  (** WAL records replayed by the last open *)
  checkpoint_used : bool;  (** the last open restored a sketch checkpoint *)
  steps_reingested : int;  (** time steps re-archived by the last open *)
}

type t = {
  breaker : string;  (** closed / open / half_open *)
  breaker_transitions : int;
  quarantined_partitions : int;
  quarantined_elements : int;
  per_level : (int * int) list;
      (** (level, quarantined partitions); only nonzero levels listed *)
  last_scrub : scrub_info option;  (** [None]: no scrub in this process *)
  recovery : recovery_info option;
      (** [None]: the engine was created fresh, not opened from disk *)
}

(** Snapshot the engine's containment state (breaker, quarantine,
    last-scrub gauges). *)
val collect : Hsq.Engine.t -> t

(** Fully un-degraded: breaker closed and nothing quarantined. *)
val healthy : t -> bool

(** 0 healthy, 1 degraded — the scrub/status damage convention. *)
val exit_code : t -> int

(** The exact "health: ..." lines `hsq status --health` prints. *)
val to_lines : t -> string list

(** The wire verb's response fields (["healthy"], ["breaker"], ...). *)
val to_fields : t -> (string * Json.t) list

(** {1 Sharded stores}

    The same collect/render split, rolled up over a
    {!Hsq_shard.Shard_group} with a two-tier verdict:

    - {b full precision} (exit 0): every shard serves reads through a
      live, healthy, non-diverged replica — answers keep the complete
      ±ε·m contract even if sibling replicas are down, draining hints,
      or flagged diverged.  Those surface as {!group_warnings}.
    - {b answers degraded} (exit 1): some shard cannot produce an
      undegraded answer (whole replica set down, serving replica
      quarantined/breaker-open, or only a diverged replica left).

    With R = 1 this collapses exactly to the pre-replication contract:
    exit 0 iff every shard is up and individually healthy. *)

type replica_health = {
  replica : int;
  state : [ `Up of t | `Down of string ];
  diverged : bool;  (** flagged by anti-entropy; excluded from reads *)
  hints_pending : int option;
      (** [Some n] while a dead replica has [n] hint records waiting *)
}

type shard_health = {
  serving : (int * t) option;
      (** the read replica's index and health; [None] = shard dark *)
  elements : int;  (** live count while serving, frozen when dark *)
  reason : string option;  (** why the shard is dark, when it is *)
  replicas : replica_health list;  (** ascending; singleton when R = 1 *)
}

type group = (int * shard_health) list

val collect_group : Hsq_shard.Shard_group.t -> group

(** Warning-free: every replica of every shard live, healthy,
    non-diverged. Equals the old all-up-and-healthy at R = 1. *)
val group_healthy : group -> bool

(** Answers keep full ±ε·m precision (serving replicas all healthy and
    non-diverged) — drives the exit code. *)
val group_full_precision : group -> bool

(** Degraded-but-full-precision conditions: downed replicas with a
    sibling serving, pending hints, diverged or degraded non-serving
    replicas. Empty when [group_healthy]. *)
val group_warnings : group -> string list

(** 0 iff {!group_full_precision}; warnings alone do not fail it. *)
val group_exit_code : group -> int

val group_to_lines : group -> string list
val group_to_fields : group -> (string * Json.t) list
