(** Failure-containment health, collected once and rendered two ways.

    `hsq status --health` and the daemon's `health` wire verb both
    build the same summary through {!collect} and derive text lines,
    JSON fields, and the healthy/exit-code verdict from it — one
    implementation, so the two surfaces cannot drift. *)

type scrub_info = {
  errors : int;
  quarantined : int;
  reinstated : int;
}

type t = {
  breaker : string;  (** closed / open / half_open *)
  breaker_transitions : int;
  quarantined_partitions : int;
  quarantined_elements : int;
  per_level : (int * int) list;
      (** (level, quarantined partitions); only nonzero levels listed *)
  last_scrub : scrub_info option;  (** [None]: no scrub in this process *)
}

(** Snapshot the engine's containment state (breaker, quarantine,
    last-scrub gauges). *)
val collect : Hsq.Engine.t -> t

(** Fully un-degraded: breaker closed and nothing quarantined. *)
val healthy : t -> bool

(** 0 healthy, 1 degraded — the scrub/status damage convention. *)
val exit_code : t -> int

(** The exact "health: ..." lines `hsq status --health` prints. *)
val to_lines : t -> string list

(** The wire verb's response fields (["healthy"], ["breaker"], ...). *)
val to_fields : t -> (string * Json.t) list
