(* Admission control: the bounded hand-off between connection threads
   and the single engine thread.

   The engine is single-submitter by contract (see Engine), so the
   daemon serializes every engine-touching request through one queue
   drained by one thread; concurrency lives in the connection layer
   and, inside accurate queries, in the Parallel.Pool probe domains.
   The queue is strictly bounded: a submit against a full queue is
   rejected immediately with a retry-after hint walked along a
   Breaker.Backoff decorrelated-jitter schedule (consecutive sheds back
   callers off further; an accepted submit resets the streak).  Nothing
   in the daemon buffers without bound — this queue is the only place
   requests wait, and its depth is capped and exported as a gauge.

   Each item is also a mailbox: the connection thread blocks in [await]
   until the engine thread [reply]s, so a stalled client can only ever
   block its own connection thread, never the engine. *)

module Metrics = Hsq_obs.Metrics

type payload =
  | Request of Protocol.request
  | Job of (unit -> unit) (* test/ops hook: run a closure on the engine thread *)

type item = {
  payload : payload;
  cls : Protocol.cls;
  enqueued : float;
  deadline : float; (* absolute, seconds; queue wait + execution budget *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable reply : string option;
}

type outcome =
  | Admitted
  | Overloaded of float (* retry-after hint, ms *)
  | Draining

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : item Queue.t;
  capacity : int;
  mutable draining : bool;
  mutable shed_streak : int;
  backoff : float array; (* decorrelated-jitter retry-after schedule *)
  depth_gauge : Metrics.Gauge.t;
  peak_gauge : Metrics.Gauge.t;
  shed_counter : Metrics.Counter.t;
  admitted_counter : Metrics.Counter.t;
}

let default_capacity = 128

let create ?(capacity = default_capacity) ~metrics () =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    capacity;
    draining = false;
    shed_streak = 0;
    (* A long enough schedule that a sustained flood keeps walking it;
       the cap bounds the hint at one second. *)
    backoff =
      Hsq_storage.Breaker.Backoff.delays
        { Hsq_storage.Breaker.Backoff.base_ms = 5.0; cap_ms = 1000.0; max_attempts = 64 }
        ~seed:0x5E44;
    depth_gauge =
      Metrics.gauge ~help:"Requests waiting in the admission queue" metrics
        "hsq_serve_queue_depth";
    peak_gauge =
      Metrics.gauge ~help:"High-water mark of the admission queue" metrics
        "hsq_serve_queue_peak";
    shed_counter =
      Metrics.counter ~help:"Requests shed because the admission queue was full" metrics
        "hsq_serve_requests_shed_total";
    admitted_counter =
      Metrics.counter ~help:"Requests admitted to the queue" metrics
        "hsq_serve_requests_admitted_total";
  }

let capacity t = t.capacity

let depth t =
  Mutex.lock t.lock;
  let d = Queue.length t.q in
  Mutex.unlock t.lock;
  d

let make_item payload cls ~deadline =
  {
    payload;
    cls;
    enqueued = Metrics.now_s ();
    deadline;
    lock = Mutex.create ();
    cond = Condition.create ();
    reply = None;
  }

let submit t item =
  Mutex.lock t.lock;
  let outcome =
    if t.draining then Draining
    else if Queue.length t.q >= t.capacity then begin
      let i = min t.shed_streak (Array.length t.backoff - 1) in
      t.shed_streak <- t.shed_streak + 1;
      Metrics.Counter.inc t.shed_counter;
      Overloaded t.backoff.(i)
    end
    else begin
      Queue.push item t.q;
      t.shed_streak <- 0;
      Metrics.Counter.inc t.admitted_counter;
      let d = float_of_int (Queue.length t.q) in
      Metrics.Gauge.set t.depth_gauge d;
      if d > Metrics.Gauge.value t.peak_gauge then Metrics.Gauge.set t.peak_gauge d;
      Condition.signal t.nonempty;
      Admitted
    end
  in
  Mutex.unlock t.lock;
  outcome

(* Engine thread: block for the next item; [None] once draining and
   empty — the signal to run the shutdown sequence.  Items already
   admitted when the drain began are still returned (they were
   acknowledged into the queue; their deadline budgets bound how long
   the drain can take). *)
let next t =
  Mutex.lock t.lock;
  while Queue.is_empty t.q && not t.draining do
    Condition.wait t.nonempty t.lock
  done;
  let item =
    if Queue.is_empty t.q then None
    else begin
      let it = Queue.pop t.q in
      Metrics.Gauge.set t.depth_gauge (float_of_int (Queue.length t.q));
      Some it
    end
  in
  Mutex.unlock t.lock;
  item

let begin_drain t =
  Mutex.lock t.lock;
  t.draining <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let draining t =
  Mutex.lock t.lock;
  let d = t.draining in
  Mutex.unlock t.lock;
  d

let reply (item : item) response =
  Mutex.lock item.lock;
  item.reply <- Some response;
  Condition.broadcast item.cond;
  Mutex.unlock item.lock

let await (item : item) =
  Mutex.lock item.lock;
  while item.reply = None do
    Condition.wait item.cond item.lock
  done;
  let r = Option.get item.reply in
  Mutex.unlock item.lock;
  r
