(** Blocking line-JSON client for the serve daemon — used by the load
    generator and the serve test/chaos harness. *)

type t

exception Protocol_error of string

(** Connect, retrying [retries] times every [retry_delay_s] while the
    daemon boots (connection refused / socket not yet bound). *)
val connect : ?retries:int -> ?retry_delay_s:float -> Server.listen -> t

val close : t -> unit

(** One request, one response line.  Raises {!Protocol_error} on a
    closed connection or an unparseable response. *)
val request : t -> Json.t -> Json.t

(** {2 Response accessors} *)

val is_ok : Json.t -> bool
val error_kind : Json.t -> string option
val retry_after_ms : Json.t -> float option
val value_of : Json.t -> int
val bound_of : Json.t -> float option

(** {2 Typed verbs}

    The query verbs return the raw response (sheds and timeouts are
    legitimate answers the caller inspects); the others raise
    {!Protocol_error} unless the response is ok. *)

val ping : t -> unit
val observe : t -> int array -> int
val end_step : t -> unit
val quick : ?window:int -> t -> [ `Rank of int | `Phi of float ] -> Json.t
val accurate : ?window:int -> ?deadline_ms:float -> t -> [ `Rank of int | `Phi of float ] -> Json.t
val stats : t -> Json.t
val metrics : t -> Json.t
val health : t -> Json.t
val drain : t -> unit
