(* Wire protocol of the serve daemon: line-JSON requests and
   responses.

   A request is one JSON object per line with an "op" field; a
   response is one JSON object per line with an "ok" field.  Every
   request gets exactly one response, in order, on the connection that
   sent it — including rejected ones: admission control answers
   overload with an explicit {"ok":false,"error":"overloaded"}
   carrying a retry-after hint, never by dropping the request.

   Requests fall into classes for admission-control purposes; each
   class has a deadline budget covering queue wait plus execution (see
   Server.budgets).  The class is decided here, from the parsed
   request, so the admission layer never inspects JSON. *)

type target =
  | Rank of int
  | Phi of float

type format =
  | Fmt_json
  | Fmt_prometheus

type request =
  | Ping
  | Observe of int array
  | End_step
  | Quick of { target : target; window : int option }
  | Accurate of { target : target; window : int option; deadline_ms : float option }
  | Stats
  | Metrics_dump of format
  | Health_check
  | Drain

(* Admission classes, in the daemon's vocabulary: cheap in-memory
   queries, disk-probing queries, WAL-bound ingest, and introspection. *)
type cls =
  | Quick_q
  | Accurate_q
  | Ingest_q
  | Admin_q

let class_of = function
  | Quick _ -> Quick_q
  | Accurate _ -> Accurate_q
  | Observe _ | End_step -> Ingest_q
  | Ping | Stats | Metrics_dump _ | Health_check | Drain -> Admin_q

let class_label = function
  | Quick_q -> "quick"
  | Accurate_q -> "accurate"
  | Ingest_q -> "ingest"
  | Admin_q -> "admin"

(* Explicit deadline the request carries, if any (admission folds it
   into the class budget). *)
let requested_deadline_ms = function
  | Accurate { deadline_ms; _ } -> deadline_ms
  | _ -> None

let parse_target j =
  match (Json.get_int j "rank", Json.get_float j "phi") with
  | Some r, None -> Ok (Rank r)
  | None, Some p ->
    if p > 0.0 && p <= 1.0 then Ok (Phi p) else Error "phi must lie in (0, 1]"
  | Some _, Some _ -> Error "give rank or phi, not both"
  | None, None -> Error "missing rank or phi"

let parse j =
  match Json.get_str j "op" with
  | None -> Error "missing op field"
  | Some op -> (
    match op with
    | "ping" -> Ok Ping
    | "observe" -> (
      match (Json.get_int j "value", Json.get_list j "values") with
      | Some v, None -> Ok (Observe [| v |])
      | None, Some vs -> (
        let ints = List.map Json.as_int vs in
        if List.exists Option.is_none ints then Error "values must be integers"
        else
          match List.filter_map Fun.id ints with
          | [] -> Error "empty values"
          | vals -> Ok (Observe (Array.of_list vals)))
      | Some _, Some _ -> Error "give value or values, not both"
      | None, None -> Error "observe needs value or values")
    | "end_step" -> Ok End_step
    | "quick" -> (
      match parse_target j with
      | Error e -> Error e
      | Ok target -> Ok (Quick { target; window = Json.get_int j "window" }))
    | "accurate" -> (
      match parse_target j with
      | Error e -> Error e
      | Ok target ->
        Ok
          (Accurate
             {
               target;
               window = Json.get_int j "window";
               deadline_ms = Json.get_float j "deadline_ms";
             }))
    | "stats" -> Ok Stats
    | "metrics" -> (
      match Json.get_str j "format" with
      | None | Some "json" -> Ok (Metrics_dump Fmt_json)
      | Some "prometheus" -> Ok (Metrics_dump Fmt_prometheus)
      | Some f -> Error (Printf.sprintf "unknown metrics format %S" f))
    | "health" -> Ok Health_check
    | "drain" -> Ok Drain
    | op -> Error (Printf.sprintf "unknown op %S" op))

(* --- responses --------------------------------------------------------- *)

let ok fields = Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))

let err ?detail ?(extra = []) kind =
  let fields = [ ("ok", Json.Bool false); ("error", Json.Str kind) ] in
  let fields =
    match detail with None -> fields | Some d -> fields @ [ ("detail", Json.Str d) ]
  in
  Json.to_string (Json.Obj (fields @ extra))

(* The daemon's shed-load vocabulary, shared by server and clients so
   the chaos harness can pattern-match rejections exhaustively. *)
let e_overloaded = "overloaded"
let e_timeout = "timeout"
let e_shutting_down = "shutting_down"
let e_parse = "parse"
let e_bad_request = "bad_request"
let e_internal = "internal"
let e_device = "device"
let e_wal = "wal"
let e_window = "window_not_aligned"
