(* Small online/offline statistics helpers used by the bench harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

(* Welford's online mean/variance accumulator. *)
type t = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mu in
  t.mu <- t.mu +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mu));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n

let summary t =
  let stddev = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1)) in
  {
    count = t.n;
    mean = (if t.n = 0 then 0.0 else t.mu);
    stddev;
    min = (if t.n = 0 then 0.0 else t.lo);
    max = (if t.n = 0 then 0.0 else t.hi);
  }

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  summary t

(* Median of a float list; the paper reports medians over 7 runs. *)
let median xs =
  match xs with
  | [] -> invalid_arg "Stats.median: empty list"
  | _ ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
