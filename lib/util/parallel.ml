(* Small fork-join helpers on OCaml 5 domains.

   The paper's future-work section singles out parallel sorting and
   parallel partition processing (Section 4); these helpers provide the
   fork-join substrate.  Work is split into at most [domains] chunks,
   each run in a fresh domain (spawn cost ~ tens of microseconds, so
   callers should hand over milliseconds of work per chunk). *)

let default_domains () = max 1 (min 4 (Domain.recommended_domain_count ()))

(* Apply [f] to every element, fanning chunks out over domains.  Order
   is preserved.  Exceptions propagate (the first one raised re-raises
   in the caller). *)
let map ?domains f input =
  let n = Array.length input in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map f input
  else begin
    let chunks = min domains n in
    let per = (n + chunks - 1) / chunks in
    let handles =
      List.init chunks (fun c ->
          let start = c * per in
          let len = min per (n - start) in
          Domain.spawn (fun () -> Array.init len (fun i -> f input.(start + i))))
    in
    let parts = List.map Domain.join handles in
    Array.concat parts
  end

(* Persistent fork-join pool: long-lived worker domains plus the
   submitting caller cooperate on indexed tasks, so the per-call cost is
   two condition-variable round trips instead of [domains] domain spawns
   (~100 µs each).  That makes fan-out worthwhile for sub-millisecond
   tasks — e.g. one bisection iteration's disk probes on the accurate
   query path, issued dozens of times per query.

   One submission at a time per pool (the engine's query path is
   single-submitter by contract); workers idle on a condition variable
   between calls.  Item claiming is a shared cursor under the pool lock:
   dynamic load balancing, and the mutex hand-offs double as the
   happens-before edges that publish result writes to the caller. *)
module Pool = struct
  exception Cancelled

  type t = {
    lock : Mutex.t;
    work : Condition.t; (* wakes workers on a new epoch or shutdown *)
    idle : Condition.t; (* wakes the caller when the last item finishes *)
    mutable task : (int -> unit) option;
    mutable next : int; (* next unclaimed item *)
    mutable total : int;
    mutable finished : int; (* items fully processed this epoch *)
    mutable failure : exn option; (* first exception raised by any item *)
    mutable cancel : (unit -> bool) option; (* round's cooperative cancel check *)
    mutable epoch : int;
    mutable quit : bool;
    mutable handles : unit Domain.t list;
    (* (round width, caller idle-wait) histograms when instrumented. *)
    metrics : (Hsq_obs.Metrics.Histogram.t * Hsq_obs.Metrics.Histogram.t) option;
  }

  (* The round is over when every claimed item has finished and either
     the cursor is exhausted or a failure stopped further claims. *)
  let round_done t = t.finished = t.next && (t.next >= t.total || t.failure <> None)

  (* Claim-and-run until the cursor is exhausted, a failure stops the
     round, or the epoch moves on.  [epoch] is the round the claimer
     observed when it picked up the closure; the claim step re-checks it
     under the lock, so a worker preempted between reading the task and
     draining cannot claim a *newer* round's indices and run the stale
     closure on them.  (The converse hazard — the epoch moving while a
     claim is outstanding — cannot happen: [run] waits for
     [finished = next] before returning, so no new round starts while
     any claimed item is in flight.)

     Exceptions are recorded (first wins) and never unwind a worker;
     once one is recorded no further items are claimed, so the caller
     re-raises after only the already-in-flight items finish.  Every
     claimed item still counts toward [finished], so the caller's wait
     terminates. *)
  let drain t ~epoch f =
    let rec loop () =
      Mutex.lock t.lock;
      if t.epoch <> epoch || t.next >= t.total || t.failure <> None then Mutex.unlock t.lock
      else if (match t.cancel with Some c -> c () | None -> false) then begin
        (* Cooperative cancellation: recorded like a failure, so no
           further items are claimed anywhere and the caller re-raises
           [Cancelled] once in-flight items finish.  The check must not
           raise (it is a deadline comparison in practice) and runs
           under the lock, so it must be cheap. *)
        t.failure <- Some Cancelled;
        if round_done t then Condition.signal t.idle;
        Mutex.unlock t.lock
      end
      else begin
        let i = t.next in
        t.next <- i + 1;
        Mutex.unlock t.lock;
        (try f i
         with e ->
           Mutex.lock t.lock;
           if t.failure = None then t.failure <- Some e;
           Mutex.unlock t.lock);
        Mutex.lock t.lock;
        t.finished <- t.finished + 1;
        if round_done t then Condition.signal t.idle;
        Mutex.unlock t.lock;
        loop ()
      end
    in
    loop ()

  let rec worker t last_epoch =
    Mutex.lock t.lock;
    while (not t.quit) && t.epoch = last_epoch do
      Condition.wait t.work t.lock
    done;
    if t.quit then Mutex.unlock t.lock
    else begin
      let epoch = t.epoch in
      match t.task with
      | None ->
        (* Woke after the round was already parked: adopt the new epoch
           and go back to waiting instead of draining a stale no-op. *)
        Mutex.unlock t.lock;
        worker t epoch
      | Some f ->
        Mutex.unlock t.lock;
        drain t ~epoch f;
        worker t epoch
    end

  let create ?metrics ~workers () =
    let workers = max 1 workers in
    let metrics =
      Option.map
        (fun r ->
          ( Hsq_obs.Metrics.histogram ~help:"Items fanned out per pool round" ~start:1.0
              ~factor:2.0 ~buckets:16 r "hsq_query_pool_round_width",
            Hsq_obs.Metrics.histogram ~help:"Caller idle wait per pool round" r
              "hsq_query_pool_round_wait_seconds" ))
        metrics
    in
    let t =
      {
        lock = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        task = None;
        next = 0;
        total = 0;
        finished = 0;
        failure = None;
        cancel = None;
        epoch = 0;
        quit = false;
        handles = [];
        metrics;
      }
    in
    t.handles <- List.init workers (fun _ -> Domain.spawn (fun () -> worker t 0));
    t

  let size t = List.length t.handles

  (* Run [f] exactly once per index in [0, n); the caller works too, so
     a pool of w workers yields w+1 compute lanes.  [cancel] is polled
     before every claim (by caller and workers alike); once it returns
     true the round stops claiming and {!Cancelled} is re-raised here
     after in-flight items finish — at most one item per lane runs past
     the cancellation point. *)
  let run ?cancel t ~n f =
    if n > 0 then begin
      (match t.metrics with
      | Some (width, _) -> Hsq_obs.Metrics.Histogram.observe width (float_of_int n)
      | None -> ());
      Mutex.lock t.lock;
      t.task <- Some f;
      t.next <- 0;
      t.total <- n;
      t.finished <- 0;
      t.failure <- None;
      t.cancel <- cancel;
      t.epoch <- t.epoch + 1;
      let epoch = t.epoch in
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      drain t ~epoch f;
      (* The caller has exhausted its own share; what's left is idle
         waiting on straggler workers — the queue-wait metric. *)
      let wait0 =
        match t.metrics with Some _ -> Hsq_obs.Metrics.now_s () | None -> 0.0
      in
      Mutex.lock t.lock;
      while not (round_done t) do
        Condition.wait t.idle t.lock
      done;
      (match t.metrics with
      | Some (_, wait) -> Hsq_obs.Metrics.Histogram.observe wait (Hsq_obs.Metrics.now_s () -. wait0)
      | None -> ());
      (* Park the task: a late-waking worker finds it gone (or the
         epoch moved on) and goes back to sleep. *)
      t.task <- None;
      t.cancel <- None;
      let failure = t.failure in
      Mutex.unlock t.lock;
      match failure with Some e -> raise e | None -> ()
    end

  (* Order-preserving map, like {!map} but on the persistent pool.
     A cancelled round raises {!Cancelled} out of [run] before the
     output array is touched, so no partially-filled result escapes. *)
  let map ?cancel t f input =
    let n = Array.length input in
    if n = 0 then [||]
    else begin
      let out = Array.make n None in
      run ?cancel t ~n (fun i -> out.(i) <- Some (f input.(i)));
      Array.map (function Some v -> v | None -> assert false) out
    end

  let shutdown t =
    Mutex.lock t.lock;
    t.quit <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    List.iter Domain.join t.handles;
    t.handles <- []
end

(* Sort an int array with [domains]-way chunked merge sort: each chunk
   is sorted in its own domain, then chunks are merged on the caller.
   Deterministic and observationally identical to [Array.sort Int.compare];
   faster from roughly 10^5 elements upward. *)
let sort ?domains data =
  let n = Array.length data in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if domains = 1 || n < 4096 then Array.sort Int.compare data
  else begin
    let chunks = min domains ((n + 4095) / 4096) in
    let per = (n + chunks - 1) / chunks in
    let handles =
      List.init chunks (fun c ->
          let start = c * per in
          let len = min per (n - start) in
          let chunk = Array.sub data start len in
          Domain.spawn (fun () ->
              Array.sort Int.compare chunk;
              chunk))
    in
    let sorted_chunks = List.map Domain.join handles in
    (* Fold-merge (chunk count is tiny, so pairwise cost is fine). *)
    let merged =
      match sorted_chunks with
      | [] -> [||]
      | first :: rest -> List.fold_left Sorted.merge first rest
    in
    Array.blit merged 0 data 0 n
  end
