(** Fork-join helpers on OCaml 5 domains — the substrate for the
    paper's future-work parallel sorting / parallel partition
    processing (Section 4). *)

(** min(4, recommended domain count). *)
val default_domains : unit -> int

(** Order-preserving parallel map; chunks the input over at most
    [domains] fresh domains. Falls back to sequential for tiny inputs
    or [domains = 1]. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** Persistent fork-join pool: [workers] long-lived domains plus the
    calling domain cooperate on each submitted task, so per-call
    overhead is two condition-variable round trips instead of a domain
    spawn per chunk.  Use when the same caller fans out sub-millisecond
    tasks many times (e.g. per-iteration disk probes on the accurate
    query path).  One submission at a time per pool. *)
module Pool : sig
  type t

  (** Raised out of {!run}/{!map} when the round's [cancel] check fired
      (e.g. a query deadline expired). *)
  exception Cancelled

  (** Spawn [max 1 workers] worker domains, parked until work arrives.
      [metrics] instruments the pool in that registry:
      [hsq_query_pool_round_width] (items fanned out per {!run}) and
      [hsq_query_pool_round_wait_seconds] (the caller's idle wait for
      straggler workers after draining its own share). *)
  val create : ?metrics:Hsq_obs.Metrics.t -> workers:int -> unit -> t

  (** Number of worker domains (compute lanes are [size + 1]: the
      caller participates). *)
  val size : t -> int

  (** [run t ~n f] calls [f i] at most once for every [i] in [0, n),
      distributing items dynamically over the workers and the caller.
      On success every item ran exactly once and all have finished when
      [run] returns.  If any item raises, no {e further} items are
      claimed; the first exception re-raises here after the items
      already in flight (at most one per compute lane) have completed,
      so unclaimed indices are skipped — mirroring how a sequential
      loop stops at the first failure.

      [cancel] is a cooperative cancellation check, polled (under the
      pool lock, by the caller and every worker) before each claim: once
      it returns [true], no further items are claimed and {!Cancelled}
      re-raises here after in-flight items finish.  It must be cheap and
      must not raise — in practice a deadline comparison. *)
  val run : ?cancel:(unit -> bool) -> t -> n:int -> (int -> unit) -> unit

  (** Order-preserving map on the pool; exceptions and [cancel] as with
      {!run} (on failure or cancellation no output array is produced). *)
  val map : ?cancel:(unit -> bool) -> t -> ('a -> 'b) -> 'a array -> 'b array

  (** Stop and join the workers.  The pool must be idle. *)
  val shutdown : t -> unit
end

(** In-place sort, observationally identical to [Array.sort Int.compare]:
    domain-sorted chunks merged on the caller. Sequential below 4096
    elements. *)
val sort : ?domains:int -> int array -> unit
