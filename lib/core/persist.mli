(** Warehouse persistence across process restarts, with crash atomicity
    and corruption detection.

    The block-device file holds every partition's data; a plain-text
    metadata sidecar records the configuration and partition table.
    [load] re-attaches the partitions and rebuilds each summary with at
    most β₁ block reads. The live stream is volatile by design
    (Figure 1): a restored engine starts with an empty stream.

    [save] is crash-atomic (temp file + whole-file checksum + rename)
    and doubles as the durable commit record of the merge commit
    protocol: a crash during ingestion or a multi-way merge leaves every
    block named by the last checkpoint physically intact, so [load]
    rolls uncommitted work back by re-attaching the checkpointed
    partition table. [scrub] verifies the warehouse end to end. *)

(** Alias of {!Meta.Corrupt_metadata} (the sidecar machinery lives
    there); both names match the same exception. *)
exception Corrupt_metadata of string

(** Checksum of a sidecar body, as stored on its trailing
    [checksum <hex>] line (exposed for external tooling and tests). *)
val meta_checksum : string -> int

(** Write the metadata sidecar for [engine] to [path], atomically: the
    sidecar is rendered with a trailing whole-file checksum line,
    written to [path ^ ".tmp"], and renamed into place. The engine's
    device should be file-backed for the data itself to survive. Each
    successful call is a durable checkpoint that [load] can roll back
    to. *)
val save : Engine.t -> path:string -> unit

(** Restore an engine from a (reopened) device and its metadata.
    Raises {!Corrupt_metadata} on version/parse/checksum/invariant
    mismatches, including unsorted on-disk partitions and partitions
    whose blocks fail their device checksums. *)
val load : device:Hsq_storage.Block_device.t -> path:string -> Engine.t

(** Reopen [device_path] (block size taken from the metadata) and
    [load]. [pool_blocks] enables the device's LRU buffer pool with
    that capacity before the summaries are re-read (0 = disabled).
    [metrics] is the registry the restored store's metrics (device I/O,
    engine query counters, …) are registered in — pass one to export
    them from your own collection endpoint; omitted, the store gets a
    private registry reachable via [Engine.metrics]. *)
val load_files :
  ?metrics:Hsq_obs.Metrics.t ->
  ?pool_blocks:int ->
  ?query_domains:int ->
  ?query_deadline_ms:float ->
  device_path:string ->
  meta_path:string ->
  unit ->
  Engine.t

(** {2 Scrub} *)

type scrub_report = {
  partitions_checked : int; (** active partitions cursor-scanned *)
  blocks_read : int;
  errors : string list; (** empty iff the warehouse is healthy *)
  quarantined : int; (** partitions this scrub moved into quarantine
                         (always 0 without [repair]) *)
  reinstated : int; (** quarantined partitions this scrub verified and
                        returned to service (always 0 without [repair]) *)
  still_quarantined : int; (** quarantined partitions remaining *)
}

(** Re-read every active partition front to back, verifying per-block
    checksums (any flipped bit surfaces here as a checksum failure) and
    cross-block sortedness and element counts. Returns a report instead
    of raising: a damaged partition yields one error entry and the scan
    continues with the rest.

    With [repair] (the [hsq scrub --repair] path) the scrub also acts:
    a failing active partition is quarantined on the spot, and every
    previously quarantined partition goes through
    {!Hsq_hist.Level_index.reinstate} — re-verified end to end and
    returned to service if clean. The outcome is exported as
    [hsq_scrub_last_*] gauges in the engine's metric registry. Callers
    that persist the warehouse should {!save} afterwards so the sidecar
    records the new quarantine set. *)
val scrub : ?repair:bool -> Engine.t -> scrub_report
