(* Heavy hitters over the union of historical and streaming data.

   The paper names heavy hitters alongside quantiles as the analytical
   primitives missing from data-stream warehouses (Section 1) and
   leaves "other classes of aggregates in this model" as future work
   (Section 4).  This module is that extension, built in exactly the
   paper's architecture: a small in-memory sketch over the live stream
   plus probes into the sorted on-disk partitions.

   Query: all values with frequency >= phi * N in T = H u R.

   - Stream side: a SpaceSaving sketch (never undercounts; overcount
     <= m / capacity), reset at each time step like SS.
   - Historical side: no extra state at all.  A value with
     count(v, T) >= phi*N must, by pigeonhole, have count >= phi*|part|
     in the stream or in some partition.  Within a sorted partition any
     value occupying more than s = floor(phi * n_P) consecutive slots
     covers an index that is a multiple of s, so probing every s-th
     element yields a complete candidate set with ~1/phi block reads
     per partition.  Exact per-partition counts for each candidate are
     then two summary-bounded binary searches (rank(v) - rank(v-1)).

   Guarantees (tested in test_heavy_hitters):
   - completeness: every value with true count >= ceil(phi*N) is
     returned, provided capacity >= 1/phi (checked at query time);
   - soundness: every returned value has true count >=
     ceil(phi*N) - m/capacity (the only uncertainty is the stream
     sketch's overcount). *)

type t = {
  engine : Engine.t;
  capacity : int;
  mutable sketch : Hsq_sketch.Spacesaving.t;
}

type hit = {
  value : int;
  lower : int; (* guaranteed lower bound on count(value, T) *)
  upper : int; (* guaranteed upper bound *)
}

type report = {
  io : Hsq_storage.Io_stats.counters;
  candidates : int; (* values probed before verification *)
}

let create ?(capacity = 256) config =
  if capacity < 2 then invalid_arg "Heavy_hitters.create: capacity must be >= 2";
  { engine = Engine.create config; capacity; sketch = Hsq_sketch.Spacesaving.create ~capacity }

(* Attach to an existing engine (e.g. one restored by Persist).  The
   stream sketch starts empty, so the completeness guarantee holds only
   for elements observed through this wrapper — a restored engine has an
   empty stream, which is exactly that situation. *)
let of_engine ?(capacity = 256) engine =
  if capacity < 2 then invalid_arg "Heavy_hitters.of_engine: capacity must be >= 2";
  if Engine.stream_size engine > 0 then
    invalid_arg "Heavy_hitters.of_engine: engine has un-observed stream data";
  { engine; capacity; sketch = Hsq_sketch.Spacesaving.create ~capacity }

let engine t = t.engine
let capacity t = t.capacity
let total_size t = Engine.total_size t.engine
let stream_size t = Engine.stream_size t.engine

let memory_words t =
  Engine.memory_words t.engine + Hsq_sketch.Spacesaving.memory_words t.sketch

let observe t v =
  Engine.observe t.engine v;
  Hsq_sketch.Spacesaving.insert t.sketch v

let end_time_step t =
  let report = Engine.end_time_step t.engine in
  t.sketch <- Hsq_sketch.Spacesaving.create ~capacity:t.capacity;
  report

let ingest_batch t batch =
  Array.iter (observe t) batch;
  end_time_step t

(* Exact count of [v] in partition [p]: rank(v) - rank(v-1), each via a
   summary-bounded binary search. *)
let partition_count p v =
  let summary = Hsq_hist.Partition.summary p in
  let run = Hsq_hist.Partition.run p in
  let rank_of x =
    let lo, hi = Hsq_hist.Partition_summary.rank_bounds summary x in
    if lo = hi then lo else Hsq_storage.Run.rank_between run ~lo ~hi x
  in
  rank_of v - rank_of (v - 1)

(* Candidate values that could be phi-frequent within partition [p]:
   every ~floor(phi * n)-th element of the sorted run. *)
let partition_candidates p ~phi =
  let run = Hsq_hist.Partition.run p in
  let n = Hsq_storage.Run.length run in
  let stride = max 1 (int_of_float (floor (phi *. float_of_int n))) in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    acc := Hsq_storage.Run.get run !i :: !acc;
    i := !i + stride
  done;
  !acc

module Int_set = Set.Make (Int)

let frequent_over t ~partitions ~phi =
  if not (phi > 0.0 && phi < 1.0) then invalid_arg "Heavy_hitters.frequent: phi not in (0,1)";
  if float_of_int t.capacity < 1.0 /. phi then
    invalid_arg
      (Printf.sprintf
         "Heavy_hitters.frequent: capacity %d cannot guarantee completeness for phi=%g (need >= %.0f)"
         t.capacity phi (ceil (1.0 /. phi)));
  let m = Engine.stream_size t.engine in
  let hist_total = List.fold_left (fun acc p -> acc + Hsq_hist.Partition.size p) 0 partitions in
  let total = hist_total + m in
  if total = 0 then invalid_arg "Heavy_hitters.frequent: no data";
  let threshold = max 1 (int_of_float (ceil (phi *. float_of_int total))) in
  let stats = Hsq_storage.Block_device.stats (Engine.device t.engine) in
  let before = Hsq_storage.Io_stats.snapshot stats in
  (* Candidate generation (pigeonhole across stream + partitions). *)
  let stream_threshold = max 1 (int_of_float (ceil (phi *. float_of_int m))) in
  let stream_candidates =
    if m = 0 then []
    else Hsq_sketch.Spacesaving.candidates t.sketch ~threshold:stream_threshold
  in
  let candidates =
    List.fold_left
      (fun acc p -> List.fold_left (fun s v -> Int_set.add v s) acc (partition_candidates p ~phi))
      (Int_set.of_list stream_candidates) partitions
  in
  (* Zero-I/O pruning: the partition summaries alone bound
     count(v, P) <= rank_upper(v) - rank_lower(v - 1); candidates whose
     summed cheap upper bound misses the threshold never touch disk. *)
  let cheap_upper v =
    let hist =
      List.fold_left
        (fun acc p ->
          let s = Hsq_hist.Partition.summary p in
          let _, hi = Hsq_hist.Partition_summary.rank_bounds s v in
          let lo, _ = Hsq_hist.Partition_summary.rank_bounds s (v - 1) in
          acc + max 0 (hi - lo))
        0 partitions
    in
    let est, _ = if m = 0 then (0, 0) else Hsq_sketch.Spacesaving.estimate t.sketch v in
    hist + est
  in
  (* Verification: exact historical counts + bounded stream counts. *)
  let hits =
    Int_set.fold
      (fun v acc ->
        if cheap_upper v < threshold then acc
        else begin
          let hist = List.fold_left (fun a p -> a + partition_count p v) 0 partitions in
          let est, err = if m = 0 then (0, 0) else Hsq_sketch.Spacesaving.estimate t.sketch v in
          let upper = hist + est in
          let lower = hist + max 0 (est - err) in
          if upper >= threshold then { value = v; lower; upper } :: acc else acc
        end)
      candidates []
  in
  let io = Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot stats) before in
  let hits =
    List.sort
      (fun a b ->
        match Int.compare b.upper a.upper with 0 -> Int.compare b.value a.value | c -> c)
      hits
  in
  (hits, { io; candidates = Int_set.cardinal candidates })

let frequent t ~phi =
  frequent_over t ~partitions:(Hsq_hist.Level_index.partitions (Engine.hist t.engine)) ~phi

let frequent_window t ~window ~phi =
  match Hsq_hist.Level_index.partitions_for_window (Engine.hist t.engine) window with
  | Some partitions -> Ok (frequent_over t ~partitions ~phi)
  | None -> Error (Engine.Window_not_aligned (Engine.window_sizes t.engine))
