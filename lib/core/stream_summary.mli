(** The stream summary SS (Algorithm 4, Lemma 1).

    Extracted on demand from the engine's {!Stream_sketch.t}: β₂ = ⌈1/ε₂⌉ + 1
    values whose ranks are approximately evenly spaced in the stream,
    with SS[0] the exact minimum; entry [i]'s true rank lies in
    [i·ε₂·m, (i+1)·ε₂·m]. *)

type t

(** Extract SS from the stream sketch. ε₂ is taken as twice the
    sketch's ε (the engine builds the sketch at half precision so the
    one-sided Lemma 1 interval holds). Every entry also records the
    guaranteed interval on its own rank, from which the Lemma 2 bounds
    are computed — never weaker than the paper's spacing formulas, and
    robust at the clamped tail entries. *)
val extract : Stream_sketch.t -> t

(** Per-entry guaranteed rank intervals [(rlo, rhi)]. *)
val intervals : t -> (float * float) array

val beta2 : eps2:float -> int
val size : t -> int

(** Stream size [m] at extraction time. *)
val stream_size : t -> int

val eps2 : t -> float
val values : t -> int array
val memory_words : t -> int

(** α_S of Lemma 2. *)
val count_le : t -> int -> int

(** Lower / upper bounds and the ρ₂ estimate on rank(v, R); all clamped
    to [0, m]. *)
val rank_lower : t -> int -> float

val rank_upper : t -> int -> float
val rank_estimate : t -> int -> float
