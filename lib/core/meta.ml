(* Warehouse metadata sidecar: rendering, parsing, atomic writing, and
   restoring a historical index from it.

   This sits *below* Engine in the module graph on purpose: both
   Persist (the save/load/scrub API) and Engine's durable-ingest
   recovery manager (Engine.open_or_recover) need the sidecar, and the
   latter could not live in Engine if the machinery stayed in Persist
   (which depends on Engine).

   The format is unchanged from Persist version 2: a plain-text file of
   [field value] lines, a partition table, and a trailing whole-file
   checksum line.  Durable-ingest settings (WAL directory, sync policy,
   checkpoint interval) are deliberately *not* persisted — they are
   runtime policy, supplied by the caller on each open. *)

exception Corrupt_metadata of string

(* Version 2 added the trailing whole-file checksum line (and rides
   along with the device format change that embeds per-block checksum
   words). *)
let format_version = 2

(* Same splitmix-style mixing as the device's block checksums, over the
   sidecar's bytes.  Masked to a non-negative int so the hex rendering
   is stable. *)
let checksum s =
  let h = ref 0x106689D45497FDB5 in
  String.iter
    (fun c ->
      let x = (!h lxor Char.code c) * 0x2545F4914F6CDD1D in
      h := x lxor (x lsr 29))
    s;
  !h land max_int

let sizing_to_string = function
  | Config.Epsilon e -> Printf.sprintf "epsilon %.17g" e
  | Config.Memory_words w -> Printf.sprintf "memory %d" w

let sizing_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "epsilon"; e ] -> Config.Epsilon (float_of_string e)
  | [ "memory"; w ] -> Config.Memory_words (int_of_string w)
  | _ -> raise (Corrupt_metadata ("bad sizing line: " ^ s))

let render ~config ~descriptors =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "hsq-meta %d\n" format_version;
  Printf.bprintf buf "sizing %s\n" (sizing_to_string config.Config.sizing);
  Printf.bprintf buf "kappa %d\n" config.Config.kappa;
  Printf.bprintf buf "block_size %d\n" config.Config.block_size;
  Printf.bprintf buf "steps_hint %d\n" config.Config.steps_hint;
  Printf.bprintf buf "stream_fraction %.17g\n" config.Config.stream_fraction;
  (match config.Config.sort_memory with
  | None -> Printf.bprintf buf "sort_memory none\n"
  | Some m -> Printf.bprintf buf "sort_memory %d\n" m);
  (match config.Config.sort_domains with
  | None -> Printf.bprintf buf "sort_domains none\n"
  | Some d -> Printf.bprintf buf "sort_domains %d\n" d);
  Printf.bprintf buf "partitions %d\n" (List.length descriptors);
  List.iter
    (fun (d : Hsq_hist.Level_index.partition_descriptor) ->
      (* A 6th field ("1") marks a quarantined partition; healthy
         partitions keep the 5-field line, so sidecars of healthy
         warehouses are byte-identical to what earlier builds wrote. *)
      if d.quarantined then
        Printf.bprintf buf "partition %d %d %d %d %d 1\n" d.first_block d.length d.first_step
          d.last_step d.level
      else
        Printf.bprintf buf "partition %d %d %d %d %d\n" d.first_block d.length d.first_step
          d.last_step d.level)
    descriptors;
  Printf.bprintf buf "checksum %x\n" (checksum (Buffer.contents buf));
  Buffer.contents buf

(* Crash-atomic: write to a sibling temp file, flush, rename over the
   destination, then fsync tmp + parent directory (Atomic_file.commit).
   A crash before the rename leaves the previous sidecar untouched; a
   crash mid-write leaves only a stale .tmp that no load path ever
   reads; and the directory fsync makes the rename itself survive a
   power cut — without it the directory entry can roll back to the old
   sidecar even though the new one's blocks hit disk. *)
let write ~path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Hsq_storage.Atomic_file.commit ~tmp path

let verify_checksum lines =
  match List.rev lines with
  | [] -> raise (Corrupt_metadata "empty metadata file")
  | last :: rev_body ->
    let prefix = "checksum " in
    let plen = String.length prefix in
    if String.length last <= plen || String.sub last 0 plen <> prefix then
      raise (Corrupt_metadata "missing checksum line (truncated metadata?)");
    let stored =
      match int_of_string_opt ("0x" ^ String.sub last plen (String.length last - plen)) with
      | Some v -> v
      | None -> raise (Corrupt_metadata ("unreadable checksum line: " ^ last))
    in
    let body = List.rev rev_body in
    let payload = String.concat "" (List.map (fun l -> l ^ "\n") body) in
    if checksum payload <> stored then
      raise (Corrupt_metadata "metadata checksum mismatch (torn or tampered sidecar)");
    body

let parse_lines lines =
  (* Linear cursor over an array of lines (the former List.nth_opt
     cursor re-walked the list per field — quadratic in file size). *)
  let lines = Array.of_list lines in
  let pos = ref 0 in
  let next () =
    if !pos < Array.length lines then begin
      let l = lines.(!pos) in
      incr pos;
      Some l
    end
    else None
  in
  let expect_prefix prefix line =
    let plen = String.length prefix in
    let field = String.trim prefix in
    match line with
    | Some l when l = field || l = prefix ->
      raise (Corrupt_metadata (Printf.sprintf "empty value for field %S" field))
    | Some l when String.length l > plen && String.sub l 0 plen = prefix ->
      String.sub l plen (String.length l - plen)
    | Some l -> raise (Corrupt_metadata (Printf.sprintf "expected %S..., found %S" prefix l))
    | None -> raise (Corrupt_metadata (Printf.sprintf "missing %S line" prefix))
  in
  let header = expect_prefix "hsq-meta " (next ()) in
  if int_of_string_opt header <> Some format_version then
    raise (Corrupt_metadata ("unsupported format version " ^ header));
  let sizing = sizing_of_string (expect_prefix "sizing " (next ())) in
  let kappa = int_of_string (expect_prefix "kappa " (next ())) in
  let block_size = int_of_string (expect_prefix "block_size " (next ())) in
  let steps_hint = int_of_string (expect_prefix "steps_hint " (next ())) in
  let stream_fraction = float_of_string (expect_prefix "stream_fraction " (next ())) in
  let sort_memory =
    match expect_prefix "sort_memory " (next ()) with
    | "none" -> None
    | m -> Some (int_of_string m)
  in
  let sort_domains =
    match expect_prefix "sort_domains " (next ()) with
    | "none" -> None
    | d -> Some (int_of_string d)
  in
  let count = int_of_string (expect_prefix "partitions " (next ())) in
  let descriptors =
    List.init count (fun _ ->
        let fields = String.split_on_char ' ' (expect_prefix "partition " (next ())) in
        match List.map int_of_string fields with
        | [ first_block; length; first_step; last_step; level ] ->
          {
            Hsq_hist.Level_index.first_block;
            length;
            first_step;
            last_step;
            level;
            quarantined = false;
          }
        | [ first_block; length; first_step; last_step; level; q ] ->
          {
            Hsq_hist.Level_index.first_block;
            length;
            first_step;
            last_step;
            level;
            quarantined = q = 1;
          }
        | _ -> raise (Corrupt_metadata "bad partition line"))
  in
  let config =
    Config.make ~kappa ~block_size ?sort_memory ~steps_hint ~stream_fraction ?sort_domains sizing
  in
  (config, descriptors)

(* Cheap consistency check on a restored partition: its summary entries
   (just re-read from disk) must be sorted — catching truncated or
   shuffled device files before they can serve wrong answers. *)
let verify_partition p =
  let entries = Hsq_hist.Partition_summary.entries (Hsq_hist.Partition.summary p) in
  let ok = ref true in
  for i = 1 to Array.length entries - 1 do
    if entries.(i).Hsq_hist.Partition_summary.value < entries.(i - 1).Hsq_hist.Partition_summary.value
    then ok := false
  done;
  if not !ok then
    raise
      (Corrupt_metadata
         (Printf.sprintf "partition at block %d is not sorted on disk"
            (Hsq_storage.Run.first_block (Hsq_hist.Partition.run p))))

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Peek at the sidecar for the device's block size, so the device file
   can be opened before the full (device-checked) load runs. *)
let peek_block_size path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec find () =
        match input_line ic with
        | line when String.length line > 11 && String.sub line 0 11 = "block_size " ->
          int_of_string (String.sub line 11 (String.length line - 11))
        | _ -> find ()
        | exception End_of_file -> raise (Corrupt_metadata "no block_size in metadata")
      in
      find ())

let load_hist ~device ~path =
  let lines = verify_checksum (read_lines path) in
  let config, descriptors =
    try parse_lines lines with
    | Corrupt_metadata _ as e -> raise e
    | Failure msg -> raise (Corrupt_metadata msg)
  in
  if Hsq_storage.Block_device.block_size device <> config.Config.block_size then
    raise
      (Corrupt_metadata
         (Printf.sprintf "device block size %d disagrees with metadata %d"
            (Hsq_storage.Block_device.block_size device)
            config.Config.block_size));
  let hist =
    (* Device_error here means a checkpointed partition's blocks are
       unreadable or fail their checksums — the warehouse itself is
       corrupt, not just the sidecar. *)
    try
      Hsq_hist.Level_index.restore ?sort_memory:config.Config.sort_memory
        ~kappa:config.Config.kappa ~beta1:(Config.beta1 config) device descriptors
    with
    | Invalid_argument msg -> raise (Corrupt_metadata msg)
    | Hsq_storage.Block_device.Device_error msg ->
      raise (Corrupt_metadata ("device corruption: " ^ msg))
  in
  (try List.iter verify_partition (Hsq_hist.Level_index.partitions hist)
   with Hsq_storage.Block_device.Device_error msg ->
     raise (Corrupt_metadata ("device corruption: " ^ msg)));
  (config, hist)
