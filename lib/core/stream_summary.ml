(* The stream summary SS (Algorithm 4).

   Extracted on demand from the Greenwald-Khanna sketch: SS[0] is the
   exact stream minimum and SS[i] is an element returned by a GK query
   at rank ~ (i + 1/2) * eps2 * m.  The underlying sketch runs at eps2/2
   precision, so each returned element's true rank provably lies inside
   [target - eps2*m/2, target + eps2*m/2] — the one-sided interval of
   Lemma 1, up to integer rounding.

   Rather than re-deriving rank bounds from the ideal spacing (which
   breaks at the clamped tail entries and for tiny streams), every entry
   stores the guaranteed interval [rlo, rhi] on its own rank; the L/U
   bounds of Lemma 2 and the rho_2 estimate of Algorithm 8 are computed
   from those stored intervals, which is never weaker than the paper's
   formulas. *)

type t = {
  values : int array; (* non-decreasing; empty iff the stream is empty *)
  rlo : float array; (* guaranteed lower bound on rank(values.(i), R) *)
  rhi : float array; (* guaranteed upper bound *)
  eps2 : float;
  m : int; (* stream size when extracted *)
}

let beta2 ~eps2 = int_of_float (ceil (1.0 /. eps2)) + 1

let extract gk =
  let m = Stream_sketch.count gk in
  let gk_eps = Stream_sketch.epsilon gk in
  let eps2 = 2.0 *. gk_eps in
  if m = 0 then { values = [||]; rlo = [||]; rhi = [||]; eps2; m = 0 }
  else begin
    let b2 = beta2 ~eps2 in
    let fm = float_of_int m in
    let spacing = eps2 *. fm in
    let slack = (gk_eps *. fm) +. 1.0 (* GK guarantee + integer rounding *) in
    let values = Array.make b2 0 in
    let rlo = Array.make b2 0.0 in
    let rhi = Array.make b2 0.0 in
    for i = 0 to b2 - 1 do
      if i = 0 then begin
        (* Exact minimum: rank is at least 1 (and up to its multiplicity,
           about which the sketch knows nothing). *)
        values.(0) <- Stream_sketch.min_value gk;
        rlo.(0) <- 1.0;
        rhi.(0) <- fm
      end
      else if i = b2 - 1 then begin
        (* Exact maximum: rank(max, R) = m by definition, which pins the
           upper end of every bound exactly. *)
        values.(i) <- Stream_sketch.max_value gk;
        rlo.(i) <- fm;
        rhi.(i) <- fm
      end
      else begin
        let target = (float_of_int i +. 0.5) *. spacing in
        let r = min m (max 1 (int_of_float (Float.round target))) in
        values.(i) <- Stream_sketch.query_rank gk r;
        rlo.(i) <- Float.max 0.0 (float_of_int r -. slack);
        rhi.(i) <- Float.min fm (float_of_int r +. slack)
      end
    done;
    (* Entry values are non-decreasing, so their true ranks are too;
       propagating lower bounds forward and upper bounds backward is
       therefore sound, only tightens, and restores the monotonicity
       that the L/U binary searches of Union_summary rely on. *)
    for i = 1 to b2 - 1 do
      rlo.(i) <- Float.max rlo.(i) rlo.(i - 1)
    done;
    for i = b2 - 2 downto 0 do
      rhi.(i) <- Float.min rhi.(i) rhi.(i + 1)
    done;
    { values; rlo; rhi; eps2; m }
  end

let size t = Array.length t.values
let stream_size t = t.m
let eps2 t = t.eps2
let values t = t.values
let intervals t = Array.init (size t) (fun i -> (t.rlo.(i), t.rhi.(i)))
let memory_words t = 4 + (3 * Array.length t.values)

(* alpha_S of Lemma 2: number of summary entries <= v. *)
let count_le t v =
  let a = t.values in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

(* Lower bound on rank(v, R): SS[0] is the exact minimum, so alpha_S = 0
   implies no stream element is <= v; otherwise rank(v) >= rank of the
   largest entry <= v, which is at least its stored rlo. *)
let rank_lower t v =
  if t.m = 0 then 0.0
  else begin
    let a = count_le t v in
    if a = 0 then 0.0 else t.rlo.(a - 1)
  end

(* Upper bound: elements <= v are a subset of elements < SS[alpha_S]
   (the smallest entry > v), whose count is at most that entry's rhi;
   when every entry is <= v the bound is m. *)
let rank_upper t v =
  if t.m = 0 then 0.0
  else begin
    let a = count_le t v in
    if a = 0 then 0.0 else if a = Array.length t.values then float_of_int t.m else t.rhi.(a)
  end

(* rho_2 of Algorithm 8 (lines 8-10): the midpoint of the feasible
   window; its error is at most half the window, i.e. O(eps2 * m). *)
let rank_estimate t v =
  if t.m = 0 then 0.0 else (rank_lower t v +. rank_upper t v) /. 2.0
