(** The merged summary TS of T = H ∪ R with rank bounds L/U
    (Section 2.3.1, Figure 3, Lemma 2).

    Guarantees (checked by the property suites): for each entry,
    [lower ≤ rank(value, T) ≤ upper], and consecutive bound windows
    overlap within ε·N. Historical contributions use the exact indices
    stored in partition summaries, which only tightens the paper's
    bounds. *)

type entry = { value : int; lower : float; upper : float }
type t

(** {2 Historical aggregate}

    The summed historical bounds A(v) = (Σ_P lower_P(v), Σ_P upper_P(v))
    form a step function changing only at distinct partition-summary
    values, so they can be materialised once — a k-way merge of the P
    summary-entry arrays with incrementally maintained prefix sums,
    O(S_hist·log P) — and reused across queries until the partition set
    changes (see [Level_index.epoch]). *)

type hist_agg

(** Merge the given partitions' summaries into an aggregate. *)
val hist_aggregate : partitions:Hsq_hist.Partition.t list -> hist_agg

(** Number of distinct summary values in the aggregate. *)
val hist_agg_size : hist_agg -> int

(** Total elements in the aggregated partitions. *)
val hist_agg_elements : hist_agg -> int

(** [(Σ lower_P v, Σ upper_P v)] for any value [v]; one binary search. *)
val hist_agg_bounds : hist_agg -> int -> int * int

(** Merge a (pre-built) historical aggregate with a fresh stream
    summary — the steady-state query path, linear in both sizes. *)
val build_from_agg : agg:hist_agg -> stream:Stream_summary.t -> t

(** [build ~partitions ~stream] is
    [build_from_agg ~agg:(hist_aggregate ~partitions) ~stream] — the
    cached and uncached paths share one code path, so their entries are
    bitwise identical. *)
val build : partitions:Hsq_hist.Partition.t list -> stream:Stream_summary.t -> t

(** Fused build over K stream summaries (sharded stores, see
    {!Hsq_shard.Shard_group}): [agg] aggregates the partitions of every
    shard, and each entry's stream contribution is the sum of the
    per-shard Lemma 2 bounds — valid because each shard's sketch
    brackets its own rank, so the sums bracket the union rank, with the
    per-entry window widening additively to Σ_s ε₂·m_s = ε₂·m when all
    shards share ε₂. [build_fused ~agg ~streams:[s]] has the same
    entries as [build_from_agg ~agg ~stream:s]. *)
val build_fused : agg:hist_agg -> streams:Stream_summary.t list -> t

val entries : t -> entry array
val size : t -> int

(** Entry-for-entry equality, comparing floats exactly — the cache
    consistency contract checked by the fuzz suite. *)
val equal : t -> t -> bool

(** |T| = n + m over the partitions and stream given to [build]. *)
val n_total : t -> int

val m_stream : t -> int
val hist_elements : t -> int

(** Algorithm 5 (quick response): value of the smallest entry whose L
    reaches [rank], else the last entry. Error ≤ 1.5·ε·N (Lemma 3). *)
val quick_select : t -> rank:int -> int

(** Algorithm 7 (GenerateFilters): values [(u, v)] with
    rank(u,T) ≤ rank ≤ rank(v,T) and rank(v) − rank(u) < 4εN (Lemma 4).
    [u] may be [global min − 1] when even the minimum's U exceeds
    [rank]. *)
val filters : t -> rank:int -> int * int

(** [(L, U)] rank window of an arbitrary value [v]:
    L ≤ rank(v, T) ≤ U, from the entries bracketing [v] (0 below the
    union minimum, N above its maximum). The current rank-error bound
    of a best-so-far answer [v] for target rank [r] is
    [max (U − r) (r − L)] — what a deadline-cut or degraded query
    reports. *)
val rank_window : t -> int -> float * float
