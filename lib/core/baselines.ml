(* The two comparison systems of Section 2:

   - "Pure streaming": a single in-memory sketch over all of T.  For a
     fair update-cost comparison the paper gives the baselines the same
     loading paradigm — batches are still appended to the warehouse and
     partitions merged on the same kappa cascade, just without sorting —
     so we model that I/O with a block-count-only raw store.

   - "Strawman": H kept fully sorted in one on-disk run at all times
     (merged with each incoming batch — expensive), stream summarised by
     GK; queries bisect the value domain against the single sorted run.
     Error matches our algorithm; update cost does not. *)

module Raw_store = struct
  (* Block-level model of the unsorted warehouse: partitions are only
     block counts; loading writes the batch once; a level overflowing
     kappa partitions concatenates them (read everything + write
     everything) into the next level. *)
  type t = {
    kappa : int;
    block_size : int;
    mutable levels : int list array; (* block counts, per level *)
    mutable steps : int;
  }

  let create ~kappa ~block_size =
    if kappa < 2 then invalid_arg "Raw_store.create: kappa must be >= 2";
    if block_size < 1 then invalid_arg "Raw_store.create: block_size must be >= 1";
    { kappa; block_size; levels = Array.make 4 []; steps = 0 }

  let ensure_level t l =
    if l >= Array.length t.levels then begin
      let bigger = Array.make (max (l + 1) (2 * Array.length t.levels)) [] in
      Array.blit t.levels 0 bigger 0 (Array.length t.levels);
      t.levels <- bigger
    end

  (* Returns (load_io, merge_io) as (reads, writes) pairs of block
     counts for ingesting a batch of [elements]. *)
  let add_batch t ~elements =
    if elements <= 0 then invalid_arg "Raw_store.add_batch: empty batch";
    let blocks = (elements + t.block_size - 1) / t.block_size in
    ensure_level t 0;
    t.levels.(0) <- t.levels.(0) @ [ blocks ];
    t.steps <- t.steps + 1;
    let merge_reads = ref 0 and merge_writes = ref 0 in
    let l = ref 0 in
    while !l < Array.length t.levels && List.length t.levels.(!l) > t.kappa do
      let total = List.fold_left ( + ) 0 t.levels.(!l) in
      merge_reads := !merge_reads + total;
      merge_writes := !merge_writes + total;
      t.levels.(!l) <- [];
      ensure_level t (!l + 1);
      t.levels.(!l + 1) <- t.levels.(!l + 1) @ [ total ];
      incr l
    done;
    ((0, blocks), (!merge_reads, !merge_writes))

  let steps t = t.steps

  let total_blocks t =
    Array.fold_left (fun acc ps -> acc + List.fold_left ( + ) 0 ps) 0 t.levels
end

module Streaming = struct
  type algorithm = Gk_stream | Qdigest_stream | Sampler_stream

  type t = {
    algorithm : algorithm;
    sketch : Hsq_sketch.Quantile_sketch.packed;
    store : Raw_store.t;
    mutable pending : int; (* elements observed since the last step end *)
    mutable load_reads : int;
    mutable load_writes : int;
    mutable merge_reads : int;
    mutable merge_writes : int;
  }

  let algorithm_name = function
    | Gk_stream -> "greenwald-khanna"
    | Qdigest_stream -> "q-digest"
    | Sampler_stream -> "random-sampler"

  let create ?(universe_bits = 31) ?(seed = 0x5EED) ~algorithm ~words ~kappa ~block_size () =
    let sketch =
      match algorithm with
      | Gk_stream ->
        Hsq_sketch.Quantile_sketch.Packed (Hsq_sketch.Gk.sketch, Hsq_sketch.Gk.create_capped ~words)
      | Qdigest_stream ->
        Hsq_sketch.Quantile_sketch.Packed
          (Hsq_sketch.Qdigest.sketch, Hsq_sketch.Qdigest.create_capped ~bits:universe_bits ~words)
      | Sampler_stream ->
        Hsq_sketch.Quantile_sketch.Packed
          (Hsq_sketch.Sampler.sketch, Hsq_sketch.Sampler.create_capped ~seed ~words ())
    in
    {
      algorithm;
      sketch;
      store = Raw_store.create ~kappa ~block_size;
      pending = 0;
      load_reads = 0;
      load_writes = 0;
      merge_reads = 0;
      merge_writes = 0;
    }

  let observe t v =
    Hsq_sketch.Quantile_sketch.insert t.sketch v;
    t.pending <- t.pending + 1

  (* The warehouse still ingests the batch (same loading paradigm as our
     algorithm), but the sketch lives on: the pure-streaming summary
     covers all of T, not just the live stream. *)
  let end_time_step t =
    if t.pending = 0 then invalid_arg "Streaming.end_time_step: empty batch";
    let (lr, lw), (mr, mw) = Raw_store.add_batch t.store ~elements:t.pending in
    t.pending <- 0;
    t.load_reads <- t.load_reads + lr;
    t.load_writes <- t.load_writes + lw;
    t.merge_reads <- t.merge_reads + mr;
    t.merge_writes <- t.merge_writes + mw;
    ((lr, lw), (mr, mw))

  let count t = Hsq_sketch.Quantile_sketch.count t.sketch
  let memory_words t = Hsq_sketch.Quantile_sketch.memory_words t.sketch
  let query_rank t r = Hsq_sketch.Quantile_sketch.query_rank t.sketch r

  let quantile t phi =
    if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Streaming.quantile: phi not in (0,1]";
    query_rank t (int_of_float (ceil (phi *. float_of_int (count t))))

  let error_bound t = Hsq_sketch.Quantile_sketch.error_bound t.sketch
  let update_io t = ((t.load_reads, t.load_writes), (t.merge_reads, t.merge_writes))
end

module Strawman = struct
  type t = {
    dev : Hsq_storage.Block_device.t;
    gk_epsilon : float;
    mutable sorted : Hsq_storage.Run.t option;
    mutable gk : Hsq_sketch.Gk.t;
    mutable batch : int list;
    mutable batch_len : int;
  }

  let create ?device ~epsilon ~block_size () =
    if not (epsilon > 0.0 && epsilon < 1.0) then invalid_arg "Strawman.create: bad epsilon";
    let dev =
      match device with
      | Some d -> d
      | None -> Hsq_storage.Block_device.create_memory ~block_size ()
    in
    {
      dev;
      gk_epsilon = epsilon /. 2.0;
      sorted = None;
      gk = Hsq_sketch.Gk.create ~epsilon:(epsilon /. 2.0);
      batch = [];
      batch_len = 0;
    }

  let device t = t.dev

  let observe t v =
    Hsq_sketch.Gk.insert t.gk v;
    t.batch <- v :: t.batch;
    t.batch_len <- t.batch_len + 1

  (* Every step rewrites the whole history: sort the batch, two-way
     merge with the existing run.  This is exactly the cost the paper's
     Section 2 calls out as prohibitive. *)
  let end_time_step t =
    if t.batch_len = 0 then invalid_arg "Strawman.end_time_step: empty batch";
    let stats = Hsq_storage.Block_device.stats t.dev in
    let before = Hsq_storage.Io_stats.snapshot stats in
    let batch = Array.of_list (List.rev t.batch) in
    Array.sort Int.compare batch;
    let fresh = Hsq_storage.Run.of_sorted_array t.dev batch in
    (match t.sorted with
    | None -> t.sorted <- Some fresh
    | Some old ->
      let merged = Hsq_storage.Kway_merge.merge t.dev [ old; fresh ] in
      Hsq_storage.Run.free old;
      Hsq_storage.Run.free fresh;
      t.sorted <- Some merged);
    t.batch <- [];
    t.batch_len <- 0;
    t.gk <- Hsq_sketch.Gk.create ~epsilon:t.gk_epsilon;
    Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot stats) before

  let hist_size t = match t.sorted with None -> 0 | Some r -> Hsq_storage.Run.length r
  let stream_size t = Hsq_sketch.Gk.count t.gk
  let total_size t = hist_size t + stream_size t

  let memory_words t = Hsq_sketch.Gk.memory_words t.gk

  (* Value-domain bisection against the single sorted run; the stream
     rank is estimated from the GK sketch. *)
  let accurate t ~rank =
    let n = total_size t in
    if n = 0 then invalid_arg "Strawman.accurate: no data";
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    let stats = Hsq_storage.Block_device.stats t.dev in
    let before = Hsq_storage.Io_stats.snapshot stats in
    let m = stream_size t in
    let tolerance = 4.0 *. t.gk_epsilon *. float_of_int m in
    let r = float_of_int rank in
    let lo_value, hi_value =
      let run_bounds =
        match t.sorted with
        | None -> None
        | Some run -> Some (Hsq_storage.Run.get run 0, Hsq_storage.Run.get run (Hsq_storage.Run.length run - 1))
      in
      let gk_bounds =
        if m = 0 then None
        else Some (Hsq_sketch.Gk.min_value t.gk, Hsq_sketch.Gk.max_value t.gk)
      in
      match (run_bounds, gk_bounds) with
      | Some (a, b), Some (c, d) -> (min a c - 1, max b d)
      | Some (a, b), None -> (a - 1, b)
      | None, Some (c, d) -> (c - 1, d)
      | None, None -> assert false
    in
    let estimate z =
      let rho1 = match t.sorted with None -> 0 | Some run -> Hsq_storage.Run.rank_between run ~lo:0 ~hi:(Hsq_storage.Run.length run) z in
      float_of_int rho1 +. float_of_int (Hsq_sketch.Gk.rank_of t.gk z)
    in
    let rec bisect u v =
      if v - u <= 1 then if estimate u >= r then u else v
      else begin
        let z = u + ((v - u) / 2) in
        let rho = estimate z in
        if r < rho -. tolerance then bisect u z
        else if r > rho +. tolerance then bisect z v
        else z
      end
    in
    let answer = bisect lo_value hi_value in
    (answer, Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot stats) before)

  let quantile t phi =
    if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Strawman.quantile: phi not in (0,1]";
    let n = total_size t in
    accurate t ~rank:(int_of_float (ceil (phi *. float_of_int n)))
end
