(* The integrated historical + streaming quantile engine — the paper's
   primary contribution (Sections 2.1-2.3).

   Lifecycle per time step (Figure 1):
     observe       -- every stream element updates the GK sketch and is
                      spooled into the current batch;
     end_time_step -- the batch is sorted and loaded into the historical
                      level index (Algorithm 3) and the stream sketch is
                      reset (Algorithm 4, StreamReset).

   Queries:
     quick    -- Algorithm 5, in-memory only, O(eps*N) rank error;
     accurate -- Algorithms 6-8, a value-domain binary search narrowed
                 by summaries with disk rank probes, O(eps*m) error. *)

(* Durable-ingest state (Engine.open_or_recover): the write-ahead log
   making the stream side R crash-safe, plus sketch-checkpoint
   bookkeeping.  [None] = the stream is volatile, as in the paper. *)
module Metrics = Hsq_obs.Metrics
module Trace = Hsq_obs.Trace

(* Query-path observability.  The quick path runs in ~100ns out of the
   summary cache, so its counters are plain mutable ints bumped by the
   querying domain (the engine is single-submitter by contract) and
   exported pull-style through [Metrics.counter_fn]; an exporter on
   another domain may read a value a few increments stale, never torn.
   Latency on the quick path is sampled 1-in-64 (a gettimeofday pair
   costs ~half the whole query); the accurate path is ms-scale and
   always timed. *)
type engine_metrics = {
  mutable quick_total : int;
  mutable accurate_total : int;
  mutable sc_hits : int; (* summary-cache (us_cache) hits *)
  mutable sc_misses : int;
  mutable degraded_total : int;
  quick_hist : Metrics.Histogram.t;
  accurate_hist : Metrics.Histogram.t;
  bisect_hist : Metrics.Histogram.t; (* bisection iterations per accurate query *)
}

let quick_sample_mask = 63

let make_engine_metrics dev =
  let r = Hsq_storage.Io_stats.registry (Hsq_storage.Block_device.stats dev) in
  let em =
    {
      quick_total = 0;
      accurate_total = 0;
      sc_hits = 0;
      sc_misses = 0;
      degraded_total = 0;
      quick_hist =
        Metrics.histogram ~help:"Quick query latency (sampled 1-in-64)" r
          "hsq_query_quick_seconds";
      accurate_hist = Metrics.histogram ~help:"Accurate query latency" r "hsq_query_accurate_seconds";
      bisect_hist =
        Metrics.histogram ~help:"Bisection iterations per accurate query" ~start:1.0 ~factor:2.0
          ~buckets:10 r "hsq_query_bisect_iterations";
    }
  in
  Metrics.counter_fn ~help:"Quick queries served" r "hsq_query_quick_total" (fun () ->
      em.quick_total);
  Metrics.counter_fn ~help:"Accurate queries served" r "hsq_query_accurate_total" (fun () ->
      em.accurate_total);
  Metrics.counter_fn ~help:"Union-summary cache hits" r "hsq_query_summary_cache_hits_total"
    (fun () -> em.sc_hits);
  Metrics.counter_fn ~help:"Union-summary cache misses" r "hsq_query_summary_cache_misses_total"
    (fun () -> em.sc_misses);
  Metrics.counter_fn ~help:"Accurate queries degraded to the quick path" r
    "hsq_query_degraded_total" (fun () -> em.degraded_total);
  em

type durability = {
  wal : Hsq_storage.Wal.t;
  meta_path : string; (* warehouse sidecar — the rollover commit record *)
  ckpt_path : string; (* sketch checkpoint file *)
  checkpoint_every : int; (* WAL records between checkpoints; 0 = never *)
  mutable since_checkpoint : int;
  mutable last_checkpoint_seq : int; (* 0 = no live checkpoint *)
}

type t = {
  config : Config.t;
  dev : Hsq_storage.Block_device.t;
  hist : Hsq_hist.Level_index.t;
  mutable gk : Hsq_sketch.Gk.t;
  mutable batch : int array;
  mutable batch_len : int;
  mutable durable : durability option;
  (* Cached historical aggregate keyed by the level index's epoch: the
     historical side of TS only changes at end_time_step / merge /
     expire / recovery, so queries reuse the merged summary bounds and
     only pay for the fresh stream summary.  (epoch, aggregate); None
     until the first full-set query after a mutation. *)
  mutable hist_cache : (int * Union_summary.hist_agg) option;
  (* The fully built (stream summary, union summary) pair, keyed by
     (hist epoch, GK insert count): the sketch mutates only on insert
     (count strictly grows within a step) and end_time_step both resets
     it and bumps the epoch, so an unchanged key means an unchanged TS.
     Repeated queries between ingests then skip even the stream
     extraction and the merge. *)
  mutable us_cache : (int * int * (Stream_summary.t * Union_summary.t)) option;
  (* Persistent worker pool for the parallel accurate-query probes,
     spawned on the first query when [config.query_domains] > 1 (the
     pool holds query_domains - 1 workers; the querying domain is the
     remaining lane).  [close] joins it. *)
  mutable query_pool : Hsq_util.Parallel.Pool.t option;
  metrics : engine_metrics;
  (* Tracing is opt-in per engine (set_tracer); mirrored onto the
     device's Io_stats so WAL/merge/checkpoint sites pick it up. *)
  mutable tracer : Trace.t option;
  (* Set by the first close/crash; later close/crash/checkpoint_now
     calls become no-ops so overlapping shutdown paths (signal handler
     + drain, test teardown + explicit close) are safe. *)
  mutable closed : bool;
}

(* How far an answer fell from the full O(eps*m) contract, in order of
   increasing severity.  `Quarantined carries the number of elements
   the excluded partitions hold — the bound widening. *)
type degradation =
  [ `None | `Quarantined of int | `Deadline | `Device_open ]

type query_report = {
  io : Hsq_storage.Io_stats.counters;
  iterations : int; (* value-domain bisection steps (Algorithm 8 calls) *)
  degradation : degradation;
  rank_error_bound : float; (* upper bound on |rank(answer) - rank|
                               under the degradation above *)
  span : Trace.span option; (* the query's root trace span when tracing
                               is on (set_tracer); None otherwise *)
}

let degradation_label : degradation -> string = function
  | `None -> "none"
  | `Quarantined _ -> "quarantined"
  | `Deadline -> "deadline"
  | `Device_open -> "device_open"

let fresh_gk config =
  match Config.gk_epsilon config with
  | Some eps -> Hsq_sketch.Gk.create ~epsilon:eps
  | None -> (
    match Config.stream_words config with
    | Some words -> Hsq_sketch.Gk.create_capped ~words
    | None -> assert false)

let create ?device config =
  let dev =
    match device with
    | Some d -> d
    | None -> Hsq_storage.Block_device.create_memory ~block_size:config.Config.block_size ()
  in
  let hist =
    Hsq_hist.Level_index.create ?sort_memory:config.Config.sort_memory
      ?sort_domains:config.Config.sort_domains ~kappa:config.Config.kappa
      ~beta1:(Config.beta1 config) dev
  in
  {
    config;
    dev;
    hist;
    gk = fresh_gk config;
    batch = Array.make 1024 0;
    batch_len = 0;
    durable = None;
    hist_cache = None;
    us_cache = None;
    query_pool = None;
    metrics = make_engine_metrics dev;
    tracer = None;
    closed = false;
  }

(* Recovery path (Persist): adopt a restored historical index.  The
   stream side starts empty — [open_or_recover] refills it from the
   checkpoint and the WAL when durability is on. *)
let of_restored ~device config hist =
  {
    config;
    dev = device;
    hist;
    gk = fresh_gk config;
    batch = Array.make 1024 0;
    batch_len = 0;
    durable = None;
    hist_cache = None;
    us_cache = None;
    query_pool = None;
    metrics = make_engine_metrics device;
    tracer = None;
    closed = false;
  }

let config t = t.config
let device t = t.dev

(* The engine's metric registry — the device's, where every subsystem
   below (Io_stats, WAL, level index, buffer pool) registers too. *)
let metrics t = Hsq_storage.Io_stats.registry (Hsq_storage.Block_device.stats t.dev)

let set_tracer t tr =
  t.tracer <- tr;
  Hsq_storage.Io_stats.set_tracer (Hsq_storage.Block_device.stats t.dev) tr

let tracer t = t.tracer
let hist t = t.hist
let stream_sketch t = t.gk
let stream_size t = Hsq_sketch.Gk.count t.gk
let hist_size t = Hsq_hist.Level_index.total_elements t.hist
let total_size t = hist_size t + stream_size t
let time_steps t = Hsq_hist.Level_index.time_steps t.hist

(* eps2 as the engine currently provides it (2x the GK sketch's eps —
   see Config); eps = 4*eps2 inverts Algorithm 1. *)
let eps2 t = 2.0 *. Hsq_sketch.Gk.epsilon t.gk
let epsilon t = 4.0 *. eps2 t

let memory_words t =
  Hsq_hist.Level_index.memory_words t.hist + Hsq_sketch.Gk.memory_words t.gk

(* StreamUpdate (Algorithm 4) + batch spooling, without the WAL — the
   in-memory effect of one element, shared by live ingest and replay. *)
let apply_observe t v =
  Hsq_sketch.Gk.insert t.gk v;
  if t.batch_len = Array.length t.batch then begin
    let bigger = Array.make (2 * t.batch_len) 0 in
    Array.blit t.batch 0 bigger 0 t.batch_len;
    t.batch <- bigger
  end;
  t.batch.(t.batch_len) <- v;
  t.batch_len <- t.batch_len + 1

(* Freeze the stream side at the WAL's last acknowledged sequence
   number.  The WAL is synced first so the checkpoint never covers
   records that could still be lost — otherwise recovery would trust
   state whose log suffix vanished with the buffer cache. *)
let write_checkpoint_impl t d =
  Hsq_storage.Wal.sync d.wal;
  let c =
    {
      Checkpoint.seq = Hsq_storage.Wal.last_seq d.wal;
      steps_done = Hsq_hist.Level_index.time_steps t.hist;
      batch = Array.sub t.batch 0 t.batch_len;
      gk = Hsq_sketch.Gk.serialize t.gk;
    }
  in
  Checkpoint.save ~path:d.ckpt_path c;
  Hsq_storage.Io_stats.note_checkpoint (Hsq_storage.Block_device.stats t.dev);
  d.last_checkpoint_seq <- c.Checkpoint.seq;
  d.since_checkpoint <- 0

let write_checkpoint t d =
  match t.tracer with
  | Some tr -> Trace.with_span tr "checkpoint" (fun _ -> write_checkpoint_impl t d)
  | None -> write_checkpoint_impl t d

(* No-op once closed: the WAL channel is gone, and a post-close
   checkpoint (e.g. a drain path racing a signal handler) must not
   raise on it. *)
let checkpoint_now t =
  if not t.closed then match t.durable with None -> () | Some d -> write_checkpoint t d

let observe t v =
  match t.durable with
  | None -> apply_observe t v
  | Some d ->
    (* WAL first: if the append raises (injected fault, full disk) the
       element is unacknowledged and in-memory state is untouched. *)
    ignore (Hsq_storage.Wal.append d.wal (Hsq_storage.Wal.Observe v));
    apply_observe t v;
    d.since_checkpoint <- d.since_checkpoint + 1;
    if d.checkpoint_every > 0 && d.since_checkpoint >= d.checkpoint_every then
      write_checkpoint t d

let save_meta t path =
  Meta.write ~path
    (Meta.render ~config:t.config ~descriptors:(Hsq_hist.Level_index.describe t.hist))

(* Load the batch into the warehouse and reset the stream sketch
   (HistUpdate + StreamReset).

   Durable rollover protocol (exactly-once):
     1. append an [End_step] marker carrying the prospective step
        number and force a sync — whatever the policy, a commit is a
        flush;
     2. add the batch to the level index and write the warehouse
        sidecar — the sidecar rename is THE commit point;
     3. rotate the WAL (atomic truncation) and drop the checkpoint.
   A crash between 1 and 2 replays the step from the log; between 2
   and 3 the marker's step number is <= the recovered warehouse's step
   count, so replay skips the re-ingest — never a double archive. *)
let end_time_step t =
  if t.batch_len = 0 then invalid_arg "Engine.end_time_step: empty batch";
  let commit () =
    let batch = Array.sub t.batch 0 t.batch_len in
    let report = Hsq_hist.Level_index.add_batch t.hist batch in
    t.batch_len <- 0;
    t.gk <- fresh_gk t.config;
    report
  in
  match t.durable with
  | None -> commit ()
  | Some d ->
    let step = Hsq_hist.Level_index.time_steps t.hist + 1 in
    ignore
      (Hsq_storage.Wal.append d.wal (Hsq_storage.Wal.End_step { step; count = t.batch_len }));
    Hsq_storage.Wal.sync d.wal;
    let report = commit () in
    save_meta t d.meta_path;
    Hsq_storage.Wal.rotate d.wal;
    (try Sys.remove d.ckpt_path with Sys_error _ -> ());
    d.last_checkpoint_seq <- 0;
    d.since_checkpoint <- 0;
    report

let ingest_batch t batch =
  Array.iter (observe t) batch;
  end_time_step t

(* Retention passthrough: keep only the last [keep_steps] archived
   steps (whole partitions; see Level_index.expire). *)
let expire t ~keep_steps = Hsq_hist.Level_index.expire t.hist ~keep_steps

let stream_summary t = Stream_summary.extract t.gk

(* The cached historical aggregate, rebuilt only when the level index's
   epoch moved since it was computed (partition add / merge / expire /
   restore all bump it).  Steady-state full-set queries therefore cost
   O(S_stream + S_hist) instead of O(S·P·log β1). *)
let hist_aggregate t =
  let epoch = Hsq_hist.Level_index.epoch t.hist in
  match t.hist_cache with
  | Some (e, agg) when e = epoch -> agg
  | _ ->
    (* Active partitions only: a quarantined partition's summary may be
       degenerate (restored without reading its bad blocks), so queries
       exclude it and widen their reported bound instead.  Quarantine
       transitions bump the epoch, so the cache refreshes. *)
    let agg =
      Union_summary.hist_aggregate
        ~partitions:(Hsq_hist.Level_index.active_partitions t.hist)
    in
    t.hist_cache <- Some (epoch, agg);
    agg

(* The built summary pair, reused verbatim while neither side of TS has
   moved (see the us_cache field comment).  Re-extracting from an
   unchanged GK sketch is pure, so a hit returns exactly what a rebuild
   would produce. *)
let cached_summaries t =
  let epoch = Hsq_hist.Level_index.epoch t.hist in
  let count = stream_size t in
  match t.us_cache with
  | Some (e, c, pair) when e = epoch && c = count ->
    t.metrics.sc_hits <- t.metrics.sc_hits + 1;
    (match t.tracer with
    | Some tr ->
      Trace.with_span tr ~attrs:[ ("result", "hit") ] "summary_cache" (fun _ -> ())
    | None -> ());
    pair
  | _ ->
    t.metrics.sc_misses <- t.metrics.sc_misses + 1;
    let build () =
      let ss = stream_summary t in
      let pair = (ss, Union_summary.build_from_agg ~agg:(hist_aggregate t) ~stream:ss) in
      t.us_cache <- Some (epoch, count, pair);
      pair
    in
    (match t.tracer with
    | Some tr ->
      Trace.with_span tr ~attrs:[ ("result", "miss") ] "summary_cache" (fun _ -> build ())
    | None -> build ())

let cached_union_summary t = snd (cached_summaries t)

let not_quarantined t p = not (Hsq_hist.Level_index.is_quarantined t.hist p)

(* Cache-bypassing build over the full active partition set; the fuzz
   suite compares this against the cached path entry for entry. *)
let fresh_union_summary t =
  Union_summary.build ~partitions:(Hsq_hist.Level_index.active_partitions t.hist)
    ~stream:(stream_summary t)

(* Explicit partition subsets (windows, ranges) bypass the cache: the
   aggregate covers the full set and per-suffix bounds are not
   recoverable from it.  Those queries are rare next to full-set ones,
   and still benefit from the array build path.  Quarantined members of
   the subset are dropped here too — never build a union over a
   summary that may be degenerate. *)
let union_summary ?partitions t =
  match partitions with
  | Some ps ->
    Union_summary.build
      ~partitions:(List.filter (not_quarantined t) ps)
      ~stream:(stream_summary t)
  | None -> cached_union_summary t

let clamp_rank ~n r = if r < 1 then 1 else if r > n then n else r

(* Algorithm 5. *)
let quick_us us ~rank =
  let n = Union_summary.n_total us in
  if n = 0 then invalid_arg "Engine.quick: no data";
  Union_summary.quick_select us ~rank:(clamp_rank ~n rank)

(* The union the quick path answers from.  Normally the cached
   active-set summary; when quarantine has emptied the active view
   while the stream is empty (yet archived data exists), fall back to a
   memory-only union over the *full* partition set.  Quarantine marks a
   partition's disk blocks unreadable, but its in-memory summary still
   describes the archived elements — so the fallback answers with
   honest (possibly wide: a sidecar-restored quarantined partition
   contributes a maximal [0, size] window) Lemma 2 bounds at zero
   device reads.  Returns the summary and [true] iff it is the
   fallback, whose bound must not be double-widened by the quarantined
   element count the summary already covers. *)
let quick_view t =
  let us = cached_union_summary t in
  if Union_summary.n_total us > 0 then (us, false)
  else
    let full =
      Union_summary.build
        ~partitions:(Hsq_hist.Level_index.partitions t.hist)
        ~stream:(stream_summary t)
    in
    if Union_summary.size full > 0 then (full, true) else (us, false)

let quick_over t ~partitions ~rank = quick_us (union_summary ~partitions t) ~rank

(* Quick answer plus the rank window it can be off by — what a caller
   holding an exact oracle (the chaos harness) checks, and what the
   degraded paths of the accurate query report.  The bound is
   [max (U - r) (r - L)] from the union summary's Lemma 2 windows,
   widened by the element count of any quarantined partitions (their
   ranks are unknown in [0, size]). *)
let rank_bound_of us ~rank v ~widen =
  let r = float_of_int rank in
  let lo, hi = Union_summary.rank_window us v in
  Float.max (hi -. r) (r -. lo) +. float_of_int widen

let quick_with_bound t ~rank =
  let us, fallback = quick_view t in
  let n = Union_summary.n_total us in
  if n = 0 then invalid_arg "Engine.quick: no data";
  let rank = clamp_rank ~n rank in
  let v = Union_summary.quick_select us ~rank in
  let widen = if fallback then 0 else Hsq_hist.Level_index.quarantined_elements t.hist in
  (v, rank_bound_of us ~rank v ~widen)

let quick t ~rank =
  let em = t.metrics in
  em.quick_total <- em.quick_total + 1;
  match t.tracer with
  | None ->
    (* ~140ns steady state: the instrumentation here must stay to a
       couple of plain-int operations — latency is sampled, not always
       measured (see engine_metrics). *)
    if em.quick_total land quick_sample_mask = 0 then begin
      let t0 = Metrics.now_s () in
      let v = quick_us (fst (quick_view t)) ~rank in
      Metrics.Histogram.observe em.quick_hist (Metrics.now_s () -. t0);
      v
    end
    else quick_us (fst (quick_view t)) ~rank
  | Some tr ->
    Trace.with_span tr ~attrs:[ ("rank", string_of_int rank) ] "query.quick" (fun _ ->
        let t0 = Metrics.now_s () in
        let v = quick_us (fst (quick_view t)) ~rank in
        Metrics.Histogram.observe em.quick_hist (Metrics.now_s () -. t0);
        v)

(* Algorithms 6-8: bisect the value domain between the filters, probing
   each partition with a summary-bounded (and progressively narrowed)
   binary search for the exact historical rank rho1, and estimating the
   stream rank rho2 from SS.  Stops inside the +-eps*m band, or at a
   width-1 interval, where v is the answer when the estimate at u still
   falls short of r (rank(u) <= r <= rank(v) is invariant). *)
type probe_state = {
  partition : Hsq_hist.Partition.t;
  mutable lo : int; (* rank(z) within this partition is known to be in [lo, hi] *)
  mutable hi : int;
}

(* Internal control flow of the accurate path: a probe that exhausted
   the device's bounded retries (carrying the partition it hit), and a
   bisection cut by the deadline (carrying the surviving filter
   interval [u, v]). *)
exception Probe_failure of Hsq_hist.Partition.t * string
exception Deadline_cut of int * int

let accurate_over ?(tolerance_factor = 0.5) ?deadline_ms ?summaries ?refresh t ~partitions
    ~rank =
  let em = t.metrics in
  let tr = t.tracer in
  em.accurate_total <- em.accurate_total + 1;
  let tq0 = Metrics.now_s () in
  (* Per-call deadline wins over the config default; both count wall
     clock from query start. *)
  let deadline_at =
    match (deadline_ms, t.config.Config.query_deadline_ms) with
    | Some d, _ | None, Some d -> Some (tq0 +. (d /. 1000.0))
    | None, None -> None
  in
  let cancel = Option.map (fun d () -> Metrics.now_s () > d) deadline_at in
  let stats = Hsq_storage.Block_device.stats t.dev in
  let before = Hsq_storage.Io_stats.snapshot stats in
  let iterations = ref 0 in
  let domains_conf =
    match t.config.Config.query_domains with Some d when d > 1 -> d | _ -> 1
  in
  (* One full bisection (Algorithms 6-8) over a fixed active partition
     set; raises [Probe_failure] on an unrecoverable device error and
     [Deadline_cut] when the deadline passes between iterations (or a
     parallel probe round is cancelled mid-flight). *)
  let attempt ~parent ss us active ~rank =
    let u0, v0 = Union_summary.filters us ~rank in
    let probes =
      Array.of_list
        (List.map
           (fun p ->
             let lo, hi =
               Hsq_hist.Partition_summary.search_window (Hsq_hist.Partition.summary p) ~u:u0
                 ~v:v0
             in
             { partition = p; lo; hi })
           active)
    in
    (* Stopping band of Algorithm 8, as a multiple of eps2*m.  The paper
       stops within +-eps*m (factor 4); we default to the tighter factor
       1/2 — the rho estimate is already that accurate, the extra
       bisection steps mostly hit cached blocks, and the answer improves
       ~4x.  This knob is the accuracy/disk-access axis of the tradeoff
       space the paper's conclusion discusses; the ablation bench sweeps
       it. *)
    let m = float_of_int (Stream_summary.stream_size ss) in
    let tolerance = tolerance_factor *. Stream_summary.eps2 ss *. m in
    let r = float_of_int rank in
    (* rho(z) = exact historical rank (lines 2-7) + estimated stream rank
       (lines 8-10).  Returns the per-partition ranks so the caller can
       narrow the next iteration's search windows.

       With [query_domains] > 1 the per-partition disk probes of one
       iteration fan out over a persistent worker pool (the paper's
       future-work parallel partition processing): each partition is
       probed by exactly one domain per round — its Run's one-block cache
       is never shared — and the device serializes pool and file-channel
       access internally.  Pool.map preserves order, so answers and the
       narrowing schedule are identical to the sequential path, and on
       fault-free queries so are the read counts.  On a probe failure the
       pool stops claiming further probes and re-raises once the in-flight
       ones finish, so the containment fallbacks trigger as in the
       sequential path, with at most one extra probe's I/O per lane. *)
    let domains = if domains_conf > 1 && Array.length probes > 1 then domains_conf else 1 in
    let probe_one z st =
      if st.lo >= st.hi then st.lo
      else
        try
          Hsq_storage.Run.rank_between (Hsq_hist.Partition.run st.partition) ~lo:st.lo
            ~hi:st.hi z
        with Hsq_storage.Block_device.Device_error msg ->
          raise (Probe_failure (st.partition, msg))
    in
    (* Traced probes: one span per partition per iteration (closed windows
       included, with resolved=summary), attached to the iteration span by
       explicit parent — [with_child] never touches the trace's stack, so
       probes running on pool worker domains record safely. *)
    let probe_traced trc parent z st =
      Trace.with_child trc ~parent
        ~attrs:
          [
            ("partition", string_of_int (Hsq_hist.Partition.first_step st.partition));
            ("resolved", (if st.lo >= st.hi then "summary" else "disk"));
          ]
        "probe"
        (fun _ -> probe_one z st)
    in
    let estimate ?parent z =
      let probe =
        match (tr, parent) with
        | Some trc, Some par -> probe_traced trc par z
        | _ -> probe_one z
      in
      let traced = match (tr, parent) with Some _, Some _ -> true | _ -> false in
      let ranks =
        if domains = 1 then Array.map probe probes
        else begin
          (* Fan out only the probes whose window is still open — a
             closed window ([lo >= hi]) resolves from the summary with no
             I/O, and spawning domains for it would cost more than the
             whole iteration.  Probes keep their array order, so the
             narrowing schedule matches the sequential path exactly. *)
          let ranks = Array.make (Array.length probes) 0 in
          let open_idx = ref [] in
          for i = Array.length probes - 1 downto 0 do
            if probes.(i).lo >= probes.(i).hi then
              (* A closed window resolves from the summary with no I/O; a
                 traced run still records its span for completeness. *)
              ranks.(i) <- (if traced then probe probes.(i) else probes.(i).lo)
            else open_idx := i :: !open_idx
          done;
          (match !open_idx with
          | [] -> ()
          | [ i ] -> ranks.(i) <- probe probes.(i)
          | is ->
            let pool =
              match t.query_pool with
              | Some p -> p
              | None ->
                let p =
                  Hsq_util.Parallel.Pool.create
                    ~metrics:(Hsq_storage.Io_stats.registry stats)
                    ~workers:(domains - 1) ()
                in
                t.query_pool <- Some p;
                p
            in
            let idx = Array.of_list is in
            let got = Hsq_util.Parallel.Pool.map ?cancel pool (fun i -> probe probes.(i)) idx in
            Array.iteri (fun k i -> ranks.(i) <- got.(k)) idx);
          ranks
        end
      in
      let rho1 = Array.fold_left ( + ) 0 ranks in
      (ranks, float_of_int rho1 +. Stream_summary.rank_estimate ss z)
    in
    (* rank(z') for z' < z is at most rank(z), and at least rank(z) for
       z' > z — so each bisection step halves the per-partition windows
       too, and the one-block run caches make the tail probes free. *)
    let narrow ~left ranks =
      Array.iteri
        (fun i st ->
          let rank_z = ranks.(i) in
          if left then st.hi <- min st.hi rank_z else st.lo <- max st.lo rank_z)
        probes
    in
    (* Each bisection iteration's body runs in its own child span of the
       query root; the recursion happens after the iteration span closed,
       so iterations are siblings, not nested.  The deadline is checked
       between iterations (the probes of one iteration are also
       individually cancellable through the pool); a cut carries the
       current interval so the caller can clamp its best-so-far answer. *)
    let rec bisect ~parent u v =
      (match deadline_at with
      | Some d when Metrics.now_s () > d -> raise (Deadline_cut (u, v))
      | _ -> ());
      incr iterations;
      let run_iter iter_span =
        if v - u <= 1 then begin
          (* rank(u,T) <= r <= rank(v,T) is invariant; v is the smallest
             candidate whose rank can reach r — the Definition-1 answer —
             unless the estimate says u already covers r. *)
          let _, rho_u = estimate ?parent:iter_span u in
          `Done (if rho_u >= r then u else v)
        end
        else begin
          let z = u + ((v - u) / 2) in
          let ranks, rho = estimate ?parent:iter_span z in
          if r < rho -. tolerance then begin
            narrow ~left:true ranks;
            `Left z
          end
          else if r > rho +. tolerance then begin
            narrow ~left:false ranks;
            `Right z
          end
          else `Done z
        end
      in
      let decision =
        try
          match (tr, parent) with
          | Some trc, Some root ->
            Trace.with_child trc ~parent:root
              ~attrs:
                [
                  ("iter", string_of_int !iterations);
                  ("u", string_of_int u);
                  ("v", string_of_int v);
                ]
              "bisect"
              (fun sp -> run_iter (Some sp))
          | _ -> run_iter None
        with Hsq_util.Parallel.Pool.Cancelled -> raise (Deadline_cut (u, v))
      in
      match decision with
      | `Done z -> z
      | `Left z -> bisect ~parent u z
      | `Right z -> bisect ~parent z v
    in
    bisect ~parent u0 v0
  in
  (* Summaries for a retry after the active set changed underneath a
     quarantine: the full-set path supplies the engine's summary cache
     (the quarantine bumped the epoch, so the cached union rebuilds
     over the new active set for free on later queries too); subset
     paths rebuild over the surviving members. *)
  let refetch =
    match refresh with
    | Some f -> f
    | None ->
      fun () ->
        let act = List.filter (not_quarantined t) partitions in
        let ss = stream_summary t in
        (ss, Union_summary.build ~partitions:act ~stream:ss)
  in
  let quarantined_elems () =
    List.fold_left
      (fun acc p ->
        if Hsq_hist.Level_index.is_quarantined t.hist p then acc + Hsq_hist.Partition.size p
        else acc)
      0 partitions
  in
  (* Failure containment.  Every [Probe_failure] either quarantines its
     partition (shrinking the probe set) or advances its consecutive-
     failure count toward [quarantine_after], so the retry loop
     terminates; the cap is belt and braces.  A breaker-open device
     means the fault is not this partition's — answer from memory and
     leave healthy partitions alone. *)
  let max_retries = (List.length partitions * t.config.Config.quarantine_after) + 2 in
  (* Memory-only union over the query's full partition scope, including
     quarantined members: the last resort when quarantine has emptied
     the active view (see [quick_view] for why the in-memory summaries
     remain honest).  No extra widening — the summary covers the
     quarantined elements itself, wide windows and all. *)
  let full_scope_fallback () =
    let us = Union_summary.build ~partitions ~stream:(stream_summary t) in
    if Union_summary.size us = 0 then invalid_arg "Engine.accurate: no data";
    let rank = clamp_rank ~n:(Union_summary.n_total us) rank in
    let v = Union_summary.quick_select us ~rank in
    (v, `Device_open, rank_bound_of us ~rank v ~widen:0)
  in
  let run_query parent =
    let rec go tries pair =
      let ss, us = match pair with Some p -> p | None -> refetch () in
      let n = Union_summary.n_total us in
      if n = 0 then full_scope_fallback ()
      else begin
      let rank = clamp_rank ~n rank in
      let active = List.filter (not_quarantined t) partitions in
      let q = quarantined_elems () in
      (* [q] is re-read here rather than captured: a quarantine later in
         this iteration must widen the fallback's bound too. *)
      let finish_quick degradation =
        let v = Union_summary.quick_select us ~rank in
        (v, degradation, rank_bound_of us ~rank v ~widen:(quarantined_elems ()))
      in
      match attempt ~parent ss us active ~rank with
      | answer ->
        List.iter (Hsq_hist.Level_index.note_probe_success t.hist) active;
        let m = float_of_int (Stream_summary.stream_size ss) in
        let tolerance = tolerance_factor *. Stream_summary.eps2 ss *. m in
        let degradation = if q > 0 then `Quarantined q else `None in
        (* Honest bound the chaos oracle can check: the stopping band
           plus the stream estimate's own uncertainty (the bisection
           stops on an estimate that is exact over the probed history
           but ±ε₂·m over the stream, with integer-boundary slack). *)
        let estimate_slack = (Stream_summary.eps2 ss *. m) +. 2.0 in
        (answer, degradation, tolerance +. estimate_slack +. float_of_int q)
      | exception Deadline_cut (u, v) ->
        (* Best-so-far: the quick answer clamped into the surviving
           filter interval [u, v] (rank(u) <= rank <= rank(v) is the
           bisection invariant, so the clamp only helps). *)
        let qa = Union_summary.quick_select us ~rank in
        let best = if v >= u then max u (min v qa) else qa in
        (best, `Deadline, rank_bound_of us ~rank best ~widen:q)
      | exception Probe_failure (p, _msg) ->
        if
          Hsq_storage.Block_device.breaker_state t.dev = Hsq_storage.Breaker.Open
          || tries >= max_retries
        then finish_quick `Device_open
        else if
          Hsq_hist.Level_index.note_probe_failure t.hist p
            ~threshold:t.config.Config.quarantine_after
        then begin
          (* The active set changed: refetch the summaries.  If the
             quarantine just consumed the last element in view (empty
             stream, every partition bad), answer from the summaries
             still in hand — degraded to memory, bound widened by
             everything quarantined — rather than failing the query. *)
          let ((_, us') as pair') = refetch () in
          if Union_summary.n_total us' = 0 then finish_quick `Device_open
          else go (tries + 1) (Some pair')
        end
        else go (tries + 1) (Some (ss, us))
      end
    in
    go 0 summaries
  in
  let root_span = ref None in
  let answer, degradation, rank_error_bound =
    match tr with
    | Some trc ->
      Trace.with_span trc
        ~attrs:
          [
            ("rank", string_of_int rank);
            ("partitions", string_of_int (List.length partitions));
          ]
        "query.accurate"
        (fun sp ->
          root_span := Some sp;
          run_query (Some sp))
    | None -> run_query None
  in
  (match tr, !root_span with
  | Some trc, Some sp ->
    Trace.add_attr trc sp "iterations" (string_of_int !iterations);
    if degradation <> `None then
      Trace.add_attr trc sp "degradation" (degradation_label degradation)
  | _ -> ());
  Metrics.Histogram.observe em.accurate_hist (Metrics.now_s () -. tq0);
  Metrics.Histogram.observe em.bisect_hist (float_of_int !iterations);
  if degradation <> `None then em.degraded_total <- em.degraded_total + 1;
  let io = Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot stats) before in
  (answer, { io; iterations = !iterations; degradation; rank_error_bound; span = !root_span })

let accurate ?tolerance_factor ?deadline_ms t ~rank =
  accurate_over ?tolerance_factor ?deadline_ms ~summaries:(cached_summaries t)
    ~refresh:(fun () -> cached_summaries t)
    t
    ~partitions:(Hsq_hist.Level_index.partitions t.hist)
    ~rank

(* Inverse query: estimated rank of an arbitrary value in T.  The
   historical part is exact (summary-bounded binary searches); the
   stream part comes from SS, so the error is at most ~eps2*m. *)
let rank_of t v =
  let hist = Hsq_hist.Level_index.rank t.hist v in
  let ss = stream_summary t in
  hist + int_of_float (Float.round (Stream_summary.rank_estimate ss v))

(* Empirical CDF point: P(X <= v) over T. *)
let cdf t v =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.cdf: no data";
  float_of_int (rank_of t v) /. float_of_int n

(* Batched accurate queries: one summary build (the dominant in-memory
   cost) shared by all ranks. *)
let accurate_many ?tolerance_factor t ~ranks =
  let partitions = Hsq_hist.Level_index.partitions t.hist in
  (* The summary cache makes the per-query [cached_summaries] call O(1)
     between ingests, while still refreshing if a query in the batch
     quarantines a partition (epoch bump). *)
  List.map
    (fun rank ->
      accurate_over ?tolerance_factor ~summaries:(cached_summaries t)
        ~refresh:(fun () -> cached_summaries t)
        t ~partitions ~rank)
    ranks

(* phi-quantiles per Definition 1. *)
let rank_of_phi ~n phi =
  if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Engine: phi not in (0,1]";
  clamp_rank ~n (int_of_float (ceil (phi *. float_of_int n)))

let quantile t phi =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.quantile: no data";
  accurate t ~rank:(rank_of_phi ~n phi)

let quick_quantile t phi =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.quick_quantile: no data";
  quick t ~rank:(rank_of_phi ~n phi)

(* Windowed queries (Section 2.4): the window covers the last [w]
   archived time steps plus the live stream.  Only partition-aligned
   windows are answerable. *)
type window_error = Window_not_aligned of int list

let window_sizes t = Hsq_hist.Level_index.available_window_sizes t.hist

let with_window t ~window k =
  match Hsq_hist.Level_index.partitions_for_window t.hist window with
  | Some parts -> Ok (k parts)
  | None -> Error (Window_not_aligned (window_sizes t))

let window_total t ~window =
  with_window t ~window (fun parts ->
      List.fold_left (fun acc p -> acc + Hsq_hist.Partition.size p) (stream_size t) parts)

let accurate_window ?tolerance_factor ?deadline_ms t ~window ~rank =
  with_window t ~window (fun parts ->
      accurate_over ?tolerance_factor ?deadline_ms t ~partitions:parts ~rank)

let quick_window t ~window ~rank =
  with_window t ~window (fun parts -> quick_over t ~partitions:parts ~rank)

(* Historical range queries over archived steps [first, last] — the
   "compare against the same period in the past" use case of the
   introduction.  Purely historical: the live stream is excluded, so
   with the exact partition ranks the answers are near-exact. *)
type range_error = Range_not_aligned of (int * int) list

let with_range t ~first ~last k =
  match Hsq_hist.Level_index.partitions_for_range t.hist ~first ~last with
  | Some parts -> Ok (k parts)
  | None -> Error (Range_not_aligned (Hsq_hist.Level_index.partition_boundaries t.hist))

let range_total t ~first ~last =
  with_range t ~first ~last (fun parts ->
      List.fold_left (fun acc p -> acc + Hsq_hist.Partition.size p) 0 parts)

let accurate_range ?tolerance_factor t ~first ~last ~rank =
  with_range t ~first ~last (fun parts ->
      (* Build against an empty stream: the range is purely historical. *)
      let saved = t.gk in
      t.gk <- fresh_gk t.config;
      Fun.protect
        ~finally:(fun () -> t.gk <- saved)
        (fun () -> accurate_over ?tolerance_factor t ~partitions:parts ~rank))

let quantile_range t ~first ~last phi =
  match range_total t ~first ~last with
  | Error e -> Error e
  | Ok n ->
    if n = 0 then invalid_arg "Engine.quantile_range: empty range";
    accurate_range t ~first ~last ~rank:(rank_of_phi ~n phi)

let quantile_window t ~window phi =
  match window_total t ~window with
  | Error e -> Error e
  | Ok n ->
    if n = 0 then invalid_arg "Engine.quantile_window: empty window";
    accurate_window t ~window ~rank:(rank_of_phi ~n phi)

(* ------------------------------------------------------------------ *)
(* Durable ingest: the recovery manager.                               *)
(* ------------------------------------------------------------------ *)

type recovery_report = {
  replayed : int; (* WAL records re-applied (past any checkpoint) *)
  steps_reingested : int; (* End_step markers re-archived *)
  steps_skipped : int; (* End_step markers already in the warehouse *)
  checkpoint_used : bool;
  wal_tail : string option; (* why the log tail was floored, if it was *)
}

type durability_status = {
  wal_path : string;
  wal_start_seq : int;
  wal_next_seq : int;
  wal_pending : int;
  checkpoint_path : string;
  last_checkpoint_seq : int;
  since_checkpoint : int;
}

let device_file = "device.blocks"
let meta_file = "meta"
let wal_file = "wal.log"
let checkpoint_file = "checkpoint"

let durable_paths dir =
  ( Filename.concat dir device_file,
    Filename.concat dir meta_file,
    Filename.concat dir wal_file,
    Filename.concat dir checkpoint_file )

let store_paths ~dir = durable_paths dir

(* Adopt a checkpoint's frozen stream side.  A structurally invalid GK
   image means the file lied despite its checksum (or versions skewed):
   treat the checkpoint as absent, full replay is always correct. *)
let restore_from_checkpoint t c =
  match Hsq_sketch.Gk.deserialize c.Checkpoint.gk with
  | gk ->
    let len = Array.length c.Checkpoint.batch in
    let batch = Array.make (max 1024 len) 0 in
    Array.blit c.Checkpoint.batch 0 batch 0 len;
    t.gk <- gk;
    t.batch <- batch;
    t.batch_len <- len;
    true
  | exception Invalid_argument _ -> false

let open_or_recover config =
  let dir =
    match config.Config.wal_dir with
    | Some d -> d
    | None -> invalid_arg "Engine.open_or_recover: config.wal_dir not set"
  in
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg "Engine.open_or_recover: wal_dir is not a directory"
  end
  else Sys.mkdir dir 0o755;
  let device_path, meta_path, wal_path, ckpt_path = durable_paths dir in
  (* Warehouse first.  The sidecar is the commit record: without it the
     device file holds no committed state and is reinitialised. *)
  let t =
    if Sys.file_exists meta_path then begin
      let block_size = Meta.peek_block_size meta_path in
      let device = Hsq_storage.Block_device.open_file ~block_size ~path:device_path () in
      let stored, hist = Meta.load_hist ~device ~path:meta_path in
      (* Structural fields come from the sidecar (they describe the
         on-disk layout); durability settings are runtime policy and
         stay the caller's. *)
      let merged =
        {
          stored with
          Config.wal_dir = config.Config.wal_dir;
          wal_sync = config.Config.wal_sync;
          checkpoint_every = config.Config.checkpoint_every;
          query_domains = config.Config.query_domains;
        }
      in
      of_restored ~device merged hist
    end
    else begin
      if Sys.file_exists device_path then Sys.remove device_path;
      let device =
        Hsq_storage.Block_device.create_file ~block_size:config.Config.block_size
          ~path:device_path ()
      in
      create ~device config
    end
  in
  let stats = Hsq_storage.Block_device.stats t.dev in
  let wal, records, tail =
    if Sys.file_exists wal_path then
      Hsq_storage.Wal.open_existing ~sync:config.Config.wal_sync ~stats ~path:wal_path ()
    else
      ( Hsq_storage.Wal.create ~sync:config.Config.wal_sync ~stats ~path:wal_path ~start_seq:1
          (),
        [],
        Hsq_storage.Wal.Clean )
  in
  (* Checkpoint: usable only if its warehouse step count matches the
     warehouse we actually recovered — otherwise it froze a step that
     was since archived (or rolled back) and replay starts from seq 1
     of the current log, which is always correct. *)
  let steps_committed = Hsq_hist.Level_index.time_steps t.hist in
  let checkpoint_used, replay_after =
    match Checkpoint.load ~path:ckpt_path with
    | Ok (Some c) when c.Checkpoint.steps_done = steps_committed && restore_from_checkpoint t c
      ->
      (true, c.Checkpoint.seq)
    | Ok _ | Error _ -> (false, min_int)
  in
  let replayed = ref 0 and reingested = ref 0 and skipped = ref 0 in
  List.iter
    (fun (seq, record) ->
      if seq > replay_after then begin
        incr replayed;
        Hsq_storage.Io_stats.note_wal_replayed stats;
        match record with
        | Hsq_storage.Wal.Observe v -> apply_observe t v
        | Hsq_storage.Wal.End_step { step; count = _ } ->
          if step <= Hsq_hist.Level_index.time_steps t.hist then begin
            (* The step committed before the crash (sidecar written, WAL
               not yet rotated): drop the replayed batch, never archive
               twice. *)
            t.batch_len <- 0;
            t.gk <- fresh_gk t.config;
            incr skipped
          end
          else if t.batch_len = 0 then
            (* A marker with no surviving elements (damaged log):
               nothing to archive. *)
            incr skipped
          else begin
            let batch = Array.sub t.batch 0 t.batch_len in
            ignore (Hsq_hist.Level_index.add_batch t.hist batch);
            t.batch_len <- 0;
            t.gk <- fresh_gk t.config;
            save_meta t meta_path;
            incr reingested
          end
      end)
    records;
  (* The log is deliberately left un-rotated after replay: committed
     markers replay as skips, so a crash during recovery just recovers
     again.  The next end_time_step rotates it. *)
  if not (Sys.file_exists meta_path) then save_meta t meta_path;
  t.durable <-
    Some
      {
        wal;
        meta_path;
        ckpt_path;
        checkpoint_every = config.Config.checkpoint_every;
        since_checkpoint = 0;
        last_checkpoint_seq = (if checkpoint_used then replay_after else 0);
      };
  (* Recovery depth stays readable after the report is dropped: status
     tooling (hsq status --health, the serve health verb) shows how much
     replay the last open needed, per engine registry — and therefore
     per shard once engines are grouped. *)
  let reg = Hsq_storage.Io_stats.registry stats in
  Metrics.Gauge.set
    (Metrics.gauge ~help:"WAL records replayed by the last open" reg "hsq_recovery_wal_replayed")
    (float_of_int !replayed);
  Metrics.Gauge.set
    (Metrics.gauge ~help:"1 when the last open restored a sketch checkpoint" reg
       "hsq_recovery_checkpoint_used")
    (if checkpoint_used then 1.0 else 0.0);
  Metrics.Gauge.set
    (Metrics.gauge ~help:"Time steps re-archived by the last open" reg
       "hsq_recovery_steps_reingested")
    (float_of_int !reingested);
  ( t,
    {
      replayed = !replayed;
      steps_reingested = !reingested;
      steps_skipped = !skipped;
      checkpoint_used;
      wal_tail =
        (match tail with Hsq_storage.Wal.Clean -> None | Hsq_storage.Wal.Torn why -> Some why);
    } )

let shutdown_pool t =
  match t.query_pool with
  | None -> ()
  | Some p ->
    t.query_pool <- None;
    Hsq_util.Parallel.Pool.shutdown p

let is_closed t = t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    shutdown_pool t;
    (match t.durable with None -> () | Some d -> Hsq_storage.Wal.close d.wal);
    Hsq_storage.Block_device.close t.dev
  end

(* Simulated power cut (crash harness): drop what the WAL had not
   flushed and release the handles — block writes are synchronous in
   this model, so only the WAL tail is at stake. *)
let crash t =
  if not t.closed then begin
    t.closed <- true;
    shutdown_pool t;
    (match t.durable with None -> () | Some d -> Hsq_storage.Wal.crash d.wal);
    Hsq_storage.Block_device.close t.dev
  end

let durability_status t =
  match t.durable with
  | None -> None
  | Some d ->
    Some
      {
        wal_path = Hsq_storage.Wal.path d.wal;
        wal_start_seq = Hsq_storage.Wal.start_seq d.wal;
        wal_next_seq = Hsq_storage.Wal.next_seq d.wal;
        wal_pending = Hsq_storage.Wal.pending_records d.wal;
        checkpoint_path = d.ckpt_path;
        last_checkpoint_seq = d.last_checkpoint_seq;
        since_checkpoint = d.since_checkpoint;
      }

(* Structured fault injection on the engine's own WAL (tests). *)
let set_wal_injector t inj =
  match t.durable with None -> () | Some d -> Hsq_storage.Wal.set_injector d.wal inj
