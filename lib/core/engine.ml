(* The integrated historical + streaming quantile engine — the paper's
   primary contribution (Sections 2.1-2.3).

   Lifecycle per time step (Figure 1):
     observe       -- every stream element updates the GK sketch and is
                      spooled into the current batch;
     end_time_step -- the batch is sorted and loaded into the historical
                      level index (Algorithm 3) and the stream sketch is
                      reset (Algorithm 4, StreamReset).

   Queries:
     quick    -- Algorithm 5, in-memory only, O(eps*N) rank error;
     accurate -- Algorithms 6-8, a value-domain binary search narrowed
                 by summaries with disk rank probes, O(eps*m) error. *)

type t = {
  config : Config.t;
  dev : Hsq_storage.Block_device.t;
  hist : Hsq_hist.Level_index.t;
  mutable gk : Hsq_sketch.Gk.t;
  mutable batch : int array;
  mutable batch_len : int;
}

type query_report = {
  io : Hsq_storage.Io_stats.counters;
  iterations : int; (* value-domain bisection steps (Algorithm 8 calls) *)
  degraded : bool; (* an unrecoverable device error aborted the disk
                      probes and the answer came from the in-memory
                      quick path (Algorithm 5) instead *)
}

let fresh_gk config =
  match Config.gk_epsilon config with
  | Some eps -> Hsq_sketch.Gk.create ~epsilon:eps
  | None -> (
    match Config.stream_words config with
    | Some words -> Hsq_sketch.Gk.create_capped ~words
    | None -> assert false)

let create ?device config =
  let dev =
    match device with
    | Some d -> d
    | None -> Hsq_storage.Block_device.create_memory ~block_size:config.Config.block_size ()
  in
  let hist =
    Hsq_hist.Level_index.create ?sort_memory:config.Config.sort_memory
      ?sort_domains:config.Config.sort_domains ~kappa:config.Config.kappa
      ~beta1:(Config.beta1 config) dev
  in
  { config; dev; hist; gk = fresh_gk config; batch = Array.make 1024 0; batch_len = 0 }

(* Recovery path (Persist): adopt a restored historical index.  The
   stream side starts empty — the live stream is volatile by design. *)
let of_restored ~device config hist =
  { config; dev = device; hist; gk = fresh_gk config; batch = Array.make 1024 0; batch_len = 0 }

let config t = t.config
let device t = t.dev
let hist t = t.hist
let stream_sketch t = t.gk
let stream_size t = Hsq_sketch.Gk.count t.gk
let hist_size t = Hsq_hist.Level_index.total_elements t.hist
let total_size t = hist_size t + stream_size t
let time_steps t = Hsq_hist.Level_index.time_steps t.hist

(* eps2 as the engine currently provides it (2x the GK sketch's eps —
   see Config); eps = 4*eps2 inverts Algorithm 1. *)
let eps2 t = 2.0 *. Hsq_sketch.Gk.epsilon t.gk
let epsilon t = 4.0 *. eps2 t

let memory_words t =
  Hsq_hist.Level_index.memory_words t.hist + Hsq_sketch.Gk.memory_words t.gk

(* StreamUpdate (Algorithm 4) + batch spooling. *)
let observe t v =
  Hsq_sketch.Gk.insert t.gk v;
  if t.batch_len = Array.length t.batch then begin
    let bigger = Array.make (2 * t.batch_len) 0 in
    Array.blit t.batch 0 bigger 0 t.batch_len;
    t.batch <- bigger
  end;
  t.batch.(t.batch_len) <- v;
  t.batch_len <- t.batch_len + 1

(* Load the batch into the warehouse and reset the stream sketch
   (HistUpdate + StreamReset). *)
let end_time_step t =
  if t.batch_len = 0 then invalid_arg "Engine.end_time_step: empty batch";
  let batch = Array.sub t.batch 0 t.batch_len in
  let report = Hsq_hist.Level_index.add_batch t.hist batch in
  t.batch_len <- 0;
  t.gk <- fresh_gk t.config;
  report

let ingest_batch t batch =
  Array.iter (observe t) batch;
  end_time_step t

(* Retention passthrough: keep only the last [keep_steps] archived
   steps (whole partitions; see Level_index.expire). *)
let expire t ~keep_steps = Hsq_hist.Level_index.expire t.hist ~keep_steps

let stream_summary t = Stream_summary.extract t.gk

let union_summary ?partitions t =
  let partitions =
    match partitions with Some ps -> ps | None -> Hsq_hist.Level_index.partitions t.hist
  in
  Union_summary.build ~partitions ~stream:(stream_summary t)

let clamp_rank ~n r = if r < 1 then 1 else if r > n then n else r

(* Algorithm 5. *)
let quick_over t ~partitions ~rank =
  let us = Union_summary.build ~partitions ~stream:(stream_summary t) in
  let n = Union_summary.n_total us in
  if n = 0 then invalid_arg "Engine.quick: no data";
  Union_summary.quick_select us ~rank:(clamp_rank ~n rank)

let quick t ~rank = quick_over t ~partitions:(Hsq_hist.Level_index.partitions t.hist) ~rank

(* Algorithms 6-8: bisect the value domain between the filters, probing
   each partition with a summary-bounded (and progressively narrowed)
   binary search for the exact historical rank rho1, and estimating the
   stream rank rho2 from SS.  Stops inside the +-eps*m band, or at a
   width-1 interval, where v is the answer when the estimate at u still
   falls short of r (rank(u) <= r <= rank(v) is invariant). *)
type probe_state = {
  partition : Hsq_hist.Partition.t;
  mutable lo : int; (* rank(z) within this partition is known to be in [lo, hi] *)
  mutable hi : int;
}

let accurate_over ?(tolerance_factor = 0.5) ?summaries t ~partitions ~rank =
  let ss, us =
    match summaries with
    | Some pair -> pair
    | None ->
      let ss = stream_summary t in
      (ss, Union_summary.build ~partitions ~stream:ss)
  in
  let n = Union_summary.n_total us in
  if n = 0 then invalid_arg "Engine.accurate: no data";
  let rank = clamp_rank ~n rank in
  let stats = Hsq_storage.Block_device.stats t.dev in
  let before = Hsq_storage.Io_stats.snapshot stats in
  let u0, v0 = Union_summary.filters us ~rank in
  let probes =
    List.map
      (fun p ->
        let lo, hi =
          Hsq_hist.Partition_summary.search_window (Hsq_hist.Partition.summary p) ~u:u0 ~v:v0
        in
        { partition = p; lo; hi })
      partitions
  in
  (* Stopping band of Algorithm 8, as a multiple of eps2*m.  The paper
     stops within +-eps*m (factor 4); we default to the tighter factor
     1/2 — the rho estimate is already that accurate, the extra
     bisection steps mostly hit cached blocks, and the answer improves
     ~4x.  This knob is the accuracy/disk-access axis of the tradeoff
     space the paper's conclusion discusses; the ablation bench sweeps
     it. *)
  let m = float_of_int (Stream_summary.stream_size ss) in
  let tolerance = tolerance_factor *. Stream_summary.eps2 ss *. m in
  let r = float_of_int rank in
  let iterations = ref 0 in
  (* rho(z) = exact historical rank (lines 2-7) + estimated stream rank
     (lines 8-10).  Returns the per-partition ranks so the caller can
     narrow the next iteration's search windows. *)
  let estimate z =
    let ranks =
      List.map
        (fun st ->
          if st.lo >= st.hi then st.lo
          else
            Hsq_storage.Run.rank_between (Hsq_hist.Partition.run st.partition) ~lo:st.lo
              ~hi:st.hi z)
        probes
    in
    let rho1 = List.fold_left ( + ) 0 ranks in
    (ranks, float_of_int rho1 +. Stream_summary.rank_estimate ss z)
  in
  (* rank(z') for z' < z is at most rank(z), and at least rank(z) for
     z' > z — so each bisection step halves the per-partition windows
     too, and the one-block run caches make the tail probes free. *)
  let narrow ~left ranks =
    List.iter2
      (fun st rank_z -> if left then st.hi <- min st.hi rank_z else st.lo <- max st.lo rank_z)
      probes ranks
  in
  let rec bisect u v =
    incr iterations;
    if v - u <= 1 then begin
      (* rank(u,T) <= r <= rank(v,T) is invariant; v is the smallest
         candidate whose rank can reach r — the Definition-1 answer —
         unless the estimate says u already covers r. *)
      let _, rho_u = estimate u in
      if rho_u >= r then u else v
    end
    else begin
      let z = u + ((v - u) / 2) in
      let ranks, rho = estimate z in
      if r < rho -. tolerance then begin
        narrow ~left:true ranks;
        bisect u z
      end
      else if r > rho +. tolerance then begin
        narrow ~left:false ranks;
        bisect z v
      end
      else z
    end
  in
  (* Graceful degradation: if a partition probe hits an unrecoverable
     device error (the bounded retries are exhausted inside
     Block_device.read_block), answer from the in-memory union summary
     instead of failing the query.  The quick answer is within the
     Lemma 3 bound — strictly worse than O(eps*m) but still bounded —
     and the report says so via [degraded]. *)
  let answer, degraded =
    try (bisect u0 v0, false)
    with Hsq_storage.Block_device.Device_error _ ->
      (Union_summary.quick_select us ~rank, true)
  in
  let io = Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot stats) before in
  (answer, { io; iterations = !iterations; degraded })

let accurate ?tolerance_factor t ~rank =
  accurate_over ?tolerance_factor t ~partitions:(Hsq_hist.Level_index.partitions t.hist) ~rank

(* Inverse query: estimated rank of an arbitrary value in T.  The
   historical part is exact (summary-bounded binary searches); the
   stream part comes from SS, so the error is at most ~eps2*m. *)
let rank_of t v =
  let hist = Hsq_hist.Level_index.rank t.hist v in
  let ss = stream_summary t in
  hist + int_of_float (Float.round (Stream_summary.rank_estimate ss v))

(* Empirical CDF point: P(X <= v) over T. *)
let cdf t v =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.cdf: no data";
  float_of_int (rank_of t v) /. float_of_int n

(* Batched accurate queries: one summary build (the dominant in-memory
   cost) shared by all ranks. *)
let accurate_many ?tolerance_factor t ~ranks =
  let partitions = Hsq_hist.Level_index.partitions t.hist in
  let ss = stream_summary t in
  let us = Union_summary.build ~partitions ~stream:ss in
  List.map
    (fun rank -> accurate_over ?tolerance_factor ~summaries:(ss, us) t ~partitions ~rank)
    ranks

(* phi-quantiles per Definition 1. *)
let rank_of_phi ~n phi =
  if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Engine: phi not in (0,1]";
  clamp_rank ~n (int_of_float (ceil (phi *. float_of_int n)))

let quantile t phi =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.quantile: no data";
  accurate t ~rank:(rank_of_phi ~n phi)

let quick_quantile t phi =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.quick_quantile: no data";
  quick t ~rank:(rank_of_phi ~n phi)

(* Windowed queries (Section 2.4): the window covers the last [w]
   archived time steps plus the live stream.  Only partition-aligned
   windows are answerable. *)
type window_error = Window_not_aligned of int list

let window_sizes t = Hsq_hist.Level_index.available_window_sizes t.hist

let with_window t ~window k =
  match Hsq_hist.Level_index.partitions_for_window t.hist window with
  | Some parts -> Ok (k parts)
  | None -> Error (Window_not_aligned (window_sizes t))

let window_total t ~window =
  with_window t ~window (fun parts ->
      List.fold_left (fun acc p -> acc + Hsq_hist.Partition.size p) (stream_size t) parts)

let accurate_window t ~window ~rank =
  with_window t ~window (fun parts -> accurate_over t ~partitions:parts ~rank)

let quick_window t ~window ~rank =
  with_window t ~window (fun parts -> quick_over t ~partitions:parts ~rank)

(* Historical range queries over archived steps [first, last] — the
   "compare against the same period in the past" use case of the
   introduction.  Purely historical: the live stream is excluded, so
   with the exact partition ranks the answers are near-exact. *)
type range_error = Range_not_aligned of (int * int) list

let with_range t ~first ~last k =
  match Hsq_hist.Level_index.partitions_for_range t.hist ~first ~last with
  | Some parts -> Ok (k parts)
  | None -> Error (Range_not_aligned (Hsq_hist.Level_index.partition_boundaries t.hist))

let range_total t ~first ~last =
  with_range t ~first ~last (fun parts ->
      List.fold_left (fun acc p -> acc + Hsq_hist.Partition.size p) 0 parts)

let accurate_range ?tolerance_factor t ~first ~last ~rank =
  with_range t ~first ~last (fun parts ->
      (* Build against an empty stream: the range is purely historical. *)
      let saved = t.gk in
      t.gk <- fresh_gk t.config;
      Fun.protect
        ~finally:(fun () -> t.gk <- saved)
        (fun () -> accurate_over ?tolerance_factor t ~partitions:parts ~rank))

let quantile_range t ~first ~last phi =
  match range_total t ~first ~last with
  | Error e -> Error e
  | Ok n ->
    if n = 0 then invalid_arg "Engine.quantile_range: empty range";
    accurate_range t ~first ~last ~rank:(rank_of_phi ~n phi)

let quantile_window t ~window phi =
  match window_total t ~window with
  | Error e -> Error e
  | Ok n ->
    if n = 0 then invalid_arg "Engine.quantile_window: empty window";
    accurate_window t ~window ~rank:(rank_of_phi ~n phi)
