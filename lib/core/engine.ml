(* The integrated historical + streaming quantile engine — the paper's
   primary contribution (Sections 2.1-2.3).

   Lifecycle per time step (Figure 1):
     observe       -- every stream element updates the GK sketch and is
                      spooled into the current batch;
     end_time_step -- the batch is sorted and loaded into the historical
                      level index (Algorithm 3) and the stream sketch is
                      reset (Algorithm 4, StreamReset).

   Queries:
     quick    -- Algorithm 5, in-memory only, O(eps*N) rank error;
     accurate -- Algorithms 6-8, a value-domain binary search narrowed
                 by summaries with disk rank probes, O(eps*m) error. *)

(* Durable-ingest state (Engine.open_or_recover): the write-ahead log
   making the stream side R crash-safe, plus sketch-checkpoint
   bookkeeping.  [None] = the stream is volatile, as in the paper. *)
module Metrics = Hsq_obs.Metrics
module Trace = Hsq_obs.Trace

(* Query-path observability.  The quick path runs in ~100ns out of the
   summary cache, so its counters must stay a single machine operation:
   they are [Atomic.t] ints (PR 4 shipped them as plain ints under a
   single-submitter contract; concurrent ingest ended that contract, so
   increments now race the exporter and each other) exported pull-style
   through [Metrics.counter_fn].  Latency on the quick path is sampled
   1-in-64 (a gettimeofday pair costs ~half the whole query); the
   accurate path is ms-scale and always timed. *)
type engine_metrics = {
  quick_total : int Atomic.t;
  accurate_total : int Atomic.t;
  sc_hits : int Atomic.t; (* summary-cache (us_cache) hits *)
  sc_misses : int Atomic.t;
  degraded_total : int Atomic.t;
  quick_hist : Metrics.Histogram.t;
  accurate_hist : Metrics.Histogram.t;
  bisect_hist : Metrics.Histogram.t; (* bisection iterations per accurate query *)
}

let quick_sample_mask = 63

let make_engine_metrics dev =
  let r = Hsq_storage.Io_stats.registry (Hsq_storage.Block_device.stats dev) in
  let em =
    {
      quick_total = Atomic.make 0;
      accurate_total = Atomic.make 0;
      sc_hits = Atomic.make 0;
      sc_misses = Atomic.make 0;
      degraded_total = Atomic.make 0;
      quick_hist =
        Metrics.histogram ~help:"Quick query latency (sampled 1-in-64)" r
          "hsq_query_quick_seconds";
      accurate_hist = Metrics.histogram ~help:"Accurate query latency" r "hsq_query_accurate_seconds";
      bisect_hist =
        Metrics.histogram ~help:"Bisection iterations per accurate query" ~start:1.0 ~factor:2.0
          ~buckets:10 r "hsq_query_bisect_iterations";
    }
  in
  Metrics.counter_fn ~help:"Quick queries served" r "hsq_query_quick_total" (fun () ->
      Atomic.get em.quick_total);
  Metrics.counter_fn ~help:"Accurate queries served" r "hsq_query_accurate_total" (fun () ->
      Atomic.get em.accurate_total);
  Metrics.counter_fn ~help:"Union-summary cache hits" r "hsq_query_summary_cache_hits_total"
    (fun () -> Atomic.get em.sc_hits);
  Metrics.counter_fn ~help:"Union-summary cache misses" r "hsq_query_summary_cache_misses_total"
    (fun () -> Atomic.get em.sc_misses);
  Metrics.counter_fn ~help:"Accurate queries degraded to the quick path" r
    "hsq_query_degraded_total" (fun () -> Atomic.get em.degraded_total);
  em

type durability = {
  wal : Hsq_storage.Wal.t;
  meta_path : string; (* warehouse sidecar — the rollover commit record *)
  ckpt_path : string; (* sketch checkpoint file *)
  checkpoint_every : int; (* WAL records between checkpoints; 0 = never *)
  mutable since_checkpoint : int;
  mutable last_checkpoint_seq : int; (* 0 = no live checkpoint *)
}

(* One concurrent ingest lane (Config.ingest_domains > 1, DESIGN.md §15):
   a bounded local buffer of acknowledged elements plus, when durable,
   this lane's own WAL appender (lane 0 shares the engine's main log;
   lanes 1..D-1 get wal-<d>.log files in the same directory).  A lane's
   lock covers its WAL append and its buffer, so the acknowledgement
   order within a lane is exactly its log order; the sketch is touched
   only on hand-off, under the engine-wide propagation lock, once per
   [Config.ingest_batch] elements instead of once per element.  The
   [observed] / [handoffs] fields are per-lane accumulators summed at
   metric export — each is written by one lane at a time (under its
   lock), so the hot path shares no counter cache line across lanes. *)
type lane = {
  lane_wal : Hsq_storage.Wal.t option;
  lane_lock : Mutex.t;
  mutable lbuf : int array;
  mutable llen : int;
  mutable observed : int;
  mutable handoffs : int;
}

type t = {
  config : Config.t;
  dev : Hsq_storage.Block_device.t;
  hist : Hsq_hist.Level_index.t;
  mutable gk : Stream_sketch.t;
  mutable batch : int array;
  mutable batch_len : int;
  mutable durable : durability option;
  (* Cached historical aggregate keyed by the level index's epoch: the
     historical side of TS only changes at end_time_step / merge /
     expire / recovery, so queries reuse the merged summary bounds and
     only pay for the fresh stream summary.  (epoch, aggregate); None
     until the first full-set query after a mutation. *)
  mutable hist_cache : (int * Union_summary.hist_agg) option;
  (* The fully built (stream summary, union summary) pair, keyed by
     (hist epoch, GK insert count): the sketch mutates only on insert
     (count strictly grows within a step) and end_time_step both resets
     it and bumps the epoch, so an unchanged key means an unchanged TS.
     Repeated queries between ingests then skip even the stream
     extraction and the merge. *)
  mutable us_cache : (int * int * (Stream_summary.t * Union_summary.t)) option;
  (* Persistent worker pool for the parallel accurate-query probes,
     spawned on the first query when [config.query_domains] > 1 (the
     pool holds query_domains - 1 workers; the querying domain is the
     remaining lane).  [close] joins it. *)
  mutable query_pool : Hsq_util.Parallel.Pool.t option;
  (* Concurrent ingest lanes; [||] = the classic single-writer engine
     (every existing path untouched, zero locking).  Non-empty only when
     [config.ingest_domains] > 1.  Threading contract: [observe_domain]
     may be called from any thread; everything else — queries,
     [end_time_step], [checkpoint_now], [close] — stays single-submitter
     (one "engine thread" at a time).  Lock order everywhere: lane locks
     (ascending index) before [prop_lock], never the reverse. *)
  mutable lanes : lane array;
  (* Serializes batch hand-offs into [gk]/[batch] against each other and
     against query-side reads of the sketch.  Taken once per batch, not
     per element. *)
  prop_lock : Mutex.t;
  metrics : engine_metrics;
  (* Tracing is opt-in per engine (set_tracer); mirrored onto the
     device's Io_stats so WAL/merge/checkpoint sites pick it up. *)
  mutable tracer : Trace.t option;
  (* Set by the first close/crash; later close/crash/checkpoint_now
     calls become no-ops so overlapping shutdown paths (signal handler
     + drain, test teardown + explicit close) are safe. *)
  mutable closed : bool;
}

(* How far an answer fell from the full O(eps*m) contract, in order of
   increasing severity.  `Quarantined carries the number of elements
   the excluded partitions hold — the bound widening. *)
type degradation =
  [ `None | `Quarantined of int | `Deadline | `Device_open ]

type query_report = {
  io : Hsq_storage.Io_stats.counters;
  iterations : int; (* value-domain bisection steps (Algorithm 8 calls) *)
  degradation : degradation;
  rank_error_bound : float; (* upper bound on |rank(answer) - rank|
                               under the degradation above *)
  span : Trace.span option; (* the query's root trace span when tracing
                               is on (set_tracer); None otherwise *)
}

let degradation_label : degradation -> string = function
  | `None -> "none"
  | `Quarantined _ -> "quarantined"
  | `Deadline -> "deadline"
  | `Device_open -> "device_open"

(* Install the ingest lanes and their pull-style metrics.  [wals.(d)] is
   lane d's appender (lane 0's entry must be the engine's main WAL for a
   durable engine, or None for a volatile one).  The metric closures
   read [t.lanes] through [t], so re-installation (volatile lanes built
   by [create], replaced with durable ones by [open_or_recover]) keeps
   the registered closures accurate; the sums are racy reads of per-lane
   ints — possibly a few elements stale, never torn. *)
let install_lanes t wals =
  t.lanes <-
    Array.map
      (fun w ->
        {
          lane_wal = w;
          lane_lock = Mutex.create ();
          lbuf = Array.make (max 16 t.config.Config.ingest_batch) 0;
          llen = 0;
          observed = 0;
          handoffs = 0;
        })
      wals;
  let r = Hsq_storage.Io_stats.registry (Hsq_storage.Block_device.stats t.dev) in
  Metrics.counter_fn ~help:"Elements acknowledged through ingest lanes" r
    "hsq_ingest_observed_total" (fun () ->
      Array.fold_left (fun acc ln -> acc + ln.observed) 0 t.lanes);
  Metrics.counter_fn ~help:"Batch hand-offs into the stream sketch" r "hsq_ingest_handoffs_total"
    (fun () -> Array.fold_left (fun acc ln -> acc + ln.handoffs) 0 t.lanes);
  Metrics.gauge_fn ~help:"Acknowledged elements buffered in ingest lanes" r
    "hsq_ingest_buffered" (fun () ->
      float_of_int (Array.fold_left (fun acc ln -> acc + ln.llen) 0 t.lanes))

(* The sketch kind is config (runtime policy), but operators read it
   back through the metrics surface, so each engine registers it as a
   0/1 gauge alongside its other pull-style metrics. *)
let register_sketch_metric t =
  Metrics.gauge_fn ~help:"Stream sketch kind (0 = GK, 1 = KLL)"
    (Hsq_storage.Io_stats.registry (Hsq_storage.Block_device.stats t.dev))
    "hsq_stream_sketch_kll"
    (fun () -> match Stream_sketch.kind t.gk with `Kll -> 1.0 | `Gk -> 0.0)

let fresh_gk config =
  let kind = config.Config.stream_sketch in
  match Config.gk_epsilon config with
  | Some eps -> Stream_sketch.create ~kind ~epsilon:eps ()
  | None -> (
    match Config.stream_words config with
    | Some words -> Stream_sketch.create_capped ~kind ~words ()
    | None -> assert false)

let create ?device config =
  let dev =
    match device with
    | Some d -> d
    | None -> Hsq_storage.Block_device.create_memory ~block_size:config.Config.block_size ()
  in
  let hist =
    Hsq_hist.Level_index.create ?sort_memory:config.Config.sort_memory
      ?sort_domains:config.Config.sort_domains ~kappa:config.Config.kappa
      ~beta1:(Config.beta1 config) dev
  in
  let t =
    {
      config;
      dev;
      hist;
      gk = fresh_gk config;
      batch = Array.make 1024 0;
      batch_len = 0;
      durable = None;
      hist_cache = None;
      us_cache = None;
      query_pool = None;
      lanes = [||];
      prop_lock = Mutex.create ();
      metrics = make_engine_metrics dev;
      tracer = None;
      closed = false;
    }
  in
  if config.Config.ingest_domains > 1 then
    install_lanes t (Array.make config.Config.ingest_domains None);
  register_sketch_metric t;
  t

(* Recovery path (Persist): adopt a restored historical index.  The
   stream side starts empty — [open_or_recover] refills it from the
   checkpoint and the WAL when durability is on. *)
let of_restored ~device config hist =
  {
    config;
    dev = device;
    hist;
    gk = fresh_gk config;
    batch = Array.make 1024 0;
    batch_len = 0;
    durable = None;
    hist_cache = None;
    us_cache = None;
    query_pool = None;
    lanes = [||];
    prop_lock = Mutex.create ();
    metrics = make_engine_metrics device;
    tracer = None;
    closed = false;
  }
  |> fun t ->
  register_sketch_metric t;
  t

let config t = t.config
let device t = t.dev

(* The engine's metric registry — the device's, where every subsystem
   below (Io_stats, WAL, level index, buffer pool) registers too. *)
let metrics t = Hsq_storage.Io_stats.registry (Hsq_storage.Block_device.stats t.dev)

let set_tracer t tr =
  t.tracer <- tr;
  Hsq_storage.Io_stats.set_tracer (Hsq_storage.Block_device.stats t.dev) tr

let tracer t = t.tracer
let hist t = t.hist
let stream_sketch t = t.gk
let stream_size t = Stream_sketch.count t.gk
let hist_size t = Hsq_hist.Level_index.total_elements t.hist
let total_size t = hist_size t + stream_size t
let time_steps t = Hsq_hist.Level_index.time_steps t.hist

(* eps2 as the engine currently provides it (2x the GK sketch's eps —
   see Config); eps = 4*eps2 inverts Algorithm 1. *)
let eps2 t = 2.0 *. Stream_sketch.epsilon t.gk
let epsilon t = 4.0 *. eps2 t

let memory_words t =
  Hsq_hist.Level_index.memory_words t.hist + Stream_sketch.memory_words t.gk

(* StreamUpdate (Algorithm 4) + batch spooling, without the WAL — the
   in-memory effect of one element, shared by live ingest and replay. *)
let apply_observe t v =
  Stream_sketch.insert t.gk v;
  if t.batch_len = Array.length t.batch then begin
    let bigger = Array.make (2 * t.batch_len) 0 in
    Array.blit t.batch 0 bigger 0 t.batch_len;
    t.batch <- bigger
  end;
  t.batch.(t.batch_len) <- v;
  t.batch_len <- t.batch_len + 1

(* ------------------------------------------------------------------ *)
(* Concurrent ingest lanes (DESIGN.md §15).                            *)
(* ------------------------------------------------------------------ *)

(* Run [f] with the propagation lock held when lanes exist; a straight
   call on a single-writer engine, so the classic paths pay nothing. *)
let with_prop t f =
  if Array.length t.lanes = 0 then f ()
  else begin
    Mutex.lock t.prop_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.prop_lock) f
  end

(* Hand a lane's buffered run into the sketch and the batch spool.
   Caller holds [ln.lane_lock].  The sort happens outside the
   propagation lock (it is the expensive part and touches only lane
   state); the merge into [gk] and the spool append happen under it, so
   a query never sees a half-applied batch — the propagated prefix is
   the snapshot.  [since_checkpoint] moves here, once per batch: the
   lane path never checkpoints inline (that would need every other
   lane's lock while holding this one — a deadlock order violation);
   an engine-thread caller picks the flag up via [checkpoint_if_due]. *)
let propagate_locked t ln =
  if ln.llen > 0 then begin
    let b = Array.sub ln.lbuf 0 ln.llen in
    ln.llen <- 0;
    Array.sort Int.compare b;
    let k = Array.length b in
    Mutex.lock t.prop_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.prop_lock)
      (fun () ->
        Stream_sketch.insert_sorted_batch t.gk b;
        let need = t.batch_len + k in
        if need > Array.length t.batch then begin
          let cap = ref (max 1024 (Array.length t.batch)) in
          while !cap < need do
            cap := 2 * !cap
          done;
          let bigger = Array.make !cap 0 in
          Array.blit t.batch 0 bigger 0 t.batch_len;
          t.batch <- bigger
        end;
        Array.blit b 0 t.batch t.batch_len k;
        t.batch_len <- need;
        ln.handoffs <- ln.handoffs + 1;
        match t.durable with
        | Some d -> d.since_checkpoint <- d.since_checkpoint + k
        | None -> ())
  end

(* Engine-thread only: take every lane lock in index order (blocking
   in-flight observes), drain every buffer into the sketch, and run [f]
   with ingest fully fenced — the epoch-fenced seal-and-drain that makes
   rollover, checkpoints, and range queries see one well-defined prefix
   of each lane.  A straight call on a single-writer engine. *)
let with_sealed_lanes t f =
  let lanes = t.lanes in
  if Array.length lanes = 0 then f ()
  else begin
    Array.iter (fun ln -> Mutex.lock ln.lane_lock) lanes;
    Fun.protect
      ~finally:(fun () -> Array.iter (fun ln -> Mutex.unlock ln.lane_lock) lanes)
      (fun () ->
        Array.iter (fun ln -> propagate_locked t ln) lanes;
        f ())
  end

(* Make every acknowledged element visible to queries (drain all lane
   buffers).  Engine-thread only, like all seal operations. *)
let flush_ingest t = with_sealed_lanes t (fun () -> ())

let ingest_domains t = max 1 (Array.length t.lanes)
let buffered_ingest t = Array.fold_left (fun acc ln -> acc + ln.llen) 0 t.lanes

(* Freeze the stream side at the WAL's last acknowledged sequence
   number.  Every lane's log is synced first so the checkpoint never
   covers records that could still be lost — otherwise recovery would
   trust state whose log suffix vanished with the buffer cache.  For a
   multi-lane engine the caller holds the seal (all lane locks), so the
   buffers are empty and the per-lane cut vector is exact. *)
let write_checkpoint_impl t d =
  Array.iter
    (fun ln -> match ln.lane_wal with Some w when w != d.wal -> Hsq_storage.Wal.sync w | _ -> ())
    t.lanes;
  Hsq_storage.Wal.sync d.wal;
  let lane_seqs =
    if Array.length t.lanes <= 1 then [||]
    else
      Array.init
        (Array.length t.lanes - 1)
        (fun i ->
          match t.lanes.(i + 1).lane_wal with Some w -> Hsq_storage.Wal.last_seq w | None -> 0)
  in
  let c =
    {
      Checkpoint.seq = Hsq_storage.Wal.last_seq d.wal;
      steps_done = Hsq_hist.Level_index.time_steps t.hist;
      batch = Array.sub t.batch 0 t.batch_len;
      gk = Stream_sketch.serialize t.gk;
      lane_seqs;
    }
  in
  Checkpoint.save ~path:d.ckpt_path c;
  Hsq_storage.Io_stats.note_checkpoint (Hsq_storage.Block_device.stats t.dev);
  d.last_checkpoint_seq <- c.Checkpoint.seq;
  d.since_checkpoint <- 0

let write_checkpoint t d =
  match t.tracer with
  | Some tr -> Trace.with_span tr "checkpoint" (fun _ -> write_checkpoint_impl t d)
  | None -> write_checkpoint_impl t d

(* No-op once closed: the WAL channel is gone, and a post-close
   checkpoint (e.g. a drain path racing a signal handler) must not
   raise on it. *)
let checkpoint_now t =
  if not t.closed then
    match t.durable with
    | None -> ()
    | Some d -> with_sealed_lanes t (fun () -> write_checkpoint t d)

(* The multi-lane replacement for the single-writer path's inline
   auto-checkpoint: lanes only mark checkpoint debt (see
   [propagate_locked]); the engine thread settles it between requests. *)
let ingest_checkpoint_due t =
  (not t.closed)
  && Array.length t.lanes > 0
  &&
  match t.durable with
  | Some d -> d.checkpoint_every > 0 && d.since_checkpoint >= d.checkpoint_every
  | None -> false

let checkpoint_if_due t =
  if ingest_checkpoint_due t then begin
    checkpoint_now t;
    true
  end
  else false

let observe_single t v =
  match t.durable with
  | None -> apply_observe t v
  | Some d ->
    (* WAL first: if the append raises (injected fault, full disk) the
       element is unacknowledged and in-memory state is untouched. *)
    ignore (Hsq_storage.Wal.append d.wal (Hsq_storage.Wal.Observe v));
    apply_observe t v;
    d.since_checkpoint <- d.since_checkpoint + 1;
    if d.checkpoint_every > 0 && d.since_checkpoint >= d.checkpoint_every then
      write_checkpoint t d

(* Lane-local ingest: append to this lane's WAL (the acknowledgement —
   crash-durability is decided here, under the lane lock, before the
   element is visible anywhere), buffer locally, and hand off a full
   batch.  Callable from any thread; lanes never take each other's
   locks, so D lanes ingest with no shared state but the per-batch
   propagation lock. *)
let observe_domain t ~domain v =
  let nd = Array.length t.lanes in
  if nd = 0 then observe_single t v
  else begin
    let ln = t.lanes.(((domain mod nd) + nd) mod nd) in
    Mutex.lock ln.lane_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock ln.lane_lock)
      (fun () ->
        if t.closed then invalid_arg "Engine.observe_domain: engine is closed";
        (match ln.lane_wal with
        | Some w -> ignore (Hsq_storage.Wal.append w (Hsq_storage.Wal.Observe v))
        | None -> ());
        if ln.llen = Array.length ln.lbuf then begin
          let bigger = Array.make (2 * ln.llen) 0 in
          Array.blit ln.lbuf 0 bigger 0 ln.llen;
          ln.lbuf <- bigger
        end;
        ln.lbuf.(ln.llen) <- v;
        ln.llen <- ln.llen + 1;
        ln.observed <- ln.observed + 1;
        if ln.llen >= t.config.Config.ingest_batch then propagate_locked t ln)
  end

let observe t v =
  if Array.length t.lanes = 0 then observe_single t v else observe_domain t ~domain:0 v

let save_meta t path =
  Meta.write ~path
    (Meta.render ~config:t.config ~descriptors:(Hsq_hist.Level_index.describe t.hist))

(* Load the batch into the warehouse and reset the stream sketch
   (HistUpdate + StreamReset).

   Durable rollover protocol (exactly-once):
     1. append an [End_step] marker carrying the prospective step
        number and force a sync — whatever the policy, a commit is a
        flush;
     2. add the batch to the level index and write the warehouse
        sidecar — the sidecar rename is THE commit point;
     3. rotate the WAL (atomic truncation) and drop the checkpoint.
   A crash between 1 and 2 replays the step from the log; between 2
   and 3 the marker's step number is <= the recovered warehouse's step
   count, so replay skips the re-ingest — never a double archive.

   Multi-lane engines first seal every lane (all lane locks taken, all
   buffers propagated), then write an [End_step_cuts] marker to lane 0
   carrying each extra lane's last acknowledged sequence number — the
   exact membership of the archived batch.  Every extra lane's log is
   synced *before* the marker lands (a commit marker must never cover
   records that could still vanish with the buffer cache), and rotation
   goes extra lanes first, the marker-bearing lane 0 last: once lane 0
   rotates the marker is gone, so no covered record may outlive it (it
   would replay into the next open step and double-count). *)
let end_time_step t =
  with_sealed_lanes t @@ fun () ->
  if t.batch_len = 0 then invalid_arg "Engine.end_time_step: empty batch";
  let commit () =
    let batch = Array.sub t.batch 0 t.batch_len in
    let report = Hsq_hist.Level_index.add_batch t.hist batch in
    t.batch_len <- 0;
    t.gk <- fresh_gk t.config;
    report
  in
  match t.durable with
  | None -> commit ()
  | Some d ->
    let step = Hsq_hist.Level_index.time_steps t.hist + 1 in
    let extra_wals =
      if Array.length t.lanes <= 1 then [||]
      else
        Array.init
          (Array.length t.lanes - 1)
          (fun i ->
            match t.lanes.(i + 1).lane_wal with
            | Some w -> w
            | None -> invalid_arg "Engine.end_time_step: durable lane without a log")
    in
    (if Array.length extra_wals = 0 then
       ignore
         (Hsq_storage.Wal.append d.wal (Hsq_storage.Wal.End_step { step; count = t.batch_len }))
     else begin
       Array.iter Hsq_storage.Wal.sync extra_wals;
       let cuts = Array.map Hsq_storage.Wal.last_seq extra_wals in
       ignore
         (Hsq_storage.Wal.append d.wal
            (Hsq_storage.Wal.End_step_cuts { step; count = t.batch_len; cuts }))
     end);
    Hsq_storage.Wal.sync d.wal;
    let report = commit () in
    save_meta t d.meta_path;
    for i = Array.length extra_wals - 1 downto 0 do
      Hsq_storage.Wal.rotate extra_wals.(i)
    done;
    Hsq_storage.Wal.rotate d.wal;
    (try Sys.remove d.ckpt_path with Sys_error _ -> ());
    d.last_checkpoint_seq <- 0;
    d.since_checkpoint <- 0;
    report

let ingest_batch t batch =
  Array.iter (observe t) batch;
  end_time_step t

(* Retention passthrough: keep only the last [keep_steps] archived
   steps (whole partitions; see Level_index.expire). *)
let expire t ~keep_steps = Hsq_hist.Level_index.expire t.hist ~keep_steps

(* Extracting from the sketch while a lane could be mid-hand-off would
   read a half-merged tuple array: every extraction (and the count that
   keys the cache) happens under the propagation lock on a multi-lane
   engine.  Hand-offs are atomic w.r.t. the lock, so what a query sees
   is always "the sketch after some whole set of propagated batches" —
   the snapshot-consistency contract. *)
let stream_summary_unlocked t = Stream_summary.extract t.gk
let stream_summary t = with_prop t (fun () -> stream_summary_unlocked t)

let sketch_kind t = Stream_sketch.kind t.gk
let sketch_label t = Stream_sketch.kind_label t.gk

(* A private deep copy of the open step's KLL sketch (None under GK),
   taken under the propagation lock so it is snapshot-consistent with
   concurrent lane hand-offs.  Shard_group merges these to compose
   fused stream summaries. *)
let kll_snapshot t =
  with_prop t (fun () -> Option.map Hsq_sketch.Kll.copy (Stream_sketch.as_kll t.gk))

(* The cached historical aggregate, rebuilt only when the level index's
   epoch moved since it was computed (partition add / merge / expire /
   restore all bump it).  Steady-state full-set queries therefore cost
   O(S_stream + S_hist) instead of O(S·P·log β1). *)
let hist_aggregate t =
  let epoch = Hsq_hist.Level_index.epoch t.hist in
  match t.hist_cache with
  | Some (e, agg) when e = epoch -> agg
  | _ ->
    (* Active partitions only: a quarantined partition's summary may be
       degenerate (restored without reading its bad blocks), so queries
       exclude it and widen their reported bound instead.  Quarantine
       transitions bump the epoch, so the cache refreshes. *)
    let agg =
      Union_summary.hist_aggregate
        ~partitions:(Hsq_hist.Level_index.active_partitions t.hist)
    in
    t.hist_cache <- Some (epoch, agg);
    agg

(* The built summary pair, reused verbatim while neither side of TS has
   moved (see the us_cache field comment).  Re-extracting from an
   unchanged GK sketch is pure, so a hit returns exactly what a rebuild
   would produce. *)
let cached_summaries t =
  with_prop t @@ fun () ->
  let epoch = Hsq_hist.Level_index.epoch t.hist in
  let count = stream_size t in
  match t.us_cache with
  | Some (e, c, pair) when e = epoch && c = count ->
    Atomic.incr t.metrics.sc_hits;
    (match t.tracer with
    | Some tr ->
      Trace.with_span tr ~attrs:[ ("result", "hit") ] "summary_cache" (fun _ -> ())
    | None -> ());
    pair
  | _ ->
    Atomic.incr t.metrics.sc_misses;
    let build () =
      let ss = stream_summary_unlocked t in
      let pair = (ss, Union_summary.build_from_agg ~agg:(hist_aggregate t) ~stream:ss) in
      t.us_cache <- Some (epoch, count, pair);
      pair
    in
    (match t.tracer with
    | Some tr ->
      Trace.with_span tr ~attrs:[ ("result", "miss") ] "summary_cache" (fun _ -> build ())
    | None -> build ())

let cached_union_summary t = snd (cached_summaries t)

let not_quarantined t p = not (Hsq_hist.Level_index.is_quarantined t.hist p)

(* Cache-bypassing build over the full active partition set; the fuzz
   suite compares this against the cached path entry for entry. *)
let fresh_union_summary t =
  with_prop t @@ fun () ->
  Union_summary.build ~partitions:(Hsq_hist.Level_index.active_partitions t.hist)
    ~stream:(stream_summary_unlocked t)

(* Explicit partition subsets (windows, ranges) bypass the cache: the
   aggregate covers the full set and per-suffix bounds are not
   recoverable from it.  Those queries are rare next to full-set ones,
   and still benefit from the array build path.  Quarantined members of
   the subset are dropped here too — never build a union over a
   summary that may be degenerate. *)
let union_summary ?partitions t =
  match partitions with
  | Some ps ->
    Union_summary.build
      ~partitions:(List.filter (not_quarantined t) ps)
      ~stream:(stream_summary t)
  | None -> cached_union_summary t

let clamp_rank ~n r = if r < 1 then 1 else if r > n then n else r

(* Algorithm 5. *)
let quick_us us ~rank =
  let n = Union_summary.n_total us in
  if n = 0 then invalid_arg "Engine.quick: no data";
  Union_summary.quick_select us ~rank:(clamp_rank ~n rank)

(* The union the quick path answers from.  Normally the cached
   active-set summary; when quarantine has emptied the active view
   while the stream is empty (yet archived data exists), fall back to a
   memory-only union over the *full* partition set.  Quarantine marks a
   partition's disk blocks unreadable, but its in-memory summary still
   describes the archived elements — so the fallback answers with
   honest (possibly wide: a sidecar-restored quarantined partition
   contributes a maximal [0, size] window) Lemma 2 bounds at zero
   device reads.  Returns the summary and [true] iff it is the
   fallback, whose bound must not be double-widened by the quarantined
   element count the summary already covers. *)
let quick_view t =
  let us = cached_union_summary t in
  if Union_summary.n_total us > 0 then (us, false)
  else
    let full =
      Union_summary.build
        ~partitions:(Hsq_hist.Level_index.partitions t.hist)
        ~stream:(stream_summary t)
    in
    if Union_summary.size full > 0 then (full, true) else (us, false)

let quick_over t ~partitions ~rank = quick_us (union_summary ~partitions t) ~rank

(* Quick answer plus the rank window it can be off by — what a caller
   holding an exact oracle (the chaos harness) checks, and what the
   degraded paths of the accurate query report.  The bound is
   [max (U - r) (r - L)] from the union summary's Lemma 2 windows,
   widened by the element count of any quarantined partitions (their
   ranks are unknown in [0, size]). *)
let rank_bound_of us ~rank v ~widen =
  let r = float_of_int rank in
  let lo, hi = Union_summary.rank_window us v in
  Float.max (hi -. r) (r -. lo) +. float_of_int widen

let quick_with_bound t ~rank =
  let us, fallback = quick_view t in
  let n = Union_summary.n_total us in
  if n = 0 then invalid_arg "Engine.quick: no data";
  let rank = clamp_rank ~n rank in
  let v = Union_summary.quick_select us ~rank in
  let widen = if fallback then 0 else Hsq_hist.Level_index.quarantined_elements t.hist in
  (v, rank_bound_of us ~rank v ~widen)

let quick t ~rank =
  let em = t.metrics in
  Atomic.incr em.quick_total;
  match t.tracer with
  | None ->
    (* ~140ns steady state: the instrumentation here must stay to a
       couple of machine operations — latency is sampled, not always
       measured (see engine_metrics). *)
    if Atomic.get em.quick_total land quick_sample_mask = 0 then begin
      let t0 = Metrics.now_s () in
      let v = quick_us (fst (quick_view t)) ~rank in
      Metrics.Histogram.observe em.quick_hist (Metrics.now_s () -. t0);
      v
    end
    else quick_us (fst (quick_view t)) ~rank
  | Some tr ->
    Trace.with_span tr ~attrs:[ ("rank", string_of_int rank) ] "query.quick" (fun _ ->
        let t0 = Metrics.now_s () in
        let v = quick_us (fst (quick_view t)) ~rank in
        Metrics.Histogram.observe em.quick_hist (Metrics.now_s () -. t0);
        v)

(* Algorithms 6-8: bisect the value domain between the filters, probing
   each partition with a summary-bounded (and progressively narrowed)
   binary search for the exact historical rank rho1, and estimating the
   stream rank rho2 from SS.  Stops inside the +-eps*m band, or at a
   width-1 interval, where v is the answer when the estimate at u still
   falls short of r (rank(u) <= r <= rank(v) is invariant). *)
type probe_state = {
  partition : Hsq_hist.Partition.t;
  mutable lo : int; (* rank(z) within this partition is known to be in [lo, hi] *)
  mutable hi : int;
}

(* Internal control flow of the accurate path: a probe that exhausted
   the device's bounded retries (carrying the partition it hit), and a
   bisection cut by the deadline (carrying the surviving filter
   interval [u, v]). *)
exception Probe_failure of Hsq_hist.Partition.t * string
exception Deadline_cut of int * int

let accurate_over ?(tolerance_factor = 0.5) ?deadline_ms ?summaries ?refresh t ~partitions
    ~rank =
  let em = t.metrics in
  let tr = t.tracer in
  Atomic.incr em.accurate_total;
  let tq0 = Metrics.now_s () in
  (* Per-call deadline wins over the config default; both count wall
     clock from query start. *)
  let deadline_at =
    match (deadline_ms, t.config.Config.query_deadline_ms) with
    | Some d, _ | None, Some d -> Some (tq0 +. (d /. 1000.0))
    | None, None -> None
  in
  let cancel = Option.map (fun d () -> Metrics.now_s () > d) deadline_at in
  let stats = Hsq_storage.Block_device.stats t.dev in
  let before = Hsq_storage.Io_stats.snapshot stats in
  let iterations = ref 0 in
  let domains_conf =
    match t.config.Config.query_domains with Some d when d > 1 -> d | _ -> 1
  in
  (* One full bisection (Algorithms 6-8) over a fixed active partition
     set; raises [Probe_failure] on an unrecoverable device error and
     [Deadline_cut] when the deadline passes between iterations (or a
     parallel probe round is cancelled mid-flight). *)
  let attempt ~parent ss us active ~rank =
    let u0, v0 = Union_summary.filters us ~rank in
    let probes =
      Array.of_list
        (List.map
           (fun p ->
             let lo, hi =
               Hsq_hist.Partition_summary.search_window (Hsq_hist.Partition.summary p) ~u:u0
                 ~v:v0
             in
             { partition = p; lo; hi })
           active)
    in
    (* Stopping band of Algorithm 8, as a multiple of eps2*m.  The paper
       stops within +-eps*m (factor 4); we default to the tighter factor
       1/2 — the rho estimate is already that accurate, the extra
       bisection steps mostly hit cached blocks, and the answer improves
       ~4x.  This knob is the accuracy/disk-access axis of the tradeoff
       space the paper's conclusion discusses; the ablation bench sweeps
       it. *)
    let m = float_of_int (Stream_summary.stream_size ss) in
    let tolerance = tolerance_factor *. Stream_summary.eps2 ss *. m in
    let r = float_of_int rank in
    (* rho(z) = exact historical rank (lines 2-7) + estimated stream rank
       (lines 8-10).  Returns the per-partition ranks so the caller can
       narrow the next iteration's search windows.

       With [query_domains] > 1 the per-partition disk probes of one
       iteration fan out over a persistent worker pool (the paper's
       future-work parallel partition processing): each partition is
       probed by exactly one domain per round — its Run's one-block cache
       is never shared — and the device serializes pool and file-channel
       access internally.  Pool.map preserves order, so answers and the
       narrowing schedule are identical to the sequential path, and on
       fault-free queries so are the read counts.  On a probe failure the
       pool stops claiming further probes and re-raises once the in-flight
       ones finish, so the containment fallbacks trigger as in the
       sequential path, with at most one extra probe's I/O per lane. *)
    let domains = if domains_conf > 1 && Array.length probes > 1 then domains_conf else 1 in
    let probe_one z st =
      if st.lo >= st.hi then st.lo
      else
        try
          Hsq_storage.Run.rank_between (Hsq_hist.Partition.run st.partition) ~lo:st.lo
            ~hi:st.hi z
        with Hsq_storage.Block_device.Device_error msg ->
          raise (Probe_failure (st.partition, msg))
    in
    (* Traced probes: one span per partition per iteration (closed windows
       included, with resolved=summary), attached to the iteration span by
       explicit parent — [with_child] never touches the trace's stack, so
       probes running on pool worker domains record safely. *)
    let probe_traced trc parent z st =
      Trace.with_child trc ~parent
        ~attrs:
          [
            ("partition", string_of_int (Hsq_hist.Partition.first_step st.partition));
            ("resolved", (if st.lo >= st.hi then "summary" else "disk"));
          ]
        "probe"
        (fun _ -> probe_one z st)
    in
    let estimate ?parent z =
      let probe =
        match (tr, parent) with
        | Some trc, Some par -> probe_traced trc par z
        | _ -> probe_one z
      in
      let traced = match (tr, parent) with Some _, Some _ -> true | _ -> false in
      let ranks =
        if domains = 1 then Array.map probe probes
        else begin
          (* Fan out only the probes whose window is still open — a
             closed window ([lo >= hi]) resolves from the summary with no
             I/O, and spawning domains for it would cost more than the
             whole iteration.  Probes keep their array order, so the
             narrowing schedule matches the sequential path exactly. *)
          let ranks = Array.make (Array.length probes) 0 in
          let open_idx = ref [] in
          for i = Array.length probes - 1 downto 0 do
            if probes.(i).lo >= probes.(i).hi then
              (* A closed window resolves from the summary with no I/O; a
                 traced run still records its span for completeness. *)
              ranks.(i) <- (if traced then probe probes.(i) else probes.(i).lo)
            else open_idx := i :: !open_idx
          done;
          (match !open_idx with
          | [] -> ()
          | [ i ] -> ranks.(i) <- probe probes.(i)
          | is ->
            let pool =
              match t.query_pool with
              | Some p -> p
              | None ->
                let p =
                  Hsq_util.Parallel.Pool.create
                    ~metrics:(Hsq_storage.Io_stats.registry stats)
                    ~workers:(domains - 1) ()
                in
                t.query_pool <- Some p;
                p
            in
            let idx = Array.of_list is in
            let got = Hsq_util.Parallel.Pool.map ?cancel pool (fun i -> probe probes.(i)) idx in
            Array.iteri (fun k i -> ranks.(i) <- got.(k)) idx);
          ranks
        end
      in
      let rho1 = Array.fold_left ( + ) 0 ranks in
      (ranks, float_of_int rho1 +. Stream_summary.rank_estimate ss z)
    in
    (* rank(z') for z' < z is at most rank(z), and at least rank(z) for
       z' > z — so each bisection step halves the per-partition windows
       too, and the one-block run caches make the tail probes free. *)
    let narrow ~left ranks =
      Array.iteri
        (fun i st ->
          let rank_z = ranks.(i) in
          if left then st.hi <- min st.hi rank_z else st.lo <- max st.lo rank_z)
        probes
    in
    (* Each bisection iteration's body runs in its own child span of the
       query root; the recursion happens after the iteration span closed,
       so iterations are siblings, not nested.  The deadline is checked
       between iterations (the probes of one iteration are also
       individually cancellable through the pool); a cut carries the
       current interval so the caller can clamp its best-so-far answer. *)
    let rec bisect ~parent u v =
      (match deadline_at with
      | Some d when Metrics.now_s () > d -> raise (Deadline_cut (u, v))
      | _ -> ());
      incr iterations;
      let run_iter iter_span =
        if v - u <= 1 then begin
          (* rank(u,T) <= r <= rank(v,T) is invariant; v is the smallest
             candidate whose rank can reach r — the Definition-1 answer —
             unless the estimate says u already covers r. *)
          let _, rho_u = estimate ?parent:iter_span u in
          `Done (if rho_u >= r then u else v)
        end
        else begin
          let z = u + ((v - u) / 2) in
          let ranks, rho = estimate ?parent:iter_span z in
          if r < rho -. tolerance then begin
            narrow ~left:true ranks;
            `Left z
          end
          else if r > rho +. tolerance then begin
            narrow ~left:false ranks;
            `Right z
          end
          else `Done z
        end
      in
      let decision =
        try
          match (tr, parent) with
          | Some trc, Some root ->
            Trace.with_child trc ~parent:root
              ~attrs:
                [
                  ("iter", string_of_int !iterations);
                  ("u", string_of_int u);
                  ("v", string_of_int v);
                ]
              "bisect"
              (fun sp -> run_iter (Some sp))
          | _ -> run_iter None
        with Hsq_util.Parallel.Pool.Cancelled -> raise (Deadline_cut (u, v))
      in
      match decision with
      | `Done z -> z
      | `Left z -> bisect ~parent u z
      | `Right z -> bisect ~parent z v
    in
    bisect ~parent u0 v0
  in
  (* Summaries for a retry after the active set changed underneath a
     quarantine: the full-set path supplies the engine's summary cache
     (the quarantine bumped the epoch, so the cached union rebuilds
     over the new active set for free on later queries too); subset
     paths rebuild over the surviving members. *)
  let refetch =
    match refresh with
    | Some f -> f
    | None ->
      fun () ->
        let act = List.filter (not_quarantined t) partitions in
        let ss = stream_summary t in
        (ss, Union_summary.build ~partitions:act ~stream:ss)
  in
  let quarantined_elems () =
    List.fold_left
      (fun acc p ->
        if Hsq_hist.Level_index.is_quarantined t.hist p then acc + Hsq_hist.Partition.size p
        else acc)
      0 partitions
  in
  (* Failure containment.  Every [Probe_failure] either quarantines its
     partition (shrinking the probe set) or advances its consecutive-
     failure count toward [quarantine_after], so the retry loop
     terminates; the cap is belt and braces.  A breaker-open device
     means the fault is not this partition's — answer from memory and
     leave healthy partitions alone. *)
  let max_retries = (List.length partitions * t.config.Config.quarantine_after) + 2 in
  (* Memory-only union over the query's full partition scope, including
     quarantined members: the last resort when quarantine has emptied
     the active view (see [quick_view] for why the in-memory summaries
     remain honest).  No extra widening — the summary covers the
     quarantined elements itself, wide windows and all. *)
  let full_scope_fallback () =
    let us = Union_summary.build ~partitions ~stream:(stream_summary t) in
    if Union_summary.size us = 0 then invalid_arg "Engine.accurate: no data";
    let rank = clamp_rank ~n:(Union_summary.n_total us) rank in
    let v = Union_summary.quick_select us ~rank in
    (v, `Device_open, rank_bound_of us ~rank v ~widen:0)
  in
  let run_query parent =
    let rec go tries pair =
      let ss, us = match pair with Some p -> p | None -> refetch () in
      let n = Union_summary.n_total us in
      if n = 0 then full_scope_fallback ()
      else begin
      let rank = clamp_rank ~n rank in
      let active = List.filter (not_quarantined t) partitions in
      let q = quarantined_elems () in
      (* [q] is re-read here rather than captured: a quarantine later in
         this iteration must widen the fallback's bound too. *)
      let finish_quick degradation =
        let v = Union_summary.quick_select us ~rank in
        (v, degradation, rank_bound_of us ~rank v ~widen:(quarantined_elems ()))
      in
      match attempt ~parent ss us active ~rank with
      | answer ->
        List.iter (Hsq_hist.Level_index.note_probe_success t.hist) active;
        let m = float_of_int (Stream_summary.stream_size ss) in
        let tolerance = tolerance_factor *. Stream_summary.eps2 ss *. m in
        let degradation = if q > 0 then `Quarantined q else `None in
        (* Honest bound the chaos oracle can check: the stopping band
           plus the stream estimate's own uncertainty (the bisection
           stops on an estimate that is exact over the probed history
           but ±ε₂·m over the stream, with integer-boundary slack). *)
        let estimate_slack = (Stream_summary.eps2 ss *. m) +. 2.0 in
        (answer, degradation, tolerance +. estimate_slack +. float_of_int q)
      | exception Deadline_cut (u, v) ->
        (* Best-so-far: the quick answer clamped into the surviving
           filter interval [u, v] (rank(u) <= rank <= rank(v) is the
           bisection invariant, so the clamp only helps). *)
        let qa = Union_summary.quick_select us ~rank in
        let best = if v >= u then max u (min v qa) else qa in
        (best, `Deadline, rank_bound_of us ~rank best ~widen:q)
      | exception Probe_failure (p, _msg) ->
        if
          Hsq_storage.Block_device.breaker_state t.dev = Hsq_storage.Breaker.Open
          || tries >= max_retries
        then finish_quick `Device_open
        else if
          Hsq_hist.Level_index.note_probe_failure t.hist p
            ~threshold:t.config.Config.quarantine_after
        then begin
          (* The active set changed: refetch the summaries.  If the
             quarantine just consumed the last element in view (empty
             stream, every partition bad), answer from the summaries
             still in hand — degraded to memory, bound widened by
             everything quarantined — rather than failing the query. *)
          let ((_, us') as pair') = refetch () in
          if Union_summary.n_total us' = 0 then finish_quick `Device_open
          else go (tries + 1) (Some pair')
        end
        else go (tries + 1) (Some (ss, us))
      end
    in
    go 0 summaries
  in
  let root_span = ref None in
  let answer, degradation, rank_error_bound =
    match tr with
    | Some trc ->
      Trace.with_span trc
        ~attrs:
          [
            ("rank", string_of_int rank);
            ("partitions", string_of_int (List.length partitions));
          ]
        "query.accurate"
        (fun sp ->
          root_span := Some sp;
          run_query (Some sp))
    | None -> run_query None
  in
  (match tr, !root_span with
  | Some trc, Some sp ->
    Trace.add_attr trc sp "iterations" (string_of_int !iterations);
    if degradation <> `None then
      Trace.add_attr trc sp "degradation" (degradation_label degradation)
  | _ -> ());
  Metrics.Histogram.observe em.accurate_hist (Metrics.now_s () -. tq0);
  Metrics.Histogram.observe em.bisect_hist (float_of_int !iterations);
  if degradation <> `None then Atomic.incr em.degraded_total;
  let io = Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot stats) before in
  (answer, { io; iterations = !iterations; degradation; rank_error_bound; span = !root_span })

let accurate ?tolerance_factor ?deadline_ms t ~rank =
  accurate_over ?tolerance_factor ?deadline_ms ~summaries:(cached_summaries t)
    ~refresh:(fun () -> cached_summaries t)
    t
    ~partitions:(Hsq_hist.Level_index.partitions t.hist)
    ~rank

(* Inverse query: estimated rank of an arbitrary value in T.  The
   historical part is exact (summary-bounded binary searches); the
   stream part comes from SS, so the error is at most ~eps2*m. *)
let rank_of t v =
  let hist = Hsq_hist.Level_index.rank t.hist v in
  let ss = stream_summary t in
  hist + int_of_float (Float.round (Stream_summary.rank_estimate ss v))

(* Empirical CDF point: P(X <= v) over T. *)
let cdf t v =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.cdf: no data";
  float_of_int (rank_of t v) /. float_of_int n

(* Batched accurate queries: one summary build (the dominant in-memory
   cost) shared by all ranks. *)
let accurate_many ?tolerance_factor t ~ranks =
  let partitions = Hsq_hist.Level_index.partitions t.hist in
  (* The summary cache makes the per-query [cached_summaries] call O(1)
     between ingests, while still refreshing if a query in the batch
     quarantines a partition (epoch bump). *)
  List.map
    (fun rank ->
      accurate_over ?tolerance_factor ~summaries:(cached_summaries t)
        ~refresh:(fun () -> cached_summaries t)
        t ~partitions ~rank)
    ranks

(* phi-quantiles per Definition 1. *)
let rank_of_phi ~n phi =
  if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Engine: phi not in (0,1]";
  clamp_rank ~n (int_of_float (ceil (phi *. float_of_int n)))

let quantile t phi =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.quantile: no data";
  accurate t ~rank:(rank_of_phi ~n phi)

let quick_quantile t phi =
  let n = total_size t in
  if n = 0 then invalid_arg "Engine.quick_quantile: no data";
  quick t ~rank:(rank_of_phi ~n phi)

(* Windowed queries (Section 2.4): the window covers the last [w]
   archived time steps plus the live stream.  Only partition-aligned
   windows are answerable. *)
type window_error = Window_not_aligned of int list

let window_sizes t = Hsq_hist.Level_index.available_window_sizes t.hist

let with_window t ~window k =
  match Hsq_hist.Level_index.partitions_for_window t.hist window with
  | Some parts -> Ok (k parts)
  | None -> Error (Window_not_aligned (window_sizes t))

let window_total t ~window =
  with_window t ~window (fun parts ->
      List.fold_left (fun acc p -> acc + Hsq_hist.Partition.size p) (stream_size t) parts)

let accurate_window ?tolerance_factor ?deadline_ms t ~window ~rank =
  with_window t ~window (fun parts ->
      accurate_over ?tolerance_factor ?deadline_ms t ~partitions:parts ~rank)

let quick_window t ~window ~rank =
  with_window t ~window (fun parts -> quick_over t ~partitions:parts ~rank)

(* Historical range queries over archived steps [first, last] — the
   "compare against the same period in the past" use case of the
   introduction.  Purely historical: the live stream is excluded, so
   with the exact partition ranks the answers are near-exact. *)
type range_error = Range_not_aligned of (int * int) list

let with_range t ~first ~last k =
  match Hsq_hist.Level_index.partitions_for_range t.hist ~first ~last with
  | Some parts -> Ok (k parts)
  | None -> Error (Range_not_aligned (Hsq_hist.Level_index.partition_boundaries t.hist))

let range_total t ~first ~last =
  with_range t ~first ~last (fun parts ->
      List.fold_left (fun acc p -> acc + Hsq_hist.Partition.size p) 0 parts)

let accurate_range ?tolerance_factor t ~first ~last ~rank =
  with_range t ~first ~last (fun parts ->
      (* Build against an empty stream: the range is purely historical.
         The gk swap would race lane hand-offs (elements propagated into
         the placeholder sketch would vanish on restore), so the whole
         range query runs under the seal — ingest blocks for its
         duration, which is acceptable for this rare query type. *)
      with_sealed_lanes t @@ fun () ->
      let saved = t.gk in
      t.gk <- fresh_gk t.config;
      Fun.protect
        ~finally:(fun () -> t.gk <- saved)
        (fun () -> accurate_over ?tolerance_factor t ~partitions:parts ~rank))

let quantile_range t ~first ~last phi =
  match range_total t ~first ~last with
  | Error e -> Error e
  | Ok n ->
    if n = 0 then invalid_arg "Engine.quantile_range: empty range";
    accurate_range t ~first ~last ~rank:(rank_of_phi ~n phi)

let quantile_window t ~window phi =
  match window_total t ~window with
  | Error e -> Error e
  | Ok n ->
    if n = 0 then invalid_arg "Engine.quantile_window: empty window";
    accurate_window t ~window ~rank:(rank_of_phi ~n phi)

(* ------------------------------------------------------------------ *)
(* Durable ingest: the recovery manager.                               *)
(* ------------------------------------------------------------------ *)

type recovery_report = {
  replayed : int; (* WAL records re-applied (past any checkpoint) *)
  steps_reingested : int; (* End_step markers re-archived *)
  steps_skipped : int; (* End_step markers already in the warehouse *)
  checkpoint_used : bool;
  wal_tail : string option; (* why the log tail was floored, if it was *)
}

type durability_status = {
  wal_path : string;
  wal_start_seq : int;
  wal_next_seq : int;
  wal_pending : int;
  checkpoint_path : string;
  last_checkpoint_seq : int;
  since_checkpoint : int;
}

let device_file = "device.blocks"
let meta_file = "meta"
let wal_file = "wal.log"
let checkpoint_file = "checkpoint"

let durable_paths dir =
  ( Filename.concat dir device_file,
    Filename.concat dir meta_file,
    Filename.concat dir wal_file,
    Filename.concat dir checkpoint_file )

let store_paths ~dir = durable_paths dir

(* Adopt a checkpoint's frozen stream side.  A structurally invalid GK
   image means the file lied despite its checksum (or versions skewed):
   treat the checkpoint as absent, full replay is always correct. *)
let restore_from_checkpoint t c =
  match Stream_sketch.deserialize c.Checkpoint.gk with
  | exception Invalid_argument _ -> false
  | gk ->
    (* A checkpoint carrying the other sketch kind (the store was last
       written under a different --sketch) cannot seed this engine:
       treat it as absent and rebuild the open step from the WAL. *)
    if Stream_sketch.kind gk <> t.config.Config.stream_sketch then false
    else begin
      let len = Array.length c.Checkpoint.batch in
      let batch = Array.make (max 1024 len) 0 in
      Array.blit c.Checkpoint.batch 0 batch 0 len;
      t.gk <- gk;
      t.batch <- batch;
      t.batch_len <- len;
      true
    end

let open_or_recover config =
  let dir =
    match config.Config.wal_dir with
    | Some d -> d
    | None -> invalid_arg "Engine.open_or_recover: config.wal_dir not set"
  in
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg "Engine.open_or_recover: wal_dir is not a directory"
  end
  else Sys.mkdir dir 0o755;
  let device_path, meta_path, wal_path, ckpt_path = durable_paths dir in
  (* Warehouse first.  The sidecar is the commit record: without it the
     device file holds no committed state and is reinitialised. *)
  let t =
    if Sys.file_exists meta_path then begin
      let block_size = Meta.peek_block_size meta_path in
      let device = Hsq_storage.Block_device.open_file ~block_size ~path:device_path () in
      let stored, hist = Meta.load_hist ~device ~path:meta_path in
      (* Structural fields come from the sidecar (they describe the
         on-disk layout); durability settings are runtime policy and
         stay the caller's. *)
      let merged =
        {
          stored with
          Config.wal_dir = config.Config.wal_dir;
          wal_sync = config.Config.wal_sync;
          checkpoint_every = config.Config.checkpoint_every;
          query_domains = config.Config.query_domains;
          ingest_domains = config.Config.ingest_domains;
          ingest_batch = config.Config.ingest_batch;
          stream_sketch = config.Config.stream_sketch;
        }
      in
      of_restored ~device merged hist
    end
    else begin
      if Sys.file_exists device_path then Sys.remove device_path;
      let device =
        Hsq_storage.Block_device.create_file ~block_size:config.Config.block_size
          ~path:device_path ()
      in
      create ~device config
    end
  in
  let stats = Hsq_storage.Block_device.stats t.dev in
  let wal, records, tail =
    if Sys.file_exists wal_path then
      Hsq_storage.Wal.open_existing ~sync:config.Config.wal_sync ~stats ~path:wal_path ()
    else
      ( Hsq_storage.Wal.create ~sync:config.Config.wal_sync ~stats ~path:wal_path ~start_seq:1
          (),
        [],
        Hsq_storage.Wal.Clean )
  in
  (* Extra ingest-lane logs (wal-1.log, wal-2.log, ...): the contiguous
     run from 1 defines how many lanes the store was last written with.
     Consolidation (below) deletes stale lane files top-down, so the
     contiguity scan can never adopt an orphaned log from an older,
     wider lane layout. *)
  let lane_file d = Filename.concat dir (Printf.sprintf "wal-%d.log" d) in
  let lanes_on_disk =
    let rec go d = if Sys.file_exists (lane_file d) then go (d + 1) else d in
    go 1
  in
  let extra_opened =
    Array.init (lanes_on_disk - 1) (fun i ->
        Hsq_storage.Wal.open_existing ~sync:config.Config.wal_sync ~stats ~path:(lane_file (i + 1))
          ())
  in
  (* Checkpoint: usable only if its warehouse step count matches the
     warehouse we actually recovered — otherwise it froze a step that
     was since archived (or rolled back) — AND its lane-cut vector
     matches the lane layout on disk (a checkpoint from a different
     layout cannot pin per-lane replay positions).  Unusable means
     replay starts from seq 1 of every log, which is always correct. *)
  let steps_committed = Hsq_hist.Level_index.time_steps t.hist in
  let checkpoint_used, replay_after =
    match Checkpoint.load ~path:ckpt_path with
    | Ok (Some c)
      when c.Checkpoint.steps_done = steps_committed
           && Array.length c.Checkpoint.lane_seqs = lanes_on_disk - 1
           && restore_from_checkpoint t c ->
      (true, Array.append [| c.Checkpoint.seq |] c.Checkpoint.lane_seqs)
    | Ok _ | Error _ -> (false, Array.make lanes_on_disk min_int)
  in
  let replayed = ref 0 and reingested = ref 0 and skipped = ref 0 in
  (* Per-lane record arrays with cursors: lane 0 drives the replay; an
     [End_step_cuts] marker first consumes each extra lane's records up
     to its cut (they belong to the step being archived), and whatever
     survives all markers is the open step, applied lane-major — a
     deterministic order covering exactly the acknowledged records. *)
  let lane_records =
    Array.init lanes_on_disk (fun d ->
        if d = 0 then Array.of_list records
        else
          let _, recs, _ = extra_opened.(d - 1) in
          Array.of_list recs)
  in
  let cursors = Array.make lanes_on_disk 0 in
  let apply_record d (seq, record) =
    match record with
    | Hsq_storage.Wal.Observe v ->
      if seq > replay_after.(d) then begin
        incr replayed;
        Hsq_storage.Io_stats.note_wal_replayed stats;
        apply_observe t v
      end
    | Hsq_storage.Wal.End_step _ | Hsq_storage.Wal.End_step_cuts _ ->
      (* Markers live only in lane 0 (handled by the driver below);
         one in an extra lane would be a damaged log — ignore it. *)
      ()
  in
  (* Records of lane [d] with seq <= [upto] belong to the current
     marker's step (or, with [upto] = max_int, to the open step). *)
  let consume_lane d ~upto =
    let recs = lane_records.(d) in
    while cursors.(d) < Array.length recs && fst recs.(cursors.(d)) <= upto do
      apply_record d recs.(cursors.(d));
      cursors.(d) <- cursors.(d) + 1
    done
  in
  let marker_logic step =
    if step <= Hsq_hist.Level_index.time_steps t.hist then begin
      (* The step committed before the crash (sidecar written, WAL not
         yet rotated): drop the replayed batch, never archive twice. *)
      t.batch_len <- 0;
      t.gk <- fresh_gk t.config;
      incr skipped
    end
    else if t.batch_len = 0 then
      (* A marker with no surviving elements (damaged log): nothing to
         archive. *)
      incr skipped
    else begin
      let batch = Array.sub t.batch 0 t.batch_len in
      ignore (Hsq_hist.Level_index.add_batch t.hist batch);
      t.batch_len <- 0;
      t.gk <- fresh_gk t.config;
      save_meta t meta_path;
      incr reingested
    end
  in
  Array.iter
    (fun ((seq, record) as r) ->
      match record with
      | Hsq_storage.Wal.Observe _ -> apply_record 0 r
      | Hsq_storage.Wal.End_step { step; count = _ } ->
        if seq > replay_after.(0) then begin
          incr replayed;
          Hsq_storage.Io_stats.note_wal_replayed stats;
          marker_logic step
        end
      | Hsq_storage.Wal.End_step_cuts { step; count = _; cuts } ->
        (* Consume the covered extra-lane records even when the marker
           itself predates the checkpoint (their cursors must advance
           past them; the per-lane [replay_after] already skips any the
           checkpoint covers). *)
        for d = 1 to lanes_on_disk - 1 do
          let cut = if d - 1 < Array.length cuts then cuts.(d - 1) else min_int in
          consume_lane d ~upto:cut
        done;
        if seq > replay_after.(0) then begin
          incr replayed;
          Hsq_storage.Io_stats.note_wal_replayed stats;
          marker_logic step
        end)
    lane_records.(0);
  for d = 1 to lanes_on_disk - 1 do
    consume_lane d ~upto:max_int
  done;
  (* The logs are deliberately left un-rotated after replay: committed
     markers replay as skips, so a crash during recovery just recovers
     again.  The next end_time_step rotates them. *)
  if not (Sys.file_exists meta_path) then save_meta t meta_path;
  let runtime_lanes = config.Config.ingest_domains in
  (* Reconcile the on-disk lane layout with the runtime lane count.
     Shrinking consolidates: everything is already replayed into memory,
     so one checkpoint carrying the surviving lanes' cut vector makes
     the dropped lanes' records durable in sketch-image form, after
     which their files can go.  Deletion runs top-down so a crash
     mid-consolidation leaves a *contiguous* wider layout — the next
     open finds the cut vector too short for it, discards the
     checkpoint, and replays the still-intact files in full. *)
  let surviving_extra =
    Array.init
      (min (runtime_lanes - 1) (lanes_on_disk - 1))
      (fun i ->
        let w, _, _ = extra_opened.(i) in
        w)
  in
  let consolidated =
    if lanes_on_disk <= runtime_lanes then false
    else begin
      let lane_seqs = Array.map Hsq_storage.Wal.last_seq surviving_extra in
      Checkpoint.save ~path:ckpt_path
        {
          Checkpoint.seq = Hsq_storage.Wal.last_seq wal;
          steps_done = Hsq_hist.Level_index.time_steps t.hist;
          batch = Array.sub t.batch 0 t.batch_len;
          gk = Stream_sketch.serialize t.gk;
          lane_seqs;
        };
      Hsq_storage.Io_stats.note_checkpoint stats;
      for d = lanes_on_disk - 1 downto runtime_lanes do
        let w, _, _ = extra_opened.(d - 1) in
        Hsq_storage.Wal.close w;
        try Sys.remove (lane_file d) with Sys_error _ -> ()
      done;
      true
    end
  in
  (* Growing just creates fresh logs for the new lanes. *)
  let created_extra =
    Array.init
      (max 0 (runtime_lanes - lanes_on_disk))
      (fun i ->
        Hsq_storage.Wal.create ~sync:config.Config.wal_sync ~stats
          ~path:(lane_file (lanes_on_disk + i)) ~start_seq:1 ())
  in
  if runtime_lanes > 1 then
    install_lanes t
      (Array.append [| Some wal |]
         (Array.map Option.some (Array.append surviving_extra created_extra)));
  t.durable <-
    Some
      {
        wal;
        meta_path;
        ckpt_path;
        checkpoint_every = config.Config.checkpoint_every;
        since_checkpoint = 0;
        last_checkpoint_seq =
          (if consolidated then Hsq_storage.Wal.last_seq wal
           else if checkpoint_used then replay_after.(0)
           else 0);
      };
  (* Recovery depth stays readable after the report is dropped: status
     tooling (hsq status --health, the serve health verb) shows how much
     replay the last open needed, per engine registry — and therefore
     per shard once engines are grouped. *)
  let reg = Hsq_storage.Io_stats.registry stats in
  Metrics.Gauge.set
    (Metrics.gauge ~help:"WAL records replayed by the last open" reg "hsq_recovery_wal_replayed")
    (float_of_int !replayed);
  Metrics.Gauge.set
    (Metrics.gauge ~help:"1 when the last open restored a sketch checkpoint" reg
       "hsq_recovery_checkpoint_used")
    (if checkpoint_used then 1.0 else 0.0);
  Metrics.Gauge.set
    (Metrics.gauge ~help:"Time steps re-archived by the last open" reg
       "hsq_recovery_steps_reingested")
    (float_of_int !reingested);
  ( t,
    {
      replayed = !replayed;
      steps_reingested = !reingested;
      steps_skipped = !skipped;
      checkpoint_used;
      wal_tail =
        (match tail with Hsq_storage.Wal.Clean -> None | Hsq_storage.Wal.Torn why -> Some why);
    } )

let shutdown_pool t =
  match t.query_pool with
  | None -> ()
  | Some p ->
    t.query_pool <- None;
    Hsq_util.Parallel.Pool.shutdown p

let is_closed t = t.closed

(* Mark the engine closed under every lane lock: an in-flight
   [observe_domain] either completes (WAL-appended — recovery replays
   it) or observes [closed] and raises, so no observe can ever append to
   a released channel.  Returns whether this call did the transition. *)
let mark_closed t =
  Array.iter (fun ln -> Mutex.lock ln.lane_lock) t.lanes;
  let was_closed = t.closed in
  t.closed <- true;
  Array.iter (fun ln -> Mutex.unlock ln.lane_lock) t.lanes;
  not was_closed

let extra_lane_wals t d =
  Array.to_list t.lanes
  |> List.filter_map (fun ln ->
         match ln.lane_wal with Some w when w != d.wal -> Some w | _ -> None)

let close t =
  if mark_closed t then begin
    shutdown_pool t;
    (match t.durable with
    | None -> ()
    | Some d ->
      List.iter Hsq_storage.Wal.close (extra_lane_wals t d);
      Hsq_storage.Wal.close d.wal);
    Hsq_storage.Block_device.close t.dev
  end

(* Simulated power cut (crash harness): drop what the WALs had not
   flushed and release the handles — block writes are synchronous in
   this model, so only the log tails are at stake. *)
let crash t =
  if mark_closed t then begin
    shutdown_pool t;
    (match t.durable with
    | None -> ()
    | Some d ->
      List.iter Hsq_storage.Wal.crash (extra_lane_wals t d);
      Hsq_storage.Wal.crash d.wal);
    Hsq_storage.Block_device.close t.dev
  end

let durability_status t =
  match t.durable with
  | None -> None
  | Some d ->
    Some
      {
        wal_path = Hsq_storage.Wal.path d.wal;
        wal_start_seq = Hsq_storage.Wal.start_seq d.wal;
        wal_next_seq = Hsq_storage.Wal.next_seq d.wal;
        wal_pending = Hsq_storage.Wal.pending_records d.wal;
        checkpoint_path = d.ckpt_path;
        last_checkpoint_seq = d.last_checkpoint_seq;
        since_checkpoint = d.since_checkpoint;
      }

(* Structured fault injection on the engine's own WAL (tests). *)
let set_wal_injector t inj =
  match t.durable with None -> () | Some d -> Hsq_storage.Wal.set_injector d.wal inj
