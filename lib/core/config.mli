(** Engine configuration (Algorithm 1 and the experimental setup of
    Section 3.1).

    [Epsilon e] sizes the structures from an error parameter:
    ε₁ = e/2 for historical summaries, ε₂ = e/4 for the stream sketch.
    [Memory_words w] sizes them from a word budget split 50/50 between
    the stream summary and the historical summaries, as in the paper's
    experiments. *)

type sizing =
  | Epsilon of float
  | Memory_words of int

type t = {
  sizing : sizing;
  kappa : int;              (** merge threshold κ *)
  block_size : int;         (** elements per block (B) *)
  sort_memory : int option; (** external-sort element budget *)
  steps_hint : int;         (** expected number of time steps (T) *)
  stream_fraction : float;  (** share of a memory budget given to the stream sketch (paper: 0.5) *)
  sort_domains : int option; (** parallel batch sorting on this many domains (future work, §4) *)
  query_domains : int option;
      (** fan accurate-query disk probes across this many domains
          (future work, §4); [None]/1 = sequential, which keeps
          fault-injection schedules deterministic. Like the [wal_*]
          fields this is runtime policy: not persisted in the metadata
          sidecar, and answers are identical at any setting *)
  wal_dir : string option;
      (** durable-ingest directory (WAL + sketch checkpoints + warehouse
          files, used by {!Engine.open_or_recover}); [None] = the stream
          side is volatile, as in the paper's Figure 1 *)
  wal_sync : Hsq_storage.Wal.sync_policy;
      (** group-commit policy for the write-ahead log (default
          [Always]: zero acknowledged-record loss) *)
  checkpoint_every : int;
      (** WAL records between sketch checkpoints; 0 disables
          checkpointing (recovery then replays the whole open step) *)
  query_deadline_ms : float option;
      (** default deadline for accurate queries, in milliseconds: the
          bisection stops at the deadline and returns its best-so-far
          answer with the current rank-error bound
          ([degradation = `Deadline] in the report). [None] =
          unbounded. Runtime policy, like [query_domains]: never
          persisted. Per-call [?deadline_ms] overrides it. *)
  quarantine_after : int;
      (** consecutive unrecoverable probe failures (per partition)
          before the partition is quarantined; default 3 *)
  shards : int;
      (** number of independent engine shards when the store is driven
          through {!Shard_group} (hash-partitioned [observe], fused
          answers); 1 = a single engine, the paper's setting. Runtime
          topology, like [query_domains]: each shard persists its own
          single-engine config, so this field is never written to a
          sidecar *)
  replicas : int;
      (** independent engine replicas per logical shard when the store
          is driven through {!Shard_group}: writes are applied
          synchronously to every live replica, reads take one live
          replica per shard and fail over to a sibling on faults, so
          answers keep full ±ε·m precision through any loss that leaves
          ≥1 replica per shard. 1 = unreplicated (the classic layout,
          bit-compatible with stores written before replication
          existed). Runtime topology, like [shards]: never persisted.
          Validated to [1, 8]. *)
  ingest_domains : int;
      (** concurrent ingest lanes feeding the stream sketch (Quancurrent
          style, DESIGN.md §15): each lane buffers [ingest_batch]
          elements locally and hands the sorted run into the GK sketch
          under one propagation lock. 1 = the classic single-writer
          [observe] path with no lane machinery at all. Runtime policy,
          like [query_domains]: never persisted, and a durable store may
          be reopened with any lane count (recovery consolidates).
          Validated to [1, 32]. *)
  ingest_batch : int;
      (** elements a lane buffers before one batched hand-off into the
          sketch; the propagation (and snapshot) granularity. Runtime
          policy; default 512. *)
  stream_sketch : [ `Gk | `Kll ];
      (** which ε₂ rank sketch summarizes the open step: [`Gk] (the
          paper's Greenwald-Khanna, the default) or [`Kll] (mergeable,
          so sharded quick answers can compose per-shard stream
          summaries by sketch merge). Runtime policy, like
          [query_domains]: never persisted — checkpoints tag the sketch
          kind they carry, and reopening a store with the other kind
          rebuilds the open step's sketch from the WAL. *)
}

val default : t

(** Validated constructor. Raises [Invalid_argument] on out-of-range
    parameters (ε ∉ (0,1), budget < 128 words, κ < 2, group-commit
    window < 1, negative checkpoint interval, …). *)
val make :
  ?kappa:int ->
  ?block_size:int ->
  ?sort_memory:int ->
  ?steps_hint:int ->
  ?stream_fraction:float ->
  ?sort_domains:int ->
  ?query_domains:int ->
  ?wal_dir:string ->
  ?wal_sync:Hsq_storage.Wal.sync_policy ->
  ?checkpoint_every:int ->
  ?query_deadline_ms:float ->
  ?quarantine_after:int ->
  ?shards:int ->
  ?replicas:int ->
  ?ingest_domains:int ->
  ?ingest_batch:int ->
  ?stream_sketch:[ `Gk | `Kll ] ->
  sizing ->
  t

(** Upper bound on simultaneous partitions: κ · (⌈log_κ T⌉ + 1). *)
val max_partitions : t -> int

(** Per-partition summary length β₁. *)
val beta1 : t -> int

(** Stream sketch word budget (memory mode only). *)
val stream_words : t -> int option

(** Fixed GK ε (epsilon mode only; = ε/8, see the module comment). *)
val gk_epsilon : t -> float option
