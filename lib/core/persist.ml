(* Crash/restart persistence for the warehouse.

   The block-device file already holds every partition's data; the
   {!Meta} module owns the plain-text metadata sidecar (render, parse,
   atomic write, index restore) so that Engine's recovery manager can
   share it.  This module keeps the engine-facing API: [save] renders
   the current engine, [load] re-attaches a restored index to a fresh
   engine, [scrub] verifies the warehouse end to end.

   Crash safety (DESIGN.md, "Fault model & recovery"):
   - [save] is crash-atomic: the sidecar is written to a temp file with
     a whole-file checksum line and renamed into place, so a crash
     during save leaves the previous checkpoint intact and a torn
     sidecar is detected as a checksum mismatch;
   - each successful [save] is the durable commit record of the merge
     commit protocol (Level_index.merge_level): a crash during a merge
     or batch load leaves the blocks named by the last checkpoint
     physically intact, so [load] rolls the uncommitted work back simply
     by re-attaching that checkpoint's partition table;
   - [scrub] re-reads every live partition block, verifying the
     per-block checksums and cross-block sortedness, turning latent bit
     rot into a report instead of a wrong answer.

   The live stream is volatile here by design (Figure 1): a restored
   engine starts with an empty stream.  Stream-side durability is the
   write-ahead log's job — see Engine.open_or_recover. *)

exception Corrupt_metadata = Meta.Corrupt_metadata

let meta_checksum = Meta.checksum

let render_metadata engine =
  Meta.render
    ~config:(Engine.config engine)
    ~descriptors:(Hsq_hist.Level_index.describe (Engine.hist engine))

let save engine ~path = Meta.write ~path (render_metadata engine)

let load ~device ~path =
  let config, hist = Meta.load_hist ~device ~path in
  Engine.of_restored ~device config hist

(* Convenience: reopen the device file and the metadata together.
   [pool_blocks] enables the device's LRU buffer pool before any
   partition summary is re-read, so recovery reads warm it.
   [query_domains] is runtime policy (never persisted in the sidecar),
   so a restored engine takes it from the caller, exactly like
   [Engine.open_or_recover]. *)
let load_files ?metrics ?pool_blocks ?query_domains ?query_deadline_ms ~device_path ~meta_path
    () =
  let block_size = Meta.peek_block_size meta_path in
  let device = Hsq_storage.Block_device.open_file ?metrics ~block_size ~path:device_path () in
  (match pool_blocks with
  | Some capacity when capacity > 0 -> Hsq_storage.Block_device.enable_pool device ~capacity
  | _ -> ());
  let config, hist = Meta.load_hist ~device ~path:meta_path in
  let config =
    match query_domains with
    | None -> config
    | Some d when d < 1 -> invalid_arg "Persist.load_files: query_domains must be >= 1"
    | Some _ -> { config with Config.query_domains }
  in
  let config =
    match query_deadline_ms with
    | None -> config
    | Some d when not (d > 0.0) -> invalid_arg "Persist.load_files: query_deadline_ms must be > 0"
    | Some _ -> { config with Config.query_deadline_ms }
  in
  Engine.of_restored ~device config hist

(* --- Scrub ------------------------------------------------------------- *)

module Metrics = Hsq_obs.Metrics

type scrub_report = {
  partitions_checked : int;
  blocks_read : int;
  errors : string list;
  quarantined : int;
  reinstated : int;
  still_quarantined : int;
}

(* Re-read every live partition front to back.  Each block read verifies
   its embedded checksum (Block_device), and the scan checks the
   partition is globally sorted and element-complete — so bit rot, torn
   writes, and shuffled blocks all surface here as errors rather than as
   silently wrong quantiles.  Cost: one sequential pass over the live
   data, charged to the device counters like everything else. *)
let scrub ?(repair = false) engine =
  let hist = Engine.hist engine in
  let dev = Engine.device engine in
  let stats = Hsq_storage.Block_device.stats dev in
  let registry = Hsq_storage.Io_stats.registry stats in
  let before = Hsq_storage.Io_stats.snapshot stats in
  (* Already-quarantined partitions are not cursor-scanned here (their
     blocks are presumed bad); with [repair] they go through
     [Level_index.reinstate], which performs this same verification
     itself and swaps a rebuilt summary in on success. *)
  let parts = Hsq_hist.Level_index.active_partitions hist in
  let pre_quarantined = Hsq_hist.Level_index.quarantined hist in
  let check p =
    let run = Hsq_hist.Partition.run p in
    let first_block = Hsq_storage.Run.first_block run in
    try
      let c = Hsq_storage.Run.cursor run in
      let prev = ref min_int in
      let count = ref 0 in
      let bad_order = ref None in
      let rec scan () =
        match Hsq_storage.Run.cursor_next c with
        | None -> ()
        | Some v ->
          if v < !prev && !bad_order = None then bad_order := Some !count;
          prev := v;
          incr count;
          scan ()
      in
      scan ();
      match !bad_order with
      | Some i ->
        Some (Printf.sprintf "partition at block %d: unsorted at element %d" first_block i)
      | None ->
        if !count <> Hsq_storage.Run.length run then
          Some
            (Printf.sprintf "partition at block %d: read %d of %d elements" first_block
               !count (Hsq_storage.Run.length run))
        else None
    with Hsq_storage.Block_device.Device_error msg ->
      Some (Printf.sprintf "partition at block %d: %s" first_block msg)
  in
  let newly_quarantined = ref 0 in
  let scan_errors =
    List.filter_map
      (fun p ->
        match check p with
        | None -> None
        | Some e ->
          if repair then begin
            Hsq_hist.Level_index.quarantine_partition hist p;
            incr newly_quarantined
          end;
          Some e)
      parts
  in
  let reinstated = ref 0 in
  let reinstate_errors =
    if not repair then []
    else
      List.filter_map
        (fun p ->
          match Hsq_hist.Level_index.reinstate hist p with
          | Ok () ->
            incr reinstated;
            None
          | Error msg ->
            Some
              (Printf.sprintf "partition at block %d: still quarantined: %s"
                 (Hsq_storage.Run.first_block (Hsq_hist.Partition.run p))
                 msg))
        pre_quarantined
  in
  (* A device fault mid-ingest can leave a level over κ with the merge
     deferred; a repairing scrub is the convergence point, so retry
     those merges now that the partitions are (re-)verified. *)
  if repair then ignore (Hsq_hist.Level_index.run_deferred_merges hist);
  let errors = scan_errors @ reinstate_errors in
  let io = Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot stats) before in
  let report =
    {
      partitions_checked = List.length parts;
      blocks_read = io.Hsq_storage.Io_stats.reads;
      errors;
      quarantined = !newly_quarantined;
      reinstated = !reinstated;
      still_quarantined = Hsq_hist.Level_index.quarantined_count hist;
    }
  in
  (* Last-scrub outcome, exported for `hsq status --health`. *)
  let set name help v = Metrics.Gauge.set (Metrics.gauge ~help registry name) v in
  set "hsq_scrub_last_errors" "Errors found by the most recent scrub"
    (float_of_int (List.length errors));
  set "hsq_scrub_last_reinstated" "Partitions reinstated by the most recent scrub"
    (float_of_int !reinstated);
  set "hsq_scrub_last_quarantined" "Partitions quarantined by the most recent scrub"
    (float_of_int !newly_quarantined);
  set "hsq_scrub_last_time_s" "Wall-clock time of the most recent scrub" (Metrics.now_s ());
  report
