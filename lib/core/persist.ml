(* Crash/restart persistence for the warehouse.

   The block-device file already holds every partition's data; this
   module adds a small plain-text metadata sidecar recording the
   configuration and the partition table.  On [load] the partitions are
   re-attached and their summaries rebuilt by probing the beta1 target
   positions on disk (<= beta1 block reads per partition — recovery
   I/O, charged to the device's counters like everything else).

   Crash safety (DESIGN.md, "Fault model & recovery"):
   - [save] is crash-atomic: the sidecar is written to a temp file with
     a whole-file checksum line and renamed into place, so a crash
     during save leaves the previous checkpoint intact and a torn
     sidecar is detected as a checksum mismatch;
   - each successful [save] is the durable commit record of the merge
     commit protocol (Level_index.merge_level): a crash during a merge
     or batch load leaves the blocks named by the last checkpoint
     physically intact, so [load] rolls the uncommitted work back simply
     by re-attaching that checkpoint's partition table;
   - [scrub] re-reads every live partition block, verifying the
     per-block checksums and cross-block sortedness, turning latent bit
     rot into a report instead of a wrong answer.

   The live stream is volatile by design: data not yet archived at save
   time is not in the warehouse, exactly as in the paper's Figure 1
   setup, so a restored engine starts with an empty stream. *)

exception Corrupt_metadata of string

(* Version 2 added the trailing whole-file checksum line (and rides
   along with the device format change that embeds per-block checksum
   words). *)
let format_version = 2

(* Same splitmix-style mixing as the device's block checksums, over the
   sidecar's bytes.  Masked to a non-negative int so the hex rendering
   is stable. *)
let meta_checksum s =
  let h = ref 0x106689D45497FDB5 in
  String.iter
    (fun c ->
      let x = (!h lxor Char.code c) * 0x2545F4914F6CDD1D in
      h := x lxor (x lsr 29))
    s;
  !h land max_int

let sizing_to_string = function
  | Config.Epsilon e -> Printf.sprintf "epsilon %.17g" e
  | Config.Memory_words w -> Printf.sprintf "memory %d" w

let sizing_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "epsilon"; e ] -> Config.Epsilon (float_of_string e)
  | [ "memory"; w ] -> Config.Memory_words (int_of_string w)
  | _ -> raise (Corrupt_metadata ("bad sizing line: " ^ s))

let render_metadata engine =
  let config = Engine.config engine in
  let hist = Engine.hist engine in
  let buf = Buffer.create 512 in
  Printf.bprintf buf "hsq-meta %d\n" format_version;
  Printf.bprintf buf "sizing %s\n" (sizing_to_string config.Config.sizing);
  Printf.bprintf buf "kappa %d\n" config.Config.kappa;
  Printf.bprintf buf "block_size %d\n" config.Config.block_size;
  Printf.bprintf buf "steps_hint %d\n" config.Config.steps_hint;
  Printf.bprintf buf "stream_fraction %.17g\n" config.Config.stream_fraction;
  (match config.Config.sort_memory with
  | None -> Printf.bprintf buf "sort_memory none\n"
  | Some m -> Printf.bprintf buf "sort_memory %d\n" m);
  (match config.Config.sort_domains with
  | None -> Printf.bprintf buf "sort_domains none\n"
  | Some d -> Printf.bprintf buf "sort_domains %d\n" d);
  let descriptors = Hsq_hist.Level_index.describe hist in
  Printf.bprintf buf "partitions %d\n" (List.length descriptors);
  List.iter
    (fun (d : Hsq_hist.Level_index.partition_descriptor) ->
      Printf.bprintf buf "partition %d %d %d %d %d\n" d.first_block d.length d.first_step
        d.last_step d.level)
    descriptors;
  Printf.bprintf buf "checksum %x\n" (meta_checksum (Buffer.contents buf));
  Buffer.contents buf

(* Crash-atomic: write to a sibling temp file, flush, rename over the
   destination.  A crash before the rename leaves the previous sidecar
   untouched; a crash mid-write leaves only a stale .tmp that no load
   path ever reads. *)
let save engine ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc (render_metadata engine))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let verify_meta_checksum lines =
  match List.rev lines with
  | [] -> raise (Corrupt_metadata "empty metadata file")
  | last :: rev_body ->
    let prefix = "checksum " in
    let plen = String.length prefix in
    if String.length last <= plen || String.sub last 0 plen <> prefix then
      raise (Corrupt_metadata "missing checksum line (truncated metadata?)");
    let stored =
      match int_of_string_opt ("0x" ^ String.sub last plen (String.length last - plen)) with
      | Some v -> v
      | None -> raise (Corrupt_metadata ("unreadable checksum line: " ^ last))
    in
    let body = List.rev rev_body in
    let payload = String.concat "" (List.map (fun l -> l ^ "\n") body) in
    if meta_checksum payload <> stored then
      raise (Corrupt_metadata "metadata checksum mismatch (torn or tampered sidecar)");
    body

let parse_lines lines =
  (* Linear cursor over an array of lines (the former List.nth_opt
     cursor re-walked the list per field — quadratic in file size). *)
  let lines = Array.of_list lines in
  let pos = ref 0 in
  let next () =
    if !pos < Array.length lines then begin
      let l = lines.(!pos) in
      incr pos;
      Some l
    end
    else None
  in
  let expect_prefix prefix line =
    let plen = String.length prefix in
    let field = String.trim prefix in
    match line with
    | Some l when l = field || l = prefix ->
      raise (Corrupt_metadata (Printf.sprintf "empty value for field %S" field))
    | Some l when String.length l > plen && String.sub l 0 plen = prefix ->
      String.sub l plen (String.length l - plen)
    | Some l -> raise (Corrupt_metadata (Printf.sprintf "expected %S..., found %S" prefix l))
    | None -> raise (Corrupt_metadata (Printf.sprintf "missing %S line" prefix))
  in
  let header = expect_prefix "hsq-meta " (next ()) in
  if int_of_string_opt header <> Some format_version then
    raise (Corrupt_metadata ("unsupported format version " ^ header));
  let sizing = sizing_of_string (expect_prefix "sizing " (next ())) in
  let kappa = int_of_string (expect_prefix "kappa " (next ())) in
  let block_size = int_of_string (expect_prefix "block_size " (next ())) in
  let steps_hint = int_of_string (expect_prefix "steps_hint " (next ())) in
  let stream_fraction = float_of_string (expect_prefix "stream_fraction " (next ())) in
  let sort_memory =
    match expect_prefix "sort_memory " (next ()) with
    | "none" -> None
    | m -> Some (int_of_string m)
  in
  let sort_domains =
    match expect_prefix "sort_domains " (next ()) with
    | "none" -> None
    | d -> Some (int_of_string d)
  in
  let count = int_of_string (expect_prefix "partitions " (next ())) in
  let descriptors =
    List.init count (fun _ ->
        let fields = String.split_on_char ' ' (expect_prefix "partition " (next ())) in
        match List.map int_of_string fields with
        | [ first_block; length; first_step; last_step; level ] ->
          {
            Hsq_hist.Level_index.first_block;
            length;
            first_step;
            last_step;
            level;
          }
        | _ -> raise (Corrupt_metadata "bad partition line"))
  in
  let config =
    Config.make ~kappa ~block_size ?sort_memory ~steps_hint ~stream_fraction ?sort_domains sizing
  in
  (config, descriptors)

(* Cheap consistency check on a restored partition: its summary entries
   (just re-read from disk) must be sorted — catching truncated or
   shuffled device files before they can serve wrong answers. *)
let verify_partition p =
  let entries = Hsq_hist.Partition_summary.entries (Hsq_hist.Partition.summary p) in
  let ok = ref true in
  for i = 1 to Array.length entries - 1 do
    if entries.(i).Hsq_hist.Partition_summary.value < entries.(i - 1).Hsq_hist.Partition_summary.value
    then ok := false
  done;
  if not !ok then
    raise
      (Corrupt_metadata
         (Printf.sprintf "partition at block %d is not sorted on disk"
            (Hsq_storage.Run.first_block (Hsq_hist.Partition.run p))))

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load ~device ~path =
  let lines = verify_meta_checksum (read_lines path) in
  let config, descriptors =
    try parse_lines lines with
    | Corrupt_metadata _ as e -> raise e
    | Failure msg -> raise (Corrupt_metadata msg)
  in
  if Hsq_storage.Block_device.block_size device <> config.Config.block_size then
    raise
      (Corrupt_metadata
         (Printf.sprintf "device block size %d disagrees with metadata %d"
            (Hsq_storage.Block_device.block_size device)
            config.Config.block_size));
  let hist =
    (* Device_error here means a checkpointed partition's blocks are
       unreadable or fail their checksums — the warehouse itself is
       corrupt, not just the sidecar. *)
    try
      Hsq_hist.Level_index.restore ?sort_memory:config.Config.sort_memory
        ~kappa:config.Config.kappa ~beta1:(Config.beta1 config) device descriptors
    with
    | Invalid_argument msg -> raise (Corrupt_metadata msg)
    | Hsq_storage.Block_device.Device_error msg ->
      raise (Corrupt_metadata ("device corruption: " ^ msg))
  in
  (try List.iter verify_partition (Hsq_hist.Level_index.partitions hist)
   with Hsq_storage.Block_device.Device_error msg ->
     raise (Corrupt_metadata ("device corruption: " ^ msg)));
  Engine.of_restored ~device config hist

(* Convenience: reopen the device file and the metadata together. *)
let load_files ~device_path ~meta_path =
  let block_size =
    (* peek at the metadata for the block size before opening the device *)
    let ic = open_in meta_path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec find () =
          match input_line ic with
          | line when String.length line > 11 && String.sub line 0 11 = "block_size " ->
            int_of_string (String.sub line 11 (String.length line - 11))
          | _ -> find ()
          | exception End_of_file -> raise (Corrupt_metadata "no block_size in metadata")
        in
        find ())
  in
  let device = Hsq_storage.Block_device.open_file ~block_size ~path:device_path () in
  load ~device ~path:meta_path

(* --- Scrub ------------------------------------------------------------- *)

type scrub_report = {
  partitions_checked : int;
  blocks_read : int;
  errors : string list;
}

(* Re-read every live partition front to back.  Each block read verifies
   its embedded checksum (Block_device), and the scan checks the
   partition is globally sorted and element-complete — so bit rot, torn
   writes, and shuffled blocks all surface here as errors rather than as
   silently wrong quantiles.  Cost: one sequential pass over the live
   data, charged to the device counters like everything else. *)
let scrub engine =
  let hist = Engine.hist engine in
  let dev = Engine.device engine in
  let stats = Hsq_storage.Block_device.stats dev in
  let before = Hsq_storage.Io_stats.snapshot stats in
  let parts = Hsq_hist.Level_index.partitions hist in
  let errors =
    List.filter_map
      (fun p ->
        let run = Hsq_hist.Partition.run p in
        let first_block = Hsq_storage.Run.first_block run in
        try
          let c = Hsq_storage.Run.cursor run in
          let prev = ref min_int in
          let count = ref 0 in
          let bad_order = ref None in
          let rec scan () =
            match Hsq_storage.Run.cursor_next c with
            | None -> ()
            | Some v ->
              if v < !prev && !bad_order = None then bad_order := Some !count;
              prev := v;
              incr count;
              scan ()
          in
          scan ();
          match !bad_order with
          | Some i ->
            Some
              (Printf.sprintf "partition at block %d: unsorted at element %d" first_block i)
          | None ->
            if !count <> Hsq_storage.Run.length run then
              Some
                (Printf.sprintf "partition at block %d: read %d of %d elements" first_block
                   !count (Hsq_storage.Run.length run))
            else None
        with Hsq_storage.Block_device.Device_error msg ->
          Some (Printf.sprintf "partition at block %d: %s" first_block msg))
      parts
  in
  let io = Hsq_storage.Io_stats.diff (Hsq_storage.Io_stats.snapshot stats) before in
  {
    partitions_checked = List.length parts;
    blocks_read = io.Hsq_storage.Io_stats.reads;
    errors;
  }
