(** Warehouse metadata sidecar machinery (render / parse / atomic write
    / historical-index restore), shared by {!Persist} (save, load,
    scrub) and by {!Engine}'s durable-ingest recovery manager.

    Deliberately below [Engine] in the module graph. The on-file format
    is Persist format 2; durable-ingest settings are runtime policy and
    are never persisted here. *)

exception Corrupt_metadata of string

(** Checksum of a sidecar body, as stored on its trailing
    [checksum <hex>] line (exposed for external tooling and tests). *)
val checksum : string -> int

(** Render the sidecar text (trailing checksum line included) for a
    configuration and partition table. *)
val render :
  config:Config.t -> descriptors:Hsq_hist.Level_index.partition_descriptor list -> string

(** Atomically write rendered contents to [path] (temp file + rename). *)
val write : path:string -> string -> unit

(** Read a file as lines (shared by the sidecar and checkpoint
    parsers). *)
val read_lines : string -> string list

(** Verify the trailing [checksum <hex>] line against the body and
    return the body lines. Raises {!Corrupt_metadata} on a missing or
    mismatching line. *)
val verify_checksum : string list -> string list

(** Read a sidecar's block-size field without a full parse, so the
    device file can be opened first. Raises {!Corrupt_metadata}. *)
val peek_block_size : string -> int

(** Parse and verify the sidecar at [path] and restore the historical
    index from [device] (≤ β₁ block reads per partition; on-disk
    summary sortedness verified). Returns the persisted configuration
    (durability fields at their defaults) and the index. Raises
    {!Corrupt_metadata} on any version / parse / checksum / device
    mismatch. *)
val load_hist :
  device:Hsq_storage.Block_device.t -> path:string -> Config.t * Hsq_hist.Level_index.t
