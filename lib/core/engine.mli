(** The integrated historical + streaming quantile engine — the paper's
    primary contribution.

    Feed stream elements with {!observe}; close a time step with
    {!end_time_step} (the batch is sorted into the warehouse and the
    stream sketch reset). Query any time with {!quick} (Algorithm 5,
    memory-only, O(εN) rank error) or {!accurate} (Algorithms 6–8, a
    few dozen disk probes, O(εm) rank error — proportional to the
    stream size only, per Theorem 2). *)

type t

(** How far an accurate answer fell from the full O(εm) contract
    (replaces the former bare [degraded : bool]):
    - [`None] — the bisection completed normally;
    - [`Quarantined q] — it completed, but [q] elements sit in
      quarantined partitions the probes excluded, widening the bound;
    - [`Deadline] — the deadline cut the bisection and the answer is
      the best-so-far (quick answer clamped into the surviving filter
      interval);
    - [`Device_open] — the device's circuit breaker is open (or probe
      retries were exhausted without isolating a partition) and the
      answer came from the in-memory union summary (Algorithm 5). *)
type degradation = [ `None | `Quarantined of int | `Deadline | `Device_open ]

(** Cost and fidelity of one accurate query: exact I/O counters, the
    number of value-domain bisection steps (recursive calls of
    Algorithm 8), what degraded it (if anything), and an upper bound on
    [|rank(answer) − rank|] under that degradation — the stopping band
    plus the stream estimate's ±ε₂·m uncertainty when the bisection
    completed, a Lemma 2 rank window otherwise, widened by the
    quarantined element count either way. The chaos harness checks this
    bound against an exact oracle under every fault schedule. *)
type query_report = {
  io : Hsq_storage.Io_stats.counters;
  iterations : int;
  degradation : degradation;
  rank_error_bound : float;
  span : Hsq_obs.Trace.span option;
      (** The query's root trace span ([query.accurate], with [bisect] /
          [probe] children) when tracing is on via {!set_tracer}; [None]
          otherwise. *)
}

(** Stable lowercase label ("none" / "quarantined" / "deadline" /
    "device_open") for logs and the CLI. *)
val degradation_label : degradation -> string

(** [create ?device config] — a fresh engine. Without [device] an
    in-memory simulated block device of [config.block_size] is used. *)
val create : ?device:Hsq_storage.Block_device.t -> Config.t -> t

(** Adopt a restored historical index (recovery; used by {!Persist}).
    The stream side starts empty — the live stream is volatile. *)
val of_restored :
  device:Hsq_storage.Block_device.t -> Config.t -> Hsq_hist.Level_index.t -> t

val config : t -> Config.t
val device : t -> Hsq_storage.Block_device.t

(** {2 Observability}

    Every engine registers its metrics in the device's registry (the
    one behind [Io_stats.registry (Block_device.stats (device t))]):
    query counters ([hsq_query_quick_total], [hsq_query_accurate_total],
    [hsq_query_degraded_total], summary-cache hits/misses), latency
    histograms ([hsq_query_quick_seconds] — sampled 1-in-64 —,
    [hsq_query_accurate_seconds]) and the bisection-iteration histogram,
    alongside the I/O, WAL, merge, device and pool metrics of the layers
    below. See DESIGN.md §11 for the full metric and span taxonomy. *)

(** The engine's metric registry (the device's). *)
val metrics : t -> Hsq_obs.Metrics.t

(** Turn per-query tracing on ([Some trace]) or off ([None]). The
    tracer is mirrored onto the device's {!Hsq_storage.Io_stats} so WAL
    append/sync, merge and checkpoint spans record too. Queries then
    carry their root span in [query_report.span] (accurate path) and
    record [query.quick] root spans (quick path). Tracing is meant for
    single-threaded diagnosis sessions: the engine is single-submitter
    by contract, and only the parallel probe spans attach from worker
    domains (safely, via explicit parents). *)
val set_tracer : t -> Hsq_obs.Trace.t option -> unit

val tracer : t -> Hsq_obs.Trace.t option
val hist : t -> Hsq_hist.Level_index.t
val stream_sketch : t -> Stream_sketch.t

(** Which ε₂ sketch kind the open step runs ([`Gk] or [`Kll]), and its
    label ("gk"/"kll") for status and metrics surfaces. *)
val sketch_kind : t -> [ `Gk | `Kll ]

val sketch_label : t -> string

(** Snapshot-consistent deep copy of the open step's KLL sketch;
    [None] when the engine runs GK.  {!Hsq_shard.Shard_group} merges
    these to compose fused stream summaries by sketch merge. *)
val kll_snapshot : t -> Hsq_sketch.Kll.t option

(** m, n, N = n + m, and T (time steps archived). *)
val stream_size : t -> int

val hist_size : t -> int
val total_size : t -> int
val time_steps : t -> int

(** Current ε₂ (stream summary spacing) and the overall ε = 4·ε₂. In
    memory mode these reflect the capped sketch's adaptive ε. *)
val eps2 : t -> float

val epsilon : t -> float

(** Summary footprint: HS + GK, in words. *)
val memory_words : t -> int

(** StreamUpdate (Algorithm 4) plus batch spooling. On a durable engine
    (see {!open_or_recover}) the element is appended to the write-ahead
    log first: if the append raises, the element is unacknowledged and
    in-memory state is untouched.

    With [config.ingest_domains = 1] (the default) the engine is
    single-submitter: this is the classic paper path. With
    [ingest_domains > 1] the call routes to lane 0 of
    {!observe_domain} and may be issued concurrently with other
    lanes. *)
val observe : t -> int -> unit

(** {2 Concurrent ingest lanes (DESIGN.md §15)}

    With [config.ingest_domains = D > 1] the engine carries D
    shard-local stream buffers. {!observe_domain} is safe to call from
    any thread, concurrently across lanes (and even on the same lane —
    the lane lock serializes); each lane buffers [config.ingest_batch]
    elements and hands the sorted run into the GK sketch under one
    propagation lock, so contention is per batch, not per element. On a
    durable engine each lane appends to its own WAL
    ([wal.log], [wal-1.log], …) before buffering — the acknowledged
    prefix is exactly what recovery reproduces, in deterministic
    lane-major order within each step.

    Everything else — queries, {!end_time_step}, {!checkpoint_now},
    {!close} — remains single-submitter ("the engine thread"): those
    calls may run concurrently with [observe_domain], but not with each
    other. Queries are snapshot-consistent: they seal nothing and see
    only whole propagated batches ([end_time_step] and range queries
    seal-and-drain all lanes first). *)

(** [observe_domain t ~domain v] — observe [v] on lane
    [domain mod ingest_domains]. Equal to {!observe} when
    [ingest_domains = 1]. Raises [Invalid_argument] after {!close} /
    {!crash}. *)
val observe_domain : t -> domain:int -> int -> unit

(** Configured lane count (≥ 1). *)
val ingest_domains : t -> int

(** Seal every lane and propagate all buffered elements into the
    sketch, then release. Call from the engine thread before reading
    exact totals; {!end_time_step} does this implicitly. *)
val flush_ingest : t -> unit

(** Elements currently buffered in lanes (not yet in the sketch).
    Approximate under concurrency — for gauges, not invariants. *)
val buffered_ingest : t -> int

(** [true] when lane hand-offs have accumulated enough WAL records
    since the last checkpoint ([config.checkpoint_every]) that the
    engine thread should call {!checkpoint_if_due}. Lanes never
    checkpoint themselves — the engine thread settles the debt, which
    keeps the lock order (lanes before propagation) acyclic. *)
val ingest_checkpoint_due : t -> bool

(** Take the due checkpoint (a {!checkpoint_now}) if
    {!ingest_checkpoint_due}; returns whether one was taken. *)
val checkpoint_if_due : t -> bool

(** HistUpdate (Algorithm 3) + StreamReset. Raises [Invalid_argument]
    on an empty batch — before any WAL write, so an empty rollover is a
    pure no-op on a durable engine too. On a durable engine the
    rollover is exactly-once: commit marker + forced WAL sync, then the
    warehouse archive and sidecar write (the commit point), then an
    atomic WAL rotation. *)
val end_time_step : t -> Hsq_hist.Level_index.update_report

(** [observe] each element, then [end_time_step]. *)
val ingest_batch : t -> int array -> Hsq_hist.Level_index.update_report

(** Retention: drop partitions entirely older than the last
    [keep_steps] archived steps. Returns (partitions, elements)
    dropped. *)
val expire : t -> keep_steps:int -> int * int

(** Current SS (rebuilt on each call — the stream moves on every
    [observe]). *)
val stream_summary : t -> Stream_summary.t

(** Current TS. Without [partitions] the historical half comes from a
    cached aggregate keyed on {!Hsq_hist.Level_index.epoch} (rebuilt
    only after a partition add / merge / expire / recovery), merged
    with a fresh stream summary — the steady-state O(S) query path.
    With an explicit [partitions] subset (windows, ranges) the summary
    is built fresh. Both paths produce identical entries. *)
val union_summary : ?partitions:Hsq_hist.Partition.t list -> t -> Union_summary.t

(** TS built from scratch over the full partition set, bypassing the
    cache — the reference the consistency fuzz suite compares
    {!union_summary} against. *)
val fresh_union_summary : t -> Union_summary.t

(** Algorithm 5. Rank is clamped to [1, N]. Raises on an empty engine. *)
val quick : t -> rank:int -> int

(** Quick answer plus an upper bound on its rank error: the Lemma 2
    rank window of the answer around the requested rank, widened by the
    quarantined element count. The oracle-checked bound the chaos
    harness asserts against. *)
val quick_with_bound : t -> rank:int -> int * float

(** Algorithms 6–8. Returns the answer and its cost.
    [tolerance_factor] sets Algorithm 8's stopping band as a multiple
    of ε₂·m: the paper's band is factor 4 (= ε·m); the default 0.5
    trades a few (mostly cached) extra probes for ~4× better accuracy.
    This is the accuracy/disk-access axis of the tradeoff space the
    paper's conclusion discusses.

    [deadline_ms] (default [config.query_deadline_ms]) bounds the
    query's wall clock: the bisection checks it between iterations (and
    parallel probe rounds are cooperatively cancelled), and a cut query
    returns its best-so-far answer with [degradation = `Deadline] and
    an honest [rank_error_bound]. Probe failures are contained rather
    than surfaced: the failing partition's counter advances toward
    quarantine ([config.quarantine_after]), the query retries without
    it, and a breaker-open device degrades to the in-memory answer
    ([`Device_open]) without quarantining healthy partitions. *)
val accurate :
  ?tolerance_factor:float -> ?deadline_ms:float -> t -> rank:int -> int * query_report

(** Estimated rank(v, T): exact over the history, ±ε₂·m over the
    stream. *)
val rank_of : t -> int -> int

(** Empirical CDF point P(X ≤ v) over T. Raises on an empty engine. *)
val cdf : t -> int -> float

(** Batched accurate queries (answers in input order). *)
val accurate_many :
  ?tolerance_factor:float -> t -> ranks:int list -> (int * query_report) list

(** φ-quantile of Definition 1 (rank = ⌈φN⌉), accurate / quick path. *)
val quantile : t -> float -> int * query_report

val quick_quantile : t -> float -> int

(** {2 Windowed queries (Section 2.4)}

    A window covers the last [w] archived time steps plus the live
    stream; only partition-aligned windows are answerable. *)

type window_error = Window_not_aligned of int list

(** Window sizes currently answerable, ascending. *)
val window_sizes : t -> int list

(** Elements in the window (including the stream). *)
val window_total : t -> window:int -> (int, window_error) result

(** Same [tolerance_factor] / [deadline_ms] contract as {!accurate}:
    a deadline-cut windowed query degrades honestly rather than
    overrunning its budget. *)
val accurate_window :
  ?tolerance_factor:float ->
  ?deadline_ms:float ->
  t ->
  window:int ->
  rank:int ->
  (int * query_report, window_error) result
val quick_window : t -> window:int -> rank:int -> (int, window_error) result
val quantile_window : t -> window:int -> float -> (int * query_report, window_error) result

(** {2 Historical range queries}

    Quantiles over the archived steps [first, last] only (the live
    stream excluded) — "compare current trends with those observed over
    different time periods" from the paper's introduction. Answerable
    iff the range is partition-aligned; errors carry the current
    partition extents so callers can snap. With exact partition ranks
    and no stream, answers are near-exact. *)

type range_error = Range_not_aligned of (int * int) list

val range_total : t -> first:int -> last:int -> (int, range_error) result

val accurate_range :
  ?tolerance_factor:float ->
  t ->
  first:int ->
  last:int ->
  rank:int ->
  (int * query_report, range_error) result

val quantile_range :
  t -> first:int -> last:int -> float -> (int * query_report, range_error) result

(** {2 Durable ingest (write-ahead log + sketch checkpoints)}

    {!open_or_recover} opens (or creates) a crash-safe store rooted at
    [config.wal_dir]: a block-device file, its warehouse sidecar, a
    write-ahead log, and an optional sketch checkpoint. Every
    {!observe} is WAL-logged before it is applied; {!end_time_step}
    archives the batch with an exactly-once commit protocol; recovery
    composes the warehouse load, the checkpoint, and a WAL replay into
    one consistent state. Under [wal_sync = Always] a crash loses no
    acknowledged element; under [Group k] at most the last [k]. *)

(** What recovery did. [replayed] counts WAL records re-applied (only
    those past the checkpoint — the {!Hsq_storage.Io_stats}
    [wal_replayed] counter agrees); [steps_skipped] counts commit
    markers whose step was already in the warehouse (crash between the
    sidecar write and the WAL rotation); [wal_tail] is why the log tail
    was floored, if it was torn. *)
type recovery_report = {
  replayed : int;
  steps_reingested : int;
  steps_skipped : int;
  checkpoint_used : bool;
  wal_tail : string option;
}

(** Open the durable store at [config.wal_dir], recovering any state a
    previous process left behind. Raises [Invalid_argument] if
    [config.wal_dir] is [None], and {!Hsq_storage.Block_device.Device_error}
    / [Meta.Corrupt_metadata] on unrecoverable store damage (a corrupt
    checkpoint is NOT damage: it falls back to a full replay). *)
val open_or_recover : Config.t -> t * recovery_report

(** Flush the WAL and close the log and device files. Never called in
    the crash tests — a crash is, by definition, not closing.
    Idempotent: a second [close] (or a [close] after {!crash}) is a
    no-op, so overlapping shutdown paths are safe. *)
val close : t -> unit

(** Simulate a power cut (test helper): unflushed WAL records vanish
    and file handles are released. What survives on disk is exactly
    what the sync policy had made durable. Idempotent, like {!close}. *)
val crash : t -> unit

(** [true] once {!close} or {!crash} has run. *)
val is_closed : t -> bool

(** Force a sketch checkpoint right now (also taken automatically every
    [config.checkpoint_every] WAL records). No-op on a volatile
    engine, and on a closed one. *)
val checkpoint_now : t -> unit

(** Live durability introspection for status tooling; [None] on a
    volatile engine. [last_checkpoint_seq] = 0 means no live
    checkpoint. *)
type durability_status = {
  wal_path : string;
  wal_start_seq : int;
  wal_next_seq : int;
  wal_pending : int;
  checkpoint_path : string;
  last_checkpoint_seq : int;
  since_checkpoint : int;
}

val durability_status : t -> durability_status option

(** The four files of a durable store directory, in order:
    (device, warehouse sidecar, WAL, checkpoint). For status tooling
    that inspects a store without opening it. *)
val store_paths : dir:string -> string * string * string * string

(** Inject faults into the engine's WAL appends (crash fuzzing). *)
val set_wal_injector :
  t -> (int -> Hsq_storage.Block_device.fault_action option) option -> unit
