(** Sketch checkpoints for the durable ingest path: the open time
    step's batch spool and GK sketch state, frozen at a WAL sequence
    number so recovery replays only the log suffix past it.

    Written with the Persist sidecar idiom (plain text, trailing
    whole-file checksum, temp file + rename): a torn or tampered
    checkpoint reads as absent, never as wrong state. *)

type t = {
  seq : int;          (** last WAL sequence number covered *)
  steps_done : int;   (** warehouse time steps committed at save time *)
  batch : int array;  (** the open step's spooled elements, in order *)
  gk : int array;     (** {!Hsq_sketch.Gk.serialize} of the stream sketch *)
  lane_seqs : int array;
      (** last covered WAL sequence per extra ingest lane (lanes 1..D-1
          of a multi-domain engine; lane 0 is [seq]). [[||]] for a
          single-lane engine, which keeps the on-disk format identical
          to the pre-lane version; a checkpoint carrying lane cuts is
          written as format version 2, which older readers reject —
          and a rejected checkpoint reads as absent, falling back to
          the always-correct full WAL replay. *)
}

(** Atomically write the checkpoint to [path]. *)
val save : path:string -> t -> unit

(** [Ok None] — no checkpoint file; [Ok (Some c)] — a valid one;
    [Error why] — present but unreadable (torn write, bit rot, version
    skew). Callers must treat [Error] like [Ok None] and fall back to a
    full WAL replay. *)
val load : path:string -> (t option, string) result
