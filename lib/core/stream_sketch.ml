(* Dispatch layer over the two ε₂ stream sketches.  See the mli for
   the tagged checkpoint format. *)

module Gk_impl = Hsq_sketch.Gk
module Kll_impl = Hsq_sketch.Kll

type kind = [ `Gk | `Kll ]
type t = Gk of Gk_impl.t | Kll of Kll_impl.t

let tag_gk = 1
let tag_kll = 2

let create ?(seed = 0) ~kind ~epsilon () =
  match kind with
  | `Gk -> Gk (Gk_impl.create ~epsilon)
  | `Kll -> Kll (Kll_impl.create ~seed ~epsilon ())

let create_capped ?(seed = 0) ~kind ~words () =
  match kind with
  | `Gk -> Gk (Gk_impl.create_capped ~words)
  | `Kll -> Kll (Kll_impl.create_capped ~seed ~words ())

let kind = function Gk _ -> `Gk | Kll _ -> `Kll
let kind_label = function Gk _ -> "gk" | Kll _ -> "kll"

let insert = function Gk g -> Gk_impl.insert g | Kll k -> Kll_impl.insert k

let insert_sorted_batch = function
  | Gk g -> Gk_impl.insert_sorted_batch g
  | Kll k -> Kll_impl.insert_sorted_batch k

let count = function Gk g -> Gk_impl.count g | Kll k -> Kll_impl.count k
let size = function Gk g -> Gk_impl.size g | Kll k -> Kll_impl.size k
let epsilon = function Gk g -> Gk_impl.epsilon g | Kll k -> Kll_impl.epsilon k

let error_bound = function
  | Gk g -> Gk_impl.error_bound g
  | Kll k -> Kll_impl.error_bound k

let memory_words = function
  | Gk g -> Gk_impl.memory_words g
  | Kll k -> Kll_impl.memory_words k

let query_rank = function Gk g -> Gk_impl.query_rank g | Kll k -> Kll_impl.query_rank k
let rank_of = function Gk g -> Gk_impl.rank_of g | Kll k -> Kll_impl.rank_of k
let min_value = function Gk g -> Gk_impl.min_value g | Kll k -> Kll_impl.min_value k
let max_value = function Gk g -> Gk_impl.max_value g | Kll k -> Kll_impl.max_value k
let as_kll = function Gk _ -> None | Kll k -> Some k

let serialize t =
  let tag, payload =
    match t with
    | Gk g -> (tag_gk, Gk_impl.serialize g)
    | Kll k -> (tag_kll, Kll_impl.serialize k)
  in
  Array.append [| tag |] payload

let deserialize data =
  if Array.length data = 0 then invalid_arg "Stream_sketch.deserialize: empty image";
  let payload () = Array.sub data 1 (Array.length data - 1) in
  (* Legacy (pre-tag) GK images start with 0 (Fixed mode) or a word
     budget >= 32 (Capped); 1 and 2 are therefore free to use as tags. *)
  if data.(0) = tag_gk then Gk (Gk_impl.deserialize (payload ()))
  else if data.(0) = tag_kll then Kll (Kll_impl.deserialize (payload ()))
  else Gk (Gk_impl.deserialize data)
