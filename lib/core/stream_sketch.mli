(** The engine's pluggable ε₂ stream sketch: GK (the paper's choice,
    smaller but not mergeable) or KLL (mergeable, so per-shard stream
    summaries can compose by sketch merge).  One dispatch layer keeps
    Engine, Checkpoint, and Union_summary agnostic of the kind.

    Serialization is tagged so checkpoints self-describe: word 0 is 1
    for a GK payload and 2 for a KLL payload.  Legacy GK images never
    start with 1 or 2 (their first word is 0 for Fixed mode or a word
    budget >= 32 for Capped), so untagged checkpoints from older stores
    deserialize as GK. *)

type kind = [ `Gk | `Kll ]

type t = Gk of Hsq_sketch.Gk.t | Kll of Hsq_sketch.Kll.t

val create : ?seed:int -> kind:kind -> epsilon:float -> unit -> t
(** Raises [Invalid_argument] unless [epsilon] lies in (0, 1). *)

val create_capped : ?seed:int -> kind:kind -> words:int -> unit -> t

val kind : t -> kind
val kind_label : t -> string
(** ["gk"] or ["kll"], for status and metrics surfaces. *)

val insert : t -> int -> unit
val insert_sorted_batch : t -> int array -> unit
val count : t -> int
val size : t -> int
val epsilon : t -> float
val error_bound : t -> float
val memory_words : t -> int
val query_rank : t -> int -> int
val rank_of : t -> int -> int
val min_value : t -> int
val max_value : t -> int

val as_kll : t -> Hsq_sketch.Kll.t option
(** The underlying KLL sketch when that is the kind, for merge-based
    composition; [None] for GK. *)

val serialize : t -> int array
(** Tagged image: [[| tag; payload... |]]. *)

val deserialize : int array -> t
(** Dispatches on the tag; untagged (legacy) images parse as GK.
    Raises [Invalid_argument] on structural damage. *)
