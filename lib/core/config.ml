(* Engine configuration.

   Two sizing modes mirror how the paper presents the algorithm:

   - [Epsilon e]: Algorithm 1.  eps1 = e/2 governs the per-partition
     historical summaries (beta1 = ceil(1/eps1) + 1) and eps2 = e/4
     governs the stream sketch.  The internal GK sketch runs at eps2/2
     because its guarantee is two-sided (+-eps*n) while Lemma 1 needs
     the one-sided interval [i*eps2*m, (i+1)*eps2*m]; querying the
     half-precision sketch at rank (i+1/2)*eps2*m lands exactly in that
     interval.

   - [Memory_words w]: the experimental setup of Section 3.1 — a fixed
     word budget, split 50/50 between the stream summary and the
     historical summaries ("we allocate 50 percent of the memory to the
     stream summary and 50 percent to the historical summary"). *)

type sizing =
  | Epsilon of float
  | Memory_words of int

type t = {
  sizing : sizing;
  kappa : int; (* merge threshold (Section 2.1) *)
  block_size : int; (* elements per disk block (B) *)
  sort_memory : int option; (* external-sort budget in elements *)
  steps_hint : int; (* expected number of time steps (T), for memory split *)
  stream_fraction : float; (* share of a memory budget given to the stream sketch *)
  sort_domains : int option; (* parallel batch sorting (paper future work, Section 4) *)
  query_domains : int option; (* parallel partition probes in accurate queries;
                                 None/1 = sequential (keeps fault injection deterministic) *)
  wal_dir : string option; (* durable-ingest directory; None = stream side is volatile *)
  wal_sync : Hsq_storage.Wal.sync_policy; (* group-commit policy for the WAL *)
  checkpoint_every : int; (* WAL records between sketch checkpoints; 0 = never *)
  query_deadline_ms : float option; (* default accurate-query deadline; None = unbounded *)
  quarantine_after : int; (* consecutive unrecoverable probe failures before
                             a partition is quarantined *)
  shards : int; (* independent engine shards in a Shard_group; 1 = single engine *)
  replicas : int; (* independent engine replicas per shard in a Shard_group;
                     1 = unreplicated (the classic layout) *)
  ingest_domains : int; (* concurrent ingest lanes feeding the stream sketch;
                           1 = the classic single-writer observe path *)
  ingest_batch : int; (* elements a lane buffers before one batched hand-off
                         into the GK sketch (the propagation granularity) *)
  stream_sketch : [ `Gk | `Kll ]; (* which ε₂ rank sketch summarizes the open step:
                                     GK (paper) or mergeable KLL *)
}

let default =
  {
    sizing = Epsilon 0.01;
    kappa = 10;
    block_size = 256;
    sort_memory = None;
    steps_hint = 100;
    stream_fraction = 0.5;
    sort_domains = None;
    query_domains = None;
    wal_dir = None;
    wal_sync = Hsq_storage.Wal.Always;
    checkpoint_every = 10_000;
    query_deadline_ms = None;
    quarantine_after = 3;
    shards = 1;
    replicas = 1;
    ingest_domains = 1;
    ingest_batch = 512;
    stream_sketch = `Gk;
  }

let make ?(kappa = default.kappa) ?(block_size = default.block_size) ?sort_memory
    ?(steps_hint = default.steps_hint) ?(stream_fraction = default.stream_fraction) ?sort_domains
    ?query_domains ?wal_dir ?(wal_sync = default.wal_sync)
    ?(checkpoint_every = default.checkpoint_every) ?query_deadline_ms
    ?(quarantine_after = default.quarantine_after) ?(shards = default.shards)
    ?(replicas = default.replicas) ?(ingest_domains = default.ingest_domains) ?(ingest_batch = default.ingest_batch)
    ?(stream_sketch = default.stream_sketch) sizing =
  (match sizing with
  | Epsilon e when not (e > 0.0 && e < 1.0) -> invalid_arg "Config.make: epsilon not in (0,1)"
  | Epsilon _ -> ()
  | Memory_words w when w < 128 -> invalid_arg "Config.make: memory budget below 128 words"
  | Memory_words _ -> ());
  if kappa < 2 then invalid_arg "Config.make: kappa must be >= 2";
  if block_size < 2 then invalid_arg "Config.make: block_size must be >= 2";
  if steps_hint < 1 then invalid_arg "Config.make: steps_hint must be >= 1";
  if not (stream_fraction > 0.0 && stream_fraction < 1.0) then
    invalid_arg "Config.make: stream_fraction must lie in (0,1)";
  (match sort_domains with
  | Some d when d < 1 -> invalid_arg "Config.make: sort_domains must be >= 1"
  | _ -> ());
  (match query_domains with
  | Some d when d < 1 -> invalid_arg "Config.make: query_domains must be >= 1"
  | _ -> ());
  (match wal_sync with
  | Hsq_storage.Wal.Group n when n < 1 -> invalid_arg "Config.make: group-commit window must be >= 1"
  | _ -> ());
  if checkpoint_every < 0 then invalid_arg "Config.make: checkpoint_every must be >= 0";
  (match query_deadline_ms with
  | Some d when not (d > 0.0) -> invalid_arg "Config.make: query_deadline_ms must be > 0"
  | _ -> ());
  if quarantine_after < 1 then invalid_arg "Config.make: quarantine_after must be >= 1";
  if shards < 1 then invalid_arg "Config.make: shards must be >= 1";
  if replicas < 1 || replicas > 8 then invalid_arg "Config.make: replicas must lie in [1, 8]";
  if ingest_domains < 1 || ingest_domains > 32 then
    invalid_arg "Config.make: ingest_domains must lie in [1, 32]";
  if ingest_batch < 1 then invalid_arg "Config.make: ingest_batch must be >= 1";
  {
    sizing;
    kappa;
    block_size;
    sort_memory;
    steps_hint;
    stream_fraction;
    sort_domains;
    query_domains;
    wal_dir;
    wal_sync;
    checkpoint_every;
    query_deadline_ms;
    quarantine_after;
    shards;
    replicas;
    ingest_domains;
    ingest_batch;
    stream_sketch;
  }

(* Maximum simultaneous partitions: kappa per level, over
   ceil(log_kappa T) + 1 levels (Lemma 8). *)
let max_partitions t =
  let levels =
    int_of_float (ceil (log (float_of_int (max 2 t.steps_hint)) /. log (float_of_int t.kappa))) + 1
  in
  t.kappa * levels

(* beta1 (historical summary length per partition, Algorithm 1). *)
let beta1 t =
  match t.sizing with
  | Epsilon e ->
    let eps1 = e /. 2.0 in
    int_of_float (ceil (1.0 /. eps1)) + 1
  | Memory_words w ->
    let hist_budget = int_of_float ((1.0 -. t.stream_fraction) *. float_of_int w) in
    (* 3 words per summary entry, over at most [max_partitions]. *)
    max 2 ((hist_budget - 16) / (3 * max_partitions t))

(* Word budget for the stream sketch in memory mode. *)
let stream_words t =
  match t.sizing with
  | Epsilon _ -> None
  | Memory_words w -> Some (max 50 (int_of_float (t.stream_fraction *. float_of_int w)))

(* GK error parameter in epsilon mode (= eps2 / 2, see header comment). *)
let gk_epsilon t =
  match t.sizing with Epsilon e -> Some (e /. 8.0) | Memory_words _ -> None
