(* Sketch checkpoints for the durable ingest path.

   A checkpoint freezes the stream side R of the open time step — the
   batch spool and the GK sketch state — together with the WAL sequence
   number it covers, so recovery replays only the log suffix past
   [seq] instead of the whole open step.  [steps_done] records how many
   time steps the warehouse had durably committed when the checkpoint
   was taken: a checkpoint is only usable if the recovered warehouse
   agrees (otherwise its batch describes a step that has since been
   archived, or one the warehouse rolled back — either way it is stale
   and recovery falls back to a full WAL replay, which is always
   correct, just slower).

   The file uses the Persist sidecar idiom: plain text, a trailing
   whole-file checksum line, written to a temp file and renamed into
   place.  A torn or tampered checkpoint therefore reads as "absent",
   never as wrong state. *)

let format_version = 1

(* Version 2 adds the per-lane WAL sequence cuts of a multi-domain
   engine (engine.ml, DESIGN.md §15).  Single-lane checkpoints keep
   rendering version 1 byte-for-byte, so a store written by a D = 1
   engine stays readable by older code; a version-2 file read by older
   code fails the version check and is treated as absent — recovery then
   replays the whole WAL, which is always correct. *)
let format_version_lanes = 2

type t = {
  seq : int; (* last WAL sequence number covered by this state *)
  steps_done : int; (* warehouse time steps committed at save time *)
  batch : int array; (* the open step's spooled elements, in order *)
  gk : int array; (* Gk.serialize of the stream sketch *)
  lane_seqs : int array; (* last covered sequence per extra ingest lane
                            (lanes 1..D-1; lane 0 is [seq]); [||] for a
                            single-lane engine *)
}

let render c =
  let buf = Buffer.create (256 + (8 * (Array.length c.batch + Array.length c.gk))) in
  let version = if Array.length c.lane_seqs = 0 then format_version else format_version_lanes in
  Printf.bprintf buf "hsq-ckpt %d\n" version;
  Printf.bprintf buf "seq %d\n" c.seq;
  Printf.bprintf buf "steps_done %d\n" c.steps_done;
  let emit_words name ws =
    Printf.bprintf buf "%s_len %d\n" name (Array.length ws);
    Buffer.add_string buf name;
    Array.iter (fun w -> Printf.bprintf buf " %d" w) ws;
    Buffer.add_char buf '\n'
  in
  if version = format_version_lanes then emit_words "lanes" c.lane_seqs;
  emit_words "batch" c.batch;
  emit_words "gk" c.gk;
  Printf.bprintf buf "checksum %x\n" (Meta.checksum (Buffer.contents buf));
  Buffer.contents buf

let save ~path c = Meta.write ~path (render c)

let parse_error msg = raise (Meta.Corrupt_metadata msg)

let parse lines =
  let lines = Array.of_list lines in
  let pos = ref 0 in
  let next () =
    if !pos < Array.length lines then begin
      let l = lines.(!pos) in
      incr pos;
      Some l
    end
    else None
  in
  let expect_prefix prefix line =
    let plen = String.length prefix in
    match line with
    | Some l when String.length l >= plen && String.sub l 0 plen = prefix ->
      String.sub l plen (String.length l - plen)
    | Some l -> parse_error (Printf.sprintf "expected %S..., found %S" prefix l)
    | None -> parse_error (Printf.sprintf "missing %S line" prefix)
  in
  let int_field prefix =
    match int_of_string_opt (expect_prefix prefix (next ())) with
    | Some v -> v
    | None -> parse_error (Printf.sprintf "non-integer value for %S" (String.trim prefix))
  in
  let header = expect_prefix "hsq-ckpt " (next ()) in
  let version =
    match int_of_string_opt header with
    | Some v when v = format_version || v = format_version_lanes -> v
    | _ -> parse_error ("unsupported checkpoint version " ^ header)
  in
  let seq = int_field "seq " in
  let steps_done = int_field "steps_done " in
  let words name =
    let len = int_field (name ^ "_len ") in
    if len < 0 then parse_error (name ^ " length negative");
    let line = expect_prefix name (next ()) in
    let fields =
      List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
    in
    if List.length fields <> len then
      parse_error (Printf.sprintf "%s holds %d words, expected %d" name (List.length fields) len);
    let out = Array.make len 0 in
    List.iteri
      (fun i s ->
        match int_of_string_opt s with
        | Some v -> out.(i) <- v
        | None -> parse_error (Printf.sprintf "non-integer word in %s" name))
      fields;
    out
  in
  let lane_seqs = if version = format_version_lanes then words "lanes" else [||] in
  let batch = words "batch" in
  let gk = words "gk" in
  if seq < 0 || steps_done < 0 then parse_error "negative sequence or step count";
  { seq; steps_done; batch; gk; lane_seqs }

(* [Ok None] — no checkpoint on disk; [Ok (Some c)] — a valid one;
   [Error why] — a file is present but unreadable (torn write, bit rot,
   version skew).  Recovery treats [Error] exactly like [Ok None] —
   replay the whole WAL — but the distinction is reported. *)
let load ~path =
  if not (Sys.file_exists path) then Ok None
  else
    match parse (Meta.verify_checksum (Meta.read_lines path)) with
    | c -> Ok (Some c)
    | exception Meta.Corrupt_metadata msg -> Error msg
    | exception Failure msg -> Error msg
    | exception Sys_error msg -> Error msg
