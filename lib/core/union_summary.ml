(* The merged summary TS of the entire dataset T = H u R, with per-entry
   rank bounds L_i and U_i (Section 2.3.1, Figure 3, Lemma 2).

   For each summary value v:

     L(v) = stream_lower(v) + sum_P hist_lower_P(v)
     U(v) = stream_upper(v) + sum_P hist_upper_P(v)

   The historical contributions use the *exact* indices stored in the
   partition summaries, which tightens (never loosens) the paper's
   m_P*eps1*(alpha_P - 1) / m_P*eps1*alpha_P bounds; the stream
   contributions follow Lemma 2 verbatim.

   The historical half is factored out as an explicit aggregate
   ({!hist_agg}): the summed bounds A(v) = (sum_P lower_P(v),
   sum_P upper_P(v)) form a step function of v that changes only at the
   distinct partition-summary values, because within a partition
   [rank_bounds] depends only on how many of that summary's entries are
   <= v.  The aggregate materialises that step function once — a k-way
   merge of the P summary-entry arrays with incrementally maintained
   prefix sums, O(S_hist log P) — after which every TS build is a linear
   two-pointer merge against the stream summary instead of P binary
   searches per distinct value.  [build] itself is defined as
   [build_from_agg] of a freshly computed aggregate, so the cached and
   uncached query paths share one code path and produce bitwise
   identical entries. *)

type entry = {
  value : int;
  lower : float; (* L_i: rank(value, T) >= lower *)
  upper : float; (* U_i: rank(value, T) <= upper *)
}

type t = {
  entries : entry array; (* sorted by value, distinct values *)
  n_total : int; (* |T| = n + m *)
  m_stream : int;
  hist_elements : int;
}

(* --- Historical aggregate --------------------------------------------- *)

type hist_agg = {
  hvalues : int array; (* distinct summary values across partitions, ascending *)
  hlo : int array; (* hlo.(k) = sum_P lower_P(hvalues.(k)) *)
  hhi : int array; (* hhi.(k) = sum_P upper_P(hvalues.(k)) *)
  base_lo : int; (* sums for v below every summary value... *)
  base_hi : int; (* ...always (0, 0): entry 0 of a summary has index 0 *)
  agg_hist_elements : int;
}

let hist_agg_size agg = Array.length agg.hvalues
let hist_agg_elements agg = agg.agg_hist_elements

(* Bounds of the step function at any v: constant on [hvalues.(k-1),
   hvalues.(k)), so it is the bounds recorded at the largest summary
   value <= v (the base sums when v is below all of them). *)
let hist_agg_bounds agg v =
  let hv = agg.hvalues in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if hv.(mid) <= v then go (mid + 1) hi else go lo mid
  in
  let k = go 0 (Array.length hv) in
  if k = 0 then (agg.base_lo, agg.base_hi) else (agg.hlo.(k - 1), agg.hhi.(k - 1))

(* Minimal binary min-heap over (value, source) pairs, as in
   Kway_merge; ties break on source index for determinism. *)
module Heap = struct
  type elt = { value : int; src : int }
  type h = { mutable data : elt array; mutable size : int }

  let create capacity = { data = Array.make (max 1 capacity) { value = 0; src = 0 }; size = 0 }
  let is_empty h = h.size = 0
  let less a b = a.value < b.value || (a.value = b.value && a.src < b.src)

  let push h e =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) e in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty heap";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

(* K-way merge of the partition-summary entry arrays, maintaining the
   summed bounds incrementally.  When partition p's consumed-entry
   count advances from a to a+1, its contribution changes by a delta
   computable from two adjacent entries (Partition_summary.rank_bounds:
   lower_p(a) = entries.(a-1).index + 1, or 0 at a = 0;
   upper_p(a) = entries.(a).index, or the partition size at the end),
   so each of the S_hist entries costs O(log P) heap work plus O(1)
   arithmetic. *)
let hist_aggregate ~partitions =
  let summaries =
    Array.of_list (List.map (fun p -> Hsq_hist.Partition.summary p) partitions)
  in
  let nparts = Array.length summaries in
  let ents = Array.map Hsq_hist.Partition_summary.entries summaries in
  let sizes = Array.map Hsq_hist.Partition_summary.partition_size summaries in
  let hist_elements = Array.fold_left ( + ) 0 sizes in
  let total_entries = Array.fold_left (fun acc e -> acc + Array.length e) 0 ents in
  let pos = Array.make (max 1 nparts) 0 in
  let heap = Heap.create (max 1 nparts) in
  for p = 0 to nparts - 1 do
    if Array.length ents.(p) > 0 then
      Heap.push heap { Heap.value = ents.(p).(0).Hsq_hist.Partition_summary.value; src = p }
  done;
  (* Contributions at pos = 0 everywhere: lower is 0 by definition and
     upper is entry 0's index, which is always 0 (summaries capture the
     partition minimum at slot 0) — kept explicit for robustness. *)
  let base_lo = ref 0 and base_hi = ref 0 in
  for p = 0 to nparts - 1 do
    let e = ents.(p) in
    base_hi := !base_hi + (if Array.length e = 0 then sizes.(p) else e.(0).Hsq_hist.Partition_summary.index)
  done;
  let hvalues = Array.make (max 1 total_entries) 0 in
  let hlo = Array.make (max 1 total_entries) 0 in
  let hhi = Array.make (max 1 total_entries) 0 in
  let k = ref 0 in
  let sum_lo = ref !base_lo and sum_hi = ref !base_hi in
  while not (Heap.is_empty heap) do
    let v = heap.Heap.data.(0).Heap.value in
    (* Consume every entry equal to v (duplicates within a summary and
       across partitions), advancing the owning pointers. *)
    while (not (Heap.is_empty heap)) && heap.Heap.data.(0).Heap.value = v do
      let { Heap.src = p; _ } = Heap.pop heap in
      let e = ents.(p) in
      let len = Array.length e in
      let a = pos.(p) in
      let old_lo = if a = 0 then 0 else e.(a - 1).Hsq_hist.Partition_summary.index + 1 in
      let new_lo = e.(a).Hsq_hist.Partition_summary.index + 1 in
      let old_hi = if a = len then sizes.(p) else e.(a).Hsq_hist.Partition_summary.index in
      let new_hi = if a + 1 = len then sizes.(p) else e.(a + 1).Hsq_hist.Partition_summary.index in
      sum_lo := !sum_lo + new_lo - old_lo;
      sum_hi := !sum_hi + new_hi - old_hi;
      pos.(p) <- a + 1;
      if a + 1 < len then
        Heap.push heap { Heap.value = e.(a + 1).Hsq_hist.Partition_summary.value; src = p }
    done;
    hvalues.(!k) <- v;
    hlo.(!k) <- !sum_lo;
    hhi.(!k) <- !sum_hi;
    incr k
  done;
  {
    hvalues = Array.sub hvalues 0 !k;
    hlo = Array.sub hlo 0 !k;
    hhi = Array.sub hhi 0 !k;
    base_lo = !base_lo;
    base_hi = !base_hi;
    agg_hist_elements = hist_elements;
  }

(* --- TS construction --------------------------------------------------- *)

(* Linear two-pointer merge of the aggregate's distinct values with the
   stream summary's values, deduplicating in place.  The aggregate index
   after consuming all its values <= v is exactly count_le(v), so the
   historical bounds come from one array lookup; the stream bounds are
   the same Stream_summary calls the direct build makes, keeping the
   float arithmetic bitwise identical. *)
let build_from_agg ~agg ~stream =
  let hv = agg.hvalues in
  let sv = Stream_summary.values stream in
  let nh = Array.length hv and ns = Array.length sv in
  let m_stream = Stream_summary.stream_size stream in
  let out = Array.make (max 1 (nh + ns)) { value = 0; lower = 0.0; upper = 0.0 } in
  let i = ref 0 and j = ref 0 and n = ref 0 in
  while !i < nh || !j < ns do
    let v =
      if !j >= ns then hv.(!i)
      else if !i >= nh then sv.(!j)
      else if hv.(!i) <= sv.(!j) then hv.(!i)
      else sv.(!j)
    in
    while !i < nh && hv.(!i) = v do incr i done;
    while !j < ns && sv.(!j) = v do incr j done;
    let hlo_v, hhi_v =
      if !i = 0 then (agg.base_lo, agg.base_hi) else (agg.hlo.(!i - 1), agg.hhi.(!i - 1))
    in
    out.(!n) <-
      {
        value = v;
        lower = float_of_int hlo_v +. Stream_summary.rank_lower stream v;
        upper = float_of_int hhi_v +. Stream_summary.rank_upper stream v;
      };
    incr n
  done;
  {
    entries = Array.sub out 0 !n;
    n_total = agg.agg_hist_elements + m_stream;
    m_stream;
    hist_elements = agg.agg_hist_elements;
  }

let build ~partitions ~stream = build_from_agg ~agg:(hist_aggregate ~partitions) ~stream

(* Fused build over K stream summaries (sharded stores): the same merge
   with the two-pointer walk generalised to a heap over the aggregate
   plus every stream's value array.  For each distinct value the
   historical bounds come from the aggregate exactly as in
   [build_from_agg]; the stream bounds are the *sums* of the per-shard
   Lemma 2 bounds — each shard's sketch brackets its own rank, so the
   sums bracket the union rank, and the per-entry window widens only to
   Σ_s ε₂·m_s = ε₂·m when every shard runs the same ε₂ (the additive
   budget DESIGN.md §14 relies on).  [streams = [s]] produces entries
   equal to [build_from_agg ~agg ~stream:s]. *)
let build_fused ~agg ~streams =
  let streams = Array.of_list streams in
  let k = Array.length streams in
  let svs = Array.map Stream_summary.values streams in
  let hv = agg.hvalues in
  let m_total = Array.fold_left (fun acc s -> acc + Stream_summary.stream_size s) 0 streams in
  let total_values =
    Array.length hv + Array.fold_left (fun acc v -> acc + Array.length v) 0 svs
  in
  (* Source 0 is the aggregate's value array; source s+1 is stream s. *)
  let arr src = if src = 0 then hv else svs.(src - 1) in
  let pos = Array.make (k + 1) 0 in
  let heap = Heap.create (k + 1) in
  for src = 0 to k do
    if Array.length (arr src) > 0 then Heap.push heap { Heap.value = (arr src).(0); src }
  done;
  let out = Array.make (max 1 total_values) { value = 0; lower = 0.0; upper = 0.0 } in
  let n = ref 0 in
  while not (Heap.is_empty heap) do
    let v = heap.Heap.data.(0).Heap.value in
    while (not (Heap.is_empty heap)) && heap.Heap.data.(0).Heap.value = v do
      let { Heap.src; _ } = Heap.pop heap in
      let a = arr src in
      let i = ref pos.(src) in
      while !i < Array.length a && a.(!i) = v do incr i done;
      pos.(src) <- !i;
      if !i < Array.length a then Heap.push heap { Heap.value = a.(!i); src }
    done;
    let hlo_v, hhi_v =
      if pos.(0) = 0 then (agg.base_lo, agg.base_hi) else (agg.hlo.(pos.(0) - 1), agg.hhi.(pos.(0) - 1))
    in
    let slo = ref 0.0 and shi = ref 0.0 in
    for s = 0 to k - 1 do
      slo := !slo +. Stream_summary.rank_lower streams.(s) v;
      shi := !shi +. Stream_summary.rank_upper streams.(s) v
    done;
    out.(!n) <- { value = v; lower = float_of_int hlo_v +. !slo; upper = float_of_int hhi_v +. !shi };
    incr n
  done;
  {
    entries = Array.sub out 0 !n;
    n_total = agg.agg_hist_elements + m_total;
    m_stream = m_total;
    hist_elements = agg.agg_hist_elements;
  }

let entries t = t.entries
let size t = Array.length t.entries
let n_total t = t.n_total
let m_stream t = t.m_stream
let hist_elements t = t.hist_elements

(* Entry-for-entry equality (exact float comparison): the consistency
   contract between cached and fresh builds checked by the fuzz suite. *)
(* Rank window of an arbitrary value against the union: L from the
   largest entry with value <= v (no smaller entry can push the rank
   lower), U from the smallest entry with value >= v.  Used to compute
   the *current* rank-error bound of a best-so-far answer when a query
   is cut short (deadline, degraded fallback): |rank(v) - r| is at most
   max(U(v) - r, r - L(v)). *)
let rank_window t v =
  let n = Array.length t.entries in
  if n = 0 then invalid_arg "Union_summary.rank_window: empty summary";
  (* smallest i with value >= v (= n when none). *)
  let first_ge =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.entries.(mid).value >= v then go lo mid else go (mid + 1) hi
    in
    go 0 n
  in
  let lower =
    if first_ge < n && t.entries.(first_ge).value = v then t.entries.(first_ge).lower
    else if first_ge = 0 then 0.0 (* below the union minimum *)
    else t.entries.(first_ge - 1).lower
  in
  let upper =
    if first_ge = n then float_of_int t.n_total (* above the union maximum *)
    else t.entries.(first_ge).upper
  in
  (lower, upper)

let equal a b =
  a.n_total = b.n_total && a.m_stream = b.m_stream
  && a.hist_elements = b.hist_elements
  && Array.length a.entries = Array.length b.entries
  && (let ok = ref true in
      Array.iteri
        (fun i (e : entry) ->
          let f = b.entries.(i) in
          if not (e.value = f.value && e.lower = f.lower && e.upper = f.upper) then ok := false)
        a.entries;
      !ok)

(* Algorithm 5: the smallest j with L_j >= r, else the last entry. *)
let quick_select t ~rank =
  if Array.length t.entries = 0 then invalid_arg "Union_summary.quick_select: empty summary";
  let r = float_of_int rank in
  let n = Array.length t.entries in
  (* L is non-decreasing in the value, so binary search applies. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.entries.(mid).lower >= r then go lo mid else go (mid + 1) hi
  in
  let j = go 0 n in
  let j = if j = n then n - 1 else j in
  t.entries.(j).value

(* Algorithm 7 (GenerateFilters): values u <= v bracketing the element
   of the requested rank: rank(u, T) <= r <= rank(v, T).

   u is the largest entry with U <= r; if every U exceeds r, any value
   below the global minimum works, so we use min - 1.  v is the
   smallest entry with L >= r; since L of the last entry is >= N - eps*N
   and r <= N, the last entry is a safe fallback. *)
let filters t ~rank =
  if Array.length t.entries = 0 then invalid_arg "Union_summary.filters: empty summary";
  let r = float_of_int rank in
  let n = Array.length t.entries in
  (* Both L and U are non-decreasing in the value, so binary search. *)
  let first_upper_gt =
    (* smallest i with U_i > r (= n when none) *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.entries.(mid).upper > r then go lo mid else go (mid + 1) hi
    in
    go 0 n
  in
  let u = if first_upper_gt = 0 then t.entries.(0).value - 1 else t.entries.(first_upper_gt - 1).value in
  let first_lower_ge =
    (* smallest i with L_i >= r (= n when none) *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.entries.(mid).lower >= r then go lo mid else go (mid + 1) hi
    in
    go 0 n
  in
  let v = if first_lower_ge = n then t.entries.(n - 1).value else t.entries.(first_lower_ge).value in
  (u, max u v)
