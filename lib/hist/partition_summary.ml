(* In-memory summary of one sorted partition (Algorithm 2, "HS^i_l").

   The summary holds beta1 elements: S[0] is the partition minimum and
   S[i] is the element at rank i * eps1 * eta (1-based), where
   eps1 = 1/(beta1 - 1).  Each entry records the element's exact 0-based
   index in the partition (the paper: "its rank within the corresponding
   partition is explicitly computed and stored") — queries use these
   exact positions both to bound rank intervals (Lemma 2) and to narrow
   the on-disk binary searches of Algorithm 8.

   Summaries are built incrementally through the observe hooks of
   External_sort/Kway_merge, so they require no disk reads of their
   own. *)

type entry = { value : int; index : int (* 0-based position in the partition *) }

type t = {
  entries : entry array;
  partition_size : int;
}

(* A builder receives every partition element, in order, exactly once. *)
type builder = {
  beta1 : int;
  size : int;
  targets : int array; (* ascending 0-based indices to capture *)
  mutable next_target : int;
  mutable captured : entry list;
}

(* Index captured for summary slot i over a partition of [size]
   elements: slot 0 is index 0; slot i is 1-based rank
   ceil(i * size / (beta1 - 1)) clamped to the partition. *)
let target_index ~beta1 ~size i =
  if i = 0 then 0
  else begin
    let rank = float_of_int i *. float_of_int size /. float_of_int (beta1 - 1) in
    min (size - 1) (max 0 (int_of_float (ceil rank) - 1))
  end

let builder ~beta1 ~size =
  if beta1 < 2 then invalid_arg "Partition_summary.builder: beta1 must be >= 2";
  if size < 1 then invalid_arg "Partition_summary.builder: empty partition";
  let raw = Array.init beta1 (target_index ~beta1 ~size) in
  (* Deduplicate targets (tiny partitions can collapse slots). *)
  let dedup = ref [] in
  Array.iter (fun ix -> match !dedup with x :: _ when x = ix -> () | _ -> dedup := ix :: !dedup) raw;
  let targets = Array.of_list (List.rev !dedup) in
  { beta1; size; targets; next_target = 0; captured = [] }

let builder_feed b index value =
  if b.next_target < Array.length b.targets && index = b.targets.(b.next_target) then begin
    b.captured <- { value; index } :: b.captured;
    b.next_target <- b.next_target + 1
  end

let builder_finish b =
  if b.next_target <> Array.length b.targets then
    invalid_arg "Partition_summary.builder_finish: not all elements were fed";
  { entries = Array.of_list (List.rev b.captured); partition_size = b.size }

(* Rebuild a summary from an on-disk run (the recovery path): probes
   only the beta1 target positions, costing at most beta1 block reads. *)
let of_run ~beta1 run =
  let size = Hsq_storage.Run.length run in
  let b = builder ~beta1 ~size in
  Array.iter (fun ix -> builder_feed b ix (Hsq_storage.Run.get run ix)) b.targets;
  { entries = Array.of_list (List.rev b.captured); partition_size = size }

let of_sorted_array ~beta1 elements =
  let b = builder ~beta1 ~size:(Array.length elements) in
  Array.iteri (fun i v -> builder_feed b i v) elements;
  builder_finish b

(* Degenerate summary for a partition whose blocks cannot (or must not)
   be read — a quarantined partition being restored from the sidecar.
   No entries means maximal uncertainty: [rank_bounds] answers
   [(0, size)] for every value, which is exactly the Lemma 2 widening a
   quarantined partition contributes, and no query path will ever probe
   the partition through it. *)
let unavailable ~size =
  if size < 1 then invalid_arg "Partition_summary.unavailable: empty partition";
  { entries = [||]; partition_size = size }

let entries t = t.entries
let partition_size t = t.partition_size
let length t = Array.length t.entries

(* 3 words per entry: value, index, disk pointer (the pointer is
   derivable from the index in our runs but the paper stores it, so we
   charge for it). *)
let memory_words t = 4 + (3 * Array.length t.entries)

(* Number of summary entries with value <= v ("alpha_P" in Lemma 2). *)
let count_le t v =
  let e = t.entries in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if e.(mid).value <= v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length e)

(* Exact bounds on rank(v, P) derived from the captured indices:
   the largest entry <= v sits at index j, so rank(v) >= j + 1; the
   smallest entry > v sits at index j', so rank(v) <= j'. *)
let rank_bounds t v =
  let a = count_le t v in
  let lower = if a = 0 then 0 else t.entries.(a - 1).index + 1 in
  let upper = if a = Array.length t.entries then t.partition_size else t.entries.(a).index in
  (lower, upper)

(* Search window inside the partition for Algorithm 8: every element of
   P in the open value interval (u, v) has its 0-based index within
   [fst, snd). *)
let search_window t ~u ~v =
  let lo = fst (rank_bounds t u) in
  let hi = snd (rank_bounds t v) in
  (lo, max lo hi)
