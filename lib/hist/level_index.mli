(** The historical store HD with in-memory summaries HS
    (Section 2.1, Algorithm 3, Figure 2).

    Sorted partitions are organised into levels; a level never holds
    more than κ partitions — exceeding that, all of its partitions are
    multi-way merged into one partition a level up, recursively. Each
    partition carries a {!Partition_summary.t} built during the same
    pass that writes it (no extra I/O). *)

(** Cost breakdown of one [add_batch], matching the four components the
    paper plots in Figure 6 (load, sort, merge, summary), plus exact
    I/O counters overall and for the merge cascade alone (Figures 7–8). *)
type update_report = {
  sort_seconds : float;
  load_seconds : float;
  merge_seconds : float;
  summary_seconds : float;
  io_total : Hsq_storage.Io_stats.counters;
  io_merge : Hsq_storage.Io_stats.counters;
  merges_performed : int;
  highest_level_after : int;
}

type t

(** [create ?sort_memory ?sort_domains ~kappa ~beta1 dev].
    [sort_memory] is the element budget for batch sorting — batches
    above it use external sort with on-device temporary runs.
    [sort_domains] enables parallel chunked in-memory batch sorting on
    that many OCaml domains (the paper's future-work parallel sort);
    results are identical to the sequential path. Raises
    [Invalid_argument] if [kappa < 2], [beta1 < 2], or
    [sort_domains < 1]. *)
val create :
  ?sort_memory:int ->
  ?sort_domains:int ->
  kappa:int ->
  beta1:int ->
  Hsq_storage.Block_device.t ->
  t

val device : t -> Hsq_storage.Block_device.t
val kappa : t -> int
val beta1 : t -> int
val total_elements : t -> int

(** Time steps ingested so far (T in the paper). *)
val time_steps : t -> int

(** Version counter of the partition set: bumped by every mutation that
    changes which partitions exist ([add_batch] — including its merge
    cascade, [expire], [restore]). A derivative of the partition
    summaries (e.g. the engine's cached historical aggregate) is valid
    iff the epoch it was computed at still matches. *)
val epoch : t -> int

(** Number of non-empty levels (≤ ⌈log_κ T⌉ + 1). *)
val num_levels : t -> int

val level_partitions : t -> int -> Partition.t list

(** All partitions, newest time range first. *)
val partitions : t -> Partition.t list

val partition_count : t -> int

(** Total HS footprint in words. *)
val memory_words : t -> int

(** HistUpdate (Algorithm 3): ingest one time step's batch (unsorted).
    Raises [Invalid_argument] on an empty batch. *)
val add_batch : t -> int array -> update_report

(** Exact rank of [v] in H via one summary-bounded binary search per
    partition (the ρ₁ computation of Algorithm 8). *)
val rank : t -> int -> int

(** Window sizes (in time steps, ending now) answerable exactly —
    i.e. aligned with partition boundaries (Section 2.4). Ascending. *)
val available_window_sizes : t -> int list

(** Partitions covering exactly the last [w] steps, newest first, or
    [None] if the window is not partition-aligned. *)
val partitions_for_window : t -> int -> Partition.t list option

(** Partitions tiling exactly the archived step range [first, last]
    (1-based, inclusive), newest first, or [None] if not aligned.
    Windows are the suffix case. *)
val partitions_for_range : t -> first:int -> last:int -> Partition.t list option

(** The (first_step, last_step) extent of every live partition, oldest
    first — the alignment boundaries for range queries. *)
val partition_boundaries : t -> (int * int) list

(** Retention: drop every partition entirely older than the last
    [keep_steps] steps (whole partitions only, so one straddling the
    cutoff is kept). Returns (partitions, elements) dropped. Raises
    [Invalid_argument] if [keep_steps < 1]. *)
val expire : t -> keep_steps:int -> int * int

(** Last time step dropped by retention (0 = nothing expired). *)
val expired_through : t -> int

(** Structural invariant violations (empty = healthy); used by tests. *)
val check_invariants : t -> string list

(** {2 Persistence support}

    Enough metadata to re-attach to partitions already on a device
    (used by [Hsq.Persist]). *)

type partition_descriptor = {
  first_block : int;
  length : int;
  first_step : int;
  last_step : int;
  level : int;
}

(** Descriptors for every live partition, newest first. *)
val describe : t -> partition_descriptor list

(** Rebuild an index over partitions already present on [dev],
    re-reading each summary from disk (≤ β₁ block reads per
    partition). Raises [Invalid_argument] if the descriptors violate
    the structural invariants. *)
val restore :
  ?sort_memory:int ->
  kappa:int ->
  beta1:int ->
  Hsq_storage.Block_device.t ->
  partition_descriptor list ->
  t
