(** The historical store HD with in-memory summaries HS
    (Section 2.1, Algorithm 3, Figure 2).

    Sorted partitions are organised into levels; a level never holds
    more than κ partitions — exceeding that, all of its partitions are
    multi-way merged into one partition a level up, recursively. Each
    partition carries a {!Partition_summary.t} built during the same
    pass that writes it (no extra I/O). *)

(** Cost breakdown of one [add_batch], matching the four components the
    paper plots in Figure 6 (load, sort, merge, summary), plus exact
    I/O counters overall and for the merge cascade alone (Figures 7–8).
    [deferred_merge] is [Some msg] when a device fault interrupted the
    merge cascade: the batch itself is safely archived, the failing
    merge rolled back (a level is temporarily over κ), and the merge
    will be retried by a later cascade or {!run_deferred_merges}. *)
type update_report = {
  sort_seconds : float;
  load_seconds : float;
  merge_seconds : float;
  summary_seconds : float;
  io_total : Hsq_storage.Io_stats.counters;
  io_merge : Hsq_storage.Io_stats.counters;
  merges_performed : int;
  highest_level_after : int;
  deferred_merge : string option;
}

type t

(** [create ?sort_memory ?sort_domains ~kappa ~beta1 dev].
    [sort_memory] is the element budget for batch sorting — batches
    above it use external sort with on-device temporary runs.
    [sort_domains] enables parallel chunked in-memory batch sorting on
    that many OCaml domains (the paper's future-work parallel sort);
    results are identical to the sequential path. Raises
    [Invalid_argument] if [kappa < 2], [beta1 < 2], or
    [sort_domains < 1]. *)
val create :
  ?sort_memory:int ->
  ?sort_domains:int ->
  kappa:int ->
  beta1:int ->
  Hsq_storage.Block_device.t ->
  t

val device : t -> Hsq_storage.Block_device.t
val kappa : t -> int
val beta1 : t -> int
val total_elements : t -> int

(** Time steps ingested so far (T in the paper). *)
val time_steps : t -> int

(** Version counter of the partition set: bumped by every mutation that
    changes which partitions exist ([add_batch] — including its merge
    cascade, [expire], [restore]). A derivative of the partition
    summaries (e.g. the engine's cached historical aggregate) is valid
    iff the epoch it was computed at still matches. *)
val epoch : t -> int

(** Number of non-empty levels (≤ ⌈log_κ T⌉ + 1). *)
val num_levels : t -> int

val level_partitions : t -> int -> Partition.t list

(** All partitions, newest time range first. *)
val partitions : t -> Partition.t list

val partition_count : t -> int

(** {2 Partition quarantine}

    A partition whose probes keep failing unrecoverably is quarantined:
    it stays in its level (coverage, windows and persistence still see
    it) but query paths exclude it via {!active_partitions}, widening
    their reported rank-error bound by its element count — the per-
    partition Lemma 2 interval collapsing to [\[0, size\]]. A level
    holding a quarantined partition defers its merges (they would read
    the bad blocks), so it may temporarily exceed κ;
    {!check_invariants} tolerates exactly that case. All quarantine
    calls are single-domain by contract (the query/scrub caller). *)

(** Partitions the query paths may probe — {!partitions} minus the
    quarantined ones, newest first. *)
val active_partitions : t -> Partition.t list

val is_quarantined : t -> Partition.t -> bool

(** Quarantined partitions, newest first. *)
val quarantined : t -> Partition.t list

val quarantined_count : t -> int

(** Total elements across quarantined partitions — the error-bound
    widening queries that exclude them must report. *)
val quarantined_elements : t -> int

(** Move a partition to quarantine unconditionally (scrub found it
    corrupt). No-op if already quarantined. Bumps the epoch. *)
val quarantine_partition : t -> Partition.t -> unit

(** Record one unrecoverable probe failure against the partition;
    returns [true] iff this crossed [threshold] consecutive failures
    and the partition was just quarantined (epoch bumped). *)
val note_probe_failure : t -> Partition.t -> threshold:int -> bool

(** A successful probe resets the partition's consecutive-failure
    count. *)
val note_probe_success : t -> Partition.t -> unit

(** Re-verify a quarantined partition (full sequential re-read:
    sortedness + element count), rebuild its summary, return it to
    service, and run any merge the quarantine deferred. [Error] —
    device fault or verification failure — leaves it quarantined. *)
val reinstate : t -> Partition.t -> (unit, string) result

(** Retry every merge a quarantine or a device fault deferred: merge
    any over-full level whose members are all healthy, at any level.
    Returns the number of merges performed (epoch bumped if nonzero).
    A device fault during the sweep is contained — the remaining
    levels wait for the next attempt. Called by the repair scrub after
    reinstating partitions, so a warehouse degraded by mid-merge
    faults converges back to the ≤ κ invariant. *)
val run_deferred_merges : t -> int

(** Total HS footprint in words. *)
val memory_words : t -> int

(** HistUpdate (Algorithm 3): ingest one time step's batch (unsorted).
    Raises [Invalid_argument] on an empty batch. *)
val add_batch : t -> int array -> update_report

(** Exact rank of [v] in H via one summary-bounded binary search per
    partition (the ρ₁ computation of Algorithm 8). *)
val rank : t -> int -> int

(** Window sizes (in time steps, ending now) answerable exactly —
    i.e. aligned with partition boundaries (Section 2.4). Ascending. *)
val available_window_sizes : t -> int list

(** Partitions covering exactly the last [w] steps, newest first, or
    [None] if the window is not partition-aligned. *)
val partitions_for_window : t -> int -> Partition.t list option

(** Partitions tiling exactly the archived step range [first, last]
    (1-based, inclusive), newest first, or [None] if not aligned.
    Windows are the suffix case. *)
val partitions_for_range : t -> first:int -> last:int -> Partition.t list option

(** The (first_step, last_step) extent of every live partition, oldest
    first — the alignment boundaries for range queries. *)
val partition_boundaries : t -> (int * int) list

(** Retention: drop every partition entirely older than the last
    [keep_steps] steps (whole partitions only, so one straddling the
    cutoff is kept). Returns (partitions, elements) dropped. Raises
    [Invalid_argument] if [keep_steps < 1]. *)
val expire : t -> keep_steps:int -> int * int

(** Last time step dropped by retention (0 = nothing expired). *)
val expired_through : t -> int

(** Structural invariant violations (empty = healthy); used by tests. *)
val check_invariants : t -> string list

(** {2 Persistence support}

    Enough metadata to re-attach to partitions already on a device
    (used by [Hsq.Persist]). *)

type partition_descriptor = {
  first_block : int;
  length : int;
  first_step : int;
  last_step : int;
  level : int;
  quarantined : bool;
}

(** Descriptors for every live partition, newest first. *)
val describe : t -> partition_descriptor list

(** Rebuild an index over partitions already present on [dev],
    re-reading each summary from disk (≤ β₁ block reads per
    partition). A descriptor marked [quarantined] is restored with a
    degenerate {!Partition_summary.unavailable} summary — zero reads of
    its (possibly bad) blocks — and re-enters quarantine. Raises
    [Invalid_argument] if the descriptors violate the structural
    invariants. *)
val restore :
  ?sort_memory:int ->
  kappa:int ->
  beta1:int ->
  Hsq_storage.Block_device.t ->
  partition_descriptor list ->
  t
