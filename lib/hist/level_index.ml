(* The on-disk historical structure HD and its in-memory summary HS
   (Section 2.1, Algorithm 3, Figure 2).

   Partitions live in levels; each level holds at most kappa partitions.
   A new batch is sorted into a level-0 partition; whenever a level
   exceeds kappa partitions, all of its partitions are multi-way merged
   into a single partition one level up, recursively.  Merging is the
   only time data moves, so each element takes part in at most
   log_kappa(T) merges (Lemma 6).

   Every partition carries a Partition_summary built through the observe
   hooks of the sort/merge, costing no additional I/O. *)

type update_report = {
  sort_seconds : float;
  load_seconds : float;
  merge_seconds : float;
  summary_seconds : float;
  io_total : Hsq_storage.Io_stats.counters;
  io_merge : Hsq_storage.Io_stats.counters;
  merges_performed : int;
  highest_level_after : int;
  deferred_merge : string option;
      (* device fault that interrupted the merge cascade: the batch is
         archived, the over-full level keeps its partitions, and the
         merge is retried by a later cascade or [run_deferred_merges] *)
}

(* Per-partition health, keyed by the run's first block (stable and
   unique: the bump allocator never reuses addresses).  [failures]
   counts consecutive unrecoverable probe failures; at the caller's
   threshold the partition flips to [quarantined] and query paths
   exclude it (widening their reported error bound by its element
   count) until a scrub re-verifies and reinstates it.  Accessed only
   from the query/scrub caller domain — probe failures are re-raised to
   the submitting caller before it notes them — so no lock is needed. *)
type health = { mutable failures : int; mutable quarantined : bool }

type t = {
  dev : Hsq_storage.Block_device.t;
  kappa : int;
  beta1 : int;
  sort_memory : int option;
  sort_domains : int option; (* parallel chunked batch sorting (paper future work) *)
  mutable levels : Partition.t list array; (* levels.(l): oldest-first *)
  mutable total : int;
  mutable steps : int;
  mutable expired_through : int; (* steps [1, expired_through] have been dropped *)
  mutable epoch : int; (* bumped on every partition-set mutation; cache key *)
  mutable gauged_levels : int; (* highest level whose gauge was ever published *)
  quarantine : (int, health) Hashtbl.t;
}

let create ?sort_memory ?sort_domains ~kappa ~beta1 dev =
  if kappa < 2 then invalid_arg "Level_index.create: kappa must be >= 2";
  if beta1 < 2 then invalid_arg "Level_index.create: beta1 must be >= 2";
  (match sort_domains with
  | Some d when d < 1 -> invalid_arg "Level_index.create: sort_domains must be >= 1"
  | _ -> ());
  {
    dev;
    kappa;
    beta1;
    sort_memory;
    sort_domains;
    levels = Array.make 4 [];
    total = 0;
    steps = 0;
    expired_through = 0;
    epoch = 0;
    gauged_levels = 0;
    quarantine = Hashtbl.create 16;
  }

let pkey p = Hsq_storage.Run.first_block (Partition.run p)

let is_quarantined t p =
  match Hashtbl.find_opt t.quarantine (pkey p) with
  | Some h -> h.quarantined
  | None -> false

(* The epoch numbers the states of the partition set: any operation
   that adds, merges, drops, or restores partitions bumps it, so a
   cached derivative of the summaries (Engine's historical aggregate)
   is valid iff its recorded epoch still matches.

   A bump is also the one place every partition-set mutation funnels
   through, so it doubles as the refresh point for the per-level
   partition-count gauges (hsq_hist_partitions_level_<l>).  Gauges are
   registered lazily per level that has ever existed; once a level
   empties its gauge reads 0 rather than disappearing. *)
let registry t = Hsq_storage.Io_stats.registry (Hsq_storage.Block_device.stats t.dev)

let refresh_level_gauges t =
  let r = registry t in
  (* Cover every level up to the highest non-empty one: a level a merge
     just emptied must be written back to 0, not left stale.  Trailing
     never-used slots of the levels array are skipped. *)
  let hi = ref t.gauged_levels in
  Array.iteri (fun l ps -> if ps <> [] then hi := max !hi l) t.levels;
  t.gauged_levels <- !hi;
  let q_total = ref 0 and q_elems = ref 0 in
  for l = 0 to !hi do
    Hsq_obs.Metrics.Gauge.set
      (Hsq_obs.Metrics.gauge ~help:"Partitions currently at this level" r
         (Printf.sprintf "hsq_hist_partitions_level_%d" l))
      (float_of_int (List.length t.levels.(l)));
    let q =
      List.fold_left
        (fun acc p ->
          if is_quarantined t p then begin
            incr q_total;
            q_elems := !q_elems + Partition.size p;
            acc + 1
          end
          else acc)
        0 t.levels.(l)
    in
    Hsq_obs.Metrics.Gauge.set
      (Hsq_obs.Metrics.gauge ~help:"Quarantined partitions at this level" r
         (Printf.sprintf "hsq_quarantined_partitions_level_%d" l))
      (float_of_int q)
  done;
  Hsq_obs.Metrics.Gauge.set
    (Hsq_obs.Metrics.gauge ~help:"Quarantined partitions" r "hsq_quarantined_partitions")
    (float_of_int !q_total);
  Hsq_obs.Metrics.Gauge.set
    (Hsq_obs.Metrics.gauge ~help:"Elements in quarantined partitions" r
       "hsq_quarantined_elements")
    (float_of_int !q_elems)

let epoch t = t.epoch

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  refresh_level_gauges t

let device t = t.dev
let expired_through t = t.expired_through
let kappa t = t.kappa
let beta1 t = t.beta1
let total_elements t = t.total
let time_steps t = t.steps

let num_levels t =
  let n = ref 0 in
  Array.iteri (fun i ps -> if ps <> [] then n := i + 1) t.levels;
  !n

let level_partitions t l = if l < Array.length t.levels then t.levels.(l) else []

(* All partitions, newest time range first. *)
let partitions t =
  let all = Array.to_list t.levels |> List.concat in
  List.sort (fun a b -> Int.compare (Partition.first_step b) (Partition.first_step a)) all

let partition_count t = Array.fold_left (fun acc ps -> acc + List.length ps) 0 t.levels

(* --- Quarantine ------------------------------------------------------- *)

(* Partitions the query paths may probe: everything not quarantined,
   newest first. *)
let active_partitions t = List.filter (fun p -> not (is_quarantined t p)) (partitions t)

let quarantined t = List.filter (is_quarantined t) (partitions t)
let quarantined_count t = List.length (quarantined t)

(* Total elements locked away in quarantined partitions — exactly the
   widening a query's rank-error bound takes when it excludes them (the
   per-partition Lemma 2 interval [0, size] collapses to "anywhere"). *)
let quarantined_elements t =
  List.fold_left (fun acc p -> acc + Partition.size p) 0 (quarantined t)

let health_of t p =
  let k = pkey p in
  match Hashtbl.find_opt t.quarantine k with
  | Some h -> h
  | None ->
    let h = { failures = 0; quarantined = false } in
    Hashtbl.add t.quarantine k h;
    h

(* Move a partition to quarantine.  The partition stays in its level —
   coverage, windows, and descriptors still see it — but query paths
   exclude it via [active_partitions] and the merge cascade defers any
   merge of its level (merging would have to read its blocks). *)
let quarantine_partition t p =
  let h = health_of t p in
  if not h.quarantined then begin
    h.quarantined <- true;
    h.failures <- 0;
    bump_epoch t
  end

(* Record one unrecoverable probe failure; returns [true] when this
   failure crossed [threshold] and the partition was just quarantined. *)
let note_probe_failure t p ~threshold =
  let h = health_of t p in
  if h.quarantined then false
  else begin
    h.failures <- h.failures + 1;
    if h.failures >= max 1 threshold then begin
      h.quarantined <- true;
      h.failures <- 0;
      bump_epoch t;
      true
    end
    else false
  end

(* A successful probe resets the consecutive-failure count — only a
   *run* of failures with no success in between quarantines. *)
let note_probe_success t p =
  match Hashtbl.find_opt t.quarantine (pkey p) with
  | Some h when not h.quarantined -> h.failures <- 0
  | _ -> ()

let memory_words t =
  Array.fold_left (fun acc ps -> List.fold_left (fun a p -> a + Partition.memory_words p) acc ps) 16
    t.levels

let ensure_level t l =
  if l >= Array.length t.levels then begin
    let bigger = Array.make (max (l + 1) (2 * Array.length t.levels)) [] in
    Array.blit t.levels 0 bigger 0 (Array.length t.levels);
    t.levels <- bigger
  end

let now () = Unix.gettimeofday ()

(* Merge every partition at level [l] into one partition at [l+1].

   Merge commit protocol (crash atomicity): the merged run is written
   entirely to freshly allocated blocks while the source partitions
   remain untouched and live; only once the new run and its summary are
   complete is the in-memory level table swapped (the commit point), and
   only after the commit are the sources freed.  Because the device's
   bump allocator never reuses addresses — and the file backend leaves
   freed bytes physically intact — a crash at ANY block write during the
   merge leaves every partition named by the last durable checkpoint
   (Persist.save) readable: reloading that checkpoint rolls the
   uncommitted merge back, and the half-written output blocks are
   unreferenced garbage past the checkpointed allocation frontier. *)
let merge_level_impl t l =
  let parts = t.levels.(l) in
  let runs = List.map Partition.run parts in
  let size = List.fold_left (fun acc r -> acc + Hsq_storage.Run.length r) 0 runs in
  let builder = Partition_summary.builder ~beta1:t.beta1 ~size in
  (* The cascade only fires when a level exceeds kappa >= 2 partitions,
     so there are always at least two runs to merge. *)
  assert (List.length runs >= 2);
  let merged =
    Hsq_storage.Kway_merge.merge
      ~observe:(fun i v -> Partition_summary.builder_feed builder i v)
      t.dev runs
  in
  let summary = Partition_summary.builder_finish builder in
  let first_step = List.fold_left (fun acc p -> min acc (Partition.first_step p)) max_int parts in
  let last_step = List.fold_left (fun acc p -> max acc (Partition.last_step p)) min_int parts in
  let promoted =
    Partition.create ~run:merged ~summary ~first_step ~last_step ~level:(l + 1)
  in
  (* Commit point: the new partition replaces the sources atomically in
     memory; the sources are released only afterwards. *)
  t.levels.(l) <- [];
  ensure_level t (l + 1);
  t.levels.(l + 1) <- t.levels.(l + 1) @ [ promoted ];
  List.iter
    (fun p ->
      (* The sources' health records die with them (their block
         addresses are never reused). *)
      Hashtbl.remove t.quarantine (pkey p);
      Partition.free p)
    parts

(* Merges are rare (at most one cascade per batch) and ms-scale, so the
   per-merge registry lookup and span are free relative to the work. *)
let merge_level t l =
  let stats = Hsq_storage.Block_device.stats t.dev in
  let timed () =
    let nparts = List.length t.levels.(l) in
    let t0 = now () in
    merge_level_impl t l;
    let dt = now () -. t0 in
    Hsq_obs.Metrics.Histogram.observe
      (Hsq_obs.Metrics.histogram ~help:"Level merge duration" (registry t) "hsq_hist_merge_seconds")
      dt;
    nparts
  in
  match Hsq_storage.Io_stats.tracer stats with
  | Some tr ->
    Hsq_obs.Trace.with_span tr ~attrs:[ ("level", string_of_int l) ] "hist.merge" (fun span ->
        let nparts = timed () in
        Hsq_obs.Trace.add_attr tr span "partitions" (string_of_int nparts))
  | None -> ignore (timed ())

(* Cascade merges upward from [from] while levels overflow.  A level
   holding a quarantined partition is left alone even when over-full —
   merging it would read the quarantined blocks — so a level may
   temporarily exceed kappa (check_invariants tolerates exactly this
   case); the deferred merge fires from [reinstate] once the partition
   is healthy again.

   A device fault mid-cascade is contained, not surfaced: the failing
   merge rolled itself back (its commit point is the atomic in-memory
   swap, which a read fault never reaches), the level simply stays
   over-full, and the merge is retried the next time a cascade or
   [run_deferred_merges] reaches it.  Containment here is what makes
   [add_batch] — and therefore [Engine.end_time_step] — committed once
   the level-0 run is written: without it, a fault in the cascade would
   raise *after* the batch was archived, and a caller retrying the
   rollover would archive the same elements twice. *)
let cascade_merges t ~from =
  let merges = ref 0 in
  let error = ref None in
  (try
     let l = ref from in
     while
       !l < Array.length t.levels
       && List.length t.levels.(!l) > t.kappa
       && not (List.exists (is_quarantined t) t.levels.(!l))
     do
       merge_level t !l;
       incr merges;
       incr l
     done
   with Hsq_storage.Block_device.Device_error msg -> error := Some msg);
  (!merges, !error)

(* Retry every merge a quarantine or a device fault deferred: one sweep
   over all levels, merging any over-full level whose members are all
   healthy (a merge may push the level above over its own threshold, so
   the sweep only advances when a level is settled).  Faults during the
   sweep leave the remaining levels for the next attempt. *)
let run_deferred_merges t =
  let merges = ref 0 in
  (try
     let l = ref 0 in
     while !l < Array.length t.levels do
       if
         List.length t.levels.(!l) > t.kappa
         && not (List.exists (is_quarantined t) t.levels.(!l))
       then begin
         merge_level t !l;
         incr merges
       end
       else incr l
     done
   with Hsq_storage.Block_device.Device_error _ -> ());
  if !merges > 0 then bump_epoch t;
  !merges

(* Re-verify a quarantined partition against the device and return it
   to service: every element is re-read (sequential cursor I/O), the
   sortedness and count are checked, and a fresh summary replaces the
   old one (which may be the degenerate [unavailable] summary if the
   partition was restored from a sidecar while quarantined).  On any
   failure the partition stays quarantined. *)
let reinstate t p =
  let k = pkey p in
  match Hashtbl.find_opt t.quarantine k with
  | None | Some { quarantined = false; _ } -> Error "partition is not quarantined"
  | Some h -> (
    try
      let run = Partition.run p in
      let cur = Hsq_storage.Run.cursor run in
      let n = ref 0 and prev = ref min_int and sorted = ref true in
      let continue_ = ref true in
      while !continue_ do
        match Hsq_storage.Run.cursor_next cur with
        | None -> continue_ := false
        | Some v ->
          if v < !prev then sorted := false;
          prev := v;
          incr n
      done;
      if not !sorted then Error (Printf.sprintf "partition at block %d is not sorted on disk" k)
      else if !n <> Partition.size p then
        Error
          (Printf.sprintf "partition at block %d has %d elements on disk, expected %d" k !n
             (Partition.size p))
      else begin
        let summary = Partition_summary.of_run ~beta1:t.beta1 run in
        let fresh =
          Partition.create ~run ~summary ~first_step:(Partition.first_step p)
            ~last_step:(Partition.last_step p) ~level:(Partition.level p)
        in
        let l = Partition.level p in
        t.levels.(l) <- List.map (fun q -> if pkey q = k then fresh else q) t.levels.(l);
        h.quarantined <- false;
        h.failures <- 0;
        (* Run any merge the quarantine (or an earlier device fault)
           deferred — at any level, not just this partition's — then
           publish the new partition set in one epoch bump. *)
        ignore (run_deferred_merges t);
        bump_epoch t;
        Ok ()
      end
    with Hsq_storage.Block_device.Device_error msg -> Error msg)

(* HistUpdate (Algorithm 3): sort the batch into a level-0 partition,
   then cascade merges while any level exceeds kappa partitions. *)
let add_batch t batch =
  let eta = Array.length batch in
  if eta = 0 then invalid_arg "Level_index.add_batch: empty batch";
  let stats = Hsq_storage.Block_device.stats t.dev in
  let before_total = Hsq_storage.Io_stats.snapshot stats in
  let step = t.steps + 1 in
  let fits_in_memory =
    match t.sort_memory with None -> true | Some budget -> eta <= budget
  in
  let t0 = now () in
  let sort_seconds, load_seconds, summary_seconds, run, summary =
    if fits_in_memory then begin
      let sorted = Array.copy batch in
      (match t.sort_domains with
      | Some domains -> Hsq_util.Parallel.sort ~domains sorted
      | None -> Array.sort Int.compare sorted);
      let t1 = now () in
      let summary = Partition_summary.of_sorted_array ~beta1:t.beta1 sorted in
      let t2 = now () in
      let run = Hsq_storage.Run.of_sorted_array t.dev sorted in
      let t3 = now () in
      (t1 -. t0, t3 -. t2, t2 -. t1, run, summary)
    end
    else begin
      let builder = Partition_summary.builder ~beta1:t.beta1 ~size:eta in
      let run, _report =
        Hsq_storage.External_sort.sort ?memory_elements:t.sort_memory
          ~observe:(fun i v -> Partition_summary.builder_feed builder i v)
          t.dev batch
      in
      let t1 = now () in
      (t1 -. t0, 0.0, 0.0, run, Partition_summary.builder_finish builder)
    end
  in
  ensure_level t 0;
  t.levels.(0) <-
    t.levels.(0) @ [ Partition.create ~run ~summary ~first_step:step ~last_step:step ~level:0 ];
  t.total <- t.total + eta;
  t.steps <- step;
  (* Cascade merges. *)
  let before_merge = Hsq_storage.Io_stats.snapshot stats in
  let t_merge0 = now () in
  let merges, deferred_merge = cascade_merges t ~from:0 in
  let merge_seconds = now () -. t_merge0 in
  bump_epoch t;
  let after = Hsq_storage.Io_stats.snapshot stats in
  {
    sort_seconds;
    load_seconds;
    merge_seconds;
    summary_seconds;
    io_total = Hsq_storage.Io_stats.diff after before_total;
    io_merge = Hsq_storage.Io_stats.diff after before_merge;
    merges_performed = merges;
    highest_level_after = num_levels t - 1;
    deferred_merge;
  }

(* Exact rank of [v] across all partitions, by disk binary searches
   bounded by the summaries.  This is the rho_1 computation of
   Algorithm 8 lines 2-7. *)
let rank t v =
  List.fold_left
    (fun acc p ->
      let lo, hi = Partition_summary.rank_bounds (Partition.summary p) v in
      if lo = hi then acc + lo
      else acc + Hsq_storage.Run.rank_between (Partition.run p) ~lo ~hi v)
    0 (partitions t)

(* Window support (Section 2.4 "Queries Over Windows"): a query window
   of w most-recent time steps is answerable iff some suffix of
   partitions covers exactly steps [steps-w+1, steps]. *)
let available_window_sizes t =
  let newest_first = partitions t in
  let rec go acc covered expect = function
    | [] -> List.rev acc
    | p :: rest ->
      if Partition.last_step p <> expect then List.rev acc (* gap: should not happen *)
      else begin
        let covered = covered + Partition.steps_covered p in
        go (covered :: acc) covered (Partition.first_step p - 1) rest
      end
  in
  go [] 0 t.steps newest_first

(* Generalised form: the partitions tiling exactly the step range
   [first, last], if that range is partition-aligned.  Windows are the
   suffix case [steps - w + 1, steps]. *)
let partitions_for_range t ~first ~last =
  if first < 1 || last > t.steps || first > last then None
  else begin
    let inside =
      List.filter
        (fun p -> Partition.first_step p >= first && Partition.last_step p <= last)
        (partitions t)
    in
    (* newest-first; check exact tiling from [last] down to [first]. *)
    let rec tile expect = function
      | [] -> expect = first - 1
      | p :: rest -> Partition.last_step p = expect && tile (Partition.first_step p - 1) rest
    in
    if tile last inside then Some inside else None
  end

(* Step ranges are aligned iff both endpoints sit on partition
   boundaries; expose the boundary steps so callers can snap. *)
let partition_boundaries t =
  List.rev_map (fun p -> (Partition.first_step p, Partition.last_step p)) (partitions t)

let partitions_for_window t w =
  let newest_first = partitions t in
  let rec go acc covered = function
    | _ when covered = w -> Some (List.rev acc)
    | [] -> None
    | p :: rest ->
      let covered = covered + Partition.steps_covered p in
      if covered > w then None else go (p :: acc) covered rest
  in
  if w <= 0 || w > t.steps then None else go [] 0 newest_first

(* Structural invariants, used by the test suites. *)
let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  Array.iteri
    (fun l ps ->
      (* A level holding a quarantined partition may legitimately exceed
         kappa: its merge is deferred until the partition is reinstated
         (or expired). *)
      if List.length ps > t.kappa && not (List.exists (is_quarantined t) ps) then
        err "level %d has %d > kappa partitions" l (List.length ps);
      List.iter
        (fun p -> if Partition.level p <> l then err "partition at level %d tagged %d" l (Partition.level p))
        ps)
    t.levels;
  (* Time-step coverage must tile [1, steps] exactly. *)
  let newest_first = partitions t in
  let expect = ref t.steps in
  List.iter
    (fun p ->
      if Partition.last_step p <> !expect then
        err "coverage gap: expected last step %d, found %d" !expect (Partition.last_step p);
      expect := Partition.first_step p - 1)
    newest_first;
  if t.steps > 0 && !expect <> t.expired_through then
    err "coverage stops at step %d but retention dropped through %d" !expect t.expired_through;
  let sum = List.fold_left (fun acc p -> acc + Partition.size p) 0 newest_first in
  if sum <> t.total then err "element count %d <> recorded total %d" sum t.total;
  List.rev !errors


(* Retention (data-stream warehouses keep bounded history): drop every
   partition whose data is entirely older than the last [keep_steps]
   time steps.  Partitions are dropped whole — one straddling the
   cutoff is kept in full — so coverage stays contiguous and windowed
   queries keep working unchanged.  Returns (partitions, elements)
   dropped. *)
let expire t ~keep_steps =
  if keep_steps < 1 then invalid_arg "Level_index.expire: keep_steps must be >= 1";
  let cutoff = t.steps - keep_steps in
  let dropped_parts = ref 0 and dropped_elems = ref 0 in
  Array.iteri
    (fun l ps ->
      let keep, drop = List.partition (fun p -> Partition.last_step p > cutoff) ps in
      List.iter
        (fun p ->
          dropped_parts := !dropped_parts + 1;
          dropped_elems := !dropped_elems + Partition.size p;
          t.expired_through <- max t.expired_through (Partition.last_step p);
          (* Retention is also the exit path for a partition whose data
             aged out while quarantined. *)
          Hashtbl.remove t.quarantine (pkey p);
          Partition.free p)
        drop;
      t.levels.(l) <- keep)
    t.levels;
  t.total <- t.total - !dropped_elems;
  if !dropped_parts > 0 then bump_epoch t;
  (!dropped_parts, !dropped_elems)

(* --- Persistence support (used by Hsq.Persist) ------------------------ *)

type partition_descriptor = {
  first_block : int;
  length : int;
  first_step : int;
  last_step : int;
  level : int;
  quarantined : bool;
}

let describe t =
  List.map
    (fun p ->
      {
        first_block = Hsq_storage.Run.first_block (Partition.run p);
        length = Partition.size p;
        first_step = Partition.first_step p;
        last_step = Partition.last_step p;
        level = Partition.level p;
        quarantined = is_quarantined t p;
      })
    (partitions t)

(* Rebuild an index over partitions already on the device.  Summaries
   are re-read from disk (<= beta1 block reads per partition).  The
   descriptors must tile [1, steps] — check_invariants is run and any
   violation raises. *)
let restore ?sort_memory ~kappa ~beta1 dev descriptors =
  let t = create ?sort_memory ~kappa ~beta1 dev in
  List.iter
    (fun d ->
      let run = Hsq_storage.Run.of_existing dev ~addr:d.first_block ~length:d.length in
      (* A quarantined partition's blocks may be unreadable; it gets the
         degenerate summary (no disk reads, maximal rank uncertainty)
         and its quarantine flag back.  Scrub --repair re-verifies and
         rebuilds the real summary on reinstatement. *)
      let summary =
        if d.quarantined then Partition_summary.unavailable ~size:d.length
        else Partition_summary.of_run ~beta1 run
      in
      let p =
        Partition.create ~run ~summary ~first_step:d.first_step ~last_step:d.last_step
          ~level:d.level
      in
      if d.quarantined then
        Hashtbl.replace t.quarantine d.first_block { failures = 0; quarantined = true };
      ensure_level t d.level;
      t.levels.(d.level) <- t.levels.(d.level) @ [ p ];
      t.total <- t.total + d.length;
      t.steps <- max t.steps d.last_step)
    descriptors;
  (* Anything before the oldest restored partition counts as expired. *)
  let oldest =
    List.fold_left (fun acc d -> min acc d.first_step) max_int descriptors
  in
  t.expired_through <- (if descriptors = [] then 0 else oldest - 1);
  (* Keep each level ordered oldest-first. *)
  Array.iteri
    (fun l ps ->
      t.levels.(l) <-
        List.sort (fun a b -> Int.compare (Partition.first_step a) (Partition.first_step b)) ps)
    t.levels;
  bump_epoch t;
  (* A checkpoint may legitimately record a level over κ: a device
     fault deferred the merge mid-cascade and the batch was still
     safely archived.  Retry it now — if we got this far the device is
     readable — so the restored index satisfies the strict invariant
     again.  (A level kept over-full by a quarantined member stays as
     is; check_invariants tolerates exactly that.) *)
  if Array.exists (fun ps -> List.length ps > t.kappa) t.levels then
    ignore (run_deferred_merges t);
  match check_invariants t with
  | [] -> t
  | errs -> invalid_arg ("Level_index.restore: " ^ String.concat "; " errs)
