(* The on-disk historical structure HD and its in-memory summary HS
   (Section 2.1, Algorithm 3, Figure 2).

   Partitions live in levels; each level holds at most kappa partitions.
   A new batch is sorted into a level-0 partition; whenever a level
   exceeds kappa partitions, all of its partitions are multi-way merged
   into a single partition one level up, recursively.  Merging is the
   only time data moves, so each element takes part in at most
   log_kappa(T) merges (Lemma 6).

   Every partition carries a Partition_summary built through the observe
   hooks of the sort/merge, costing no additional I/O. *)

type update_report = {
  sort_seconds : float;
  load_seconds : float;
  merge_seconds : float;
  summary_seconds : float;
  io_total : Hsq_storage.Io_stats.counters;
  io_merge : Hsq_storage.Io_stats.counters;
  merges_performed : int;
  highest_level_after : int;
}

type t = {
  dev : Hsq_storage.Block_device.t;
  kappa : int;
  beta1 : int;
  sort_memory : int option;
  sort_domains : int option; (* parallel chunked batch sorting (paper future work) *)
  mutable levels : Partition.t list array; (* levels.(l): oldest-first *)
  mutable total : int;
  mutable steps : int;
  mutable expired_through : int; (* steps [1, expired_through] have been dropped *)
  mutable epoch : int; (* bumped on every partition-set mutation; cache key *)
  mutable gauged_levels : int; (* highest level whose gauge was ever published *)
}

let create ?sort_memory ?sort_domains ~kappa ~beta1 dev =
  if kappa < 2 then invalid_arg "Level_index.create: kappa must be >= 2";
  if beta1 < 2 then invalid_arg "Level_index.create: beta1 must be >= 2";
  (match sort_domains with
  | Some d when d < 1 -> invalid_arg "Level_index.create: sort_domains must be >= 1"
  | _ -> ());
  {
    dev;
    kappa;
    beta1;
    sort_memory;
    sort_domains;
    levels = Array.make 4 [];
    total = 0;
    steps = 0;
    expired_through = 0;
    epoch = 0;
    gauged_levels = 0;
  }

(* The epoch numbers the states of the partition set: any operation
   that adds, merges, drops, or restores partitions bumps it, so a
   cached derivative of the summaries (Engine's historical aggregate)
   is valid iff its recorded epoch still matches.

   A bump is also the one place every partition-set mutation funnels
   through, so it doubles as the refresh point for the per-level
   partition-count gauges (hsq_hist_partitions_level_<l>).  Gauges are
   registered lazily per level that has ever existed; once a level
   empties its gauge reads 0 rather than disappearing. *)
let registry t = Hsq_storage.Io_stats.registry (Hsq_storage.Block_device.stats t.dev)

let refresh_level_gauges t =
  let r = registry t in
  (* Cover every level up to the highest non-empty one: a level a merge
     just emptied must be written back to 0, not left stale.  Trailing
     never-used slots of the levels array are skipped. *)
  let hi = ref t.gauged_levels in
  Array.iteri (fun l ps -> if ps <> [] then hi := max !hi l) t.levels;
  t.gauged_levels <- !hi;
  for l = 0 to !hi do
    Hsq_obs.Metrics.Gauge.set
      (Hsq_obs.Metrics.gauge ~help:"Partitions currently at this level" r
         (Printf.sprintf "hsq_hist_partitions_level_%d" l))
      (float_of_int (List.length t.levels.(l)))
  done

let epoch t = t.epoch

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  refresh_level_gauges t

let device t = t.dev
let expired_through t = t.expired_through
let kappa t = t.kappa
let beta1 t = t.beta1
let total_elements t = t.total
let time_steps t = t.steps

let num_levels t =
  let n = ref 0 in
  Array.iteri (fun i ps -> if ps <> [] then n := i + 1) t.levels;
  !n

let level_partitions t l = if l < Array.length t.levels then t.levels.(l) else []

(* All partitions, newest time range first. *)
let partitions t =
  let all = Array.to_list t.levels |> List.concat in
  List.sort (fun a b -> Int.compare (Partition.first_step b) (Partition.first_step a)) all

let partition_count t = Array.fold_left (fun acc ps -> acc + List.length ps) 0 t.levels

let memory_words t =
  Array.fold_left (fun acc ps -> List.fold_left (fun a p -> a + Partition.memory_words p) acc ps) 16
    t.levels

let ensure_level t l =
  if l >= Array.length t.levels then begin
    let bigger = Array.make (max (l + 1) (2 * Array.length t.levels)) [] in
    Array.blit t.levels 0 bigger 0 (Array.length t.levels);
    t.levels <- bigger
  end

let now () = Unix.gettimeofday ()

(* Merge every partition at level [l] into one partition at [l+1].

   Merge commit protocol (crash atomicity): the merged run is written
   entirely to freshly allocated blocks while the source partitions
   remain untouched and live; only once the new run and its summary are
   complete is the in-memory level table swapped (the commit point), and
   only after the commit are the sources freed.  Because the device's
   bump allocator never reuses addresses — and the file backend leaves
   freed bytes physically intact — a crash at ANY block write during the
   merge leaves every partition named by the last durable checkpoint
   (Persist.save) readable: reloading that checkpoint rolls the
   uncommitted merge back, and the half-written output blocks are
   unreferenced garbage past the checkpointed allocation frontier. *)
let merge_level_impl t l =
  let parts = t.levels.(l) in
  let runs = List.map Partition.run parts in
  let size = List.fold_left (fun acc r -> acc + Hsq_storage.Run.length r) 0 runs in
  let builder = Partition_summary.builder ~beta1:t.beta1 ~size in
  (* The cascade only fires when a level exceeds kappa >= 2 partitions,
     so there are always at least two runs to merge. *)
  assert (List.length runs >= 2);
  let merged =
    Hsq_storage.Kway_merge.merge
      ~observe:(fun i v -> Partition_summary.builder_feed builder i v)
      t.dev runs
  in
  let summary = Partition_summary.builder_finish builder in
  let first_step = List.fold_left (fun acc p -> min acc (Partition.first_step p)) max_int parts in
  let last_step = List.fold_left (fun acc p -> max acc (Partition.last_step p)) min_int parts in
  let promoted =
    Partition.create ~run:merged ~summary ~first_step ~last_step ~level:(l + 1)
  in
  (* Commit point: the new partition replaces the sources atomically in
     memory; the sources are released only afterwards. *)
  t.levels.(l) <- [];
  ensure_level t (l + 1);
  t.levels.(l + 1) <- t.levels.(l + 1) @ [ promoted ];
  List.iter Partition.free parts

(* Merges are rare (at most one cascade per batch) and ms-scale, so the
   per-merge registry lookup and span are free relative to the work. *)
let merge_level t l =
  let stats = Hsq_storage.Block_device.stats t.dev in
  let timed () =
    let nparts = List.length t.levels.(l) in
    let t0 = now () in
    merge_level_impl t l;
    let dt = now () -. t0 in
    Hsq_obs.Metrics.Histogram.observe
      (Hsq_obs.Metrics.histogram ~help:"Level merge duration" (registry t) "hsq_hist_merge_seconds")
      dt;
    nparts
  in
  match Hsq_storage.Io_stats.tracer stats with
  | Some tr ->
    Hsq_obs.Trace.with_span tr ~attrs:[ ("level", string_of_int l) ] "hist.merge" (fun span ->
        let nparts = timed () in
        Hsq_obs.Trace.add_attr tr span "partitions" (string_of_int nparts))
  | None -> ignore (timed ())

(* HistUpdate (Algorithm 3): sort the batch into a level-0 partition,
   then cascade merges while any level exceeds kappa partitions. *)
let add_batch t batch =
  let eta = Array.length batch in
  if eta = 0 then invalid_arg "Level_index.add_batch: empty batch";
  let stats = Hsq_storage.Block_device.stats t.dev in
  let before_total = Hsq_storage.Io_stats.snapshot stats in
  let step = t.steps + 1 in
  let fits_in_memory =
    match t.sort_memory with None -> true | Some budget -> eta <= budget
  in
  let t0 = now () in
  let sort_seconds, load_seconds, summary_seconds, run, summary =
    if fits_in_memory then begin
      let sorted = Array.copy batch in
      (match t.sort_domains with
      | Some domains -> Hsq_util.Parallel.sort ~domains sorted
      | None -> Array.sort Int.compare sorted);
      let t1 = now () in
      let summary = Partition_summary.of_sorted_array ~beta1:t.beta1 sorted in
      let t2 = now () in
      let run = Hsq_storage.Run.of_sorted_array t.dev sorted in
      let t3 = now () in
      (t1 -. t0, t3 -. t2, t2 -. t1, run, summary)
    end
    else begin
      let builder = Partition_summary.builder ~beta1:t.beta1 ~size:eta in
      let run, _report =
        Hsq_storage.External_sort.sort ?memory_elements:t.sort_memory
          ~observe:(fun i v -> Partition_summary.builder_feed builder i v)
          t.dev batch
      in
      let t1 = now () in
      (t1 -. t0, 0.0, 0.0, run, Partition_summary.builder_finish builder)
    end
  in
  ensure_level t 0;
  t.levels.(0) <-
    t.levels.(0) @ [ Partition.create ~run ~summary ~first_step:step ~last_step:step ~level:0 ];
  t.total <- t.total + eta;
  t.steps <- step;
  (* Cascade merges. *)
  let before_merge = Hsq_storage.Io_stats.snapshot stats in
  let t_merge0 = now () in
  let merges = ref 0 in
  let l = ref 0 in
  while !l < Array.length t.levels && List.length t.levels.(!l) > t.kappa do
    merge_level t !l;
    incr merges;
    incr l
  done;
  let merge_seconds = now () -. t_merge0 in
  bump_epoch t;
  let after = Hsq_storage.Io_stats.snapshot stats in
  {
    sort_seconds;
    load_seconds;
    merge_seconds;
    summary_seconds;
    io_total = Hsq_storage.Io_stats.diff after before_total;
    io_merge = Hsq_storage.Io_stats.diff after before_merge;
    merges_performed = !merges;
    highest_level_after = num_levels t - 1;
  }

(* Exact rank of [v] across all partitions, by disk binary searches
   bounded by the summaries.  This is the rho_1 computation of
   Algorithm 8 lines 2-7. *)
let rank t v =
  List.fold_left
    (fun acc p ->
      let lo, hi = Partition_summary.rank_bounds (Partition.summary p) v in
      if lo = hi then acc + lo
      else acc + Hsq_storage.Run.rank_between (Partition.run p) ~lo ~hi v)
    0 (partitions t)

(* Window support (Section 2.4 "Queries Over Windows"): a query window
   of w most-recent time steps is answerable iff some suffix of
   partitions covers exactly steps [steps-w+1, steps]. *)
let available_window_sizes t =
  let newest_first = partitions t in
  let rec go acc covered expect = function
    | [] -> List.rev acc
    | p :: rest ->
      if Partition.last_step p <> expect then List.rev acc (* gap: should not happen *)
      else begin
        let covered = covered + Partition.steps_covered p in
        go (covered :: acc) covered (Partition.first_step p - 1) rest
      end
  in
  go [] 0 t.steps newest_first

(* Generalised form: the partitions tiling exactly the step range
   [first, last], if that range is partition-aligned.  Windows are the
   suffix case [steps - w + 1, steps]. *)
let partitions_for_range t ~first ~last =
  if first < 1 || last > t.steps || first > last then None
  else begin
    let inside =
      List.filter
        (fun p -> Partition.first_step p >= first && Partition.last_step p <= last)
        (partitions t)
    in
    (* newest-first; check exact tiling from [last] down to [first]. *)
    let rec tile expect = function
      | [] -> expect = first - 1
      | p :: rest -> Partition.last_step p = expect && tile (Partition.first_step p - 1) rest
    in
    if tile last inside then Some inside else None
  end

(* Step ranges are aligned iff both endpoints sit on partition
   boundaries; expose the boundary steps so callers can snap. *)
let partition_boundaries t =
  List.rev_map (fun p -> (Partition.first_step p, Partition.last_step p)) (partitions t)

let partitions_for_window t w =
  let newest_first = partitions t in
  let rec go acc covered = function
    | _ when covered = w -> Some (List.rev acc)
    | [] -> None
    | p :: rest ->
      let covered = covered + Partition.steps_covered p in
      if covered > w then None else go (p :: acc) covered rest
  in
  if w <= 0 || w > t.steps then None else go [] 0 newest_first

(* Structural invariants, used by the test suites. *)
let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  Array.iteri
    (fun l ps ->
      if List.length ps > t.kappa then err "level %d has %d > kappa partitions" l (List.length ps);
      List.iter
        (fun p -> if Partition.level p <> l then err "partition at level %d tagged %d" l (Partition.level p))
        ps)
    t.levels;
  (* Time-step coverage must tile [1, steps] exactly. *)
  let newest_first = partitions t in
  let expect = ref t.steps in
  List.iter
    (fun p ->
      if Partition.last_step p <> !expect then
        err "coverage gap: expected last step %d, found %d" !expect (Partition.last_step p);
      expect := Partition.first_step p - 1)
    newest_first;
  if t.steps > 0 && !expect <> t.expired_through then
    err "coverage stops at step %d but retention dropped through %d" !expect t.expired_through;
  let sum = List.fold_left (fun acc p -> acc + Partition.size p) 0 newest_first in
  if sum <> t.total then err "element count %d <> recorded total %d" sum t.total;
  List.rev !errors


(* Retention (data-stream warehouses keep bounded history): drop every
   partition whose data is entirely older than the last [keep_steps]
   time steps.  Partitions are dropped whole — one straddling the
   cutoff is kept in full — so coverage stays contiguous and windowed
   queries keep working unchanged.  Returns (partitions, elements)
   dropped. *)
let expire t ~keep_steps =
  if keep_steps < 1 then invalid_arg "Level_index.expire: keep_steps must be >= 1";
  let cutoff = t.steps - keep_steps in
  let dropped_parts = ref 0 and dropped_elems = ref 0 in
  Array.iteri
    (fun l ps ->
      let keep, drop = List.partition (fun p -> Partition.last_step p > cutoff) ps in
      List.iter
        (fun p ->
          dropped_parts := !dropped_parts + 1;
          dropped_elems := !dropped_elems + Partition.size p;
          t.expired_through <- max t.expired_through (Partition.last_step p);
          Partition.free p)
        drop;
      t.levels.(l) <- keep)
    t.levels;
  t.total <- t.total - !dropped_elems;
  if !dropped_parts > 0 then bump_epoch t;
  (!dropped_parts, !dropped_elems)

(* --- Persistence support (used by Hsq.Persist) ------------------------ *)

type partition_descriptor = {
  first_block : int;
  length : int;
  first_step : int;
  last_step : int;
  level : int;
}

let describe t =
  List.map
    (fun p ->
      {
        first_block = Hsq_storage.Run.first_block (Partition.run p);
        length = Partition.size p;
        first_step = Partition.first_step p;
        last_step = Partition.last_step p;
        level = Partition.level p;
      })
    (partitions t)

(* Rebuild an index over partitions already on the device.  Summaries
   are re-read from disk (<= beta1 block reads per partition).  The
   descriptors must tile [1, steps] — check_invariants is run and any
   violation raises. *)
let restore ?sort_memory ~kappa ~beta1 dev descriptors =
  let t = create ?sort_memory ~kappa ~beta1 dev in
  List.iter
    (fun d ->
      let run = Hsq_storage.Run.of_existing dev ~addr:d.first_block ~length:d.length in
      let summary = Partition_summary.of_run ~beta1 run in
      let p =
        Partition.create ~run ~summary ~first_step:d.first_step ~last_step:d.last_step
          ~level:d.level
      in
      ensure_level t d.level;
      t.levels.(d.level) <- t.levels.(d.level) @ [ p ];
      t.total <- t.total + d.length;
      t.steps <- max t.steps d.last_step)
    descriptors;
  (* Anything before the oldest restored partition counts as expired. *)
  let oldest =
    List.fold_left (fun acc d -> min acc d.first_step) max_int descriptors
  in
  t.expired_through <- (if descriptors = [] then 0 else oldest - 1);
  (* Keep each level ordered oldest-first. *)
  Array.iteri
    (fun l ps ->
      t.levels.(l) <-
        List.sort (fun a b -> Int.compare (Partition.first_step a) (Partition.first_step b)) ps)
    t.levels;
  bump_epoch t;
  match check_invariants t with
  | [] -> t
  | errs -> invalid_arg ("Level_index.restore: " ^ String.concat "; " errs)
