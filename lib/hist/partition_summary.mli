(** In-memory summary of one sorted partition (Algorithm 2).

    β₁ elements evenly spaced by rank: slot 0 is the minimum, slot i the
    element at rank ⌈i·η/(β₁−1)⌉ of an η-element partition. Each entry
    stores its exact 0-based index in the partition, which yields exact
    rank bounds (tightening Lemma 2) and the binary-search windows of
    Algorithm 8. Built through the observe hooks of
    {!Hsq_storage.External_sort} / {!Hsq_storage.Kway_merge}, i.e. at
    zero additional disk I/O. *)

type entry = { value : int; index : int }
type t

(** Incremental builder fed every partition element in order. *)
type builder

(** Raises [Invalid_argument] if [beta1 < 2] or [size < 1]. *)
val builder : beta1:int -> size:int -> builder

val builder_feed : builder -> int -> int -> unit

(** Raises [Invalid_argument] if the builder did not see all declared
    elements. *)
val builder_finish : builder -> t

(** Capture target for slot [i] (exposed for tests). *)
val target_index : beta1:int -> size:int -> int -> int

val of_sorted_array : beta1:int -> int array -> t

(** Rebuild from an on-disk run by probing the β₁ target positions
    (recovery path; ≤ β₁ block reads). *)
val of_run : beta1:int -> Hsq_storage.Run.t -> t

(** Degenerate summary for a partition whose blocks cannot be read (a
    quarantined partition restored from the sidecar): no entries, so
    {!rank_bounds} answers [(0, size)] for every value — maximal
    uncertainty, costing zero disk reads. Raises [Invalid_argument] if
    [size < 1]. *)
val unavailable : size:int -> t
val entries : t -> entry array
val partition_size : t -> int

(** Number of entries (≤ β₁; small partitions deduplicate slots). *)
val length : t -> int

(** 3 words per entry (value, rank, disk pointer) plus a small header. *)
val memory_words : t -> int

(** α_P of Lemma 2: summary entries with value ≤ v. *)
val count_le : t -> int -> int

(** Exact bounds (lower, upper) on rank(v, P) from stored indices. *)
val rank_bounds : t -> int -> int * int

(** [search_window t ~u ~v] is the index window [lo, hi) within which
    Algorithm 8 must binary-search for any value in the open interval
    (u, v). *)
val search_window : t -> u:int -> v:int -> int * int
