(* KLL sketch (Karnin-Lang-Liberty, arXiv 1603.05346) with the lazy
   sweep-compactor update of Ivkin et al. (arXiv 1907.00236).

   Structure: a stack of levels; an item stored at level h stands for
   2^h original elements (its weight).  Capacities decay geometrically
   from the top of the stack (the newest level keeps the full k items,
   each level below keeps a c = 2/3 fraction of the one above, floored
   at k_min), so total space is ~3k items regardless of stream length.

   Laziness: inserts only append; nothing compacts until the total item
   count exceeds the total capacity.  Then the lowest over-full level
   compacts — and only enough pairs to fit again, not the whole buffer.
   Each compaction pass sweeps upward through value space from where
   the previous pass stopped (tracked by value, not index, so items
   arriving below the sweep point simply wait for the next round), with
   one random parity coin per sweep round deciding which element of
   each adjacent pair survives with doubled weight.

   Determinism: coins come from a Splitmix generator keyed on a stored
   seed and a flip counter, so (seed, coins) fully determine every
   future flip and both serialize; a restored sketch replays
   bit-identically.

   Exact minima and maxima are tracked outside the compactors (which
   may drop extremes) because the engine's stream summary pins its
   first and last entries to the true extremes. *)

let cap_decay = 2.0 /. 3.0
let k_min = 8

(* k = k_scale / epsilon.  The engine resets its stream sketch at every
   archived time step, so a sketch only ever summarizes one step's
   elements and compactions are rare; 3/eps keeps the realized rank
   error comfortably inside eps*n across the conformance grid. *)
let k_scale = 3.0

type level = {
  mutable buf : int array;
  mutable len : int;
  mutable sorted : bool; (* buf.[0,len) known sorted ascending *)
  mutable sweep : int option; (* last value compacted this sweep round *)
  mutable coin : int; (* pair parity for the current sweep round *)
}

type mode = Fixed | Capped of int

type t = {
  mutable k : int;
  mutable epsilon : float;
  mode : mode;
  coin_seed : int;
  mutable coins : int;
  mutable n : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable levels : level array;
  (* Flattened (values, cumulative weights) query view, invalidated on
     any mutation. *)
  mutable flat : (int array * int array) option;
}

let new_level () = { buf = [||]; len = 0; sorted = true; sweep = None; coin = 0 }

let header_words = 9
let level_meta_words = 4

let create ?(seed = 0) ~epsilon () =
  if not (epsilon > 0.0 && epsilon < 1.0) then
    invalid_arg "Kll.create: epsilon must lie in (0, 1)";
  {
    k = max k_min (int_of_float (ceil (k_scale /. epsilon)));
    epsilon;
    mode = Fixed;
    coin_seed = seed;
    coins = 0;
    n = 0;
    min_v = 0;
    max_v = 0;
    levels = [| new_level () |];
    flat = None;
  }

let create_capped ?(seed = 0) ~words () =
  let min_words = header_words + level_meta_words + (3 * k_min) in
  if words < min_words then
    invalid_arg (Printf.sprintf "Kll.create_capped: budget below %d words" min_words);
  (* Total capacity of the stack is ~k / (1 - c) = 3k items; leave a
     little slack for per-level metadata. *)
  let k = max k_min (((words - header_words) / 3) - level_meta_words) in
  {
    k;
    epsilon = k_scale /. float_of_int k;
    mode = Capped words;
    coin_seed = seed;
    coins = 0;
    n = 0;
    min_v = 0;
    max_v = 0;
    levels = [| new_level () |];
    flat = None;
  }

let count t = t.n
let epsilon t = t.epsilon
let error_bound t = t.epsilon

let size t = Array.fold_left (fun acc lv -> acc + lv.len) 0 t.levels

let memory_words t =
  header_words + (level_meta_words * Array.length t.levels) + size t

let num_levels t = Array.length t.levels

(* Capacity of level [h]: full k at the top, decaying by c per level of
   depth below it, floored at k_min. *)
let cap t h =
  let depth = num_levels t - 1 - h in
  max k_min (int_of_float (ceil (float_of_int t.k *. (cap_decay ** float_of_int depth))))

let total_cap t =
  let acc = ref 0 in
  for h = 0 to num_levels t - 1 do
    acc := !acc + cap t h
  done;
  !acc

let next_coin t =
  let mix = t.coin_seed lxor (t.coins * 0x2545F4914F6CDD1D) in
  t.coins <- t.coins + 1;
  Hsq_util.Splitmix.int (Hsq_util.Splitmix.create mix) 2

let invalidate t = t.flat <- None

let ensure_sorted lv =
  if not lv.sorted then begin
    let live = Array.sub lv.buf 0 lv.len in
    Array.sort compare live;
    Array.blit live 0 lv.buf 0 lv.len;
    lv.sorted <- true
  end

(* A fresh sorted array of the level's live items, without reordering
   the level itself (keeps [merge] pure for its inputs). *)
let sorted_snapshot lv =
  let live = Array.sub lv.buf 0 lv.len in
  if not lv.sorted then Array.sort compare live;
  live

let reserve lv extra =
  let needed = lv.len + extra in
  if needed > Array.length lv.buf then begin
    let capacity = ref (max 16 (Array.length lv.buf)) in
    while !capacity < needed do
      capacity := 2 * !capacity
    done;
    let bigger = Array.make !capacity 0 in
    Array.blit lv.buf 0 bigger 0 lv.len;
    lv.buf <- bigger
  end

(* Merge a sorted run into a (sorted) level, back to front, one pass. *)
let merge_run lv run =
  let r = Array.length run in
  if r > 0 then begin
    ensure_sorted lv;
    reserve lv r;
    let i = ref (lv.len - 1) and j = ref (r - 1) in
    let pos = ref (lv.len + r - 1) in
    while !j >= 0 do
      if !i >= 0 && lv.buf.(!i) > run.(!j) then begin
        lv.buf.(!pos) <- lv.buf.(!i);
        decr i
      end
      else begin
        lv.buf.(!pos) <- run.(!j);
        decr j
      end;
      decr pos
    done;
    lv.len <- lv.len + r
  end

let add_level t = t.levels <- Array.append t.levels [| new_level () |]

(* One sweep-compaction pass over level [h]: resume at the remembered
   sweep value (or start a new round with a fresh coin), promote one
   survivor per adjacent pair — just enough pairs to bring the level
   back under capacity — and remember where the sweep stopped. *)
let compact t h =
  let lv = t.levels.(h) in
  ensure_sorted lv;
  let resume_at v =
    let lo = ref 0 and hi = ref lv.len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if lv.buf.(mid) <= v then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let start =
    match lv.sweep with
    | None ->
      lv.coin <- next_coin t;
      0
    | Some v -> resume_at v
  in
  let start =
    if lv.len - start < 2 then begin
      (* The remaining tail is too short to pair: wrap to a new round. *)
      lv.sweep <- None;
      lv.coin <- next_coin t;
      0
    end
    else start
  in
  if lv.len - start >= 2 then begin
    if h + 1 >= num_levels t then add_level t;
    let over = lv.len - cap t h in
    let avail = (lv.len - start) / 2 in
    let pairs = max 1 (min avail over) in
    let promoted = Array.init pairs (fun i -> lv.buf.(start + (2 * i) + lv.coin)) in
    lv.sweep <- Some lv.buf.(start + (2 * pairs) - 1);
    Array.blit lv.buf (start + (2 * pairs)) lv.buf start (lv.len - start - (2 * pairs));
    lv.len <- lv.len - (2 * pairs);
    merge_run t.levels.(h + 1) promoted
  end

let maybe_compress t =
  let continue = ref (size t > total_cap t) in
  while !continue do
    (* Lowest over-full level; one always exists while the total
       exceeds the sum of capacities. *)
    let target = ref (-1) in
    let h = ref 0 in
    while !target < 0 && !h < num_levels t do
      if t.levels.(!h).len > cap t !h then target := !h;
      incr h
    done;
    if !target < 0 then continue := false
    else begin
      compact t !target;
      continue := size t > total_cap t
    end
  done

(* Capped mode: if the stack outgrew the word budget (deeper levels add
   metadata and k_min floors), coarsen k — and with it the advertised
   epsilon — until compaction brings the footprint back inside.  Error
   already incurred was bounded by the finer epsilon, so the coarser
   advertised bound stays honest. *)
let enforce_budget t =
  match t.mode with
  | Fixed -> ()
  | Capped words ->
    while memory_words t > words && t.k > k_min do
      t.k <- max k_min (t.k * 3 / 4);
      t.epsilon <- k_scale /. float_of_int t.k;
      maybe_compress t
    done

let note_bounds t v =
  if t.n = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let insert t v =
  note_bounds t v;
  let lv = t.levels.(0) in
  reserve lv 1;
  if lv.len > 0 && lv.sorted && v < lv.buf.(lv.len - 1) then lv.sorted <- false;
  lv.buf.(lv.len) <- v;
  lv.len <- lv.len + 1;
  t.n <- t.n + 1;
  invalidate t;
  maybe_compress t;
  enforce_budget t

let insert_sorted_batch t b =
  let r = Array.length b in
  if r = 1 then insert t b.(0)
  else if r > 0 then begin
    note_bounds t b.(0);
    note_bounds t b.(r - 1);
    merge_run t.levels.(0) b;
    t.n <- t.n + r;
    invalidate t;
    maybe_compress t;
    enforce_budget t
  end

let flatten t =
  match t.flat with
  | Some f -> f
  | None ->
    let total = size t in
    let pairs = Array.make total (0, 0) in
    let pos = ref 0 in
    Array.iteri
      (fun h lv ->
        let w = 1 lsl h in
        for i = 0 to lv.len - 1 do
          pairs.(!pos) <- (lv.buf.(i), w);
          incr pos
        done)
      t.levels;
    Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
    let vals = Array.map fst pairs in
    let cum = Array.make total 0 in
    let acc = ref 0 in
    Array.iteri
      (fun i (_, w) ->
        acc := !acc + w;
        cum.(i) <- !acc)
      pairs;
    t.flat <- Some (vals, cum);
    (vals, cum)

let query_rank t r =
  if t.n = 0 then invalid_arg "Kll.query_rank: empty sketch";
  let r = max 1 (min t.n r) in
  let vals, cum = flatten t in
  (* Smallest stored item whose cumulative weight reaches r. *)
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) >= r then hi := mid else lo := mid + 1
  done;
  vals.(!lo)

let rank_of t v =
  if t.n = 0 then 0
  else begin
    let vals, cum = flatten t in
    let len = Array.length vals in
    (* Largest index with vals.(i) <= v. *)
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if vals.(mid) <= v then lo := mid + 1 else hi := mid
    done;
    if !lo = 0 then 0 else cum.(!lo - 1)
  end

let min_value t =
  if t.n = 0 then invalid_arg "Kll.min_value: empty sketch";
  t.min_v

let max_value t =
  if t.n = 0 then invalid_arg "Kll.max_value: empty sketch";
  t.max_v

let copy t =
  {
    t with
    levels =
      Array.map
        (fun lv -> { lv with buf = Array.sub lv.buf 0 lv.len; len = lv.len })
        t.levels;
    flat = None;
  }

let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let n = a.n + b.n in
    let epsilon =
      ((a.epsilon *. float_of_int a.n) +. (b.epsilon *. float_of_int b.n)) /. float_of_int n
    in
    let heights = max (num_levels a) (num_levels b) in
    let levels =
      Array.init heights (fun h ->
          let items side =
            if h < num_levels side then sorted_snapshot side.levels.(h) else [||]
          in
          let lv = new_level () in
          merge_run lv (items a);
          merge_run lv (items b);
          lv)
    in
    let t =
      {
        k = max k_min (min a.k b.k);
        epsilon;
        mode = Fixed;
        coin_seed = a.coin_seed lxor (b.coin_seed * 0x9E3779B97F4A7C1) lxor 0x5DEECE66D;
        coins = 0;
        n;
        min_v = min a.min_v b.min_v;
        max_v = max a.max_v b.max_v;
        levels;
        flat = None;
      }
    in
    maybe_compress t;
    t
  end

let check_invariants t =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let weight = ref 0 in
  Array.iteri
    (fun h lv ->
      if lv.len < 0 then problem "level %d: negative length" h;
      weight := !weight + (lv.len * (1 lsl h));
      if lv.sorted then
        for i = 1 to lv.len - 1 do
          if lv.buf.(i - 1) > lv.buf.(i) then
            problem "level %d: marked sorted but buf[%d] > buf[%d]" h (i - 1) i
        done;
      if t.n > 0 then
        for i = 0 to lv.len - 1 do
          if lv.buf.(i) < t.min_v || lv.buf.(i) > t.max_v then
            problem "level %d: item %d outside [min, max] envelope" h lv.buf.(i)
        done;
      match lv.coin with
      | 0 | 1 -> ()
      | c -> problem "level %d: coin %d not a parity" h c)
    t.levels;
  if !weight <> t.n then
    problem "weight conservation: stored weight %d <> count %d" !weight t.n;
  if size t > total_cap t then
    problem "capacity: %d items stored, %d allowed" (size t) (total_cap t);
  if t.n > 0 && t.min_v > t.max_v then problem "min > max";
  List.rev !problems

let serialize t =
  let heights = num_levels t in
  let snapshots = Array.map sorted_snapshot t.levels in
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 snapshots in
  let out = Array.make (header_words + (level_meta_words * heights) + total) 0 in
  out.(0) <- (match t.mode with Fixed -> 0 | Capped w -> w);
  out.(1) <- Int64.to_int (Int64.bits_of_float t.epsilon);
  out.(2) <- t.k;
  out.(3) <- t.n;
  out.(4) <- t.coin_seed;
  out.(5) <- t.coins;
  out.(6) <- t.min_v;
  out.(7) <- t.max_v;
  out.(8) <- heights;
  let pos = ref (header_words + (level_meta_words * heights)) in
  Array.iteri
    (fun h snapshot ->
      let base = header_words + (level_meta_words * h) in
      let lv = t.levels.(h) in
      out.(base) <- Array.length snapshot;
      out.(base + 1) <- lv.coin;
      (match lv.sweep with
      | None -> ()
      | Some v ->
        out.(base + 2) <- 1;
        out.(base + 3) <- v);
      Array.blit snapshot 0 out !pos (Array.length snapshot);
      pos := !pos + Array.length snapshot)
    snapshots;
  out

let deserialize data =
  let fail fmt = Printf.ksprintf invalid_arg ("Kll.deserialize: " ^^ fmt) in
  if Array.length data < header_words then fail "truncated header";
  let mode_word = data.(0) in
  if mode_word < 0 then fail "negative budget word";
  let mode = if mode_word = 0 then Fixed else Capped mode_word in
  let epsilon = Int64.float_of_bits (Int64.of_int data.(1)) in
  if not (epsilon > 0.0 && epsilon < 1.0) then fail "epsilon out of range";
  let k = data.(2) in
  if k < 1 then fail "k < 1";
  let n = data.(3) in
  if n < 0 then fail "negative count";
  let coin_seed = data.(4) in
  let coins = data.(5) in
  if coins < 0 then fail "negative coin counter";
  let min_v = data.(6) and max_v = data.(7) in
  if n > 0 && min_v > max_v then fail "min above max";
  let heights = data.(8) in
  if heights < 1 || heights > 62 then fail "implausible level count %d" heights;
  if Array.length data < header_words + (level_meta_words * heights) then
    fail "truncated level table";
  let total = ref 0 in
  for h = 0 to heights - 1 do
    let len = data.(header_words + (level_meta_words * h)) in
    if len < 0 then fail "level %d: negative length" h;
    total := !total + len
  done;
  if Array.length data <> header_words + (level_meta_words * heights) + !total then
    fail "length mismatch";
  let pos = ref (header_words + (level_meta_words * heights)) in
  let weight = ref 0 in
  let levels =
    Array.init heights (fun h ->
        let base = header_words + (level_meta_words * h) in
        let len = data.(base) in
        let coin = data.(base + 1) in
        if coin <> 0 && coin <> 1 then fail "level %d: coin not a parity" h;
        let sweep =
          match data.(base + 2) with
          | 0 -> None
          | 1 -> Some data.(base + 3)
          | _ -> fail "level %d: bad sweep flag" h
        in
        let buf = Array.sub data !pos len in
        pos := !pos + len;
        for i = 0 to len - 1 do
          if i > 0 && buf.(i - 1) > buf.(i) then fail "level %d: items not sorted" h;
          if n > 0 && (buf.(i) < min_v || buf.(i) > max_v) then
            fail "level %d: item outside min/max envelope" h
        done;
        weight := !weight + (len * (1 lsl h));
        { buf; len; sorted = true; sweep; coin })
  in
  if !weight <> n then fail "stored weight %d does not match count %d" !weight n;
  { k; epsilon; mode; coin_seed; coins; n; min_v; max_v; levels; flat = None }

let dump t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "KLL k=%d eps=%g n=%d size=%d levels=%d coins=%d\n" t.k t.epsilon t.n
       (size t) (num_levels t) t.coins);
  Array.iteri
    (fun h lv ->
      Buffer.add_string b
        (Printf.sprintf "  level %d (w=%d, cap=%d, %s%s): %d items\n" h (1 lsl h) (cap t h)
           (if lv.sorted then "sorted" else "unsorted")
           (match lv.sweep with None -> "" | Some v -> Printf.sprintf ", sweep@%d" v)
           lv.len))
    t.levels;
  Buffer.contents b

let sketch : (module Quantile_sketch.S with type t = t) =
  (module struct
    type nonrec t = t

    let insert = insert
    let count = count
    let memory_words = memory_words
    let query_rank = query_rank
    let rank_of = rank_of
    let error_bound = error_bound
  end)
