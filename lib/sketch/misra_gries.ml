(* Misra-Gries frequent-items summary [Misra & Gries 1982] — the
   deterministic counter-based alternative to SpaceSaving, kept for
   comparison and cross-checking in tests.

   k counters; guarantees over n items:
     true_count(v) - n/(k+1) <= estimate(v) <= true_count(v)
   (estimates never OVERcount — the mirror image of SpaceSaving). *)

type t = {
  capacity : int;
  table : (int, int ref) Hashtbl.t;
  mutable n : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Misra_gries.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (2 * capacity); n = 0 }

let count t = t.n
let size t = Hashtbl.length t.table
let memory_words t = 6 + (3 * Hashtbl.length t.table)

let insert t v =
  t.n <- t.n + 1;
  match Hashtbl.find_opt t.table v with
  | Some c -> incr c
  | None ->
    if Hashtbl.length t.table < t.capacity then Hashtbl.replace t.table v (ref 1)
    else begin
      (* Decrement-all: drop every counter by one, evicting zeros. *)
      let dead = ref [] in
      Hashtbl.iter
        (fun item c ->
          decr c;
          if !c = 0 then dead := item :: !dead)
        t.table;
      List.iter (Hashtbl.remove t.table) !dead
    end

let estimate t v = match Hashtbl.find_opt t.table v with Some c -> !c | None -> 0

let entries t =
  Hashtbl.fold (fun item c acc -> (item, !c) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

(* Maximum undercount: n / (k+1). *)
let error_bound t = t.n / (t.capacity + 1)
