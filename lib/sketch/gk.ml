(* Greenwald-Khanna epsilon-approximate quantile summary [GK, SIGMOD'01],
   the stream sketch used by the paper (Theorem 1).

   The summary is a value-sorted sequence of tuples (v, g, delta) with
     rmin(i) = sum_{j<=i} g_j   and   rmax(i) = rmin(i) + delta_i,
   maintaining the invariant g_i + delta_i <= floor(2*eps*n).  We use the
   simplified compression (merge tuple i into its successor whenever the
   invariant allows) rather than GK's band construction; the epsilon
   guarantee is identical, only the constant in the space bound differs.
   The minimum tuple is never merged, so the exact stream minimum is
   always available — Algorithm 4 needs it for SS[0].

   A memory-capped variant (for the fixed-budget experiments of Figure 4)
   grows epsilon geometrically and recompresses whenever the summary
   exceeds its word budget; since the invariant threshold only grows,
   correctness under the final epsilon is preserved. *)

type tuple = { value : int; g : int; delta : int }

type mode = Fixed | Capped of int (* word budget *)

type t = {
  mutable tuples : tuple array; (* first [size] entries live, sorted by value *)
  mutable size : int;
  mutable n : int;
  mutable epsilon : float;
  mode : mode;
  mutable since_compress : int;
}

let dummy = { value = 0; g = 0; delta = 0 }

let create ~epsilon =
  if not (epsilon > 0.0 && epsilon < 1.0) then invalid_arg "Gk.create: epsilon not in (0,1)";
  { tuples = Array.make 16 dummy; size = 0; n = 0; epsilon; mode = Fixed; since_compress = 0 }

let header_words = 8
let words_per_tuple = 3

let create_capped ~words =
  let min_words = header_words + (8 * words_per_tuple) in
  if words < min_words then
    invalid_arg (Printf.sprintf "Gk.create_capped: budget below %d words" min_words);
  let max_tuples = (words - header_words) / words_per_tuple in
  {
    tuples = Array.make 16 dummy;
    size = 0;
    n = 0;
    epsilon = 1.0 /. (2.0 *. float_of_int max_tuples);
    mode = Capped words;
    since_compress = 0;
  }

let count t = t.n
let size t = t.size
let epsilon t = t.epsilon
let error_bound t = t.epsilon
let memory_words t = header_words + (words_per_tuple * t.size)

let threshold t = int_of_float (2.0 *. t.epsilon *. float_of_int t.n)

(* Merge right-to-left into successors where the invariant allows.  The
   first tuple (exact minimum) is exempt; the last tuple only ever gains
   weight, so the maximum survives with rmax = n. *)
let compress t =
  if t.size > 2 then begin
    let thr = threshold t in
    let merged = ref [ t.tuples.(t.size - 1) ] in
    for i = t.size - 2 downto 1 do
      match !merged with
      | succ :: rest when t.tuples.(i).g + succ.g + succ.delta <= thr ->
        merged := { succ with g = succ.g + t.tuples.(i).g } :: rest
      | acc -> merged := t.tuples.(i) :: acc
    done;
    merged := t.tuples.(0) :: !merged;
    let new_size = List.length !merged in
    List.iteri (fun i tu -> t.tuples.(i) <- tu) !merged;
    t.size <- new_size;
    t.since_compress <- 0
  end

(* Capped mode: coarsen epsilon until the footprint fits the budget. *)
let enforce_budget t =
  match t.mode with
  | Fixed -> ()
  | Capped words ->
    let attempts = ref 0 in
    while memory_words t > words && !attempts < 128 do
      t.epsilon <- t.epsilon *. 1.5;
      if t.epsilon > 0.5 then t.epsilon <- 0.5;
      compress t;
      incr attempts
    done

(* First index with value > v, by binary search over live tuples. *)
let upper_bound t v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.tuples.(mid).value <= v then go (mid + 1) hi else go lo mid
  in
  go 0 t.size

let insert_at t i tu =
  if t.size = Array.length t.tuples then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.tuples 0 bigger 0 t.size;
    t.tuples <- bigger
  end;
  Array.blit t.tuples i t.tuples (i + 1) (t.size - i);
  t.tuples.(i) <- tu;
  t.size <- t.size + 1

let insert t v =
  let i = upper_bound t v in
  let delta = if i = 0 || i = t.size then 0 else max 0 (threshold t - 1) in
  insert_at t i { value = v; g = 1; delta };
  t.n <- t.n + 1;
  t.since_compress <- t.since_compress + 1;
  let period = max 1 (int_of_float (1.0 /. (2.0 *. t.epsilon))) in
  if t.since_compress >= period then begin
    compress t;
    enforce_budget t
  end
  else
    (* In capped mode the budget must hold at every instant, not just on
       the compression schedule. *)
    match t.mode with
    | Capped words when memory_words t > words ->
      compress t;
      enforce_budget t
    | Fixed | Capped _ -> ()

(* Batched insert of a value-sorted run: one back-to-front merge pass
   places all k elements in O(size + k) instead of k O(size) shifts, the
   hand-off structure that makes concurrent ingest pay (cf. Quancurrent,
   arXiv 2208.09265; Ivkin et al., arXiv 1907.00236).  Deltas replicate
   what sequential ascending insertion of the same run would produce —
   0 for elements landing past the old maximum or below the exact old
   minimum (their ranks are known exactly at placement), the invariant
   threshold minus one elsewhere — except the threshold is taken at the
   post-batch n, which can only enlarge delta; g_i + delta_i <=
   floor(2*eps*n) still holds and rmax stays a valid upper bound. *)
let insert_sorted_batch t b =
  let k = Array.length b in
  if k = 1 then insert t b.(0)
  else if k > 0 then begin
    let old_size = t.size in
    let new_n = t.n + k in
    let thr = int_of_float (2.0 *. t.epsilon *. float_of_int new_n) in
    let interior_delta = max 0 (thr - 1) in
    let needed = old_size + k in
    if needed > Array.length t.tuples then begin
      let cap = ref (max 16 (Array.length t.tuples)) in
      while !cap < needed do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap dummy in
      Array.blit t.tuples 0 bigger 0 old_size;
      t.tuples <- bigger
    end;
    let old_min = if old_size = 0 then max_int else t.tuples.(0).value in
    let old_max = if old_size = 0 then min_int else t.tuples.(old_size - 1).value in
    let i = ref (old_size - 1) and j = ref (k - 1) in
    let pos = ref (needed - 1) in
    (* Once the batch is exhausted the surviving old prefix is already in
       place, so the merge walks at most size + k positions total. *)
    while !j >= 0 do
      if !i >= 0 && t.tuples.(!i).value > b.(!j) then begin
        t.tuples.(!pos) <- t.tuples.(!i);
        decr i
      end
      else begin
        let v = b.(!j) in
        let delta =
          if old_size = 0 then 0 (* sorted run into an empty sketch: every
                                    element appends past the running max *)
          else if v >= old_max || v < old_min then 0
          else interior_delta
        in
        t.tuples.(!pos) <- { value = v; g = 1; delta };
        decr j
      end;
      decr pos
    done;
    t.size <- needed;
    t.n <- new_n;
    t.since_compress <- t.since_compress + k;
    let period = max 1 (int_of_float (1.0 /. (2.0 *. t.epsilon))) in
    if t.since_compress >= period then begin
      compress t;
      enforce_budget t
    end
    else
      match t.mode with
      | Capped words when memory_words t > words ->
        compress t;
        enforce_budget t
      | Fixed | Capped _ -> ()
  end

(* Smallest tuple index with rmin >= r - eps*n; by the invariant its rmax
   is < r + eps*n, so its value answers rank r within eps*n. *)
let query_rank t r =
  if t.n = 0 then invalid_arg "Gk.query_rank: empty sketch";
  let r = if r < 1 then 1 else if r > t.n then t.n else r in
  let slack = t.epsilon *. float_of_int t.n in
  let lo = float_of_int r -. slack in
  let rec go i rmin =
    if i >= t.size - 1 then t.tuples.(t.size - 1).value
    else
      let rmin = rmin + t.tuples.(i).g in
      if float_of_int rmin >= lo then t.tuples.(i).value else go (i + 1) rmin
  in
  go 0 0

(* Estimated rank of v: midpoint of [rmin, rmax] of the last tuple <= v. *)
let rank_of t v =
  if t.n = 0 then 0
  else begin
    let i = upper_bound t v in
    if i = 0 then 0
    else begin
      let rmin = ref 0 in
      for j = 0 to i - 1 do
        rmin := !rmin + t.tuples.(j).g
      done;
      !rmin + (t.tuples.(i - 1).delta / 2)
    end
  end

(* All live tuples with their rank intervals, for tests and debugging. *)
let dump t =
  let rmin = ref 0 in
  List.init t.size (fun i ->
      rmin := !rmin + t.tuples.(i).g;
      (t.tuples.(i).value, !rmin, !rmin + t.tuples.(i).delta))

let min_value t =
  if t.n = 0 then invalid_arg "Gk.min_value: empty sketch";
  t.tuples.(0).value

let max_value t =
  if t.n = 0 then invalid_arg "Gk.max_value: empty sketch";
  t.tuples.(t.size - 1).value

(* Mergeability [Agarwal et al., Mergeable Summaries, PODS'12]: the
   rank interval of x in A u B is bracketed by
     rmin_A(x) + rmin_B(pred_B(x))  and  rmax_A(x) + rmax_B(succ_B(x)),
   so re-encoding those combined intervals as (g, delta) tuples yields a
   valid summary of the union with additive error
   eps_A * n_A + eps_B * n_B <= max(eps) * (n_A + n_B).  This is the
   building block for sketching several streams independently (e.g. one
   per ingest node) and combining at query time. *)
let merge a b =
  if a.mode <> Fixed || b.mode <> Fixed then
    invalid_arg "Gk.merge: only fixed-epsilon sketches are mergeable";
  (* The union's error rate is the additive one: eps_eff * (n_a + n_b)
     = eps_a * n_a + eps_b * n_b.  (For empty sides, keep the other's.) *)
  let eff_epsilon =
    if a.n + b.n = 0 then Float.max a.epsilon b.epsilon
    else
      ((a.epsilon *. float_of_int a.n) +. (b.epsilon *. float_of_int b.n))
      /. float_of_int (a.n + b.n)
  in
  let eff_epsilon = if eff_epsilon <= 0.0 then Float.max a.epsilon b.epsilon else eff_epsilon in
  if a.n = 0 then { a with epsilon = eff_epsilon; tuples = Array.sub b.tuples 0 (max 16 b.size); size = b.size; n = b.n }
  else if b.n = 0 then { b with epsilon = eff_epsilon; tuples = Array.sub a.tuples 0 (max 16 a.size); size = a.size; n = a.n }
  else begin
    (* (value, rmin, rmax) streams of both summaries *)
    let intervals t =
      let out = Array.make t.size (0, 0, 0) in
      let rmin = ref 0 in
      for i = 0 to t.size - 1 do
        rmin := !rmin + t.tuples.(i).g;
        out.(i) <- (t.tuples.(i).value, !rmin, !rmin + t.tuples.(i).delta)
      done;
      out
    in
    let ia = intervals a and ib = intervals b in
    (* For x taken from one side, add the other side's contribution:
       rmin of its predecessor, rmax of its successor. *)
    let contribution other x =
      let n_other = Array.length other in
      (* largest index with value <= x *)
      let rec ub lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          let v, _, _ = other.(mid) in
          if v <= x then ub (mid + 1) hi else ub lo mid
      in
      let i = ub 0 n_other in
      let lo = if i = 0 then 0 else (fun (_, rmin, _) -> rmin) other.(i - 1) in
      let hi =
        if i >= n_other then (fun (_, _, rmax) -> rmax) other.(n_other - 1)
        else (fun (_, _, rmax) -> rmax) other.(i)
      in
      (lo, hi)
    in
    let combined =
      Array.append
        (Array.map
           (fun (v, rmin, rmax) ->
             let lo, hi = contribution ib v in
             (v, rmin + lo, rmax + hi))
           ia)
        (Array.map
           (fun (v, rmin, rmax) ->
             let lo, hi = contribution ia v in
             (v, rmin + lo, rmax + hi))
           ib)
    in
    Array.sort
      (fun (v1, rmin1, rmax1) (v2, rmin2, rmax2) ->
        if v1 <> v2 then Int.compare v1 v2
        else if rmin1 <> rmin2 then Int.compare rmin1 rmin2
        else Int.compare rmax1 rmax2)
      combined;
    (* Re-encode as (g, delta); enforce monotone rmin/rmax first (ties
       in value can interleave the two sides' intervals). *)
    let n_comb = Array.length combined in
    for i = 1 to n_comb - 1 do
      let v, rmin, rmax = combined.(i) in
      let _, prev_rmin, _ = combined.(i - 1) in
      combined.(i) <- (v, max rmin prev_rmin, rmax)
    done;
    for i = n_comb - 2 downto 0 do
      let v, rmin, rmax = combined.(i) in
      let _, _, next_rmax = combined.(i + 1) in
      combined.(i) <- (v, rmin, min rmax next_rmax)
    done;
    let merged =
      {
        tuples = Array.make (max 16 n_comb) dummy;
        size = n_comb;
        n = a.n + b.n;
        epsilon = eff_epsilon;
        mode = Fixed;
        since_compress = 0;
      }
    in
    let prev_rmin = ref 0 in
    for i = 0 to n_comb - 1 do
      let value, rmin, rmax = combined.(i) in
      (* the union's true count must land on n at the last tuple *)
      let rmin = if i = n_comb - 1 then merged.n else rmin in
      merged.tuples.(i) <- { value; g = max 0 (rmin - !prev_rmin); delta = max 0 (rmax - rmin) };
      prev_rmin := max rmin !prev_rmin
    done;
    compress merged;
    merged
  end

(* Checkpoint serialization: the full mutable state as a word array, so
   a recovered sketch is bit-identical to the one that was running (the
   same inserts produce the same summary either side of a crash).
   Layout: mode (0 = Fixed, else the Capped word budget — budgets are
   >= 32, so 0 is unambiguous), epsilon as IEEE-754 bits, n, size,
   since_compress, then (value, g, delta) per live tuple.  Epsilon lies
   in (0, 1), whose bit pattern fits a 63-bit OCaml int exactly. *)
let serialize t =
  let out = Array.make (5 + (words_per_tuple * t.size)) 0 in
  out.(0) <- (match t.mode with Fixed -> 0 | Capped w -> w);
  out.(1) <- Int64.to_int (Int64.bits_of_float t.epsilon);
  out.(2) <- t.n;
  out.(3) <- t.size;
  out.(4) <- t.since_compress;
  for i = 0 to t.size - 1 do
    out.(5 + (3 * i)) <- t.tuples.(i).value;
    out.(5 + (3 * i) + 1) <- t.tuples.(i).g;
    out.(5 + (3 * i) + 2) <- t.tuples.(i).delta
  done;
  out

let deserialize words =
  if Array.length words < 5 then invalid_arg "Gk.deserialize: short header";
  let mode = if words.(0) = 0 then Fixed else Capped words.(0) in
  let epsilon = Int64.float_of_bits (Int64.of_int words.(1)) in
  let n = words.(2) in
  let size = words.(3) in
  let since_compress = words.(4) in
  if not (epsilon > 0.0 && epsilon < 1.0) then invalid_arg "Gk.deserialize: bad epsilon";
  if n < 0 || size < 0 || size > n then invalid_arg "Gk.deserialize: bad counts";
  if Array.length words <> 5 + (words_per_tuple * size) then
    invalid_arg "Gk.deserialize: tuple region length mismatch";
  let tuples = Array.make (max 16 size) dummy in
  for i = 0 to size - 1 do
    let value = words.(5 + (3 * i)) in
    let g = words.(5 + (3 * i) + 1) in
    let delta = words.(5 + (3 * i) + 2) in
    if g < 0 || delta < 0 then invalid_arg "Gk.deserialize: negative tuple field";
    if i > 0 && value < tuples.(i - 1).value then
      invalid_arg "Gk.deserialize: tuples not sorted by value";
    tuples.(i) <- { value; g; delta }
  done;
  { tuples; size; n; epsilon; mode; since_compress }

let sketch : (module Quantile_sketch.S with type t = t) =
  (module struct
    type nonrec t = t

    let insert = insert
    let count = count
    let memory_words = memory_words
    let query_rank = query_rank
    let rank_of = rank_of
    let error_bound = error_bound
  end)
