(* SpaceSaving [Metwally, Agrawal, El Abbadi, ICDT'05] — the standard
   streaming heavy-hitters sketch.

   k counters; a new item evicts the minimum counter and inherits its
   count as overestimation error.  Guarantees, for n processed items:
     - estimate(v) >= true_count(v)                  (never under)
     - estimate(v) - true_count(v) <= n / k
     - every item with true count > n/k is tracked.

   Used as the stream side of the heavy-hitters-over-union extension
   (the paper names heavy hitters alongside quantiles as the missing
   warehouse primitives, Section 1). *)

type counter = { mutable count : int; mutable error : int }

type t = {
  capacity : int;
  table : (int, counter) Hashtbl.t;
  mutable n : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spacesaving.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (2 * capacity); n = 0 }

let count t = t.n
let size t = Hashtbl.length t.table
let capacity t = t.capacity
let memory_words t = 8 + (4 * Hashtbl.length t.table)

(* Linear min scan: capacity is small (heavy-hitter sketches hold tens
   to thousands of counters); a heap would only matter beyond that. *)
let find_min t =
  Hashtbl.fold
    (fun item c acc ->
      match acc with
      | Some (_, best) when best.count <= c.count -> acc
      | _ -> Some (item, c))
    t.table None

let insert t v =
  t.n <- t.n + 1;
  match Hashtbl.find_opt t.table v with
  | Some c -> c.count <- c.count + 1
  | None ->
    if Hashtbl.length t.table < t.capacity then
      Hashtbl.replace t.table v { count = 1; error = 0 }
    else begin
      match find_min t with
      | None -> Hashtbl.replace t.table v { count = 1; error = 0 }
      | Some (victim, c) ->
        Hashtbl.remove t.table victim;
        Hashtbl.replace t.table v { count = c.count + 1; error = c.count }
    end

(* (item, estimate, max overestimation); estimate - error <= true <= estimate. *)
let entries t =
  Hashtbl.fold (fun item c acc -> (item, c.count, c.error) :: acc) t.table []
  |> List.sort (fun (_, a, _) (_, b, _) -> Int.compare b a)

let estimate t v =
  match Hashtbl.find_opt t.table v with
  | Some c -> (c.count, c.error)
  | None -> ((if t.n = 0 then 0 else t.n / t.capacity), t.n / t.capacity)
  (* untracked: true count <= n/k; report that bound as both estimate
     and error so callers keep a sound upper bound *)

(* All tracked items whose count could reach [threshold]. *)
let candidates t ~threshold =
  List.filter_map (fun (v, est, _) -> if est >= threshold then Some v else None) (entries t)

let error_bound t = if t.n = 0 then 0 else (t.n + t.capacity - 1) / t.capacity
