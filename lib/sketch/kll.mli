(** KLL quantile sketch (Karnin, Lang, Liberty; arXiv 1603.05346) with
    the lazy sweep-compactor update of Ivkin et al. (arXiv 1907.00236).

    The sketch is a stack of weighted compactors: an item stored at
    level [h] stands for [2^h] original elements.  Inserts append to
    level 0 in O(1); nothing is compacted until the total item count
    exceeds the total capacity, at which point the lowest over-full
    level compacts just enough pairs — sweeping through value space
    with one random parity coin per sweep round — to fit again.

    Unlike GK, the sketch is fully mergeable: {!merge} combines two
    sketches level-by-level and re-compacts, and the merged rank error
    is bounded by the weighted average of the two inputs' error
    parameters, so per-shard stream summaries can be composed by merge
    instead of summed rank windows.

    Coin flips are derived deterministically from a per-sketch seed and
    a flip counter, both of which serialize, so a deserialized sketch
    replays bit-identically. *)

type t

val create : ?seed:int -> epsilon:float -> unit -> t
(** [create ~epsilon ()] sizes the compactor stack so that the rank
    error of any query stays within [epsilon * count] for the adversary-
    free streams this engine feeds it.  Raises [Invalid_argument]
    unless [epsilon] lies in (0, 1).  [seed] fixes the coin sequence
    (default 0). *)

val create_capped : ?seed:int -> words:int -> unit -> t
(** [create_capped ~words ()] derives the compactor capacity from a
    memory budget of [words] machine words instead of a target epsilon;
    {!epsilon} reports the error parameter the budget buys.  Raises
    [Invalid_argument] if the budget cannot hold the minimum stack. *)

val insert : t -> int -> unit

val insert_sorted_batch : t -> int array -> unit
(** [insert_sorted_batch t b] inserts every element of [b], which must
    be sorted ascending.  The sorted run merges into level 0 in one
    pass, so a lane hand-off costs O(size + length b) instead of
    [length b] separate inserts. *)

val count : t -> int
(** Elements observed (the stream length [n], not the stored size). *)

val size : t -> int
(** Items currently stored across all compactor levels. *)

val epsilon : t -> float
val error_bound : t -> float
val memory_words : t -> int

val query_rank : t -> int -> int
(** [query_rank t r] returns a value whose rank is within
    [error_bound t * count t] of [r] (1-based; clamped to [1, count]).
    Raises [Invalid_argument] on an empty sketch. *)

val rank_of : t -> int -> int
(** Estimated number of observed elements [<= v]. *)

val min_value : t -> int
(** Exact minimum observed (tracked outside the compactors, which may
    drop extremes).  Raises [Invalid_argument] on an empty sketch. *)

val max_value : t -> int
(** Exact maximum observed.  Raises [Invalid_argument] if empty. *)

val copy : t -> t
(** Deep copy; the copy's future coin flips replay the original's. *)

val merge : t -> t -> t
(** [merge a b] is a sketch summarizing the concatenation of the two
    input streams; the inputs are not modified.  The result's error
    parameter is the count-weighted average of the inputs', so
    [error_bound (merge a b) * count (merge a b)] never exceeds the sum
    of the inputs' absolute error budgets. *)

val check_invariants : t -> string list
(** Structural invariant violations (empty when healthy): weight
    conservation (sum of [2^level] over stored items equals [count]),
    per-level sortedness, capacity compliance, and min/max envelope. *)

val serialize : t -> int array
(** Checkpoint image: configuration, coin state, and every stored item.
    Restoring with {!deserialize} yields a sketch that answers and
    behaves identically. *)

val deserialize : int array -> t
(** Raises [Invalid_argument] on any structural damage: bad header,
    length mismatch, weight-conservation failure, unsorted level, or
    items outside the recorded min/max envelope. *)

val dump : t -> string
(** Debug rendering of the compactor stack. *)

val sketch : (module Quantile_sketch.S with type t = t)
