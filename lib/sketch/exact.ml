(* Exact quantiles by keeping every element.  Memory is Theta(n) — the
   point of the paper is to avoid this — but it is the reference oracle
   for every approximate structure in the test suites, and a valid
   (if expensive) member of the common sketch interface. *)

type t = {
  mutable data : int array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 16 0; len = 0; sorted = true }

let of_array a =
  let data = Array.copy a in
  Array.sort Int.compare data;
  { data; len = Array.length a; sorted = true }

let insert t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.sorted <- false

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.len in
    Array.sort Int.compare live;
    Array.blit live 0 t.data 0 t.len;
    t.sorted <- true
  end

let count t = t.len
let memory_words t = 4 + Array.length t.data
let error_bound _ = 0.0

let sorted_view t =
  ensure_sorted t;
  Array.sub t.data 0 t.len

let query_rank t r =
  if t.len = 0 then invalid_arg "Exact.query_rank: empty sketch";
  ensure_sorted t;
  let r = if r < 1 then 1 else if r > t.len then t.len else r in
  t.data.(r - 1)

let rank_of t v =
  ensure_sorted t;
  (* Upper-bound binary search over the live prefix. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.data.(mid) <= v then go (mid + 1) hi else go lo mid
  in
  go 0 t.len

let quantile t phi =
  if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Exact.quantile: phi not in (0,1]";
  query_rank t (int_of_float (ceil (phi *. float_of_int t.len)))

let sketch : (module Quantile_sketch.S with type t = t) =
  (module struct
    type nonrec t = t

    let insert = insert
    let count = count
    let memory_words = memory_words
    let query_rank = query_rank
    let rank_of = rank_of
    let error_bound = error_bound
  end)
