(* Q-Digest [Shrivastava et al., SenSys'04], the second pure-streaming
   baseline in the paper's experiments.

   The digest is a sparse complete binary tree over a fixed universe
   [0, 2^bits).  Node ids follow the heap convention: root = 1, children
   of x are 2x and 2x+1, the leaf for value v is 2^bits + v.  The digest
   property with compression factor k: every non-root node x satisfies
   count(x) + count(sibling x) + count(parent x) >= floor(n/k); nodes
   violating it are merged upward.  Rank error is at most
   log2(U) * n / k, i.e. epsilon = bits / k. *)

type t = {
  bits : int;
  k : int;
  counts : (int, int) Hashtbl.t;
  mutable n : int;
  mutable since_compress : int;
}

let max_bits = 61

let create ~bits ~k =
  if bits < 1 || bits > max_bits then invalid_arg "Qdigest.create: bits out of range";
  if k < 1 then invalid_arg "Qdigest.create: k must be positive";
  { bits; k; counts = Hashtbl.create 64; n = 0; since_compress = 0 }

let header_words = 8
let words_per_node = 2

(* The digest never holds more than ~3k nodes after compression, so a
   word budget of w supports k = (w - header) / (3 * words_per_node). *)
let create_capped ~bits ~words =
  let k = (words - header_words) / (3 * words_per_node) in
  if k < 1 then invalid_arg "Qdigest.create_capped: budget too small";
  create ~bits ~k

let count t = t.n
let size t = Hashtbl.length t.counts
let memory_words t = header_words + (words_per_node * size t)
let error_bound t = float_of_int t.bits /. float_of_int t.k
let universe_bits t = t.bits

let node_count t x = match Hashtbl.find_opt t.counts x with Some c -> c | None -> 0

let set_count t x c = if c = 0 then Hashtbl.remove t.counts x else Hashtbl.replace t.counts x c

let leaf t v = (1 lsl t.bits) + v

(* Depth of node id x: root (id 1) has depth 0, leaves have depth bits. *)
let depth x =
  let rec go x acc = if x <= 1 then acc else go (x lsr 1) (acc + 1) in
  go x 0

(* Value range [lo, hi] covered by node x. *)
let node_range t x =
  let d = depth x in
  let width = 1 lsl (t.bits - d) in
  let lo = (x - (1 lsl d)) * width in
  (lo, lo + width - 1)

let threshold t = t.n / t.k

(* Bottom-up pass: merge sibling pairs (and their parent slot) that
   violate the digest property. *)
let compress t =
  let thr = threshold t in
  if thr > 0 then begin
    let by_depth = Array.make (t.bits + 1) [] in
    Hashtbl.iter (fun x _ -> by_depth.(depth x) <- x :: by_depth.(depth x)) t.counts;
    for d = t.bits downto 1 do
      let nodes = by_depth.(d) in
      List.iter
        (fun x ->
          let cx = node_count t x in
          if cx > 0 then begin
            let sibling = x lxor 1 in
            let parent = x lsr 1 in
            let cs = node_count t sibling in
            let cp = node_count t parent in
            if cx + cs + cp < thr then begin
              set_count t x 0;
              set_count t sibling 0;
              if cp = 0 && d > 1 then by_depth.(d - 1) <- parent :: by_depth.(d - 1);
              set_count t parent (cp + cx + cs)
            end
          end)
        nodes
    done
  end;
  t.since_compress <- 0

let insert t v =
  if v < 0 || v >= 1 lsl t.bits then invalid_arg "Qdigest.insert: value outside universe";
  let l = leaf t v in
  set_count t l (node_count t l + 1);
  t.n <- t.n + 1;
  t.since_compress <- t.since_compress + 1;
  (* Amortised schedule: compressing every ~n/(2k) inserts (but never
     more often than every 64) keeps the footprint within a constant
     factor of 3k nodes without quadratic early-stream behaviour; the
     size trigger is the hard backstop. *)
  if size t > 6 * t.k || t.since_compress >= max 64 (threshold t / 2) then compress t

(* Nodes in "postorder" value order: increasing right endpoint, deeper
   (narrower) nodes first on ties.  Accumulating counts in this order
   underestimates no rank by more than bits * n / k. *)
let ordered_nodes t =
  let nodes =
    Hashtbl.fold
      (fun x c acc ->
        let lo, hi = node_range t x in
        (hi, hi - lo, x, c) :: acc)
      t.counts []
  in
  List.sort
    (fun (a1, a2, a3, a4) (b1, b2, b3, b4) ->
      if a1 <> b1 then Int.compare a1 b1
      else if a2 <> b2 then Int.compare a2 b2
      else if a3 <> b3 then Int.compare a3 b3
      else Int.compare a4 b4)
    nodes

let query_rank t r =
  if t.n = 0 then invalid_arg "Qdigest.query_rank: empty sketch";
  let r = if r < 1 then 1 else if r > t.n then t.n else r in
  let rec scan acc last = function
    | [] -> last
    | (hi, _, _, c) :: rest ->
      let acc = acc + c in
      if acc >= r then hi else scan acc hi rest
  in
  scan 0 0 (ordered_nodes t)

let rank_of t v =
  let rec scan acc = function
    | [] -> acc
    | (hi, _, _, c) :: rest -> if hi <= v then scan (acc + c) rest else acc
  in
  scan 0 (ordered_nodes t)

let sketch : (module Quantile_sketch.S with type t = t) =
  (module struct
    type nonrec t = t

    let insert = insert
    let count = count
    let memory_words = memory_words
    let query_rank = query_rank
    let rank_of = rank_of
    let error_bound = error_bound
  end)
