(** Greenwald–Khanna ε-approximate quantile summary (SIGMOD 2001) —
    the stream sketch the paper builds on (Theorem 1).

    Deterministic: for any rank [r], [query_rank] returns a value whose
    true rank lies within [±ε·n]. The minimum tuple is kept exact (never
    merged), as required for SS[0] of Algorithm 4. Compression is the
    simplified successor-merge (no band construction); the ε guarantee is
    unchanged, only the constant-factor space differs. *)

type t

(** Fixed-ε sketch. Raises [Invalid_argument] unless ε ∈ (0, 1). *)
val create : epsilon:float -> t

(** Memory-capped sketch for fixed-budget experiments: ε starts at the
    finest value the budget allows and grows geometrically whenever the
    summary would exceed [words]; [error_bound] reports the current ε.
    Raises [Invalid_argument] for budgets too small to hold 8 tuples. *)
val create_capped : words:int -> t

val insert : t -> int -> unit

(** [insert_sorted_batch t b] inserts every element of [b], which MUST be
    sorted ascending, in one O(size + k) merge pass — equivalent (same ε
    guarantee, same count) to [Array.iter (insert t) b] but without the
    per-element O(size) shift. The amortization that makes batched
    concurrent ingest pay on the hand-off into the sketch. *)
val insert_sorted_batch : t -> int array -> unit

val count : t -> int

(** Number of live tuples. *)
val size : t -> int

(** Current ε (grows only in capped mode). *)
val epsilon : t -> float

val error_bound : t -> float
val memory_words : t -> int

(** [query_rank t r] — value whose rank is within ε·n of [r] (clamped to
    [1, n]). Raises [Invalid_argument] on an empty sketch. *)
val query_rank : t -> int -> int

(** Estimated rank of a value (midpoint of its bracketing tuple's rank
    interval); 0 for values below the minimum. *)
val rank_of : t -> int -> int

(** Exact stream minimum / maximum. Raise on an empty sketch. *)
val min_value : t -> int

val max_value : t -> int

(** Live tuples as [(value, rmin, rmax)], for tests. *)
val dump : t -> (int * int * int) list

(** Merge two fixed-ε summaries into a summary of the union of their
    streams (Agarwal et al., "Mergeable Summaries"): rank error of the
    result is at most ε_A·n_A + ε_B·n_B. The building block for
    sketching several ingest streams independently and combining at
    query time. Raises [Invalid_argument] on memory-capped sketches. *)
val merge : t -> t -> t

(** Full mutable state as a word array, for sketch checkpoints: a
    deserialized sketch is bit-identical to the serialized one, so
    replaying the same inserts yields the same summary either side of a
    crash. *)
val serialize : t -> int array

(** Inverse of {!serialize}. Raises [Invalid_argument] on a
    structurally invalid word array (bad lengths, unsorted tuples,
    negative fields, ε ∉ (0,1)). *)
val deserialize : int array -> t

(** This sketch as a {!Quantile_sketch.S} instance. *)
val sketch : (module Quantile_sketch.S with type t = t)
