(* RANDOM / MRL-style randomized sampling sketch.

   Wang et al. [SIGMOD'13] found MRL99 and its simplification RANDOM to
   be the strongest randomized competitors to Greenwald-Khanna; the paper
   cites them as the state of the art in pure streaming (Section 1.3).

   The structure keeps [buffers] buffers of [buffer_size] samples, each
   carrying an integer weight w (one sample represents w stream
   elements).  New elements fill a buffer at the current sampling weight
   (one uniformly chosen survivor per block of w arrivals).  When every
   slot is full, all buffers of minimal weight (at least the two lightest
   if the minimum is unique) are collapsed: their samples are merged in
   weighted sorted order and [buffer_size] evenly spaced weighted ranks
   (with one shared random offset) are kept, producing a buffer whose
   weight is the sum of the inputs.  This is the classic MRL COLLAPSE
   generalised to integer weights. *)

type buffer = { weight : int; data : int array (* sorted *) }

type t = {
  capacity : int; (* max full buffers *)
  buffer_size : int;
  rng : Hsq_util.Splitmix.t;
  mutable full : buffer list;
  (* fill state *)
  mutable fill_weight : int;
  mutable fill : int array;
  mutable fill_len : int;
  mutable block_seen : int; (* arrivals within the current sampling block *)
  mutable block_pick : int; (* current survivor of the block *)
  mutable n : int;
}

let create ?(seed = 0x5EED) ~buffers ~buffer_size () =
  if buffers < 2 then invalid_arg "Sampler.create: need at least 2 buffers";
  if buffer_size < 2 then invalid_arg "Sampler.create: buffer_size must be >= 2";
  {
    capacity = buffers;
    buffer_size;
    rng = Hsq_util.Splitmix.create seed;
    full = [];
    fill_weight = 1;
    fill = Array.make buffer_size 0;
    fill_len = 0;
    block_seen = 0;
    block_pick = 0;
    n = 0;
  }

let header_words = 10
let words_per_sample = 1

let create_capped ?seed ~words () =
  let buffers = 10 in
  let buffer_size = (words - header_words) / (words_per_sample * buffers) in
  if buffer_size < 2 then invalid_arg "Sampler.create_capped: budget too small";
  create ?seed ~buffers ~buffer_size ()

let count t = t.n

let memory_words t =
  header_words
  + (words_per_sample * t.buffer_size * (1 + List.length t.full))

(* Heuristic guarantee: a collapse tree over c buffers of size s gives
   expected rank error O((number of collapses) * max-weight / 2) ~ n/s.
   Reported as 1/s; the property tests check against a looser multiple. *)
let error_bound t = 1.0 /. float_of_int t.buffer_size

let total_weighted t =
  List.fold_left (fun acc b -> acc + (b.weight * Array.length b.data)) 0 t.full
  + (t.fill_weight * t.fill_len)

let min_weight t =
  List.fold_left (fun acc b -> min acc b.weight) max_int t.full

(* Merge the given buffers and keep [buffer_size] samples at evenly
   spaced weighted positions with a shared random offset. *)
let collapse t bufs =
  let weight = List.fold_left (fun acc b -> acc + b.weight) 0 bufs in
  let tagged =
    List.concat_map (fun b -> Array.to_list (Array.map (fun v -> (v, b.weight)) b.data)) bufs
  in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) tagged in
  let out = Array.make t.buffer_size 0 in
  let offset = Hsq_util.Splitmix.int t.rng weight in
  (* Positions offset, offset+weight, ... in the weighted merged list. *)
  let next_target = ref offset in
  let produced = ref 0 in
  let cum = ref 0 in
  List.iter
    (fun (v, w) ->
      cum := !cum + w;
      while !produced < t.buffer_size && !cum > !next_target do
        out.(!produced) <- v;
        incr produced;
        next_target := !next_target + weight
      done)
    sorted;
  (* Numerical slack: pad with the maximum if rounding left slots. *)
  (match sorted with
  | [] -> ()
  | _ ->
    let last = fst (List.nth sorted (List.length sorted - 1)) in
    while !produced < t.buffer_size do
      out.(!produced) <- last;
      incr produced
    done);
  { weight; data = out }

let flush_fill t =
  let data = Array.sub t.fill 0 t.fill_len in
  Array.sort Int.compare data;
  t.full <- { weight = t.fill_weight; data } :: t.full;
  t.fill_len <- 0;
  t.block_seen <- 0;
  if List.length t.full >= t.capacity then begin
    let w_min = min_weight t in
    let at_min, rest = List.partition (fun b -> b.weight = w_min) t.full in
    let victims, rest =
      match at_min with
      | [ only ] ->
        (* Unique minimum: take the next-lightest as the second victim. *)
        let sorted_rest = List.sort (fun a b -> Int.compare a.weight b.weight) rest in
        (match sorted_rest with
        | second :: others -> ([ only; second ], others)
        | [] -> ([ only ], []))
      | _ -> (at_min, rest)
    in
    match victims with
    | [] | [ _ ] -> () (* cannot happen with capacity >= 2 *)
    | _ -> t.full <- collapse t victims :: rest
  end;
  (* New fills enter at the current minimum weight so collapses keep
     finding equal-weight partners (MRL98 policy). *)
  t.fill_weight <- (if t.full = [] then 1 else min_weight t)

let insert t v =
  t.n <- t.n + 1;
  t.block_seen <- t.block_seen + 1;
  (* Reservoir-pick one survivor per block of [fill_weight] arrivals. *)
  if t.block_seen = 1 || Hsq_util.Splitmix.int t.rng t.block_seen = 0 then t.block_pick <- v;
  if t.block_seen >= t.fill_weight then begin
    t.fill.(t.fill_len) <- t.block_pick;
    t.fill_len <- t.fill_len + 1;
    t.block_seen <- 0;
    if t.fill_len = t.buffer_size then flush_fill t
  end

(* Weighted rank query across all buffers plus the fill buffer. *)
let samples t =
  let fill_part =
    List.init t.fill_len (fun i -> (t.fill.(i), t.fill_weight))
  in
  let partial_block = if t.block_seen > 0 then [ (t.block_pick, t.block_seen) ] else [] in
  let full_part =
    List.concat_map (fun b -> Array.to_list (Array.map (fun v -> (v, b.weight)) b.data)) t.full
  in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) (partial_block @ fill_part @ full_part)

let query_rank t r =
  if t.n = 0 then invalid_arg "Sampler.query_rank: empty sketch";
  let r = if r < 1 then 1 else if r > t.n then t.n else r in
  let represented = total_weighted t + t.block_seen in
  let target =
    max 1 (int_of_float (float_of_int r /. float_of_int t.n *. float_of_int represented))
  in
  let rec scan acc last = function
    | [] -> last
    | (v, w) :: rest ->
      let acc = acc + w in
      if acc >= target then v else scan acc v rest
  in
  match samples t with
  | [] -> invalid_arg "Sampler.query_rank: no samples"
  | (v0, _) :: _ as all -> scan 0 v0 all

let rank_of t v =
  if t.n = 0 then 0
  else begin
    let represented = total_weighted t + t.block_seen in
    let weighted =
      List.fold_left (fun acc (x, w) -> if x <= v then acc + w else acc) 0 (samples t)
    in
    if represented = 0 then 0
    else int_of_float (float_of_int weighted /. float_of_int represented *. float_of_int t.n)
  end

let sketch : (module Quantile_sketch.S with type t = t) =
  (module struct
    type nonrec t = t

    let insert = insert
    let count = count
    let memory_words = memory_words
    let query_rank = query_rank
    let rank_of = rank_of
    let error_bound = error_bound
  end)
