(** Crash-atomic file replacement with real durability.

    [commit ~tmp dest] is the one true rename-commit idiom: fsync the
    tmp file, rename it over [dest], fsync the parent directory. The
    directory fsync is what makes the rename itself survive a power
    cut — without it the directory entry can roll back to the old file
    even though the new data blocks reached disk.

    The power-cut simulator makes the missing-fsync failure mode
    testable: armed, every rename records the destination's prior
    contents and only a directory fsync marks it durable; {!power_cut}
    rolls every still-undurable rename back. *)

(** Fsync [tmp], rename it over [dest], fsync the parent directory. *)
val commit : tmp:string -> string -> unit

(** The legacy idiom: rename without any fsync. Exists so the
    regression tests can prove the simulator drops exactly these
    renames; production code must use {!commit}. *)
val rename_unsynced : tmp:string -> string -> unit

(** Fsync a file by path (no-op if it cannot be opened). *)
val fsync_file : string -> unit

(** Fsync a directory, marking renames under it durable to the
    simulator. Filesystems that refuse directory fsync are tolerated. *)
val fsync_dir : string -> unit

(** Arm/disarm the power-cut simulator ([false] clears pending state). *)
val set_crash_sim : bool -> unit

(** Roll back every rename not yet covered by a directory fsync:
    destinations regain their pre-rename contents (or are removed if
    they did not exist). *)
val power_cut : unit -> unit

(** Renames recorded but not yet made durable (0 when disarmed). *)
val pending_renames : unit -> int
