(** Per-device circuit breaker and retry-backoff schedule.

    The breaker bounds tail latency when a whole device misbehaves: the
    read path asks {!allow} before a physical probe, reports the outcome
    with {!success}/{!failure}, and while the breaker is [Open] probes
    are short-circuited with a [Device_error] instead of paying the full
    retry schedule each time.  Only {e unrecoverable} faults (retry
    schedule exhausted) count toward tripping; transient faults the
    retries absorb never do.

    All operations are safe under concurrent domains (the parallel probe
    pool calls them from every worker). *)

type state =
  | Closed  (** healthy: all probes admitted *)
  | Open  (** tripped: probes short-circuit until the cooldown elapses *)
  | Half_open  (** cooldown over: exactly one trial probe admitted *)

val state_to_string : state -> string

(** Gauge encoding used by the [hsq_breaker_state] metric:
    closed = 0, open = 1, half-open = 2. *)
val state_to_gauge : state -> float

type t

val default_failure_threshold : int
val default_cooldown_s : float

(** [create ()] builds a closed breaker.

    @param metrics registers the [hsq_breaker_state] gauge and the
      [hsq_breaker_transitions_total] counter in the given registry.
    @param now injectable clock (seconds); defaults to
      {!Hsq_obs.Metrics.now_s}.  Tests drive the state machine with a
      fake clock instead of sleeping.
    @param failure_threshold consecutive unrecoverable faults before
      tripping (default {!default_failure_threshold}).
    @param cooldown_s seconds spent [Open] before admitting a half-open
      trial probe (default {!default_cooldown_s}). *)
val create :
  ?metrics:Hsq_obs.Metrics.t ->
  ?now:(unit -> float) ->
  ?failure_threshold:int ->
  ?cooldown_s:float ->
  unit ->
  t

(** May this probe proceed?  [Closed]: yes.  [Open]: no, unless the
    cooldown has elapsed, in which case the breaker moves to [Half_open]
    and this caller holds the single trial ticket.  [Half_open]: only if
    no trial is already in flight. *)
val allow : t -> bool

(** Report a successful probe: resets the failure count; a half-open
    trial success closes the breaker. *)
val success : t -> unit

(** Report an unrecoverable probe failure (after retries): increments
    the consecutive-failure count and trips to [Open] at the threshold;
    a half-open trial failure reopens immediately. *)
val failure : t -> unit

val state : t -> state

(** Force the breaker back to [Closed] with a clean slate.  Used when
    the device's fault injector is replaced — the simulated hardware
    changed, so the evidence against it no longer applies. *)
val reset : t -> unit

(** Decorrelated-jitter exponential backoff: each delay is uniform in
    [\[base, min (cap, 3 * previous)\]], seeded so schedules are
    deterministic in tests. *)
module Backoff : sig
  type policy = {
    base_ms : float;
    cap_ms : float;
    max_attempts : int;  (** total attempts, including the first *)
  }

  (** 3 attempts, 1 ms base, 50 ms cap — the device read path's
      schedule. *)
  val default : policy

  (** [delays p ~seed] is the per-retry wait schedule in milliseconds:
      [delays.(i)] precedes attempt [i + 2] (the first attempt never
      waits), so the array has [max_attempts - 1] entries — empty for
      the never-retry policy [max_attempts = 1].  Equal seeds yield
      equal schedules.  Raises [Invalid_argument] on a malformed
      policy. *)
  val delays : policy -> seed:int -> float array
end
