(* Append-only write-ahead log for the ingest path.

   The paper's stream side R — the open time step's batch and the GK
   sketch — is volatile; this log makes it durable.  Every [observe] is
   appended as a checksummed, sequence-numbered, length-prefixed record
   before it touches in-memory state, and a time-step rollover appends
   an [End_step] commit marker.  Recovery (Engine.open_or_recover)
   replays the log suffix past the last sketch checkpoint.

   Durability model.  Appends accumulate in an in-process buffer and
   reach the file only on a physical flush ("sync"); a crash loses the
   buffered tail, exactly like a power cut loses data that was written
   but never fsynced.  The sync policy picks the trade:
     - [Always]   every append flushes — zero acknowledged-record loss;
     - [Group n]  flush every n appends (group commit) — loss bounded
                  by the group window;
     - [Never]    flush only at commit markers and rotation — loss
                  bounded by one open time step.
   Commit markers are always followed by an explicit {!sync} from the
   engine, whatever the policy: a commit is a flush.

   On-file format (8-byte big-endian words, like the block device):
     header   := magic | start_seq | checksum(magic, start_seq)
     record   := len | seq | kind | payload... | checksum
   where [len] counts the words after it (seq + kind + payload +
   checksum), [seq] increments by exactly 1 from [start_seq], and the
   checksum is the same SplitMix-style mix the device uses, over every
   preceding word of the record.  Kinds: 1 = Observe (payload: value),
   2 = End_step (payload: step number, element count), 3 = End_step_cuts
   (payload: step number, element count, lane-cut count, per-lane acked
   sequence cuts — the multi-lane commit marker written by engines with
   several ingest domains, see engine.ml).

   The reader floors a torn tail: it stops at the first short, corrupt,
   mis-lengthed, or out-of-sequence record and reports why, and
   {!open_existing} physically truncates the tear (temp file + rename,
   the same atomic idiom as Persist) so later appends never follow
   garbage.  A structured fault injector mirrors the block device's
   ([Fail] / [Torn k] / [Corrupt i]) so the crash-recovery fuzz harness
   can kill the writer at any append. *)

module Metrics = Hsq_obs.Metrics
module Trace = Hsq_obs.Trace

type sync_policy = Always | Group of int | Never

type record =
  | Observe of int
  | End_step of { step : int; count : int }
  | End_step_cuts of { step : int; count : int; cuts : int array }

type tail = Clean | Torn of string

type t = {
  path : string;
  stats : Io_stats.t;
  sync_policy : sync_policy;
  mutable channel : Out_channel.t;
  mutable start_seq : int;
  mutable next_seq : int;
  pending : Buffer.t; (* appended but not yet flushed to the file *)
  mutable pending_count : int;
  mutable fault : (int -> Block_device.fault_action option) option;
  mutable tear_at : int option; (* byte offset of un-healed torn garbage *)
  append_hist : Metrics.Histogram.t;
  sync_hist : Metrics.Histogram.t;
}

(* Latency histograms live in the same registry as the WAL counters.
   Appends are buffer writes (tens of ns) issued once per observed
   element, so their latency is sampled 1-in-32 by sequence number;
   syncs are physical flushes (µs and up, rare) and always timed. *)
let append_sample_mask = 31

let wal_metrics stats =
  let r = Io_stats.registry stats in
  ( Metrics.histogram ~help:"WAL append latency (sampled 1-in-32)" r "hsq_wal_append_seconds",
    Metrics.histogram ~help:"WAL physical flush latency" r "hsq_wal_sync_seconds" )

let magic = 0x48535157414C3031 (* "HSQWAL01" *)
let max_record_words = 64

(* Same mixer as the device's block checksums. *)
let mix h v =
  let h = (h lxor v) * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let checksum_words ws = Array.fold_left mix 0x106689D45497FDB5 ws

let path t = t.path
let start_seq t = t.start_seq
let next_seq t = t.next_seq
let last_seq t = t.next_seq - 1
let pending_records t = t.pending_count
let set_injector t fault = t.fault <- fault

let sync_policy_to_string = function
  | Always -> "always"
  | Group n -> Printf.sprintf "group:%d" n
  | Never -> "never"

(* --- encoding ---------------------------------------------------------- *)

let words_to_bytes ws =
  let b = Bytes.create (8 * Array.length ws) in
  Array.iteri (fun i w -> Bytes.set_int64_be b (8 * i) (Int64.of_int w)) ws;
  b

let header_bytes ~start_seq =
  words_to_bytes [| magic; start_seq; checksum_words [| magic; start_seq |] |]

let encode ~seq record =
  let body =
    match record with
    | Observe v -> [| seq; 1; v |]
    | End_step { step; count } -> [| seq; 2; step; count |]
    | End_step_cuts { step; count; cuts } ->
      (* Multi-lane commit marker (see engine.ml): the per-lane acked
         sequence cuts pin exactly which records of the other lanes'
         logs belong to the step being committed. *)
      if Array.length cuts > max_record_words - 7 then
        invalid_arg "Wal.append: End_step_cuts lane vector too long";
      Array.append [| seq; 3; step; count; Array.length cuts |] cuts
  in
  let len = Array.length body + 1 in
  let prefix = Array.append [| len |] body in
  Array.append prefix [| checksum_words prefix |]

(* --- writing ----------------------------------------------------------- *)

(* A torn append leaves physical garbage at the end of the file.  If the
   writer survives (transient fault, no crash), later flushed records
   must not land *after* that garbage: the recovery reader floors the
   log at the first bad record, so everything past the tear — including
   acknowledged, synced appends — would be silently lost.  The tear is
   therefore healed lazily: the next physical flush first truncates the
   file back to the tear position.  Healing lazily (rather than in the
   torn append itself) preserves crash fidelity — a crash *before* the
   next flush still leaves the torn tail on disk for recovery to floor,
   exactly like a real power cut mid-write. *)
let heal_tear t =
  match t.tear_at with
  | None -> ()
  | Some pos ->
    (* The channel is in append mode, so after the truncation writes
       continue at the new end of file — no seek needed. *)
    Unix.ftruncate (Unix.descr_of_out_channel t.channel) pos;
    t.tear_at <- None

let flush_pending t =
  if t.pending_count > 0 || Buffer.length t.pending > 0 then begin
    heal_tear t;
    let flush () =
      let t0 = Metrics.now_s () in
      Out_channel.output_string t.channel (Buffer.contents t.pending);
      Out_channel.flush t.channel;
      Metrics.Histogram.observe t.sync_hist (Metrics.now_s () -. t0);
      Buffer.clear t.pending;
      t.pending_count <- 0;
      Io_stats.note_wal_sync t.stats
    in
    match Io_stats.tracer t.stats with
    | Some tr -> Trace.with_span tr "wal.sync" (fun _ -> flush ())
    | None -> flush ()
  end

let sync t = flush_pending t

(* Transactional append: either the record is fully accepted (buffered
   or flushed, sequence advanced) or the in-memory state is exactly as
   before the call — [next_seq] rolled back, the record's bytes removed
   from the pending buffer.  Without the rollback, a failed policy
   flush would leave the sequence number advanced past the last durable
   record: a caller that retried the observe would then double-append
   it under a new sequence number, and a caller that gave up would
   leave a permanent gap for recovery's sequence check to floor at.
   A flush that *completed* before the failure is never undone — those
   bytes are durable, so only still-buffered bytes are rolled back. *)
let append_impl t record =
  let saved_seq = t.next_seq in
  let saved_len = Buffer.length t.pending in
  let saved_count = t.pending_count in
  try
    let seq = t.next_seq in
    let words = encode ~seq record in
    (match t.fault with
    | Some f -> (
      match f seq with
      | Some Block_device.Fail ->
        raise (Block_device.Device_error (Printf.sprintf "injected WAL append fault at seq %d" seq))
      | Some (Block_device.Torn k) ->
        (* A crash mid-append: whatever was buffered reaches the file,
           then only the first [k] words of this record do.  The tear's
           byte offset is remembered so a surviving writer's next flush
           can truncate the garbage away (see [heal_tear]). *)
        let k = max 0 (min (Array.length words - 1) k) in
        flush_pending t;
        let tear_pos = Int64.to_int (Out_channel.pos t.channel) in
        Out_channel.output_bytes t.channel (words_to_bytes (Array.sub words 0 k));
        Out_channel.flush t.channel;
        if t.tear_at = None then t.tear_at <- Some tear_pos;
        raise
          (Block_device.Device_error
             (Printf.sprintf "torn WAL append at seq %d (%d of %d words)" seq k
                (Array.length words)))
      | Some (Block_device.Corrupt i) ->
        (* Latent corruption: the record lands whole but one word has a
           flipped bit — the reader must reject it, never serve it. *)
        let i = i mod Array.length words in
        words.(i) <- words.(i) lxor 1
      | None -> ())
    | None -> ());
    Buffer.add_bytes t.pending (words_to_bytes words);
    t.pending_count <- t.pending_count + 1;
    t.next_seq <- seq + 1;
    Io_stats.note_wal_append t.stats;
    (match t.sync_policy with
    | Always -> flush_pending t
    | Group n -> if t.pending_count >= max 1 n then flush_pending t
    | Never -> ());
    seq
  with e ->
    t.next_seq <- saved_seq;
    if Buffer.length t.pending > saved_len then begin
      (* The record is still buffered (the failure struck before or
         during a flush that did not complete): drop it. *)
      Buffer.truncate t.pending saved_len;
      t.pending_count <- saved_count
    end;
    raise e

let append t record =
  let timed () =
    if t.next_seq land append_sample_mask = 0 then begin
      let t0 = Metrics.now_s () in
      let seq = append_impl t record in
      Metrics.Histogram.observe t.append_hist (Metrics.now_s () -. t0);
      seq
    end
    else append_impl t record
  in
  match Io_stats.tracer t.stats with
  | Some tr -> Trace.with_span tr "wal.append" (fun _ -> timed ())
  | None -> timed ()

let create ?(sync = Always) ~stats ~path ~start_seq () =
  (* Append mode, like [rotate] and [open_existing]: [heal_tear]'s
     truncation relies on writes landing at the (possibly moved) end of
     file, not at the channel's remembered offset. *)
  let channel =
    Out_channel.open_gen [ Open_binary; Open_creat; Open_trunc; Open_append; Open_wronly ] 0o644
      path
  in
  Out_channel.output_bytes channel (header_bytes ~start_seq);
  Out_channel.flush channel;
  let append_hist, sync_hist = wal_metrics stats in
  {
    path;
    stats;
    sync_policy = sync;
    channel;
    start_seq;
    next_seq = start_seq;
    pending = Buffer.create 4096;
    pending_count = 0;
    fault = None;
    tear_at = None;
    append_hist;
    sync_hist;
  }

(* Atomic truncation: the records below [next_seq] are durable elsewhere
   (the warehouse commit that triggers rotation), so a fresh log whose
   header names the next sequence number replaces the old one by rename —
   a crash leaves either the full old log (replay deduplicates by step
   number) or the new empty one. *)
let rotate t =
  let tmp = t.path ^ ".tmp" in
  let oc = Out_channel.open_gen [ Open_binary; Open_creat; Open_trunc; Open_wronly ] 0o644 tmp in
  Out_channel.output_bytes oc (header_bytes ~start_seq:t.next_seq);
  Out_channel.flush oc;
  Out_channel.close oc;
  Out_channel.close t.channel;
  (* Rename + directory fsync: a power cut after rotation must not roll
     the directory entry back to the old (pre-truncation) log — its
     records are only durable in the warehouse commit now, and replaying
     them would race the sidecar the commit also renamed. *)
  Atomic_file.commit ~tmp t.path;
  t.channel <- Out_channel.open_gen [ Open_binary; Open_append; Open_wronly ] 0o644 t.path;
  t.start_seq <- t.next_seq;
  Buffer.clear t.pending;
  t.pending_count <- 0;
  (* The rename replaced the whole file, tear included. *)
  t.tear_at <- None

let close t =
  flush_pending t;
  Out_channel.close t.channel

(* Simulated power cut for the crash harness: unflushed records vanish
   (they never reached the "platter") and the handle is released, so a
   fuzz loop of thousands of crashes leaks no file descriptors. *)
let crash t =
  Buffer.clear t.pending;
  t.pending_count <- 0;
  Out_channel.close t.channel

(* --- reading ----------------------------------------------------------- *)

let read_word ic =
  let b = Bytes.create 8 in
  match really_input ic b 0 8 with
  | () -> Some (Int64.to_int (Bytes.get_int64_be b 0))
  | exception End_of_file -> None

(* Returns the records, the header's start_seq, the tail status, and the
   byte length of the valid prefix (header included). *)
let read_channel ic =
  let header =
    match (read_word ic, read_word ic, read_word ic) with
    | Some m, Some s, Some c when m = magic && c = checksum_words [| m; s |] -> Ok s
    | None, _, _ | _, None, _ | _, _, None -> Error "short header"
    | Some _, Some _, Some _ -> Error "bad header magic or checksum"
  in
  match header with
  | Error e -> ([], 1, Torn e, 0)
  | Ok start_seq ->
    let valid_bytes = ref 24 in
    let rec go expected acc =
      match read_word ic with
      | None -> (List.rev acc, start_seq, Clean, !valid_bytes)
      | Some len -> (
        if len < 3 || len > max_record_words then
          (List.rev acc, start_seq, Torn (Printf.sprintf "bad record length %d" len), !valid_bytes)
        else begin
          let words = Array.make (len + 1) len in
          let short = ref false in
          (try
             for i = 1 to len do
               match read_word ic with
               | Some w -> words.(i) <- w
               | None -> raise Exit
             done
           with Exit -> short := true);
          if !short then (List.rev acc, start_seq, Torn "truncated record", !valid_bytes)
          else if words.(len) <> checksum_words (Array.sub words 0 len) then
            (List.rev acc, start_seq, Torn "record checksum mismatch", !valid_bytes)
          else begin
            let seq = words.(1) in
            if seq <> expected then
              ( List.rev acc,
                start_seq,
                Torn (Printf.sprintf "sequence discontinuity (found %d, expected %d)" seq expected),
                !valid_bytes )
            else
              let decoded =
                match words.(2) with
                | 1 when len = 4 -> Some (Observe words.(3))
                | 2 when len = 5 -> Some (End_step { step = words.(3); count = words.(4) })
                | 3 when len >= 6 && words.(5) >= 0 && len = 6 + words.(5) ->
                  Some
                    (End_step_cuts
                       { step = words.(3); count = words.(4); cuts = Array.sub words 6 words.(5) })
                | _ -> None
              in
              match decoded with
              | None ->
                ( List.rev acc,
                  start_seq,
                  Torn (Printf.sprintf "unknown record kind %d" words.(2)),
                  !valid_bytes )
              | Some r ->
                valid_bytes := !valid_bytes + (8 * (len + 1));
                go (expected + 1) ((seq, r) :: acc)
          end
        end)
    in
    go start_seq []

let read_file ~path =
  if not (Sys.file_exists path) then ([], 1, Torn "no such file", 0)
  else begin
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
  end

let read_path ~path =
  let records, start_seq, tail, _ = read_file ~path in
  (records, start_seq, tail)

(* Reopen an existing log for appending.  A torn tail is physically
   truncated away first — the valid prefix is rewritten to a temp file
   and renamed into place — so the tear can never shadow later appends. *)
let open_existing ?(sync = Always) ~stats ~path () =
  let records, start_seq, tail, valid_bytes = read_file ~path in
  (match tail with
  | Clean -> ()
  | Torn _ ->
    let prefix =
      if valid_bytes = 0 then Bytes.to_string (header_bytes ~start_seq)
      else begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic valid_bytes)
      end
    in
    let tmp = path ^ ".tmp" in
    let oc = Out_channel.open_gen [ Open_binary; Open_creat; Open_trunc; Open_wronly ] 0o644 tmp in
    Out_channel.output_string oc prefix;
    Out_channel.flush oc;
    Out_channel.close oc;
    (* Same durability rule as [rotate]: the truncation commit is only
       real once the parent directory is fsynced. *)
    Atomic_file.commit ~tmp path);
  let channel = Out_channel.open_gen [ Open_binary; Open_append; Open_wronly ] 0o644 path in
  let append_hist, sync_hist = wal_metrics stats in
  let t =
    {
      path;
      stats;
      sync_policy = sync;
      channel;
      start_seq;
      next_seq = start_seq + List.length records;
      pending = Buffer.create 4096;
      pending_count = 0;
      fault = None;
      tear_at = None;
      append_hist;
      sync_hist;
    }
  in
  (t, records, tail)
