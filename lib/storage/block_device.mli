(** Simulated block device with exact I/O accounting and a
    fault-tolerance layer.

    Blocks hold [block_size] OCaml [int]s. Two backends are provided:
    an in-memory table (default for tests and benches — deterministic
    and fast) and a file-backed store that persists each block as
    [8 * (block_size + 1)] bytes of big-endian integers — the payload
    plus one trailing checksum word.

    Every read verifies the stored checksum, so bit rot and torn writes
    surface as {!Device_error} instead of silently wrong answers, and
    goes through a bounded-retry path ({!max_read_attempts} attempts on
    a deterministic backoff schedule) that absorbs transient faults;
    retries and checksum mismatches are counted in {!Io_stats}.

    Addresses are plain block indices handed out by a bump allocator;
    [free] only reclaims capacity accounting (the simulator never reuses
    addresses, which keeps sequential-I/O classification unambiguous and
    — on the file backend — leaves freed bytes physically intact, the
    invariant crash recovery relies on). *)

exception Device_error of string

type op = Read | Write
type t

(** [create_memory ~block_size ()] — in-memory backend. [metrics], on
    any constructor, is the registry the device's {!Io_stats} counters,
    read-latency histogram ([hsq_device_read_seconds]) and buffer-pool
    hit/miss counters ([hsq_buffer_pool_hits_total] / [..._misses_total])
    are registered in; omitted, the device gets a private registry
    (reachable via [Io_stats.registry (stats t)]). *)
val create_memory : ?metrics:Hsq_obs.Metrics.t -> block_size:int -> unit -> t

(** [create_file ~block_size ~path ()] — file backend; truncates [path]. *)
val create_file : ?metrics:Hsq_obs.Metrics.t -> block_size:int -> path:string -> unit -> t

(** [open_file ~block_size ~path ()] reopens an existing device file
    without truncating; the allocator resumes after the blocks already
    on disk. A trailing partial record (a write torn by a crash) is
    ignored — committed metadata never references blocks past the last
    checkpoint. Raises {!Device_error} if the file is missing. *)
val open_file : ?metrics:Hsq_obs.Metrics.t -> block_size:int -> path:string -> unit -> t

(** Close file handles (no-op for the memory backend). *)
val close : t -> unit

(** Backing file path, if any. *)
val path : t -> string option

val block_size : t -> int
val stats : t -> Io_stats.t

(** Total blocks ever allocated. *)
val allocated_blocks : t -> int

(** Allocated minus freed blocks — the live footprint. *)
val live_blocks : t -> int

(** [alloc t n] reserves [n] contiguous blocks, returning the first
    address. *)
val alloc : t -> int -> int

(** Mark a contiguous range reclaimable. Memory backend drops contents;
    reading a freed block raises {!Device_error}. File backend leaves
    the bytes intact (see the crash-recovery note above). *)
val free : t -> addr:int -> nblocks:int -> unit

(** [write_block t ~addr payload] writes exactly one block (payload plus
    its checksum word). Raises [Invalid_argument] if [payload] is not
    [block_size] long or [addr] is unallocated. *)
val write_block : t -> addr:int -> int array -> unit

(** [read_block t ~addr] returns the block after verifying its
    checksum, retrying injected faults and checksum mismatches up to
    {!max_read_attempts} times. [hint] forces the sequential/random
    classification of the read (used by run cursors, whose per-run
    readahead is sequential on a real disk even when several runs are
    consumed in an interleaved merge).

    Ownership: the returned array must be treated as immutable. When
    the buffer pool is enabled it is the pooled array itself (the read
    path is zero-copy — a hit returns the cached block, a miss adopts
    the freshly decoded one), so mutating it would corrupt subsequent
    reads of the same address.

    Domain-safety: reads may be issued from several domains at once
    (parallel query probes). The file backend's shared channel and the
    buffer pool are mutex-guarded internally; writes, [alloc] and
    [free] remain single-domain by contract (the engine never ingests
    and queries concurrently). *)
val read_block : ?hint:bool -> t -> addr:int -> int array

(** {2 Retry policy and circuit breaker}

    A read is attempted at most [max_read_attempts] times; the backoff
    (milliseconds) before attempt [i + 2] is [retry_backoff_ms.(i)] —
    a decorrelated-jitter schedule ({!Breaker.Backoff.delays}) drawn
    from a fixed seed, so it is deterministic across runs. The
    simulator never sleeps — the schedule documents the production
    policy and keeps it a single tunable surface. Transient faults
    failing at most [max_read_attempts - 1] consecutive attempts are
    absorbed.

    Every device carries a {!Breaker.t} wrapping the retry loop: after
    {!Breaker.default_failure_threshold} consecutive reads that exhaust
    the schedule the breaker opens and further reads short-circuit with
    {!Device_error} (no device I/O, no retry cost) until the cooldown
    admits a half-open trial. A successful read closes it again. Its
    [hsq_breaker_state] gauge and [hsq_breaker_transitions_total]
    counter live in the device's metrics registry. *)

val max_read_attempts : int
val retry_backoff_ms : float array

(** The device's circuit breaker — exposed so the engine can tell a
    device-wide outage (breaker open) from a single bad partition, and
    so tests can drive the state machine. *)
val breaker : t -> Breaker.t

val breaker_state : t -> Breaker.state

(** {2 Buffer pool}

    An optional LRU pool of whole blocks in front of the backend — an
    OS-page-cache stand-in. Pool hits cost no device I/O (they appear
    only in {!pool_stats}); writes are write-through; freeing blocks
    invalidates them. *)

val enable_pool : t -> capacity:int -> unit
val disable_pool : t -> unit

(** [(hits, misses)] since the pool was enabled, if one is active. *)
val pool_stats : t -> (int * int) option

(** {2 Simulated read latency}

    [set_read_latency t seconds] makes every physical (pool-missing)
    block read sleep for [seconds], outside any internal lock — a knob
    for modelling the paper's disk-access cost in benches, where the
    in-memory simulator is otherwise too fast for parallel probes to
    matter. Concurrent probing domains overlap their waits like
    requests queued on a real device. Default 0.0 (no effect). *)

val set_read_latency : t -> float -> unit
val read_latency : t -> float

(** {2 Fault injection}

    The structured injector is consulted on every operation attempt and
    decides what goes wrong, enabling transient-vs-persistent read
    faults, torn writes, and latent bit rot — the ingredients of the
    crash-recovery fuzz harness. *)

type fault_action =
  | Fail
      (** The operation raises {!Device_error} without touching the
          device. Returned for a read attempt, it is retried; an
          injector that fails only attempts [<= k < max_read_attempts]
          models a transient fault, one that always fails models a
          persistent fault. *)
  | Torn of int
      (** Write only: the first [k] payload words land, the checksum
          word is not updated, and {!Device_error} is raised — a crash
          in the middle of a block write. The tear is detected as a
          checksum mismatch on the next read of that block. *)
  | Corrupt of int
      (** Write only: completes normally but flips the low bit of the
          stored word at [index mod block_size] after the checksum was
          computed — latent bit rot, detected on read. *)

(** The injector receives the operation, the 1-based attempt number
    (always 1 for writes), and the block address. [None] means the
    attempt proceeds normally. *)
type injector = op -> attempt:int -> int -> fault_action option

(** Install (or clear) the fault injector. Also resets the circuit
    breaker to [Closed]: the simulated hardware changed, so accumulated
    evidence against it no longer applies. *)
val set_injector : t -> injector option -> unit

(** Legacy boolean hook: when the predicate returns [true] for an
    (operation, address) pair the operation fails on every attempt — a
    persistent fault the retry path cannot absorb. *)
val set_fault : t -> (op -> int -> bool) option -> unit
