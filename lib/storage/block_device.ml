(* A simulated block device.

   The paper evaluates against a real disk with 100 KB blocks and reports
   costs as numbers of block accesses.  Simulating the device keeps those
   counts exact and deterministic (see DESIGN.md, "Substitutions").  Two
   backends share the interface: an in-memory store used by tests and
   benches, and a file-backed store that persists blocks as fixed-size
   records of 8-byte big-endian integers.

   Fault tolerance (DESIGN.md, "Fault model & recovery"):
   - every block carries a checksum word, stored after the payload and
     verified on every read, so bit rot and torn writes surface as
     [Device_error] instead of wrong answers;
   - reads go through a bounded-retry path with a deterministic backoff
     schedule, absorbing transient faults; extra attempts are counted in
     {!Io_stats} ([retries], [checksum_failures]);
   - a structured fault injector can fail operations, tear writes (a
     partial write followed by a simulated crash), or silently corrupt a
     written word — the ingredients of the crash-recovery fuzz harness. *)

exception Device_error of string

type op = Read | Write

type fault_action =
  | Fail (* the operation raises Device_error without touching the device *)
  | Torn of int (* write: only the first k payload words land, the checksum
                   word is not updated, and Device_error is raised — a
                   crash in the middle of a block write *)
  | Corrupt of int (* write: completes normally, but the stored word at
                      [index mod block_size] has its low bit flipped after
                      the checksum was computed — latent bit rot *)

type injector = op -> attempt:int -> int -> fault_action option

type backend =
  | Memory of int array option array ref (* growable table of stored records *)
  | File of { channel : Out_channel.t; read_channel : In_channel.t; path : string }

(* Domain-safety: queries may probe partitions from several domains at
   once (Engine.accurate with query_domains > 1), so the two pieces of
   state every read touches are each behind a mutex — [io_lock] for the
   File backend's shared seek+read channel, [pool_lock] for the LRU
   buffer pool (Lru itself is not thread-safe).  Allocation, writes and
   frees stay single-domain by contract: the engine never ingests and
   queries concurrently, parallelism exists only inside one query call. *)
type t = {
  block_size : int;
  stats : Io_stats.t;
  mutable next_free : int;
  mutable freed_blocks : int; (* capacity-accounting for dropped partitions *)
  backend : backend;
  mutable fault : injector option;
  mutable pool : Lru.t option; (* optional buffer pool (OS page cache stand-in) *)
  pool_lock : Mutex.t;
  io_lock : Mutex.t;
  mutable read_latency : float; (* simulated seconds per physical block read *)
  breaker : Breaker.t; (* trips after consecutive unrecoverable read faults *)
  (* Metric handles resolved once at creation so the read paths never
     touch the registry's lock/table. *)
  read_hist : Hsq_obs.Metrics.Histogram.t;
  pool_hits : Hsq_obs.Metrics.Counter.t;
  pool_misses : Hsq_obs.Metrics.Counter.t;
}

(* Latency/pool metrics live in the same registry as the Io_stats
   counters (named hsq_buffer_pool_... to stay clear of the engine's
   summary-cache metrics). *)
let device_metrics stats =
  let r = Io_stats.registry stats in
  ( Hsq_obs.Metrics.histogram ~help:"Physical block read latency" r "hsq_device_read_seconds",
    Hsq_obs.Metrics.counter ~help:"Buffer pool hits" r "hsq_buffer_pool_hits_total",
    Hsq_obs.Metrics.counter ~help:"Buffer pool misses" r "hsq_buffer_pool_misses_total" )

(* The breaker registers its hsq_breaker_* metrics in the same registry
   as everything else the device exports. *)
let device_breaker stats = Breaker.create ~metrics:(Io_stats.registry stats) ()

let block_size t = t.block_size
let stats t = t.stats
let allocated_blocks t = t.next_free
let live_blocks t = t.next_free - t.freed_blocks

(* The stored record is the payload plus one trailing checksum word. *)
let record_words t = t.block_size + 1
let bytes_per_block t = 8 * record_words t

(* Retry policy: a read is attempted at most [max_read_attempts] times;
   the backoff (in milliseconds) before attempt i+2 is
   [retry_backoff_ms.(i)] — a decorrelated-jitter schedule drawn from a
   fixed Splitmix seed, so it is deterministic across runs while still
   exhibiting the jitter a production deployment would use.  The
   simulator does not sleep — the schedule documents what a real
   deployment would do and keeps the policy a single tunable surface. *)
let max_read_attempts = Breaker.Backoff.default.Breaker.Backoff.max_attempts
let retry_backoff_seed = 0x5eed_0f_7e57
let retry_backoff_ms = Breaker.Backoff.delays Breaker.Backoff.default ~seed:retry_backoff_seed

(* splitmix-style word mixer: cheap, and any single flipped bit changes
   the checksum with overwhelming probability. *)
let mix h v =
  let h = (h lxor v) * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let checksum ~addr payload = Array.fold_left mix (mix 0x106689D45497FDB5 addr) payload

let create_memory ?metrics ~block_size () =
  if block_size <= 0 then invalid_arg "Block_device.create_memory: block_size must be positive";
  let stats = Io_stats.create ?registry:metrics () in
  let read_hist, pool_hits, pool_misses = device_metrics stats in
  {
    block_size;
    stats;
    next_free = 0;
    freed_blocks = 0;
    backend = Memory (ref (Array.make 64 None));
    fault = None;
    pool = None;
    pool_lock = Mutex.create ();
    io_lock = Mutex.create ();
    read_latency = 0.0;
    breaker = device_breaker stats;
    read_hist;
    pool_hits;
    pool_misses;
  }

let create_file ?metrics ~block_size ~path () =
  if block_size <= 0 then invalid_arg "Block_device.create_file: block_size must be positive";
  let channel = Out_channel.open_gen [ Open_binary; Open_creat; Open_trunc; Open_wronly ] 0o644 path in
  let read_channel = In_channel.open_gen [ Open_binary; Open_rdonly ] 0o644 path in
  let stats = Io_stats.create ?registry:metrics () in
  let read_hist, pool_hits, pool_misses = device_metrics stats in
  {
    block_size;
    stats;
    next_free = 0;
    freed_blocks = 0;
    backend = File { channel; read_channel; path };
    fault = None;
    pool = None;
    pool_lock = Mutex.create ();
    io_lock = Mutex.create ();
    read_latency = 0.0;
    breaker = device_breaker stats;
    read_hist;
    pool_hits;
    pool_misses;
  }

(* Reopen an existing device file: allocation resumes after the blocks
   already on disk, so restored runs can be read back.  A trailing
   partial record (a write torn by a crash) is ignored: committed
   metadata never references blocks past the last checkpoint, and the
   bump allocator will write past the tear.  This is the storage half of
   crash recovery — see Persist.load for the metadata half. *)
let open_file ?metrics ~block_size ~path () =
  if block_size <= 0 then invalid_arg "Block_device.open_file: block_size must be positive";
  if not (Sys.file_exists path) then
    raise (Device_error (Printf.sprintf "no device file at %s" path));
  let channel = Out_channel.open_gen [ Open_binary; Open_wronly ] 0o644 path in
  let read_channel = In_channel.open_gen [ Open_binary; Open_rdonly ] 0o644 path in
  let size = Int64.to_int (In_channel.length read_channel) in
  let bytes_per_block = 8 * (block_size + 1) in
  let stats = Io_stats.create ?registry:metrics () in
  let read_hist, pool_hits, pool_misses = device_metrics stats in
  {
    block_size;
    stats;
    next_free = size / bytes_per_block;
    freed_blocks = 0;
    backend = File { channel; read_channel; path };
    fault = None;
    pool = None;
    pool_lock = Mutex.create ();
    io_lock = Mutex.create ();
    read_latency = 0.0;
    breaker = device_breaker stats;
    read_hist;
    pool_hits;
    pool_misses;
  }

let close t =
  match t.backend with
  | Memory _ -> ()
  | File { channel; read_channel; path = _ } ->
    Out_channel.close channel;
    In_channel.close read_channel

let path t = match t.backend with Memory _ -> None | File { path; _ } -> Some path

(* Replacing the injector resets the breaker: the simulated hardware
   just changed, so the accumulated evidence against it no longer
   applies.  (Tests heal a device by clearing its injector and expect
   the very next query to succeed un-degraded.) *)
let set_injector t injector =
  t.fault <- injector;
  Breaker.reset t.breaker

(* Legacy boolean hook: a predicate fault is persistent — it fails every
   attempt, so the retry path cannot absorb it. *)
let set_fault t fault =
  t.fault <-
    Option.map
      (fun f op ~attempt:_ addr -> if f op addr then Some Fail else None)
      fault;
  Breaker.reset t.breaker

let breaker t = t.breaker
let breaker_state t = Breaker.state t.breaker

let injected t op ~attempt addr =
  match t.fault with None -> None | Some f -> f op ~attempt addr

(* Buffer pool: hits are served from memory and cost no device I/O
   (only pool statistics); misses read through and populate the pool;
   writes are write-through.  [free] invalidates cached blocks.  The
   pool hands out its cached arrays directly — see the ownership note
   on [read_block] — so the read path performs zero copies. *)
let enable_pool t ~capacity = t.pool <- Some (Lru.create ~capacity)
let disable_pool t = t.pool <- None

let pool_stats t =
  match t.pool with
  | None -> None
  | Some pool ->
    Mutex.lock t.pool_lock;
    let s = (Lru.hits pool, Lru.misses pool) in
    Mutex.unlock t.pool_lock;
    Some s

(* Simulated per-read device latency (seconds), applied to every
   physical (pool-missing) block read, outside any lock — so concurrent
   probes overlap their waits exactly like requests queued on a real
   disk or network volume.  Zero (the default) keeps tests and the
   existing cost model untouched. *)
let set_read_latency t seconds = t.read_latency <- Float.max 0.0 seconds
let read_latency t = t.read_latency

let apply_read_latency t = if t.read_latency > 0.0 then Unix.sleepf t.read_latency

let alloc t nblocks =
  if nblocks < 0 then invalid_arg "Block_device.alloc: negative block count";
  let addr = t.next_free in
  t.next_free <- t.next_free + nblocks;
  (match t.backend with
  | Memory table ->
    let needed = t.next_free in
    if needed > Array.length !table then begin
      let capacity = max needed (2 * Array.length !table) in
      let bigger = Array.make capacity None in
      Array.blit !table 0 bigger 0 (Array.length !table);
      table := bigger
    end
  | File _ -> ());
  addr

(* Marks blocks as reclaimable.  The simulator does not recycle
   addresses (simpler and irrelevant for I/O counting); it only tracks
   live capacity so benches can report space usage.  On the file backend
   the bytes stay physically intact — the invariant the merge commit
   protocol relies on: partitions freed after an uncheckpointed merge
   are still readable when Persist.load rolls the merge back. *)
let free t ~addr ~nblocks =
  if addr < 0 || addr + nblocks > t.next_free then invalid_arg "Block_device.free: out of range";
  t.freed_blocks <- t.freed_blocks + nblocks;
  (match t.pool with
  | Some pool ->
    Mutex.lock t.pool_lock;
    for b = addr to addr + nblocks - 1 do Lru.remove pool b done;
    Mutex.unlock t.pool_lock
  | None -> ());
  match t.backend with
  | Memory table -> for b = addr to addr + nblocks - 1 do !table.(b) <- None done
  | File _ -> ()

(* Store one record (payload ++ checksum word).  [upto] limits how many
   payload words actually land (torn writes); the checksum word is only
   written when the full payload is. *)
let store_record t ~addr ~record ~upto =
  let words = if upto >= t.block_size then record_words t else upto in
  match t.backend with
  | Memory table ->
    let prev = !table.(addr) in
    let stored =
      if words = record_words t then Array.copy record
      else begin
        (* Torn write: new prefix over whatever was there before. *)
        let base = match prev with Some b -> Array.copy b | None -> Array.make (record_words t) 0 in
        Array.blit record 0 base 0 words;
        base
      end
    in
    !table.(addr) <- Some stored
  | File { channel; _ } ->
    let buf = Bytes.create (8 * words) in
    for i = 0 to words - 1 do
      Bytes.set_int64_be buf (8 * i) (Int64.of_int record.(i))
    done;
    Out_channel.seek channel (Int64.of_int (addr * bytes_per_block t));
    Out_channel.output_bytes channel buf;
    Out_channel.flush channel

let write_block t ~addr payload =
  if Array.length payload <> t.block_size then
    invalid_arg "Block_device.write_block: payload must be exactly one block";
  if addr < 0 || addr >= t.next_free then invalid_arg "Block_device.write_block: unallocated address";
  match injected t Write ~attempt:1 addr with
  | Some Fail -> raise (Device_error (Printf.sprintf "injected write fault at block %d" addr))
  | Some (Torn k) ->
    let k = max 0 (min (t.block_size - 1) k) in
    let record = Array.make (record_words t) 0 in
    Array.blit payload 0 record 0 t.block_size;
    record.(t.block_size) <- checksum ~addr payload;
    store_record t ~addr ~record ~upto:k;
    raise (Device_error (Printf.sprintf "torn write at block %d (%d of %d words)" addr k t.block_size))
  | (None | Some (Corrupt _)) as action ->
    Io_stats.note_write t.stats addr;
    (* The write path must copy: callers (Run.writer, External_sort)
       reuse their payload buffers after the call. *)
    (match t.pool with
    | Some pool ->
      Mutex.lock t.pool_lock;
      Lru.put pool addr (Array.copy payload);
      Mutex.unlock t.pool_lock
    | None -> ());
    let record = Array.make (record_words t) 0 in
    Array.blit payload 0 record 0 t.block_size;
    record.(t.block_size) <- checksum ~addr payload;
    (match action with
    | Some (Corrupt i) -> record.(i mod t.block_size) <- record.(i mod t.block_size) lxor 1
    | _ -> ());
    store_record t ~addr ~record ~upto:t.block_size

(* Fetch the raw record for [addr]; raises on unwritten/freed/short
   blocks (structural errors, never retried). *)
let fetch_record t ~addr =
  match t.backend with
  | Memory table -> (
    match !table.(addr) with
    | Some record -> record
    | None -> raise (Device_error (Printf.sprintf "read of unwritten or freed block %d" addr)))
  | File { read_channel; _ } ->
    let nbytes = bytes_per_block t in
    let buf = Bytes.create nbytes in
    (* The read channel's file position is shared state: the seek and
       the input must be atomic with respect to other probing domains. *)
    Mutex.lock t.io_lock;
    let read =
      try
        In_channel.seek read_channel (Int64.of_int (addr * nbytes));
        In_channel.really_input read_channel buf 0 nbytes
      with e ->
        Mutex.unlock t.io_lock;
        raise e
    in
    Mutex.unlock t.io_lock;
    (match read with
    | Some () -> ()
    | None -> raise (Device_error (Printf.sprintf "short read at block %d" addr)));
    Array.init (record_words t) (fun i -> Int64.to_int (Bytes.get_int64_be buf (8 * i)))

(* Bounded-retry read: injected faults and checksum mismatches are
   retried up to [max_read_attempts] times (each extra attempt is
   counted in Io_stats.retries); structural errors raise immediately.

   The circuit breaker wraps the whole retry loop: while it is open,
   reads short-circuit without touching the device (bounded tail
   latency when the device as a whole is down); exhausting the retry
   schedule reports an unrecoverable fault, a good read reports
   success.  Structural errors (unwritten/freed/short blocks) are the
   device answering correctly about its own state, so they count as
   breaker successes, not failures. *)
let read_block_uncached ?hint t ~addr =
  if not (Breaker.allow t.breaker) then
    raise
      (Device_error
         (Printf.sprintf "circuit breaker open: read of block %d short-circuited" addr));
  let unrecoverable e =
    Breaker.failure t.breaker;
    raise e
  in
  let rec attempt n =
    let retry e =
      if n < max_read_attempts then begin
        Io_stats.note_retry t.stats;
        attempt (n + 1)
      end
      else unrecoverable e
    in
    match injected t Read ~attempt:n addr with
    | Some _ ->
      retry (Device_error (Printf.sprintf "injected read fault at block %d (attempt %d)" addr n))
    | None ->
      Io_stats.note_read ?hint t.stats addr;
      let t0 = Hsq_obs.Metrics.now_s () in
      apply_read_latency t;
      let record =
        try fetch_record t ~addr
        with e ->
          (* Not evidence against device health, but a half-open trial
             ticket must still be released. *)
          Breaker.success t.breaker;
          raise e
      in
      Hsq_obs.Metrics.Histogram.observe t.read_hist (Hsq_obs.Metrics.now_s () -. t0);
      let payload = Array.sub record 0 t.block_size in
      if record.(t.block_size) <> checksum ~addr payload then begin
        Io_stats.note_checksum_failure t.stats;
        retry (Device_error (Printf.sprintf "checksum mismatch at block %d" addr))
      end
      else begin
        Breaker.success t.breaker;
        payload
      end
  in
  attempt 1

(* Pooled reads are zero-copy: a hit returns the cached array itself
   and a miss adopts the freshly decoded one (read_block_uncached
   already allocates a fresh payload per call).  Callers therefore must
   not mutate returned blocks — the read path (Run.block_for, cursors,
   read_range) treats them as immutable, and the mli states the
   contract.  The pool is probed and populated under [pool_lock];
   the device read itself happens outside it so concurrent misses
   overlap their (possibly latency-simulated) I/O. *)
let read_block ?hint t ~addr =
  if addr < 0 || addr >= t.next_free then invalid_arg "Block_device.read_block: unallocated address";
  match t.pool with
  | None -> read_block_uncached ?hint t ~addr
  | Some pool -> (
    Mutex.lock t.pool_lock;
    let cached = Lru.find pool addr in
    Mutex.unlock t.pool_lock;
    match cached with
    | Some block ->
      Hsq_obs.Metrics.Counter.inc t.pool_hits;
      block
    | None ->
      Hsq_obs.Metrics.Counter.inc t.pool_misses;
      let block = read_block_uncached ?hint t ~addr in
      Mutex.lock t.pool_lock;
      Lru.put pool addr block;
      Mutex.unlock t.pool_lock;
      block)
