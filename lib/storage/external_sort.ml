(* External sort of an incoming batch into a new sorted run
   (Algorithm 3, line 6: "Sort D and add as a new partition to level 0").

   When the batch fits in the memory budget it is sorted in place and
   written out (one sequential write per block).  Otherwise we run the
   classic external merge sort [Aggarwal & Vitter 1988; Graefe 2006]:
   sort memory-sized chunks into temporary runs, then multi-way merge
   with a fan-in bounded by the buffer budget, in as many passes as
   needed.  The paper notes (Lemma 6) that in practice a constant number
   of passes suffices. *)

type report = {
  passes : int; (* merge passes after run formation; 0 = in-memory *)
  temp_runs : int; (* temporary runs created and later freed *)
}

(* Merge runs in groups of [fan_in] until one remains, freeing inputs.
   The final merge (a single group covering everything) reports output
   elements through [observe] so summaries can be built for free. *)
let rec merge_pass dev ~fan_in ~observe ~passes ~temp_runs runs =
  match runs with
  | [] -> invalid_arg "External_sort: no runs"
  | [ single ] -> (single, { passes; temp_runs })
  | _ ->
    let rec group acc current count = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | r :: rest ->
        if count = fan_in then group (List.rev current :: acc) [ r ] 1 rest
        else group acc (r :: current) (count + 1) rest
    in
    let groups = group [] [] 0 runs in
    let final_pass = match groups with [ _ ] -> true | _ -> false in
    let merged =
      List.map
        (fun g ->
          match g with
          | [ only ] -> only
          | _ ->
            let m =
              if final_pass then Kway_merge.merge ~observe dev g else Kway_merge.merge dev g
            in
            List.iter Run.free g;
            m)
        groups
    in
    let new_temps = List.length (List.filter (fun g -> List.length g > 1) groups) in
    merge_pass dev ~fan_in ~observe ~passes:(passes + 1) ~temp_runs:(temp_runs + new_temps) merged

let sort ?(memory_elements = max_int) ?(observe = fun _ _ -> ()) dev batch =
  let n = Array.length batch in
  if n = 0 then invalid_arg "External_sort.sort: empty batch";
  let bsize = Block_device.block_size dev in
  let budget = max memory_elements (2 * bsize) in
  if n <= budget then begin
    let copy = Array.copy batch in
    Array.sort Int.compare copy;
    Array.iteri observe copy;
    (Run.of_sorted_array dev copy, { passes = 0; temp_runs = 0 })
  end
  else begin
    (* Phase 1: memory-sized sorted chunks become temporary runs. *)
    let chunks = ref [] in
    let pos = ref 0 in
    while !pos < n do
      let len = min budget (n - !pos) in
      let chunk = Array.sub batch !pos len in
      Array.sort Int.compare chunk;
      chunks := Run.of_sorted_array dev chunk :: !chunks;
      pos := !pos + len
    done;
    let runs = List.rev !chunks in
    (* Phase 2: one input block buffer per merge input, one for output. *)
    let fan_in = max 2 ((budget / bsize) - 1) in
    let sorted, report =
      merge_pass dev ~fan_in ~observe ~passes:0 ~temp_runs:(List.length runs) runs
    in
    (sorted, report)
  end
