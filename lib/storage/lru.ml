(* A fixed-capacity LRU map from block addresses to block payloads,
   built on a doubly-linked list threaded through a hash table.  All
   operations are O(1).  Used by the block device's optional buffer
   pool (an OS-page-cache stand-in).

   Not thread-safe: even [find] rewires the recency list.  The block
   device serializes all access under its pool lock; cached arrays are
   handed out without copying, so consumers must treat them as
   immutable (see Block_device.read_block). *)

type node = {
  key : int;
  mutable value : int array;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None; hits = 0; misses = 0 }

let size t = Hashtbl.length t.table
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

(* Peek without touching recency or statistics (tests/debugging). *)
let mem t key = Hashtbl.mem t.table key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key

let put t key value =
  (match Hashtbl.find_opt t.table key with
  | Some node ->
    node.value <- value;
    unlink t node;
    push_front t node
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key node;
    push_front t node)

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
