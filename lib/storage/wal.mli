(** Append-only write-ahead log for the durable ingest path.

    Records are checksummed, sequence-numbered, and length-prefixed;
    appends are acknowledged only after reaching the log according to
    the sync policy, and the reader floors a torn tail instead of ever
    returning a corrupt record.  See the implementation header for the
    on-file format and the durability model. *)

(** When appended records physically reach the file. [Always] flushes on
    every append (zero acknowledged loss on a crash); [Group n] flushes
    every [n] appends (group commit — loss bounded by the window);
    [Never] flushes only at commit markers and rotation. *)
type sync_policy = Always | Group of int | Never

type record =
  | Observe of int  (** one stream element *)
  | End_step of { step : int; count : int }
      (** time-step commit marker: the [step]-th archived step, holding
          [count] elements *)
  | End_step_cuts of { step : int; count : int; cuts : int array }
      (** multi-lane commit marker, written to lane 0's log by engines
          with several ingest domains: [cuts.(d-1)] is the last
          acknowledged sequence number of lane [d]'s log included in the
          archived step, so replay can reconstruct exactly which records
          of the other lanes' logs the step covered. At most
          [max_record_words - 7] lanes fit one record (the engine caps
          ingest domains far below that). *)

(** How reading the log ended: [Clean] at end of file, or [Torn why] at
    the first short, corrupt, mis-lengthed, or out-of-sequence record
    (everything after it is unreachable by construction). *)
type tail = Clean | Torn of string

type t

(** Create a fresh (truncated) log whose first record will carry
    [start_seq]. WAL counters are charged to [stats]. *)
val create :
  ?sync:sync_policy -> stats:Io_stats.t -> path:string -> start_seq:int -> unit -> t

(** Reopen an existing log for appending: returns the handle, the valid
    records (with their sequence numbers), and the tail status. A torn
    tail is physically truncated (temp file + rename) before the handle
    is returned. *)
val open_existing :
  ?sync:sync_policy ->
  stats:Io_stats.t ->
  path:string ->
  unit ->
  t * (int * record) list * tail

(** Read-only inspection of a log file: records, header start sequence,
    tail status. Never modifies the file; a missing file reads as empty
    with a [Torn] tail. *)
val read_path : path:string -> (int * record) list * int * tail

(** Append one record; returns its sequence number. Whether the record
    is physically flushed depends on the sync policy.

    Transactional: on any failure (an injected fault, or a policy flush
    that raises) the record is not acknowledged and the in-memory state
    — sequence number, pending buffer — is rolled back to exactly its
    pre-call value, so the caller may safely retry the same record (it
    will reuse the same sequence number) or give up without leaving a
    gap. A torn append additionally remembers the tear's byte offset;
    the next physical flush truncates the garbage away so acknowledged
    records can never land beyond a tear and be floored by recovery
    (a crash before that flush still leaves the torn tail on disk, as
    a real power cut would). Raises {!Block_device.Device_error} when
    the fault injector fires. *)
val append : t -> record -> int

(** Flush every buffered record to the file (one group commit). *)
val sync : t -> unit

(** Atomically truncate the log: a fresh file whose header starts at
    the current [next_seq] replaces the old one by rename. Call only
    after the records below [next_seq] are durable elsewhere (the
    warehouse commit). *)
val rotate : t -> unit

(** Flush and close. Not called on a crash, by definition. *)
val close : t -> unit

(** Simulate a power cut (test helper): discard every unflushed record
    and release the file handle without writing them. The file is left
    holding exactly what the sync policy had made durable. *)
val crash : t -> unit

val path : t -> string

(** First sequence number of the current log file. *)
val start_seq : t -> int

(** Sequence number the next append will carry. *)
val next_seq : t -> int

(** [next_seq - 1]: the last acknowledged sequence number. *)
val last_seq : t -> int

(** Appended records not yet physically flushed. *)
val pending_records : t -> int

(** Structured fault injection on appends, mirroring the block device's
    actions: [Fail] raises without writing, [Torn k] lands only the
    first [k] words and raises (a crash mid-append), [Corrupt i] lands
    the whole record with one bit flipped (latent corruption the reader
    must reject). The argument is the sequence number being appended. *)
val set_injector : t -> (int -> Block_device.fault_action option) option -> unit

val sync_policy_to_string : sync_policy -> string
