(* Per-device I/O accounting.  The paper's cost model counts disk block
   accesses and distinguishes the cheap sequential I/Os used by loading
   and merging from the expensive random I/Os used by queries
   (Section 2.4).  A read is classified as sequential when it targets the
   block immediately after the previously read one.

   Fault-tolerance accounting rides along: [retries] counts extra read
   attempts made by the device's bounded-retry path and
   [checksum_failures] counts blocks whose embedded checksum did not
   match on read.  Both stay zero on a healthy device, so the paper's
   block-access counts are unchanged.

   Durable-ingest accounting (the WAL half of the fault model):
   [wal_appends] counts records appended to the write-ahead log,
   [wal_syncs] counts physical flushes of the log, [wal_replayed] counts
   records re-applied during recovery, and [checkpoints_written] counts
   sketch checkpoints persisted.  All four stay zero when durability is
   off, so block-access counts are again unperturbed.

   Since the observability PR this module is registry-backed: each of
   the ten counters lives in an [Hsq_obs.Metrics] registry under its
   Prometheus name (hsq_io_... / hsq_wal_...), so `hsq metrics` and the bench
   smoke rows export them without a second accounting path.  The record
   interface, lock discipline, and exactness guarantees are unchanged.
   The stats object doubles as the observability hub for everything that
   already reaches it (WAL, level index, device, engine): it carries the
   registry and an optional [Trace.t] the instrumented call sites pick
   up. *)

module Metrics = Hsq_obs.Metrics
module Trace = Hsq_obs.Trace

type counters = {
  reads : int;
  seq_reads : int;
  rand_reads : int;
  writes : int;
  retries : int;
  checksum_failures : int;
  wal_appends : int;
  wal_syncs : int;
  wal_replayed : int;
  checkpoints_written : int;
}

(* Counters are guarded by a per-record mutex so several domains probing
   partitions in parallel (Engine.accurate with query_domains > 1) can
   account their reads on the shared device without tearing, and —
   crucially for [snapshot] — so the ten values are mutually consistent:
   every [note_*] mutation and every [snapshot] read runs under the same
   lock, so a snapshot can never observe a half-applied note (e.g.
   [reads] bumped but its seq/rand classification not yet).  The lock is
   uncontended in single-domain use, so the cost is a few ns per note.
   Sequential/random classification still keys off the single shared
   [last_read_addr], so under concurrent readers the seq/rand split
   depends on interleaving order — totals are exact either way.

   The individual cells are registry counters (atomics underneath); the
   registry exporters read them without this lock, so an export sees
   each counter atomically but not necessarily a mutually consistent
   set — that stronger guarantee is what [snapshot] is for. *)
type t = {
  reads : Metrics.Counter.t;
  seq_reads : Metrics.Counter.t;
  rand_reads : Metrics.Counter.t;
  writes : Metrics.Counter.t;
  retries : Metrics.Counter.t;
  checksum_failures : Metrics.Counter.t;
  wal_appends : Metrics.Counter.t;
  wal_syncs : Metrics.Counter.t;
  wal_replayed : Metrics.Counter.t;
  checkpoints_written : Metrics.Counter.t;
  mutable last_read_addr : int;
  lock : Mutex.t;
  registry : Metrics.t;
  mutable trace : Trace.t option;
}

(* Two devices sharing one registry share these counters (registration
   is idempotent by name) — aggregate accounting, which is what the
   single-device CLI wants.  Tests that need isolated counts create
   stats with the default fresh registry. *)
let create ?registry () =
  let registry = match registry with Some r -> r | None -> Metrics.create () in
  let c name help = Metrics.counter ~help registry name in
  {
    reads = c "hsq_io_reads_total" "Total block reads";
    seq_reads = c "hsq_io_seq_reads_total" "Reads at previous address + 1";
    rand_reads = c "hsq_io_rand_reads_total" "Non-sequential reads";
    writes = c "hsq_io_writes_total" "Total block writes";
    retries = c "hsq_io_retries_total" "Extra read attempts by the retry path";
    checksum_failures = c "hsq_io_checksum_failures_total" "Blocks whose checksum mismatched";
    wal_appends = c "hsq_wal_appends_total" "Records appended to the write-ahead log";
    wal_syncs = c "hsq_wal_syncs_total" "Physical flushes of the write-ahead log";
    wal_replayed = c "hsq_wal_replayed_total" "WAL records re-applied during recovery";
    checkpoints_written = c "hsq_io_checkpoints_total" "Sketch checkpoints persisted";
    last_read_addr = min_int;
    lock = Mutex.create ();
    registry;
    trace = None;
  }

let registry t = t.registry
let tracer t = t.trace
let set_tracer t tr = t.trace <- tr

(* Release the mutex even if [f] raises — a leaked lock here would
   deadlock every subsequent stats call from any domain. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t =
  locked t (fun () ->
      Metrics.Counter.set t.reads 0;
      Metrics.Counter.set t.seq_reads 0;
      Metrics.Counter.set t.rand_reads 0;
      Metrics.Counter.set t.writes 0;
      Metrics.Counter.set t.retries 0;
      Metrics.Counter.set t.checksum_failures 0;
      Metrics.Counter.set t.wal_appends 0;
      Metrics.Counter.set t.wal_syncs 0;
      Metrics.Counter.set t.wal_replayed 0;
      Metrics.Counter.set t.checkpoints_written 0;
      t.last_read_addr <- min_int)

(* [hint] overrides the adjacency heuristic: a k-way merge interleaves
   reads of several runs, but on a real disk each run is consumed through
   a sequential readahead buffer, so those reads are sequential. *)
let note_read ?hint t addr =
  locked t (fun () ->
      Metrics.Counter.inc t.reads;
      let sequential =
        match hint with
        | Some s -> s
        | None -> addr = t.last_read_addr + 1
      in
      if sequential then Metrics.Counter.inc t.seq_reads
      else Metrics.Counter.inc t.rand_reads;
      t.last_read_addr <- addr)

let note_write t _addr = locked t (fun () -> Metrics.Counter.inc t.writes)
let note_retry t = locked t (fun () -> Metrics.Counter.inc t.retries)
let note_checksum_failure t = locked t (fun () -> Metrics.Counter.inc t.checksum_failures)
let note_wal_append t = locked t (fun () -> Metrics.Counter.inc t.wal_appends)
let note_wal_sync t = locked t (fun () -> Metrics.Counter.inc t.wal_syncs)
let note_wal_replayed t = locked t (fun () -> Metrics.Counter.inc t.wal_replayed)
let note_checkpoint t = locked t (fun () -> Metrics.Counter.inc t.checkpoints_written)

let snapshot t : counters =
  locked t (fun () ->
      {
        reads = Metrics.Counter.value t.reads;
        seq_reads = Metrics.Counter.value t.seq_reads;
        rand_reads = Metrics.Counter.value t.rand_reads;
        writes = Metrics.Counter.value t.writes;
        retries = Metrics.Counter.value t.retries;
        checksum_failures = Metrics.Counter.value t.checksum_failures;
        wal_appends = Metrics.Counter.value t.wal_appends;
        wal_syncs = Metrics.Counter.value t.wal_syncs;
        wal_replayed = Metrics.Counter.value t.wal_replayed;
        checkpoints_written = Metrics.Counter.value t.checkpoints_written;
      })

let zero : counters =
  {
    reads = 0;
    seq_reads = 0;
    rand_reads = 0;
    writes = 0;
    retries = 0;
    checksum_failures = 0;
    wal_appends = 0;
    wal_syncs = 0;
    wal_replayed = 0;
    checkpoints_written = 0;
  }

let diff (after : counters) (before : counters) : counters =
  {
    reads = after.reads - before.reads;
    seq_reads = after.seq_reads - before.seq_reads;
    rand_reads = after.rand_reads - before.rand_reads;
    writes = after.writes - before.writes;
    retries = after.retries - before.retries;
    checksum_failures = after.checksum_failures - before.checksum_failures;
    wal_appends = after.wal_appends - before.wal_appends;
    wal_syncs = after.wal_syncs - before.wal_syncs;
    wal_replayed = after.wal_replayed - before.wal_replayed;
    checkpoints_written = after.checkpoints_written - before.checkpoints_written;
  }

let add (a : counters) (b : counters) : counters =
  {
    reads = a.reads + b.reads;
    seq_reads = a.seq_reads + b.seq_reads;
    rand_reads = a.rand_reads + b.rand_reads;
    writes = a.writes + b.writes;
    retries = a.retries + b.retries;
    checksum_failures = a.checksum_failures + b.checksum_failures;
    wal_appends = a.wal_appends + b.wal_appends;
    wal_syncs = a.wal_syncs + b.wal_syncs;
    wal_replayed = a.wal_replayed + b.wal_replayed;
    checkpoints_written = a.checkpoints_written + b.checkpoints_written;
  }

let total (c : counters) = c.reads + c.writes

let measure t f =
  let before = snapshot t in
  let result = f () in
  (result, diff (snapshot t) before)

let pp ppf (c : counters) =
  Format.fprintf ppf "reads=%d (seq=%d rand=%d) writes=%d" c.reads c.seq_reads c.rand_reads c.writes;
  if c.retries > 0 || c.checksum_failures > 0 then
    Format.fprintf ppf " retries=%d checksum_failures=%d" c.retries c.checksum_failures;
  if c.wal_appends > 0 || c.wal_syncs > 0 || c.wal_replayed > 0 || c.checkpoints_written > 0 then
    Format.fprintf ppf " wal_appends=%d wal_syncs=%d wal_replayed=%d checkpoints=%d" c.wal_appends
      c.wal_syncs c.wal_replayed c.checkpoints_written
