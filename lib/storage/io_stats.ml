(* Per-device I/O accounting.  The paper's cost model counts disk block
   accesses and distinguishes the cheap sequential I/Os used by loading
   and merging from the expensive random I/Os used by queries
   (Section 2.4).  A read is classified as sequential when it targets the
   block immediately after the previously read one.

   Fault-tolerance accounting rides along: [retries] counts extra read
   attempts made by the device's bounded-retry path and
   [checksum_failures] counts blocks whose embedded checksum did not
   match on read.  Both stay zero on a healthy device, so the paper's
   block-access counts are unchanged.

   Durable-ingest accounting (the WAL half of the fault model):
   [wal_appends] counts records appended to the write-ahead log,
   [wal_syncs] counts physical flushes of the log, [wal_replayed] counts
   records re-applied during recovery, and [checkpoints_written] counts
   sketch checkpoints persisted.  All four stay zero when durability is
   off, so block-access counts are again unperturbed. *)

type counters = {
  reads : int;
  seq_reads : int;
  rand_reads : int;
  writes : int;
  retries : int;
  checksum_failures : int;
  wal_appends : int;
  wal_syncs : int;
  wal_replayed : int;
  checkpoints_written : int;
}

(* Counters are guarded by a per-record mutex so several domains probing
   partitions in parallel (Engine.accurate with query_domains > 1) can
   account their reads on the shared device without tearing.  The lock
   is uncontended in single-domain use, so the cost is a few ns per
   note.  Sequential/random classification still keys off the single
   shared [last_read_addr], so under concurrent readers the seq/rand
   split depends on interleaving order — totals are exact either way. *)
type t = {
  mutable reads : int;
  mutable seq_reads : int;
  mutable rand_reads : int;
  mutable writes : int;
  mutable retries : int;
  mutable checksum_failures : int;
  mutable wal_appends : int;
  mutable wal_syncs : int;
  mutable wal_replayed : int;
  mutable checkpoints_written : int;
  mutable last_read_addr : int;
  lock : Mutex.t;
}

let create () =
  {
    reads = 0;
    seq_reads = 0;
    rand_reads = 0;
    writes = 0;
    retries = 0;
    checksum_failures = 0;
    wal_appends = 0;
    wal_syncs = 0;
    wal_replayed = 0;
    checkpoints_written = 0;
    last_read_addr = min_int;
    lock = Mutex.create ();
  }

(* Release the mutex even if [f] raises — a leaked lock here would
   deadlock every subsequent stats call from any domain. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t =
  locked t (fun () ->
      t.reads <- 0;
      t.seq_reads <- 0;
      t.rand_reads <- 0;
      t.writes <- 0;
      t.retries <- 0;
      t.checksum_failures <- 0;
      t.wal_appends <- 0;
      t.wal_syncs <- 0;
      t.wal_replayed <- 0;
      t.checkpoints_written <- 0;
      t.last_read_addr <- min_int)

(* [hint] overrides the adjacency heuristic: a k-way merge interleaves
   reads of several runs, but on a real disk each run is consumed through
   a sequential readahead buffer, so those reads are sequential. *)
let note_read ?hint t addr =
  locked t (fun () ->
      t.reads <- t.reads + 1;
      let sequential =
        match hint with
        | Some s -> s
        | None -> addr = t.last_read_addr + 1
      in
      if sequential then t.seq_reads <- t.seq_reads + 1
      else t.rand_reads <- t.rand_reads + 1;
      t.last_read_addr <- addr)

let note_write t _addr = locked t (fun () -> t.writes <- t.writes + 1)
let note_retry t = locked t (fun () -> t.retries <- t.retries + 1)
let note_checksum_failure t = locked t (fun () -> t.checksum_failures <- t.checksum_failures + 1)
let note_wal_append t = locked t (fun () -> t.wal_appends <- t.wal_appends + 1)
let note_wal_sync t = locked t (fun () -> t.wal_syncs <- t.wal_syncs + 1)
let note_wal_replayed t = locked t (fun () -> t.wal_replayed <- t.wal_replayed + 1)
let note_checkpoint t = locked t (fun () -> t.checkpoints_written <- t.checkpoints_written + 1)

let snapshot t =
  locked t (fun () ->
      {
        reads = t.reads;
        seq_reads = t.seq_reads;
        rand_reads = t.rand_reads;
        writes = t.writes;
        retries = t.retries;
        checksum_failures = t.checksum_failures;
        wal_appends = t.wal_appends;
        wal_syncs = t.wal_syncs;
        wal_replayed = t.wal_replayed;
        checkpoints_written = t.checkpoints_written;
      })

let zero =
  {
    reads = 0;
    seq_reads = 0;
    rand_reads = 0;
    writes = 0;
    retries = 0;
    checksum_failures = 0;
    wal_appends = 0;
    wal_syncs = 0;
    wal_replayed = 0;
    checkpoints_written = 0;
  }

let diff (after : counters) (before : counters) =
  {
    reads = after.reads - before.reads;
    seq_reads = after.seq_reads - before.seq_reads;
    rand_reads = after.rand_reads - before.rand_reads;
    writes = after.writes - before.writes;
    retries = after.retries - before.retries;
    checksum_failures = after.checksum_failures - before.checksum_failures;
    wal_appends = after.wal_appends - before.wal_appends;
    wal_syncs = after.wal_syncs - before.wal_syncs;
    wal_replayed = after.wal_replayed - before.wal_replayed;
    checkpoints_written = after.checkpoints_written - before.checkpoints_written;
  }

let add (a : counters) (b : counters) =
  {
    reads = a.reads + b.reads;
    seq_reads = a.seq_reads + b.seq_reads;
    rand_reads = a.rand_reads + b.rand_reads;
    writes = a.writes + b.writes;
    retries = a.retries + b.retries;
    checksum_failures = a.checksum_failures + b.checksum_failures;
    wal_appends = a.wal_appends + b.wal_appends;
    wal_syncs = a.wal_syncs + b.wal_syncs;
    wal_replayed = a.wal_replayed + b.wal_replayed;
    checkpoints_written = a.checkpoints_written + b.checkpoints_written;
  }

let total (c : counters) = c.reads + c.writes

let measure t f =
  let before = snapshot t in
  let result = f () in
  (result, diff (snapshot t) before)

let pp ppf (c : counters) =
  Format.fprintf ppf "reads=%d (seq=%d rand=%d) writes=%d" c.reads c.seq_reads c.rand_reads c.writes;
  if c.retries > 0 || c.checksum_failures > 0 then
    Format.fprintf ppf " retries=%d checksum_failures=%d" c.retries c.checksum_failures;
  if c.wal_appends > 0 || c.wal_syncs > 0 || c.wal_replayed > 0 || c.checkpoints_written > 0 then
    Format.fprintf ppf " wal_appends=%d wal_syncs=%d wal_replayed=%d checkpoints=%d" c.wal_appends
      c.wal_syncs c.wal_replayed c.checkpoints_written
