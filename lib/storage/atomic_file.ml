(* Crash-atomic file replacement with real durability.

   The tmp-write + rename idiom used by the metadata sidecar, the sketch
   checkpoint, and WAL truncation is atomic against *process* crashes,
   but not against power cuts: POSIX only promises the rename itself is
   durable once the parent DIRECTORY has been fsynced.  Without that, a
   power cut can roll the directory entry back to the old file even
   though the new file's data blocks hit the platter — recovery then
   reads a stale sidecar over a newer device, which the torn-write fuzz
   can never produce (it only truncates forward).

   [commit] is the fixed idiom: fsync the tmp file's data, rename it
   over the destination, then fsync the parent directory.  All
   rename-commit sites in the tree go through it.

   The power-cut simulator makes the missing-dir-fsync bug testable: when
   armed, every rename records the destination's prior contents, a
   directory fsync marks the renames under that directory durable, and
   [power_cut] rolls every still-undurable rename back — exactly the
   reordering a real power loss can expose.  Disarmed (the default),
   the bookkeeping is a single bool check. *)

type pending = {
  dest : string; (* the renamed-over destination path *)
  prior : string option; (* its contents before the rename; None = did not exist *)
}

let sim_armed = ref false
let sim_pending : pending list ref = ref []
let sim_lock = Mutex.create ()

let with_sim f =
  Mutex.lock sim_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sim_lock) f

let read_file_opt path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end
  else None

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let fsync_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd -> Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  | exception Unix.Unix_error _ -> ()

(* Directory fsync: the only way to make a rename durable.  Some
   filesystems refuse O_RDONLY fsync on directories; a refusal is
   treated as "nothing to do" rather than an error (matching how
   fsync-unaware code behaved before this module existed). *)
let fsync_dir dir =
  (match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ());
  if !sim_armed then
    with_sim (fun () ->
        sim_pending := List.filter (fun p -> Filename.dirname p.dest <> dir) !sim_pending)

let record_rename dest =
  if !sim_armed then
    with_sim (fun () ->
        (* Only the oldest pre-state per destination matters: losing a
           chain of un-fsynced renames rolls back to before the first. *)
        if not (List.exists (fun p -> p.dest = dest) !sim_pending) then
          sim_pending := { dest; prior = read_file_opt dest } :: !sim_pending)

(* Rename WITHOUT the directory fsync — the buggy idiom this module
   replaces.  Kept (and exercised by the regression tests) so the
   simulator provably drops exactly these renames. *)
let rename_unsynced ~tmp dest =
  record_rename dest;
  Sys.rename tmp dest

let commit ~tmp dest =
  fsync_file tmp;
  record_rename dest;
  Sys.rename tmp dest;
  fsync_dir (Filename.dirname dest)

let set_crash_sim on =
  with_sim (fun () ->
      sim_armed := on;
      if not on then sim_pending := [])

let power_cut () =
  with_sim (fun () ->
      List.iter
        (fun p ->
          match p.prior with
          | Some contents -> write_file p.dest contents
          | None -> ( try Sys.remove p.dest with Sys_error _ -> ()))
        !sim_pending;
      sim_pending := [])

let pending_renames () = with_sim (fun () -> List.length !sim_pending)
