(* Failure containment for the device read path: a per-device circuit
   breaker plus the decorrelated-jitter backoff schedule the bounded
   retry loop documents.

   The breaker is the classic three-state machine:

       Closed --k consecutive unrecoverable faults--> Open
       Open   --cooldown elapsed-------------------> Half_open
       Half_open --probe succeeds------------------> Closed
       Half_open --probe fails---------------------> Open

   While Open, [allow] answers false and the device short-circuits reads
   with a Device_error instead of paying the full retry schedule per
   probe — bounding tail latency when the whole device is down.  In
   Half_open exactly one in-flight probe (the "half-open ticket") is
   admitted; its outcome decides the next state, so a recovering device
   is re-tested by one cheap read rather than a thundering herd.

   Only *unrecoverable* faults count: the device calls [failure] after
   its retry schedule is exhausted, never on a transient fault a retry
   absorbed.  A per-partition fault (one bad block) therefore trips the
   breaker only if it is hit [failure_threshold] times in a row without
   any other read succeeding — and such partitions are handled one level
   up by Level_index quarantine, which removes them from the probe set
   before they can dominate the failure count.

   The clock is injectable ([?now]) so the state machine is unit-testable
   without sleeping; production uses Metrics.now_s.  All state is behind
   one mutex — the probe pool calls [allow]/[success]/[failure] from
   several domains. *)

module Metrics = Hsq_obs.Metrics

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

(* Gauge encoding, documented in the mli and DESIGN.md: healthy is 0 so
   a dashboard summing breaker states over a fleet reads 0 when all is
   well. *)
let state_to_gauge = function Closed -> 0.0 | Open -> 1.0 | Half_open -> 2.0

type t = {
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable ticket_out : bool; (* Half_open: the single probe is in flight *)
  failure_threshold : int;
  cooldown_s : float;
  now : unit -> float;
  lock : Mutex.t;
  state_gauge : Metrics.Gauge.t option;
  transitions_total : Metrics.Counter.t option;
}

let default_failure_threshold = 5
let default_cooldown_s = 0.05

let create ?metrics ?now ?(failure_threshold = default_failure_threshold)
    ?(cooldown_s = default_cooldown_s) () =
  if failure_threshold < 1 then invalid_arg "Breaker.create: failure_threshold must be >= 1";
  if cooldown_s < 0.0 then invalid_arg "Breaker.create: cooldown_s must be >= 0";
  let state_gauge, transitions_total =
    match metrics with
    | None -> (None, None)
    | Some r ->
      let g =
        Metrics.gauge ~help:"Circuit breaker state (0=closed, 1=open, 2=half-open)" r
          "hsq_breaker_state"
      in
      Metrics.Gauge.set g 0.0;
      ( Some g,
        Some (Metrics.counter ~help:"Circuit breaker state transitions" r
                "hsq_breaker_transitions_total") )
  in
  {
    state = Closed;
    consecutive_failures = 0;
    opened_at = neg_infinity;
    ticket_out = false;
    failure_threshold;
    cooldown_s;
    now = (match now with Some f -> f | None -> Metrics.now_s);
    lock = Mutex.create ();
    state_gauge;
    transitions_total;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Callers hold the lock. *)
let transition t next =
  if t.state <> next then begin
    t.state <- next;
    Option.iter (fun g -> Metrics.Gauge.set g (state_to_gauge next)) t.state_gauge;
    Option.iter Metrics.Counter.inc t.transitions_total
  end

let allow t =
  locked t (fun () ->
      match t.state with
      | Closed -> true
      | Open ->
        if t.now () -. t.opened_at >= t.cooldown_s then begin
          transition t Half_open;
          t.ticket_out <- true;
          true
        end
        else false
      | Half_open ->
        if t.ticket_out then false
        else begin
          t.ticket_out <- true;
          true
        end)

let success t =
  locked t (fun () ->
      t.consecutive_failures <- 0;
      t.ticket_out <- false;
      match t.state with
      | Closed | Open -> ()
      | Half_open -> transition t Closed)

let failure t =
  locked t (fun () ->
      t.ticket_out <- false;
      match t.state with
      | Closed ->
        t.consecutive_failures <- t.consecutive_failures + 1;
        if t.consecutive_failures >= t.failure_threshold then begin
          t.opened_at <- t.now ();
          transition t Open
        end
      | Half_open ->
        (* The probe failed: back to Open, restarting the cooldown. *)
        t.opened_at <- t.now ();
        transition t Open
      | Open -> ())

let state t = locked t (fun () -> t.state)

let reset t =
  locked t (fun () ->
      t.consecutive_failures <- 0;
      t.ticket_out <- false;
      transition t Closed)

(* Decorrelated-jitter backoff (the "decorrelated jitter" variant from
   the AWS architecture blog): each delay is uniform in
   [base, min(cap, 3 * previous)], so consecutive retries spread apart
   exponentially on average while never synchronizing across clients.
   Seeded from Splitmix so a given seed always yields the same schedule
   — the determinism the retry tests and the fault-injection harness
   rely on. *)
module Backoff = struct
  type policy = { base_ms : float; cap_ms : float; max_attempts : int }

  let default = { base_ms = 1.0; cap_ms = 50.0; max_attempts = 3 }

  let validate p =
    if p.max_attempts < 1 then invalid_arg "Backoff: max_attempts must be >= 1";
    if p.base_ms < 0.0 then invalid_arg "Backoff: base_ms must be >= 0";
    if p.cap_ms < p.base_ms then invalid_arg "Backoff: cap_ms must be >= base_ms"

  (* [delays.(i)] is the wait before attempt i+2; attempt 1 never waits,
     so a policy of n attempts yields n-1 delays (and the never-retry
     policy max_attempts = 1 yields the empty schedule: zero sleeps). *)
  let delays p ~seed =
    validate p;
    let n = p.max_attempts - 1 in
    if n = 0 then [||]
    else begin
      let rng = Hsq_util.Splitmix.create seed in
      let out = Array.make n 0.0 in
      let prev = ref p.base_ms in
      for i = 0 to n - 1 do
        let hi = Float.min p.cap_ms (3.0 *. !prev) in
        let lo = Float.min p.base_ms hi in
        let d = lo +. (Hsq_util.Splitmix.float rng *. (hi -. lo)) in
        out.(i) <- d;
        prev := d
      done;
      out
    end
end
