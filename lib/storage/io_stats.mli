(** Block-level I/O accounting.

    The paper's cost model (Section 2.4) counts disk block accesses and
    distinguishes sequential I/O (loading, merging) from random I/O
    (query-time binary searches). A read is classified sequential when it
    targets the block right after the previously read one on the same
    device.

    Fault-tolerance accounting rides along: [retries] and
    [checksum_failures] are zero on a healthy device, so adding them does
    not perturb the paper's block-access counts.

    Domain-safety: all [note_*] updates and [snapshot] are serialized by
    an internal mutex, so parallel query probes account exactly. Under
    concurrent readers the sequential/random split of a given read
    depends on interleaving order (classification keys off the last
    read address); totals are exact regardless.

    Torn-read-freedom: because [snapshot] runs under the {e same} mutex
    as every [note_*] (and [reset]), the returned record is a mutually
    consistent point-in-time view — it can never show, say, [reads]
    incremented by a concurrent [note_read] whose seq/rand
    classification has not landed yet. Concretely, [snapshot] always
    satisfies [reads = seq_reads + rand_reads], under any interleaving
    of concurrent noters (tested in test_obs.ml).

    The counters are additionally registered in an
    {!Hsq_obs.Metrics} registry under their Prometheus names
    ([hsq_io_*_total], [hsq_wal_*_total], [hsq_io_checkpoints_total]),
    making this object the observability hub for every subsystem that
    reaches it: the registry rides along to WAL/merge/device call sites,
    as does an optional trace. *)

(** Immutable snapshot of the counters. *)
type counters = {
  reads : int;      (** total block reads *)
  seq_reads : int;  (** reads at [previous address + 1] *)
  rand_reads : int; (** all other reads *)
  writes : int;     (** total block writes *)
  retries : int;    (** extra read attempts made by the retry path *)
  checksum_failures : int; (** blocks whose embedded checksum mismatched *)
  wal_appends : int;  (** records appended to the write-ahead log *)
  wal_syncs : int;    (** physical flushes of the write-ahead log *)
  wal_replayed : int; (** WAL records re-applied during recovery *)
  checkpoints_written : int; (** sketch checkpoints persisted *)
}

type t

(** [create ()] makes stats backed by a fresh private registry;
    [create ~registry ()] registers the counters in [registry] instead.
    Two stats objects sharing a registry share the underlying counters
    (registration is idempotent by name) — aggregate accounting. *)
val create : ?registry:Hsq_obs.Metrics.t -> unit -> t

(** The registry the counters live in (the one passed to {!create}, or
    the private one it made). *)
val registry : t -> Hsq_obs.Metrics.t

(** Optional trace carried alongside the registry; instrumented call
    sites (WAL append/sync, merges, checkpoints) open spans on it when
    set. *)
val tracer : t -> Hsq_obs.Trace.t option

val set_tracer : t -> Hsq_obs.Trace.t option -> unit

(** Zero every counter (under the same mutex as [note_*]/[snapshot], so
    a reset is atomic with respect to both). *)
val reset : t -> unit

(** Record one block read at the given block address. [hint] forces the
    sequential/random classification; without it a read is sequential
    iff it targets [previous address + 1]. *)
val note_read : ?hint:bool -> t -> int -> unit

(** Record one block write at the given block address. *)
val note_write : t -> int -> unit

(** Record one extra read attempt (the retry path re-trying a faulted or
    checksum-failed read). *)
val note_retry : t -> unit

(** Record one block whose embedded checksum did not match its payload. *)
val note_checksum_failure : t -> unit

(** Record one record appended to the write-ahead log. *)
val note_wal_append : t -> unit

(** Record one physical flush (group commit) of the write-ahead log. *)
val note_wal_sync : t -> unit

(** Record one WAL record re-applied during recovery. *)
val note_wal_replayed : t -> unit

(** Record one sketch checkpoint written. *)
val note_checkpoint : t -> unit

(** Mutually consistent point-in-time view of all ten counters (taken
    under the note mutex — see the torn-read-freedom note above). *)
val snapshot : t -> counters
val zero : counters

(** [diff after before] subtracts counter-wise. *)
val diff : counters -> counters -> counters

val add : counters -> counters -> counters

(** Reads plus writes. *)
val total : counters -> int

(** [measure t f] runs [f ()] and returns its result together with the
    I/O performed during the call. *)
val measure : t -> (unit -> 'a) -> 'a * counters

val pp : Format.formatter -> counters -> unit
