(** Block-level I/O accounting.

    The paper's cost model (Section 2.4) counts disk block accesses and
    distinguishes sequential I/O (loading, merging) from random I/O
    (query-time binary searches). A read is classified sequential when it
    targets the block right after the previously read one on the same
    device.

    Fault-tolerance accounting rides along: [retries] and
    [checksum_failures] are zero on a healthy device, so adding them does
    not perturb the paper's block-access counts.

    Domain-safety: all [note_*] updates and [snapshot] are serialized by
    an internal mutex, so parallel query probes account exactly. Under
    concurrent readers the sequential/random split of a given read
    depends on interleaving order (classification keys off the last
    read address); totals are exact regardless. *)

(** Immutable snapshot of the counters. *)
type counters = {
  reads : int;      (** total block reads *)
  seq_reads : int;  (** reads at [previous address + 1] *)
  rand_reads : int; (** all other reads *)
  writes : int;     (** total block writes *)
  retries : int;    (** extra read attempts made by the retry path *)
  checksum_failures : int; (** blocks whose embedded checksum mismatched *)
  wal_appends : int;  (** records appended to the write-ahead log *)
  wal_syncs : int;    (** physical flushes of the write-ahead log *)
  wal_replayed : int; (** WAL records re-applied during recovery *)
  checkpoints_written : int; (** sketch checkpoints persisted *)
}

type t

val create : unit -> t
val reset : t -> unit

(** Record one block read at the given block address. [hint] forces the
    sequential/random classification; without it a read is sequential
    iff it targets [previous address + 1]. *)
val note_read : ?hint:bool -> t -> int -> unit

(** Record one block write at the given block address. *)
val note_write : t -> int -> unit

(** Record one extra read attempt (the retry path re-trying a faulted or
    checksum-failed read). *)
val note_retry : t -> unit

(** Record one block whose embedded checksum did not match its payload. *)
val note_checksum_failure : t -> unit

(** Record one record appended to the write-ahead log. *)
val note_wal_append : t -> unit

(** Record one physical flush (group commit) of the write-ahead log. *)
val note_wal_sync : t -> unit

(** Record one WAL record re-applied during recovery. *)
val note_wal_replayed : t -> unit

(** Record one sketch checkpoint written. *)
val note_checkpoint : t -> unit

val snapshot : t -> counters
val zero : counters

(** [diff after before] subtracts counter-wise. *)
val diff : counters -> counters -> counters

val add : counters -> counters -> counters

(** Reads plus writes. *)
val total : counters -> int

(** [measure t f] runs [f ()] and returns its result together with the
    I/O performed during the call. *)
val measure : t -> (unit -> 'a) -> 'a * counters

val pp : Format.formatter -> counters -> unit
