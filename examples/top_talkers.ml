(* Top talkers with certified counts, plus warehouse persistence.

     dune exec examples/top_talkers.exe

   The heavy-hitters extension answers the other analytical primitive
   the paper names (Section 1): which source-destination pairs account
   for more than phi of all traffic across archived history AND the
   live stream?  The historical side needs no extra state — candidates
   come from probing every ~(phi*n)-th element of each sorted
   partition, and counts are certified by exact rank differences.

   The second half saves the warehouse to disk, "restarts", reloads it
   with Persist, and repeats the query on the restored state. *)

let hosts = 4096
let pair src dst = (src * hosts) + dst
let pp_pair v = Printf.sprintf "%d->%d" (v / hosts) (v mod hosts)

let () =
  let dev_path = Filename.temp_file "hsq_top_talkers" ".dev" in
  let meta_path = Filename.temp_file "hsq_top_talkers" ".meta" in
  let config = Hsq.Config.make ~kappa:4 ~steps_hint:16 (Hsq.Config.Epsilon 0.02) in
  let device = Hsq_storage.Block_device.create_file ~block_size:256 ~path:dev_path () in
  let hh =
    Hsq.Heavy_hitters.of_engine ~capacity:512 (Hsq.Engine.create ~device config)
  in
  (* Background traffic + two genuinely heavy flows (a chatty backup
     pair and a DNS-ish hot destination). *)
  let rng = Hsq_util.Xoshiro.create 1337 in
  let zipf = Hsq_workload.Distribution.Zipf.create ~n:hosts ~s:1.0 in
  let sample_flow () =
    let r = Hsq_util.Xoshiro.float rng in
    if r < 0.04 then pair 17 1022 (* backup pair: ~4% of all flows *)
    else if r < 0.06 then pair (Hsq_util.Xoshiro.int rng hosts) 53 (* hot dst *)
    else
      pair
        (Hsq_workload.Distribution.Zipf.sample zipf rng)
        (Hsq_workload.Distribution.Zipf.sample zipf rng)
  in
  for _period = 1 to 16 do
    for _ = 1 to 25_000 do
      Hsq.Heavy_hitters.observe hh (sample_flow ())
    done;
    ignore (Hsq.Heavy_hitters.end_time_step hh)
  done;
  (* live traffic on top *)
  for _ = 1 to 12_000 do
    Hsq.Heavy_hitters.observe hh (sample_flow ())
  done;

  let show (hits, report) =
    Printf.printf "  %d candidates verified with %d disk accesses\n"
      report.Hsq.Heavy_hitters.candidates
      (Hsq_storage.Io_stats.total report.Hsq.Heavy_hitters.io);
    List.iter
      (fun (h : Hsq.Heavy_hitters.hit) ->
        Printf.printf "  %-14s count in [%d, %d]  (%.2f%% of traffic)\n" (pp_pair h.value)
          h.lower h.upper
          (100.0 *. float_of_int h.upper /. float_of_int (Hsq.Heavy_hitters.total_size hh)))
      hits
  in
  Printf.printf "flows >= 2%% of %d total (history + live stream):\n"
    (Hsq.Heavy_hitters.total_size hh);
  show (Hsq.Heavy_hitters.frequent hh ~phi:0.02);

  (* Persist the warehouse, "restart", reload, re-query. *)
  let engine = Hsq.Heavy_hitters.engine hh in
  Hsq.Persist.save engine ~path:meta_path;
  Hsq_storage.Block_device.close (Hsq.Engine.device engine);
  print_endline "\n-- warehouse saved; restarting --\n";
  let restored = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
  Printf.printf "restored: %d elements over %d time steps (stream is empty by design)\n"
    (Hsq.Engine.total_size restored)
    (Hsq.Engine.time_steps restored);
  let hh2 = Hsq.Heavy_hitters.of_engine ~capacity:512 restored in
  print_endline "flows >= 2% of the archived data:";
  let hits2, report2 = Hsq.Heavy_hitters.frequent hh2 ~phi:0.02 in
  Printf.printf "  %d candidates verified with %d disk accesses\n"
    report2.Hsq.Heavy_hitters.candidates
    (Hsq_storage.Io_stats.total report2.Hsq.Heavy_hitters.io);
  List.iter
    (fun (h : Hsq.Heavy_hitters.hit) ->
      (* Empty stream: bounds collapse to the exact count. *)
      assert (h.lower = h.upper);
      Printf.printf "  %-14s count = %d (exact)\n" (pp_pair h.value) h.lower)
    hits2;
  (* And the quantile side of the same restored warehouse still works: *)
  let median, _ = Hsq.Engine.quantile restored 0.5 in
  Printf.printf "\nmedian flow key of the archive: %s\n" (pp_pair median);
  Hsq_storage.Block_device.close (Hsq.Engine.device restored);
  Sys.remove dev_path;
  Sys.remove meta_path
