(* End-to-end tests of the engine: Lemma 3 (quick), Lemma 5/Theorem 2
   (accurate, error proportional to the stream), disk-access behaviour,
   windowed queries, memory-budget mode, and lifecycle edge cases. *)

module E = Hsq.Engine

let phis = [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

(* Drive an engine and an oracle through [steps] time steps plus a live
   stream tail. *)
let drive ?(universe = 1_000_000) ~config ~steps ~step_size ~tail ~seed () =
  let rng = Hsq_util.Xoshiro.create seed in
  let eng = E.create config in
  let oracle = Hsq_workload.Oracle.create () in
  for _ = 1 to steps do
    for _ = 1 to step_size do
      let v = Hsq_util.Xoshiro.int rng universe in
      E.observe eng v;
      Hsq_workload.Oracle.add oracle v
    done;
    ignore (E.end_time_step eng)
  done;
  for _ = 1 to tail do
    let v = Hsq_util.Xoshiro.int rng universe in
    E.observe eng v;
    Hsq_workload.Oracle.add oracle v
  done;
  (eng, oracle)

let std_config ?(kappa = 3) ?(epsilon = 0.05) () =
  Hsq.Config.make ~kappa ~block_size:32 (Hsq.Config.Epsilon epsilon)

let test_accurate_error_bound () =
  let eng, oracle = drive ~config:(std_config ()) ~steps:13 ~step_size:2_000 ~tail:1_500 ~seed:71 () in
  let n = E.total_size eng in
  Alcotest.(check int) "sizes agree" (Hsq_workload.Oracle.count oracle) n;
  let m = E.stream_size eng in
  let bound = Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m in
  List.iter
    (fun phi ->
      let r = int_of_float (ceil (phi *. float_of_int n)) in
      let v, _ = E.accurate eng ~rank:r in
      let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
      Alcotest.(check bool)
        (Printf.sprintf "phi=%.3f err=%d <= %.1f" phi err bound)
        true
        (float_of_int err <= bound))
    phis

let test_accurate_error_independent_of_history () =
  (* Theorem 2: absolute error depends on m, not n.  Grow the history
     8x and check the error bound stays the one derived from m. *)
  List.iter
    (fun steps ->
      let eng, oracle =
        drive ~config:(std_config ()) ~steps ~step_size:1_000 ~tail:800 ~seed:72 ()
      in
      let n = E.total_size eng in
      let m = E.stream_size eng in
      let bound = Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m in
      let r = int_of_float (ceil (0.5 *. float_of_int n)) in
      let v, _ = E.accurate eng ~rank:r in
      let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
      Alcotest.(check bool)
        (Printf.sprintf "steps=%d err=%d <= %.1f" steps err bound)
        true
        (float_of_int err <= bound))
    [ 2; 8; 16 ]

let test_quick_error_bound () =
  let eng, oracle = drive ~config:(std_config ()) ~steps:13 ~step_size:2_000 ~tail:1_500 ~seed:73 () in
  let n = E.total_size eng in
  let m = E.stream_size eng in
  let cfg = E.config eng in
  let eps1 = 1.0 /. float_of_int (Hsq.Config.beta1 cfg - 1) in
  let parts = Hsq_hist.Level_index.partition_count (E.hist eng) in
  let bound =
    Hsq.Errors.quick_rank_bound ~eps1 ~eps2:(E.eps2 eng) ~n:(E.hist_size eng) ~m ~partitions:parts
  in
  List.iter
    (fun phi ->
      let r = int_of_float (ceil (phi *. float_of_int n)) in
      let v = E.quick eng ~rank:r in
      let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
      Alcotest.(check bool)
        (Printf.sprintf "phi=%.3f quick err=%d <= %.1f" phi err bound)
        true
        (float_of_int err <= bound))
    phis

let test_quick_uses_no_disk () =
  let eng, _ = drive ~config:(std_config ()) ~steps:9 ~step_size:1_000 ~tail:500 ~seed:74 () in
  let stats = Hsq_storage.Block_device.stats (E.device eng) in
  Hsq_storage.Io_stats.reset stats;
  ignore (E.quick eng ~rank:E.(total_size eng / 2));
  Alcotest.(check int) "no reads" 0 (Hsq_storage.Io_stats.snapshot stats).Hsq_storage.Io_stats.reads

let test_accurate_io_logarithmic () =
  let eng, _ = drive ~config:(std_config ()) ~steps:13 ~step_size:4_000 ~tail:2_000 ~seed:75 () in
  let parts = Hsq_hist.Level_index.partition_count (E.hist eng) in
  (* Lemma 7: O(parts * log(n/B) * log |U|) — use a generous concrete
     cap: parts * log2(n) + constant slack per bisection step. *)
  let cap = (parts + 2) * 22 in
  List.iter
    (fun phi ->
      let n = E.total_size eng in
      let r = int_of_float (ceil (phi *. float_of_int n)) in
      let _, report = E.accurate eng ~rank:r in
      let io = Hsq_storage.Io_stats.total report.E.io in
      Alcotest.(check bool) (Printf.sprintf "phi=%.2f io=%d <= %d" phi io cap) true (io <= cap))
    [ 0.01; 0.5; 0.99 ]

let test_quantile_definitions () =
  let eng, oracle = drive ~config:(std_config ()) ~steps:5 ~step_size:500 ~tail:300 ~seed:76 () in
  let v, _ = E.quantile eng 0.5 in
  let err = abs (Hsq_workload.Oracle.rank_of oracle v - Hsq_workload.Oracle.count oracle / 2) in
  Alcotest.(check bool) "median close" true (err < 300);
  Alcotest.check_raises "phi out of range" (Invalid_argument "Engine: phi not in (0,1]") (fun () ->
      ignore (E.quantile eng 1.5))

let test_stream_only_queries () =
  let eng = E.create (std_config ()) in
  for i = 1 to 1_000 do
    E.observe eng i
  done;
  let v, _ = E.accurate eng ~rank:500 in
  Alcotest.(check bool) "stream-only accurate" true (abs (v - 500) <= 60);
  let vq = E.quick eng ~rank:500 in
  Alcotest.(check bool) "stream-only quick" true (abs (vq - 500) <= 120)

let test_hist_only_queries () =
  let eng = E.create (std_config ()) in
  ignore (E.ingest_batch eng (Array.init 1_000 (fun i -> i + 1)));
  (* No live stream: the accurate path must be near-exact. *)
  let v, _ = E.accurate eng ~rank:500 in
  Alcotest.(check bool) (Printf.sprintf "hist-only accurate v=%d" v) true (abs (v - 500) <= 1)

let test_empty_engine_raises () =
  let eng = E.create (std_config ()) in
  Alcotest.check_raises "accurate on empty" (Invalid_argument "Engine.accurate: no data")
    (fun () -> ignore (E.accurate eng ~rank:1));
  Alcotest.check_raises "end of empty step" (Invalid_argument "Engine.end_time_step: empty batch")
    (fun () -> ignore (E.end_time_step eng))

let test_rank_clamping () =
  let eng, _ = drive ~config:(std_config ()) ~steps:3 ~step_size:200 ~tail:100 ~seed:77 () in
  let v_low, _ = E.accurate eng ~rank:(-5) in
  let v_high, _ = E.accurate eng ~rank:(10 * E.total_size eng) in
  Alcotest.(check bool) "clamped low <= clamped high" true (v_low <= v_high)

let test_stream_reset_on_step () =
  let eng = E.create (std_config ()) in
  for i = 1 to 100 do
    E.observe eng i
  done;
  Alcotest.(check int) "stream size" 100 (E.stream_size eng);
  ignore (E.end_time_step eng);
  Alcotest.(check int) "stream reset" 0 (E.stream_size eng);
  Alcotest.(check int) "hist grew" 100 (E.hist_size eng);
  Alcotest.(check int) "steps" 1 (E.time_steps eng)

let test_window_queries () =
  let eng = E.create (std_config ~kappa:3 ()) in
  let oracle_recent = Hsq_workload.Oracle.create () in
  (* 13 steps; values encode their step so windows are testable. *)
  for s = 1 to 13 do
    let batch = Array.init 300 (fun i -> (s * 1000) + (i mod 97)) in
    if s >= 9 then Hsq_workload.Oracle.add_batch oracle_recent batch;
    ignore (E.ingest_batch eng batch)
  done;
  Alcotest.(check (list int)) "window sizes" [ 1; 5; 9; 13 ] (E.window_sizes eng);
  (match E.window_total eng ~window:5 with
  | Ok n -> Alcotest.(check int) "window 5 total" (5 * 300) n
  | Error _ -> Alcotest.fail "window 5 should be aligned");
  (match E.accurate_window eng ~window:5 ~rank:750 with
  | Ok (v, _) ->
    let err = Hsq_workload.Oracle.rank_error oracle_recent ~rank:750 ~value:v in
    Alcotest.(check bool) (Printf.sprintf "window median err=%d" err) true (err <= 20)
  | Error _ -> Alcotest.fail "window query failed");
  match E.accurate_window eng ~window:2 ~rank:10 with
  | Error (E.Window_not_aligned sizes) ->
    Alcotest.(check (list int)) "reported sizes" [ 1; 5; 9; 13 ] sizes
  | Ok _ -> Alcotest.fail "window 2 must be rejected"

let test_all_windows_match_oracles () =
  (* Every advertised window must answer within the accurate bound
     against an oracle holding exactly that window's data + stream. *)
  let eng = E.create (std_config ~kappa:3 ()) in
  let rng = Hsq_util.Xoshiro.create 83 in
  let per_step = Array.init 14 (fun _ -> Array.init 400 (fun _ -> Hsq_util.Xoshiro.int rng 100_000)) in
  for s = 0 to 12 do
    ignore (E.ingest_batch eng per_step.(s))
  done;
  Array.iter (E.observe eng) per_step.(13);
  let steps = 13 in
  List.iter
    (fun w ->
      let oracle = Hsq_workload.Oracle.create () in
      for s = steps - w to steps - 1 do
        Hsq_workload.Oracle.add_batch oracle per_step.(s)
      done;
      Hsq_workload.Oracle.add_batch oracle per_step.(13);
      match E.window_total eng ~window:w with
      | Error _ -> Alcotest.failf "advertised window %d rejected" w
      | Ok n ->
        Alcotest.(check int) (Printf.sprintf "window %d total" w) (Hsq_workload.Oracle.count oracle) n;
        List.iter
          (fun phi ->
            let r = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
            match E.accurate_window eng ~window:w ~rank:r with
            | Error _ -> Alcotest.fail "window query failed"
            | Ok (v, _) ->
              let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
              let m = E.stream_size eng in
              let bound = Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m in
              Alcotest.(check bool)
                (Printf.sprintf "window %d phi %.2f err %d <= %.1f" w phi err bound)
                true
                (float_of_int err <= bound))
          [ 0.1; 0.5; 0.9 ])
    (E.window_sizes eng)

let test_expire_engine_end_to_end () =
  (* Retention through the engine: drop old data, keep answering, and
     survive a save/load cycle with retention applied. *)
  let dev_path = Filename.temp_file "hsq_expire" ".dev" in
  let meta_path = Filename.temp_file "hsq_expire" ".meta" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove dev_path;
      Sys.remove meta_path)
    (fun () ->
      let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
      let dev = Hsq_storage.Block_device.create_file ~block_size:32 ~path:dev_path () in
      let eng = E.create ~device:dev config in
      for s = 1 to 13 do
        ignore (E.ingest_batch eng (Array.make 200 s))
      done;
      let dropped_parts, dropped_elems = E.expire eng ~keep_steps:5 in
      Alcotest.(check bool) "something dropped" true (dropped_parts > 0 && dropped_elems > 0);
      Alcotest.(check (list string)) "invariants after expire" []
        (Hsq_hist.Level_index.check_invariants (E.hist eng));
      (* Only steps 9..13 remain: the minimum is 9. *)
      let v, _ = E.accurate eng ~rank:1 in
      Alcotest.(check int) "oldest retained value" 9 v;
      Hsq.Persist.save eng ~path:meta_path;
      Hsq_storage.Block_device.close dev;
      let restored = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      Alcotest.(check (list string)) "invariants after restore of expired warehouse" []
        (Hsq_hist.Level_index.check_invariants (E.hist restored));
      Alcotest.(check int) "restored total" (E.total_size eng) (E.total_size restored);
      let v2, _ = E.accurate restored ~rank:1 in
      Alcotest.(check int) "restored oldest" 9 v2;
      Hsq_storage.Block_device.close (E.device restored))

let test_range_queries () =
  let eng = E.create (std_config ~kappa:3 ()) in
  (* 13 steps; values encode their step: step s holds s*1000 .. s*1000+299. *)
  for s = 1 to 13 do
    ignore (E.ingest_batch eng (Array.init 300 (fun i -> (s * 1000) + (i mod 97))))
  done;
  (* kappa=3 after 13 steps: partitions P1-4, P5-8, P9-12, P13. *)
  let boundaries = Hsq_hist.Level_index.partition_boundaries (E.hist eng) in
  Alcotest.(check (list (pair int int))) "boundaries" [ (1, 4); (5, 8); (9, 12); (13, 13) ]
    boundaries;
  (* Aligned range [5, 12]: two partitions. *)
  (match E.range_total eng ~first:5 ~last:12 with
  | Ok n -> Alcotest.(check int) "range total" (8 * 300) n
  | Error _ -> Alcotest.fail "range [5,12] should be aligned");
  (match E.quantile_range eng ~first:5 ~last:12 0.5 with
  | Ok (v, _) ->
    (* median of steps 5..12 lies in step 8's values *)
    Alcotest.(check bool) (Printf.sprintf "range median %d in step 8/9 band" v) true
      (v >= 8000 && v < 9100)
  | Error _ -> Alcotest.fail "range quantile failed");
  (* Unaligned range rejected with boundaries. *)
  (match E.quantile_range eng ~first:2 ~last:6 0.5 with
  | Error (E.Range_not_aligned bs) ->
    Alcotest.(check (list (pair int int))) "error carries boundaries" boundaries bs
  | Ok _ -> Alcotest.fail "range [2,6] must be rejected");
  (* Out-of-range endpoints rejected. *)
  Alcotest.(check bool) "range [0,4] rejected" true
    (match E.range_total eng ~first:0 ~last:4 with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "range [13,14] rejected" true
    (match E.range_total eng ~first:13 ~last:14 with Error _ -> true | Ok _ -> false);
  (* Range queries ignore the live stream and leave it intact. *)
  for i = 1 to 50 do
    E.observe eng (99_000 + i)
  done;
  (match E.quantile_range eng ~first:13 ~last:13 1.0 with
  | Ok (v, _) -> Alcotest.(check bool) "stream excluded" true (v < 99_000)
  | Error _ -> Alcotest.fail "range [13,13] should be aligned");
  Alcotest.(check int) "stream preserved" 50 (E.stream_size eng)

let test_rank_of_and_cdf () =
  let eng, oracle = drive ~config:(std_config ()) ~steps:6 ~step_size:1_000 ~tail:700 ~seed:81 () in
  let m = E.stream_size eng in
  let slack = int_of_float (2.0 *. E.eps2 eng *. float_of_int m) + 1 in
  List.iter
    (fun v ->
      let est = E.rank_of eng v in
      let truth = Hsq_workload.Oracle.rank_of oracle v in
      Alcotest.(check bool)
        (Printf.sprintf "rank_of %d: |%d - %d| <= %d" v est truth slack)
        true
        (abs (est - truth) <= slack))
    [ -1; 0; 250_000; 500_000; 999_999; 2_000_000 ];
  let c = E.cdf eng 500_000 in
  Alcotest.(check bool) (Printf.sprintf "cdf ~ 0.5 (%.3f)" c) true (abs_float (c -. 0.5) < 0.02);
  Alcotest.(check (float 1e-9)) "cdf above max" 1.0 (E.cdf eng max_int)

let test_accurate_many_matches_single () =
  let eng, _ = drive ~config:(std_config ()) ~steps:6 ~step_size:1_000 ~tail:500 ~seed:82 () in
  let ranks = [ 1; 100; 3_000; 6_500 ] in
  let batched = List.map fst (E.accurate_many eng ~ranks) in
  let singles = List.map (fun rank -> fst (E.accurate eng ~rank)) ranks in
  Alcotest.(check (list int)) "batched = singles" singles batched

let test_parallel_sort_identical_results () =
  (* Paper future work (Section 4): parallel sorting.  The parallel
     path must be observationally identical to the sequential one. *)
  let run ~sort_domains =
    let config =
      Hsq.Config.make ~kappa:3 ~block_size:32 ?sort_domains (Hsq.Config.Epsilon 0.05)
    in
    let eng = E.create config in
    let rng = Hsq_util.Xoshiro.create 555 in
    for _ = 1 to 6 do
      ignore (E.ingest_batch eng (Array.init 6_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000)))
    done;
    List.map (fun r -> fst (E.accurate eng ~rank:r)) [ 1; 9_000; 18_000; 36_000 ]
  in
  Alcotest.(check (list int)) "parallel = sequential" (run ~sort_domains:None)
    (run ~sort_domains:(Some 4))

let test_memory_mode_budget () =
  let config =
    Hsq.Config.make ~kappa:10 ~block_size:32 ~steps_hint:20 (Hsq.Config.Memory_words 4_000)
  in
  let eng, oracle = drive ~config ~steps:20 ~step_size:2_000 ~tail:1_000 ~seed:78 () in
  Alcotest.(check bool)
    (Printf.sprintf "memory %d within budget" (E.memory_words eng))
    true
    (E.memory_words eng <= 4_000);
  (* And the answers are still good: error well under 1% of N. *)
  let n = E.total_size eng in
  let r = n / 2 in
  let v, _ = E.accurate eng ~rank:r in
  let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
  Alcotest.(check bool) (Printf.sprintf "memory-mode err=%d" err) true (err < n / 100)

let test_accuracy_on_duplicate_heavy_data () =
  (* Network-like data: few distinct values, huge multiplicities. *)
  let rng = Hsq_util.Xoshiro.create 79 in
  let eng = E.create (std_config ()) in
  let oracle = Hsq_workload.Oracle.create () in
  for _ = 1 to 8 do
    let batch = Array.init 1_000 (fun _ -> Hsq_util.Xoshiro.int rng 10) in
    Hsq_workload.Oracle.add_batch oracle batch;
    ignore (E.ingest_batch eng batch)
  done;
  let tail = Array.init 500 (fun _ -> Hsq_util.Xoshiro.int rng 10) in
  Array.iter (fun v -> E.observe eng v; Hsq_workload.Oracle.add oracle v) tail;
  let m = E.stream_size eng in
  let bound = Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m in
  List.iter
    (fun phi ->
      let n = E.total_size eng in
      let r = int_of_float (ceil (phi *. float_of_int n)) in
      let v, _ = E.accurate eng ~rank:r in
      let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
      Alcotest.(check bool)
        (Printf.sprintf "dup-heavy phi=%.2f err=%d <= %.1f" phi err bound)
        true
        (float_of_int err <= bound))
    [ 0.1; 0.5; 0.9 ]

let prop_accurate_bound_random_instances =
  QCheck.Test.make ~name:"accurate error bound on random instances" ~count:25
    QCheck.(triple (int_range 1 10) (int_range 10 300) (int_range 0 300))
    (fun (steps, step_size, tail) ->
      let seed = steps + (step_size * 7) + (tail * 13) in
      let eng, oracle =
        drive ~universe:5_000 ~config:(std_config ()) ~steps ~step_size ~tail ~seed ()
      in
      let n = E.total_size eng in
      let m = E.stream_size eng in
      let bound = Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m in
      List.for_all
        (fun phi ->
          let r = int_of_float (ceil (phi *. float_of_int n)) in
          let v, _ = E.accurate eng ~rank:r in
          float_of_int (Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v) <= bound)
        [ 0.1; 0.5; 0.9 ])

let () =
  Alcotest.run "engine"
    [
      ( "accuracy",
        [
          Alcotest.test_case "accurate bound (Lemma 5)" `Quick test_accurate_error_bound;
          Alcotest.test_case "error independent of history (Thm 2)" `Slow
            test_accurate_error_independent_of_history;
          Alcotest.test_case "quick bound (Lemma 3)" `Quick test_quick_error_bound;
          Alcotest.test_case "duplicate-heavy data" `Quick test_accuracy_on_duplicate_heavy_data;
          QCheck_alcotest.to_alcotest prop_accurate_bound_random_instances;
        ] );
      ( "cost",
        [
          Alcotest.test_case "quick is memory-only" `Quick test_quick_uses_no_disk;
          Alcotest.test_case "accurate io logarithmic" `Quick test_accurate_io_logarithmic;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "quantile + validation" `Quick test_quantile_definitions;
          Alcotest.test_case "stream-only" `Quick test_stream_only_queries;
          Alcotest.test_case "hist-only near-exact" `Quick test_hist_only_queries;
          Alcotest.test_case "empty raises" `Quick test_empty_engine_raises;
          Alcotest.test_case "rank clamping" `Quick test_rank_clamping;
          Alcotest.test_case "stream reset per step" `Quick test_stream_reset_on_step;
          Alcotest.test_case "rank_of + cdf" `Quick test_rank_of_and_cdf;
          Alcotest.test_case "accurate_many = singles" `Quick test_accurate_many_matches_single;
        ] );
      ( "windows",
        [
          Alcotest.test_case "window queries" `Quick test_window_queries;
          Alcotest.test_case "range queries" `Quick test_range_queries;
          Alcotest.test_case "all windows vs oracles" `Quick test_all_windows_match_oracles;
        ] );
      ( "retention",
        [ Alcotest.test_case "expire + persist end-to-end" `Quick test_expire_engine_end_to_end ] );
      ("memory mode", [ Alcotest.test_case "budget + accuracy" `Quick test_memory_mode_budget ]);
      ( "parallel",
        [ Alcotest.test_case "parallel sort identical" `Quick test_parallel_sort_identical_results ] );
    ]
