(* Tests for warehouse persistence: save/restore round-trips on a
   file-backed device, recovery I/O cost, and corruption detection. *)

module E = Hsq.Engine

let with_temp_files f =
  let dev_path = Filename.temp_file "hsq_persist" ".dev" in
  let meta_path = Filename.temp_file "hsq_persist" ".meta" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dev_path then Sys.remove dev_path;
      if Sys.file_exists meta_path then Sys.remove meta_path)
    (fun () -> f ~dev_path ~meta_path)

let build_and_save ~dev_path ~meta_path ~steps =
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 ~steps_hint:steps (Hsq.Config.Epsilon 0.05) in
  let dev = Hsq_storage.Block_device.create_file ~block_size:32 ~path:dev_path () in
  let eng = E.create ~device:dev config in
  let rng = Hsq_util.Xoshiro.create 4242 in
  let oracle = Hsq_workload.Oracle.create () in
  for _ = 1 to steps do
    let batch = Array.init 500 (fun _ -> Hsq_util.Xoshiro.int rng 100_000) in
    Hsq_workload.Oracle.add_batch oracle batch;
    ignore (E.ingest_batch eng batch)
  done;
  Hsq.Persist.save eng ~path:meta_path;
  Hsq_storage.Block_device.close dev;
  (oracle, E.total_size eng)

let test_round_trip () =
  with_temp_files (fun ~dev_path ~meta_path ->
      let oracle, n = build_and_save ~dev_path ~meta_path ~steps:13 in
      let eng = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      Alcotest.(check int) "size restored" n (E.total_size eng);
      Alcotest.(check int) "steps restored" 13 (E.time_steps eng);
      Alcotest.(check int) "stream volatile" 0 (E.stream_size eng);
      Alcotest.(check (list string)) "invariants" []
        (Hsq_hist.Level_index.check_invariants (E.hist eng));
      (* Queries on the restored engine are near-exact (empty stream). *)
      List.iter
        (fun phi ->
          let r = int_of_float (ceil (phi *. float_of_int n)) in
          let v, _ = E.accurate eng ~rank:r in
          let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
          Alcotest.(check int) (Printf.sprintf "phi=%.2f exact after restore" phi) 0 err)
        [ 0.1; 0.5; 0.9 ];
      Hsq_storage.Block_device.close (E.device eng))

let test_restored_engine_keeps_ingesting () =
  with_temp_files (fun ~dev_path ~meta_path ->
      let _, n = build_and_save ~dev_path ~meta_path ~steps:5 in
      let eng = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      (* Life goes on: stream, archive, query. *)
      for i = 1 to 700 do
        E.observe eng i
      done;
      ignore (E.end_time_step eng);
      Alcotest.(check int) "grew by a step" (n + 700) (E.total_size eng);
      Alcotest.(check int) "step count advanced" 6 (E.time_steps eng);
      Alcotest.(check (list string)) "invariants after growth" []
        (Hsq_hist.Level_index.check_invariants (E.hist eng));
      let v, _ = E.accurate eng ~rank:1 in
      Alcotest.(check bool) "min sane" true (v >= 0);
      Hsq_storage.Block_device.close (E.device eng))

let test_recovery_io_is_bounded () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:13);
      let eng = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      let stats = Hsq_storage.Block_device.stats (E.device eng) in
      let c = Hsq_storage.Io_stats.snapshot stats in
      (* Recovery reads at most beta1 blocks per partition, never the
         whole dataset (13 steps x 500 elems / 32 per block = 204 data
         blocks). *)
      let parts = Hsq_hist.Level_index.partition_count (E.hist eng) in
      let beta1 = Hsq.Config.beta1 (E.config eng) in
      Alcotest.(check bool)
        (Printf.sprintf "recovery reads %d <= parts(%d) * beta1(%d)" c.Hsq_storage.Io_stats.reads
           parts beta1)
        true
        (c.Hsq_storage.Io_stats.reads <= parts * beta1);
      Alcotest.(check int) "recovery writes nothing" 0 c.Hsq_storage.Io_stats.writes;
      Hsq_storage.Block_device.close (E.device eng))

let test_corrupt_metadata_rejected () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:4);
      (* Truncate the partition table. *)
      let contents = In_channel.with_open_text meta_path In_channel.input_all in
      let lines = String.split_on_char '\n' contents in
      let truncated = List.filteri (fun i _ -> i < List.length lines - 2) lines in
      Out_channel.with_open_text meta_path (fun oc ->
          Out_channel.output_string oc (String.concat "\n" truncated));
      Alcotest.(check bool) "truncated metadata rejected" true
        (try
           ignore (Hsq.Persist.load_files ~device_path:dev_path ~meta_path ());
           false
         with Hsq.Persist.Corrupt_metadata _ -> true))

let test_bad_version_rejected () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:2);
      let contents = In_channel.with_open_text meta_path In_channel.input_all in
      Out_channel.with_open_text meta_path (fun oc ->
          Out_channel.output_string oc
            (Str.global_replace (Str.regexp "hsq-meta [0-9]+") "hsq-meta 99" contents));
      Alcotest.(check bool) "bad version rejected" true
        (try
           ignore (Hsq.Persist.load_files ~device_path:dev_path ~meta_path ());
           false
         with Hsq.Persist.Corrupt_metadata _ -> true))

let test_missing_device_rejected () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:2);
      Sys.remove dev_path;
      Alcotest.(check bool) "missing device rejected" true
        (try
           ignore (Hsq.Persist.load_files ~device_path:dev_path ~meta_path ());
           false
         with Hsq_storage.Block_device.Device_error _ -> true))

let test_garbled_device_detected () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:4);
      (* Garble the middle half of the LARGEST live partition (junk in
         freed, merged-away regions is rightly undetectable).  The
         rebuilt summary probes every ~beta1-th position, so a wide
         stripe of descending garbage must surface as an unsorted
         summary. *)
      let meta = In_channel.with_open_text meta_path In_channel.input_all in
      let best = ref (0, 0) in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "partition"; fb; len; _; _; _ ] ->
            let fb = int_of_string fb and len = int_of_string len in
            if len > snd !best then best := (fb, len)
          | _ -> ())
        (String.split_on_char '\n' meta);
      let first_block, length = !best in
      Alcotest.(check bool) "found a live partition" true (length > 0);
      (* Records carry a trailing checksum word on top of the payload. *)
      let bytes_per_block = (32 + 1) * 8 in
      let start = (first_block * bytes_per_block) + (length * 8 / 4) in
      let span = length * 8 / 2 in
      let fd = Unix.openfile dev_path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd start Unix.SEEK_SET);
      let junk = Bytes.init span (fun i -> Char.chr ((255 - i) land 0xFF)) in
      ignore (Unix.write fd junk 0 (Bytes.length junk));
      Unix.close fd;
      Alcotest.(check bool) "garbled device detected" true
        (try
           ignore (Hsq.Persist.load_files ~device_path:dev_path ~meta_path ());
           false
         with Hsq.Persist.Corrupt_metadata _ -> true))

(* Tamper with the sidecar *body* and re-stamp the trailing checksum
   line, so the whole-file checksum passes and the parser itself must
   catch the damage. *)
let restamp transform meta_path =
  let contents = In_channel.with_open_text meta_path In_channel.input_all in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' contents) in
  let body = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  let body = transform body in
  let payload = String.concat "" (List.map (fun l -> l ^ "\n") body) in
  Out_channel.with_open_text meta_path (fun oc ->
      Out_channel.output_string oc payload;
      Printf.fprintf oc "checksum %x\n" (Hsq.Persist.meta_checksum payload))

let load_error ~dev_path ~meta_path =
  try
    ignore (Hsq.Persist.load_files ~device_path:dev_path ~meta_path ());
    None
  with Hsq.Persist.Corrupt_metadata msg -> Some msg

let contains ~needle haystack =
  Str.string_match (Str.regexp (".*" ^ Str.quote needle ^ ".*")) haystack 0

let test_checksum_line_guards_tampering () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:2);
      (* Silently change one digit without re-stamping: the whole-file
         checksum must catch it before any field is believed. *)
      let contents = In_channel.with_open_text meta_path In_channel.input_all in
      Out_channel.with_open_text meta_path (fun oc ->
          Out_channel.output_string oc
            (Str.replace_first (Str.regexp "kappa [0-9]+") "kappa 7" contents));
      match load_error ~dev_path ~meta_path with
      | Some msg ->
        Alcotest.(check bool) "caught by whole-file checksum" true
          (contains ~needle:"checksum" msg)
      | None -> Alcotest.fail "tampered metadata accepted")

let test_missing_checksum_line_rejected () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:2);
      let contents = In_channel.with_open_text meta_path In_channel.input_all in
      let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' contents) in
      let body = List.filteri (fun i _ -> i < List.length lines - 1) lines in
      Out_channel.with_open_text meta_path (fun oc ->
          List.iter (fun l -> Printf.fprintf oc "%s\n" l) body);
      Alcotest.(check bool) "missing checksum line rejected" true
        (load_error ~dev_path ~meta_path <> None))

let test_empty_field_reported_by_name () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:2);
      restamp
        (List.map (fun l ->
             if String.length l >= 6 && String.sub l 0 6 = "kappa " then "kappa" else l))
        meta_path;
      match load_error ~dev_path ~meta_path with
      | Some msg ->
        Alcotest.(check bool)
          (Printf.sprintf "names the empty field (got %S)" msg)
          true
          (contains ~needle:"empty value" msg && contains ~needle:"kappa" msg)
      | None -> Alcotest.fail "empty field accepted")

let test_garbled_field_rejected () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:2);
      restamp
        (List.map (fun l ->
             if String.length l >= 6 && String.sub l 0 6 = "kappa " then "kappa banana" else l))
        meta_path;
      Alcotest.(check bool) "non-numeric field rejected" true
        (load_error ~dev_path ~meta_path <> None))

let test_save_is_atomic () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:3);
      (* No temp file is left behind, and the sidecar ends with its
         checksum line. *)
      Alcotest.(check bool) "no .tmp residue" false (Sys.file_exists (meta_path ^ ".tmp"));
      let contents = In_channel.with_open_text meta_path In_channel.input_all in
      let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' contents) in
      let last = List.nth lines (List.length lines - 1) in
      Alcotest.(check bool) "ends with checksum line" true (contains ~needle:"checksum " last);
      (* Re-saving over an existing sidecar works (rename replaces). *)
      let eng = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      Hsq.Persist.save eng ~path:meta_path;
      let eng2 = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      Alcotest.(check int) "round-trips after re-save" (E.total_size eng) (E.total_size eng2);
      Hsq_storage.Block_device.close (E.device eng);
      Hsq_storage.Block_device.close (E.device eng2))

let test_scrub_healthy () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:6);
      let eng = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      let report = Hsq.Persist.scrub eng in
      Alcotest.(check (list string)) "no errors" [] report.Hsq.Persist.errors;
      Alcotest.(check int) "every live partition checked"
        (Hsq_hist.Level_index.partition_count (E.hist eng))
        report.Hsq.Persist.partitions_checked;
      Alcotest.(check bool) "read the data back" true (report.Hsq.Persist.blocks_read > 0);
      Hsq_storage.Block_device.close (E.device eng))

let test_scrub_catches_bit_rot_load_misses () =
  with_temp_files (fun ~dev_path ~meta_path ->
      ignore (build_and_save ~dev_path ~meta_path ~steps:4);
      (* Pick, in the largest partition, a block that summary rebuild
         does NOT probe (the summary holds ~beta1 of the blocks), and
         flip one bit there: [load] succeeds, but [scrub] — which reads
         every block — must report the checksum failure rather than let
         it be served later. *)
      let eng = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      let block_size = (E.config eng).Hsq.Config.block_size in
      let parts = Hsq_hist.Level_index.partitions (E.hist eng) in
      let part =
        List.fold_left
          (fun acc p ->
            if Hsq_hist.Partition.size p > Hsq_hist.Partition.size acc then p else acc)
          (List.hd parts) parts
      in
      let run = Hsq_hist.Partition.run part in
      let probed = Hashtbl.create 16 in
      Array.iter
        (fun e -> Hashtbl.replace probed (e.Hsq_hist.Partition_summary.index / block_size) ())
        (Hsq_hist.Partition_summary.entries (Hsq_hist.Partition.summary part));
      let nblocks = Hsq_storage.Run.nblocks run in
      let victim = ref (-1) in
      for b = nblocks - 1 downto 0 do
        if not (Hashtbl.mem probed b) then victim := b
      done;
      Alcotest.(check bool) "found an unprobed block" true (!victim >= 0);
      let first_block = Hsq_storage.Run.first_block run in
      Hsq_storage.Block_device.close (E.device eng);
      let bytes_per_block = (block_size + 1) * 8 in
      let off = ((first_block + !victim) * bytes_per_block) + 12 in
      let fd = Unix.openfile dev_path [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      (* Load only probes the summary targets, so it misses the flip... *)
      let eng = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      (* ...but a full scrub cannot. *)
      let report = Hsq.Persist.scrub eng in
      Alcotest.(check bool) "scrub reports the damage" true
        (report.Hsq.Persist.errors <> []);
      Alcotest.(check bool) "as a checksum failure" true
        (List.exists (contains ~needle:"checksum") report.Hsq.Persist.errors);
      Hsq_storage.Block_device.close (E.device eng))

let () =
  Alcotest.run "persist"
    [
      ( "round trip",
        [
          Alcotest.test_case "save/load" `Quick test_round_trip;
          Alcotest.test_case "restored engine keeps ingesting" `Quick
            test_restored_engine_keeps_ingesting;
          Alcotest.test_case "recovery io bounded" `Quick test_recovery_io_is_bounded;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "truncated metadata" `Quick test_corrupt_metadata_rejected;
          Alcotest.test_case "bad version" `Quick test_bad_version_rejected;
          Alcotest.test_case "missing device" `Quick test_missing_device_rejected;
          Alcotest.test_case "garbled device" `Quick test_garbled_device_detected;
          Alcotest.test_case "checksum line guards tampering" `Quick
            test_checksum_line_guards_tampering;
          Alcotest.test_case "missing checksum line" `Quick test_missing_checksum_line_rejected;
          Alcotest.test_case "empty field named in error" `Quick test_empty_field_reported_by_name;
          Alcotest.test_case "garbled field" `Quick test_garbled_field_rejected;
        ] );
      ( "atomicity",
        [ Alcotest.test_case "save leaves no residue, re-save works" `Quick test_save_is_atomic ] );
      ( "scrub",
        [
          Alcotest.test_case "healthy warehouse" `Quick test_scrub_healthy;
          Alcotest.test_case "bit rot load misses, scrub catches" `Quick
            test_scrub_catches_bit_rot_load_misses;
        ] );
    ]
