(* Tests for hsq_storage: I/O accounting, block devices (memory and
   file backends, fault injection), sorted runs, k-way merge, external
   sort. *)

open Hsq_storage

let mem_dev ?(block_size = 8) () = Block_device.create_memory ~block_size ()

(* --- Io_stats ------------------------------------------------------ *)

let test_io_stats_classification () =
  let s = Io_stats.create () in
  Io_stats.note_read s 10;
  (* first read: no predecessor -> random *)
  Io_stats.note_read s 11;
  (* sequential *)
  Io_stats.note_read s 13;
  (* skip -> random *)
  Io_stats.note_read ~hint:true s 99;
  (* forced sequential *)
  Io_stats.note_write s 5;
  let c = Io_stats.snapshot s in
  Alcotest.(check int) "reads" 4 c.Io_stats.reads;
  Alcotest.(check int) "seq" 2 c.Io_stats.seq_reads;
  Alcotest.(check int) "rand" 2 c.Io_stats.rand_reads;
  Alcotest.(check int) "writes" 1 c.Io_stats.writes;
  Alcotest.(check int) "total" 5 (Io_stats.total c)

let test_io_stats_measure_and_diff () =
  let s = Io_stats.create () in
  Io_stats.note_read s 1;
  let result, delta = Io_stats.measure s (fun () -> Io_stats.note_write s 2; "x") in
  Alcotest.(check string) "result passthrough" "x" result;
  Alcotest.(check int) "delta writes" 1 delta.Io_stats.writes;
  Alcotest.(check int) "delta reads" 0 delta.Io_stats.reads;
  let sum = Io_stats.add delta delta in
  Alcotest.(check int) "add" 2 sum.Io_stats.writes

(* --- Block_device --------------------------------------------------- *)

let test_device_roundtrip () =
  let dev = mem_dev () in
  let addr = Block_device.alloc dev 2 in
  Block_device.write_block dev ~addr [| 1; 2; 3; 4; 5; 6; 7; 8 |];
  Block_device.write_block dev ~addr:(addr + 1) (Array.make 8 9);
  Alcotest.(check (array int)) "block 0" [| 1; 2; 3; 4; 5; 6; 7; 8 |]
    (Block_device.read_block dev ~addr);
  Alcotest.(check (array int)) "block 1" (Array.make 8 9) (Block_device.read_block dev ~addr:(addr + 1))

let test_device_bad_payload () =
  let dev = mem_dev () in
  let addr = Block_device.alloc dev 1 in
  Alcotest.check_raises "short payload"
    (Invalid_argument "Block_device.write_block: payload must be exactly one block") (fun () ->
      Block_device.write_block dev ~addr [| 1 |])

let test_device_unallocated () =
  let dev = mem_dev () in
  Alcotest.check_raises "read unallocated"
    (Invalid_argument "Block_device.read_block: unallocated address") (fun () ->
      ignore (Block_device.read_block dev ~addr:0))

let test_device_free_and_live () =
  let dev = mem_dev () in
  let a = Block_device.alloc dev 4 in
  Alcotest.(check int) "allocated" 4 (Block_device.allocated_blocks dev);
  Block_device.free dev ~addr:a ~nblocks:2;
  Alcotest.(check int) "live" 2 (Block_device.live_blocks dev);
  Alcotest.(check bool) "freed read fails" true
    (try
       ignore (Block_device.read_block dev ~addr:a);
       false
     with Block_device.Device_error _ -> true)

let test_device_fault_injection () =
  let dev = mem_dev () in
  let addr = Block_device.alloc dev 1 in
  Block_device.write_block dev ~addr (Array.make 8 1);
  Block_device.set_fault dev (Some (fun op _ -> op = Block_device.Read));
  Alcotest.(check bool) "read faults" true
    (try
       ignore (Block_device.read_block dev ~addr);
       false
     with Block_device.Device_error _ -> true);
  Block_device.set_fault dev None;
  Alcotest.(check (array int)) "recovers" (Array.make 8 1) (Block_device.read_block dev ~addr)

(* --- Fault tolerance: retries, checksums, torn writes ---------------- *)

let test_transient_fault_absorbed () =
  let dev = mem_dev () in
  let addr = Block_device.alloc dev 1 in
  Block_device.write_block dev ~addr (Array.make 8 42);
  (* Fail the first two read attempts; the third succeeds. *)
  Block_device.set_injector dev
    (Some
       (fun op ~attempt _ ->
         if op = Block_device.Read && attempt <= 2 then Some Block_device.Fail else None));
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  Alcotest.(check (array int)) "absorbed" (Array.make 8 42) (Block_device.read_block dev ~addr);
  let c = Io_stats.snapshot stats in
  Alcotest.(check int) "retries counted" 2 c.Io_stats.retries;
  Alcotest.(check int) "one successful physical read" 1 c.Io_stats.reads;
  Alcotest.(check int) "no checksum failures" 0 c.Io_stats.checksum_failures

let test_persistent_fault_exhausts_retries () =
  let dev = mem_dev () in
  let addr = Block_device.alloc dev 1 in
  Block_device.write_block dev ~addr (Array.make 8 1);
  Block_device.set_injector dev
    (Some (fun op ~attempt:_ _ -> if op = Block_device.Read then Some Block_device.Fail else None));
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  Alcotest.(check bool) "persistent fault surfaces" true
    (try
       ignore (Block_device.read_block dev ~addr);
       false
     with Block_device.Device_error _ -> true);
  Alcotest.(check int) "all retries spent"
    (Block_device.max_read_attempts - 1)
    (Io_stats.snapshot stats).Io_stats.retries;
  (* Clearing the injector restores service. *)
  Block_device.set_injector dev None;
  Alcotest.(check (array int)) "recovers" (Array.make 8 1) (Block_device.read_block dev ~addr)

let test_corrupt_write_detected () =
  let dev = mem_dev () in
  let addr = Block_device.alloc dev 1 in
  (* A bit-flip on the way to the platter: the stored checksum no
     longer matches the payload, so every read must fail loudly rather
     than serve the damaged block. *)
  Block_device.set_injector dev
    (Some (fun op ~attempt:_ _ -> if op = Block_device.Write then Some (Block_device.Corrupt 3) else None));
  Block_device.write_block dev ~addr [| 1; 2; 3; 4; 5; 6; 7; 8 |];
  Block_device.set_injector dev None;
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  Alcotest.(check bool) "corruption never served" true
    (try
       ignore (Block_device.read_block dev ~addr);
       false
     with Block_device.Device_error msg ->
       Alcotest.(check bool) "mentions checksum" true
         (Str.string_match (Str.regexp ".*checksum mismatch.*") msg 0);
       true);
  Alcotest.(check int) "each attempt failed the checksum" Block_device.max_read_attempts
    (Io_stats.snapshot stats).Io_stats.checksum_failures

let test_torn_write_detected () =
  let dev = mem_dev () in
  let addr = Block_device.alloc dev 1 in
  Block_device.set_injector dev
    (Some (fun op ~attempt:_ _ -> if op = Block_device.Write then Some (Block_device.Torn 4) else None));
  Alcotest.(check bool) "torn write raises" true
    (try
       Block_device.write_block dev ~addr (Array.make 8 5);
       false
     with Block_device.Device_error _ -> true);
  Block_device.set_injector dev None;
  (* The half-written record fails its checksum on read. *)
  Alcotest.(check bool) "torn block never served" true
    (try
       ignore (Block_device.read_block dev ~addr);
       false
     with Block_device.Device_error _ -> true);
  (* Rewriting the block heals it: fresh payload, fresh checksum. *)
  Block_device.write_block dev ~addr (Array.make 8 6);
  Alcotest.(check (array int)) "rewrite heals" (Array.make 8 6) (Block_device.read_block dev ~addr)

let test_file_reopen_tolerates_trailing_tear () =
  let path = Filename.temp_file "hsq_test" ".dev" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let dev = Block_device.create_file ~block_size:4 ~path () in
      let a = Block_device.alloc dev 2 in
      Block_device.write_block dev ~addr:a [| 1; 2; 3; 4 |];
      Block_device.set_injector dev
        (Some
           (fun op ~attempt:_ addr ->
             if op = Block_device.Write && addr = a + 1 then Some (Block_device.Torn 2) else None));
      (* Simulated crash mid-write of block a+1: only a prefix of the
         record reaches the file. *)
      Alcotest.(check bool) "tear raises" true
        (try
           Block_device.write_block dev ~addr:(a + 1) [| 5; 6; 7; 8 |];
           false
         with Block_device.Device_error _ -> true);
      Block_device.close dev;
      (* Reopen: the partial trailing record is floored away; the intact
         block is still readable. *)
      let dev = Block_device.open_file ~block_size:4 ~path () in
      Alcotest.(check int) "partial record floored" 1 (Block_device.allocated_blocks dev);
      ignore (Block_device.alloc dev 1);
      Alcotest.(check (array int)) "intact block survives" [| 1; 2; 3; 4 |]
        (Block_device.read_block dev ~addr:a);
      Block_device.close dev)

let test_file_bit_rot_detected () =
  let path = Filename.temp_file "hsq_test" ".dev" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let dev = Block_device.create_file ~block_size:4 ~path () in
      let addr = Block_device.alloc dev 1 in
      Block_device.write_block dev ~addr [| 10; 20; 30; 40 |];
      Block_device.close dev;
      (* Flip one bit of the second payload word, at rest. *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd 15 Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x04));
      ignore (Unix.lseek fd 15 Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let dev = Block_device.open_file ~block_size:4 ~path () in
      ignore (Block_device.alloc dev 1);
      Alcotest.(check bool) "bit rot caught by checksum" true
        (try
           ignore (Block_device.read_block dev ~addr);
           false
         with Block_device.Device_error msg ->
           Str.string_match (Str.regexp ".*checksum mismatch.*") msg 0);
      Block_device.close dev)

let test_file_backend_roundtrip () =
  let path = Filename.temp_file "hsq_test" ".dev" in
  let dev = Block_device.create_file ~block_size:4 ~path () in
  let addr = Block_device.alloc dev 3 in
  Block_device.write_block dev ~addr [| 10; -20; 30; max_int / 2 |];
  Block_device.write_block dev ~addr:(addr + 2) [| 7; 7; 7; 7 |];
  Alcotest.(check (array int)) "block 0" [| 10; -20; 30; max_int / 2 |]
    (Block_device.read_block dev ~addr);
  Alcotest.(check (array int)) "block 2" [| 7; 7; 7; 7 |] (Block_device.read_block dev ~addr:(addr + 2));
  Block_device.close dev;
  Sys.remove path

(* --- Run ------------------------------------------------------------ *)

let test_run_roundtrip_and_padding () =
  let dev = mem_dev () in
  (* 10 elements over 8-element blocks: a partial tail block. *)
  let data = Array.init 10 (fun i -> i * 2) in
  let run = Run.of_sorted_array dev data in
  Alcotest.(check int) "length" 10 (Run.length run);
  Alcotest.(check int) "nblocks" 2 (Run.nblocks run);
  Alcotest.(check (array int)) "to_array" data (Run.to_array run);
  Alcotest.(check int) "get 9" 18 (Run.get run 9);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Run.get: index out of bounds")
    (fun () -> ignore (Run.get run 10))

let test_run_rejects_unsorted () =
  let dev = mem_dev () in
  Alcotest.check_raises "unsorted" (Invalid_argument "Run.of_sorted_array: not sorted") (fun () ->
      ignore (Run.of_sorted_array dev [| 3; 1 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Run.of_sorted_array: empty run") (fun () ->
      ignore (Run.of_sorted_array dev [||]))

let test_run_rank () =
  let dev = mem_dev () in
  let data = [| 1; 3; 3; 5; 9; 9; 9; 12; 15; 20 |] in
  let run = Run.of_sorted_array dev data in
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "rank %d" v)
        (Hsq_util.Sorted.rank data v) (Run.rank run v))
    [ 0; 1; 2; 3; 4; 9; 10; 20; 21 ]

let test_run_block_cache () =
  let dev = mem_dev ~block_size:4 () in
  let run = Run.of_sorted_array dev (Array.init 16 (fun i -> i)) in
  Run.drop_cache run;
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  ignore (Run.get run 0);
  ignore (Run.get run 1);
  ignore (Run.get run 2);
  (* all in block 0: one physical read *)
  Alcotest.(check int) "cached reads" 1 (Io_stats.snapshot stats).Io_stats.reads;
  ignore (Run.get run 5);
  Alcotest.(check int) "new block read" 2 (Io_stats.snapshot stats).Io_stats.reads

let test_run_rank_between_io_bound () =
  let dev = mem_dev ~block_size:16 () in
  let n = 4096 in
  let run = Run.of_sorted_array dev (Array.init n (fun i -> 2 * i)) in
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  let r = Run.rank_between run ~lo:0 ~hi:n 2001 in
  Alcotest.(check int) "correct rank" 1001 r;
  (* binary search over 4096/16 = 256 blocks: ~log2(4096) = 12 probes max *)
  Alcotest.(check bool) "io within log bound" true ((Io_stats.snapshot stats).Io_stats.reads <= 13)

let test_run_writer_matches_of_sorted_array () =
  let dev = mem_dev ~block_size:4 () in
  let data = Array.init 11 (fun i -> i * i) in
  let w = Run.writer dev ~length:11 in
  Array.iter (Run.writer_push w) data;
  let run = Run.writer_finish w in
  Alcotest.(check (array int)) "roundtrip" data (Run.to_array run)

let test_run_writer_validation () =
  let dev = mem_dev () in
  let w = Run.writer dev ~length:2 in
  Run.writer_push w 5;
  Alcotest.check_raises "descending push" (Invalid_argument "Run.writer_push: values must be ascending")
    (fun () -> Run.writer_push w 4);
  Alcotest.check_raises "short finish"
    (Invalid_argument "Run.writer_finish: wrote 1 of 2 declared values") (fun () ->
      ignore (Run.writer_finish w))

let test_run_cursor () =
  let dev = mem_dev ~block_size:4 () in
  let data = Array.init 9 (fun i -> i + 100) in
  let run = Run.of_sorted_array dev data in
  let c = Run.cursor run in
  let collected = ref [] in
  let rec drain () =
    match Run.cursor_next c with
    | Some v ->
      collected := v :: !collected;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "cursor sees all" (Array.to_list data) (List.rev !collected)

let test_run_free () =
  let dev = mem_dev () in
  let run = Run.of_sorted_array dev [| 1; 2; 3 |] in
  Run.free run;
  Run.free run;
  (* idempotent *)
  Alcotest.check_raises "freed get" (Invalid_argument "Run.get: run has been freed") (fun () ->
      ignore (Run.get run 0))

(* --- Kway_merge ------------------------------------------------------ *)

let test_kway_merge_basic () =
  let dev = mem_dev ~block_size:4 () in
  let r1 = Run.of_sorted_array dev [| 1; 5; 9 |] in
  let r2 = Run.of_sorted_array dev [| 2; 5; 20 |] in
  let r3 = Run.of_sorted_array dev [| 0; 30 |] in
  let seen = ref [] in
  let merged = Kway_merge.merge ~observe:(fun i v -> seen := (i, v) :: !seen) dev [ r1; r2; r3 ] in
  Alcotest.(check (array int)) "merged" [| 0; 1; 2; 5; 5; 9; 20; 30 |] (Run.to_array merged);
  Alcotest.(check (list (pair int int)))
    "observe saw everything in order"
    [ (0, 0); (1, 1); (2, 2); (3, 5); (4, 5); (5, 9); (6, 20); (7, 30) ]
    (List.rev !seen)

let test_kway_merge_requires_two () =
  let dev = mem_dev () in
  let r = Run.of_sorted_array dev [| 1 |] in
  Alcotest.check_raises "one run" (Invalid_argument "Kway_merge.merge: need at least two runs")
    (fun () -> ignore (Kway_merge.merge dev [ r ]))

let test_kway_merge_io_is_single_pass () =
  let dev = mem_dev ~block_size:8 () in
  let mk n = Run.of_sorted_array dev (Array.init n (fun i -> i)) in
  let r1 = mk 64 and r2 = mk 64 and r3 = mk 64 in
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  let merged = Kway_merge.merge dev [ r1; r2; r3 ] in
  let c = Io_stats.snapshot stats in
  let in_blocks = Run.nblocks r1 + Run.nblocks r2 + Run.nblocks r3 in
  Alcotest.(check int) "reads = input blocks" in_blocks c.Io_stats.reads;
  Alcotest.(check int) "reads all sequential" c.Io_stats.reads c.Io_stats.seq_reads;
  Alcotest.(check int) "writes = output blocks" (Run.nblocks merged) c.Io_stats.writes

let prop_kway_merge_multiset =
  QCheck.Test.make ~name:"kway merge: sorted, complete multiset" ~count:100
    QCheck.(list_of_size Gen.(2 -- 6) (list_of_size Gen.(1 -- 40) small_int))
    (fun lists ->
      let dev = mem_dev ~block_size:4 () in
      let runs =
        List.map (fun l -> Run.of_sorted_array dev (Array.of_list (List.sort compare l))) lists
      in
      let merged = Kway_merge.merge dev runs in
      let out = Array.to_list (Run.to_array merged) in
      Hsq_util.Sorted.is_sorted (Array.of_list out)
      && List.sort compare out = List.sort compare (List.concat lists))

(* --- External_sort ---------------------------------------------------- *)

let test_external_sort_in_memory () =
  let dev = mem_dev ~block_size:4 () in
  let run, report = External_sort.sort dev [| 5; 1; 4; 1; 3 |] in
  Alcotest.(check (array int)) "sorted" [| 1; 1; 3; 4; 5 |] (Run.to_array run);
  Alcotest.(check int) "no passes" 0 report.External_sort.passes

let test_external_sort_spill () =
  let dev = mem_dev ~block_size:4 () in
  let rng = Hsq_util.Xoshiro.create 21 in
  let batch = Array.init 1000 (fun _ -> Hsq_util.Xoshiro.int rng 10_000) in
  let seen = ref 0 in
  let run, report =
    External_sort.sort ~memory_elements:64 ~observe:(fun _ _ -> incr seen) dev batch
  in
  let expected = Array.copy batch in
  Array.sort compare expected;
  Alcotest.(check (array int)) "sorted" expected (Run.to_array run);
  Alcotest.(check bool) "spilled" true (report.External_sort.temp_runs > 0);
  Alcotest.(check bool) "merge passes happened" true (report.External_sort.passes >= 1);
  Alcotest.(check int) "observe saw final output" 1000 !seen

let test_external_sort_empty () =
  let dev = mem_dev () in
  Alcotest.check_raises "empty" (Invalid_argument "External_sort.sort: empty batch") (fun () ->
      ignore (External_sort.sort dev [||]))

let prop_external_sort_multiset =
  QCheck.Test.make ~name:"external sort: sorted, complete multiset" ~count:60
    QCheck.(pair (list_of_size Gen.(1 -- 500) small_int) (int_range 8 64))
    (fun (l, budget) ->
      let dev = mem_dev ~block_size:4 () in
      let run, _ = External_sort.sort ~memory_elements:budget dev (Array.of_list l) in
      let out = Array.to_list (Run.to_array run) in
      out = List.sort compare l)


(* --- Lru --------------------------------------------------------------- *)

let test_lru_basics () =
  let l = Lru.create ~capacity:2 in
  Lru.put l 1 [| 10 |];
  Lru.put l 2 [| 20 |];
  Alcotest.(check bool) "find 1" true (Lru.find l 1 = Some [| 10 |]);
  (* 2 is now LRU; inserting 3 evicts it *)
  Lru.put l 3 [| 30 |];
  Alcotest.(check bool) "2 evicted" false (Lru.mem l 2);
  Alcotest.(check bool) "1 kept" true (Lru.mem l 1);
  Alcotest.(check int) "size" 2 (Lru.size l);
  Alcotest.(check int) "hits" 1 (Lru.hits l);
  Alcotest.(check int) "misses" 0 (Lru.misses l)

let test_lru_update_refreshes () =
  let l = Lru.create ~capacity:2 in
  Lru.put l 1 [| 1 |];
  Lru.put l 2 [| 2 |];
  Lru.put l 1 [| 11 |];
  (* refresh 1: 2 becomes LRU *)
  Lru.put l 3 [| 3 |];
  Alcotest.(check bool) "2 evicted after refresh" false (Lru.mem l 2);
  Alcotest.(check bool) "1 updated" true (Lru.find l 1 = Some [| 11 |])

let test_lru_remove_and_clear () =
  let l = Lru.create ~capacity:4 in
  List.iter (fun k -> Lru.put l k [| k |]) [ 1; 2; 3 ];
  Lru.remove l 2;
  Alcotest.(check int) "size after remove" 2 (Lru.size l);
  Lru.remove l 99;
  (* no-op *)
  Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Lru.size l);
  (* reusable after clear *)
  Lru.put l 5 [| 5 |];
  Alcotest.(check bool) "works after clear" true (Lru.mem l 5)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"LRU size never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (list (int_bound 20)))
    (fun (cap, keys) ->
      let l = Lru.create ~capacity:cap in
      List.for_all
        (fun k ->
          Lru.put l k [| k |];
          Lru.size l <= cap)
        keys)

(* --- Buffer pool ---------------------------------------------------------- *)

let test_pool_serves_hits_without_io () =
  let dev = mem_dev ~block_size:4 () in
  let run = Run.of_sorted_array dev (Array.init 64 (fun i -> i)) in
  Run.set_cache_enabled run false;
  (* isolate the pool from the run cache *)
  Block_device.enable_pool dev ~capacity:32;
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  ignore (Run.get run 0);
  ignore (Run.get run 0);
  ignore (Run.get run 1);
  (* same block: pooled *)
  Alcotest.(check int) "one physical read" 1 (Io_stats.snapshot stats).Io_stats.reads;
  (match Block_device.pool_stats dev with
  | Some (hits, misses) ->
    Alcotest.(check int) "hits" 2 hits;
    Alcotest.(check int) "misses" 1 misses
  | None -> Alcotest.fail "pool missing");
  Block_device.disable_pool dev

let test_pool_write_through_and_invalidate () =
  let dev = mem_dev ~block_size:4 () in
  Block_device.enable_pool dev ~capacity:8;
  let addr = Block_device.alloc dev 1 in
  Block_device.write_block dev ~addr [| 1; 2; 3; 4 |];
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  (* write populated the pool: read is free *)
  Alcotest.(check (array int)) "read back" [| 1; 2; 3; 4 |] (Block_device.read_block dev ~addr);
  Alcotest.(check int) "no physical read" 0 (Io_stats.snapshot stats).Io_stats.reads;
  (* freeing invalidates *)
  Block_device.free dev ~addr ~nblocks:1;
  Alcotest.(check bool) "freed read fails despite pool" true
    (try
       ignore (Block_device.read_block dev ~addr);
       false
     with Block_device.Device_error _ | Invalid_argument _ -> true);
  Block_device.disable_pool dev

let test_pool_capacity_evicts () =
  let dev = mem_dev ~block_size:4 () in
  let run = Run.of_sorted_array dev (Array.init 64 (fun i -> i)) in
  Run.set_cache_enabled run false;
  Block_device.enable_pool dev ~capacity:2;
  let stats = Block_device.stats dev in
  Io_stats.reset stats;
  (* touch blocks 0,1,2 then 0 again: 0 was evicted -> physical read *)
  ignore (Run.get run 0);
  ignore (Run.get run 4);
  ignore (Run.get run 8);
  ignore (Run.get run 0);
  Alcotest.(check int) "4 physical reads" 4 (Io_stats.snapshot stats).Io_stats.reads;
  Block_device.disable_pool dev

(* --- Breaker & backoff ---------------------------------------------- *)

let test_backoff_deterministic () =
  let p = { Breaker.Backoff.base_ms = 1.0; cap_ms = 50.0; max_attempts = 6 } in
  let a = Breaker.Backoff.delays p ~seed:42 in
  let b = Breaker.Backoff.delays p ~seed:42 in
  Alcotest.(check (array (float 0.0))) "same seed, same schedule" a b;
  Alcotest.(check bool) "different seed, different schedule" true
    (a <> Breaker.Backoff.delays p ~seed:43);
  Alcotest.(check int) "n attempts yield n-1 waits" 5 (Array.length a);
  (* decorrelated jitter: each delay in [base, min (cap, 3 * previous)] *)
  let prev = ref p.Breaker.Backoff.base_ms in
  Array.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in [%.1f, %.1f]" i p.Breaker.Backoff.base_ms
           (Float.min p.Breaker.Backoff.cap_ms (3.0 *. !prev)))
        true
        (d >= p.Breaker.Backoff.base_ms
        && d <= Float.min p.Breaker.Backoff.cap_ms (3.0 *. !prev));
      prev := d)
    a

let test_backoff_cap_and_edge_policies () =
  (* a tight cap binds every delay *)
  let tight = { Breaker.Backoff.base_ms = 4.0; cap_ms = 5.0; max_attempts = 12 } in
  Array.iter
    (fun d -> Alcotest.(check bool) "cap respected" true (d >= 4.0 && d <= 5.0))
    (Breaker.Backoff.delays tight ~seed:7);
  (* the never-retry policy has the empty schedule: zero sleeps *)
  let once = { Breaker.Backoff.default with Breaker.Backoff.max_attempts = 1 } in
  Alcotest.(check int) "never-retry: no waits" 0 (Array.length (Breaker.Backoff.delays once ~seed:1));
  (* malformed policies are rejected, not silently clamped *)
  Alcotest.check_raises "zero attempts rejected"
    (Invalid_argument "Backoff: max_attempts must be >= 1") (fun () ->
      ignore
        (Breaker.Backoff.delays
           { Breaker.Backoff.default with Breaker.Backoff.max_attempts = 0 }
           ~seed:1));
  Alcotest.check_raises "cap below base rejected"
    (Invalid_argument "Backoff: cap_ms must be >= base_ms") (fun () ->
      ignore
        (Breaker.Backoff.delays
           { Breaker.Backoff.base_ms = 2.0; cap_ms = 1.0; max_attempts = 3 }
           ~seed:1))

(* The full transition table, driven by a fake clock (no sleeping). *)
let test_breaker_transition_table () =
  let clock = ref 0.0 in
  let reg = Hsq_obs.Metrics.create () in
  let b =
    Breaker.create ~metrics:reg ~now:(fun () -> !clock) ~failure_threshold:3 ~cooldown_s:10.0 ()
  in
  let check_state msg expected =
    Alcotest.(check string) msg (Breaker.state_to_string expected)
      (Breaker.state_to_string (Breaker.state b))
  in
  check_state "starts closed" Breaker.Closed;
  Alcotest.(check bool) "closed admits" true (Breaker.allow b);
  (* sub-threshold failures stay closed; a success resets the count *)
  Breaker.failure b;
  Breaker.failure b;
  check_state "two failures stay closed" Breaker.Closed;
  Breaker.success b;
  Breaker.failure b;
  Breaker.failure b;
  check_state "success reset the streak" Breaker.Closed;
  Breaker.failure b;
  check_state "third consecutive failure trips" Breaker.Open;
  Alcotest.(check bool) "open short-circuits" false (Breaker.allow b);
  Alcotest.(check (option (float 0.0))) "gauge reads open" (Some 1.0)
    (Hsq_obs.Metrics.gauge_value reg "hsq_breaker_state");
  (* cooldown elapsed: exactly one half-open trial ticket *)
  clock := 11.0;
  Alcotest.(check bool) "cooldown admits one trial" true (Breaker.allow b);
  check_state "half-open" Breaker.Half_open;
  Alcotest.(check (option (float 0.0))) "gauge reads half-open" (Some 2.0)
    (Hsq_obs.Metrics.gauge_value reg "hsq_breaker_state");
  Alcotest.(check bool) "second trial refused while one is out" false (Breaker.allow b);
  (* trial failure reopens and restarts the cooldown *)
  Breaker.failure b;
  check_state "trial failure reopens" Breaker.Open;
  Alcotest.(check bool) "cooldown restarted" false (Breaker.allow b);
  clock := 22.0;
  Alcotest.(check bool) "new trial after the new cooldown" true (Breaker.allow b);
  Breaker.success b;
  check_state "trial success closes" Breaker.Closed;
  Alcotest.(check (option (float 0.0))) "gauge reads closed" (Some 0.0)
    (Hsq_obs.Metrics.gauge_value reg "hsq_breaker_state");
  (* Closed->Open, Open->Half_open, Half_open->Open, Open->Half_open,
     Half_open->Closed: five transitions so far *)
  Alcotest.(check (option int)) "transitions counted" (Some 5)
    (Hsq_obs.Metrics.counter_value reg "hsq_breaker_transitions_total");
  (* reset: clean slate regardless of state *)
  Breaker.failure b;
  Breaker.failure b;
  Breaker.failure b;
  check_state "trips again" Breaker.Open;
  Breaker.reset b;
  check_state "reset forces closed" Breaker.Closed;
  Alcotest.(check bool) "admits after reset" true (Breaker.allow b)

(* Half-open under contention: when the cooldown expires with many
   threads racing [allow], exactly one wins the trial ticket — the
   others stay short-circuited until that trial resolves.  This is the
   property the serve daemon leans on: a recovering device sees one
   probe, not a thundering herd of concurrent queries. *)
let test_breaker_half_open_race () =
  let clock = ref 0.0 in
  let b = Breaker.create ~now:(fun () -> !clock) ~failure_threshold:1 ~cooldown_s:5.0 () in
  Breaker.failure b;
  Alcotest.(check string) "tripped"
    (Breaker.state_to_string Breaker.Open)
    (Breaker.state_to_string (Breaker.state b));
  clock := 6.0;
  let racers = 16 in
  let barrier = Atomic.make 0 in
  let domains =
    List.init racers (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < racers do
              Domain.cpu_relax ()
            done;
            Breaker.allow b))
  in
  let granted = List.filter Fun.id (List.map Domain.join domains) in
  Alcotest.(check int) "exactly one trial ticket" 1 (List.length granted);
  Alcotest.(check string) "half-open while the trial is out"
    (Breaker.state_to_string Breaker.Half_open)
    (Breaker.state_to_string (Breaker.state b));
  (* losers keep losing until the trial resolves; then one success
     closes and everyone is admitted again *)
  Alcotest.(check bool) "no second ticket" false (Breaker.allow b);
  Breaker.success b;
  Alcotest.(check string) "trial success closes"
    (Breaker.state_to_string Breaker.Closed)
    (Breaker.state_to_string (Breaker.state b));
  Alcotest.(check bool) "closed admits all" true (Breaker.allow b)

let () =
  Alcotest.run "storage"
    [
      ( "io_stats",
        [
          Alcotest.test_case "classification" `Quick test_io_stats_classification;
          Alcotest.test_case "measure/diff/add" `Quick test_io_stats_measure_and_diff;
        ] );
      ( "block_device",
        [
          Alcotest.test_case "roundtrip" `Quick test_device_roundtrip;
          Alcotest.test_case "bad payload" `Quick test_device_bad_payload;
          Alcotest.test_case "unallocated" `Quick test_device_unallocated;
          Alcotest.test_case "free / live accounting" `Quick test_device_free_and_live;
          Alcotest.test_case "fault injection" `Quick test_device_fault_injection;
          Alcotest.test_case "file backend" `Quick test_file_backend_roundtrip;
        ] );
      ( "fault_tolerance",
        [
          Alcotest.test_case "transient fault absorbed by retries" `Quick
            test_transient_fault_absorbed;
          Alcotest.test_case "persistent fault exhausts retries" `Quick
            test_persistent_fault_exhausts_retries;
          Alcotest.test_case "corrupt write caught by checksum" `Quick test_corrupt_write_detected;
          Alcotest.test_case "torn write caught + rewrite heals" `Quick test_torn_write_detected;
          Alcotest.test_case "reopen floors a trailing tear" `Quick
            test_file_reopen_tolerates_trailing_tear;
          Alcotest.test_case "at-rest bit rot caught by checksum" `Quick
            test_file_bit_rot_detected;
        ] );
      ( "run",
        [
          Alcotest.test_case "roundtrip + padding" `Quick test_run_roundtrip_and_padding;
          Alcotest.test_case "rejects unsorted/empty" `Quick test_run_rejects_unsorted;
          Alcotest.test_case "rank" `Quick test_run_rank;
          Alcotest.test_case "block cache" `Quick test_run_block_cache;
          Alcotest.test_case "rank_between io bound" `Quick test_run_rank_between_io_bound;
          Alcotest.test_case "writer" `Quick test_run_writer_matches_of_sorted_array;
          Alcotest.test_case "writer validation" `Quick test_run_writer_validation;
          Alcotest.test_case "cursor" `Quick test_run_cursor;
          Alcotest.test_case "free" `Quick test_run_free;
        ] );
      ( "kway_merge",
        [
          Alcotest.test_case "basic + observe" `Quick test_kway_merge_basic;
          Alcotest.test_case "requires two runs" `Quick test_kway_merge_requires_two;
          Alcotest.test_case "single pass io" `Quick test_kway_merge_io_is_single_pass;
          QCheck_alcotest.to_alcotest prop_kway_merge_multiset;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "update refreshes" `Quick test_lru_update_refreshes;
          Alcotest.test_case "remove / clear" `Quick test_lru_remove_and_clear;
          QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hits cost no io" `Quick test_pool_serves_hits_without_io;
          Alcotest.test_case "write-through + invalidate" `Quick
            test_pool_write_through_and_invalidate;
          Alcotest.test_case "capacity evicts" `Quick test_pool_capacity_evicts;
        ] );
      ( "external_sort",
        [
          Alcotest.test_case "in-memory" `Quick test_external_sort_in_memory;
          Alcotest.test_case "spill path" `Quick test_external_sort_spill;
          Alcotest.test_case "empty raises" `Quick test_external_sort_empty;
          QCheck_alcotest.to_alcotest prop_external_sort_multiset;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
          Alcotest.test_case "backoff cap and edge policies" `Quick
            test_backoff_cap_and_edge_policies;
          Alcotest.test_case "transition table" `Quick test_breaker_transition_table;
          Alcotest.test_case "half-open race grants one ticket" `Quick
            test_breaker_half_open_race;
        ] );
    ]
