(* Durable ingest path: WAL + sketch checkpoints + recovery manager.

   Deterministic scenario tests (the randomized kill-at-random-point
   fuzz lives in test_crash_recovery):

   - a recovered engine is bit-identical in its answers to one that
     never crashed (replay reproduces the exact insert sequence);
   - recovery past a checkpoint replays only the WAL suffix (asserted
     via the wal_replayed counter and the recovery report);
   - empty rollovers ([ingest_batch [||]] / [end_time_step] with no
     open element) raise before any WAL write and corrupt nothing;
   - group-commit loss is exactly the unflushed window, and [Never]
     loses the whole unsynced open step;
   - the End_step marker protocol is exactly-once: a marker for an
     already-committed step replays as a skip, never a double archive,
     and recovery itself is idempotent;
   - torn WAL tails are floored and physically truncated;
   - stale or corrupt checkpoints are ignored in favour of full replay. *)

module E = Hsq.Engine
module W = Hsq_storage.Wal

let eps = 0.05
let block_size = 16

let with_store f =
  let dir = Filename.temp_file "hsq_durable" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let config ?(wal_sync = W.Always) ?(checkpoint_every = 0) ?(stream_sketch = `Gk) dir =
  Hsq.Config.make ~kappa:3 ~block_size ~wal_dir:dir ~wal_sync ~checkpoint_every ~stream_sketch
    (Hsq.Config.Epsilon eps)

let el seed i = (i * 2654435761) lxor seed

(* Reference: the same element sequence through a volatile engine. *)
let reference_engine ?(stream_sketch = `Gk) elements step_breaks =
  let eng =
    E.create (Hsq.Config.make ~kappa:3 ~block_size ~stream_sketch (Hsq.Config.Epsilon eps))
  in
  List.iteri
    (fun i v ->
      E.observe eng v;
      if List.mem (i + 1) step_breaks then ignore (E.end_time_step eng))
    elements;
  eng

let check_matches_reference ~msg recovered reference =
  Alcotest.(check int) (msg ^ ": total size") (E.total_size reference) (E.total_size recovered);
  Alcotest.(check int) (msg ^ ": time steps") (E.time_steps reference) (E.time_steps recovered);
  let n = E.total_size recovered in
  if n > 0 then
    List.iter
      (fun phi ->
        let r = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
        let expect, _ = E.accurate reference ~rank:r in
        let got, _ = E.accurate recovered ~rank:r in
        Alcotest.(check int) (Printf.sprintf "%s: rank %d" msg r) expect got)
      [ 0.1; 0.5; 0.9; 1.0 ]

(* --- round trip: recovery == never crashed --------------------------- *)

let test_round_trip_close () =
  with_store (fun dir ->
      let elements = List.init 700 (el 11) in
      let breaks = [ 200; 400; 550 ] in
      let eng, _ = E.open_or_recover (config ~checkpoint_every:64 dir) in
      List.iteri
        (fun i v ->
          E.observe eng v;
          if List.mem (i + 1) breaks then ignore (E.end_time_step eng))
        elements;
      E.close eng;
      let recovered, report = E.open_or_recover (config dir) in
      Alcotest.(check (option string)) "clean tail" None report.E.wal_tail;
      check_matches_reference ~msg:"close/reopen" recovered (reference_engine elements breaks);
      E.close recovered)

let test_round_trip_crash () =
  with_store (fun dir ->
      (* sync=Always: even a power cut loses nothing acknowledged. *)
      let elements = List.init 500 (el 23) in
      let breaks = [ 150; 300 ] in
      let eng, _ = E.open_or_recover (config dir) in
      List.iteri
        (fun i v ->
          E.observe eng v;
          if List.mem (i + 1) breaks then ignore (E.end_time_step eng))
        elements;
      E.crash eng;
      let recovered, _ = E.open_or_recover (config dir) in
      check_matches_reference ~msg:"crash/recover" recovered (reference_engine elements breaks);
      Alcotest.(check (list string))
        "invariants" []
        (Hsq_hist.Level_index.check_invariants (E.hist recovered));
      E.close recovered)

(* --- checkpoints bound the replay ------------------------------------ *)

let test_replay_only_past_checkpoint () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config ~checkpoint_every:100 dir) in
      for i = 1 to 350 do
        E.observe eng (el 31 i)
      done;
      (* Checkpoints fired at observes 100, 200, 300 — the last covers
         WAL seq 300, so recovery must replay exactly 301..350. *)
      E.crash eng;
      let recovered, report = E.open_or_recover (config ~checkpoint_every:100 dir) in
      Alcotest.(check bool) "checkpoint used" true report.E.checkpoint_used;
      Alcotest.(check int) "replayed only the suffix" 50 report.E.replayed;
      let stats =
        Hsq_storage.Io_stats.snapshot (Hsq_storage.Block_device.stats (E.device recovered))
      in
      Alcotest.(check int) "wal_replayed counter agrees" 50
        stats.Hsq_storage.Io_stats.wal_replayed;
      Alcotest.(check int) "nothing lost" 350 (E.total_size recovered);
      check_matches_reference ~msg:"checkpointed recovery" recovered
        (reference_engine (List.init 350 (fun i -> el 31 (i + 1))) []);
      E.close recovered)

let test_checkpoint_now () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config dir) in
      for i = 1 to 40 do
        E.observe eng (el 37 i)
      done;
      E.checkpoint_now eng;
      (match E.durability_status eng with
      | None -> Alcotest.fail "durable engine reports no status"
      | Some s ->
        Alcotest.(check int) "checkpoint covers the whole log" 40 s.E.last_checkpoint_seq;
        Alcotest.(check int) "nothing pending after checkpoint sync" 0 s.E.wal_pending);
      E.crash eng;
      let recovered, report = E.open_or_recover (config dir) in
      Alcotest.(check bool) "checkpoint used" true report.E.checkpoint_used;
      Alcotest.(check int) "no replay needed" 0 report.E.replayed;
      Alcotest.(check int) "all recovered" 40 (E.total_size recovered);
      E.close recovered)

(* --- empty rollovers are pure no-ops --------------------------------- *)

let test_empty_rollover_is_noop () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config dir) in
      let batch = Array.init 120 (el 41) in
      ignore (E.ingest_batch eng batch);
      let wal_before =
        match E.durability_status eng with Some s -> s.E.wal_next_seq | None -> assert false
      in
      Alcotest.check_raises "end_time_step on empty open step"
        (Invalid_argument "Engine.end_time_step: empty batch") (fun () ->
          ignore (E.end_time_step eng));
      Alcotest.check_raises "ingest_batch [||]"
        (Invalid_argument "Engine.end_time_step: empty batch") (fun () ->
          ignore (E.ingest_batch eng [||]));
      (match E.durability_status eng with
      | Some s ->
        Alcotest.(check int) "no WAL records written by empty rollovers" wal_before
          s.E.wal_next_seq
      | None -> assert false);
      (* The store must still commit further steps and recover cleanly. *)
      let batch2 = Array.init 90 (fun i -> el 43 (i + 1000)) in
      ignore (E.ingest_batch eng batch2);
      E.crash eng;
      let recovered, report = E.open_or_recover (config dir) in
      Alcotest.(check int) "both steps committed" 2 (E.time_steps recovered);
      Alcotest.(check int) "no replay of committed data" 0 report.E.replayed;
      Alcotest.(check int) "all elements" 210 (E.total_size recovered);
      E.close recovered)

(* --- loss bounds per sync policy ------------------------------------- *)

let test_group_commit_loss_bound () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config ~wal_sync:(W.Group 10) dir) in
      for i = 1 to 57 do
        E.observe eng (el 47 i)
      done;
      E.crash eng;
      (* 50 flushed by five full windows; the 7-record tail was pending. *)
      let recovered, _ = E.open_or_recover (config ~wal_sync:(W.Group 10) dir) in
      Alcotest.(check int) "exactly the flushed prefix survives" 50 (E.total_size recovered);
      check_matches_reference ~msg:"group-commit prefix" recovered
        (reference_engine (List.init 50 (fun i -> el 47 (i + 1))) []);
      E.close recovered)

let test_never_sync_loses_open_tail () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config ~wal_sync:W.Never dir) in
      let batch = Array.init 80 (el 53) in
      ignore (E.ingest_batch eng batch);
      (* The commit marker forces a sync even under Never … *)
      for i = 1 to 30 do
        E.observe eng (el 59 i)
      done;
      (* … but the open tail after it was never flushed. *)
      E.crash eng;
      let recovered, _ = E.open_or_recover (config ~wal_sync:W.Never dir) in
      Alcotest.(check int) "committed step survives" 1 (E.time_steps recovered);
      Alcotest.(check int) "open tail lost" 80 (E.total_size recovered);
      E.close recovered)

(* --- exactly-once rollover ------------------------------------------- *)

(* Fabricate the crash window between the sidecar write (commit) and
   the WAL rotation: the warehouse already holds the step, but the log
   still carries its observes and End_step marker. *)
let fabricate_unrotated_wal ~dir ~observes ~step =
  let _, _, wal_path, _ = E.store_paths ~dir in
  let stats = Hsq_storage.Io_stats.create () in
  let wal = W.create ~stats ~path:wal_path ~start_seq:1 () in
  Array.iter (fun v -> ignore (W.append wal (W.Observe v))) observes;
  ignore (W.append wal (W.End_step { step; count = Array.length observes }));
  W.close wal

let test_committed_marker_skipped () =
  with_store (fun dir ->
      let batch = Array.init 100 (el 61) in
      let eng, _ = E.open_or_recover (config dir) in
      ignore (E.ingest_batch eng batch);
      E.close eng;
      fabricate_unrotated_wal ~dir ~observes:batch ~step:1;
      let recovered, report = E.open_or_recover (config dir) in
      Alcotest.(check int) "marker replayed as a skip" 1 report.E.steps_skipped;
      Alcotest.(check int) "nothing re-archived" 0 report.E.steps_reingested;
      Alcotest.(check int) "records replayed" 101 report.E.replayed;
      Alcotest.(check int) "still one step" 1 (E.time_steps recovered);
      Alcotest.(check int) "never a double archive" 100 (E.total_size recovered);
      E.close recovered)

let test_uncommitted_marker_reingested () =
  with_store (fun dir ->
      let batch = Array.init 100 (el 67) in
      let eng, _ = E.open_or_recover (config dir) in
      ignore (E.ingest_batch eng batch);
      E.close eng;
      (* A marker for step 2, whose sidecar write never happened. *)
      let batch2 = Array.init 70 (fun i -> el 71 (i + 500)) in
      fabricate_unrotated_wal ~dir ~observes:batch2 ~step:2;
      let recovered, report = E.open_or_recover (config dir) in
      Alcotest.(check int) "step re-archived from the log" 1 report.E.steps_reingested;
      Alcotest.(check int) "no skips" 0 report.E.steps_skipped;
      Alcotest.(check int) "two steps" 2 (E.time_steps recovered);
      Alcotest.(check int) "both batches" 170 (E.total_size recovered);
      check_matches_reference ~msg:"re-archived step" recovered
        (reference_engine (Array.to_list batch @ Array.to_list batch2) [ 100; 170 ]);
      E.close recovered)

let test_recovery_idempotent () =
  with_store (fun dir ->
      let batch = Array.init 100 (el 73) in
      let eng, _ = E.open_or_recover (config dir) in
      ignore (E.ingest_batch eng batch);
      E.close eng;
      fabricate_unrotated_wal ~dir ~observes:batch ~step:1;
      (* Crash immediately after recovery, twice: each pass must land in
         the same state (the un-rotated log replays as skips). *)
      let first, r1 = E.open_or_recover (config dir) in
      let size1 = E.total_size first and steps1 = E.time_steps first in
      E.crash first;
      let second, r2 = E.open_or_recover (config dir) in
      Alcotest.(check int) "same size either pass" size1 (E.total_size second);
      Alcotest.(check int) "same steps either pass" steps1 (E.time_steps second);
      Alcotest.(check int) "same skips either pass" r1.E.steps_skipped r2.E.steps_skipped;
      E.close second)

(* --- torn tails ------------------------------------------------------- *)

let test_torn_tail_floored () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config dir) in
      for i = 1 to 20 do
        E.observe eng (el 79 i)
      done;
      E.crash eng;
      let _, _, wal_path, _ = E.store_paths ~dir in
      (* Tear the last record mid-word: 5 bytes off the end. *)
      let size = (Unix.stat wal_path).Unix.st_size in
      let fd = Unix.openfile wal_path [ Unix.O_RDWR ] 0 in
      Unix.ftruncate fd (size - 5);
      Unix.close fd;
      let recovered, report = E.open_or_recover (config dir) in
      (match report.E.wal_tail with
      | Some _ -> ()
      | None -> Alcotest.fail "torn tail not reported");
      Alcotest.(check int) "floored to the valid prefix" 19 (E.total_size recovered);
      (* The tear was physically truncated: appends keep working and the
         next recovery is clean. *)
      for i = 1 to 5 do
        E.observe recovered (el 83 i)
      done;
      E.crash recovered;
      let again, report2 = E.open_or_recover (config dir) in
      Alcotest.(check (option string)) "clean after truncation" None report2.E.wal_tail;
      Alcotest.(check int) "prefix plus new appends" 24 (E.total_size again);
      E.close again)

(* --- checkpoint staleness / corruption -------------------------------- *)

let test_stale_checkpoint_ignored () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config dir) in
      for i = 1 to 60 do
        E.observe eng (el 89 i)
      done;
      E.crash eng;
      (* A checkpoint claiming a warehouse state that never committed. *)
      let _, _, _, ckpt_path = E.store_paths ~dir in
      Hsq.Checkpoint.save ~path:ckpt_path
        { Hsq.Checkpoint.seq = 30; steps_done = 5; batch = [| 1; 2; 3 |]; gk = [| 0 |]; lane_seqs = [||] };
      let recovered, report = E.open_or_recover (config dir) in
      Alcotest.(check bool) "stale checkpoint ignored" false report.E.checkpoint_used;
      Alcotest.(check int) "full replay instead" 60 report.E.replayed;
      Alcotest.(check int) "correct state" 60 (E.total_size recovered);
      E.close recovered)

let test_corrupt_checkpoint_ignored () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config ~checkpoint_every:16 dir) in
      for i = 1 to 48 do
        E.observe eng (el 97 i)
      done;
      E.crash eng;
      let _, _, _, ckpt_path = E.store_paths ~dir in
      let oc = open_out_bin ckpt_path in
      output_string oc "hsq-ckpt 1\nnot a checkpoint at all\n";
      close_out oc;
      let recovered, report = E.open_or_recover (config ~checkpoint_every:16 dir) in
      Alcotest.(check bool) "corrupt checkpoint treated as absent" false
        report.E.checkpoint_used;
      Alcotest.(check int) "full replay recovers everything" 48 (E.total_size recovered);
      E.close recovered)

(* --- KLL stream sketch: the same durability story ---------------------- *)

(* The stream-sketch kind is runtime policy, not persisted state: the
   checkpoint image is tagged with the kind that wrote it, and a
   kind-mismatched (or damaged) image reads as absent, falling back to
   full WAL replay into a fresh sketch of the configured kind. *)

let test_kll_round_trip_crash () =
  with_store (fun dir ->
      let elements = List.init 500 (el 101) in
      let breaks = [ 150; 300 ] in
      let eng, _ = E.open_or_recover (config ~stream_sketch:`Kll dir) in
      Alcotest.(check string) "runs the kll sketch" "kll" (E.sketch_label eng);
      List.iteri
        (fun i v ->
          E.observe eng v;
          if List.mem (i + 1) breaks then ignore (E.end_time_step eng))
        elements;
      E.crash eng;
      let recovered, _ = E.open_or_recover (config ~stream_sketch:`Kll dir) in
      Alcotest.(check string) "kll after recovery" "kll" (E.sketch_label recovered);
      check_matches_reference ~msg:"kll crash/recover" recovered
        (reference_engine ~stream_sketch:`Kll elements breaks);
      E.close recovered)

let test_kll_checkpoint_bounds_replay () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config ~checkpoint_every:100 ~stream_sketch:`Kll dir) in
      for i = 1 to 350 do
        E.observe eng (el 103 i)
      done;
      E.crash eng;
      let recovered, report =
        E.open_or_recover (config ~checkpoint_every:100 ~stream_sketch:`Kll dir)
      in
      Alcotest.(check bool) "kll checkpoint used" true report.E.checkpoint_used;
      Alcotest.(check int) "replayed only the suffix" 50 report.E.replayed;
      Alcotest.(check int) "nothing lost" 350 (E.total_size recovered);
      check_matches_reference ~msg:"kll checkpointed recovery" recovered
        (reference_engine ~stream_sketch:`Kll (List.init 350 (fun i -> el 103 (i + 1))) []);
      E.close recovered)

let test_kll_torn_checkpoint_ignored () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config ~stream_sketch:`Kll dir) in
      for i = 1 to 60 do
        E.observe eng (el 107 i)
      done;
      E.checkpoint_now eng;
      E.crash eng;
      (* Tear the checkpoint file mid-image: the torn read must count as
         no checkpoint at all, never as a half-restored sketch. *)
      let _, _, _, ckpt_path = E.store_paths ~dir in
      let size = (Unix.stat ckpt_path).Unix.st_size in
      let fd = Unix.openfile ckpt_path [ Unix.O_RDWR ] 0 in
      Unix.ftruncate fd (size / 2);
      Unix.close fd;
      let recovered, report = E.open_or_recover (config ~stream_sketch:`Kll dir) in
      Alcotest.(check bool) "torn kll checkpoint ignored" false report.E.checkpoint_used;
      Alcotest.(check int) "full replay instead" 60 report.E.replayed;
      Alcotest.(check int) "correct state" 60 (E.total_size recovered);
      Alcotest.(check string) "still kll" "kll" (E.sketch_label recovered);
      E.close recovered)

let test_kll_corrupt_checkpoint_ignored () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config ~checkpoint_every:16 ~stream_sketch:`Kll dir) in
      for i = 1 to 48 do
        E.observe eng (el 109 i)
      done;
      E.crash eng;
      let _, _, _, ckpt_path = E.store_paths ~dir in
      let oc = open_out_bin ckpt_path in
      output_string oc "hsq-ckpt 1\nnot a checkpoint at all\n";
      close_out oc;
      let recovered, report =
        E.open_or_recover (config ~checkpoint_every:16 ~stream_sketch:`Kll dir)
      in
      Alcotest.(check bool) "corrupt kll checkpoint treated as absent" false
        report.E.checkpoint_used;
      Alcotest.(check int) "full replay recovers everything" 48 (E.total_size recovered);
      E.close recovered)

(* Reopen a GK-written store under `Kll (and back): the kind-mismatched
   checkpoint is skipped, the WAL rebuilds the full state into the newly
   configured sketch, and answers match the never-crashed reference. *)
let run_cross_sketch_reopen ~first ~then_ =
  with_store (fun dir ->
      let elements = List.init 400 (el 113) in
      let breaks = [ 120; 260 ] in
      let eng, _ = E.open_or_recover (config ~stream_sketch:first dir) in
      List.iteri
        (fun i v ->
          E.observe eng v;
          if List.mem (i + 1) breaks then ignore (E.end_time_step eng))
        elements;
      E.checkpoint_now eng;
      E.crash eng;
      let recovered, report = E.open_or_recover (config ~stream_sketch:then_ dir) in
      Alcotest.(check bool)
        "kind-mismatched checkpoint skipped" false report.E.checkpoint_used;
      Alcotest.(check string) "reopened under the configured kind"
        (match then_ with `Gk -> "gk" | `Kll -> "kll")
        (E.sketch_label recovered);
      check_matches_reference ~msg:"cross-sketch reopen" recovered
        (reference_engine ~stream_sketch:then_ elements breaks);
      (* the store keeps working under the new kind, durably *)
      for i = 1 to 50 do
        E.observe recovered (el 127 i)
      done;
      E.crash recovered;
      let again, report2 = E.open_or_recover (config ~stream_sketch:then_ dir) in
      Alcotest.(check int) "appends after the switch survive" 450 (E.total_size again);
      ignore report2;
      E.close again)

let test_gk_store_reopened_as_kll () = run_cross_sketch_reopen ~first:`Gk ~then_:`Kll
let test_kll_store_reopened_as_gk () = run_cross_sketch_reopen ~first:`Kll ~then_:`Gk

(* --- append rollback --------------------------------------------------- *)

(* A failed append is transactional at the WAL layer: the sequence
   number rolls back and the record's bytes leave the pending buffer,
   so a retry lands under the *same* sequence — no gap for recovery's
   contiguity check to floor at, no double-append. *)
let test_wal_append_rollback_direct () =
  with_store (fun dir ->
      let _, _, wal_path, _ = E.store_paths ~dir in
      let stats = Hsq_storage.Io_stats.create () in
      let wal = W.create ~stats ~path:wal_path ~start_seq:1 () in
      ignore (W.append wal (W.Observe 11));
      let seq_before = W.next_seq wal in
      W.set_injector wal (Some (fun _ -> Some Hsq_storage.Block_device.Fail));
      (try
         ignore (W.append wal (W.Observe 22));
         Alcotest.fail "expected the injected append fault"
       with Hsq_storage.Block_device.Device_error _ -> ());
      Alcotest.(check int) "sequence rolled back after Fail" seq_before (W.next_seq wal);
      (* a torn append (crash mid-write) also rolls the sequence back;
         the tear itself is healed by the next successful flush *)
      W.set_injector wal (Some (fun _ -> Some (Hsq_storage.Block_device.Torn 1)));
      (try
         ignore (W.append wal (W.Observe 33));
         Alcotest.fail "expected the injected torn append"
       with Hsq_storage.Block_device.Device_error _ -> ());
      Alcotest.(check int) "sequence rolled back after Torn" seq_before (W.next_seq wal);
      W.set_injector wal None;
      let seq = W.append wal (W.Observe 22) in
      Alcotest.(check int) "retry reuses the rolled-back sequence" seq_before seq;
      W.close wal;
      (* the log reopens clean: contiguous records, no torn garbage *)
      let wal2, records, tail = W.open_existing ~stats ~path:wal_path () in
      (match tail with
      | W.Clean -> ()
      | W.Torn msg -> Alcotest.failf "torn tail on reopen: %s" msg);
      Alcotest.(check (list int)) "both good records, contiguous"
        [ seq_before - 1; seq_before ]
        (List.map fst records);
      W.close wal2)

(* The same contract at the engine layer: a failed observe is
   unacknowledged, leaves in-memory state untouched, and the retried
   element is neither lost nor doubled across a crash/recover. *)
let test_wal_append_rollback_engine () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config dir) in
      for i = 1 to 10 do
        E.observe eng (el 7 i)
      done;
      E.set_wal_injector eng (Some (fun _ -> Some Hsq_storage.Block_device.Fail));
      (try
         E.observe eng 424_242;
         Alcotest.fail "expected Device_error from the injected WAL fault"
       with Hsq_storage.Block_device.Device_error _ -> ());
      Alcotest.(check int) "failed observe unacknowledged" 10 (E.total_size eng);
      E.set_wal_injector eng None;
      E.observe eng 424_242;
      Alcotest.(check int) "retried observe lands once" 11 (E.total_size eng);
      E.crash eng;
      let recovered, report = E.open_or_recover (config dir) in
      Alcotest.(check (option string)) "log contiguous across the fault" None report.E.wal_tail;
      Alcotest.(check int) "no gap, no double" 11 (E.total_size recovered);
      E.close recovered)

(* close / crash / checkpoint_now are idempotent: the first close wins,
   everything after it is a no-op — the serve daemon's drain path and a
   concurrent signal-driven shutdown may both reach them. *)
let test_close_idempotent () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config dir) in
      for i = 1 to 100 do
        E.observe eng (el 5 i)
      done;
      ignore (E.end_time_step eng);
      for i = 101 to 150 do
        E.observe eng (el 5 i)
      done;
      Alcotest.(check bool) "open engine is not closed" false (E.is_closed eng);
      E.close eng;
      Alcotest.(check bool) "closed" true (E.is_closed eng);
      (* every one of these used to be a Sys_error on the closed WAL *)
      E.close eng;
      E.checkpoint_now eng;
      E.crash eng;
      Alcotest.(check bool) "still closed" true (E.is_closed eng);
      let recovered, _ = E.open_or_recover (config dir) in
      Alcotest.(check int) "first close committed everything" 150 (E.total_size recovered);
      E.close recovered)

(* Closing with a merge still deferred (a read fault interrupted the
   cascade) must release cleanly, twice, and the store must reopen with
   nothing lost — the deferred merge is work for later, not damage. *)
let test_close_during_deferred_merge () =
  with_store (fun dir ->
      let eng, _ = E.open_or_recover (config dir) in
      let step base =
        for i = base + 1 to base + 40 do
          E.observe eng (el 6 i)
        done;
        E.end_time_step eng
      in
      (* fill level 0 to kappa, then fault reads so the next rollover's
         merge cascade defers instead of completing *)
      for s = 0 to 2 do
        ignore (step (40 * s))
      done;
      Hsq_storage.Block_device.set_injector (E.device eng)
        (Some
           (fun op ~attempt:_ _ ->
             if op = Hsq_storage.Block_device.Read then Some Hsq_storage.Block_device.Fail
             else None));
      let report = step 120 in
      Alcotest.(check bool)
        "merge was deferred under the fault" true
        (report.Hsq_hist.Level_index.deferred_merge <> None);
      E.close eng;
      E.close eng;
      E.checkpoint_now eng;
      let recovered, _ = E.open_or_recover (config dir) in
      Alcotest.(check int) "nothing lost across the deferred close" 160
        (E.total_size recovered);
      Alcotest.(check (list string))
        "invariants hold on reopen" []
        (Hsq_hist.Level_index.check_invariants (E.hist recovered));
      E.close recovered)

let () =
  Alcotest.run "durable"
    [
      ( "round trip",
        [
          Alcotest.test_case "close then reopen" `Quick test_round_trip_close;
          Alcotest.test_case "crash then recover (sync=always)" `Quick test_round_trip_crash;
          Alcotest.test_case "close is idempotent" `Quick test_close_idempotent;
          Alcotest.test_case "close during a deferred merge" `Quick
            test_close_during_deferred_merge;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "replay only past the checkpoint" `Quick
            test_replay_only_past_checkpoint;
          Alcotest.test_case "checkpoint_now covers the log" `Quick test_checkpoint_now;
          Alcotest.test_case "stale checkpoint ignored" `Quick test_stale_checkpoint_ignored;
          Alcotest.test_case "corrupt checkpoint ignored" `Quick test_corrupt_checkpoint_ignored;
        ] );
      ( "rollover",
        [
          Alcotest.test_case "empty rollover is a no-op" `Quick test_empty_rollover_is_noop;
          Alcotest.test_case "committed marker skipped" `Quick test_committed_marker_skipped;
          Alcotest.test_case "uncommitted marker re-archived" `Quick
            test_uncommitted_marker_reingested;
          Alcotest.test_case "recovery is idempotent" `Quick test_recovery_idempotent;
        ] );
      ( "loss bounds",
        [
          Alcotest.test_case "group commit loses at most the window" `Quick
            test_group_commit_loss_bound;
          Alcotest.test_case "never-sync loses the open tail" `Quick
            test_never_sync_loses_open_tail;
        ] );
      ("torn tails", [ Alcotest.test_case "floored and truncated" `Quick test_torn_tail_floored ]);
      ( "kll sketch",
        [
          Alcotest.test_case "crash then recover" `Quick test_kll_round_trip_crash;
          Alcotest.test_case "checkpoint bounds the replay" `Quick
            test_kll_checkpoint_bounds_replay;
          Alcotest.test_case "torn kll checkpoint ignored" `Quick
            test_kll_torn_checkpoint_ignored;
          Alcotest.test_case "corrupt kll checkpoint ignored" `Quick
            test_kll_corrupt_checkpoint_ignored;
          Alcotest.test_case "gk store reopened as kll" `Quick test_gk_store_reopened_as_kll;
          Alcotest.test_case "kll store reopened as gk" `Quick test_kll_store_reopened_as_gk;
        ] );
      ( "append rollback",
        [
          Alcotest.test_case "wal layer" `Quick test_wal_append_rollback_direct;
          Alcotest.test_case "engine layer" `Quick test_wal_append_rollback_engine;
        ] );
    ]
