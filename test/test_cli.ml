(* CLI-level exit-code contract, driven against the real hsq binary
   (path injected by dune through HSQ_BIN):

   - scrub exits 0 on a clean store, 1 on a corrupt one, 2 on missing
     arguments — so cron jobs can alert on store damage;
   - status exits 0 on a healthy durable store, 1 on a damaged one,
     2 on a missing directory;
   - metrics follows the same 0/1/2 convention and emits parseable
     JSON / Prometheus text;
   - query --trace prints one probe span per touched partition. *)

let bin =
  match Sys.getenv_opt "HSQ_BIN" with
  | Some p -> p
  | None -> Alcotest.fail "HSQ_BIN not set (run through dune)"

let quote = Filename.quote

let run args =
  let cmd = Printf.sprintf "%s %s >/dev/null 2>&1" (quote bin) args in
  match Unix.system cmd with
  | Unix.WEXITED code -> code
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Alcotest.failf "hsq killed by signal %d" s

(* Like [run] but keeping stdout (the metrics/trace tests parse it). *)
let run_capture args =
  let out = Filename.temp_file "hsq_cli_out" ".txt" in
  let cmd = Printf.sprintf "%s %s >%s 2>/dev/null" (quote bin) args (quote out) in
  let code =
    match Unix.system cmd with
    | Unix.WEXITED code -> code
    | Unix.WSIGNALED s | Unix.WSTOPPED s -> Alcotest.failf "hsq killed by signal %d" s
  in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Occurrences of [needle] in [hay] (non-overlapping, for span counting). *)
let count_substring hay needle =
  let nn = String.length needle in
  let rec go i acc =
    if i + nn > String.length hay then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let with_temp_dir f =
  let dir = Filename.temp_file "hsq_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

(* A small saved warehouse (device + sidecar) for scrub to chew on. *)
let build_store dir =
  let dev = Filename.concat dir "store.dev" in
  let meta = Filename.concat dir "store.meta" in
  let code =
    run
      (Printf.sprintf
         "simulate --steps 4 --step-size 800 --block-size 32 --device %s --save-meta %s"
         (quote dev) (quote meta))
  in
  Alcotest.(check int) "simulate exits 0" 0 code;
  (dev, meta)

let test_scrub_clean () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      Alcotest.(check int) "scrub on a clean store" 0
        (run (Printf.sprintf "scrub --device %s --meta %s" (quote dev) (quote meta))))

let test_scrub_corrupt_device () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      (* Flip a bit in the middle of the device file: block data or its
         checksum word — scrub must fail either way. *)
      flip_byte dev ((Unix.stat dev).Unix.st_size / 2);
      Alcotest.(check int) "scrub on a corrupt device" 1
        (run (Printf.sprintf "scrub --device %s --meta %s" (quote dev) (quote meta))))

let test_scrub_corrupt_meta () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      flip_byte meta 3;
      Alcotest.(check int) "scrub on a corrupt sidecar" 1
        (run (Printf.sprintf "scrub --device %s --meta %s" (quote dev) (quote meta))))

let test_scrub_missing_args () =
  Alcotest.(check int) "scrub without --device/--meta" 2 (run "scrub")

let test_status_healthy_and_damaged () =
  with_temp_dir (fun dir ->
      let store = Filename.concat dir "store" in
      let code =
        run
          (Printf.sprintf "simulate --steps 3 --step-size 600 --block-size 32 --durable %s"
             (quote store))
      in
      Alcotest.(check int) "durable simulate exits 0" 0 code;
      Alcotest.(check int) "status on a healthy store" 0 (run ("status " ^ quote store));
      (* Deleting the device file under a committed sidecar is damage
         recovery cannot paper over. *)
      Sys.remove (Filename.concat store "device.blocks");
      Alcotest.(check int) "status on a damaged store" 1 (run ("status " ^ quote store));
      Array.iter (fun f -> Sys.remove (Filename.concat store f)) (Sys.readdir store);
      Sys.rmdir store)

let test_status_missing_dir () =
  Alcotest.(check int) "status on a missing directory" 2
    (run "status /nonexistent/hsq-store")

(* Replicated health contract: a damaged replica whose sibling is
   intact keeps every answer at full precision, so status exits 0 with
   a warning; only a shard with NO intact replica exits 1.  scrub
   --repair converges the damaged replica back from its sibling. *)
let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_status_replicated_contract () =
  with_temp_dir (fun dir ->
      let store = Filename.concat dir "store" in
      let topo = Printf.sprintf "--shards 2 --replicas 2 --durable %s" (quote store) in
      Alcotest.(check int) "replicated simulate exits 0" 0
        (run
           (Printf.sprintf "simulate --steps 3 --step-size 600 --block-size 32 %s" topo));
      Alcotest.(check int) "status on a healthy replicated store" 0
        (run (Printf.sprintf "status %s --shards 2 --replicas 2 --health" (quote store)));
      (* One replica store dies; its sibling keeps full precision:
         degraded-but-full-precision exits 0 and says WARNING. *)
      rm_rf (Filename.concat store "shard-0/replica-1");
      let code, out =
        run_capture (Printf.sprintf "status %s --shards 2 --replicas 2" (quote store))
      in
      Alcotest.(check int) "one dead replica still exits 0" 0 code;
      Alcotest.(check bool) "and is flagged as a warning" true (contains out "WARNING");
      Alcotest.(check bool) "replica matrix shows the damage" true (contains out "r1=BAD");
      (* scrub --repair rebuilds it from the healthy sibling. *)
      Alcotest.(check int) "scrub --repair converges the replica" 0
        (run (Printf.sprintf "scrub --repair %s" topo));
      let code, out =
        run_capture (Printf.sprintf "status %s --shards 2 --replicas 2" (quote store))
      in
      Alcotest.(check int) "repaired store exits 0" 0 code;
      Alcotest.(check bool) "warning gone after repair" false (contains out "WARNING");
      (* Losing EVERY replica of a shard degrades answers: exit 1. *)
      rm_rf (Filename.concat store "shard-0");
      Alcotest.(check int) "whole replica set lost exits 1" 1
        (run (Printf.sprintf "status %s --shards 2 --replicas 2" (quote store)));
      rm_rf store)

let test_metrics_missing_args () =
  Alcotest.(check int) "metrics without --device/--meta" 2 (run "metrics")

let test_metrics_corrupt_meta () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      flip_byte meta 3;
      Alcotest.(check int) "metrics on a corrupt sidecar" 1
        (run (Printf.sprintf "metrics --device %s --meta %s" (quote dev) (quote meta))))

let test_metrics_json () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      let code, out =
        run_capture
          (Printf.sprintf "metrics --device %s --meta %s --format json" (quote dev) (quote meta))
      in
      Alcotest.(check int) "metrics exits 0" 0 code;
      let body = String.trim out in
      Alcotest.(check bool) "one JSON object" true
        (String.length body > 2 && body.[0] = '{' && body.[String.length body - 1] = '}');
      Alcotest.(check bool) "I/O counters exported" true (contains body "\"hsq_io_reads_total\":");
      (* The default --quantiles were exercised before the dump, so the
         query-path metrics carry observations. *)
      Alcotest.(check bool) "query counter exported" true
        (contains body "\"hsq_query_accurate_total\":3");
      Alcotest.(check bool) "latency histogram exported" true
        (contains body "\"hsq_query_accurate_seconds\":{\"count\":3"))

let test_metrics_prometheus () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      let code, out =
        run_capture (Printf.sprintf "metrics --device %s --meta %s" (quote dev) (quote meta))
      in
      Alcotest.(check int) "metrics exits 0" 0 code;
      Alcotest.(check bool) "TYPE comment lines" true
        (contains out "# TYPE hsq_io_reads_total counter");
      Alcotest.(check bool) "histogram exposition" true
        (contains out "hsq_query_accurate_seconds_bucket{le=\"+Inf\"} 3");
      Alcotest.(check bool) "histogram count line" true
        (contains out "hsq_query_accurate_seconds_count 3");
      (* --no-exercise leaves the query path untouched. *)
      let _, cold =
        run_capture
          (Printf.sprintf "metrics --device %s --meta %s --no-exercise" (quote dev) (quote meta))
      in
      Alcotest.(check bool) "no-exercise leaves query counters at 0" true
        (contains cold "hsq_query_accurate_total 0"))

let test_query_trace_spans () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      (* build_store archives 4 steps with kappa's default of 10: four
         level-0 partitions, no merge. Every bisection iteration probes
         every partition, so the trace must name partitions 1..4. *)
      let code, out =
        run_capture
          (Printf.sprintf "query --device %s --meta %s -q 0.5 --trace" (quote dev) (quote meta))
      in
      Alcotest.(check int) "query --trace exits 0" 0 code;
      Alcotest.(check bool) "trace header printed" true (contains out "trace:");
      Alcotest.(check bool) "accurate root span" true
        (contains out "\"name\":\"query.accurate\"");
      Alcotest.(check bool) "bisection child spans" true (contains out "\"name\":\"bisect\"");
      for part = 1 to 4 do
        Alcotest.(check bool)
          (Printf.sprintf "a probe span for partition %d" part)
          true
          (contains out (Printf.sprintf "{\"partition\":\"%d\"" part))
      done;
      Alcotest.(check bool) "no phantom partition" false (contains out "{\"partition\":\"5\"");
      let probes = count_substring out "\"name\":\"probe\"" in
      let iters = count_substring out "\"name\":\"bisect\"" in
      Alcotest.(check bool) "one probe per partition per iteration" true (probes = 4 * iters)
      ;
      (* Without the flag no trace block is printed. *)
      let _, plain =
        run_capture (Printf.sprintf "query --device %s --meta %s -q 0.5" (quote dev) (quote meta))
      in
      Alcotest.(check bool) "no trace without --trace" false (contains plain "trace:"))

let () =
  Alcotest.run "cli"
    [
      ( "scrub exit codes",
        [
          Alcotest.test_case "clean store" `Quick test_scrub_clean;
          Alcotest.test_case "corrupt device" `Quick test_scrub_corrupt_device;
          Alcotest.test_case "corrupt sidecar" `Quick test_scrub_corrupt_meta;
          Alcotest.test_case "missing args" `Quick test_scrub_missing_args;
        ] );
      ( "status exit codes",
        [
          Alcotest.test_case "healthy vs damaged" `Quick test_status_healthy_and_damaged;
          Alcotest.test_case "missing directory" `Quick test_status_missing_dir;
          Alcotest.test_case "replicated: warning vs degraded" `Quick
            test_status_replicated_contract;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "missing args" `Quick test_metrics_missing_args;
          Alcotest.test_case "corrupt sidecar" `Quick test_metrics_corrupt_meta;
          Alcotest.test_case "json export" `Quick test_metrics_json;
          Alcotest.test_case "prometheus export" `Quick test_metrics_prometheus;
        ] );
      ("trace", [ Alcotest.test_case "query --trace span tree" `Quick test_query_trace_spans ]);
    ]
