(* CLI-level exit-code contract, driven against the real hsq binary
   (path injected by dune through HSQ_BIN):

   - scrub exits 0 on a clean store, 1 on a corrupt one, 2 on missing
     arguments — so cron jobs can alert on store damage;
   - status exits 0 on a healthy durable store, 1 on a damaged one,
     2 on a missing directory. *)

let bin =
  match Sys.getenv_opt "HSQ_BIN" with
  | Some p -> p
  | None -> Alcotest.fail "HSQ_BIN not set (run through dune)"

let quote = Filename.quote

let run args =
  let cmd = Printf.sprintf "%s %s >/dev/null 2>&1" (quote bin) args in
  match Unix.system cmd with
  | Unix.WEXITED code -> code
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Alcotest.failf "hsq killed by signal %d" s

let with_temp_dir f =
  let dir = Filename.temp_file "hsq_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

(* A small saved warehouse (device + sidecar) for scrub to chew on. *)
let build_store dir =
  let dev = Filename.concat dir "store.dev" in
  let meta = Filename.concat dir "store.meta" in
  let code =
    run
      (Printf.sprintf
         "simulate --steps 4 --step-size 800 --block-size 32 --device %s --save-meta %s"
         (quote dev) (quote meta))
  in
  Alcotest.(check int) "simulate exits 0" 0 code;
  (dev, meta)

let test_scrub_clean () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      Alcotest.(check int) "scrub on a clean store" 0
        (run (Printf.sprintf "scrub --device %s --meta %s" (quote dev) (quote meta))))

let test_scrub_corrupt_device () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      (* Flip a bit in the middle of the device file: block data or its
         checksum word — scrub must fail either way. *)
      flip_byte dev ((Unix.stat dev).Unix.st_size / 2);
      Alcotest.(check int) "scrub on a corrupt device" 1
        (run (Printf.sprintf "scrub --device %s --meta %s" (quote dev) (quote meta))))

let test_scrub_corrupt_meta () =
  with_temp_dir (fun dir ->
      let dev, meta = build_store dir in
      flip_byte meta 3;
      Alcotest.(check int) "scrub on a corrupt sidecar" 1
        (run (Printf.sprintf "scrub --device %s --meta %s" (quote dev) (quote meta))))

let test_scrub_missing_args () =
  Alcotest.(check int) "scrub without --device/--meta" 2 (run "scrub")

let test_status_healthy_and_damaged () =
  with_temp_dir (fun dir ->
      let store = Filename.concat dir "store" in
      let code =
        run
          (Printf.sprintf "simulate --steps 3 --step-size 600 --block-size 32 --durable %s"
             (quote store))
      in
      Alcotest.(check int) "durable simulate exits 0" 0 code;
      Alcotest.(check int) "status on a healthy store" 0 (run ("status " ^ quote store));
      (* Deleting the device file under a committed sidecar is damage
         recovery cannot paper over. *)
      Sys.remove (Filename.concat store "device.blocks");
      Alcotest.(check int) "status on a damaged store" 1 (run ("status " ^ quote store));
      Array.iter (fun f -> Sys.remove (Filename.concat store f)) (Sys.readdir store);
      Sys.rmdir store)

let test_status_missing_dir () =
  Alcotest.(check int) "status on a missing directory" 2
    (run "status /nonexistent/hsq-store")

let () =
  Alcotest.run "cli"
    [
      ( "scrub exit codes",
        [
          Alcotest.test_case "clean store" `Quick test_scrub_clean;
          Alcotest.test_case "corrupt device" `Quick test_scrub_corrupt_device;
          Alcotest.test_case "corrupt sidecar" `Quick test_scrub_corrupt_meta;
          Alcotest.test_case "missing args" `Quick test_scrub_missing_args;
        ] );
      ( "status exit codes",
        [
          Alcotest.test_case "healthy vs damaged" `Quick test_status_healthy_and_damaged;
          Alcotest.test_case "missing directory" `Quick test_status_missing_dir;
        ] );
    ]
