(* Unit tests for the sharded warehouse: routing, fused-summary
   equivalence, degradation algebra, exact bound widening for down
   shards, worst-wins composition under deadlines, and the recovery
   gauges surfaced through the health rollup. *)

module E = Hsq.Engine
module G = Hsq_shard.Shard_group
module Us = Hsq.Union_summary
module Li = Hsq_hist.Level_index
module Metrics = Hsq_obs.Metrics

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let config ?(shards = 1) ?wal_dir () =
  Hsq.Config.make ~kappa:3 ~block_size:32 ~quarantine_after:2 ~shards ?wal_dir
    (Hsq.Config.Epsilon 0.05)

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* --- routing ------------------------------------------------------------ *)

let test_route_deterministic () =
  let g = G.create (config ~shards:4 ()) in
  let hits = Array.make 4 0 in
  for v = 0 to 9_999 do
    let s = G.route g v in
    Alcotest.(check bool) "route in range" true (s >= 0 && s < 4);
    Alcotest.(check int) "route is deterministic" s (G.route g v);
    hits.(s) <- hits.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      if n < 1_000 then Alcotest.failf "shard %d badly underloaded: %d/10000 values" i n)
    hits;
  G.close g

let test_route_matches_observe () =
  let g = G.create (config ~shards:3 ()) in
  for v = 0 to 500 do
    G.observe g (v * 7919)
  done;
  let by_engine = List.map (fun (i, e) -> (i, E.total_size e)) (G.engines g) in
  List.iter
    (fun (i, n) ->
      let expected = ref 0 in
      for v = 0 to 500 do
        if G.route g (v * 7919) = i then incr expected
      done;
      Alcotest.(check int) (Printf.sprintf "shard %d got its routed values" i) !expected n)
    by_engine;
  Alcotest.(check int) "nothing lost" 501 (G.total_size g);
  G.close g

(* --- fused summary ------------------------------------------------------ *)

(* With a single stream, build_fused must agree entry-for-entry
   (including float bounds) with the steady-state single-engine path —
   the K=1 fusion is literally the engine's own summary. *)
let test_build_fused_singleton () =
  let eng = E.create (config ()) in
  let rng = Hsq_util.Xoshiro.create 0xF00D in
  for _ = 1 to 5 do
    ignore (E.ingest_batch eng (Array.init 400 (fun _ -> Hsq_util.Xoshiro.int rng 100_000)))
  done;
  for _ = 1 to 137 do
    E.observe eng (Hsq_util.Xoshiro.int rng 100_000)
  done;
  let agg = Us.hist_aggregate ~partitions:(Li.active_partitions (E.hist eng)) in
  let stream = E.stream_summary eng in
  let reference = Us.build_from_agg ~agg ~stream in
  let fused = Us.build_fused ~agg ~streams:[ stream ] in
  Alcotest.(check bool) "fused[1 stream] == build_from_agg" true (Us.equal reference fused);
  E.close eng

(* Fused windows must bracket the true union rank: check every entry of
   a K=3 fusion against an exact oracle. *)
let test_fused_windows_bracket () =
  let g = G.create (config ~shards:3 ()) in
  let oracle = Hsq_workload.Oracle.create () in
  let rng = Hsq_util.Xoshiro.create 0xBEEF in
  for step = 1 to 4 do
    for _ = 1 to 600 do
      let v = Hsq_util.Xoshiro.int rng 50_000 in
      G.observe g v;
      Hsq_workload.Oracle.add oracle v
    done;
    if step < 4 then ignore (G.end_time_step g)
  done;
  let partitions =
    List.concat_map (fun (_, e) -> Li.active_partitions (E.hist e)) (G.engines g)
  in
  let streams = List.map (fun (_, e) -> E.stream_summary e) (G.engines g) in
  let us = Us.build_fused ~agg:(Us.hist_aggregate ~partitions) ~streams in
  Alcotest.(check int) "fused n_total" (G.total_size g) (Us.n_total us);
  Array.iter
    (fun { Us.value; lower; upper } ->
      (* a value answers any rank in [|{x<v}|+1, |{x≤v}|]; the fused
         window must intersect that legitimate interval *)
      let hi_true = float_of_int (Hsq_workload.Oracle.rank_of oracle value) in
      let lo_true = float_of_int (Hsq_workload.Oracle.rank_of oracle (value - 1) + 1) in
      if lower > hi_true || upper < lo_true then
        Alcotest.failf "value %d: legitimate ranks [%.0f, %.0f] outside fused window [%.1f, %.1f]"
          value lo_true hi_true lower upper)
    (Us.entries us);
  G.close g

(* --- degradation algebra ------------------------------------------------ *)

let test_worst_degradation () =
  let check name expected a b =
    Alcotest.(check string)
      name
      (G.degradation_label expected)
      (G.degradation_label (G.worst_degradation a b));
    (* symmetry (up to payload merge) *)
    Alcotest.(check int)
      (name ^ " symmetric severity")
      (G.severity (G.worst_degradation a b))
      (G.severity (G.worst_degradation b a))
  in
  check "none vs quarantined" (`Quarantined 3) `None (`Quarantined 3);
  check "quarantined vs deadline" `Deadline (`Quarantined 3) `Deadline;
  check "deadline vs device_open" `Device_open `Deadline `Device_open;
  check "device_open vs shard_down" (`Shard_down [ 1 ]) `Device_open (`Shard_down [ 1 ]);
  check "shard_down vs deadline" (`Shard_down [ 2 ]) (`Shard_down [ 2 ]) `Deadline;
  (match G.worst_degradation (`Quarantined 2) (`Quarantined 7) with
  | `Quarantined 7 -> ()
  | d -> Alcotest.failf "quarantine merge: got %s" (G.degradation_label d));
  match G.worst_degradation (`Shard_down [ 3; 1 ]) (`Shard_down [ 1; 2 ]) with
  | `Shard_down [ 1; 2; 3 ] -> ()
  | `Shard_down ks ->
    Alcotest.failf "shard list union: got [%s]"
      (String.concat ";" (List.map string_of_int ks))
  | d -> Alcotest.failf "shard list union: got %s" (G.degradation_label d)

(* --- exact widening ----------------------------------------------------- *)

(* Two K=3 groups over the same value stream: A ingests everything and
   then loses shard [victim]; B ingests only the values routed to A's
   survivors.  The surviving state is identical, so the fused quick
   answers must agree exactly and A's bound must exceed B's by exactly
   the victim's element count — the down shard widens the bound by its
   elements, no more, no less. *)
let test_down_shard_widens_exactly () =
  let a = G.create (config ~shards:3 ()) in
  let b = G.create (config ~shards:3 ()) in
  let victim = 1 in
  let rng = Hsq_util.Xoshiro.create 0xACE in
  let victim_count = ref 0 in
  for step = 1 to 3 do
    for _ = 1 to 500 do
      let v = Hsq_util.Xoshiro.int rng 80_000 in
      G.observe a v;
      if G.route a v = victim then incr victim_count else G.observe b v
    done;
    if step < 3 then begin
      ignore (G.end_time_step a);
      ignore (G.end_time_step b)
    end
  done;
  G.mark_down a victim ~reason:"unit test";
  Alcotest.(check (list int)) "A reports the victim down" [ victim ] (G.shards_down a);
  Alcotest.(check int) "frozen element count" !victim_count (G.down_elements a);
  let n = G.total_size b in
  List.iter
    (fun rank ->
      let va, bound_a, deg_a = G.quick_with_bound a ~rank in
      let vb, bound_b, deg_b = G.quick_with_bound b ~rank in
      Alcotest.(check int) (Printf.sprintf "rank %d: same answer" rank) vb va;
      (match deg_a with
      | `Shard_down [ s ] when s = victim -> ()
      | d -> Alcotest.failf "rank %d: A degradation %s" rank (G.degradation_label d));
      (match deg_b with
      | `None -> ()
      | d -> Alcotest.failf "rank %d: B degradation %s" rank (G.degradation_label d));
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "rank %d: bound widens by exactly the victim's %d elements" rank
           !victim_count)
        (bound_b +. float_of_int !victim_count)
        bound_a)
    [ 1; n / 4; n / 2; (3 * n) / 4; n ];
  G.close a;
  G.close b

(* --- worst-wins under a deadline ---------------------------------------- *)

let test_shard_down_beats_deadline () =
  let g = G.create (config ~shards:3 ()) in
  let oracle = Hsq_workload.Oracle.create () in
  let rng = Hsq_util.Xoshiro.create 0xD1CE in
  for _step = 1 to 4 do
    for _ = 1 to 800 do
      let v = Hsq_util.Xoshiro.int rng 200_000 in
      G.observe g v;
      Hsq_workload.Oracle.add oracle v
    done;
    ignore (G.end_time_step g)
  done;
  G.mark_down g 2 ~reason:"unit test";
  let rank = G.total_size g / 2 in
  (* An effectively-zero deadline forces a cut; the report must still
     lead with the worse Shard_down and keep an honest bound. *)
  let v, report = G.accurate ~deadline_ms:0.000_001 g ~rank in
  (match report.G.degradation with
  | `Shard_down [ 2 ] -> ()
  | d -> Alcotest.failf "expected shard_down to win over deadline, got %s" (G.degradation_label d));
  let err = Hsq_workload.Oracle.rank_error oracle ~rank ~value:v in
  if float_of_int err > report.G.rank_error_bound then
    Alcotest.failf "deadline-cut error %d above bound %.1f" err report.G.rank_error_bound;
  G.close g

(* --- accurate under a down shard holds its bound ------------------------ *)

let test_accurate_bound_with_down_shard () =
  let g = G.create (config ~shards:4 ()) in
  let oracle = Hsq_workload.Oracle.create () in
  let rng = Hsq_util.Xoshiro.create 0xFACE in
  for _step = 1 to 5 do
    for _ = 1 to 700 do
      let v = Hsq_util.Xoshiro.int rng 1_000_000 in
      G.observe g v;
      Hsq_workload.Oracle.add oracle v
    done;
    ignore (G.end_time_step g)
  done;
  G.mark_down g 0 ~reason:"unit test";
  let n = G.total_size g in
  List.iter
    (fun rank ->
      let v, report = G.accurate g ~rank in
      (match report.G.degradation with
      | `Shard_down [ 0 ] -> ()
      | d -> Alcotest.failf "rank %d: degradation %s" rank (G.degradation_label d));
      let err = Hsq_workload.Oracle.rank_error oracle ~rank ~value:v in
      if float_of_int err > report.G.rank_error_bound then
        Alcotest.failf "rank %d: error %d above reported bound %.1f" rank err
          report.G.rank_error_bound;
      (* the widening is bounded by the dead shard's elements plus the
         healthy ±εm band *)
      let healthy_band = (G.epsilon g *. float_of_int (G.total_size g)) +. 20.0 in
      if report.G.rank_error_bound > float_of_int (G.down_elements g) +. healthy_band then
        Alcotest.failf "rank %d: bound %.1f wider than down elements %d + healthy band %.1f"
          rank report.G.rank_error_bound (G.down_elements g) healthy_band)
    [ 1; n / 3; n / 2; n ];
  G.close g

(* --- ingest containment ------------------------------------------------- *)

let test_observe_down_shard_raises () =
  let g = G.create (config ~shards:2 ()) in
  for v = 0 to 99 do
    G.observe g v
  done;
  G.mark_down g 0 ~reason:"gone";
  let routed_down = List.filter (fun v -> G.route g v = 0) (List.init 50 (fun i -> i + 1000)) in
  List.iter
    (fun v ->
      match G.observe g v with
      | () -> Alcotest.fail "observe to a down shard must raise"
      | exception G.Shard_unavailable (0, reason) ->
        Alcotest.(check string) "carries the down reason" "gone" reason)
    routed_down;
  Alcotest.(check bool) "routed_down test values exist" true (routed_down <> []);
  (* survivors keep acknowledging *)
  let before = G.total_size g in
  let routed_up = List.filter (fun v -> G.route g v = 1) (List.init 50 (fun i -> i + 2000)) in
  List.iter (G.observe g) routed_up;
  Alcotest.(check int) "survivor observes acked" (before + List.length routed_up)
    (G.total_size g);
  G.close g

(* --- durable groups: recovery gauges, rejoin, health rollup ------------- *)

let test_recovery_gauges_and_rejoin () =
  let root = temp_dir "hsq_shard_recovery" in
  Fun.protect
    ~finally:(fun () -> try rm_rf root with _ -> ())
    (fun () ->
      let cfg = config ~shards:2 ~wal_dir:root () in
      let g, recs = G.open_or_recover cfg in
      List.iter
        (fun { G.shard = _; outcome; _ } ->
          if Result.is_error outcome then Alcotest.fail "fresh open must recover cleanly")
        recs;
      let rng = Hsq_util.Xoshiro.create 0x5EED in
      let acked = ref [] in
      for _ = 1 to 400 do
        let v = Hsq_util.Xoshiro.int rng 30_000 in
        G.observe g v;
        acked := v :: !acked
      done;
      ignore (G.end_time_step g);
      for _ = 1 to 120 do
        let v = Hsq_util.Xoshiro.int rng 30_000 in
        G.observe g v;
        acked := v :: !acked
      done;
      let total = G.total_size g in
      Alcotest.(check int) "acked count" (List.length !acked) total;
      (* power-cut the whole group; reopen replays each shard's WAL *)
      G.crash g;
      let g2, recs2 = G.open_or_recover cfg in
      List.iter
        (fun { G.shard; outcome; _ } ->
          match outcome with
          | Error msg -> Alcotest.failf "shard %d failed to recover: %s" shard msg
          | Ok (r : E.recovery_report) -> (
            (* satellite: the recovery counters are published as pull
               gauges on the shard's own registry, exactly matching the
               report the open returned *)
            match G.engine g2 shard with
            | None -> Alcotest.fail "recovered shard must be up"
            | Some e ->
              let gauge name =
                match Metrics.gauge_value (E.metrics e) name with
                | Some v -> int_of_float v
                | None -> Alcotest.failf "shard %d: gauge %s missing" shard name
              in
              Alcotest.(check int)
                (Printf.sprintf "shard %d: hsq_recovery_wal_replayed" shard)
                r.E.replayed
                (gauge "hsq_recovery_wal_replayed");
              Alcotest.(check int)
                (Printf.sprintf "shard %d: hsq_recovery_checkpoint_used" shard)
                (if r.E.checkpoint_used then 1 else 0)
                (gauge "hsq_recovery_checkpoint_used");
              Alcotest.(check int)
                (Printf.sprintf "shard %d: hsq_recovery_steps_reingested" shard)
                r.E.steps_reingested
                (gauge "hsq_recovery_steps_reingested");
              (* ... and the health surface exposes the same numbers *)
              let h = Hsq_serve.Health.collect e in
              (match h.Hsq_serve.Health.recovery with
              | None -> Alcotest.failf "shard %d: health lost the recovery info" shard
              | Some ri ->
                Alcotest.(check int) "health wal_replayed" r.E.replayed
                  ri.Hsq_serve.Health.wal_replayed;
                Alcotest.(check bool) "health checkpoint_used" r.E.checkpoint_used
                  ri.Hsq_serve.Health.checkpoint_used)))
        recs2;
      Alcotest.(check int) "zero acked loss across the crash" total (G.total_size g2);
      (* mark one shard down, then rejoin: durable shards come back with
         everything they acknowledged *)
      G.mark_down g2 1 ~reason:"unit test";
      let gh = Hsq_serve.Health.collect_group g2 in
      Alcotest.(check bool) "rollup sees the down shard" false
        (Hsq_serve.Health.group_healthy gh);
      Alcotest.(check int) "rollup exit code" 1 (Hsq_serve.Health.group_exit_code gh);
      (match G.rejoin g2 1 with
      | Error msg -> Alcotest.failf "rejoin failed: %s" msg
      | Ok (_recovery, scrub) ->
        Alcotest.(check int) "rejoin scrub clean" 0 scrub.Hsq.Persist.still_quarantined);
      Alcotest.(check (list int)) "no shards down after rejoin" [] (G.shards_down g2);
      Alcotest.(check int) "zero acked loss across the rejoin" total (G.total_size g2);
      Alcotest.(check bool) "rollup healthy again" true
        (Hsq_serve.Health.group_healthy (Hsq_serve.Health.collect_group g2));
      G.close g2)

let test_volatile_rejoin_refused () =
  let g = G.create (config ~shards:2 ()) in
  G.mark_down g 0 ~reason:"gone";
  (match G.rejoin g 0 with
  | Ok _ -> Alcotest.fail "volatile rejoin must be refused"
  | Error _ -> ());
  G.close g

(* --- metrics exporters -------------------------------------------------- *)

let test_metrics_labels () =
  let g = G.create (config ~shards:2 ()) in
  for v = 0 to 200 do
    G.observe g v
  done;
  ignore (G.end_time_step g);
  let prom = G.metrics_prometheus g in
  List.iter
    (fun label ->
      if not (contains ~sub:label prom) then Alcotest.failf "prometheus dump missing %s" label)
    [ "shard=\"0\""; "shard=\"1\""; "hsq_shard_index{shard=\"0\"}" ];
  (* every sample line carries a shard label; comments never do *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' && not (contains ~sub:"shard=\"" line) then
        Alcotest.failf "unlabelled sample line: %s" line)
    (String.split_on_char '\n' prom);
  let json = G.metrics_json g in
  List.iter
    (fun sub ->
      if not (contains ~sub json) then Alcotest.failf "json dump missing %s" sub)
    [ "\"shards\":{"; "\"0\":{"; "\"1\":{" ];
  G.mark_down g 1 ~reason:"x";
  if not (contains ~sub:"\"down\":true" (G.metrics_json g)) then
    Alcotest.fail "down shard must be marked in the json dump";
  G.close g

let () =
  Alcotest.run "shard"
    [
      ( "routing",
        [
          Alcotest.test_case "deterministic and balanced" `Quick test_route_deterministic;
          Alcotest.test_case "matches observe placement" `Quick test_route_matches_observe;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "singleton fusion is exact" `Quick test_build_fused_singleton;
          Alcotest.test_case "fused windows bracket true ranks" `Quick
            test_fused_windows_bracket;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "worst wins, payloads merge" `Quick test_worst_degradation;
          Alcotest.test_case "shard_down beats deadline" `Quick test_shard_down_beats_deadline;
        ] );
      ( "fault domains",
        [
          Alcotest.test_case "down shard widens bound exactly" `Quick
            test_down_shard_widens_exactly;
          Alcotest.test_case "accurate bound honest with a down shard" `Quick
            test_accurate_bound_with_down_shard;
          Alcotest.test_case "observe to a down shard raises" `Quick
            test_observe_down_shard_raises;
          Alcotest.test_case "volatile rejoin refused" `Quick test_volatile_rejoin_refused;
        ] );
      ( "durability",
        [
          Alcotest.test_case "recovery gauges, rejoin, health rollup" `Quick
            test_recovery_gauges_and_rejoin;
        ] );
      ( "metrics", [ Alcotest.test_case "shard labels" `Quick test_metrics_labels ] );
    ]
