(* Cache-consistency fuzz for the incrementally maintained union summary.

   The engine answers steady-state queries from a cached historical
   aggregate keyed on Level_index.epoch (DESIGN.md, "Query-path caching
   & parallel probes").  These tests drive randomized operation
   sequences — observe, end_time_step, expire, window queries (which
   build fresh summaries and must not disturb the cache), quick/accurate
   queries, and crash/recover cycles — and after every step assert that
   the cached union summary is entry-for-entry identical to one built
   from scratch, and that quick answers agree.

   Each sequence is deterministic in its seed; failures print the seed.
   Seed counts scale through HSQ_CRASH_SEEDS (same convention as
   test_crash_recovery): the PR-gating CI job runs the default, the
   nightly job cranks it up to hundreds. *)

module E = Hsq.Engine
module US = Hsq.Union_summary

let seed_count default =
  match Sys.getenv_opt "HSQ_CRASH_SEEDS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* Mixture of distributions so duplicates, skew, and wide ranges all
   occur within one run (same shape as test_fuzz). *)
let gen_value rng =
  match Hsq_util.Xoshiro.int rng 4 with
  | 0 -> Hsq_util.Xoshiro.int rng 20
  | 1 -> Hsq_util.Xoshiro.int rng 1_000_000
  | 2 -> 500_000 + Hsq_util.Xoshiro.int rng 100
  | _ -> 1 lsl (4 + Hsq_util.Xoshiro.int rng 20)

(* The invariant under test: the epoch-keyed cached summary must be
   entry-for-entry identical (values and exact L/U bounds) to a summary
   built fresh from the partition list, and quick answers must agree. *)
let check_cache ~seed ~ctx eng =
  let cached = E.union_summary eng in
  let fresh = E.fresh_union_summary eng in
  if not (US.equal cached fresh) then
    Alcotest.failf "seed %d: cached union summary diverged from fresh after %s (%d vs %d entries)"
      seed ctx (US.size cached) (US.size fresh);
  let n = E.total_size eng in
  if n > 0 then
    List.iter
      (fun phi ->
        let r = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
        let via_engine = E.quick eng ~rank:r in
        let via_fresh = US.quick_select fresh ~rank:r in
        if via_engine <> via_fresh then
          Alcotest.failf "seed %d: quick rank %d after %s: cached %d <> fresh %d" seed r ctx
            via_engine via_fresh)
      [ 0.01; 0.25; 0.5; 0.75; 0.99 ]

let observe_batch rng eng =
  let count = 1 + Hsq_util.Xoshiro.int rng 250 in
  for _ = 1 to count do
    E.observe eng (gen_value rng)
  done

let random_op rng eng =
  match Hsq_util.Xoshiro.int rng 10 with
  | 0 | 1 | 2 | 3 ->
    observe_batch rng eng;
    "observe"
  | 4 | 5 ->
    if E.stream_size eng > 0 then ignore (E.end_time_step eng);
    "end_time_step"
  | 6 ->
    if E.time_steps eng > 0 then
      ignore (E.expire eng ~keep_steps:(1 + Hsq_util.Xoshiro.int rng 8));
    "expire"
  | 7 -> (
    (* Window queries build fresh summaries over partition suffixes;
       they must leave the full-union cache untouched. *)
    match E.window_sizes eng with
    | [] -> "window (none)"
    | windows ->
      let w = List.nth windows (Hsq_util.Xoshiro.int rng (List.length windows)) in
      ignore (E.quantile_window eng ~window:w 0.5);
      "window query")
  | 8 ->
    if E.total_size eng > 0 then
      ignore (E.accurate eng ~rank:(1 + Hsq_util.Xoshiro.int rng (E.total_size eng)));
    "accurate query"
  | _ ->
    if E.total_size eng > 0 then ignore (E.quantile eng 0.5);
    "quantile"

let run_volatile_sequence ~seed ~ops =
  let rng = Hsq_util.Xoshiro.create seed in
  let kappa = 2 + Hsq_util.Xoshiro.int rng 6 in
  let config = Hsq.Config.make ~kappa ~block_size:16 (Hsq.Config.Epsilon 0.05) in
  let eng = E.create config in
  check_cache ~seed ~ctx:"create" eng;
  for _ = 1 to ops do
    let ctx = random_op rng eng in
    check_cache ~seed ~ctx eng
  done

let test_volatile_sequences () =
  for seed = 1 to seed_count 15 do
    run_volatile_sequence ~seed:(7000 + (seed * 13)) ~ops:40
  done

(* Crash/recover: drive a durable store, abandon the engine mid-flight
   (no close — the WAL under Always sync is the only survivor), reopen
   with open_or_recover, and require the recovered engine's cache to
   match a fresh build both immediately and through further mutations. *)
let with_store f =
  let dir = Filename.temp_file "hsq_qcache" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let run_recovery_sequence ~seed =
  with_store (fun dir ->
      let rng = Hsq_util.Xoshiro.create seed in
      let config =
        Hsq.Config.make ~kappa:3 ~block_size:16 ~wal_dir:dir
          ~checkpoint_every:(64 * (1 + Hsq_util.Xoshiro.int rng 4))
          (Hsq.Config.Epsilon 0.05)
      in
      let eng, _ = E.open_or_recover config in
      let steps = 2 + Hsq_util.Xoshiro.int rng 6 in
      for _ = 1 to steps do
        observe_batch rng eng;
        if Hsq_util.Xoshiro.int rng 3 > 0 && E.stream_size eng > 0 then
          ignore (E.end_time_step eng)
      done;
      check_cache ~seed ~ctx:"pre-crash" eng;
      (* Simulated crash: the engine is abandoned without close. *)
      let recovered, _report = E.open_or_recover config in
      check_cache ~seed ~ctx:"open_or_recover" recovered;
      for _ = 1 to 10 do
        let ctx = random_op rng recovered in
        check_cache ~seed ~ctx:(ctx ^ " (post-recovery)") recovered
      done;
      E.close recovered)

let test_recovery_sequences () =
  for seed = 1 to seed_count 8 do
    run_recovery_sequence ~seed:(9000 + (seed * 29))
  done

(* Save / load_files round trip: a restored engine starts with a cold
   cache and an empty stream; its first cached build must equal fresh. *)
let test_save_load_cache () =
  let rng = Hsq_util.Xoshiro.create 31337 in
  let dev_path = Filename.temp_file "hsq_qcache" ".dev" in
  let meta_path = Filename.temp_file "hsq_qcache" ".meta" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove dev_path;
      Sys.remove meta_path)
    (fun () ->
      let config = Hsq.Config.make ~kappa:3 ~block_size:16 (Hsq.Config.Epsilon 0.05) in
      let dev = Hsq_storage.Block_device.create_file ~block_size:16 ~path:dev_path () in
      let eng = E.create ~device:dev config in
      for _ = 1 to 6 do
        observe_batch rng eng;
        ignore (E.end_time_step eng)
      done;
      check_cache ~seed:31337 ~ctx:"pre-save" eng;
      Hsq.Persist.save eng ~path:meta_path;
      Hsq_storage.Block_device.close dev;
      let restored = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      check_cache ~seed:31337 ~ctx:"load_files" restored;
      observe_batch rng restored;
      check_cache ~seed:31337 ~ctx:"observe after load" restored;
      ignore (E.end_time_step restored);
      check_cache ~seed:31337 ~ctx:"end_time_step after load" restored;
      Hsq_storage.Block_device.close (E.device restored))

(* Parallel probes are a latency knob only: answers at query_domains=4
   must be identical to the sequential default, probe for probe. *)
let test_parallel_answers_identical () =
  let build query_domains =
    let rng = Hsq_util.Xoshiro.create 555 in
    let config =
      Hsq.Config.make ~kappa:3 ~block_size:16 ?query_domains (Hsq.Config.Epsilon 0.05)
    in
    let eng = E.create config in
    for _ = 1 to 8 do
      observe_batch rng eng;
      ignore (E.end_time_step eng)
    done;
    observe_batch rng eng;
    eng
  in
  let seq = build None in
  let par = build (Some 4) in
  Alcotest.(check int) "same size" (E.total_size seq) (E.total_size par);
  let n = E.total_size seq in
  List.iter
    (fun phi ->
      let r = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
      let v_seq, rep_seq = E.accurate seq ~rank:r in
      let v_par, rep_par = E.accurate par ~rank:r in
      Alcotest.(check int) (Printf.sprintf "accurate value at rank %d" r) v_seq v_par;
      Alcotest.(check int)
        (Printf.sprintf "disk reads at rank %d" r)
        (Hsq_storage.Io_stats.total rep_seq.E.io)
        (Hsq_storage.Io_stats.total rep_par.E.io))
    [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ];
  E.close seq;
  E.close par

let () =
  Alcotest.run "query_cache"
    [
      ( "cache-consistency",
        [
          Alcotest.test_case "volatile fuzz sequences" `Quick test_volatile_sequences;
          Alcotest.test_case "crash/recover sequences" `Quick test_recovery_sequences;
          Alcotest.test_case "save/load round trip" `Quick test_save_load_cache;
          Alcotest.test_case "parallel answers identical" `Quick test_parallel_answers_identical;
        ] );
    ]
